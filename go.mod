module radiusstep

go 1.24
