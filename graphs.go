package radiusstep

import (
	"fmt"
	"io"
	"os"

	"radiusstep/internal/baseline"
	"radiusstep/internal/check"
	"radiusstep/internal/gen"
	"radiusstep/internal/graph"
)

// --- construction --------------------------------------------------------

// Builder accumulates undirected edges and produces a Graph; self-loops
// are dropped and parallel edges merged keeping the lightest weight.
type Builder = graph.Builder

// NewBuilder creates a builder for a graph with n vertices.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// FromEdges builds a simple undirected Graph from an edge list.
func FromEdges(n int, edges []Edge) *Graph { return graph.FromEdges(n, edges) }

// AddShortcuts returns g plus extra edges (minimum weights kept).
func AddShortcuts(g *Graph, extra []Edge) *Graph { return graph.AddShortcuts(g, extra) }

// Edges returns g's undirected edge list (each edge once, U < V).
func Edges(g *Graph) []Edge { return graph.Edges(g) }

// Validate checks the structural invariants of g.
func Validate(g *Graph) error { return graph.Validate(g) }

// LargestComponent returns the densely relabeled largest connected
// component of g and the mapping from new ids to original ids.
func LargestComponent(g *Graph) (*Graph, []Vertex) { return graph.LargestComponent(g) }

// IsConnected reports whether g has one connected component.
func IsConnected(g *Graph) bool { return graph.IsConnected(g) }

// UnitWeights returns a copy of g with all weights set to 1.
func UnitWeights(g *Graph) *Graph { return graph.UnitWeights(g) }

// --- reordering ----------------------------------------------------------

// ReorderBFS relabels g in breadth-first order from root, improving the
// cache locality of traversals on high-diameter graphs (roads, grids).
// It returns the relabeled graph and the permutation (perm[old] = new).
func ReorderBFS(g *Graph, root Vertex) (*Graph, []Vertex) { return graph.ReorderBFS(g, root) }

// ReorderByDegree relabels g in descending-degree order, clustering hubs
// at the front (helpful on scale-free graphs).
func ReorderByDegree(g *Graph) (*Graph, []Vertex) { return graph.ReorderByDegree(g) }

// PermuteFloats maps a value vector through a relabeling permutation:
// out[perm[i]] = in[i] (for carrying distances across ReorderBFS etc.).
func PermuteFloats(in []float64, perm []Vertex) []float64 { return graph.PermuteFloats(in, perm) }

// UnpermuteFloats maps a relabeled-id value vector back to original ids
// (out[old] = in[perm[old]]), the inverse of PermuteFloats. Servers
// answering queries over a reordered graph apply it to every distance
// vector before returning it.
func UnpermuteFloats(in []float64, perm []Vertex) []float64 { return graph.UnpermuteFloats(in, perm) }

// InvertPerm returns the inverse permutation (inv[perm[old]] = old).
func InvertPerm(perm []Vertex) []Vertex { return graph.InvertPerm(perm) }

// OrderByName computes the relabeling permutation for a named vertex
// order — "bfs", "degree", or "none" (nil) — the set cmd/graphpack's
// -order flag accepts. See ReorderBFS and ReorderByDegree for when each
// order pays off.
func OrderByName(g *Graph, name string) ([]Vertex, error) { return graph.OrderByName(g, name) }

// ApplyOrder relabels g by perm (perm[old] = new). It panics if perm is
// not a permutation of [0, n).
func ApplyOrder(g *Graph, perm []Vertex) *Graph { return graph.ApplyOrder(g, perm) }

// --- serialization -------------------------------------------------------

// ReadGraph parses the text edge-list format ("p sssp n m" header).
func ReadGraph(r io.Reader) (*Graph, error) { return graph.ReadText(r) }

// WriteGraph serializes g in the text edge-list format.
func WriteGraph(w io.Writer, g *Graph) error { return graph.WriteText(w, g) }

// ReadGraphBinary parses the compact binary CSR format.
func ReadGraphBinary(r io.Reader) (*Graph, error) { return graph.ReadBinary(r) }

// WriteGraphBinary serializes g in the compact binary CSR format.
func WriteGraphBinary(w io.Writer, g *Graph) error { return graph.WriteBinary(w, g) }

// GraphFormat identifies one of the supported interchange formats.
type GraphFormat = graph.Format

// The graph interchange formats, as detected by DetectGraphFormat and
// named by GraphFormat.String: the native text format, DIMACS ".gr",
// headerless edge lists, binary CSR, and preprocessed snapshots.
const (
	FormatUnknown  = graph.FormatUnknown
	FormatText     = graph.FormatText
	FormatDIMACS   = graph.FormatDIMACS
	FormatEdgeList = graph.FormatEdgeList
	FormatBinary   = graph.FormatBinary
	FormatSnapshot = graph.FormatSnapshot
)

// DetectGraphFormat sniffs a format from the first bytes of a file.
func DetectGraphFormat(prefix []byte) GraphFormat { return graph.Detect(prefix) }

// ReadGraphAuto detects the format of r and parses it. For a snapshot it
// returns the real input graph (the preserved original when present, so
// shortcut edges are never mistaken for real ones); use ReadSnapshot to
// also recover the persisted radii and the augmented graph.
func ReadGraphAuto(r io.Reader) (*Graph, GraphFormat, error) { return graph.ReadAuto(r) }

// LoadGraphFile opens path and parses it with format auto-detection,
// with the same snapshot semantics as ReadGraphAuto. Snapshots take the
// sized read path, so a corrupted header's declared sizes are checked
// against the actual file length before any array allocation.
func LoadGraphFile(path string) (*Graph, GraphFormat, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, FormatUnknown, err
	}
	defer f.Close()
	prefix := make([]byte, 8)
	n, _ := io.ReadFull(f, prefix)
	if DetectGraphFormat(prefix[:n]) == FormatSnapshot {
		s, _, serr := graph.ReadSnapshotFile(path)
		if serr != nil {
			return nil, FormatSnapshot, serr
		}
		// InputGraph undoes any pack-time relabeling: this function's
		// contract is "the real input graph, original ids".
		return s.InputGraph(), FormatSnapshot, nil
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, FormatUnknown, err
	}
	return graph.ReadAuto(f)
}

// ReadDIMACS parses the DIMACS shortest-path format ("p sp n m" header,
// 1-indexed "a u v w" arc lines) — the format of the DIMACS road
// networks real-workload evaluations are driven by.
func ReadDIMACS(r io.Reader) (*Graph, error) { return graph.ReadDIMACS(r) }

// WriteDIMACS serializes g in the DIMACS shortest-path format.
func WriteDIMACS(w io.Writer, g *Graph) error { return graph.WriteDIMACS(w, g) }

// ReadEdgeList parses a headerless "u v [w]" edge list (SNAP-style).
func ReadEdgeList(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// WriteEdgeList serializes g as tab-separated "u v w" lines.
func WriteEdgeList(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// --- snapshots ------------------------------------------------------------

// Snapshot is the versioned, checksummed binary persistence unit: a CSR
// graph plus optional per-vertex radii, the pre-shortcut original graph,
// and the preprocessing parameters. Produce one with NewSnapshot (or
// cmd/graphpack) and turn it back into a query object with
// SolverFromSnapshot — paying the paper's Step 1 once per graph rather
// than once per process start.
type Snapshot = graph.Snapshot

// WriteSnapshot serializes s in the snapshot format.
func WriteSnapshot(w io.Writer, s *Snapshot) error { return graph.WriteSnapshot(w, s) }

// ReadSnapshot parses a snapshot, verifying its checksum and invariants.
func ReadSnapshot(r io.Reader) (*Snapshot, error) { return graph.ReadSnapshot(r) }

// WriteSnapshotFile writes s to path crash-safely (temp file + fsync +
// rename + directory fsync): a crash at any point leaves either the old
// complete snapshot or the new one, never a torn file.
func WriteSnapshotFile(path string, s *Snapshot) error { return graph.WriteSnapshotFile(path, s) }

// ReadSnapshotFile loads the snapshot at path and reports its file size.
func ReadSnapshotFile(path string) (*Snapshot, int64, error) { return graph.ReadSnapshotFile(path) }

// Snapshot load failures are classified so operators can tell a
// partially copied file from a damaged one: errors.Is(err,
// ErrSnapshotTruncated) means the file ends before its declared
// sections (re-fetch or re-pack fixes it); ErrSnapshotCorrupt means the
// bytes are all there but fail checksum or structural validation
// (rebuild the snapshot). Both are quarantinable — the serving registry
// keeps the previous epoch and retries with backoff.
var (
	ErrSnapshotTruncated = graph.ErrSnapshotTruncated
	ErrSnapshotCorrupt   = graph.ErrSnapshotCorrupt
)

// --- generators ----------------------------------------------------------

// Grid2D returns the nx × ny unit-weight grid graph.
func Grid2D(nx, ny int) *Graph { return gen.Grid2D(nx, ny) }

// Grid3D returns the nx × ny × nz unit-weight grid graph.
func Grid3D(nx, ny, nz int) *Graph { return gen.Grid3D(nx, ny, nz) }

// RoadNet returns a random geometric graph resembling a road network:
// near-planar, constant average degree avgDeg, Θ(√n) diameter.
func RoadNet(n int, avgDeg float64, seed uint64) *Graph { return gen.RoadNet(n, avgDeg, seed) }

// ScaleFree returns a Barabási–Albert preferential-attachment graph
// (each vertex attaches to `attach` earlier vertices), resembling web
// and social graphs: skewed degrees, hub vertices, small diameter.
func ScaleFree(n, attach int, seed uint64) *Graph { return gen.ScaleFree(n, attach, seed) }

// ErdosRenyi returns a uniform random graph with n vertices, m edges.
func ErdosRenyi(n, m int, seed uint64) *Graph { return gen.ErdosRenyi(n, m, seed) }

// RandomConnected returns a connected random graph (spanning tree plus
// random extra edges up to m).
func RandomConnected(n, m int, seed uint64) *Graph { return gen.RandomConnected(n, m, seed) }

// Comb returns the paper's Figure-2 pathological sparse graph on which
// reaching 3d vertices from any vertex costs Θ(d²) edge looks.
func Comb(d int) *Graph { return gen.Comb(d) }

// WithUniformIntWeights copies g with weights drawn uniformly from
// {lo..hi}, the paper's experimental weighting (1..10⁴).
func WithUniformIntWeights(g *Graph, lo, hi int, seed uint64) *Graph {
	return gen.WithUniformIntWeights(g, lo, hi, seed)
}

// RMAT generates a recursive-matrix graph with 2^scale vertices and up
// to m edges (Chakrabarti et al. parameters a, b, c; d = 1-a-b-c).
func RMAT(scale, m int, a, b, c float64, seed uint64) *Graph {
	return gen.RMAT(scale, m, a, b, c, seed)
}

// SmallWorld generates a Watts–Strogatz graph: ring lattice with k
// neighbors per vertex, each edge rewired with probability beta.
func SmallWorld(n, k int, beta float64, seed uint64) *Graph {
	return gen.SmallWorld(n, k, beta, seed)
}

// GenerateByName builds a graph from a family name, the dispatcher the
// CLI tools use: grid2d, grid3d, road, web, er, rmat, smallworld, comb.
// n is interpreted per family (side² for grid2d, comb takes d = n).
func GenerateByName(kind string, n int, seed uint64) (*Graph, error) {
	switch kind {
	case "grid2d":
		side := intSqrt(n)
		return gen.Grid2D(side, side), nil
	case "grid3d":
		side := intCbrt(n)
		return gen.Grid3D(side, side, side), nil
	case "road":
		g, _ := graph.LargestComponent(gen.RoadNet(n, 6, seed))
		return g, nil
	case "web":
		return gen.ScaleFree(n, 7, seed), nil
	case "er":
		return gen.ErdosRenyi(n, 4*n, seed), nil
	case "rmat":
		scale := 1
		for 1<<scale < n && scale < 30 {
			scale++
		}
		g, _ := graph.LargestComponent(gen.RMATDefault(scale, 8*n, seed))
		return g, nil
	case "smallworld":
		return gen.SmallWorld(max(n, 4), 4, 0.05, seed), nil
	case "comb":
		return gen.Comb(max(n, 2)), nil
	default:
		return nil, fmt.Errorf("radiusstep: unknown graph family %q", kind)
	}
}

func intSqrt(n int) int {
	s := 1
	for (s+1)*(s+1) <= n {
		s++
	}
	return s
}

func intCbrt(n int) int {
	s := 1
	for (s+1)*(s+1)*(s+1) <= n {
		s++
	}
	return s
}

// --- baselines -----------------------------------------------------------

// Dijkstra computes SSSP distances with the sequential heap algorithm —
// the work baseline radius-stepping is compared against.
func Dijkstra(g *Graph, src Vertex) []float64 { return baseline.Dijkstra(g, src) }

// BellmanFord computes SSSP with synchronous relaxation rounds,
// returning distances and the number of rounds.
func BellmanFord(g *Graph, src Vertex) ([]float64, int) { return baseline.BellmanFord(g, src) }

// DeltaStats reports the phase structure of a ∆-stepping run.
type DeltaStats = baseline.DeltaStats

// DeltaStepping runs the Meyer–Sanders algorithm with bucket width delta.
func DeltaStepping(g *Graph, src Vertex, delta float64) ([]float64, DeltaStats) {
	return baseline.DeltaStepping(g, src, delta)
}

// BFS runs breadth-first search, returning hop distances (-1 when
// unreachable) and the eccentricity-style level count.
func BFS(g *Graph, src Vertex) ([]int32, int) { return baseline.BFS(g, src) }

// BFSParallel is the level-synchronous parallel BFS.
func BFSParallel(g *Graph, src Vertex) ([]int32, int) { return baseline.BFSParallel(g, src) }

// --- verification --------------------------------------------------------

// VerifyDistances checks the SSSP optimality certificate for dist: it
// returns nil exactly when dist is the true distance vector from src.
func VerifyDistances(g *Graph, src Vertex, dist []float64) error {
	return check.VerifyDistances(g, src, dist)
}
