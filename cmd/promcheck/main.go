// Command promcheck validates a Prometheus text exposition read from
// stdin: it must parse under the 0.0.4 text format and every histogram
// must satisfy the cumulative-bucket contract (counts monotone in le,
// le="+Inf" present and equal to _count). -require asserts that named
// metric families are present in the exposition — the CI smoke jobs use
// it to catch a counter silently falling out of the registry. Exit
// status 0 on success, 1 on a malformed exposition or a missing
// required family.
//
// Usage:
//
//	curl -s localhost:8517/metrics | promcheck
//	curl -s localhost:8517/metrics | promcheck -require sssp_solves_total,sssp_solve_panics_total
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"radiusstep/internal/metrics"
)

func main() {
	require := flag.String("require", "", "comma-separated metric family names that must appear in the exposition")
	flag.Parse()

	data, err := io.ReadAll(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "promcheck: read stdin: %v\n", err)
		os.Exit(1)
	}
	if len(data) == 0 {
		fmt.Fprintln(os.Stderr, "promcheck: empty exposition")
		os.Exit(1)
	}
	if err := metrics.Lint(data); err != nil {
		fmt.Fprintf(os.Stderr, "promcheck: %v\n", err)
		os.Exit(1)
	}
	samples, _ := metrics.Parse(data)

	if *require != "" {
		present := make(map[string]bool, len(samples))
		for _, s := range samples {
			present[s.Name] = true
			// Histogram families expose _bucket/_sum/_count samples;
			// requiring the family name should match those too.
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				present[strings.TrimSuffix(s.Name, suffix)] = true
			}
		}
		var missing []string
		for _, name := range strings.Split(*require, ",") {
			name = strings.TrimSpace(name)
			if name != "" && !present[name] {
				missing = append(missing, name)
			}
		}
		if len(missing) > 0 {
			fmt.Fprintf(os.Stderr, "promcheck: missing required families: %s\n", strings.Join(missing, ", "))
			os.Exit(1)
		}
	}
	fmt.Printf("promcheck: ok (%d samples)\n", len(samples))
}
