// Command promcheck validates a Prometheus text exposition read from
// stdin: it must parse under the 0.0.4 text format and every histogram
// must satisfy the cumulative-bucket contract (counts monotone in le,
// le="+Inf" present and equal to _count). Exit status 0 on success,
// 1 on a malformed exposition — the CI metrics smoke job pipes
// `curl /metrics` through it.
//
// Usage:
//
//	curl -s localhost:8517/metrics | promcheck
package main

import (
	"fmt"
	"io"
	"os"

	"radiusstep/internal/metrics"
)

func main() {
	data, err := io.ReadAll(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "promcheck: read stdin: %v\n", err)
		os.Exit(1)
	}
	if len(data) == 0 {
		fmt.Fprintln(os.Stderr, "promcheck: empty exposition")
		os.Exit(1)
	}
	if err := metrics.Lint(data); err != nil {
		fmt.Fprintf(os.Stderr, "promcheck: %v\n", err)
		os.Exit(1)
	}
	samples, _ := metrics.Parse(data)
	fmt.Printf("promcheck: ok (%d samples)\n", len(samples))
}
