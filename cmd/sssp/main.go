// Command sssp runs one shortest-path computation on a generated or
// loaded graph and reports timings and round statistics.
//
// Examples:
//
//	sssp -gen grid2d -n 250000 -weights 10000 -algo radius -rho 64 -src 0
//	sssp -gen web -n 100000 -algo delta -delta 5000
//	sssp -in graph.txt -algo dijkstra -src 17
//	sssp -gen rmat -n 50000 -weights 10000 -src 0 -target 4999 -landmarks 8
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	rs "radiusstep"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}

// writeTimeline dumps one solve timeline as indented JSON; "-" writes
// to stdout.
func writeTimeline(path string, tl *rs.Timeline) error {
	out, err := json.MarshalIndent(tl, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}

func buildGraph(kind string, n int, seed uint64) *rs.Graph {
	g, err := rs.GenerateByName(kind, n, seed)
	if err != nil {
		fail("%v (families: grid2d|grid3d|road|web|er|rmat|smallworld|comb)", err)
	}
	return g
}

// routeMode answers one point-to-point query with an early-terminated,
// optionally goal-directed solve and reports the route plus the solve's
// work counters (pruned= shows the relaxations landmark pruning saved).
func routeMode(g *rs.Graph, solver *rs.Solver, src, dst rs.Vertex, engine rs.Engine, landmarks int, strategy string, prune, verify bool) {
	if int(dst) >= g.NumVertices() {
		fail("target %d out of range", dst)
	}
	if landmarks > 0 {
		strat, err := rs.ParseLandmarkStrategy(strategy)
		if err != nil {
			fail("%v", err)
		}
		t0 := time.Now()
		built, err := solver.BuildLandmarks(landmarks, strat)
		if err != nil {
			fail("landmarks: %v", err)
		}
		fmt.Printf("landmarks: built %d (%s) in %v\n", built, strat, time.Since(t0).Round(time.Microsecond))
	}
	t0 := time.Now()
	path, d, st, err := solver.Route(src, dst, engine, prune)
	if err != nil {
		fail("route: %v", err)
	}
	elapsed := time.Since(t0)
	if math.IsInf(d, 1) {
		fmt.Printf("route: %v  %d..%d unreachable  %s\n", elapsed.Round(time.Microsecond), src, dst, st)
		return
	}
	fmt.Printf("route: %v  dist=%g hops=%d  %s\n", elapsed.Round(time.Microsecond), d, len(path)-1, st)
	if verify {
		// The route must realize its claimed length edge by edge, and the
		// length must match an independent sequential oracle.
		sum, err := rs.PathLength(g, path)
		if err != nil {
			fail("VERIFY FAILED: %v", err)
		}
		if sum != d {
			fail("VERIFY FAILED: path sums to %g, route reported %g", sum, d)
		}
		if exact := rs.Dijkstra(g, src)[dst]; exact != d {
			fail("VERIFY FAILED: dijkstra says %g, route reported %g", exact, d)
		}
		fmt.Println("verify: route OK (path tight, distance matches dijkstra)")
	}
}

func main() {
	genKind := flag.String("gen", "", "generate a graph: grid2d|grid3d|road|web|er|rmat|smallworld|comb")
	n := flag.Int("n", 100000, "approximate vertex count for -gen")
	in := flag.String("in", "", "read a graph file instead of generating (format auto-detected)")
	weights := flag.Int("weights", 0, "assign uniform integer weights in [1, W] (0 = keep)")
	seed := flag.Uint64("seed", 42, "generator seed")
	src := flag.Int("src", 0, "source vertex")
	algo := flag.String("algo", "radius", "radius|dijkstra|delta|bellmanford|bfs")
	rho := flag.Int("rho", 32, "radius-stepping ball size")
	k := flag.Int("k", 1, "radius-stepping hop budget")
	heuristic := flag.String("heuristic", "dp", "shortcut heuristic for k>1: direct|greedy|dp")
	engine := flag.String("engine", "auto", "stepping engine: auto|seq|par|flat|delta|rho")
	delta := flag.Float64("delta", 1000, "delta-stepping bucket width (-algo delta, or -engine delta when set explicitly)")
	verify := flag.Bool("verify", false, "verify the result certificate")
	traceOut := flag.String("trace", "", "write the solve timeline (steps, substeps, pool and frontier timings) as JSON to this file (-algo radius only; - for stdout)")
	target := flag.Int("target", -1, "route mode: answer a point-to-point query src..target with an early-terminated solve (-algo radius only)")
	landmarks := flag.Int("landmarks", 0, "route mode: build K ALT landmark vectors for goal-directed pruning (0 = none)")
	lmStrategy := flag.String("landmark-strategy", "farthest", "landmark selection: farthest|degree")
	prune := flag.Bool("prune", true, "route mode: apply goal-directed landmark pruning (needs -landmarks)")
	flag.Parse()

	var g *rs.Graph
	switch {
	case *in != "":
		g2, format, err := rs.LoadGraphFile(*in)
		if err != nil {
			fail("parse: %v", err)
		}
		fmt.Printf("loaded %s (%s)\n", *in, format)
		g = g2
	case *genKind != "":
		g = buildGraph(*genKind, *n, *seed)
	default:
		fail("need -gen or -in")
	}
	if *weights > 0 {
		g = rs.WithUniformIntWeights(g, 1, *weights, *seed+1)
	}
	fmt.Printf("graph: n=%d m=%d L=%g\n", g.NumVertices(), g.NumEdges(), g.MaxWeight())
	if *src < 0 || *src >= g.NumVertices() {
		fail("source %d out of range", *src)
	}
	source := rs.Vertex(*src)

	var dist []float64
	switch *algo {
	case "radius":
		h, err := rs.ParseHeuristic(*heuristic)
		if err != nil {
			fail("%v", err)
		}
		e, err := rs.ParseEngine(*engine)
		if err != nil {
			fail("%v", err)
		}
		// -delta configures EngineDelta only when the operator actually
		// passed it; otherwise the solver derives a width from the graph.
		engineDelta := 0.0
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "delta" {
				engineDelta = *delta
			}
		})
		t0 := time.Now()
		solver, err := rs.NewSolver(g, rs.Options{Rho: *rho, K: *k, Heuristic: h, Engine: e, Delta: engineDelta})
		if err != nil {
			fail("preprocess: %v", err)
		}
		pre := solver.Preprocessed()
		fmt.Printf("preprocess: %v (added %d shortcuts, visited %d, scanned %d)\n",
			time.Since(t0).Round(time.Microsecond), pre.Added, pre.Visited, pre.EdgesScanned)
		if *target >= 0 {
			routeMode(g, solver, source, rs.Vertex(*target), e, *landmarks, *lmStrategy, *prune, *verify)
			return
		}
		t1 := time.Now()
		var d []float64
		var st rs.Stats
		if *traceOut != "" {
			var tl *rs.Timeline
			d, st, tl, err = solver.DistancesTraced(source, rs.EngineAuto)
			if err != nil {
				fail("solve: %v", err)
			}
			if werr := writeTimeline(*traceOut, tl); werr != nil {
				fail("trace: %v", werr)
			}
			fmt.Printf("trace: engine=%s steps=%d substeps=%d written to %s\n",
				tl.Engine, len(tl.StepList), len(tl.SubstepList), *traceOut)
		} else {
			d, st, err = solver.Distances(source)
			if err != nil {
				fail("solve: %v", err)
			}
		}
		fmt.Printf("radius-stepping: %v  %s\n", time.Since(t1).Round(time.Microsecond), st)
		dist = d
	case "dijkstra":
		t0 := time.Now()
		dist = rs.Dijkstra(g, source)
		fmt.Printf("dijkstra: %v\n", time.Since(t0).Round(time.Microsecond))
	case "delta":
		t0 := time.Now()
		d, st := rs.DeltaStepping(g, source, *delta)
		fmt.Printf("delta-stepping: %v  steps=%d substeps=%d relax=%d\n",
			time.Since(t0).Round(time.Microsecond), st.Steps, st.Substeps, st.Relaxations)
		dist = d
	case "bellmanford":
		t0 := time.Now()
		d, rounds := rs.BellmanFord(g, source)
		fmt.Printf("bellman-ford: %v  rounds=%d\n", time.Since(t0).Round(time.Microsecond), rounds)
		dist = d
	case "bfs":
		t0 := time.Now()
		hops, levels := rs.BFSParallel(g, source)
		fmt.Printf("parallel bfs: %v  levels=%d\n", time.Since(t0).Round(time.Microsecond), levels)
		reached := 0
		for _, h := range hops {
			if h >= 0 {
				reached++
			}
		}
		fmt.Printf("reached %d/%d vertices\n", reached, g.NumVertices())
		return
	default:
		fail("unknown -algo %q", *algo)
	}

	reached, maxD := 0, 0.0
	for _, d := range dist {
		if !math.IsInf(d, 1) {
			reached++
			if d > maxD {
				maxD = d
			}
		}
	}
	fmt.Printf("reached %d/%d vertices, max distance %g\n", reached, g.NumVertices(), maxD)
	if *verify {
		if err := rs.VerifyDistances(g, source, dist); err != nil {
			fail("VERIFY FAILED: %v", err)
		}
		fmt.Println("verify: certificate OK")
	}
}
