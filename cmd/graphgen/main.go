// Command graphgen emits generated graphs for feeding cmd/sssp,
// cmd/graphpack, or external tools. Output formats: the native text
// format (default), DIMACS ".gr", a headerless edge list, or the
// compact binary CSR.
//
// Examples:
//
//	graphgen -kind road -n 100000 -weights 10000 -o road.txt
//	graphgen -kind road -n 100000 -format dimacs -o road.gr
package main

import (
	"flag"
	"fmt"
	"os"

	rs "radiusstep"
)

func main() {
	kind := flag.String("kind", "grid2d", "grid2d|grid3d|road|web|er|rmat|smallworld|comb")
	n := flag.Int("n", 10000, "approximate vertex count")
	m := flag.Int("m", 0, "edge count (er only; default 4n)")
	weights := flag.Int("weights", 0, "uniform integer weights in [1, W] (0 = unit/native)")
	seed := flag.Uint64("seed", 42, "generator seed")
	out := flag.String("o", "-", "output file (- for stdout)")
	format := flag.String("format", "text", "output format: text|dimacs|edgelist|binary")
	binary := flag.Bool("binary", false, "write the binary CSR format (alias for -format binary)")
	connected := flag.Bool("connected", true, "keep only the largest component")
	flag.Parse()
	if *binary {
		*format = "binary"
	}
	// Validate before generating so a typo fails in microseconds, not
	// after minutes of generation (and never truncates the output file).
	switch *format {
	case "text", "dimacs", "edgelist", "binary":
	default:
		fmt.Fprintf(os.Stderr, "unknown -format %q (want text|dimacs|edgelist|binary)\n", *format)
		os.Exit(2)
	}

	var g *rs.Graph
	if *kind == "er" && *m > 0 {
		g = rs.ErdosRenyi(*n, *m, *seed)
	} else {
		var err error
		g, err = rs.GenerateByName(*kind, *n, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	if *connected {
		g, _ = rs.LargestComponent(g)
	}
	if *weights > 0 {
		g = rs.WithUniformIntWeights(g, 1, *weights, *seed+1)
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	var err error
	switch *format {
	case "text":
		err = rs.WriteGraph(w, g)
	case "dimacs":
		err = rs.WriteDIMACS(w, g)
	case "edgelist":
		err = rs.WriteEdgeList(w, g)
	case "binary":
		err = rs.WriteGraphBinary(w, g)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s: n=%d m=%d format=%s\n", *kind, g.NumVertices(), g.NumEdges(), *format)
}
