// Command radius-bench regenerates the paper's tables and figures, and
// benchmarks the stepping-engine matrix.
//
// Usage:
//
//	radius-bench -list
//	radius-bench -exp table4 -scale default
//	radius-bench -exp all -scale tiny
//	radius-bench -engines all -gen road -n 100000 -trials 9
//	radius-bench -engines seq,delta,rho -gen web -n 50000
//	radius-bench -engines all -trace timelines.json
//	radius-bench -procs 1,2,4,8 -engines seq,par
//	radius-bench -compare BENCH_5.json
//	radius-bench -compare latest
//	radius-bench -routes -gen rmat -n 50000 -pairs 25 -landmarks 8
//
// The -routes mode measures per-engine point-to-point route latency
// with and without goal-directed ALT landmark pruning over the same
// deterministic source/target pairs, asserting every pruned distance is
// byte-identical to its unpruned twin; it reports the p50 ratio and the
// fraction of relaxation candidates the landmark bound skipped.
//
// The -engines matrix mode emits per-engine p50/p90 solve latency and
// per-solve allocation counts as JSON (the BENCH_* trajectory seed); it
// exercises the same per-query engine-override path the daemon serves.
// The -compare mode re-runs the workloads recorded in a committed
// baseline file and exits nonzero when any engine's p50 latency
// regressed by more than -compare-threshold (default 25%) or its
// allocs-per-solve grew by more than -compare-alloc-threshold times the
// baseline (default 2x, past an absolute noise floor). The special
// baseline name "latest" resolves to the highest-numbered
// BENCH_<n>.json in the working directory, so the gate always runs
// against the freshest committed baseline.
//
// The -procs mode re-runs the engine matrix at each listed GOMAXPROCS
// value over one shared preprocessed graph and reports per-engine
// speedup columns (JSON on stdout, aligned table on stderr). The
// -trace mode appends one traced solve per engine after the matrix and
// writes the solve timelines (steps, substeps, pool and frontier
// timings) as JSON to the named file; timelines stay out of the
// BENCH_* baselines because traced solves pay clock-read overhead.
//
// Scales: tiny (seconds), default (minutes), full (closer to the paper's
// sizes; expect long runtimes — preprocessing is Θ(nρ²)).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	rs "radiusstep"
	"radiusstep/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (see -list) or 'all'")
	scale := flag.String("scale", "default", "tiny | default | full")
	list := flag.Bool("list", false, "list experiment ids and exit")
	engines := flag.String("engines", "", "engine matrix mode: 'all' or a comma list (seq,par,flat,delta,rho); emits JSON")
	gen := flag.String("gen", "road", "matrix mode: generator family")
	n := flag.Int("n", 50000, "matrix mode: approximate vertex count")
	weights := flag.Int("weights", 10000, "matrix mode: uniform integer weights in [1, W] (0 keeps generator weights)")
	rho := flag.Int("rho", 32, "matrix mode: preprocessing ball size (and rho-stepping quota)")
	trials := flag.Int("trials", 9, "matrix mode: timed solves per engine")
	seed := flag.Uint64("seed", 42, "matrix mode: generator seed")
	compare := flag.String("compare", "", "regression-gate mode: re-run the workloads in this baseline JSON (e.g. BENCH_5.json, or 'latest' for the newest committed BENCH_<n>.json) and exit nonzero on p50 or allocation regressions")
	threshold := flag.Float64("compare-threshold", 0.25, "compare mode: maximum tolerated p50 regression (0.25 = 25%)")
	allocThreshold := flag.Float64("compare-alloc-threshold", 2.0, "compare mode: maximum tolerated allocs-per-solve growth factor (2 = doubled; <= 0 disables)")
	procs := flag.String("procs", "", "scaling mode: comma list of GOMAXPROCS values (e.g. 1,2,4,8); re-runs the engine matrix at each and reports speedup columns (JSON to stdout, table to stderr)")
	minSpeedup := flag.Float64("min-speedup", 0, "scaling mode: require every engine's p50 speedup at the last procs value to reach this factor (1.0 = monotonicity; 0 disables); skipped with a warning when the host has fewer CPUs. In compare mode against a scaling baseline, overrides the default 1.8x gate")
	scalingBaseline := flag.String("scaling-baseline", "", "measure the default multi-proc workload set (50k + >=1M rmat/grid2d at procs 1,2,4,8) and write the committable scaling baseline JSON to this file")
	traceOut := flag.String("trace", "", "matrix mode: write one solve timeline per engine as JSON to this file")
	routes := flag.Bool("routes", false, "route mode: per-engine point-to-point p50 latency with and without ALT landmark pruning; asserts pruned distances byte-identical (JSON to stdout, table to stderr)")
	pairs := flag.Int("pairs", 25, "route mode: source/target pairs measured per engine")
	landmarks := flag.Int("landmarks", 8, "route mode: ALT landmark count")
	flag.Parse()

	if *list {
		fmt.Println("experiments:")
		for _, e := range bench.Experiments() {
			fmt.Printf("  %-16s %s\n", e.ID, e.Desc)
		}
		return
	}
	if *compare != "" {
		path := *compare
		if path == "latest" {
			var err error
			if path, err = bench.LatestBaseline("."); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			fmt.Printf("# baseline: %s\n", path)
		}
		// Baselines come in two shapes: the engine-matrix trajectory and
		// the multi-proc scaling envelope (kind == "scaling"). Dispatch on
		// the committed file, so `-compare latest` keeps working as the
		// trajectory alternates shapes.
		if _, isScaling, err := bench.ReadScalingBaseline(path); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		} else if isScaling {
			if err := bench.CompareScaling(os.Stdout, path, *minSpeedup); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			return
		}
		if err := bench.CompareEngineMatrix(os.Stdout, path, *threshold, *allocThreshold); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *scalingBaseline != "" {
		b, err := bench.MeasureScalingSet(bench.DefaultScalingConfigs(), os.Stderr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f, err := os.Create(*scalingBaseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		werr := enc.Encode(b)
		cerr := f.Close()
		if werr != nil || cerr != nil {
			fmt.Fprintf(os.Stderr, "scaling baseline: write %s: %v%v\n", *scalingBaseline, werr, cerr)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "# scaling baseline (%d workloads, hostProcs=%d) written to %s\n",
			len(b.Workloads), b.HostProcs, *scalingBaseline)
		return
	}
	if *engines != "" || *procs != "" || *routes {
		var names []string
		if *engines != "" && *engines != "all" {
			for _, raw := range strings.Split(*engines, ",") {
				e, err := rs.ParseEngine(strings.TrimSpace(raw))
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(2)
				}
				names = append(names, e.String())
			}
		}
		if *routes {
			report, err := bench.RunRouteBench(os.Stdout, bench.RouteBenchConfig{
				Gen: *gen, N: *n, Weights: *weights, Rho: *rho,
				Seed: *seed, Pairs: *pairs, Landmarks: *landmarks, Engines: names,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Fprint(os.Stderr, bench.FormatRouteTable(report))
			return
		}
		mcfg := bench.EngineMatrixConfig{
			Gen: *gen, N: *n, Weights: *weights, Rho: *rho,
			Seed: *seed, Trials: *trials, Engines: names,
		}
		if *procs != "" {
			var pvals []int
			for _, raw := range strings.Split(*procs, ",") {
				var p int
				if _, err := fmt.Sscanf(strings.TrimSpace(raw), "%d", &p); err != nil || p < 1 {
					fmt.Fprintf(os.Stderr, "bad -procs value %q (want a comma list of integers >= 1)\n", raw)
					os.Exit(2)
				}
				pvals = append(pvals, p)
			}
			report, err := bench.RunScaling(os.Stdout, bench.ScalingConfig{
				Gen: *gen, N: *n, Weights: *weights, Rho: *rho,
				Seed: *seed, Trials: *trials, Engines: names, Procs: pvals,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Fprint(os.Stderr, bench.FormatScalingTable(report))
			if *minSpeedup > 0 {
				if err := bench.GateScalingReport(os.Stderr, report, *minSpeedup); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			}
			return
		}
		if err := bench.RunEngineMatrix(os.Stdout, mcfg); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *traceOut != "" {
			timelines, err := bench.MeasureEngineTimelines(mcfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			enc := json.NewEncoder(f)
			enc.SetIndent("", "  ")
			werr := enc.Encode(timelines)
			cerr := f.Close()
			if werr != nil || cerr != nil {
				fmt.Fprintf(os.Stderr, "trace: write %s: %v%v\n", *traceOut, werr, cerr)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "# %d engine timelines written to %s\n", len(timelines), *traceOut)
		}
		return
	}
	sc, err := bench.ScaleByName(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	start := time.Now()
	if err := bench.RunExperiment(os.Stdout, *exp, sc); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("# done in %v (scale=%s)\n", time.Since(start).Round(time.Millisecond), sc.Name)
}
