// Command radius-bench regenerates the paper's tables and figures, and
// benchmarks the stepping-engine matrix.
//
// Usage:
//
//	radius-bench -list
//	radius-bench -exp table4 -scale default
//	radius-bench -exp all -scale tiny
//	radius-bench -engines all -gen road -n 100000 -trials 9
//	radius-bench -engines seq,delta,rho -gen web -n 50000
//	radius-bench -compare BENCH_4.json
//
// The -engines matrix mode emits per-engine p50/p90 solve latency and
// per-solve allocation counts as JSON (the BENCH_* trajectory seed); it
// exercises the same per-query engine-override path the daemon serves.
// The -compare mode re-runs the workloads recorded in a committed
// baseline file and exits nonzero when any engine's p50 latency
// regressed by more than -compare-threshold (default 25%).
//
// Scales: tiny (seconds), default (minutes), full (closer to the paper's
// sizes; expect long runtimes — preprocessing is Θ(nρ²)).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	rs "radiusstep"
	"radiusstep/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (see -list) or 'all'")
	scale := flag.String("scale", "default", "tiny | default | full")
	list := flag.Bool("list", false, "list experiment ids and exit")
	engines := flag.String("engines", "", "engine matrix mode: 'all' or a comma list (seq,par,flat,delta,rho); emits JSON")
	gen := flag.String("gen", "road", "matrix mode: generator family")
	n := flag.Int("n", 50000, "matrix mode: approximate vertex count")
	weights := flag.Int("weights", 10000, "matrix mode: uniform integer weights in [1, W] (0 keeps generator weights)")
	rho := flag.Int("rho", 32, "matrix mode: preprocessing ball size (and rho-stepping quota)")
	trials := flag.Int("trials", 9, "matrix mode: timed solves per engine")
	seed := flag.Uint64("seed", 42, "matrix mode: generator seed")
	compare := flag.String("compare", "", "regression-gate mode: re-run the workloads in this baseline JSON (e.g. BENCH_4.json) and exit nonzero on p50 regressions")
	threshold := flag.Float64("compare-threshold", 0.25, "compare mode: maximum tolerated p50 regression (0.25 = 25%)")
	flag.Parse()

	if *list {
		fmt.Println("experiments:")
		for _, e := range bench.Experiments() {
			fmt.Printf("  %-16s %s\n", e.ID, e.Desc)
		}
		return
	}
	if *compare != "" {
		if err := bench.CompareEngineMatrix(os.Stdout, *compare, *threshold); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *engines != "" {
		var names []string
		if *engines != "all" {
			for _, raw := range strings.Split(*engines, ",") {
				e, err := rs.ParseEngine(strings.TrimSpace(raw))
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(2)
				}
				names = append(names, e.String())
			}
		}
		err := bench.RunEngineMatrix(os.Stdout, bench.EngineMatrixConfig{
			Gen: *gen, N: *n, Weights: *weights, Rho: *rho,
			Seed: *seed, Trials: *trials, Engines: names,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	sc, err := bench.ScaleByName(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	start := time.Now()
	if err := bench.RunExperiment(os.Stdout, *exp, sc); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("# done in %v (scale=%s)\n", time.Since(start).Round(time.Millisecond), sc.Name)
}
