// Command radius-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	radius-bench -list
//	radius-bench -exp table4 -scale default
//	radius-bench -exp all -scale tiny
//
// Scales: tiny (seconds), default (minutes), full (closer to the paper's
// sizes; expect long runtimes — preprocessing is Θ(nρ²)).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"radiusstep/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (see -list) or 'all'")
	scale := flag.String("scale", "default", "tiny | default | full")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		fmt.Println("experiments:")
		for _, e := range bench.Experiments() {
			fmt.Printf("  %-16s %s\n", e.ID, e.Desc)
		}
		return
	}
	sc, err := bench.ScaleByName(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	start := time.Now()
	if err := bench.RunExperiment(os.Stdout, *exp, sc); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("# done in %v (scale=%s)\n", time.Since(start).Round(time.Millisecond), sc.Name)
}
