// Command ssspd is the shortest-path query daemon: it loads one or more
// named graphs at startup, preprocesses each into a radius-stepping
// solver, and serves HTTP/JSON queries with request coalescing, a
// bounded solve pool, and a source-keyed distance cache.
//
// Graph sources: gen=FAMILY generates in-process; file=PATH ingests any
// auto-detected format (native text, DIMACS ".gr", headerless edge
// list, binary CSR); snapshot=PATH loads a cmd/graphpack snapshot whose
// persisted radii skip preprocessing entirely — the fast cold-start
// path for production restarts; pre=PATH loads a WritePreprocessed
// bundle.
//
// Each graph's default stepping engine comes from the engine= spec key
// (auto|seq|par|flat|delta|rho; delta= tunes the Δ bucket width), and
// clients may override it per request with the ?engine= query parameter
// on /v1/distances, /v1/route and /v1/batch; /v1/stats reports solve
// counts per engine.
//
// Goal-directed routing: the landmarks=K spec key builds K ALT landmark
// vectors at load time, making /v1/route solves goal-directed (pruned);
// ?prune=0 opts a request out for A/B measurement. -auto-landmarks
// additionally promotes cached distance vectors into each graph's
// landmark set, so hot sources sharpen later routes for free.
//
// Observability: GET /metrics serves Prometheus text (per-engine solve
// latency histograms, per-endpoint request/error counters, cache, pool
// and Go runtime health); ?trace=1 on /v1/distances returns the solve's
// step/substep timeline inline in the JSON response; -pprof ADDR serves
// net/http/pprof on a separate mux; -log-requests emits structured
// per-request and per-solve logs via log/slog.
//
// Graph lifecycle: every -graph spec loads concurrently and
// independently — a spec that fails validation (torn snapshot, bad
// checksum, build error) is quarantined and logged while the rest come
// up, so one broken file degrades the daemon instead of killing it
// (-require-all-graphs restores strict startup; the process still
// exits nonzero if ALL graphs fail). /readyz reports "degraded" with
// per-graph states while any graph is down. At runtime, POST
// /v1/admin/reload atomically swaps a graph to a freshly built epoch —
// in-flight queries finish on the old epoch, new queries see the new
// one, and a failed reload quarantines while the old epoch keeps
// serving. The admin surface (reload, load, DELETE) listens on
// -admin-addr (private, unauthenticated) and/or mounts on the query
// port guarded by -admin-token. -watch polls file-backed sources and
// reloads on mtime change, re-probing quarantined graphs with
// exponential backoff. -graph-budget-mb caps resident graph bytes,
// evicting least-recently-queried graphs to cold state; the next query
// triggers a transparent background reload (503 + Retry-After until it
// lands).
//
// Request lifecycle: every solve-backed request runs under the
// -solve-timeout deadline (clients may shorten it per request with
// ?timeout_ms=, never extend; expiry is a 504). The solve pool sheds
// load with 503 + Retry-After once -max-queue requests are already
// waiting, and a client disconnect aborts its solve through the
// engines' cooperative cancel probes unless other coalesced waiters
// still want the result. /healthz is pure liveness (always 200);
// /readyz is the routing gate — 503 while loading at startup and while
// draining at shutdown, which waits up to -shutdown-grace for in-flight
// solves before aborting the stragglers.
//
// Examples:
//
//	ssspd -graph road=gen=road,n=200000,weights=10000,rho=64 -listen :8517
//	ssspd -graph ny=snapshot=ny.snap -cache-mb 512     # no preprocessing
//	ssspd -graph g=file=USA-road-d.NY.gr,rho=64 -workers 8
//	ssspd -config deploy.json
//	ssspd -selftest -selftest-queries 5000
//
// Config file format (JSON):
//
//	{
//	  "listen": ":8517",
//	  "workers": 8,
//	  "cacheMB": 256,
//	  "graphs": [
//	    {"name": "road", "gen": "road", "n": 200000, "weights": 10000, "rho": 64},
//	    {"name": "web",  "gen": "web",  "n": 100000, "rho": 32, "k": 3}
//	  ]
//	}
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"radiusstep/internal/server"
)

// fileConfig is the JSON config accepted by -config. Durations are Go
// duration strings ("30s", "1m30s").
type fileConfig struct {
	Listen           string               `json:"listen,omitempty"`
	Workers          int                  `json:"workers,omitempty"`
	CacheMB          int64                `json:"cacheMB,omitempty"`
	AutoLandmarks    bool                 `json:"autoLandmarks,omitempty"`
	SolveTimeout     string               `json:"solveTimeout,omitempty"`
	ShutdownGrace    string               `json:"shutdownGrace,omitempty"`
	MaxQueue         int                  `json:"maxQueue,omitempty"`
	AdminAddr        string               `json:"adminAddr,omitempty"`
	AdminToken       string               `json:"adminToken,omitempty"`
	GraphBudgetMB    int64                `json:"graphBudgetMB,omitempty"`
	Watch            string               `json:"watch,omitempty"`
	RequireAllGraphs bool                 `json:"requireAllGraphs,omitempty"`
	Graphs           []server.GraphConfig `json:"graphs"`
}

// multiFlag collects repeated -graph flags.
type multiFlag []string

func (m *multiFlag) String() string     { return fmt.Sprint(*m) }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}

func main() {
	var graphSpecs multiFlag
	flag.Var(&graphSpecs, "graph", "load a graph: name=gen=road,n=50000,rho=64,engine=auto | name=file=PATH | name=snapshot=PATH | name=pre=PATH (repeatable)")
	configPath := flag.String("config", "", "JSON config file (see package doc)")
	listen := flag.String("listen", ":8517", "HTTP listen address")
	workers := flag.Int("workers", 0, "max concurrent solves (0 = GOMAXPROCS)")
	cacheMB := flag.Int64("cache-mb", 256, "distance-cache budget in MiB (0 disables)")
	selftest := flag.Bool("selftest", false, "run an in-process load smoke test and exit")
	selftestQueries := flag.Int("selftest-queries", 2000, "queries fired by -selftest")
	selftestClients := flag.Int("selftest-clients", 16, "concurrent clients used by -selftest")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables")
	logRequests := flag.Bool("log-requests", false, "emit a structured log line per request and per solve")
	autoLandmarks := flag.Bool("auto-landmarks", false, "promote cached distance vectors into each graph's ALT landmark set (goal-directed route pruning)")
	solveTimeout := flag.Duration("solve-timeout", server.DefaultSolveTimeout, "per-request solve deadline; ?timeout_ms= may shorten it per request, never extend (0 disables)")
	shutdownGrace := flag.Duration("shutdown-grace", 10*time.Second, "how long shutdown waits for in-flight solves before aborting them")
	maxQueue := flag.Int("max-queue", 0, "max requests waiting for a solve slot before shedding with 503 (0 = 8 per worker)")
	adminAddr := flag.String("admin-addr", "", "serve the unauthenticated admin API (reload/load/remove) on this private address; empty disables")
	adminToken := flag.String("admin-token", "", "mount the admin API on the query port, guarded by this bearer token; empty keeps it off")
	graphBudgetMB := flag.Int64("graph-budget-mb", 0, "resident graph-memory budget in MiB; least-recently-queried graphs are evicted to cold state and reload on demand (0 = unlimited)")
	watch := flag.Duration("watch", 0, "poll file-backed graph sources at this interval and hot-reload on change; quarantined graphs re-probe with backoff (0 disables)")
	requireAllGraphs := flag.Bool("require-all-graphs", false, "exit at startup if ANY graph fails to load (default: come up degraded if at least one serves)")
	flag.Parse()

	// Explicit flags beat the config file; flag.Visit distinguishes a
	// flag the operator actually passed from one left at its default.
	setFlags := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })

	var cfgs []server.GraphConfig
	if *configPath != "" {
		data, err := os.ReadFile(*configPath)
		if err != nil {
			fail("config: %v", err)
		}
		var fc fileConfig
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&fc); err != nil {
			fail("config %s: %v", *configPath, err)
		}
		cfgs = append(cfgs, fc.Graphs...)
		if fc.Listen != "" && !setFlags["listen"] {
			*listen = fc.Listen
		}
		if fc.Workers > 0 && !setFlags["workers"] {
			*workers = fc.Workers
		}
		if fc.CacheMB > 0 && !setFlags["cache-mb"] {
			*cacheMB = fc.CacheMB
		}
		if fc.AutoLandmarks && !setFlags["auto-landmarks"] {
			*autoLandmarks = true
		}
		if fc.SolveTimeout != "" && !setFlags["solve-timeout"] {
			d, err := time.ParseDuration(fc.SolveTimeout)
			if err != nil {
				fail("config %s: solveTimeout: %v", *configPath, err)
			}
			*solveTimeout = d
		}
		if fc.ShutdownGrace != "" && !setFlags["shutdown-grace"] {
			d, err := time.ParseDuration(fc.ShutdownGrace)
			if err != nil {
				fail("config %s: shutdownGrace: %v", *configPath, err)
			}
			*shutdownGrace = d
		}
		if fc.MaxQueue > 0 && !setFlags["max-queue"] {
			*maxQueue = fc.MaxQueue
		}
		if fc.AdminAddr != "" && !setFlags["admin-addr"] {
			*adminAddr = fc.AdminAddr
		}
		if fc.AdminToken != "" && !setFlags["admin-token"] {
			*adminToken = fc.AdminToken
		}
		if fc.GraphBudgetMB > 0 && !setFlags["graph-budget-mb"] {
			*graphBudgetMB = fc.GraphBudgetMB
		}
		if fc.Watch != "" && !setFlags["watch"] {
			d, err := time.ParseDuration(fc.Watch)
			if err != nil {
				fail("config %s: watch: %v", *configPath, err)
			}
			*watch = d
		}
		if fc.RequireAllGraphs && !setFlags["require-all-graphs"] {
			*requireAllGraphs = true
		}
	}
	for _, spec := range graphSpecs {
		cfg, err := server.ParseGraphSpec(spec)
		if err != nil {
			fail("%v", err)
		}
		cfgs = append(cfgs, cfg)
	}
	if len(cfgs) == 0 {
		if *selftest {
			// A sensible default workload so `ssspd -selftest` works bare.
			cfgs = append(cfgs, server.GraphConfig{
				Name: "demo", Gen: "road", N: 50000, Weights: 10000, Rho: 64, Seed: 42,
			})
		} else {
			fail("need at least one -graph spec or a -config file (try: -graph demo=gen=road,n=50000)")
		}
	}

	reg := server.NewRegistry()
	if *graphBudgetMB > 0 {
		reg.SetBudget(*graphBudgetMB << 20)
	}
	// Graphs load concurrently and independently: one broken spec
	// quarantines (visible in /readyz and /v1/graphs) while the others
	// come up. Duplicate names are caught by LoadConfig's registration,
	// which runs before the build, so the race between two same-named
	// specs resolves to exactly one registered graph plus one error.
	loadGraphs := func() (loaded int) {
		var wg sync.WaitGroup
		var ok atomic.Int64
		for _, cfg := range cfgs {
			wg.Add(1)
			go func(cfg server.GraphConfig) {
				defer wg.Done()
				t0 := time.Now()
				if err := reg.LoadConfig(cfg); err != nil {
					log.Printf("graph %q failed to load (quarantined): %v", cfg.Name, err)
					return
				}
				entry, _ := reg.Get(cfg.Name)
				if entry == nil {
					// Loaded and already budget-evicted; still a success.
					log.Printf("graph %q loaded and immediately evicted under -graph-budget-mb", cfg.Name)
					ok.Add(1)
					return
				}
				log.Printf("graph %q ready: n=%d m=%d rho=%d k=%d +%d shortcuts radii=%s source=%s (%v)",
					entry.Name, entry.Info.Vertices, entry.Info.Edges, entry.Info.Rho,
					entry.Info.K, entry.Info.ShortcutsAdded, entry.Info.RadiiSource,
					entry.Info.Source, time.Since(t0).Round(time.Millisecond))
				ok.Add(1)
			}(cfg)
		}
		wg.Wait()
		return int(ok.Load())
	}

	var reqLogger *slog.Logger
	if *logRequests {
		reqLogger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	effTimeout := *solveTimeout
	if effTimeout <= 0 {
		effTimeout = -1 // Config: < 0 disables the deadline
	}
	srv := server.New(reg, server.Config{
		Workers:       *workers,
		CacheBytes:    *cacheMB << 20,
		Logger:        reqLogger,
		AutoLandmarks: *autoLandmarks,
		SolveTimeout:  effTimeout,
		QueueDepth:    *maxQueue,
		AdminToken:    *adminToken,
	})

	if *selftest {
		// The smoke test queries every configured graph; a partial load
		// would fail it confusingly later, so be strict here.
		if loaded := loadGraphs(); loaded < len(cfgs) {
			fail("selftest: %d of %d graphs failed to load", len(cfgs)-loaded, len(cfgs))
		}
		report, err := server.LoadSmoke(srv, server.SmokeConfig{
			Queries: *selftestQueries,
			Clients: *selftestClients,
		})
		if err != nil {
			fail("selftest: %v", err)
		}
		fmt.Println(report)
		if report.Failures > 0 {
			os.Exit(1)
		}
		return
	}

	// pprof lives on its own mux and (usually loopback) address, never
	// the query listener: profiling endpoints expose heap contents and
	// must not ride on a port that may be reachable by clients.
	if *pprofAddr != "" {
		pprofMux := http.NewServeMux()
		pprofMux.HandleFunc("/debug/pprof/", pprof.Index)
		pprofMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pprofMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pprofMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pprofMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, pprofMux); err != nil && err != http.ErrServerClosed {
				log.Printf("pprof serve: %v", err)
			}
		}()
	}

	// The listener comes up before the (possibly long) graph
	// preprocessing so orchestrators can watch /readyz flip from 503
	// "loading" to 200 instead of retrying a dead port; /healthz is 200
	// the whole time.
	srv.SetReady(false)
	httpSrv := &http.Server{
		Addr:         *listen,
		Handler:      srv.Handler(),
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 5 * time.Minute, // full distance vectors can be large
	}
	go func() {
		log.Printf("ssspd listening on %s (loading %d graphs)", *listen, len(cfgs))
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatalf("serve: %v", err)
		}
	}()

	// The admin API gets its own (normally loopback) listener so graph
	// mutation never rides on a client-reachable port unless the operator
	// opted into -admin-token.
	if *adminAddr != "" {
		adminSrv := &http.Server{
			Addr:         *adminAddr,
			Handler:      srv.AdminHandler(),
			ReadTimeout:  30 * time.Second,
			WriteTimeout: 5 * time.Minute, // reload blocks while the new epoch builds
		}
		go func() {
			log.Printf("admin API listening on %s", *adminAddr)
			if err := adminSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("admin serve: %v", err)
			}
		}()
	}

	loaded := loadGraphs()
	switch {
	case loaded == 0:
		// Nothing can serve: dying loudly beats squatting on the port
		// answering 503s until someone notices.
		fail("all %d graphs failed to load", len(cfgs))
	case loaded < len(cfgs) && *requireAllGraphs:
		fail("%d of %d graphs failed to load (-require-all-graphs)", len(cfgs)-loaded, len(cfgs))
	case loaded < len(cfgs):
		log.Printf("degraded: %d of %d graphs failed to load; serving the rest (see /readyz and /v1/graphs)",
			len(cfgs)-loaded, len(cfgs))
	}
	srv.SetReady(true)
	log.Printf("ready: %d graphs serving", reg.Len())

	watchCtx, watchCancel := context.WithCancel(context.Background())
	defer watchCancel()
	if *watch > 0 {
		log.Printf("watching file-backed graph sources every %v", *watch)
		go reg.Watch(watchCtx, *watch)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop

	// Graceful shutdown: flip /readyz to draining so load balancers
	// stop routing here, stop accepting connections, wait out in-flight
	// solves under the grace budget, then abort stragglers through the
	// cooperative cancel probes.
	log.Printf("shutting down: draining (grace %v)", *shutdownGrace)
	srv.BeginDrain()
	graceCtx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
	defer cancel()
	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- httpSrv.Shutdown(graceCtx) }()
	if err := srv.Drain(graceCtx); err != nil {
		log.Printf("drain grace expired; aborting in-flight solves")
		srv.Abort()
		finalCtx, fcancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer fcancel()
		_ = srv.Drain(finalCtx)
	}
	<-shutdownErr
	log.Printf("shutdown complete")
}
