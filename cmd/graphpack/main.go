// Command graphpack builds serving-ready graph snapshots: it loads or
// generates a graph, runs the (k, ρ)-preprocessing once, and writes a
// versioned, checksummed binary snapshot holding the CSR arrays, the
// per-vertex radii, and the original graph. ssspd loads such a snapshot
// in milliseconds without re-running preprocessing — the paper's Step 1
// paid once per graph instead of once per daemon start.
//
// Input formats are auto-detected: the native text format, DIMACS ".gr"
// ("p sp" / 1-indexed "a u v w" lines), headerless "u v [w]" edge
// lists, binary CSR, or an existing snapshot (re-packing with new
// parameters).
//
// Examples:
//
//	graphpack -in USA-road-d.NY.gr -rho 64 -o ny.snap
//	graphpack -gen road -n 200000 -weights 10000 -rho 64 -k 3 -o road.snap
//	graphpack -in web.tsv -raw -o web.snap        # convert only, no radii
//	ssspd -graph ny=snapshot=ny.snap
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	rs "radiusstep"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}

func main() {
	in := flag.String("in", "", "input graph file (text|dimacs|edgelist|binary|snapshot, auto-detected)")
	gen := flag.String("gen", "", "generate instead: grid2d|grid3d|road|web|er|rmat|smallworld|comb")
	n := flag.Int("n", 100000, "approximate vertex count for -gen")
	seed := flag.Uint64("seed", 42, "generator seed")
	weights := flag.Int("weights", 0, "assign uniform integer weights in [1, W] (0 = keep)")
	connected := flag.Bool("connected", false, "keep only the largest connected component")
	rho := flag.Int("rho", 0, "ball size ρ (0 = solver default 32)")
	k := flag.Int("k", 0, "hop budget k (0 = solver default 1)")
	heuristic := flag.String("heuristic", "", "shortcut heuristic for k>1: direct|greedy|dp")
	order := flag.String("order", "none", "cache-locality vertex order: bfs|degree|none; the snapshot stores the permutation and ssspd maps ids transparently")
	raw := flag.Bool("raw", false, "skip preprocessing: write a graph-only snapshot (no radii)")
	landmarks := flag.Int("landmarks", 0, "build K ALT landmark distance vectors and pack them into the snapshot (goal-directed route pruning; needs preprocessing)")
	lmStrategy := flag.String("landmark-strategy", "farthest", "landmark selection: farthest|degree")
	out := flag.String("o", "", "output snapshot path (required)")
	flag.Parse()

	if *out == "" {
		fail("graphpack: -o OUTPUT is required")
	}
	if (*in == "") == (*gen == "") {
		fail("graphpack: exactly one of -in or -gen is required")
	}
	if *raw && (*rho != 0 || *k != 0 || *heuristic != "") {
		fail("graphpack: -raw skips preprocessing; -rho/-k/-heuristic do not apply")
	}
	if *raw && *landmarks != 0 {
		fail("graphpack: -landmarks needs preprocessed radii; it does not apply with -raw")
	}
	if *landmarks < 0 || *landmarks > rs.MaxLandmarks {
		fail("graphpack: -landmarks %d out of range [0,%d]", *landmarks, rs.MaxLandmarks)
	}

	// Load or generate.
	t0 := time.Now()
	var (
		g      *rs.Graph
		origin string
	)
	if *in != "" {
		// Snapshot inputs yield the true original graph (LoadGraphFile's
		// contract), so re-packing with new parameters never re-shortcuts
		// an already-augmented graph.
		var format rs.GraphFormat
		var err error
		g, format, err = rs.LoadGraphFile(*in)
		switch {
		// The two snapshot failure classes need different operator
		// action, so report them distinctly: a truncated file is a bad
		// copy (re-fetch it), a corrupt one needs re-packing.
		case errors.Is(err, rs.ErrSnapshotTruncated):
			fail("graphpack: %s is a truncated snapshot (short file — re-fetch or re-copy it): %v", *in, err)
		case errors.Is(err, rs.ErrSnapshotCorrupt):
			fail("graphpack: %s is a corrupt snapshot (bad checksum or structure — rebuild it with graphpack): %v", *in, err)
		case err != nil:
			fail("graphpack: %v", err)
		}
		origin = fmt.Sprintf("%s (%s)", *in, format)
	} else {
		var err error
		g, err = rs.GenerateByName(*gen, *n, *seed)
		if err != nil {
			fail("graphpack: %v", err)
		}
		origin = fmt.Sprintf("gen:%s,n=%d,seed=%d", *gen, *n, *seed)
	}
	if *connected {
		g, _ = rs.LargestComponent(g)
	}
	if *weights > 0 {
		g = rs.WithUniformIntWeights(g, 1, *weights, *seed+1)
	}
	loadTime := time.Since(t0)
	fmt.Fprintf(os.Stderr, "loaded %s: n=%d m=%d L=%g (%v)\n",
		origin, g.NumVertices(), g.NumEdges(), g.MaxWeight(), loadTime.Round(time.Millisecond))

	// Relabel for cache locality BEFORE preprocessing, so the radii, the
	// shortcut edges, and both stored graphs live in the reordered id
	// space; the permutation rides along in the snapshot and the daemon
	// maps queries back to original ids transparently.
	perm, err := rs.OrderByName(g, *order)
	if err != nil {
		fail("graphpack: %v", err)
	}
	if perm != nil {
		t1 := time.Now()
		g = rs.ApplyOrder(g, perm)
		fmt.Fprintf(os.Stderr, "reordered vertices (%s) (%v)\n", *order, time.Since(t1).Round(time.Millisecond))
	}

	// Preprocess (unless -raw) and assemble the snapshot.
	var snap *rs.Snapshot
	if *raw {
		snap = &rs.Snapshot{G: g, Perm: perm}
		fmt.Fprintf(os.Stderr, "raw conversion: no radii; ssspd will preprocess at load time\n")
	} else {
		opt := rs.Options{Rho: *rho, K: *k}
		if *heuristic != "" {
			h, err := rs.ParseHeuristic(*heuristic)
			if err != nil {
				fail("graphpack: %v", err)
			}
			opt.Heuristic = h
		}
		t1 := time.Now()
		pre, err := rs.Preprocess(g, opt)
		if err != nil {
			fail("graphpack: preprocess: %v", err)
		}
		eff := opt.WithDefaults()
		snap, err = rs.NewSnapshot(pre, opt)
		if err != nil {
			fail("graphpack: %v", err)
		}
		snap.Perm = perm
		fmt.Fprintf(os.Stderr, "preprocessed rho=%d k=%d heuristic=%s: +%d shortcuts, visited %d, scanned %d (%v)\n",
			eff.Rho, eff.K, eff.Heuristic, pre.Added, pre.Visited, pre.EdgesScanned,
			time.Since(t1).Round(time.Millisecond))

		// Landmark vectors are computed in the snapshot's (possibly
		// reordered) id space, so the daemon restores them without any
		// remapping: pruning always runs on stored ids.
		if *landmarks > 0 {
			strat, err := rs.ParseLandmarkStrategy(*lmStrategy)
			if err != nil {
				fail("graphpack: %v", err)
			}
			solver, err := rs.NewSolverPre(pre, rs.EngineAuto)
			if err != nil {
				fail("graphpack: %v", err)
			}
			t2 := time.Now()
			built, err := solver.BuildLandmarks(*landmarks, strat)
			if err != nil {
				fail("graphpack: landmarks: %v", err)
			}
			snap.Landmarks, snap.LandmarkDist = solver.LandmarkData()
			fmt.Fprintf(os.Stderr, "landmarks: built %d (%s) (%v)\n",
				built, strat, time.Since(t2).Round(time.Millisecond))
		}
	}

	t2 := time.Now()
	if err := rs.WriteSnapshotFile(*out, snap); err != nil {
		fail("graphpack: write: %v", err)
	}
	st, err := os.Stat(*out)
	if err != nil {
		fail("graphpack: stat: %v", err)
	}
	radii := "no"
	if snap.Radii != nil {
		radii = "yes"
	}
	fmt.Fprintf(os.Stderr, "wrote %s: %.1f MiB, radii=%s, landmarks=%d (%v)\n",
		*out, float64(st.Size())/(1<<20), radii, len(snap.Landmarks), time.Since(t2).Round(time.Millisecond))
}
