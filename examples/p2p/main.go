// P2P: point-to-point routing with early termination. A solver built
// once serves route queries that stop as soon as the destination is
// settled — Theorem 3.1 guarantees settled distances are exact — so a
// nearby destination costs a handful of rounds instead of a full solve.
package main

import (
	"fmt"
	"log"

	rs "radiusstep"
)

func main() {
	raw, _ := rs.LargestComponent(rs.RoadNet(30000, 6, 123))
	g := rs.WithUniformIntWeights(raw, 1, 10000, 124)
	fmt.Printf("road network: n=%d m=%d\n", g.NumVertices(), g.NumEdges())

	solver, err := rs.NewSolver(g, rs.Options{Rho: 48})
	if err != nil {
		log.Fatal(err)
	}

	src := rs.Vertex(10)
	full := rs.Dijkstra(g, src)
	_, stFull, err := solver.Distances(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full solve from %d: %d rounds\n\n", src, stFull.Steps)

	fmt.Println("dst      distance  rounds  path-hops")
	for _, dst := range []rs.Vertex{11, 500, 5000, 25000} {
		if int(dst) >= g.NumVertices() {
			continue
		}
		d, st, err := solver.Distance(src, dst)
		if err != nil {
			log.Fatal(err)
		}
		if d != full[dst] {
			log.Fatalf("dst %d: got %v, Dijkstra says %v", dst, d, full[dst])
		}
		path, pd, err := solver.Path(src, dst)
		if err != nil {
			log.Fatal(err)
		}
		if pd != d {
			log.Fatalf("dst %d: path length %v != distance %v", dst, pd, d)
		}
		fmt.Printf("%-7d  %-8.6g  %-6d  %d\n", dst, d, st.Steps, len(path)-1)
	}
	fmt.Println("\n(rounds grow with distance: the solve stops at the target's annulus)")
}
