// Unweighted: the §3.4 regime. On unit-weight graphs Radius-Stepping
// behaves like a BFS that leaps several levels per round: with r(v) =
// r_ρ(v) each round settles about ρ vertices, cutting the number of
// synchronous rounds (the depth) well below the graph's eccentricity.
package main

import (
	"fmt"
	"log"

	rs "radiusstep"
)

func main() {
	g := rs.Grid2D(300, 300) // unit weights, eccentricity ~598 from a corner
	src := rs.Vertex(0)

	_, bfsLevels := rs.BFSParallel(g, src)
	fmt.Printf("300x300 unit grid: parallel BFS needs %d synchronous levels\n", bfsLevels)

	fmt.Println("\nradius-stepping rounds as rho grows (flat engine, sec. 3.4):")
	fmt.Println("  rho   rounds  reduction")
	for _, rho := range []int{1, 4, 16, 64} {
		pre, err := rs.Preprocess(g, rs.Options{Rho: rho})
		if err != nil {
			log.Fatal(err)
		}
		solver, err := rs.NewSolverPre(pre, rs.EngineFlat)
		if err != nil {
			log.Fatal(err)
		}
		dist, st, err := solver.Distances(src)
		if err != nil {
			log.Fatal(err)
		}
		// Spot-check: unit-grid distance is the Manhattan distance.
		if dist[299] != 299 {
			log.Fatalf("rho=%d: wrong corner distance %v", rho, dist[299])
		}
		fmt.Printf("  %-4d  %-6d  %.1fx\n", rho, st.Steps, float64(bfsLevels)/float64(st.Steps))
	}

	fmt.Println("\n(each round is one parallel phase: fewer rounds = shorter critical path)")
}
