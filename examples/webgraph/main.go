// Webgraph: reproduces the paper's §5.2 observation that on scale-free
// graphs the DP shortcut heuristic vastly outperforms the greedy one.
// Hubs sit at irregular tree depths, so greedy's fixed-level rule
// shortcuts entire fan-outs, while the dynamic program discovers that one
// edge to the hub covers them all.
package main

import (
	"fmt"
	"log"

	rs "radiusstep"
)

func main() {
	// A Barabási–Albert graph with Stanford-webgraph-like density,
	// weighted like the paper's experiments (uniform integers in
	// [1, 10⁴]; the weighted shortest-path trees are the deep irregular
	// ones the heuristics differ on).
	g := rs.WithUniformIntWeights(rs.ScaleFree(30000, 7, 99), 1, 10000, 100)
	m := g.NumEdges()
	fmt.Printf("web graph: n=%d m=%d maxdeg=%d\n", g.NumVertices(), m, g.MaxDegree())

	fmt.Println("\nshortcut edges emitted at k=3 (factor of original m):")
	fmt.Println("  rho   greedy            dp")
	for _, rho := range []int{10, 50, 100} {
		var counts [2]int64
		for i, h := range []rs.Heuristic{rs.HeuristicGreedy, rs.HeuristicDP} {
			pre, err := rs.Preprocess(g, rs.Options{Rho: rho, K: 3, Heuristic: h})
			if err != nil {
				log.Fatal(err)
			}
			counts[i] = pre.Added
		}
		fmt.Printf("  %-4d  %8d (%.2fx)  %8d (%.2fx)\n",
			rho,
			counts[0], float64(counts[0])/float64(m),
			counts[1], float64(counts[1])/float64(m))
	}

	// Query with the DP-preprocessed graph and confirm the substep bound
	// k+2 (Theorem 3.2) holds.
	k := 3
	solver, err := rs.NewSolver(g, rs.Options{Rho: 50, K: k, Heuristic: rs.HeuristicDP})
	if err != nil {
		log.Fatal(err)
	}
	dist, st, err := solver.Distances(1)
	if err != nil {
		log.Fatal(err)
	}
	if err := rs.VerifyDistances(g, 1, dist); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsolve(rho=50, k=%d, dp): %s\n", k, st)
	fmt.Printf("max substeps in any step: %d (Theorem 3.2 bound: k+2 = %d)\n",
		st.MaxSubsteps, k+2)
}
