// Quickstart: build a small weighted graph, preprocess it, run
// Radius-Stepping, and check the result against Dijkstra. This is the
// minimal end-to-end use of the public API, and it also prints the
// per-step trace to show the algorithm's anatomy (the paper's Figure 1:
// each step settles an annulus d_{i-1} < d(s,v) <= d_i chosen from the
// per-vertex radii).
package main

import (
	"fmt"
	"log"

	rs "radiusstep"
)

func main() {
	// A weighted 8x8 grid with random integer weights in [1, 100].
	g := rs.WithUniformIntWeights(rs.Grid2D(8, 8), 1, 100, 7)
	fmt.Printf("graph: %d vertices, %d edges, L=%g\n",
		g.NumVertices(), g.NumEdges(), g.MaxWeight())

	// Preprocess into a (1, ρ)-graph with ρ = 8: every vertex gets
	// shortcut edges to its 8-ball and the radius r(v) = r_8(v).
	solver, err := rs.NewSolver(g, rs.Options{Rho: 8})
	if err != nil {
		log.Fatal(err)
	}
	pre := solver.Preprocessed()
	fmt.Printf("preprocess: +%d shortcut edges (graph now has %d)\n",
		pre.Added, pre.Graph.NumEdges())

	// Solve from vertex 0, tracing each step.
	fmt.Println("\nstep   d_i      lead  settled  substeps")
	dist, stats, err := solver.DistancesTrace(0, func(tr rs.StepTrace) {
		fmt.Printf("%4d   %-7.4g  %-4d  %-7d  %d\n",
			tr.Step, tr.Di, tr.Lead, tr.Settled, tr.Substeps)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntotal: %s\n", stats)

	// Cross-check against Dijkstra and the optimality certificate.
	want := rs.Dijkstra(g, 0)
	for v := range want {
		if dist[v] != want[v] {
			log.Fatalf("mismatch at %d: %v vs %v", v, dist[v], want[v])
		}
	}
	if err := rs.VerifyDistances(g, 0, dist); err != nil {
		log.Fatal(err)
	}
	fmt.Println("distances verified against Dijkstra and the SSSP certificate")
	fmt.Printf("distance to far corner (63): %g\n", dist[63])
}
