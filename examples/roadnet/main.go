// Roadnet: the many-sources scenario the paper's §5.4 recommends
// Radius-Stepping for. On a road-network-like graph, preprocessing cost
// is paid once and amortized over many shortest-path queries (think
// one query per incoming routing request), each finishing in a few
// hundred rounds instead of Dijkstra's ~n rounds.
package main

import (
	"fmt"
	"log"
	"time"

	rs "radiusstep"
)

func main() {
	// A ~50k-vertex random geometric graph: near-planar, constant
	// degree, large diameter — the road-map regime. Weights model
	// travel times (uniform integers in [1, 10⁴], as in the paper).
	raw := rs.RoadNet(50000, 6, 42)
	g0, _ := rs.LargestComponent(raw)
	g := rs.WithUniformIntWeights(g0, 1, 10000, 43)
	fmt.Printf("road network: n=%d m=%d\n", g.NumVertices(), g.NumEdges())

	// Preprocess once with a large-ish ρ (many sources amortize it).
	t0 := time.Now()
	solver, err := rs.NewSolver(g, rs.Options{Rho: 64, Engine: rs.EngineSequential})
	if err != nil {
		log.Fatal(err)
	}
	pre := solver.Preprocessed()
	fmt.Printf("preprocess(rho=64): %v, +%d shortcuts (m: %d -> %d)\n",
		time.Since(t0).Round(time.Millisecond), pre.Added,
		g.NumEdges(), pre.Graph.NumEdges())

	// Serve a batch of queries; compare rounds with the rho=1 baseline
	// (Dijkstra with batched ties) on the first one.
	sources := []rs.Vertex{0, 999, 7777, 12345, 31337}
	var totalSteps, totalQueries int
	t1 := time.Now()
	for _, src := range sources {
		if int(src) >= g.NumVertices() {
			continue
		}
		dist, st, err := solver.Distances(src)
		if err != nil {
			log.Fatal(err)
		}
		if err := rs.VerifyDistances(g, src, dist); err != nil {
			log.Fatalf("source %d: %v", src, err)
		}
		totalSteps += st.Steps
		totalQueries++
		fmt.Printf("  src=%-6d steps=%-5d substeps=%-5d (verified)\n", src, st.Steps, st.Substeps)
	}
	fmt.Printf("%d queries in %v, mean %.1f rounds each\n",
		totalQueries, time.Since(t1).Round(time.Millisecond),
		float64(totalSteps)/float64(totalQueries))

	// The depth story: how many rounds would rho=1 (Dijkstra-like) take?
	base, err := rs.NewSolver(g, rs.Options{Rho: 1, Engine: rs.EngineSequential})
	if err != nil {
		log.Fatal(err)
	}
	_, st, err := base.Distances(sources[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rho=1 baseline from src=%d: %d rounds — radius stepping cut the critical path by ~%.0fx\n",
		sources[0], st.Steps, float64(st.Steps)*float64(totalQueries)/float64(totalSteps))
}
