package radiusstep

import (
	"fmt"

	"radiusstep/internal/core"
	"radiusstep/internal/graph"
	"radiusstep/internal/parallel"
	"radiusstep/internal/preprocess"
)

// Graph is an immutable undirected weighted graph in compressed-sparse-
// row form. Build one with NewBuilder, FromEdges, a generator, or the
// reader functions.
type Graph = graph.CSR

// Edge is one undirected weighted edge {U, V} with weight W >= 0.
type Edge = graph.Edge

// Vertex is a dense vertex identifier in [0, n).
type Vertex = graph.V

// Stats reports the round structure of one solve: Steps (outer rounds),
// Substeps (inner Bellman–Ford rounds), counters for scanned edges and
// successful relaxations.
type Stats = core.Stats

// StepTrace describes one completed radius-stepping step to observers.
type StepTrace = core.StepTrace

// Heuristic selects how shortcut edges are placed for K > 1.
type Heuristic = preprocess.Heuristic

// Shortcut heuristics: HeuristicDirect adds an edge to every ball vertex
// (the (1,ρ) construction); HeuristicGreedy shortcuts tree levels
// k+1, 2k+1, …; HeuristicDP solves the per-tree optimal F(u,t) dynamic
// program (§4.2 of the paper; DP is never worse than greedy).
const (
	HeuristicDirect = preprocess.Direct
	HeuristicGreedy = preprocess.Greedy
	HeuristicDP     = preprocess.DP
)

// Engine selects the radius-stepping implementation a Solver uses.
type Engine int

const (
	// EngineAuto picks EngineParallel for large graphs and
	// EngineSequential for small ones.
	EngineAuto Engine = iota
	// EngineSequential is the lazy-heap reference implementation —
	// fastest on a single core and the engine experiments count with.
	EngineSequential
	// EngineParallel is the paper's Algorithm 2: ordered-set Q/R with
	// bulk updates and concurrent priority-write relaxations.
	EngineParallel
	// EngineFlat is the §3.4 frontier engine (no ordered sets); on
	// unweighted graphs this is the parallel-BFS-style variant.
	EngineFlat
)

// String names the engine.
func (e Engine) String() string {
	switch e {
	case EngineAuto:
		return "auto"
	case EngineSequential:
		return "sequential"
	case EngineParallel:
		return "parallel"
	case EngineFlat:
		return "flat"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// ParseHeuristic maps a heuristic name (direct, greedy, dp) to its
// value, the inverse of Heuristic.String. CLI tools and config loaders
// should use this instead of a bare map lookup so typos fail loudly
// rather than silently selecting the zero value.
func ParseHeuristic(name string) (Heuristic, error) {
	switch name {
	case "direct":
		return HeuristicDirect, nil
	case "greedy":
		return HeuristicGreedy, nil
	case "dp":
		return HeuristicDP, nil
	default:
		return HeuristicDirect, fmt.Errorf("radiusstep: unknown heuristic %q (want direct|greedy|dp)", name)
	}
}

// ParseEngine maps an engine name to its value, accepting both the
// String() names (auto, sequential, parallel, flat) and the short CLI
// aliases (seq, par).
func ParseEngine(name string) (Engine, error) {
	switch name {
	case "auto":
		return EngineAuto, nil
	case "seq", "sequential":
		return EngineSequential, nil
	case "par", "parallel":
		return EngineParallel, nil
	case "flat":
		return EngineFlat, nil
	default:
		return EngineAuto, fmt.Errorf("radiusstep: unknown engine %q (want auto|seq|par|flat)", name)
	}
}

// Options configures preprocessing and the solver.
type Options struct {
	// Rho is the ball size ρ (>= 1): each step settles about ρ vertices,
	// so depth shrinks and preprocessing cost grows with ρ. Default 32.
	Rho int
	// K is the hop budget k (>= 1, default 1): larger k adds fewer
	// shortcut edges but allows up to k+2 substeps per step.
	K int
	// Heuristic places shortcuts when K > 1 (default HeuristicDP).
	Heuristic Heuristic
	// Engine picks the query implementation (default EngineAuto).
	Engine Engine
}

func (o *Options) setDefaults() {
	if o.Rho == 0 {
		o.Rho = 32
	}
	if o.K == 0 {
		o.K = 1
	}
	if o.K > 1 && o.Heuristic == HeuristicDirect {
		o.Heuristic = HeuristicDP
	}
}

// WithDefaults returns o with the solver defaults filled in (Rho 32,
// K 1, DP heuristic when K > 1) — the effective parameters NewSolver
// would run with. Exposed so tools that persist preprocessing results
// (cmd/graphpack) and serving metadata report the truth instead of zero
// values.
func (o Options) WithDefaults() Options {
	o.setDefaults()
	return o
}

// Preprocessed is the output of Preprocess: the augmented (k, ρ)-graph
// (same shortest-path metric as the input), the radii, and work
// statistics.
type Preprocessed struct {
	// Graph is the input plus shortcut edges; queries run on it.
	Graph *Graph
	// Original is the input graph (no shortcuts). Path reconstruction
	// walks it so returned routes use only real edges.
	Original *Graph
	// Radii holds r_ρ(v) for every vertex.
	Radii []float64
	// Added counts genuinely new shortcut edges (per-source accounting).
	Added int64
	// Visited and EdgesScanned measure preprocessing work.
	Visited      int64
	EdgesScanned int64
}

// Preprocess converts g into a (k, ρ)-graph per opt and derives the
// per-vertex radii. The input graph is not modified. Rho is clamped to
// the vertex count (a ball cannot exceed the graph).
func Preprocess(g *Graph, opt Options) (*Preprocessed, error) {
	opt.setDefaults()
	if n := g.NumVertices(); opt.Rho > n && n > 0 {
		opt.Rho = n
	}
	res, err := preprocess.Run(g, preprocess.Options{
		Rho:       opt.Rho,
		K:         opt.K,
		Heuristic: opt.Heuristic,
	})
	if err != nil {
		return nil, err
	}
	return &Preprocessed{
		Graph:        res.G,
		Original:     g,
		Radii:        res.Radii,
		Added:        res.Added,
		Visited:      res.Visited,
		EdgesScanned: res.EdgesScanned,
	}, nil
}

// Radii computes r_ρ(v) for every vertex without adding shortcuts.
func Radii(g *Graph, rho int) ([]float64, error) {
	return preprocess.RadiiOnly(g, rho)
}

// Solver answers repeated single-source shortest-path queries over a
// preprocessed graph. Construct with NewSolver (which preprocesses) or
// NewSolverPre (re-using an existing Preprocessed). A Solver is safe for
// concurrent queries: each Distances call works on its own state.
type Solver struct {
	pre    *Preprocessed
	engine Engine
}

// NewSolver preprocesses g per opt and returns a query object. The
// preprocessing cost is amortized over all subsequent queries (§5.4:
// raise Rho when many sources will be queried).
func NewSolver(g *Graph, opt Options) (*Solver, error) {
	opt.setDefaults()
	pre, err := Preprocess(g, opt)
	if err != nil {
		return nil, err
	}
	return &Solver{pre: pre, engine: opt.Engine}, nil
}

// NewSolverPre wraps an existing preprocessing result.
func NewSolverPre(pre *Preprocessed, engine Engine) (*Solver, error) {
	if pre == nil || pre.Graph == nil || len(pre.Radii) != pre.Graph.NumVertices() {
		return nil, fmt.Errorf("radiusstep: invalid preprocessed input")
	}
	return &Solver{pre: pre, engine: engine}, nil
}

// Preprocessed exposes the solver's augmented graph and radii.
func (s *Solver) Preprocessed() *Preprocessed { return s.pre }

// NewSnapshot packages a preprocessing result for persistence: the
// augmented graph, the original graph, the radii, and the effective
// parameters from opt. Write it with WriteSnapshot/WriteSnapshotFile.
func NewSnapshot(pre *Preprocessed, opt Options) (*Snapshot, error) {
	if pre == nil || pre.Graph == nil || len(pre.Radii) != pre.Graph.NumVertices() {
		return nil, fmt.Errorf("radiusstep: invalid preprocessed input")
	}
	opt.setDefaults()
	// Mirror Preprocess's rho clamp so the persisted metadata states the
	// parameters the radii were actually derived with.
	if n := pre.Graph.NumVertices(); opt.Rho > n && n > 0 {
		opt.Rho = n
	}
	return &Snapshot{
		G:         pre.Graph,
		Original:  pre.Original,
		Radii:     pre.Radii,
		Rho:       opt.Rho,
		K:         opt.K,
		Heuristic: opt.Heuristic.String(),
	}, nil
}

// SolverFromSnapshot builds a query Solver from a persisted snapshot
// without re-running preprocessing. The snapshot must carry radii (i.e.
// it was written from a preprocessing result, not a bare format
// conversion); otherwise preprocess the snapshot's graph with NewSolver.
func SolverFromSnapshot(s *Snapshot, engine Engine) (*Solver, error) {
	if s == nil || s.G == nil {
		return nil, fmt.Errorf("radiusstep: nil snapshot")
	}
	if s.Radii == nil {
		return nil, fmt.Errorf("radiusstep: snapshot has no radii; preprocess its graph with NewSolver instead")
	}
	return NewSolverPre(&Preprocessed{
		Graph:    s.G,
		Original: s.Original,
		Radii:    s.Radii,
	}, engine)
}

// autoThreshold: below this many arcs the sequential engine wins.
const autoThreshold = 1 << 17

func (s *Solver) pick() Engine {
	if s.engine != EngineAuto {
		return s.engine
	}
	if s.pre.Graph.NumArcs() >= autoThreshold {
		return EngineParallel
	}
	return EngineSequential
}

// Distances returns the shortest-path distances from src on the original
// metric (+Inf for unreachable vertices) and the round statistics.
func (s *Solver) Distances(src Vertex) ([]float64, Stats, error) {
	switch s.pick() {
	case EngineParallel:
		return core.Solve(s.pre.Graph, s.pre.Radii, src)
	case EngineFlat:
		return core.SolveFlat(s.pre.Graph, s.pre.Radii, src)
	default:
		return core.SolveRef(s.pre.Graph, s.pre.Radii, src)
	}
}

// DistancesTrace is Distances with a per-step observer (sequential
// engine only, which is the one that reports traces).
func (s *Solver) DistancesTrace(src Vertex, fn func(StepTrace)) ([]float64, Stats, error) {
	return core.SolveRefTrace(s.pre.Graph, s.pre.Radii, src, fn)
}

// SolveWithRadii runs radius-stepping directly with caller-provided
// radii (correct for any non-negative radii; the step bounds require the
// (k,ρ) property). Exposed for experimentation — most callers want
// Solver.
func SolveWithRadii(g *Graph, radii []float64, src Vertex, engine Engine) ([]float64, Stats, error) {
	switch engine {
	case EngineParallel:
		return core.Solve(g, radii, src)
	case EngineFlat:
		return core.SolveFlat(g, radii, src)
	default:
		return core.SolveRef(g, radii, src)
	}
}

// DistancesBatch answers queries from many sources, running the
// sequential engine on each source with sources distributed across
// cores — the layout the paper's multi-source amortization argument
// (§5.4) targets. The result holds one distance vector per source
// (memory is len(sources)·n·8 bytes).
func (s *Solver) DistancesBatch(sources []Vertex) ([][]float64, []Stats, error) {
	dists := make([][]float64, len(sources))
	stats := make([]Stats, len(sources))
	errs := make([]error, len(sources))
	parallel.Workers(len(sources), func(_ int, claim func() (int, bool)) {
		for {
			i, ok := claim()
			if !ok {
				return
			}
			dists[i], stats[i], errs[i] = core.SolveRef(s.pre.Graph, s.pre.Radii, sources[i])
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	return dists, stats, nil
}
