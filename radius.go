package radiusstep

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"radiusstep/internal/core"
	"radiusstep/internal/graph"
	"radiusstep/internal/landmark"
	"radiusstep/internal/parallel"
	"radiusstep/internal/preprocess"
	"radiusstep/internal/trace"
)

// Graph is an immutable undirected weighted graph in compressed-sparse-
// row form. Build one with NewBuilder, FromEdges, a generator, or the
// reader functions.
type Graph = graph.CSR

// Edge is one undirected weighted edge {U, V} with weight W >= 0.
type Edge = graph.Edge

// Vertex is a dense vertex identifier in [0, n).
type Vertex = graph.V

// Stats reports the round structure of one solve: Steps (outer rounds),
// Substeps (inner Bellman–Ford rounds), counters for scanned edges and
// successful relaxations, and — for the engines built on the ordered-
// frontier substrate — the substrate's operation counters (Frontier).
type Stats = core.Stats

// FrontierOps counts ordered-frontier substrate operations (staged
// pushes, sealed batches, run merges, extractions, stale skips, rank
// queries) for one solve on the parallel or rho engine.
type FrontierOps = core.FrontierOps

// StepTrace describes one completed radius-stepping step to observers.
type StepTrace = core.StepTrace

// Timeline is the full trace of one solve: per-step and per-substep
// timing records, worker-pool event deltas, and frontier-substrate
// phase timings. Produced by Solver.DistancesTraced, the daemon's
// ?trace=1 query parameter, cmd/sssp -trace and radius-bench -trace.
type Timeline = trace.Timeline

// TimelineStep is one step's trace record (threshold, settled count,
// substeps, phase timings).
type TimelineStep = trace.StepRecord

// TimelineSubstep is one Bellman–Ford substep's trace record
// (push/pull mode, frontier size, arcs scanned, wall time).
type TimelineSubstep = trace.SubstepRecord

// TimelinePool is the worker-pool event delta across a traced solve
// (wakes, parks, wake latency, join-barrier wait, claims).
type TimelinePool = trace.PoolDelta

// TimelineFrontier is the ordered-frontier substrate's phase timing for
// a traced solve (filter vs sort vs merge time inside Commit).
type TimelineFrontier = trace.FrontierPhases

// Heuristic selects how shortcut edges are placed for K > 1.
type Heuristic = preprocess.Heuristic

// Shortcut heuristics: HeuristicDirect adds an edge to every ball vertex
// (the (1,ρ) construction); HeuristicGreedy shortcuts tree levels
// k+1, 2k+1, …; HeuristicDP solves the per-tree optimal F(u,t) dynamic
// program (§4.2 of the paper; DP is never worse than greedy).
const (
	HeuristicDirect = preprocess.Direct
	HeuristicGreedy = preprocess.Greedy
	HeuristicDP     = preprocess.DP
)

// Engine selects the stepping engine a Solver uses. All engines share
// one driver and produce identical distances; they differ in how each
// step's settling threshold is chosen and in their fringe structures
// (see internal/core's stepping-engine framework).
type Engine int

const (
	// EngineAuto picks EngineParallel for large graphs and
	// EngineSequential for small ones. As a per-query override it means
	// "no override": the solver's configured engine applies.
	EngineAuto Engine = iota
	// EngineSequential is the lazy-heap reference implementation —
	// fastest on a single core and the engine experiments count with.
	EngineSequential
	// EngineParallel is the paper's Algorithm 2: ordered-set Q/R with
	// bulk updates and concurrent priority-write relaxations.
	EngineParallel
	// EngineFlat is the §3.4 frontier engine (no ordered sets); on
	// unweighted graphs this is the parallel-BFS-style variant.
	EngineFlat
	// EngineDelta is Δ-stepping expressed in the unified framework:
	// each step settles everything below the ceiling of the lowest
	// occupied Δ-bucket. It ignores the radii (Options.Delta tunes the
	// bucket width; 0 derives one from the graph).
	EngineDelta
	// EngineRho is ρ-stepping: each step settles at least the ρ closest
	// fringe vertices (Options.Rho doubles as the quota). It ignores
	// the radii.
	EngineRho
)

// String names the engine.
func (e Engine) String() string {
	switch e {
	case EngineAuto:
		return "auto"
	case EngineSequential:
		return "sequential"
	case EngineParallel:
		return "parallel"
	case EngineFlat:
		return "flat"
	case EngineDelta:
		return "delta"
	case EngineRho:
		return "rho"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// ParseHeuristic maps a heuristic name (direct, greedy, dp) to its
// value, the inverse of Heuristic.String. CLI tools and config loaders
// should use this instead of a bare map lookup so typos fail loudly
// rather than silently selecting the zero value.
func ParseHeuristic(name string) (Heuristic, error) {
	switch name {
	case "direct":
		return HeuristicDirect, nil
	case "greedy":
		return HeuristicGreedy, nil
	case "dp":
		return HeuristicDP, nil
	default:
		return HeuristicDirect, fmt.Errorf("radiusstep: unknown heuristic %q (want direct|greedy|dp)", name)
	}
}

// ParseEngine maps an engine name to its value, accepting both the
// String() names (auto, sequential, parallel, flat, delta, rho) and the
// short CLI aliases (seq, par).
func ParseEngine(name string) (Engine, error) {
	switch name {
	case "auto":
		return EngineAuto, nil
	case "seq", "sequential":
		return EngineSequential, nil
	case "par", "parallel":
		return EngineParallel, nil
	case "flat":
		return EngineFlat, nil
	case "delta":
		return EngineDelta, nil
	case "rho":
		return EngineRho, nil
	default:
		return EngineAuto, fmt.Errorf("radiusstep: unknown engine %q (want auto|seq|par|flat|delta|rho)", name)
	}
}

// Options configures preprocessing and the solver.
type Options struct {
	// Rho is the ball size ρ (>= 1): each step settles about ρ vertices,
	// so depth shrinks and preprocessing cost grows with ρ. Default 32.
	// EngineRho reuses it as the per-step extraction quota.
	Rho int
	// K is the hop budget k (>= 1, default 1): larger k adds fewer
	// shortcut edges but allows up to k+2 substeps per step.
	K int
	// Heuristic places shortcuts when K > 1 (default HeuristicDP).
	Heuristic Heuristic
	// Engine picks the query implementation (default EngineAuto).
	Engine Engine
	// Delta is the Δ-stepping bucket width used by EngineDelta
	// (0 derives max-weight/mean-degree from the graph; other engines
	// ignore it).
	Delta float64
}

func (o *Options) setDefaults() {
	if o.Rho == 0 {
		o.Rho = 32
	}
	if o.K == 0 {
		o.K = 1
	}
	if o.K > 1 && o.Heuristic == HeuristicDirect {
		o.Heuristic = HeuristicDP
	}
}

// validate rejects option values that setDefaults would otherwise let
// slip through (a negative Rho or K is never a default request, it is a
// bug in the caller).
func (o Options) validate() error {
	if o.Rho < 0 {
		return fmt.Errorf("radiusstep: Rho %d is negative (use 0 for the default, or >= 1)", o.Rho)
	}
	if o.K < 0 {
		return fmt.Errorf("radiusstep: K %d is negative (use 0 for the default, or >= 1)", o.K)
	}
	if o.Delta < 0 || math.IsNaN(o.Delta) {
		return fmt.Errorf("radiusstep: Delta %v must be >= 0 (0 derives a default)", o.Delta)
	}
	if o.Engine < EngineAuto || o.Engine > EngineRho {
		return fmt.Errorf("radiusstep: unknown engine %d", int(o.Engine))
	}
	if o.Heuristic < HeuristicDirect || o.Heuristic > HeuristicDP {
		return fmt.Errorf("radiusstep: unknown heuristic %d", int(o.Heuristic))
	}
	return nil
}

// WithDefaults returns o with the solver defaults filled in (Rho 32,
// K 1, DP heuristic when K > 1) — the effective parameters NewSolver
// would run with. Exposed so tools that persist preprocessing results
// (cmd/graphpack) and serving metadata report the truth instead of zero
// values.
func (o Options) WithDefaults() Options {
	o.setDefaults()
	return o
}

// Preprocessed is the output of Preprocess: the augmented (k, ρ)-graph
// (same shortest-path metric as the input), the radii, and work
// statistics.
type Preprocessed struct {
	// Graph is the input plus shortcut edges; queries run on it.
	Graph *Graph
	// Original is the input graph (no shortcuts). Path reconstruction
	// walks it so returned routes use only real edges.
	Original *Graph
	// Radii holds r_ρ(v) for every vertex.
	Radii []float64
	// Added counts genuinely new shortcut edges (per-source accounting).
	Added int64
	// Visited and EdgesScanned measure preprocessing work.
	Visited      int64
	EdgesScanned int64
}

// Preprocess converts g into a (k, ρ)-graph per opt and derives the
// per-vertex radii. The input graph is not modified. Rho is clamped to
// the vertex count (a ball cannot exceed the graph). Invalid options
// (negative Rho, K or Delta, unknown engine or heuristic) are rejected
// with a clear error rather than silently defaulted.
func Preprocess(g *Graph, opt Options) (*Preprocessed, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	opt.setDefaults()
	if n := g.NumVertices(); opt.Rho > n && n > 0 {
		opt.Rho = n
	}
	res, err := preprocess.Run(g, preprocess.Options{
		Rho:       opt.Rho,
		K:         opt.K,
		Heuristic: opt.Heuristic,
	})
	if err != nil {
		return nil, err
	}
	return &Preprocessed{
		Graph:        res.G,
		Original:     g,
		Radii:        res.Radii,
		Added:        res.Added,
		Visited:      res.Visited,
		EdgesScanned: res.EdgesScanned,
	}, nil
}

// Radii computes r_ρ(v) for every vertex without adding shortcuts.
func Radii(g *Graph, rho int) ([]float64, error) {
	return preprocess.RadiiOnly(g, rho)
}

// Solver answers repeated single-source shortest-path queries over a
// preprocessed graph. Construct with NewSolver (which preprocesses) or
// NewSolverPre (re-using an existing Preprocessed). A Solver is safe for
// concurrent queries: each solve takes a pooled workspace, so repeated
// queries are allocation-free in steady state beyond the returned
// distance vectors.
type Solver struct {
	pre    *Preprocessed
	engine Engine
	params core.Params
	// wsPool pools *core.Workspace, one per in-flight solve. It sits
	// behind an atomic pointer (not a bare sync.Pool) so ResetWorkspaces
	// can swap in a fresh pool without copying a pool value or racing
	// concurrent Get/Put; nil means "not created yet" and is equivalent
	// to an empty pool.
	wsPool atomic.Pointer[sync.Pool]

	// lm is the ALT landmark set serving goal-directed Route queries;
	// nil until landmarks are built (BuildLandmarks), adopted
	// (AdoptLandmark) or restored from a snapshot. Published by atomic
	// pointer: readers Load once per query, writers copy-on-write under
	// lmMu (see landmarks.go).
	lm   atomic.Pointer[landmark.Set]
	lmMu sync.Mutex
}

// NewSolver preprocesses g per opt and returns a query object. The
// preprocessing cost is amortized over all subsequent queries (§5.4:
// raise Rho when many sources will be queried).
func NewSolver(g *Graph, opt Options) (*Solver, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	opt.setDefaults()
	pre, err := Preprocess(g, opt)
	if err != nil {
		return nil, err
	}
	return newSolver(pre, opt.Engine, core.Params{Delta: opt.Delta, Rho: opt.Rho}), nil
}

// NewSolverPre wraps an existing preprocessing result.
func NewSolverPre(pre *Preprocessed, engine Engine) (*Solver, error) {
	if pre == nil || pre.Graph == nil || len(pre.Radii) != pre.Graph.NumVertices() {
		return nil, fmt.Errorf("radiusstep: invalid preprocessed input")
	}
	if engine < EngineAuto || engine > EngineRho {
		return nil, fmt.Errorf("radiusstep: unknown engine %d", int(engine))
	}
	return newSolver(pre, engine, core.Params{}), nil
}

// newSolver finalizes the strategy parameters: the Δ default is derived
// once here (it scans the weights) so per-query engine overrides never
// pay for it on the hot path.
func newSolver(pre *Preprocessed, engine Engine, params core.Params) *Solver {
	if !(params.Delta > 0) {
		params.Delta = core.DefaultDelta(pre.Graph)
	}
	return &Solver{pre: pre, engine: engine, params: params}
}

// SetDelta overrides the Δ-stepping bucket width EngineDelta uses
// (<= 0 restores the derived default). It exists so deployments loading
// persisted preprocessing (snapshots, bundles) can still tune the
// query-time strategy; call it before serving queries — it is not
// synchronized with in-flight solves.
func (s *Solver) SetDelta(delta float64) {
	if !(delta > 0) {
		delta = core.DefaultDelta(s.pre.Graph)
	}
	s.params.Delta = delta
}

// getWS takes a workspace from the solver's pool (or makes one). Callers
// return it with putWS; buffers are grow-only, so steady-state queries
// on one graph reuse the same allocations.
func (s *Solver) getWS() *core.Workspace {
	if p := s.wsPool.Load(); p != nil {
		if v := p.Get(); v != nil {
			return v.(*core.Workspace)
		}
	}
	return core.NewWorkspace()
}

// putWS returns a workspace to the pool, creating the pool on first use.
func (s *Solver) putWS(ws *core.Workspace) {
	p := s.wsPool.Load()
	for p == nil {
		if s.wsPool.CompareAndSwap(nil, new(sync.Pool)) {
			break
		}
		p = s.wsPool.Load()
	}
	if p == nil {
		p = s.wsPool.Load()
	}
	p.Put(ws)
}

// ResetWorkspaces discards every pooled solve workspace by swapping in a
// fresh pool; in-flight solves finish on their old workspaces, which are
// then returned to the new pool and re-grown on demand. Workspace
// buffers are grow-only — sized by the largest solve they ever served —
// so a measurement harness that sweeps a dimension affecting buffer
// shape (GOMAXPROCS, most notably: per-worker buffers are sized by the
// worker count) calls this between settings to keep each setting's
// steady state from inheriting the previous one's footprint. Not needed
// in ordinary serving, where inherited capacity is exactly the point of
// pooling.
func (s *Solver) ResetWorkspaces() {
	s.wsPool.Store(new(sync.Pool))
}

// Preprocessed exposes the solver's augmented graph and radii.
func (s *Solver) Preprocessed() *Preprocessed { return s.pre }

// NewSnapshot packages a preprocessing result for persistence: the
// augmented graph, the original graph, the radii, and the effective
// parameters from opt. Write it with WriteSnapshot/WriteSnapshotFile.
func NewSnapshot(pre *Preprocessed, opt Options) (*Snapshot, error) {
	if pre == nil || pre.Graph == nil || len(pre.Radii) != pre.Graph.NumVertices() {
		return nil, fmt.Errorf("radiusstep: invalid preprocessed input")
	}
	opt.setDefaults()
	// Mirror Preprocess's rho clamp so the persisted metadata states the
	// parameters the radii were actually derived with.
	if n := pre.Graph.NumVertices(); opt.Rho > n && n > 0 {
		opt.Rho = n
	}
	return &Snapshot{
		G:         pre.Graph,
		Original:  pre.Original,
		Radii:     pre.Radii,
		Rho:       opt.Rho,
		K:         opt.K,
		Heuristic: opt.Heuristic.String(),
	}, nil
}

// SolverFromSnapshot builds a query Solver from a persisted snapshot
// without re-running preprocessing. The snapshot must carry radii (i.e.
// it was written from a preprocessing result, not a bare format
// conversion); otherwise preprocess the snapshot's graph with NewSolver.
// The persisted ρ becomes the ρ-stepping quota, so a snapshot-loaded
// solver answers engine=rho queries with the same step structure as one
// preprocessed in-process with that ρ.
//
// A snapshot packed with a cache-locality relabeling (graphpack -order;
// s.Perm != nil) yields a solver that operates in STORED ids: map query
// sources through s.Perm[src] and returned distance vectors back with
// UnpermuteFloats(dist, s.Perm) (vertices in paths map back through
// InvertPerm) — exactly what the serving registry does transparently;
// see internal/server's remapBackend. Callers that want original ids
// without remapping should load via LoadGraphFile (which undoes the
// relabeling) and preprocess with NewSolver instead.
func SolverFromSnapshot(s *Snapshot, engine Engine) (*Solver, error) {
	if s == nil || s.G == nil {
		return nil, fmt.Errorf("radiusstep: nil snapshot")
	}
	if s.Radii == nil {
		return nil, fmt.Errorf("radiusstep: snapshot has no radii; preprocess its graph with NewSolver instead")
	}
	if len(s.Radii) != s.G.NumVertices() {
		return nil, fmt.Errorf("radiusstep: snapshot radii/graph size mismatch")
	}
	if engine < EngineAuto || engine > EngineRho {
		return nil, fmt.Errorf("radiusstep: unknown engine %d", int(engine))
	}
	sol := newSolver(&Preprocessed{
		Graph:    s.G,
		Original: s.Original,
		Radii:    s.Radii,
	}, engine, core.Params{Rho: s.Rho})
	if len(s.Landmarks) > 0 {
		// Restore persisted ALT landmark vectors (graphpack -landmarks)
		// so the loaded solver serves goal-directed routes immediately.
		if err := sol.SetLandmarkData(s.Landmarks, s.LandmarkDist); err != nil {
			return nil, fmt.Errorf("radiusstep: snapshot landmarks: %w", err)
		}
	}
	return sol, nil
}

// autoThreshold: below this many arcs the sequential engine wins.
const autoThreshold = 1 << 17

// resolve maps an engine request to a concrete engine: EngineAuto falls
// back to the solver's configured engine, and a still-auto choice picks
// by graph size.
func (s *Solver) resolve(e Engine) Engine {
	if e == EngineAuto {
		e = s.engine
	}
	if e == EngineAuto {
		if s.pre.Graph.NumArcs() >= autoThreshold {
			return EngineParallel
		}
		return EngineSequential
	}
	return e
}

// engineKind maps the public Engine enum onto the framework's kinds.
// Engine must already be resolved (not EngineAuto).
func engineKind(e Engine) (core.EngineKind, error) {
	switch e {
	case EngineSequential:
		return core.KindSequential, nil
	case EngineParallel:
		return core.KindParallel, nil
	case EngineFlat:
		return core.KindFlat, nil
	case EngineDelta:
		return core.KindDelta, nil
	case EngineRho:
		return core.KindRho, nil
	default:
		return 0, fmt.Errorf("radiusstep: unknown engine %d", int(e))
	}
}

// Distances returns the shortest-path distances from src on the original
// metric (+Inf for unreachable vertices) and the round statistics, using
// the solver's configured engine.
func (s *Solver) Distances(src Vertex) ([]float64, Stats, error) {
	return s.DistancesWith(src, EngineAuto)
}

// DistancesWith is Distances with a per-query engine override:
// EngineAuto means "no override" (the solver's configured engine
// applies); any other value selects that engine for this query only.
// Every engine returns identical distances, so overrides are safe to
// mix freely — the daemon uses this to honor ?engine= per request.
func (s *Solver) DistancesWith(src Vertex, engine Engine) ([]float64, Stats, error) {
	kind, err := engineKind(s.resolve(engine))
	if err != nil {
		return nil, Stats{}, err
	}
	ws := s.getWS()
	d, st, err := core.SolveKind(s.pre.Graph, s.pre.Radii, src, kind, s.params, ws)
	s.putWS(ws)
	return d, st, err
}

// DistancesTraced is DistancesWith plus a solve timeline: per-step and
// per-substep timing records, worker-pool event deltas, and frontier
// phase timings. The recorder is created per call, so concurrent traced
// and untraced queries coexist; untraced queries stay on the zero-
// overhead path (a traced solve costs clock reads and a few small
// allocations per step). Pool counters are process-global, so under
// concurrent solves the timeline's pool delta includes the neighbors'
// events — exact only when solves are serialized (CLI tools, benches).
func (s *Solver) DistancesTraced(src Vertex, engine Engine) ([]float64, Stats, *Timeline, error) {
	kind, err := engineKind(s.resolve(engine))
	if err != nil {
		return nil, Stats{}, nil, err
	}
	rec := core.NewTraceRecorder()
	params := s.params
	params.Recorder = rec
	ws := s.getWS()
	d, st, err := core.SolveKind(s.pre.Graph, s.pre.Radii, src, kind, params, ws)
	s.putWS(ws)
	if err != nil {
		return nil, Stats{}, nil, err
	}
	return d, st, rec.Timeline(), nil
}

// DistancesTrace is Distances with a per-step observer (sequential
// engine only, which is the one that reports traces).
func (s *Solver) DistancesTrace(src Vertex, fn func(StepTrace)) ([]float64, Stats, error) {
	return core.SolveRefTrace(s.pre.Graph, s.pre.Radii, src, fn)
}

// SolveWithRadii runs a stepping engine directly with caller-provided
// radii (correct for any non-negative radii; the step bounds require the
// (k,ρ) property; EngineDelta and EngineRho ignore the radii). Exposed
// for experimentation — most callers want Solver.
func SolveWithRadii(g *Graph, radii []float64, src Vertex, engine Engine) ([]float64, Stats, error) {
	if engine == EngineAuto {
		engine = EngineSequential
	}
	kind, err := engineKind(engine)
	if err != nil {
		return nil, Stats{}, err
	}
	return core.SolveKind(g, radii, src, kind, core.Params{}, nil)
}

// DistancesBatch answers queries from many sources with the solver's
// configured engine. For the sequential engine (and EngineAuto, whose
// batch shape is source-level parallelism — the layout the paper's
// multi-source amortization argument §5.4 targets) the sources are
// distributed across cores, each worker reusing a pooled workspace. An
// explicitly parallel engine runs the sources one at a time, each solve
// using all cores, so the machine is never oversubscribed. The result
// holds one distance vector per source (memory is len(sources)·n·8
// bytes).
func (s *Solver) DistancesBatch(sources []Vertex) ([][]float64, []Stats, error) {
	eng := s.engine
	if eng == EngineAuto {
		eng = EngineSequential
	}
	kind, err := engineKind(eng)
	if err != nil {
		return nil, nil, err
	}
	dists := make([][]float64, len(sources))
	stats := make([]Stats, len(sources))
	errs := make([]error, len(sources))
	if kind == core.KindSequential {
		parallel.Workers(len(sources), func(_ int, claim func() (int, bool)) {
			ws := s.getWS()
			defer s.putWS(ws)
			for {
				i, ok := claim()
				if !ok {
					return
				}
				dists[i], stats[i], errs[i] = core.SolveKind(s.pre.Graph, s.pre.Radii, sources[i], kind, s.params, ws)
			}
		})
	} else {
		ws := s.getWS()
		for i, src := range sources {
			dists[i], stats[i], errs[i] = core.SolveKind(s.pre.Graph, s.pre.Radii, src, kind, s.params, ws)
		}
		s.putWS(ws)
	}
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	return dists, stats, nil
}
