package server

import (
	"context"
	"errors"
	"sync/atomic"
)

// errQueueFull is returned by acquire when the bounded wait queue is at
// capacity: the server sheds the request (503 + Retry-After) instead of
// letting an unbounded line of waiters build up behind slow solves.
var errQueueFull = errors.New("server: solve queue full")

// solvePool bounds the number of SSSP solves running at once so a burst
// of uncached queries cannot oversubscribe the machine (each solve may
// itself be internally parallel), and bounds how many requests may wait
// for a slot so a stall cannot queue unbounded work. Cache hits never
// touch the pool.
type solvePool struct {
	sem      chan struct{}
	queueCap int64
	inUse    atomic.Int64
	waiting  atomic.Int64
	shed     atomic.Int64
}

// newSolvePool builds a pool of `workers` slots and a wait queue of
// queueCap entries; queueCap <= 0 selects 8 waiters per slot.
func newSolvePool(workers, queueCap int) *solvePool {
	if workers < 1 {
		workers = 1
	}
	if queueCap <= 0 {
		queueCap = 8 * workers
	}
	return &solvePool{sem: make(chan struct{}, workers), queueCap: int64(queueCap)}
}

// acquire obtains a solve slot: immediately when one is free, otherwise
// by joining the bounded wait queue until a slot frees or ctx ends. A
// full queue fails fast with errQueueFull (counted as a shed). The
// waiting select commits to exactly one communication — either the slot
// send completes (and the slot is owned) or the ctx branch is taken
// (and no send happened) — so a waiter whose context fires while a slot
// frees concurrently can never take the slot and abandon it.
func (p *solvePool) acquire(ctx context.Context) error {
	// Fast path: free slot, no queue accounting, no ctx check — matches
	// the uncontended steady state.
	select {
	case p.sem <- struct{}{}:
		p.inUse.Add(1)
		return nil
	default:
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	// Bounded admission: reserve a queue position or shed. The CAS loop
	// makes reserve-if-below-cap atomic under concurrent arrivals.
	for {
		w := p.waiting.Load()
		if w >= p.queueCap {
			p.shed.Add(1)
			return errQueueFull
		}
		if p.waiting.CompareAndSwap(w, w+1) {
			break
		}
	}
	defer p.waiting.Add(-1)
	select {
	case p.sem <- struct{}{}:
		p.inUse.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (p *solvePool) release() {
	<-p.sem
	p.inUse.Add(-1)
}

func (p *solvePool) size() int { return cap(p.sem) }

// PoolStats snapshots the worker pool.
type PoolStats struct {
	Workers  int   `json:"workers"`
	InUse    int64 `json:"inUse"`
	Waiting  int64 `json:"waiting"`
	QueueCap int64 `json:"queueCap"`
	// Shed counts requests rejected because the wait queue was full.
	Shed int64 `json:"shed"`
}

func (p *solvePool) Stats() PoolStats {
	return PoolStats{
		Workers:  p.size(),
		InUse:    p.inUse.Load(),
		Waiting:  p.waiting.Load(),
		QueueCap: p.queueCap,
		Shed:     p.shed.Load(),
	}
}
