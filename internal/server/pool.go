package server

import (
	"context"
	"sync/atomic"
)

// solvePool bounds the number of SSSP solves running at once so a burst
// of uncached queries cannot oversubscribe the machine (each solve may
// itself be internally parallel). Cache hits never touch the pool.
type solvePool struct {
	sem     chan struct{}
	inUse   atomic.Int64
	waiting atomic.Int64
}

func newSolvePool(workers int) *solvePool {
	if workers < 1 {
		workers = 1
	}
	return &solvePool{sem: make(chan struct{}, workers)}
}

// acquire blocks until a solve slot is free or ctx is done.
func (p *solvePool) acquire(ctx context.Context) error {
	p.waiting.Add(1)
	defer p.waiting.Add(-1)
	select {
	case p.sem <- struct{}{}:
		p.inUse.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (p *solvePool) release() {
	<-p.sem
	p.inUse.Add(-1)
}

func (p *solvePool) size() int { return cap(p.sem) }

// PoolStats snapshots the worker pool.
type PoolStats struct {
	Workers int   `json:"workers"`
	InUse   int64 `json:"inUse"`
	Waiting int64 `json:"waiting"`
}

func (p *solvePool) Stats() PoolStats {
	return PoolStats{Workers: p.size(), InUse: p.inUse.Load(), Waiting: p.waiting.Load()}
}
