package server

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"radiusstep/internal/fault"
)

// chaosEngines are the engine overrides the chaos suite rotates
// through: every query path must stay correct under injected faults on
// every engine, and the survivors' distance vectors must be
// byte-identical across all of them.
var chaosEngines = []string{"sequential", "parallel", "flat", "delta", "rho"}

// newChaosServer builds an HTTP server over a real generated graph via
// BuildEntry — the same construction path cmd/ssspd uses, so the
// snapshot-load fault seam is exercised by the loader tests below. The
// cache is disabled so every request runs the full flight → pool →
// engine pipeline.
func newChaosServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	fault.Clear()
	t.Cleanup(fault.Clear)
	entry, err := BuildEntry(GraphConfig{
		Name: "chaos", Gen: "grid2d", N: 400, Seed: 9, Weights: 100, Rho: 8,
	})
	if err != nil {
		t.Fatalf("BuildEntry: %v", err)
	}
	reg := NewRegistry()
	if err := reg.Add(entry); err != nil {
		t.Fatalf("Add: %v", err)
	}
	s := New(reg, Config{Workers: 2, QueueDepth: 64, CacheBytes: 0, SolveTimeout: 30 * time.Second})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// chaosGet fetches one distances vector with an engine override and
// returns the raw response body — survivors are compared byte for byte.
func chaosGet(t *testing.T, ts *httptest.Server, src int64, engine string) (int, string) {
	t.Helper()
	body := fmt.Sprintf(`{"graph":"chaos","source":%d}`, src)
	r, err := ts.Client().Post(ts.URL+"/v1/distances?engine="+engine, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer r.Body.Close()
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return r.StatusCode, string(raw)
}

// TestChaosLoadFaults drives the snapshot-load seam: an injected error
// or panic during graph construction must come back as a clean error
// from BuildEntry, never a crash, and clearing the plan restores loads.
func TestChaosLoadFaults(t *testing.T) {
	fault.Clear()
	t.Cleanup(fault.Clear)
	cfg := GraphConfig{Name: "lf", Gen: "grid2d", N: 100, Seed: 1, Weights: 10, Rho: 4}

	fault.Inject(fault.SiteSnapshotLoad, fault.Plan{Err: errors.New("disk gone")})
	if _, err := BuildEntry(cfg); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("injected load error: %v, want ErrInjected", err)
	}

	fault.Inject(fault.SiteSnapshotLoad, fault.Plan{Panic: "loader exploded"})
	entry, err := BuildEntry(cfg)
	if entry != nil || err == nil || !strings.Contains(err.Error(), "load panic") {
		t.Fatalf("injected load panic: entry=%v err=%v, want contained panic error", entry, err)
	}

	fault.Clear()
	if _, err := BuildEntry(cfg); err != nil {
		t.Fatalf("load after Clear: %v", err)
	}
}

// TestChaosSuite is the end-to-end fault drill from the issue: a real
// graph served over HTTP, concurrent clients across all five engines,
// faults injected at the solve and cache-fill seams (errors, delays,
// panics). Afterward: no goroutine leaks, no stuck pool slots, and
// every surviving 200 carries a byte-identical body to the no-fault
// baseline.
func TestChaosSuite(t *testing.T) {
	before := runtime.NumGoroutine()
	_, ts := newChaosServer(t)

	sources := []int64{0, 17, 123, 399}
	// No-fault baseline, one body per (source, engine). Distances are
	// engine-independent and the body carries no engine field, so all
	// engines must reproduce the same bytes.
	baseline := make(map[int64]string)
	for _, src := range sources {
		code, body := chaosGet(t, ts, src, "sequential")
		if code != http.StatusOK {
			t.Fatalf("baseline src=%d: status %d", src, code)
		}
		baseline[src] = body
	}
	for _, eng := range chaosEngines[1:] {
		code, body := chaosGet(t, ts, sources[0], eng)
		if code != http.StatusOK || body != baseline[sources[0]] {
			t.Fatalf("engine %s baseline: status %d, body match=%v", eng, code, body == baseline[sources[0]])
		}
	}

	type phase struct {
		name string
		plan fault.Plan
		site string
		// wantFail: injected failures may surface as non-200s.
		wantFail bool
	}
	phases := []phase{
		{name: "solve-delay", site: fault.SiteSolve, plan: fault.Plan{Delay: 5 * time.Millisecond}},
		{name: "solve-error", site: fault.SiteSolve, plan: fault.Plan{Err: errors.New("engine offline"), Limit: 5}, wantFail: true},
		{name: "solve-panic", site: fault.SiteSolve, plan: fault.Plan{Panic: "engine exploded", Limit: 5}, wantFail: true},
		{name: "cache-fill-error", site: fault.SiteCacheFill, plan: fault.Plan{Err: errors.New("cache offline")}},
		{name: "cache-fill-panic", site: fault.SiteCacheFill, plan: fault.Plan{Panic: "cache exploded"}},
	}

	for _, ph := range phases {
		t.Run(ph.name, func(t *testing.T) {
			fault.Inject(ph.site, ph.plan)
			defer fault.Remove(ph.site)

			var wg sync.WaitGroup
			var mu sync.Mutex
			var failures, successes int
			for ci := 0; ci < 10; ci++ {
				wg.Add(1)
				go func(ci int) {
					defer wg.Done()
					for qi := 0; qi < 4; qi++ {
						src := sources[(ci+qi)%len(sources)]
						eng := chaosEngines[(ci+qi)%len(chaosEngines)]
						code, body := chaosGet(t, ts, src, eng)
						mu.Lock()
						if code == http.StatusOK {
							successes++
							if body != baseline[src] {
								t.Errorf("%s: survivor src=%d engine=%s body diverged from baseline", ph.name, src, eng)
							}
						} else {
							failures++
							if !ph.wantFail {
								t.Errorf("%s: unexpected status %d (src=%d engine=%s): %s", ph.name, code, src, eng, body)
							}
						}
						mu.Unlock()
					}
				}(ci)
			}
			wg.Wait()
			if successes == 0 {
				t.Fatalf("%s: no surviving queries at all", ph.name)
			}
			if ph.wantFail && failures == 0 {
				t.Errorf("%s: limit-bounded fault never fired", ph.name)
			}
			// The seam actually fired.
			if fault.Fired(ph.site) == 0 {
				t.Errorf("%s: fault site %s never checked", ph.name, ph.site)
			}
		})
	}

	// Aftermath: the server must be fully drained and healthy.
	flightWait(t, "pool and flight drain", func() bool {
		snap := fetchStats(t, ts)
		return snap.Pool.InUse == 0 && snap.Pool.Waiting == 0 && snap.Flight.InFlight == 0
	})
	snap := fetchStats(t, ts)
	if snap.SolvePanics == 0 {
		t.Error("solve-panic phase left no solvePanics count")
	}
	// Post-chaos sanity: all engines still serve the baseline bytes.
	for _, eng := range chaosEngines {
		code, body := chaosGet(t, ts, sources[1], eng)
		if code != http.StatusOK || body != baseline[sources[1]] {
			t.Fatalf("post-chaos engine %s: status %d, body match=%v", eng, code, body == baseline[sources[1]])
		}
	}

	// No goroutine leaks: transport and handler goroutines wind down
	// once idle connections close.
	ts.Client().CloseIdleConnections()
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before+8 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before chaos, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
