package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestPoolDefaultQueueCap(t *testing.T) {
	p := newSolvePool(2, 0)
	if st := p.Stats(); st.Workers != 2 || st.QueueCap != 16 {
		t.Fatalf("defaults: %+v, want 2 workers / 16 queue cap", st)
	}
}

// TestPoolQueueCapSheds: with every slot busy and the wait queue at
// capacity, the next acquire must fail fast with errQueueFull instead
// of joining an unbounded line.
func TestPoolQueueCapSheds(t *testing.T) {
	p := newSolvePool(1, 2)
	if err := p.acquire(context.Background()); err != nil {
		t.Fatalf("first acquire: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	waiterErrs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() { waiterErrs <- p.acquire(ctx) }()
	}
	flightWait(t, "queue to fill", func() bool { return p.Stats().Waiting == 2 })

	if err := p.acquire(context.Background()); !errors.Is(err, errQueueFull) {
		t.Fatalf("acquire at capacity: %v, want errQueueFull", err)
	}
	if st := p.Stats(); st.Shed != 1 {
		t.Fatalf("shed count: %+v, want 1", st)
	}

	// A freed slot admits exactly one waiter; canceling the other must
	// release its queue position.
	p.release()
	if err := <-waiterErrs; err != nil {
		t.Fatalf("admitted waiter: %v", err)
	}
	cancel()
	if err := <-waiterErrs; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter: %v, want context.Canceled", err)
	}
	p.release()
	if st := p.Stats(); st.InUse != 0 || st.Waiting != 0 {
		t.Fatalf("pool not drained: %+v", st)
	}
}

// TestPoolAcquireHonorsPreCanceledContext: a dead context never takes a
// queue position (only the uncontended fast path may still hand out a
// free slot, matching channel-select semantics).
func TestPoolAcquireHonorsPreCanceledContext(t *testing.T) {
	p := newSolvePool(1, 4)
	if err := p.acquire(context.Background()); err != nil {
		t.Fatalf("setup acquire: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.acquire(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("acquire with dead ctx: %v, want context.Canceled", err)
	}
	if st := p.Stats(); st.Waiting != 0 {
		t.Fatalf("dead ctx left a queue position: %+v", st)
	}
	p.release()
}

// TestPoolHammerNoLeak drives the pool with a mix of successful
// acquires, shed requests, and mid-wait cancellations; the invariant —
// no slot or queue position leaks — is the satellite fix for the
// acquire race where a waiter whose context fired could strand a slot.
func TestPoolHammerNoLeak(t *testing.T) {
	p := newSolvePool(2, 4)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 30; j++ {
				ctx, cancel := context.WithTimeout(context.Background(),
					time.Duration(1+(i+j)%3)*time.Millisecond)
				err := p.acquire(ctx)
				if err == nil {
					time.Sleep(200 * time.Microsecond)
					p.release()
				}
				cancel()
			}
		}(i)
	}
	wg.Wait()
	if st := p.Stats(); st.InUse != 0 || st.Waiting != 0 {
		t.Fatalf("pool leaked after hammer: %+v", st)
	}
}
