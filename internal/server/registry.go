package server

import (
	"bufio"
	"context"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"radiusstep/internal/fault"

	rs "radiusstep"
)

// Backend answers shortest-path queries for one graph. The production
// implementation wraps *radiusstep.Solver; tests substitute fakes to
// observe solve counts and control timing. The engine argument carries
// the per-request ?engine= override; EngineAuto means "no override"
// (the backend's configured engine applies), matching the
// Solver.DistancesWith contract.
type Backend interface {
	NumVertices() int
	// Distances runs a full SSSP solve from src.
	Distances(src rs.Vertex, engine rs.Engine) ([]float64, rs.Stats, error)
	// Path answers a point-to-point query with early termination.
	Path(src, dst rs.Vertex, engine rs.Engine) ([]rs.Vertex, float64, error)
}

// ContextBackend is the optional extension a Backend implements to run
// solves under a context: the serving layer threads the flight call's
// solve context (and each route request's deadline) through to the
// library's cooperative cancel probe, so abandoned or expired requests
// abort mid-solve with ErrCanceled/ErrDeadline instead of running to
// completion. A backend without it simply runs every solve to the end.
type ContextBackend interface {
	// DistancesCtx is Distances with cooperative cancellation.
	DistancesCtx(ctx context.Context, src rs.Vertex, engine rs.Engine) ([]float64, rs.Stats, error)
	// RouteCtx is Route with cooperative cancellation.
	RouteCtx(ctx context.Context, src, dst rs.Vertex, engine rs.Engine, prune bool) ([]rs.Vertex, float64, rs.Stats, error)
}

// TracingBackend is the optional extension a Backend implements to
// answer ?trace=1 queries with a solve timeline. It is a separate
// interface (not a Backend method) so existing Backend fakes and
// third-party implementations keep compiling; a backend without it
// simply rejects trace requests.
type TracingBackend interface {
	// DistancesTraced runs a full SSSP solve from src and returns the
	// solve timeline alongside the distances.
	DistancesTraced(src rs.Vertex, engine rs.Engine) ([]float64, rs.Stats, *rs.Timeline, error)
}

// RoutingBackend is the optional extension a Backend implements to
// answer point-to-point queries with goal-directed (ALT landmark)
// pruning and per-solve statistics. Like TracingBackend it is a
// separate interface so Backend fakes keep compiling; a backend
// without it falls back to Path.
type RoutingBackend interface {
	// Route answers a point-to-point query. prune enables landmark
	// pruning when the backend has landmarks (a no-op otherwise); the
	// distance is identical either way, only Stats.Pruned differs.
	Route(src, dst rs.Vertex, engine rs.Engine, prune bool) ([]rs.Vertex, float64, rs.Stats, error)
}

// VectorRouter is the optional extension that reconstructs a route from
// an already-computed full distance vector — the server uses it to
// answer /v1/route from the distance cache without spending a solve
// slot.
type VectorRouter interface {
	PathFromDistances(src, dst rs.Vertex, dist []float64) ([]rs.Vertex, float64, error)
}

// LandmarkBackend is the optional extension for ALT landmark
// management: reporting the live landmark count and promoting cached
// distance vectors into the landmark set (Config.AutoLandmarks).
type LandmarkBackend interface {
	// Landmarks reports the number of landmark vectors serving
	// goal-directed route queries.
	Landmarks() int
	// AdoptLandmark promotes src's full distance vector into the
	// landmark set. It reports false with a nil error when src is
	// already a landmark or the set is full.
	AdoptLandmark(src rs.Vertex, dist []float64) (bool, error)
}

// RadiiSource values: where a graph's radii came from at load time. The
// snapshot value is the observable contract that the registry skipped
// preprocessing and reused persisted radii.
const (
	RadiiComputed     = "computed"
	RadiiFromSnapshot = "snapshot"
	RadiiFromBundle   = "bundle"
)

// GraphInfo is the registry metadata served by GET /v1/graphs.
type GraphInfo struct {
	Name             string  `json:"name"`
	Vertices         int     `json:"vertices"`
	Edges            int     `json:"edges"`
	Rho              int     `json:"rho"`
	K                int     `json:"k"`
	Heuristic        string  `json:"heuristic"`
	Engine           string  `json:"engine"`
	ShortcutsAdded   int64   `json:"shortcutsAdded"`
	MaxWeight        float64 `json:"maxWeight"`
	PreprocessMillis int64   `json:"preprocessMillis"`
	Source           string  `json:"source"`
	// Format names the on-disk format the graph was loaded from
	// (text, dimacs, edgelist, binary, snapshot) or "gen".
	Format string `json:"format,omitempty"`
	// RadiiSource reports whether the (k, ρ)-radii were computed at
	// startup or loaded from persistence (RadiiComputed, RadiiFromSnapshot,
	// RadiiFromBundle).
	RadiiSource string `json:"radiiSource,omitempty"`
	// Reordered reports that the snapshot was packed with a
	// cache-locality vertex relabeling (graphpack -order); queries and
	// answers are mapped between original and stored ids transparently.
	Reordered bool `json:"reordered,omitempty"`
	// SnapshotBytes is the on-disk size of the loaded snapshot/bundle.
	SnapshotBytes int64 `json:"snapshotBytes,omitempty"`
	// ColdStartMillis is the total load time — file read plus any
	// preprocessing — from BuildEntry start to a query-ready solver.
	ColdStartMillis int64 `json:"coldStartMillis"`
	// Landmarks is the number of ALT landmark vectors serving
	// goal-directed route pruning. handleGraphs refreshes it live from
	// the backend (cache adoption grows the set after load).
	Landmarks int `json:"landmarks,omitempty"`
}

// Entry binds a name to a query backend and its metadata. An Entry is
// one immutable epoch of a graph: the registry publishes it through an
// atomic pointer and never mutates it afterward, so a query that
// pinned an Entry computes against a consistent snapshot no matter how
// many reloads happen mid-solve. Epoch is the registry-assigned,
// process-wide monotonic version (zero only for entries never
// published through a registry).
type Entry struct {
	Name    string
	Backend Backend
	Info    GraphInfo
	Epoch   uint64
}

// solverBackend adapts *radiusstep.Solver to the Backend interface.
type solverBackend struct {
	solver *rs.Solver
	n      int
}

func (b *solverBackend) NumVertices() int { return b.n }

func (b *solverBackend) Distances(src rs.Vertex, engine rs.Engine) ([]float64, rs.Stats, error) {
	return b.solver.DistancesWith(src, engine)
}

func (b *solverBackend) DistancesCtx(ctx context.Context, src rs.Vertex, engine rs.Engine) ([]float64, rs.Stats, error) {
	return b.solver.DistancesCtx(ctx, src, engine)
}

func (b *solverBackend) RouteCtx(ctx context.Context, src, dst rs.Vertex, engine rs.Engine, prune bool) ([]rs.Vertex, float64, rs.Stats, error) {
	return b.solver.RouteCtx(ctx, src, dst, engine, prune)
}

func (b *solverBackend) DistancesTraced(src rs.Vertex, engine rs.Engine) ([]float64, rs.Stats, *rs.Timeline, error) {
	return b.solver.DistancesTraced(src, engine)
}

func (b *solverBackend) Path(src, dst rs.Vertex, engine rs.Engine) ([]rs.Vertex, float64, error) {
	return b.solver.PathWith(src, dst, engine)
}

func (b *solverBackend) Route(src, dst rs.Vertex, engine rs.Engine, prune bool) ([]rs.Vertex, float64, rs.Stats, error) {
	return b.solver.Route(src, dst, engine, prune)
}

func (b *solverBackend) PathFromDistances(src, dst rs.Vertex, dist []float64) ([]rs.Vertex, float64, error) {
	return b.solver.PathFromDistances(src, dst, dist)
}

func (b *solverBackend) Landmarks() int { return b.solver.Landmarks() }

func (b *solverBackend) AdoptLandmark(src rs.Vertex, dist []float64) (bool, error) {
	return b.solver.AdoptLandmark(src, dist)
}

// remapBackend serves a graph that was relabeled at pack time for cache
// locality: queries arrive in original ids, the inner backend solves in
// stored ids, and every answer is mapped back. Clients never observe the
// relabeling — the API contract survives -order unchanged. The O(n)
// distance unpermute runs once per solve (cache misses only: the
// distance cache above this layer stores already-remapped vectors).
type remapBackend struct {
	inner Backend
	perm  []rs.Vertex // original id -> stored id
	inv   []rs.Vertex // stored id -> original id
}

func newRemapBackend(inner Backend, perm []rs.Vertex) *remapBackend {
	return &remapBackend{inner: inner, perm: perm, inv: rs.InvertPerm(perm)}
}

func (b *remapBackend) NumVertices() int { return b.inner.NumVertices() }

// checkVertex mirrors the solver's own range validation: out-of-range
// ids must produce the same clean error a non-reordered backend would,
// not an index panic from the permutation lookup.
func (b *remapBackend) checkVertex(v rs.Vertex) error {
	if v < 0 || int(v) >= len(b.perm) {
		return fmt.Errorf("server: vertex %d out of range [0,%d)", v, len(b.perm))
	}
	return nil
}

func (b *remapBackend) Distances(src rs.Vertex, engine rs.Engine) ([]float64, rs.Stats, error) {
	if err := b.checkVertex(src); err != nil {
		return nil, rs.Stats{}, err
	}
	d, st, err := b.inner.Distances(b.perm[src], engine)
	if err != nil {
		return nil, st, err
	}
	return rs.UnpermuteFloats(d, b.perm), st, nil
}

// DistancesCtx threads cancellation through the relabeling layer when
// the inner backend supports it, falling back to the uncancelable path
// otherwise (ids still remap either way).
func (b *remapBackend) DistancesCtx(ctx context.Context, src rs.Vertex, engine rs.Engine) ([]float64, rs.Stats, error) {
	cb, ok := b.inner.(ContextBackend)
	if !ok {
		return b.Distances(src, engine)
	}
	if err := b.checkVertex(src); err != nil {
		return nil, rs.Stats{}, err
	}
	d, st, err := cb.DistancesCtx(ctx, b.perm[src], engine)
	if err != nil {
		return nil, st, err
	}
	return rs.UnpermuteFloats(d, b.perm), st, nil
}

// RouteCtx threads cancellation through the relabeling layer; see
// Route for the id-mapping contract.
func (b *remapBackend) RouteCtx(ctx context.Context, src, dst rs.Vertex, engine rs.Engine, prune bool) ([]rs.Vertex, float64, rs.Stats, error) {
	cb, ok := b.inner.(ContextBackend)
	if !ok {
		rb, rok := b.inner.(RoutingBackend)
		if !rok {
			return nil, 0, rs.Stats{}, fmt.Errorf("server: backend does not support routing")
		}
		return b.routeMapped(src, dst, func(ss, sd rs.Vertex) ([]rs.Vertex, float64, rs.Stats, error) {
			return rb.Route(ss, sd, engine, prune)
		})
	}
	return b.routeMapped(src, dst, func(ss, sd rs.Vertex) ([]rs.Vertex, float64, rs.Stats, error) {
		return cb.RouteCtx(ctx, ss, sd, engine, prune)
	})
}

// routeMapped wraps an inner stored-id route solve with the endpoint
// and path remapping shared by Route and RouteCtx.
func (b *remapBackend) routeMapped(src, dst rs.Vertex, solve func(ss, sd rs.Vertex) ([]rs.Vertex, float64, rs.Stats, error)) ([]rs.Vertex, float64, rs.Stats, error) {
	if err := b.checkVertex(src); err != nil {
		return nil, 0, rs.Stats{}, err
	}
	if err := b.checkVertex(dst); err != nil {
		return nil, 0, rs.Stats{}, err
	}
	p, d, st, err := solve(b.perm[src], b.perm[dst])
	if err != nil {
		return nil, 0, st, err
	}
	out := make([]rs.Vertex, len(p))
	for i, v := range p {
		out[i] = b.inv[v]
	}
	return out, d, st, nil
}

// DistancesTraced passes tracing through the relabeling layer when the
// inner backend supports it: the timeline describes the solve on stored
// ids (step structure is id-agnostic), the distances are mapped back.
func (b *remapBackend) DistancesTraced(src rs.Vertex, engine rs.Engine) ([]float64, rs.Stats, *rs.Timeline, error) {
	tb, ok := b.inner.(TracingBackend)
	if !ok {
		return nil, rs.Stats{}, nil, fmt.Errorf("server: backend does not support tracing")
	}
	if err := b.checkVertex(src); err != nil {
		return nil, rs.Stats{}, nil, err
	}
	d, st, tl, err := tb.DistancesTraced(b.perm[src], engine)
	if err != nil {
		return nil, st, nil, err
	}
	return rs.UnpermuteFloats(d, b.perm), st, tl, nil
}

func (b *remapBackend) Path(src, dst rs.Vertex, engine rs.Engine) ([]rs.Vertex, float64, error) {
	if err := b.checkVertex(src); err != nil {
		return nil, 0, err
	}
	if err := b.checkVertex(dst); err != nil {
		return nil, 0, err
	}
	p, d, err := b.inner.Path(b.perm[src], b.perm[dst], engine)
	if err != nil {
		return nil, 0, err
	}
	out := make([]rs.Vertex, len(p))
	for i, v := range p {
		out[i] = b.inv[v]
	}
	return out, d, nil
}

// Route maps a goal-directed route through the relabeling: endpoints go
// original → stored, the path comes back stored → original. Landmark
// pruning happens in stored-id space (where the inner solver's landmark
// vectors live), invisible to the client.
func (b *remapBackend) Route(src, dst rs.Vertex, engine rs.Engine, prune bool) ([]rs.Vertex, float64, rs.Stats, error) {
	rb, ok := b.inner.(RoutingBackend)
	if !ok {
		return nil, 0, rs.Stats{}, fmt.Errorf("server: backend does not support routing")
	}
	if err := b.checkVertex(src); err != nil {
		return nil, 0, rs.Stats{}, err
	}
	if err := b.checkVertex(dst); err != nil {
		return nil, 0, rs.Stats{}, err
	}
	p, d, st, err := rb.Route(b.perm[src], b.perm[dst], engine, prune)
	if err != nil {
		return nil, 0, st, err
	}
	out := make([]rs.Vertex, len(p))
	for i, v := range p {
		out[i] = b.inv[v]
	}
	return out, d, st, nil
}

// PathFromDistances accepts a distance vector in original ids (what the
// serving cache above this layer stores), permutes it into stored ids
// for the inner reconstruction, and maps the path back. The O(n)
// permute is far cheaper than the solve it replaces.
func (b *remapBackend) PathFromDistances(src, dst rs.Vertex, dist []float64) ([]rs.Vertex, float64, error) {
	vr, ok := b.inner.(VectorRouter)
	if !ok {
		return nil, 0, fmt.Errorf("server: backend does not support vector routing")
	}
	if err := b.checkVertex(src); err != nil {
		return nil, 0, err
	}
	if err := b.checkVertex(dst); err != nil {
		return nil, 0, err
	}
	if len(dist) != len(b.perm) {
		return nil, 0, fmt.Errorf("server: %d distances for %d vertices", len(dist), len(b.perm))
	}
	sd := make([]float64, len(dist))
	for stored := range sd {
		sd[stored] = dist[b.inv[stored]]
	}
	p, d, err := vr.PathFromDistances(b.perm[src], b.perm[dst], sd)
	if err != nil {
		return nil, 0, err
	}
	out := make([]rs.Vertex, len(p))
	for i, v := range p {
		out[i] = b.inv[v]
	}
	return out, d, nil
}

func (b *remapBackend) Landmarks() int {
	if lb, ok := b.inner.(LandmarkBackend); ok {
		return lb.Landmarks()
	}
	return 0
}

// AdoptLandmark permutes a cached original-id vector into stored ids
// before handing it to the inner solver. The cheap full/duplicate
// checks run first so the steady state (set full) skips the O(n) copy.
func (b *remapBackend) AdoptLandmark(src rs.Vertex, dist []float64) (bool, error) {
	lb, ok := b.inner.(LandmarkBackend)
	if !ok {
		return false, nil
	}
	if err := b.checkVertex(src); err != nil {
		return false, err
	}
	if lb.Landmarks() >= rs.MaxLandmarks || len(dist) != len(b.perm) {
		return false, nil
	}
	sd := make([]float64, len(dist))
	for stored := range sd {
		sd[stored] = dist[b.inv[stored]]
	}
	return lb.AdoptLandmark(b.perm[src], sd)
}

// NewSolverEntry wraps a preprocessed solver as a registry entry,
// deriving the metadata from the preprocessing bundle.
func NewSolverEntry(name string, solver *rs.Solver, opt rs.Options, source string, prepTime time.Duration) *Entry {
	pre := solver.Preprocessed()
	g := pre.Original
	if g == nil {
		g = pre.Graph
	}
	return &Entry{
		Name:    name,
		Backend: &solverBackend{solver: solver, n: g.NumVertices()},
		Info: GraphInfo{
			Name:             name,
			Vertices:         g.NumVertices(),
			Edges:            g.NumEdges(),
			Rho:              opt.Rho,
			K:                opt.K,
			Heuristic:        opt.Heuristic.String(),
			Engine:           opt.Engine.String(),
			ShortcutsAdded:   pre.Added,
			MaxWeight:        g.MaxWeight(),
			PreprocessMillis: prepTime.Milliseconds(),
			Source:           source,
			RadiiSource:      RadiiComputed,
			ColdStartMillis:  prepTime.Milliseconds(),
		},
	}
}

// GraphConfig describes one graph to load: exactly one of Gen (a
// generator family name), File (a graph file in any auto-detected
// format), Snapshot (a cmd/graphpack snapshot), or Pre (a preprocessed
// bundle written by radiusstep.WritePreprocessed) must be set. The
// remaining fields tune generation and preprocessing; they are rejected
// for sources whose preprocessing is already persisted.
type GraphConfig struct {
	Name      string  `json:"name"`
	Gen       string  `json:"gen,omitempty"`
	File      string  `json:"file,omitempty"`
	Snapshot  string  `json:"snapshot,omitempty"`
	Pre       string  `json:"pre,omitempty"`
	N         int     `json:"n,omitempty"`
	Seed      uint64  `json:"seed,omitempty"`
	Weights   int     `json:"weights,omitempty"`
	Rho       int     `json:"rho,omitempty"`
	K         int     `json:"k,omitempty"`
	Heuristic string  `json:"heuristic,omitempty"`
	Engine    string  `json:"engine,omitempty"`
	Delta     float64 `json:"delta,omitempty"`
	// Landmarks builds k ALT landmark vectors (farthest-point selection)
	// at load time, enabling goal-directed route pruning. Rejected when
	// the source is a snapshot that already carries persisted landmarks.
	Landmarks int `json:"landmarks,omitempty"`
}

// ParseGraphSpec parses the -graph flag form
//
//	name=gen=road,n=50000,weights=10000,rho=64
//	name=file=/data/g.gr,rho=32
//	name=snapshot=/data/g.snap
//	name=pre=/data/g.pre
//
// into a GraphConfig. Unknown keys are an error, matching the
// fail-loudly contract of ParseHeuristic/ParseEngine.
func ParseGraphSpec(spec string) (GraphConfig, error) {
	cfg := GraphConfig{Seed: 42}
	name, rest, ok := strings.Cut(spec, "=")
	if !ok || name == "" || rest == "" {
		return cfg, fmt.Errorf("server: graph spec %q: want name=key=val,...", spec)
	}
	cfg.Name = name
	for _, field := range strings.Split(rest, ",") {
		k, v, ok := strings.Cut(field, "=")
		if !ok || v == "" {
			return cfg, fmt.Errorf("server: graph spec %q: bad field %q", spec, field)
		}
		var err error
		switch k {
		case "gen":
			cfg.Gen = v
		case "file":
			cfg.File = v
		case "snapshot":
			cfg.Snapshot = v
		case "pre":
			cfg.Pre = v
		case "n":
			cfg.N, err = strconv.Atoi(v)
		case "seed":
			cfg.Seed, err = strconv.ParseUint(v, 10, 64)
		case "weights":
			cfg.Weights, err = strconv.Atoi(v)
		case "rho":
			cfg.Rho, err = strconv.Atoi(v)
		case "k":
			cfg.K, err = strconv.Atoi(v)
		case "heuristic":
			cfg.Heuristic = v
		case "engine":
			cfg.Engine = v
		case "delta":
			cfg.Delta, err = strconv.ParseFloat(v, 64)
		case "landmarks":
			cfg.Landmarks, err = strconv.Atoi(v)
		default:
			return cfg, fmt.Errorf("server: graph spec %q: unknown key %q", spec, k)
		}
		if err != nil {
			return cfg, fmt.Errorf("server: graph spec %q: field %q: %v", spec, field, err)
		}
	}
	return cfg, nil
}

// BuildEntry loads or generates the graph described by cfg and returns a
// ready registry entry. For gen/file sources it preprocesses at startup;
// for snapshot and bundle sources carrying persisted radii it skips
// preprocessing entirely (the registry's fast cold-start path) and the
// entry's Info reports RadiiSource, the snapshot size, and the total
// cold-start time. A panic anywhere in the load path (a corrupt
// snapshot tripping an index, an injected chaos fault) is contained
// into a clean error so one bad graph config cannot kill a daemon
// loading several.
func BuildEntry(cfg GraphConfig) (entry *Entry, err error) {
	defer func() {
		if r := recover(); r != nil {
			entry, err = nil, fmt.Errorf("server: graph %q: load panic: %v", cfg.Name, r)
		}
	}()
	if ferr := fault.Check(fault.SiteSnapshotLoad); ferr != nil {
		return nil, fmt.Errorf("server: graph %q: %w", cfg.Name, ferr)
	}
	return buildEntry(cfg)
}

func buildEntry(cfg GraphConfig) (*Entry, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("server: graph config needs a name")
	}
	srcs := 0
	for _, s := range []string{cfg.Gen, cfg.File, cfg.Snapshot, cfg.Pre} {
		if s != "" {
			srcs++
		}
	}
	if srcs != 1 {
		return nil, fmt.Errorf("server: graph %q: exactly one of gen|file|snapshot|pre required", cfg.Name)
	}
	// delta is a query-time knob, valid for every source — so a bad
	// value must fail on every source too, not just the ones that run
	// preprocessing (whose Options validation would catch it).
	if cfg.Delta < 0 || math.IsNaN(cfg.Delta) {
		return nil, fmt.Errorf("server: graph %q: delta %v must be >= 0 (0 derives a default)", cfg.Name, cfg.Delta)
	}
	if cfg.Landmarks < 0 || cfg.Landmarks > rs.MaxLandmarks {
		return nil, fmt.Errorf("server: graph %q: landmarks %d out of range [0,%d]", cfg.Name, cfg.Landmarks, rs.MaxLandmarks)
	}

	opt := rs.Options{Rho: cfg.Rho, K: cfg.K, Delta: cfg.Delta}
	if cfg.Heuristic != "" {
		h, err := rs.ParseHeuristic(cfg.Heuristic)
		if err != nil {
			return nil, err
		}
		opt.Heuristic = h
	}
	if cfg.Engine != "" {
		e, err := rs.ParseEngine(cfg.Engine)
		if err != nil {
			return nil, err
		}
		opt.Engine = e
	}

	start := time.Now()
	switch {
	case cfg.Pre != "":
		// The bundle was preprocessed elsewhere: rho/k/heuristic are
		// baked in and unknown here, so accepting them would silently
		// do nothing while /v1/graphs echoed them back as truth.
		if cfg.Rho != 0 || cfg.K != 0 || cfg.Heuristic != "" || cfg.Weights != 0 {
			return nil, fmt.Errorf("server: graph %q: rho/k/heuristic/weights do not apply to a preprocessed bundle", cfg.Name)
		}
		f, ferr := os.Open(cfg.Pre)
		if ferr != nil {
			return nil, fmt.Errorf("server: graph %q: %v", cfg.Name, ferr)
		}
		defer f.Close()
		st, _ := f.Stat()
		pre, perr := rs.ReadPreprocessed(f)
		if perr != nil {
			return nil, fmt.Errorf("server: graph %q: %v", cfg.Name, perr)
		}
		solver, err := rs.NewSolverPre(pre, opt.Engine)
		if err != nil {
			return nil, fmt.Errorf("server: graph %q: %v", cfg.Name, err)
		}
		if cfg.Delta > 0 {
			solver.SetDelta(cfg.Delta)
		}
		// A bundle does not record its preprocessing parameters; report
		// them as unknown (zero) rather than inventing defaults.
		entry := NewSolverEntry(cfg.Name, solver, rs.Options{Engine: opt.Engine}, "pre:"+cfg.Pre, 0)
		entry.Info.Rho, entry.Info.K, entry.Info.Heuristic = 0, 0, ""
		entry.Info.Format = "pre"
		entry.Info.RadiiSource = RadiiFromBundle
		if st != nil {
			entry.Info.SnapshotBytes = st.Size()
		}
		if err := applyLandmarks(entry, solver, cfg); err != nil {
			return nil, err
		}
		entry.Info.ColdStartMillis = time.Since(start).Milliseconds()
		return entry, nil

	case cfg.Snapshot != "":
		snap, size, err := rs.ReadSnapshotFile(cfg.Snapshot)
		if err != nil {
			// %w: the truncated/corrupt classification must survive to
			// the registry's quarantine health report.
			return nil, fmt.Errorf("server: graph %q: %w", cfg.Name, err)
		}
		return buildFromSnapshot(cfg, opt, snap, size, "snapshot:"+cfg.Snapshot, start)

	case cfg.File != "":
		f, ferr := os.Open(cfg.File)
		if ferr != nil {
			return nil, fmt.Errorf("server: graph %q: %v", cfg.Name, ferr)
		}
		defer f.Close()
		br := bufio.NewReaderSize(f, 1<<20)
		// A file= pointing at a snapshot gets the full snapshot treatment
		// (persisted radii and all), not a silent graph-only load. The
		// magic fits in 8 bytes; a short or unreadable prefix simply
		// falls through to ReadGraphAuto, which reports the real error.
		prefix, _ := br.Peek(8)
		if rs.DetectGraphFormat(prefix) == rs.FormatSnapshot {
			snap, size, serr := rs.ReadSnapshotFile(cfg.File)
			if serr != nil {
				return nil, fmt.Errorf("server: graph %q: %w", cfg.Name, serr)
			}
			return buildFromSnapshot(cfg, opt, snap, size, "file:"+cfg.File, start)
		}
		g, format, gerr := rs.ReadGraphAuto(br)
		if gerr != nil {
			return nil, fmt.Errorf("server: graph %q: %v", cfg.Name, gerr)
		}
		if cfg.Weights > 0 {
			g = rs.WithUniformIntWeights(g, 1, cfg.Weights, cfg.Seed+1)
		}
		prep := time.Now()
		solver, err := rs.NewSolver(g, opt)
		if err != nil {
			return nil, fmt.Errorf("server: graph %q: %v", cfg.Name, err)
		}
		entry := NewSolverEntry(cfg.Name, solver, opt.WithDefaults(), "file:"+cfg.File, time.Since(prep))
		entry.Info.Format = format.String()
		if err := applyLandmarks(entry, solver, cfg); err != nil {
			return nil, err
		}
		entry.Info.ColdStartMillis = time.Since(start).Milliseconds()
		return entry, nil

	default:
		n := cfg.N
		if n == 0 {
			n = 100000
		}
		g, gerr := rs.GenerateByName(cfg.Gen, n, cfg.Seed)
		if gerr != nil {
			return nil, fmt.Errorf("server: graph %q: %v", cfg.Name, gerr)
		}
		if cfg.Weights > 0 {
			g = rs.WithUniformIntWeights(g, 1, cfg.Weights, cfg.Seed+1)
		}
		prep := time.Now()
		solver, err := rs.NewSolver(g, opt)
		if err != nil {
			return nil, fmt.Errorf("server: graph %q: %v", cfg.Name, err)
		}
		source := fmt.Sprintf("gen:%s,n=%d,seed=%d", cfg.Gen, n, cfg.Seed)
		entry := NewSolverEntry(cfg.Name, solver, opt.WithDefaults(), source, time.Since(prep))
		entry.Info.Format = "gen"
		if err := applyLandmarks(entry, solver, cfg); err != nil {
			return nil, err
		}
		entry.Info.ColdStartMillis = time.Since(start).Milliseconds()
		return entry, nil
	}
}

// buildFromSnapshot turns a loaded snapshot into a registry entry. When
// the snapshot carries radii, preprocessing is skipped entirely: the
// persisted radii (and augmented graph) go straight into a solver, and
// the entry reports RadiiFromSnapshot. A graph-only snapshot (no radii)
// is preprocessed like any other loaded graph.
func buildFromSnapshot(cfg GraphConfig, opt rs.Options, snap *rs.Snapshot, size int64, source string, start time.Time) (*Entry, error) {
	if snap.Radii != nil {
		// Preprocessing knobs cannot apply when its output is persisted;
		// accepting them would silently do nothing.
		if cfg.Rho != 0 || cfg.K != 0 || cfg.Heuristic != "" || cfg.Weights != 0 {
			return nil, fmt.Errorf("server: graph %q: rho/k/heuristic/weights are baked into a preprocessed snapshot", cfg.Name)
		}
		solver, err := rs.SolverFromSnapshot(snap, opt.Engine)
		if err != nil {
			return nil, fmt.Errorf("server: graph %q: %v", cfg.Name, err)
		}
		if cfg.Delta > 0 {
			solver.SetDelta(cfg.Delta)
		}
		entry := NewSolverEntry(cfg.Name, solver, rs.Options{Engine: opt.Engine}, source, 0)
		entry.Info.Rho, entry.Info.K, entry.Info.Heuristic = snap.Rho, snap.K, snap.Heuristic
		entry.Info.Format = "snapshot"
		entry.Info.RadiiSource = RadiiFromSnapshot
		entry.Info.SnapshotBytes = size
		applySnapshotPerm(entry, snap)
		if err := applyLandmarks(entry, solver, cfg); err != nil {
			return nil, err
		}
		entry.Info.ColdStartMillis = time.Since(start).Milliseconds()
		return entry, nil
	}
	g := snap.G
	if cfg.Weights > 0 {
		g = rs.WithUniformIntWeights(g, 1, cfg.Weights, cfg.Seed+1)
	}
	prep := time.Now()
	solver, err := rs.NewSolver(g, opt)
	if err != nil {
		return nil, fmt.Errorf("server: graph %q: %v", cfg.Name, err)
	}
	entry := NewSolverEntry(cfg.Name, solver, opt.WithDefaults(), source, time.Since(prep))
	entry.Info.Format = "snapshot"
	entry.Info.SnapshotBytes = size
	applySnapshotPerm(entry, snap)
	if err := applyLandmarks(entry, solver, cfg); err != nil {
		return nil, err
	}
	entry.Info.ColdStartMillis = time.Since(start).Milliseconds()
	return entry, nil
}

// applyLandmarks builds the configured landmark set once the solver is
// query-ready (selection solves run on the final metric) and records
// the live count in the entry metadata. A snapshot that already
// restored persisted landmarks rejects the knob — rebuilding would
// silently discard the packed vectors.
func applyLandmarks(entry *Entry, solver *rs.Solver, cfg GraphConfig) error {
	if cfg.Landmarks > 0 {
		if solver.Landmarks() > 0 {
			return fmt.Errorf("server: graph %q: %d landmarks are baked into the snapshot; landmarks= does not apply", cfg.Name, solver.Landmarks())
		}
		if _, err := solver.BuildLandmarks(cfg.Landmarks, rs.LandmarksFarthest); err != nil {
			return fmt.Errorf("server: graph %q: %v", cfg.Name, err)
		}
	}
	entry.Info.Landmarks = solver.Landmarks()
	return nil
}

// applySnapshotPerm wraps a snapshot-built entry's backend with the
// original-id remapping layer when the snapshot was packed reordered.
// Every query path (distances, routes, batch) goes through the Backend
// interface, so this one wrap keeps the whole API in original ids.
func applySnapshotPerm(entry *Entry, snap *rs.Snapshot) {
	if snap.Perm == nil {
		return
	}
	entry.Backend = newRemapBackend(entry.Backend, snap.Perm)
	entry.Info.Reordered = true
}
