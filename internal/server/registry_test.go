package server

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	rs "radiusstep"
)

// testGraph is a small weighted grid shared by the ingestion tests.
func testGraph() *rs.Graph {
	return rs.WithUniformIntWeights(rs.Grid2D(12, 12), 1, 100, 3)
}

// solverOf unwraps the production backend to inspect the solver state an
// entry was built with.
func solverOf(t *testing.T, e *Entry) *rs.Solver {
	t.Helper()
	sb, ok := e.Backend.(*solverBackend)
	if !ok {
		t.Fatalf("backend is %T, want *solverBackend", e.Backend)
	}
	return sb.solver
}

func assertMatchesDijkstra(t *testing.T, e *Entry, g *rs.Graph, src rs.Vertex) {
	t.Helper()
	got, _, err := e.Backend.Distances(src, rs.EngineAuto)
	if err != nil {
		t.Fatalf("Distances: %v", err)
	}
	want := rs.Dijkstra(g, src)
	for v := range want {
		if got[v] != want[v] && !(math.IsInf(got[v], 1) && math.IsInf(want[v], 1)) {
			t.Fatalf("dist[%d] = %v, want %v", v, got[v], want[v])
		}
	}
}

// The acceptance contract of the snapshot cold-start path: a snapshot
// carrying radii must reach serving state WITHOUT re-running
// preprocessing. Sentinel radii prove it — any recomputation would
// replace them with real r_ρ values, and radius-stepping is correct for
// arbitrary non-negative radii, so queries still verify against
// Dijkstra.
func TestBuildEntrySnapshotSkipsPreprocess(t *testing.T) {
	g := testGraph()
	const sentinel = 7.25
	radii := make([]float64, g.NumVertices())
	for i := range radii {
		radii[i] = sentinel
	}
	path := filepath.Join(t.TempDir(), "g.snap")
	snap := &rs.Snapshot{G: g, Radii: radii, Rho: 64, K: 3, Heuristic: "dp"}
	if err := rs.WriteSnapshotFile(path, snap); err != nil {
		t.Fatalf("WriteSnapshotFile: %v", err)
	}

	entry, err := BuildEntry(GraphConfig{Name: "snap", Snapshot: path})
	if err != nil {
		t.Fatalf("BuildEntry: %v", err)
	}
	for i, r := range solverOf(t, entry).Preprocessed().Radii {
		if r != sentinel {
			t.Fatalf("radii[%d] = %v: registry re-ran preprocessing instead of loading persisted radii", i, r)
		}
	}
	info := entry.Info
	if info.RadiiSource != RadiiFromSnapshot {
		t.Fatalf("RadiiSource = %q, want %q", info.RadiiSource, RadiiFromSnapshot)
	}
	if info.Rho != 64 || info.K != 3 || info.Heuristic != "dp" {
		t.Fatalf("snapshot metadata not surfaced: rho=%d k=%d heuristic=%q", info.Rho, info.K, info.Heuristic)
	}
	if info.Format != "snapshot" || info.SnapshotBytes <= 0 {
		t.Fatalf("format=%q snapshotBytes=%d, want snapshot/>0", info.Format, info.SnapshotBytes)
	}
	if info.PreprocessMillis != 0 {
		t.Fatalf("PreprocessMillis = %d, want 0 on the skip path", info.PreprocessMillis)
	}
	assertMatchesDijkstra(t, entry, g, 5)
}

// A real packed snapshot (graphpack's output shape: augmented graph,
// original graph, true radii) must serve correct first queries.
func TestBuildEntrySnapshotServesPackedGraph(t *testing.T) {
	g := testGraph()
	opt := rs.Options{Rho: 16, K: 3, Heuristic: rs.HeuristicDP}
	pre, err := rs.Preprocess(g, opt)
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	snap, err := rs.NewSnapshot(pre, opt)
	if err != nil {
		t.Fatalf("NewSnapshot: %v", err)
	}
	path := filepath.Join(t.TempDir(), "packed.snap")
	if err := rs.WriteSnapshotFile(path, snap); err != nil {
		t.Fatalf("WriteSnapshotFile: %v", err)
	}
	entry, err := BuildEntry(GraphConfig{Name: "packed", Snapshot: path})
	if err != nil {
		t.Fatalf("BuildEntry: %v", err)
	}
	if entry.Info.Vertices != g.NumVertices() || entry.Info.Edges != g.NumEdges() {
		t.Fatalf("entry reports n=%d m=%d, want original n=%d m=%d",
			entry.Info.Vertices, entry.Info.Edges, g.NumVertices(), g.NumEdges())
	}
	assertMatchesDijkstra(t, entry, g, 17)
	// Point-to-point routes must use real (original-graph) edges.
	pathVs, d, err := entry.Backend.Path(0, rs.Vertex(g.NumVertices()-1), rs.EngineAuto)
	if err != nil {
		t.Fatalf("Path: %v", err)
	}
	if got, err := rs.PathLength(g, pathVs); err != nil || got != d {
		t.Fatalf("route not realizable on original graph: len=%v d=%v err=%v", got, d, err)
	}
}

// file= pointing at a snapshot must take the same radii-reuse path, not
// silently re-preprocess the embedded graph.
func TestBuildEntryFileAutoDetectsSnapshot(t *testing.T) {
	g := testGraph()
	radii := make([]float64, g.NumVertices())
	for i := range radii {
		radii[i] = 2.5
	}
	path := filepath.Join(t.TempDir(), "g.snap")
	if err := rs.WriteSnapshotFile(path, &rs.Snapshot{G: g, Radii: radii, Rho: 8, K: 1, Heuristic: "direct"}); err != nil {
		t.Fatalf("WriteSnapshotFile: %v", err)
	}
	entry, err := BuildEntry(GraphConfig{Name: "viafile", File: path})
	if err != nil {
		t.Fatalf("BuildEntry: %v", err)
	}
	if entry.Info.RadiiSource != RadiiFromSnapshot {
		t.Fatalf("RadiiSource = %q, want %q", entry.Info.RadiiSource, RadiiFromSnapshot)
	}
	if solverOf(t, entry).Preprocessed().Radii[0] != 2.5 {
		t.Fatal("persisted radii not reused via file= auto-detection")
	}
}

// A graph-only snapshot has no radii, so the registry must preprocess.
func TestBuildEntryRawSnapshotPreprocesses(t *testing.T) {
	g := testGraph()
	path := filepath.Join(t.TempDir(), "raw.snap")
	if err := rs.WriteSnapshotFile(path, &rs.Snapshot{G: g}); err != nil {
		t.Fatalf("WriteSnapshotFile: %v", err)
	}
	entry, err := BuildEntry(GraphConfig{Name: "raw", Snapshot: path, Rho: 8})
	if err != nil {
		t.Fatalf("BuildEntry: %v", err)
	}
	if entry.Info.RadiiSource != RadiiComputed {
		t.Fatalf("RadiiSource = %q, want %q", entry.Info.RadiiSource, RadiiComputed)
	}
	if entry.Info.Rho != 8 {
		t.Fatalf("Rho = %d, want 8", entry.Info.Rho)
	}
	assertMatchesDijkstra(t, entry, g, 0)
}

// Preprocessing knobs are baked into a radii-bearing snapshot; accepting
// them would silently do nothing.
func TestBuildEntrySnapshotRejectsBakedOptions(t *testing.T) {
	g := testGraph()
	radii := make([]float64, g.NumVertices())
	path := filepath.Join(t.TempDir(), "g.snap")
	if err := rs.WriteSnapshotFile(path, &rs.Snapshot{G: g, Radii: radii, Rho: 8, K: 1}); err != nil {
		t.Fatalf("WriteSnapshotFile: %v", err)
	}
	for _, cfg := range []GraphConfig{
		{Name: "x", Snapshot: path, Rho: 16},
		{Name: "x", Snapshot: path, K: 2},
		{Name: "x", Snapshot: path, Heuristic: "dp"},
		{Name: "x", Snapshot: path, Weights: 100},
	} {
		if _, err := BuildEntry(cfg); err == nil {
			t.Fatalf("cfg %+v accepted despite persisted radii", cfg)
		}
	}
	// Engine is a query-time choice and stays configurable.
	if _, err := BuildEntry(GraphConfig{Name: "x", Snapshot: path, Engine: "seq"}); err != nil {
		t.Fatalf("engine override rejected: %v", err)
	}
}

// pre= bundles persist preprocessing too, so the same knobs — including
// weights — must be rejected rather than silently ignored.
func TestBuildEntryPreBundleRejectsWeights(t *testing.T) {
	g := testGraph()
	pre, err := rs.Preprocess(g, rs.Options{Rho: 8})
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	path := filepath.Join(t.TempDir(), "g.pre")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.WritePreprocessed(f, pre); err != nil {
		t.Fatalf("WritePreprocessed: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := BuildEntry(GraphConfig{Name: "x", Pre: path, Weights: 100}); err == nil {
		t.Fatal("weights override on a pre bundle accepted")
	}
	if _, err := BuildEntry(GraphConfig{Name: "x", Pre: path}); err != nil {
		t.Fatalf("plain pre bundle rejected: %v", err)
	}
}

// DIMACS .gr files must ingest end-to-end: parse, preprocess, serve.
func TestBuildEntryDIMACSFile(t *testing.T) {
	g := testGraph()
	path := filepath.Join(t.TempDir(), "g.gr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.WriteDIMACS(f, g); err != nil {
		t.Fatalf("WriteDIMACS: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	entry, err := BuildEntry(GraphConfig{Name: "roads", File: path, Rho: 8})
	if err != nil {
		t.Fatalf("BuildEntry: %v", err)
	}
	if entry.Info.Format != "dimacs" {
		t.Fatalf("Format = %q, want dimacs", entry.Info.Format)
	}
	if entry.Info.RadiiSource != RadiiComputed {
		t.Fatalf("RadiiSource = %q, want %q", entry.Info.RadiiSource, RadiiComputed)
	}
	assertMatchesDijkstra(t, entry, g, 7)
}

func TestParseGraphSpecSnapshot(t *testing.T) {
	cfg, err := ParseGraphSpec("ny=snapshot=/data/ny.snap,engine=par")
	if err != nil {
		t.Fatalf("ParseGraphSpec: %v", err)
	}
	if cfg.Name != "ny" || cfg.Snapshot != "/data/ny.snap" || cfg.Engine != "par" {
		t.Fatalf("unexpected config %+v", cfg)
	}
	// Two sources parse fine but must be rejected at build time.
	cfg2, err := ParseGraphSpec("x=snapshot=a.snap,gen=road")
	if err != nil {
		t.Fatalf("ParseGraphSpec: %v", err)
	}
	if _, err := BuildEntry(cfg2); err == nil {
		t.Fatal("BuildEntry accepted two sources")
	}
}

func TestBuildEntrySnapshotCorruptFailsLoudly(t *testing.T) {
	g := testGraph()
	radii := make([]float64, g.NumVertices())
	path := filepath.Join(t.TempDir(), "g.snap")
	if err := rs.WriteSnapshotFile(path, &rs.Snapshot{G: g, Radii: radii}); err != nil {
		t.Fatalf("WriteSnapshotFile: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 1
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := BuildEntry(GraphConfig{Name: "bad", Snapshot: path}); err == nil {
		t.Fatal("corrupted snapshot accepted")
	} else if !strings.Contains(err.Error(), "snapshot") {
		t.Fatalf("unhelpful error: %v", err)
	}
}
