package server

import (
	"sync/atomic"

	rs "radiusstep"
)

// counters aggregates server-wide activity. All fields are atomics so
// handlers update them without locking.
type counters struct {
	reqDistances atomic.Int64
	reqRoute     atomic.Int64
	reqBatch     atomic.Int64
	reqGraphs    atomic.Int64
	reqStats     atomic.Int64

	solves       atomic.Int64 // full SSSP solves executed by a backend
	routeSolves  atomic.Int64 // early-terminated point-to-point solves
	coalesced    atomic.Int64 // queries that piggybacked on an in-flight solve
	batchSources atomic.Int64 // sources processed via /v1/batch
	errors       atomic.Int64 // requests answered with a non-2xx status

	// Ordered-frontier substrate totals across full solves on the
	// frontier-backed engines (parallel, rho). A substrate regression —
	// runs multiplying, stale entries piling up (stale/pushes is the
	// leak ratio), rank queries growing — shows here without a bench
	// run, per solve counters divided by solvesByEngine.
	frontierPushes    atomic.Int64
	frontierBatches   atomic.Int64
	frontierMerges    atomic.Int64
	frontierExtracted atomic.Int64
	frontierStale     atomic.Int64
	frontierSelects   atomic.Int64
}

// observeSolve folds one solve's stats into the server-wide counters.
func (c *counters) observeSolve(st rs.Stats) {
	c.solves.Add(1)
	if st.Frontier.Pushes == 0 {
		return
	}
	c.frontierPushes.Add(st.Frontier.Pushes)
	c.frontierBatches.Add(st.Frontier.Batches)
	c.frontierMerges.Add(st.Frontier.Merges)
	c.frontierExtracted.Add(st.Frontier.Extracted)
	c.frontierStale.Add(st.Frontier.Stale)
	c.frontierSelects.Add(st.Frontier.Selects)
}

// FrontierStats is the /v1/stats frontier section: substrate operation
// totals for the frontier-backed engines.
type FrontierStats struct {
	Pushes    int64 `json:"pushes"`
	Batches   int64 `json:"batches"`
	Merges    int64 `json:"merges"`
	Extracted int64 `json:"extracted"`
	Stale     int64 `json:"stale"`
	Selects   int64 `json:"selects"`
}

// GraphLoadStats reports, per graph, how it reached serving state: the
// configured source, the on-disk format, whether the radii were loaded
// from persistence or computed at startup, the snapshot size, and the
// cold-start time.
type GraphLoadStats struct {
	Source          string `json:"source"`
	Format          string `json:"format,omitempty"`
	RadiiSource     string `json:"radiiSource,omitempty"`
	SnapshotBytes   int64  `json:"snapshotBytes,omitempty"`
	ColdStartMillis int64  `json:"coldStartMillis"`
}

// StatsSnapshot is the JSON body served by GET /v1/stats. The solve and
// cache counters are the observable contract the tests rely on: N
// concurrent identical queries must show solves == 1, and a repeated
// source must raise hits without raising solves.
type StatsSnapshot struct {
	Requests      map[string]int64 `json:"requests"`
	Solves        int64            `json:"solves"`
	RouteSolves   int64            `json:"routeSolves"`
	Coalesced     int64            `json:"coalesced"`
	BatchSources  int64            `json:"batchSources"`
	Errors        int64            `json:"errors"`
	Cache         CacheStats       `json:"cache"`
	Pool          PoolStats        `json:"pool"`
	Flight        FlightStats      `json:"flight"`
	SolvesByGraph map[string]int64 `json:"solvesByGraph"`
	// SolvesByEngine counts full SSSP solves per engine name
	// (sequential, parallel, flat, delta, rho) — the observable contract
	// behind per-request ?engine= overrides.
	SolvesByEngine map[string]int64 `json:"solvesByEngine"`
	// Frontier totals the ordered-frontier substrate's operation
	// counters over every full solve on the frontier-backed engines.
	Frontier   FrontierStats             `json:"frontier"`
	GraphLoads map[string]GraphLoadStats `json:"graphLoads"`
}

func (c *counters) snapshot() StatsSnapshot {
	return StatsSnapshot{
		Requests: map[string]int64{
			"distances": c.reqDistances.Load(),
			"route":     c.reqRoute.Load(),
			"batch":     c.reqBatch.Load(),
			"graphs":    c.reqGraphs.Load(),
			"stats":     c.reqStats.Load(),
		},
		Solves:       c.solves.Load(),
		RouteSolves:  c.routeSolves.Load(),
		Coalesced:    c.coalesced.Load(),
		BatchSources: c.batchSources.Load(),
		Errors:       c.errors.Load(),
		Frontier: FrontierStats{
			Pushes:    c.frontierPushes.Load(),
			Batches:   c.frontierBatches.Load(),
			Merges:    c.frontierMerges.Load(),
			Extracted: c.frontierExtracted.Load(),
			Stale:     c.frontierStale.Load(),
			Selects:   c.frontierSelects.Load(),
		},
	}
}
