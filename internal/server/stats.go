package server

import "radiusstep/internal/metrics"

// FrontierStats is the /v1/stats frontier section: substrate operation
// totals for the frontier-backed engines. A substrate regression — runs
// multiplying, stale entries piling up (stale/pushes is the leak
// ratio), rank queries growing — shows here without a bench run, per
// solve counters divided by solvesByEngine.
type FrontierStats struct {
	Pushes    int64 `json:"pushes"`
	Batches   int64 `json:"batches"`
	Merges    int64 `json:"merges"`
	Extracted int64 `json:"extracted"`
	Stale     int64 `json:"stale"`
	Selects   int64 `json:"selects"`
}

// GraphLoadStats reports, per graph, how it reached serving state: the
// configured source, the on-disk format, whether the radii were loaded
// from persistence or computed at startup, the snapshot size, and the
// cold-start time.
type GraphLoadStats struct {
	Source          string `json:"source"`
	Format          string `json:"format,omitempty"`
	RadiiSource     string `json:"radiiSource,omitempty"`
	SnapshotBytes   int64  `json:"snapshotBytes,omitempty"`
	ColdStartMillis int64  `json:"coldStartMillis"`
}

// LifecycleStats is the /v1/stats graph-lifecycle section: registry-wide
// load failures, hot-reload epoch swaps, budget evictions, on-demand
// cold reloads, and how many graphs are quarantined right now.
type LifecycleStats struct {
	LoadFailures int64 `json:"loadFailures"`
	Reloads      int64 `json:"reloads"`
	Evictions    int64 `json:"evictions"`
	ColdReloads  int64 `json:"coldReloads"`
	Quarantined  int   `json:"quarantined"`
}

// StatsSnapshot is the JSON body served by GET /v1/stats. The solve and
// cache counters are the observable contract the tests rely on: N
// concurrent identical queries must show solves == 1, and a repeated
// source must raise hits without raising solves. Every number here is
// read from the same metrics registry GET /metrics exposes — the two
// endpoints are views over one set of counters.
type StatsSnapshot struct {
	Requests    map[string]int64 `json:"requests"`
	Solves      int64            `json:"solves"`
	RouteSolves int64            `json:"routeSolves"`
	// RouteCacheHits counts route queries answered from a cached full
	// distance vector without any solve.
	RouteCacheHits int64 `json:"routeCacheHits"`
	// RoutePruned totals relaxation candidates skipped by goal-directed
	// landmark pruning across route solves.
	RoutePruned int64 `json:"routePruned"`
	// LandmarksAdopted counts cached distance vectors promoted into ALT
	// landmark sets (Config.AutoLandmarks).
	LandmarksAdopted int64 `json:"landmarksAdopted"`
	Coalesced        int64 `json:"coalesced"`
	BatchSources     int64 `json:"batchSources"`
	Errors           int64 `json:"errors"`
	// SolveTimeouts counts solve-backed requests that hit their deadline
	// (504 class); SolvesCanceled counts client-departure aborts (499);
	// SolvePanics counts engine panics contained into 500s; Shed counts
	// requests rejected by the bounded admission queue (503).
	SolveTimeouts  int64            `json:"solveTimeouts"`
	SolvesCanceled int64            `json:"solvesCanceled"`
	SolvePanics    int64            `json:"solvePanics"`
	Shed           int64            `json:"shed"`
	Cache          CacheStats       `json:"cache"`
	Pool           PoolStats        `json:"pool"`
	Flight         FlightStats      `json:"flight"`
	SolvesByGraph  map[string]int64 `json:"solvesByGraph"`
	// SolvesByEngine counts full SSSP solves per engine name
	// (sequential, parallel, flat, delta, rho) — the observable contract
	// behind per-request ?engine= overrides.
	SolvesByEngine map[string]int64 `json:"solvesByEngine"`
	// Frontier totals the ordered-frontier substrate's operation
	// counters over every full solve on the frontier-backed engines.
	Frontier   FrontierStats             `json:"frontier"`
	GraphLoads map[string]GraphLoadStats `json:"graphLoads"`
	// Lifecycle totals the registry's load/reload/eviction events; the
	// per-graph detail (state, epoch, quarantine error) lives on
	// /v1/graphs under "health".
	Lifecycle LifecycleStats `json:"lifecycle"`
}

// statsSnapshot assembles the full stats body — registry counters plus
// cache, pool, flight, per-graph solve, and load sections — for
// /v1/stats and the selftest report alike.
func (s *Server) statsSnapshot() StatsSnapshot {
	m := s.metrics
	snap := StatsSnapshot{
		Requests:         make(map[string]int64, len(endpointNames)),
		Solves:           m.solves.Value(),
		RouteSolves:      m.routeSolves.Value(),
		RouteCacheHits:   m.routeCacheHits.Value(),
		RoutePruned:      m.routePruned.Value(),
		LandmarksAdopted: m.landmarksAdopted.Value(),
		Coalesced:        m.coalesced.Value(),
		BatchSources:     m.batchSources.Value(),
		Errors:           m.errorsTotal(),
		SolveTimeouts:    m.solveTimeouts.Value(),
		SolvesCanceled:   m.solvesCanceled.Value(),
		SolvePanics:      m.solvePanics.Value(),
		Shed:             s.pool.Stats().Shed,
		Frontier: FrontierStats{
			Pushes:    m.frontierOps.With("pushes").Value(),
			Batches:   m.frontierOps.With("batches").Value(),
			Merges:    m.frontierOps.With("merges").Value(),
			Extracted: m.frontierOps.With("extracted").Value(),
			Stale:     m.frontierOps.With("stale").Value(),
			Selects:   m.frontierOps.With("selects").Value(),
		},
	}
	for short, ep := range endpointNames {
		snap.Requests[short] = m.requests.With(ep).Value()
	}
	snap.Cache = s.cache.Stats()
	snap.Pool = s.pool.Stats()
	snap.Flight = s.flight.Stats()
	snap.SolvesByGraph = make(map[string]int64)
	m.graphCells.Range(func(k, v any) bool {
		snap.SolvesByGraph[k.(string)] = v.(*metrics.Counter).Value()
		return true
	})
	snap.SolvesByEngine = make(map[string]int64)
	m.engineCells.Range(func(k, v any) bool {
		snap.SolvesByEngine[k.(string)] = v.(*metrics.Counter).Value()
		return true
	})
	snap.GraphLoads = make(map[string]GraphLoadStats)
	for _, e := range s.registry.List() {
		snap.GraphLoads[e.Name] = GraphLoadStats{
			Source:          e.Info.Source,
			Format:          e.Info.Format,
			RadiiSource:     e.Info.RadiiSource,
			SnapshotBytes:   e.Info.SnapshotBytes,
			ColdStartMillis: e.Info.ColdStartMillis,
		}
	}
	lc := s.registry.Counters()
	snap.Lifecycle = LifecycleStats{
		LoadFailures: lc.LoadFailures,
		Reloads:      lc.Reloads,
		Evictions:    lc.Evictions,
		ColdReloads:  lc.ColdReloads,
		Quarantined:  s.registry.QuarantinedCount(),
	}
	return snap
}
