package server

import (
	"context"
	"sync"
	"sync/atomic"
)

// flightGroup coalesces concurrent duplicate work: while one solve for a
// (graph, source) key is in flight, later arrivals for the same key wait
// for its result instead of starting their own solve. This is the
// singleflight pattern, implemented locally so the module stays
// stdlib-only.
type flightGroup struct {
	mu      sync.Mutex
	calls   map[cacheKey]*flightCall
	waiters atomic.Int64 // callers currently parked on another caller's solve
}

type flightCall struct {
	done chan struct{}
	dist []float64
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[cacheKey]*flightCall)}
}

// Do runs fn for key unless an identical call is already in flight, in
// which case it waits for that call's result. joined reports whether
// this caller piggybacked on another caller's solve. A waiting caller
// whose context expires returns the context error; the in-flight solve
// keeps running for the remaining waiters.
func (g *flightGroup) Do(ctx context.Context, key cacheKey, fn func() ([]float64, error)) (dist []float64, joined bool, err error) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		g.waiters.Add(1)
		defer g.waiters.Add(-1)
		select {
		case <-c.done:
			return c.dist, true, c.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.dist, c.err = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.dist, false, c.err
}

// FlightStats snapshots the coalescing state.
type FlightStats struct {
	InFlight int   `json:"inFlight"`
	Waiting  int64 `json:"waiting"`
}

func (g *flightGroup) Stats() FlightStats {
	g.mu.Lock()
	n := len(g.calls)
	g.mu.Unlock()
	return FlightStats{InFlight: n, Waiting: g.waiters.Load()}
}
