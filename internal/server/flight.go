package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	rs "radiusstep"
)

// flightGroup coalesces concurrent duplicate work: while one solve for a
// (graph, source) key is in flight, later arrivals for the same key wait
// for its result instead of starting their own solve. This is the
// singleflight pattern, implemented locally so the module stays
// stdlib-only.
//
// Each in-flight call is reference-counted by its participants (the
// leader plus every joined waiter) and runs under its own cancelable
// context: a participant whose request context ends releases its
// reference, and when the LAST participant departs the call's context
// is canceled, aborting the solve through the cooperative probe. A
// solve with surviving waiters keeps running — one client disconnecting
// must not poison the others' queries — but a solve nobody is waiting
// for stops burning its pool slot.
type flightGroup struct {
	mu      sync.Mutex
	calls   map[cacheKey]*flightCall
	waiters atomic.Int64 // callers currently parked on another caller's solve
}

type flightCall struct {
	g      *flightGroup
	ctx    context.Context // the solve's context; canceled when refs hit 0
	cancel context.CancelFunc
	refs   int // participants (leader + joiners) still interested
	done   chan struct{}
	dist   []float64
	err    error
}

// leave releases one participant's interest in the call; the last
// departure cancels the solve context. Canceling after the solve
// completed is a harmless no-op.
func (c *flightCall) leave() {
	c.g.mu.Lock()
	c.refs--
	last := c.refs == 0
	c.g.mu.Unlock()
	if last {
		c.cancel()
	}
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[cacheKey]*flightCall)}
}

// maxFlightRetries bounds the fresh-solve retries a live waiter makes
// after piggybacking on a call that was aborted by its other
// participants' departure.
const maxFlightRetries = 3

// abortedFlight reports whether err says the call's solve was canceled
// out from under its waiters — the coalescing layer's signal to retry,
// distinct from a real solve failure.
func abortedFlight(err error) bool {
	return errors.Is(err, rs.ErrCanceled) || errors.Is(err, context.Canceled)
}

// Do runs fn for key unless an identical call is already in flight, in
// which case it waits for that call's result. fn receives the call's
// solve context, which is canceled when every participant has departed;
// fn should thread it into the solve so abandonment aborts the work.
// joined reports whether this caller piggybacked on another caller's
// solve. A waiting caller whose context ends returns the context error;
// the in-flight solve keeps running for the remaining waiters. A waiter
// that joined a call just as it was being abandoned (its result is a
// cancellation, but this waiter's own context is still live) starts a
// fresh call instead of propagating the neighbors' abort.
func (g *flightGroup) Do(ctx context.Context, key cacheKey, fn func(context.Context) ([]float64, error)) (dist []float64, joined bool, err error) {
	for attempt := 0; ; attempt++ {
		dist, joined, err = g.doOnce(ctx, key, fn)
		if joined && abortedFlight(err) && ctx.Err() == nil && attempt < maxFlightRetries {
			continue
		}
		return dist, joined, err
	}
}

func (g *flightGroup) doOnce(ctx context.Context, key cacheKey, fn func(context.Context) ([]float64, error)) (dist []float64, joined bool, err error) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		c.refs++
		g.mu.Unlock()
		g.waiters.Add(1)
		defer g.waiters.Add(-1)
		// The watcher releases this waiter's reference the moment its
		// request context ends; if the result arrives first, Stop()
		// reporting true means the watcher never ran and the reference is
		// released here instead — exactly one leave() either way.
		stop := context.AfterFunc(ctx, c.leave)
		select {
		case <-c.done:
			if stop() {
				c.leave()
			}
			return c.dist, true, c.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}

	c := &flightCall{g: g, refs: 1, done: make(chan struct{})}
	// The solve context is detached from the leader's request values and
	// deadline but NOT from the participants: it ends when the last of
	// them departs.
	c.ctx, c.cancel = context.WithCancel(context.WithoutCancel(ctx))
	g.calls[key] = c
	g.mu.Unlock()

	stop := context.AfterFunc(ctx, c.leave)
	c.dist, c.err = fn(c.ctx)

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	if stop() {
		c.leave()
	}
	// Release the context's timer/goroutine resources; the call is over.
	c.cancel()
	return c.dist, false, c.err
}

// abortAll cancels every in-flight call's solve context — the shutdown
// path's last resort for stragglers that outlived the drain grace.
func (g *flightGroup) abortAll() {
	g.mu.Lock()
	cancels := make([]context.CancelFunc, 0, len(g.calls))
	for _, c := range g.calls {
		cancels = append(cancels, c.cancel)
	}
	g.mu.Unlock()
	for _, cancel := range cancels {
		cancel()
	}
}

// FlightStats snapshots the coalescing state.
type FlightStats struct {
	InFlight int   `json:"inFlight"`
	Waiting  int64 `json:"waiting"`
}

func (g *flightGroup) Stats() FlightStats {
	g.mu.Lock()
	n := len(g.calls)
	g.mu.Unlock()
	return FlightStats{InFlight: n, Waiting: g.waiters.Load()}
}
