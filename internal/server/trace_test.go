package server

import (
	"net/http"
	"testing"
)

// TestTraceTimelineConsistency is the acceptance test for ?trace=1: for
// every engine, the returned timeline must be internally consistent —
// the summary counters match the record lists, the per-step substep
// counts sum to the substep total, and the per-step wall times nest
// inside the solve's wall time.
func TestTraceTimelineConsistency(t *testing.T) {
	_, ts, g := newTestServer(t, Config{CacheBytes: 1 << 20})
	for _, engine := range []string{"seq", "par", "flat", "delta", "rho"} {
		t.Run(engine, func(t *testing.T) {
			var resp distancesResponse
			code := postJSON(t, ts, "/v1/distances?trace=1&engine="+engine,
				distancesRequest{Graph: "grid", Source: 3}, &resp)
			if code != http.StatusOK {
				t.Fatalf("status %d: %s", code, resp.Error)
			}
			tl := resp.Trace
			if tl == nil {
				t.Fatal("no timeline in ?trace=1 response")
			}
			if tl.Engine == "" || tl.Source != 3 {
				t.Fatalf("timeline identity: engine=%q source=%d", tl.Engine, tl.Source)
			}
			if tl.Steps != len(tl.StepList) {
				t.Fatalf("Steps=%d but len(StepList)=%d", tl.Steps, len(tl.StepList))
			}
			if tl.Substeps != len(tl.SubstepList) {
				t.Fatalf("Substeps=%d but len(SubstepList)=%d", tl.Substeps, len(tl.SubstepList))
			}
			if tl.Steps == 0 || tl.Substeps == 0 || tl.Relaxations == 0 {
				t.Fatalf("empty timeline: %+v", tl)
			}
			perStep := 0
			var stepNanos int64
			for i, st := range tl.StepList {
				if st.Step != i+1 {
					t.Fatalf("step %d has index %d", i+1, st.Step)
				}
				perStep += st.Substeps
				stepNanos += st.Nanos
				if st.Nanos < st.RelaxNanos {
					t.Fatalf("step %d: Nanos=%d < RelaxNanos=%d", st.Step, st.Nanos, st.RelaxNanos)
				}
			}
			if perStep != tl.Substeps {
				t.Fatalf("per-step substep counts sum to %d, want %d", perStep, tl.Substeps)
			}
			if stepNanos <= 0 || stepNanos > tl.SolveNanos {
				t.Fatalf("step wall times sum to %d, outside (0, solve=%d]", stepNanos, tl.SolveNanos)
			}
			for _, ss := range tl.SubstepList {
				if ss.Mode != "push" && ss.Mode != "pull" {
					t.Fatalf("substep mode %q", ss.Mode)
				}
				if ss.Step < 1 || ss.Step > tl.Steps {
					t.Fatalf("substep points at step %d of %d", ss.Step, tl.Steps)
				}
			}
			// The traced solve must still answer the query correctly.
			if resp.Reached != g.NumVertices() {
				t.Fatalf("reached %d of %d vertices", resp.Reached, g.NumVertices())
			}
			if resp.Cached {
				t.Fatal("traced response claims to be cached")
			}
		})
	}
}

// TestTraceBypassesCache verifies the documented contract that traced
// solves neither read nor write the distance cache: a traced query must
// not seed the cache for a later untraced query.
func TestTraceBypassesCache(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{CacheBytes: 1 << 20})
	var traced distancesResponse
	if code := postJSON(t, ts, "/v1/distances?trace=1",
		distancesRequest{Graph: "grid", Source: 9}, &traced); code != http.StatusOK {
		t.Fatalf("traced: status %d", code)
	}
	var first distancesResponse
	if code := postJSON(t, ts, "/v1/distances",
		distancesRequest{Graph: "grid", Source: 9}, &first); code != http.StatusOK {
		t.Fatalf("untraced: status %d", code)
	}
	if first.Cached {
		t.Fatal("traced solve wrote the cache: first untraced query was a hit")
	}
	var second distancesResponse
	if code := postJSON(t, ts, "/v1/distances",
		distancesRequest{Graph: "grid", Source: 9}, &second); code != http.StatusOK {
		t.Fatalf("untraced repeat: status %d", code)
	}
	if !second.Cached {
		t.Fatal("untraced solve did not write the cache")
	}
}

// TestTraceUnsupportedBackend: a backend that does not implement
// TracingBackend must yield a clean 400, not a panic or a silent
// untraced answer.
func TestTraceUnsupportedBackend(t *testing.T) {
	fake := &fakeBackend{n: 10}
	_, ts := newFakeServer(t, fake, Config{})
	var resp distancesResponse
	code := postJSON(t, ts, "/v1/distances?trace=1",
		distancesRequest{Graph: "fake", Source: 0}, &resp)
	if code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", code)
	}
	if resp.Error == "" || resp.Trace != nil {
		t.Fatalf("bad error response: %+v", resp)
	}
	if fake.calls.Load() != 0 {
		t.Fatalf("backend solved %d times for an unsupported trace request", fake.calls.Load())
	}
}

// TestTraceCountsAsSolve: traced solves must still show up in the
// solve metrics even though they bypass the cache.
func TestTraceCountsAsSolve(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	var resp distancesResponse
	if code := postJSON(t, ts, "/v1/distances?trace=1",
		distancesRequest{Graph: "grid", Source: 1}, &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	snap := fetchStats(t, ts)
	if snap.Solves != 1 {
		t.Fatalf("solves = %d, want 1", snap.Solves)
	}
	if got := snap.SolvesByEngine[resp.Trace.Engine]; got != 1 {
		t.Fatalf("solvesByEngine[%s] = %d, want 1", resp.Trace.Engine, got)
	}
}

var _ TracingBackend = (*solverBackend)(nil)
var _ TracingBackend = (*remapBackend)(nil)
