package server

import (
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	rs "radiusstep"
)

// newLandmarkServer is newTestServer with ALT landmarks baked into the
// solver, so route queries exercise the goal-directed pruning path.
func newLandmarkServer(t *testing.T, cfg Config, k int) (*httptest.Server, *rs.Graph) {
	t.Helper()
	g := rs.WithUniformIntWeights(rs.Grid2D(20, 20), 1, 100, 7)
	solver, err := rs.NewSolver(g, rs.Options{Rho: 8})
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	if k > 0 {
		if built, err := solver.BuildLandmarks(k, rs.LandmarksFarthest); err != nil || built != k {
			t.Fatalf("BuildLandmarks: built %d, err %v", built, err)
		}
	}
	reg := NewRegistry()
	if err := reg.Add(NewSolverEntry("grid", solver, rs.Options{Rho: 8, K: 1}, "test", 0)); err != nil {
		t.Fatalf("Add: %v", err)
	}
	ts := httptest.NewServer(New(reg, cfg).Handler())
	t.Cleanup(ts.Close)
	return ts, g
}

// TestRouteCacheFirst: a route whose source already has a cached full
// distance vector is answered by path reconstruction alone — no solve,
// no solve slot, and the response says so.
func TestRouteCacheFirst(t *testing.T) {
	_, ts, g := newTestServer(t, Config{CacheBytes: 1 << 20})
	want := rs.Dijkstra(g, 3)
	const target = 396

	// Populate the distance cache with a full solve from the source.
	if code := postJSON(t, ts, "/v1/distances", distancesRequest{Graph: "grid", Source: 3}, nil); code != http.StatusOK {
		t.Fatalf("distances: status %d", code)
	}

	var resp routeResponse
	if code := postJSON(t, ts, "/v1/route", routeRequest{Graph: "grid", Source: 3, Target: target}, &resp); code != http.StatusOK {
		t.Fatalf("route: status %d", code)
	}
	if !resp.Cached {
		t.Fatal("route from a cached source not marked cached")
	}
	if resp.Distance != want[target] {
		t.Fatalf("cached route distance: got %g want %g", resp.Distance, want[target])
	}
	verts := make([]rs.Vertex, len(resp.Path))
	for i, v := range resp.Path {
		verts[i] = rs.Vertex(v)
	}
	if length, err := rs.PathLength(g, verts); err != nil || length != want[target] {
		t.Fatalf("cached route path invalid: length %v err %v, want %v", length, err, want[target])
	}
	snap := fetchStats(t, ts)
	if snap.RouteCacheHits != 1 {
		t.Fatalf("routeCacheHits: got %d, want 1", snap.RouteCacheHits)
	}
	if snap.RouteSolves != 0 {
		t.Fatalf("routeSolves: got %d, want 0 (the route must not solve)", snap.RouteSolves)
	}
	if snap.Solves != 1 {
		t.Fatalf("solves: got %d, want 1 (only the priming /v1/distances)", snap.Solves)
	}

	// A source nobody solved yet cannot come from the cache.
	var resp2 routeResponse
	if code := postJSON(t, ts, "/v1/route", routeRequest{Graph: "grid", Source: 7, Target: target}, &resp2); code != http.StatusOK {
		t.Fatalf("uncached route: status %d", code)
	}
	if resp2.Cached {
		t.Fatal("uncached source marked cached")
	}
	if got := fetchStats(t, ts); got.RouteSolves != 1 {
		t.Fatalf("routeSolves after uncached route: got %d, want 1", got.RouteSolves)
	}
}

// TestRoutePruning: with landmarks on the solver, routes prune by
// default, ?prune=0 opts out, both answers are byte-identical to the
// oracle, and the counters surface in the response and /v1/stats.
func TestRoutePruning(t *testing.T) {
	ts, g := newLandmarkServer(t, Config{}, 4)
	src, dst := rs.Vertex(0), rs.Vertex(21)
	want := rs.Dijkstra(g, src)[dst]

	var pruned routeResponse
	if code := postJSON(t, ts, "/v1/route", routeRequest{Graph: "grid", Source: int64(src), Target: int64(dst)}, &pruned); code != http.StatusOK {
		t.Fatalf("pruned route: status %d", code)
	}
	if math.Float64bits(pruned.Distance) != math.Float64bits(want) {
		t.Fatalf("pruned distance %v, want %v", pruned.Distance, want)
	}
	if pruned.Pruned <= 0 {
		t.Fatalf("pruned route skipped %d candidates; landmarks never fired", pruned.Pruned)
	}

	var plain routeResponse
	if code := postJSON(t, ts, "/v1/route?prune=0", routeRequest{Graph: "grid", Source: int64(src), Target: int64(dst)}, &plain); code != http.StatusOK {
		t.Fatalf("unpruned route: status %d", code)
	}
	if math.Float64bits(plain.Distance) != math.Float64bits(want) {
		t.Fatalf("unpruned distance %v, want %v", plain.Distance, want)
	}
	if plain.Pruned != 0 {
		t.Fatalf("?prune=0 still pruned %d candidates", plain.Pruned)
	}

	snap := fetchStats(t, ts)
	if snap.RoutePruned != pruned.Pruned {
		t.Fatalf("stats routePruned %d != response pruned %d", snap.RoutePruned, pruned.Pruned)
	}
	if snap.RouteSolves != 2 {
		t.Fatalf("routeSolves: got %d, want 2", snap.RouteSolves)
	}

	var bad routeResponse
	if code := postJSON(t, ts, "/v1/route?prune=banana", routeRequest{Graph: "grid", Source: 0, Target: 1}, &bad); code != http.StatusBadRequest {
		t.Fatalf("?prune=banana: status %d, want 400", code)
	}
}

// TestGraphSpecLandmarks: the landmarks= spec key builds the set at
// load, /v1/graphs reports it, and out-of-range counts are rejected.
func TestGraphSpecLandmarks(t *testing.T) {
	cfg, err := ParseGraphSpec("g=gen=grid2d,n=100,weights=50,landmarks=3")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Landmarks != 3 {
		t.Fatalf("Landmarks = %d, want 3", cfg.Landmarks)
	}
	entry, err := BuildEntry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if entry.Info.Landmarks != 3 {
		t.Fatalf("Info.Landmarks = %d, want 3", entry.Info.Landmarks)
	}
	lb, ok := entry.Backend.(LandmarkBackend)
	if !ok {
		t.Fatal("gen-built backend does not expose landmarks")
	}
	if lb.Landmarks() != 3 {
		t.Fatalf("backend Landmarks() = %d, want 3", lb.Landmarks())
	}

	if _, err := ParseGraphSpec("g=gen=grid2d,landmarks=x"); err == nil {
		t.Fatal("non-numeric landmarks= accepted")
	}
	for _, k := range []int{-1, rs.MaxLandmarks + 1} {
		bad := cfg
		bad.Landmarks = k
		if _, err := BuildEntry(bad); err == nil {
			t.Fatalf("landmarks=%d accepted", k)
		}
	}
}

// TestAutoLandmarkAdoption: with -auto-landmarks, every full solve's
// distance vector is recycled into a free landmark, visible in
// /v1/stats and /v1/graphs, and later routes still answer exactly.
func TestAutoLandmarkAdoption(t *testing.T) {
	_, ts, g := newTestServer(t, Config{CacheBytes: 1 << 20, AutoLandmarks: true})
	for i, src := range []int64{5, 111} {
		if code := postJSON(t, ts, "/v1/distances", distancesRequest{Graph: "grid", Source: src}, nil); code != http.StatusOK {
			t.Fatalf("distances %d: status %d", src, code)
		}
		if snap := fetchStats(t, ts); snap.LandmarksAdopted != int64(i+1) {
			t.Fatalf("after %d solves: landmarksAdopted = %d", i+1, snap.LandmarksAdopted)
		}
	}
	var graphs struct {
		Graphs []GraphInfo `json:"graphs"`
	}
	if code := getJSON(t, ts, "/v1/graphs", &graphs); code != http.StatusOK {
		t.Fatalf("graphs: status %d", code)
	}
	if graphs.Graphs[0].Landmarks != 2 {
		t.Fatalf("live landmark count = %d, want 2", graphs.Graphs[0].Landmarks)
	}

	// Routes through the adopted landmarks stay exact.
	want := rs.Dijkstra(g, 40)
	var resp routeResponse
	if code := postJSON(t, ts, "/v1/route", routeRequest{Graph: "grid", Source: 40, Target: 399}, &resp); code != http.StatusOK {
		t.Fatalf("route: status %d", code)
	}
	if math.Float64bits(resp.Distance) != math.Float64bits(want[399]) {
		t.Fatalf("post-adoption route distance %v, want %v", resp.Distance, want[399])
	}
}

// packReorderedLandmarks packs a reordered snapshot carrying landmark
// vectors computed in the stored id space (graphpack -order -landmarks).
func packReorderedLandmarks(t *testing.T, g *rs.Graph, k int, path string) {
	t.Helper()
	perm, err := rs.OrderByName(g, "bfs")
	if err != nil {
		t.Fatal(err)
	}
	rg := rs.ApplyOrder(g, perm)
	opt := rs.Options{Rho: 8}
	pre, err := rs.Preprocess(rg, opt)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := rs.NewSnapshot(pre, opt)
	if err != nil {
		t.Fatal(err)
	}
	snap.Perm = perm
	solver, err := rs.NewSolverPre(pre, rs.EngineAuto)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := solver.BuildLandmarks(k, rs.LandmarksFarthest); err != nil {
		t.Fatal(err)
	}
	snap.Landmarks, snap.LandmarkDist = solver.LandmarkData()
	if err := rs.WriteSnapshotFile(path, snap); err != nil {
		t.Fatal(err)
	}
}

// TestReorderedSnapshotRoutesWithLandmarks: the remapping layer must
// translate pruned routes end-to-end — original-id endpoints in,
// original-id path out, distances byte-identical to the unreordered
// oracle — and adopt cache vectors arriving in original ids.
func TestReorderedSnapshotRoutesWithLandmarks(t *testing.T) {
	g := rs.WithUniformIntWeights(rs.Grid2D(14, 14), 1, 40, 9)
	path := filepath.Join(t.TempDir(), "lm.snap")
	packReorderedLandmarks(t, g, 3, path)

	entry, err := BuildEntry(GraphConfig{Name: "g", Snapshot: path})
	if err != nil {
		t.Fatal(err)
	}
	if !entry.Info.Reordered || entry.Info.Landmarks != 3 {
		t.Fatalf("entry info: reordered=%v landmarks=%d", entry.Info.Reordered, entry.Info.Landmarks)
	}
	rb, ok := entry.Backend.(RoutingBackend)
	if !ok {
		t.Fatal("reordered backend does not route")
	}
	src, dst := rs.Vertex(3), rs.Vertex(190)
	want := rs.Dijkstra(g, src)[dst]
	for _, prune := range []bool{false, true} {
		route, d, st, err := rb.Route(src, dst, rs.EngineAuto, prune)
		if err != nil {
			t.Fatalf("prune=%v: %v", prune, err)
		}
		if math.Float64bits(d) != math.Float64bits(want) {
			t.Fatalf("prune=%v: distance %v, want %v", prune, d, want)
		}
		if len(route) == 0 || route[0] != src || route[len(route)-1] != dst {
			t.Fatalf("prune=%v: endpoints %v", prune, route)
		}
		if length, err := rs.PathLength(g, route); err != nil || length != want {
			t.Fatalf("prune=%v: path not realizable in original ids: %v %v", prune, length, err)
		}
		if !prune && st.Pruned != 0 {
			t.Fatalf("unpruned route pruned %d candidates", st.Pruned)
		}
	}

	// Adoption remaps the original-id vector before storing it.
	lb, ok := entry.Backend.(LandmarkBackend)
	if !ok {
		t.Fatal("reordered backend does not expose landmarks")
	}
	adopted, err := lb.AdoptLandmark(7, rs.Dijkstra(g, 7))
	if err != nil || !adopted {
		t.Fatalf("AdoptLandmark: %v %v", adopted, err)
	}
	if lb.Landmarks() != 4 {
		t.Fatalf("Landmarks() = %d after adoption, want 4", lb.Landmarks())
	}
	if _, d, _, err := rb.Route(src, dst, rs.EngineAuto, true); err != nil || math.Float64bits(d) != math.Float64bits(want) {
		t.Fatalf("post-adoption route: %v %v, want %v", d, err, want)
	}

	// landmarks= on a snapshot that already carries them is a conflict.
	if _, err := BuildEntry(GraphConfig{Name: "g", Snapshot: path, Landmarks: 2}); err == nil {
		t.Fatal("landmarks= accepted over a landmark-carrying snapshot")
	}
}
