package server

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	rs "radiusstep"
)

// flightWait polls cond until it holds or the deadline passes. The
// flight tests sequence goroutines through observable state (waiter
// counts, context errors) rather than sleeps, so they stay
// deterministic under -race scheduling.
func flightWait(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

type flightResult struct {
	dist   []float64
	joined bool
	err    error
}

// TestFlightLeaderSurvivesWaiterCancel: one of two participants
// canceling must not abort the shared solve — the other still gets its
// answer.
func TestFlightLeaderSurvivesWaiterCancel(t *testing.T) {
	g := newFlightGroup()
	key := cacheKey{graph: "g", src: 1}
	gate := make(chan struct{})
	var solveCtx atomic.Pointer[context.Context]
	fn := func(ctx context.Context) ([]float64, error) {
		solveCtx.Store(&ctx)
		select {
		case <-gate:
			return []float64{7}, nil
		case <-ctx.Done():
			return nil, rs.ErrCanceled
		}
	}

	leaderDone := make(chan flightResult, 1)
	go func() {
		d, j, err := g.Do(context.Background(), key, fn)
		leaderDone <- flightResult{d, j, err}
	}()
	flightWait(t, "leader to start solving", func() bool { return solveCtx.Load() != nil })

	wctx, wcancel := context.WithCancel(context.Background())
	defer wcancel()
	waiterDone := make(chan flightResult, 1)
	go func() {
		d, j, err := g.Do(wctx, key, fn)
		waiterDone <- flightResult{d, j, err}
	}()
	flightWait(t, "waiter to join", func() bool { return g.Stats().Waiting == 1 })

	wcancel()
	w := <-waiterDone
	if !w.joined || !errors.Is(w.err, context.Canceled) {
		t.Fatalf("waiter: joined=%v err=%v, want joined cancel", w.joined, w.err)
	}
	// The solve must still be live: the leader is interested.
	flightWait(t, "waiter ref release", func() bool { return g.Stats().Waiting == 0 })
	if err := (*solveCtx.Load()).Err(); err != nil {
		t.Fatalf("solve context canceled by a non-final waiter: %v", err)
	}

	close(gate)
	l := <-leaderDone
	if l.err != nil || l.joined || len(l.dist) != 1 || l.dist[0] != 7 {
		t.Fatalf("leader: dist=%v joined=%v err=%v", l.dist, l.joined, l.err)
	}
}

// TestFlightAbortsWhenAllCancel: when every participant departs, the
// solve context must cancel so the solve stops burning its pool slot.
func TestFlightAbortsWhenAllCancel(t *testing.T) {
	g := newFlightGroup()
	key := cacheKey{graph: "g", src: 2}
	var solveCtx atomic.Pointer[context.Context]
	fn := func(ctx context.Context) ([]float64, error) {
		solveCtx.Store(&ctx)
		<-ctx.Done()
		return nil, rs.ErrCanceled
	}

	lctx, lcancel := context.WithCancel(context.Background())
	defer lcancel()
	leaderDone := make(chan flightResult, 1)
	go func() {
		d, j, err := g.Do(lctx, key, fn)
		leaderDone <- flightResult{d, j, err}
	}()
	flightWait(t, "leader to start solving", func() bool { return solveCtx.Load() != nil })

	wctx, wcancel := context.WithCancel(context.Background())
	defer wcancel()
	waiterDone := make(chan flightResult, 1)
	go func() {
		d, j, err := g.Do(wctx, key, fn)
		waiterDone <- flightResult{d, j, err}
	}()
	flightWait(t, "waiter to join", func() bool { return g.Stats().Waiting == 1 })

	// First departure: solve keeps running.
	wcancel()
	<-waiterDone
	flightWait(t, "waiter ref release", func() bool { return g.Stats().Waiting == 0 })
	if err := (*solveCtx.Load()).Err(); err != nil {
		t.Fatalf("solve aborted with a participant remaining: %v", err)
	}

	// Last departure: solve context must cancel and the leader's Do
	// must surface the abort.
	lcancel()
	l := <-leaderDone
	if !errors.Is(l.err, rs.ErrCanceled) {
		t.Fatalf("leader after full abandonment: err=%v, want ErrCanceled", l.err)
	}
	if err := (*solveCtx.Load()).Err(); err == nil {
		t.Fatal("solve context still live after every participant departed")
	}
	if n := g.Stats().InFlight; n != 0 {
		t.Fatalf("calls still in flight after abort: %d", n)
	}
}

// TestFlightLateJoinerRetriesAfterAbort: a waiter that piggybacks on a
// call just as its other participants abandon it must not inherit their
// cancellation — Do retries with a fresh solve.
func TestFlightLateJoinerRetriesAfterAbort(t *testing.T) {
	g := newFlightGroup()
	key := cacheKey{graph: "g", src: 3}
	gate := make(chan struct{})
	var calls atomic.Int64
	var solveCtx atomic.Pointer[context.Context]
	fn := func(ctx context.Context) ([]float64, error) {
		if calls.Add(1) == 1 {
			solveCtx.Store(&ctx)
			// The first solve ignores cancellation until the gate opens
			// (modeling a solve between probe polls), then honors it.
			<-gate
			if ctx.Err() != nil {
				return nil, rs.ErrCanceled
			}
			return []float64{1}, nil
		}
		return []float64{2}, nil
	}

	lctx, lcancel := context.WithCancel(context.Background())
	leaderDone := make(chan flightResult, 1)
	go func() {
		d, j, err := g.Do(lctx, key, fn)
		leaderDone <- flightResult{d, j, err}
	}()
	flightWait(t, "first solve to start", func() bool { return solveCtx.Load() != nil })

	// The leader departs; with refs at zero the call is doomed but still
	// registered (fn is between probe polls).
	lcancel()
	flightWait(t, "solve context cancellation", func() bool {
		return (*solveCtx.Load()).Err() != nil
	})

	// A late joiner with a live context piggybacks on the doomed call.
	joinerDone := make(chan flightResult, 1)
	go func() {
		d, j, err := g.Do(context.Background(), key, fn)
		joinerDone <- flightResult{d, j, err}
	}()
	flightWait(t, "late joiner to park", func() bool { return g.Stats().Waiting == 1 })

	close(gate)
	l := <-leaderDone
	if !errors.Is(l.err, rs.ErrCanceled) {
		t.Fatalf("abandoned leader: err=%v, want ErrCanceled", l.err)
	}
	j := <-joinerDone
	if j.err != nil {
		t.Fatalf("late joiner: %v (the neighbors' abort leaked through)", j.err)
	}
	if len(j.dist) != 1 || j.dist[0] != 2 {
		t.Fatalf("late joiner got %v, want the fresh solve's result [2]", j.dist)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("solve calls: got %d, want 2 (aborted + fresh)", got)
	}
	if st := g.Stats(); st.InFlight != 0 || st.Waiting != 0 {
		t.Fatalf("flight state not drained: %+v", st)
	}
}
