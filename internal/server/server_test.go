package server

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	rs "radiusstep"
)

// newTestServer builds a server over one small real graph and returns it
// with its HTTP instance and the reference distance oracle.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *rs.Graph) {
	t.Helper()
	g := rs.WithUniformIntWeights(rs.Grid2D(20, 20), 1, 100, 7)
	solver, err := rs.NewSolver(g, rs.Options{Rho: 8})
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	reg := NewRegistry()
	if err := reg.Add(NewSolverEntry("grid", solver, rs.Options{Rho: 8, K: 1}, "test", 0)); err != nil {
		t.Fatalf("Add: %v", err)
	}
	s := New(reg, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, g
}

func postJSON(t *testing.T, ts *httptest.Server, path string, req any, resp any) int {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	r, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer r.Body.Close()
	data, err := io.ReadAll(r.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	if resp != nil {
		if err := json.Unmarshal(data, resp); err != nil {
			t.Fatalf("unmarshal %s %q: %v", path, data, err)
		}
	}
	return r.StatusCode
}

func getJSON(t *testing.T, ts *httptest.Server, path string, resp any) int {
	t.Helper()
	r, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer r.Body.Close()
	data, err := io.ReadAll(r.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	if resp != nil {
		if err := json.Unmarshal(data, resp); err != nil {
			t.Fatalf("unmarshal %s %q: %v", path, data, err)
		}
	}
	return r.StatusCode
}

func fetchStats(t *testing.T, ts *httptest.Server) StatsSnapshot {
	t.Helper()
	var snap StatsSnapshot
	if code := getJSON(t, ts, "/v1/stats", &snap); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	return snap
}

func TestHealthz(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	var resp map[string]any
	if code := getJSON(t, ts, "/healthz", &resp); code != http.StatusOK {
		t.Fatalf("healthz: status %d", code)
	}
	if resp["status"] != "ok" {
		t.Fatalf("healthz: %v", resp)
	}
	if resp["graphs"].(float64) != 1 {
		t.Fatalf("healthz graphs: %v", resp["graphs"])
	}
}

func TestGraphsEndpoint(t *testing.T) {
	_, ts, g := newTestServer(t, Config{})
	var resp struct {
		Graphs []GraphInfo `json:"graphs"`
	}
	if code := getJSON(t, ts, "/v1/graphs", &resp); code != http.StatusOK {
		t.Fatalf("graphs: status %d", code)
	}
	if len(resp.Graphs) != 1 {
		t.Fatalf("want 1 graph, got %d", len(resp.Graphs))
	}
	info := resp.Graphs[0]
	if info.Name != "grid" || info.Vertices != g.NumVertices() || info.Edges != g.NumEdges() {
		t.Fatalf("bad metadata: %+v", info)
	}
	if info.Rho != 8 || info.K != 1 {
		t.Fatalf("bad options metadata: %+v", info)
	}
}

func TestDistancesFullVector(t *testing.T) {
	_, ts, g := newTestServer(t, Config{CacheBytes: 1 << 20})
	want := rs.Dijkstra(g, 0)

	var resp distancesResponse
	if code := postJSON(t, ts, "/v1/distances", distancesRequest{Graph: "grid", Source: 0}, &resp); code != http.StatusOK {
		t.Fatalf("distances: status %d", code)
	}
	if resp.Cached {
		t.Fatalf("first query must not be cached")
	}
	if len(resp.Distances) != len(want) {
		t.Fatalf("length: got %d want %d", len(resp.Distances), len(want))
	}
	for v, d := range want {
		got := resp.Distances[v]
		if math.IsInf(d, 1) {
			d = -1
		}
		if got != d {
			t.Fatalf("dist[%d]: got %g want %g", v, got, d)
		}
	}
	if resp.Reached != g.NumVertices() {
		t.Fatalf("reached: got %d want %d", resp.Reached, g.NumVertices())
	}

	// The same source again must come from the cache.
	var resp2 distancesResponse
	postJSON(t, ts, "/v1/distances", distancesRequest{Graph: "grid", Source: 0}, &resp2)
	if !resp2.Cached {
		t.Fatalf("second query should be cached")
	}
	snap := fetchStats(t, ts)
	if snap.Solves != 1 || snap.Cache.Hits != 1 {
		t.Fatalf("want solves=1 hits=1, got solves=%d hits=%d", snap.Solves, snap.Cache.Hits)
	}
}

func TestDistancesTopKAndTargets(t *testing.T) {
	_, ts, g := newTestServer(t, Config{})
	want := rs.Dijkstra(g, 5)

	var topk distancesResponse
	if code := postJSON(t, ts, "/v1/distances", distancesRequest{Graph: "grid", Source: 5, TopK: 4}, &topk); code != http.StatusOK {
		t.Fatalf("topk: status %d", code)
	}
	if len(topk.Nearest) != 4 {
		t.Fatalf("topk: got %d results", len(topk.Nearest))
	}
	if topk.Nearest[0].Vertex != 5 || topk.Nearest[0].Distance != 0 {
		t.Fatalf("topk[0] should be the source: %+v", topk.Nearest[0])
	}
	for i := 1; i < len(topk.Nearest); i++ {
		if topk.Nearest[i].Distance < topk.Nearest[i-1].Distance {
			t.Fatalf("topk not sorted: %+v", topk.Nearest)
		}
	}

	var tg distancesResponse
	targets := []int64{0, 17, 399}
	if code := postJSON(t, ts, "/v1/distances", distancesRequest{Graph: "grid", Source: 5, Targets: targets}, &tg); code != http.StatusOK {
		t.Fatalf("targets: status %d", code)
	}
	if len(tg.Targets) != len(targets) {
		t.Fatalf("targets: got %d", len(tg.Targets))
	}
	for i, vd := range tg.Targets {
		if vd.Vertex != targets[i] || vd.Distance != want[targets[i]] {
			t.Fatalf("target %d: got %+v want %g", targets[i], vd, want[targets[i]])
		}
	}
}

func TestRoute(t *testing.T) {
	_, ts, g := newTestServer(t, Config{})
	want := rs.Dijkstra(g, 3)
	const target = 396

	var resp routeResponse
	if code := postJSON(t, ts, "/v1/route", routeRequest{Graph: "grid", Source: 3, Target: target}, &resp); code != http.StatusOK {
		t.Fatalf("route: status %d", code)
	}
	if resp.Distance != want[target] {
		t.Fatalf("route distance: got %g want %g", resp.Distance, want[target])
	}
	if len(resp.Path) == 0 || resp.Path[0] != 3 || resp.Path[len(resp.Path)-1] != target {
		t.Fatalf("route endpoints: %v", resp.Path)
	}
	if resp.Hops != len(resp.Path)-1 {
		t.Fatalf("hops: got %d path len %d", resp.Hops, len(resp.Path))
	}
	verts := make([]rs.Vertex, len(resp.Path))
	for i, v := range resp.Path {
		verts[i] = rs.Vertex(v)
	}
	length, err := rs.PathLength(g, verts)
	if err != nil {
		t.Fatalf("returned path uses a non-edge: %v", err)
	}
	if length != want[target] {
		t.Fatalf("path length %g != distance %g", length, want[target])
	}
	snap := fetchStats(t, ts)
	if snap.RouteSolves != 1 {
		t.Fatalf("routeSolves: got %d", snap.RouteSolves)
	}
}

func TestBatch(t *testing.T) {
	_, ts, g := newTestServer(t, Config{CacheBytes: 1 << 20})
	sources := []int64{0, 7, 7, 42}

	var resp batchResponse
	if code := postJSON(t, ts, "/v1/batch", batchRequest{Graph: "grid", Sources: sources, TopK: 3}, &resp); code != http.StatusOK {
		t.Fatalf("batch: status %d", code)
	}
	if len(resp.Results) != len(sources) {
		t.Fatalf("batch results: got %d", len(resp.Results))
	}
	for i, r := range resp.Results {
		if r.Source != sources[i] {
			t.Fatalf("result %d: source %d want %d", i, r.Source, sources[i])
		}
		if r.Error != "" {
			t.Fatalf("result %d: %s", i, r.Error)
		}
		if len(r.Nearest) != 3 {
			t.Fatalf("result %d: %d nearest", i, len(r.Nearest))
		}
		want := rs.Dijkstra(g, rs.Vertex(sources[i]))
		for _, vd := range r.Nearest {
			if vd.Distance != want[vd.Vertex] {
				t.Fatalf("result %d vertex %d: got %g want %g", i, vd.Vertex, vd.Distance, want[vd.Vertex])
			}
		}
	}
	snap := fetchStats(t, ts)
	if snap.BatchSources != int64(len(sources)) {
		t.Fatalf("batchSources: got %d", snap.BatchSources)
	}
	// The duplicated source must not have solved twice: 3 distinct
	// sources → at most 3 solves (coalescing or cache handles the dup).
	if snap.Solves > 3 {
		t.Fatalf("duplicate batch source re-solved: solves=%d", snap.Solves)
	}
}

func TestErrorPaths(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})

	var errResp map[string]string
	if code := postJSON(t, ts, "/v1/distances", distancesRequest{Graph: "nope", Source: 0}, &errResp); code != http.StatusNotFound {
		t.Fatalf("unknown graph: status %d", code)
	}
	if code := postJSON(t, ts, "/v1/distances", distancesRequest{Graph: "grid", Source: 99999}, &errResp); code != http.StatusBadRequest {
		t.Fatalf("bad source: status %d", code)
	}
	if code := postJSON(t, ts, "/v1/distances", map[string]any{"graph": "grid", "sauce": 1}, &errResp); code != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d", code)
	}
	if code := postJSON(t, ts, "/v1/route", routeRequest{Graph: "grid", Source: 0, Target: -1}, &errResp); code != http.StatusBadRequest {
		t.Fatalf("bad target: status %d", code)
	}
	if code := postJSON(t, ts, "/v1/batch", batchRequest{Graph: "grid"}, &errResp); code != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d", code)
	}
	var tr distancesResponse
	if code := postJSON(t, ts, "/v1/distances", distancesRequest{Graph: "grid", Source: 0, Targets: []int64{1 << 20}}, &tr); code != http.StatusBadRequest {
		t.Fatalf("bad targets: status %d", code)
	}
	snap := fetchStats(t, ts)
	if snap.Errors < 6 {
		t.Fatalf("errors counter: got %d", snap.Errors)
	}
}

func TestParseGraphSpec(t *testing.T) {
	cfg, err := ParseGraphSpec("road=gen=road,n=5000,weights=100,rho=16,k=2,seed=9")
	if err != nil {
		t.Fatalf("ParseGraphSpec: %v", err)
	}
	want := GraphConfig{Name: "road", Gen: "road", N: 5000, Weights: 100, Rho: 16, K: 2, Seed: 9}
	if cfg != want {
		t.Fatalf("got %+v want %+v", cfg, want)
	}
	for _, bad := range []string{"", "noequals", "x=", "x=gen=road,bogus=1", "x=gen=road,n=abc"} {
		if _, err := ParseGraphSpec(bad); err == nil {
			t.Fatalf("spec %q should fail", bad)
		}
	}
}

func TestBuildEntryFromGen(t *testing.T) {
	entry, err := BuildEntry(GraphConfig{Name: "g", Gen: "grid2d", N: 400, Rho: 8})
	if err != nil {
		t.Fatalf("BuildEntry: %v", err)
	}
	if entry.Info.Vertices != 400 || entry.Info.Rho != 8 || entry.Info.K != 1 {
		t.Fatalf("metadata: %+v", entry.Info)
	}
	if _, _, err := entry.Backend.Distances(0, rs.EngineAuto); err != nil {
		t.Fatalf("Distances: %v", err)
	}
	// Exactly one of gen|file|pre, and bad names must fail loudly.
	if _, err := BuildEntry(GraphConfig{Name: "g"}); err == nil {
		t.Fatal("no source should fail")
	}
	if _, err := BuildEntry(GraphConfig{Name: "g", Gen: "grid2d", File: "x"}); err == nil {
		t.Fatal("two sources should fail")
	}
	if _, err := BuildEntry(GraphConfig{Name: "g", Gen: "nope", N: 100}); err == nil {
		t.Fatal("unknown generator should fail")
	}
	if _, err := BuildEntry(GraphConfig{Name: "g", Gen: "grid2d", N: 100, Heuristic: "typo"}); err == nil {
		t.Fatal("unknown heuristic should fail")
	}
	if _, err := BuildEntry(GraphConfig{Name: "g", Gen: "grid2d", N: 100, Engine: "typo"}); err == nil {
		t.Fatal("unknown engine should fail")
	}
}

func TestNearestKMatchesFullSort(t *testing.T) {
	dist := []float64{5, 0, math.Inf(1), 3, 3, 8, 1, math.Inf(1), 3, 2}
	naive := func(k int) []vertexDistance {
		var all []vertexDistance
		for v, d := range dist {
			if !math.IsInf(d, 1) {
				all = append(all, vertexDistance{Vertex: int64(v), Distance: d})
			}
		}
		for i := range all {
			for j := i + 1; j < len(all); j++ {
				a, b := all[i], all[j]
				if b.Distance < a.Distance || (b.Distance == a.Distance && b.Vertex < a.Vertex) {
					all[i], all[j] = all[j], all[i]
				}
			}
		}
		if len(all) > k {
			all = all[:k]
		}
		return all
	}
	for k := 0; k <= len(dist)+1; k++ {
		got, want := nearestK(dist, k), naive(k)
		if len(got) != len(want) {
			t.Fatalf("k=%d: got %v want %v", k, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("k=%d index %d: got %v want %v", k, i, got, want)
			}
		}
	}
}

func TestLoadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("load smoke fires hundreds of requests")
	}
	s, _, _ := newTestServer(t, Config{CacheBytes: 1 << 20})
	report, err := LoadSmoke(s, SmokeConfig{Queries: 200, Clients: 8, HotSources: 4})
	if err != nil {
		t.Fatalf("LoadSmoke: %v", err)
	}
	if report.Failures != 0 {
		t.Fatalf("failures: %d", report.Failures)
	}
	if report.P50 <= 0 || report.P99 < report.P50 {
		t.Fatalf("implausible percentiles: %+v", report)
	}
	// The hot-source pool guarantees cache hits dominate.
	if report.Stats.Cache.Hits == 0 {
		t.Fatalf("expected cache hits, got stats %+v", report.Stats)
	}
	if report.String() == "" {
		t.Fatal("empty report string")
	}
}
