package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"radiusstep/internal/metrics"
)

func scrape(t *testing.T, ts *httptest.Server) (string, []metrics.Sample) {
	t.Helper()
	r, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", r.StatusCode)
	}
	if ct := r.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content type %q", ct)
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if err := metrics.Lint(body); err != nil {
		t.Fatalf("exposition failed lint: %v\n%s", err, body)
	}
	samples, err := metrics.Parse(body)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return string(body), samples
}

func sampleValue(samples []metrics.Sample, name string, labels map[string]string) (float64, bool) {
	for _, s := range samples {
		if s.Name != name {
			continue
		}
		match := true
		for k, v := range labels {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s.Value, true
		}
	}
	return 0, false
}

// TestMetricsScrape is the acceptance test for GET /metrics: the
// exposition parses, passes the histogram lint (bucket monotonicity,
// le="+Inf" == _count), and reflects traffic the test just generated.
func TestMetricsScrape(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{CacheBytes: 1 << 20})

	// Generate traffic: two solves (one repeated source -> cache hit),
	// one 4xx (bad graph), one 5xx-free stats read.
	var resp distancesResponse
	for _, src := range []int64{1, 2, 2} {
		if code := postJSON(t, ts, "/v1/distances", distancesRequest{Graph: "grid", Source: src}, &resp); code != http.StatusOK {
			t.Fatalf("distances: status %d", code)
		}
	}
	if code := postJSON(t, ts, "/v1/distances", distancesRequest{Graph: "nope", Source: 0}, &resp); code != http.StatusNotFound {
		t.Fatalf("bad graph: status %d", code)
	}

	body, samples := scrape(t, ts)

	if v, ok := sampleValue(samples, "sssp_http_requests_total", map[string]string{"endpoint": "/v1/distances"}); !ok || v != 4 {
		t.Fatalf("requests{/v1/distances} = %v (present=%v), want 4", v, ok)
	}
	if v, ok := sampleValue(samples, "sssp_http_errors_total", map[string]string{"endpoint": "/v1/distances", "class": "4xx"}); !ok || v != 1 {
		t.Fatalf("errors{/v1/distances,4xx} = %v (present=%v), want 1", v, ok)
	}
	if v, ok := sampleValue(samples, "sssp_solves_total", nil); !ok || v != 2 {
		t.Fatalf("solves_total = %v (present=%v), want 2 (third query was a cache hit)", v, ok)
	}
	if v, ok := sampleValue(samples, "sssp_cache_hits_total", nil); !ok || v != 1 {
		t.Fatalf("cache_hits_total = %v (present=%v), want 1", v, ok)
	}
	if v, ok := sampleValue(samples, "sssp_cache_misses_total", nil); !ok || v != 2 {
		t.Fatalf("cache_misses_total = %v (present=%v), want 2", v, ok)
	}

	// The per-engine solve histogram must be populated and cumulative.
	var engine string
	for _, s := range samples {
		if s.Name == "sssp_engine_solves_total" && s.Value > 0 {
			engine = s.Labels["engine"]
		}
	}
	if engine == "" {
		t.Fatal("no engine recorded any solves")
	}
	count, ok := sampleValue(samples, "sssp_solve_duration_seconds_count", map[string]string{"engine": engine})
	if !ok || count != 2 {
		t.Fatalf("solve histogram count = %v (present=%v), want 2", count, ok)
	}

	// The pool-contention histograms observe once per backend solve —
	// zeros included (a solve that never forked still counts), so their
	// _count must equal the solve count.
	for _, name := range []string{"sssp_solve_barrier_nanos", "sssp_pool_wake_nanos"} {
		c, ok := sampleValue(samples, name+"_count", nil)
		if !ok || c != 2 {
			t.Fatalf("%s_count = %v (present=%v), want 2", name, c, ok)
		}
	}
	inf, ok := sampleValue(samples, "sssp_solve_duration_seconds_bucket", map[string]string{"engine": engine, "le": "+Inf"})
	if !ok || inf != count {
		t.Fatalf("le=+Inf bucket = %v, want _count = %v", inf, count)
	}
	prev := -1.0
	seen := 0
	for _, s := range samples {
		if s.Name != "sssp_solve_duration_seconds_bucket" || s.Labels["engine"] != engine {
			continue
		}
		seen++
		if s.Value < prev {
			t.Fatalf("bucket counts not monotone at le=%s: %v < %v", s.Labels["le"], s.Value, prev)
		}
		prev = s.Value
	}
	if seen < 2 {
		t.Fatalf("only %d buckets emitted", seen)
	}

	// Runtime health gauges are sampled at scrape time.
	if v, ok := sampleValue(samples, "sssp_go_goroutines", nil); !ok || v <= 0 {
		t.Fatalf("go_goroutines = %v (present=%v), want > 0", v, ok)
	}
	if !strings.Contains(body, "# TYPE sssp_solve_duration_seconds histogram") {
		t.Fatal("missing histogram TYPE line")
	}
}

// TestMetricsAndStatsAgree: both views read the same registry, so the
// numbers must match exactly.
func TestMetricsAndStatsAgree(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{CacheBytes: 1 << 20})
	var resp distancesResponse
	for _, src := range []int64{0, 1, 2} {
		if code := postJSON(t, ts, "/v1/distances", distancesRequest{Graph: "grid", Source: src}, &resp); code != http.StatusOK {
			t.Fatalf("distances: status %d", code)
		}
	}
	snap := fetchStats(t, ts)
	_, samples := scrape(t, ts)
	if v, _ := sampleValue(samples, "sssp_solves_total", nil); int64(v) != snap.Solves {
		t.Fatalf("/metrics solves %v != /v1/stats solves %d", v, snap.Solves)
	}
	if v, _ := sampleValue(samples, "sssp_cache_hits_total", nil); int64(v) != snap.Cache.Hits {
		t.Fatalf("/metrics cache hits %v != /v1/stats %d", v, snap.Cache.Hits)
	}
	if v, _ := sampleValue(samples, "sssp_graph_solves_total", map[string]string{"graph": "grid"}); int64(v) != snap.SolvesByGraph["grid"] {
		t.Fatalf("/metrics graph solves %v != /v1/stats %d", v, snap.SolvesByGraph["grid"])
	}
}

// TestMetricsErrorClasses: 4xx and 5xx land in separate labeled
// counters, split by endpoint.
func TestMetricsErrorClasses(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	var resp distancesResponse
	// 4xx on /v1/distances (unknown graph) and on /v1/route (bad body).
	if code := postJSON(t, ts, "/v1/distances", distancesRequest{Graph: "nope", Source: 0}, &resp); code != http.StatusNotFound {
		t.Fatalf("status %d", code)
	}
	r, err := ts.Client().Post(ts.URL+"/v1/route", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("route bad body: status %d", r.StatusCode)
	}
	_, samples := scrape(t, ts)
	if v, ok := sampleValue(samples, "sssp_http_errors_total", map[string]string{"endpoint": "/v1/distances", "class": "4xx"}); !ok || v != 1 {
		t.Fatalf("errors{distances,4xx} = %v (present=%v), want 1", v, ok)
	}
	if v, ok := sampleValue(samples, "sssp_http_errors_total", map[string]string{"endpoint": "/v1/route", "class": "4xx"}); !ok || v != 1 {
		t.Fatalf("errors{route,4xx} = %v (present=%v), want 1", v, ok)
	}
	if v, _ := sampleValue(samples, "sssp_http_errors_total", map[string]string{"endpoint": "/v1/distances", "class": "5xx"}); v != 0 {
		t.Fatalf("errors{distances,5xx} = %v, want 0", v)
	}
}
