package server

import (
	"net/http"
	"testing"
)

func TestDistCacheLRUEviction(t *testing.T) {
	// Each 10-entry vector costs 10*8 + 128 = 208 bytes; budget holds 2.
	c := newDistCache(450)
	vec := func(v float64) []float64 {
		d := make([]float64, 10)
		for i := range d {
			d[i] = v
		}
		return d
	}
	k := func(s int32) cacheKey { return cacheKey{graph: "g", src: s} }

	c.Add(k(1), vec(1))
	c.Add(k(2), vec(2))
	if st := c.Stats(); st.Entries != 2 || st.Evictions != 0 {
		t.Fatalf("after 2 adds: %+v", st)
	}
	// Touch 1 so 2 becomes the LRU victim.
	if _, ok := c.Get(k(1)); !ok {
		t.Fatal("key 1 missing")
	}
	c.Add(k(3), vec(3))
	if st := c.Stats(); st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("after eviction: %+v", st)
	}
	if _, ok := c.Get(k(2)); ok {
		t.Fatal("key 2 should have been evicted (LRU)")
	}
	if d, ok := c.Get(k(1)); !ok || d[0] != 1 {
		t.Fatal("key 1 should have survived (recently used)")
	}
	if d, ok := c.Get(k(3)); !ok || d[0] != 3 {
		t.Fatal("key 3 should be present")
	}

	// Refreshing an existing key must not duplicate its bytes.
	c.Add(k(1), vec(9))
	if st := c.Stats(); st.Entries != 2 {
		t.Fatalf("refresh duplicated entry: %+v", st)
	}
	if d, _ := c.Get(k(1)); d[0] != 9 {
		t.Fatal("refresh did not replace the vector")
	}

	// A vector larger than the whole budget is not cached.
	c.Add(k(7), make([]float64, 1000))
	if _, ok := c.Get(k(7)); ok {
		t.Fatal("oversized vector should not be cached")
	}
}

func TestDistCacheDisabled(t *testing.T) {
	c := newDistCache(0)
	c.Add(cacheKey{graph: "g", src: 1}, []float64{1})
	if _, ok := c.Get(cacheKey{graph: "g", src: 1}); ok {
		t.Fatal("disabled cache returned a hit")
	}
	if st := c.Stats(); st.Entries != 0 || st.Misses != 1 {
		t.Fatalf("disabled cache stats: %+v", st)
	}
}

func TestDistCacheInvalidateGraph(t *testing.T) {
	c := newDistCache(1 << 20)
	c.Add(cacheKey{graph: "a", src: 1}, []float64{1})
	c.Add(cacheKey{graph: "b", src: 1}, []float64{2})
	c.InvalidateGraph("a")
	if _, ok := c.Get(cacheKey{graph: "a", src: 1}); ok {
		t.Fatal("graph a should be invalidated")
	}
	if _, ok := c.Get(cacheKey{graph: "b", src: 1}); !ok {
		t.Fatal("graph b should survive")
	}
}

// TestServerEvictionUnderTinyBudget drives eviction through the HTTP
// layer: a budget that holds two 100-vertex vectors (928 bytes each)
// must evict the oldest source on the third query and re-solve it after.
func TestServerEvictionUnderTinyBudget(t *testing.T) {
	fake := &fakeBackend{n: 100}
	_, ts := newFakeServer(t, fake, Config{CacheBytes: 2000})

	query := func(src int64) {
		t.Helper()
		var resp distancesResponse
		if code := postJSON(t, ts, "/v1/distances", distancesRequest{Graph: "fake", Source: src}, &resp); code != http.StatusOK {
			t.Fatalf("source %d: status %d", src, code)
		}
	}
	query(1)
	query(2)
	query(3) // evicts source 1
	snap := fetchStats(t, ts)
	if snap.Cache.Evictions != 1 || snap.Cache.Entries != 2 {
		t.Fatalf("cache after 3 sources: %+v", snap.Cache)
	}
	if snap.Cache.Bytes > 2000 {
		t.Fatalf("cache over budget: %+v", snap.Cache)
	}
	query(1) // must re-solve
	if got := fake.calls.Load(); got != 4 {
		t.Fatalf("backend calls: got %d want 4 (evicted source must re-solve)", got)
	}
	query(3) // still resident (recently used) → no new solve
	if got := fake.calls.Load(); got != 4 {
		t.Fatalf("backend calls after cached query: got %d want 4", got)
	}
}
