package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"
)

// SmokeConfig tunes LoadSmoke.
type SmokeConfig struct {
	Graph       string // graph to query (default: first registered)
	Queries     int    // total requests (default 2000)
	Clients     int    // concurrent clients (default 16)
	HotSources  int    // size of the repeated-source pool (default 8)
	ColdPercent int    // % of queries drawn from fresh sources (default 30, -1 = none)
	TopK        int    // shape of each query (default 8, keeps responses small)
	Seed        int64  // workload seed (default 1)
}

// SmokeReport summarizes one LoadSmoke run.
type SmokeReport struct {
	Graph    string        `json:"graph"`
	Queries  int           `json:"queries"`
	Clients  int           `json:"clients"`
	Failures int           `json:"failures"`
	Elapsed  time.Duration `json:"-"`
	QPS      float64       `json:"qps"`
	P50      time.Duration `json:"-"`
	P90      time.Duration `json:"-"`
	P99      time.Duration `json:"-"`
	Max      time.Duration `json:"-"`
	Stats    StatsSnapshot `json:"stats"`
}

// String renders the report for the CLI.
func (r SmokeReport) String() string {
	return fmt.Sprintf(
		"selftest graph=%s queries=%d clients=%d failures=%d\n"+
			"  throughput %.0f qps in %v\n"+
			"  latency p50=%v p90=%v p99=%v max=%v\n"+
			"  solves=%d coalesced=%d cache hits=%d misses=%d evictions=%d",
		r.Graph, r.Queries, r.Clients, r.Failures,
		r.QPS, r.Elapsed.Round(time.Millisecond),
		r.P50.Round(time.Microsecond), r.P90.Round(time.Microsecond),
		r.P99.Round(time.Microsecond), r.Max.Round(time.Microsecond),
		r.Stats.Solves, r.Stats.Coalesced,
		r.Stats.Cache.Hits, r.Stats.Cache.Misses, r.Stats.Cache.Evictions)
}

// LoadSmoke fires a burst of mixed cached/uncached /v1/distances queries
// at an in-process HTTP instance of s and reports latency percentiles,
// so serving-path regressions show up without external tooling. Hot
// sources repeat (exercising the cache and coalescing paths); cold
// sources are fresh (exercising the solve pool).
func LoadSmoke(s *Server, cfg SmokeConfig) (SmokeReport, error) {
	if cfg.Graph == "" {
		entries := s.registry.List()
		if len(entries) == 0 {
			return SmokeReport{}, fmt.Errorf("server: selftest needs at least one graph")
		}
		cfg.Graph = entries[0].Name
	}
	e, ok := s.registry.Get(cfg.Graph)
	if !ok {
		return SmokeReport{}, fmt.Errorf("server: selftest: unknown graph %q", cfg.Graph)
	}
	if cfg.Queries <= 0 {
		cfg.Queries = 2000
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 16
	}
	if cfg.HotSources <= 0 {
		cfg.HotSources = 8
	}
	switch {
	case cfg.ColdPercent == 0:
		cfg.ColdPercent = 30 // mixed workload by default; -1 forces all-hot
	case cfg.ColdPercent < 0:
		cfg.ColdPercent = 0
	case cfg.ColdPercent > 100:
		cfg.ColdPercent = 100
	}
	if cfg.TopK <= 0 {
		cfg.TopK = 8
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	n := e.Backend.NumVertices()
	if n == 0 {
		return SmokeReport{}, fmt.Errorf("server: selftest: graph %q is empty", cfg.Graph)
	}

	// Pre-plan the workload so worker goroutines share no RNG.
	rng := rand.New(rand.NewSource(cfg.Seed))
	hot := make([]int64, cfg.HotSources)
	for i := range hot {
		hot[i] = int64(rng.Intn(n))
	}
	sources := make([]int64, cfg.Queries)
	for i := range sources {
		if rng.Intn(100) < cfg.ColdPercent {
			sources[i] = int64(rng.Intn(n))
		} else {
			sources[i] = hot[rng.Intn(len(hot))]
		}
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	latencies := make([]time.Duration, cfg.Queries)
	failures := make([]bool, cfg.Queries)
	var next int64
	var mu sync.Mutex
	claim := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if next >= int64(cfg.Queries) {
			return 0, false
		}
		i := next
		next++
		return int(i), true
	}

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i, ok := claim()
				if !ok {
					return
				}
				body, _ := json.Marshal(distancesRequest{Graph: cfg.Graph, Source: sources[i], TopK: cfg.TopK})
				t0 := time.Now()
				resp, err := client.Post(ts.URL+"/v1/distances", "application/json", bytes.NewReader(body))
				latencies[i] = time.Since(t0)
				if err != nil {
					failures[i] = true
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					failures[i] = true
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	sorted := append([]time.Duration(nil), latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	pct := func(p float64) time.Duration {
		idx := int(p * float64(len(sorted)-1))
		return sorted[idx]
	}
	nfail := 0
	for _, f := range failures {
		if f {
			nfail++
		}
	}
	report := SmokeReport{
		Graph:    cfg.Graph,
		Queries:  cfg.Queries,
		Clients:  cfg.Clients,
		Failures: nfail,
		Elapsed:  elapsed,
		QPS:      float64(cfg.Queries) / elapsed.Seconds(),
		P50:      pct(0.50),
		P90:      pct(0.90),
		P99:      pct(0.99),
		Max:      sorted[len(sorted)-1],
	}
	report.Stats = s.statsSnapshot()
	return report, nil
}
