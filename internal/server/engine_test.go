package server

import (
	"math"
	"net/http"
	"testing"

	rs "radiusstep"
)

// TestEngineOverride drives /v1/distances with every ?engine= override
// against the Dijkstra oracle and checks the per-engine solve counters
// in /v1/stats — the observable contract that the override actually
// selected a different engine rather than being dropped on the floor.
func TestEngineOverride(t *testing.T) {
	_, ts, g := newTestServer(t, Config{}) // no cache: every request solves
	want := rs.Dijkstra(g, 3)
	engines := []string{"sequential", "parallel", "flat", "delta", "rho"}
	for _, eng := range engines {
		var resp distancesResponse
		code := postJSON(t, ts, "/v1/distances?engine="+eng, distancesRequest{Graph: "grid", Source: 3}, &resp)
		if code != http.StatusOK {
			t.Fatalf("engine=%s: status %d (%s)", eng, code, resp.Error)
		}
		for v, d := range resp.Distances {
			wd := want[v]
			if math.IsInf(wd, 1) {
				wd = -1
			}
			if d != wd {
				t.Fatalf("engine=%s: dist[%d] = %v, want %v", eng, v, d, wd)
			}
		}
	}
	snap := fetchStats(t, ts)
	for _, eng := range engines {
		if snap.SolvesByEngine[eng] != 1 {
			t.Fatalf("solvesByEngine[%s] = %d, want 1 (full map: %v)", eng, snap.SolvesByEngine[eng], snap.SolvesByEngine)
		}
	}
	if snap.Solves != int64(len(engines)) {
		t.Fatalf("solves = %d, want %d", snap.Solves, len(engines))
	}
	// The parallel and rho solves above ran on the ordered-frontier
	// substrate, so its operation totals must be visible — the
	// serving-side signal that replaces a bench run for regression
	// triage. Selects come from the rho solve's rank queries.
	if snap.Frontier.Pushes == 0 || snap.Frontier.Batches == 0 ||
		snap.Frontier.Extracted == 0 || snap.Frontier.Selects == 0 {
		t.Fatalf("frontier substrate counters empty after frontier-engine solves: %+v", snap.Frontier)
	}
}

func TestEngineOverrideUnknownRejected(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	for _, path := range []string{"/v1/distances?engine=bogus", "/v1/batch?engine=bogus"} {
		var resp map[string]any
		code := postJSON(t, ts, path, map[string]any{"graph": "grid", "source": 0, "sources": []int64{0}}, &resp)
		if code != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", path, code)
		}
	}
	code := postJSON(t, ts, "/v1/route?engine=bogus", routeRequest{Graph: "grid", Source: 0, Target: 1}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("route: status %d, want 400", code)
	}
}

// TestEngineOverrideCacheShared: distances are engine-independent, so a
// vector solved under one engine serves later requests for any engine
// from the cache without a second solve.
func TestEngineOverrideCacheShared(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{CacheBytes: 1 << 20})
	var first distancesResponse
	if code := postJSON(t, ts, "/v1/distances?engine=delta", distancesRequest{Graph: "grid", Source: 9}, &first); code != http.StatusOK {
		t.Fatalf("first: status %d", code)
	}
	var second distancesResponse
	if code := postJSON(t, ts, "/v1/distances?engine=rho", distancesRequest{Graph: "grid", Source: 9}, &second); code != http.StatusOK {
		t.Fatalf("second: status %d", code)
	}
	if !second.Cached {
		t.Fatal("second request with a different engine missed the shared cache")
	}
	snap := fetchStats(t, ts)
	if snap.SolvesByEngine["delta"] != 1 || snap.SolvesByEngine["rho"] != 0 {
		t.Fatalf("per-engine counts after cache hit: %v", snap.SolvesByEngine)
	}
}

// TestBatchEngineOverride runs a batch under ?engine=rho and checks the
// solves were counted against that engine.
func TestBatchEngineOverride(t *testing.T) {
	_, ts, g := newTestServer(t, Config{})
	var resp batchResponse
	code := postJSON(t, ts, "/v1/batch?engine=rho",
		batchRequest{Graph: "grid", Sources: []int64{1, 2}, Targets: []int64{5}}, &resp)
	if code != http.StatusOK {
		t.Fatalf("batch: status %d", code)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("results: %d", len(resp.Results))
	}
	for i, src := range []rs.Vertex{1, 2} {
		want := rs.Dijkstra(g, src)[5]
		if got := resp.Results[i].Targets[0].Distance; got != want {
			t.Fatalf("batch source %d: target distance %v, want %v", src, got, want)
		}
	}
	snap := fetchStats(t, ts)
	if snap.SolvesByEngine["rho"] != 2 {
		t.Fatalf("solvesByEngine[rho] = %d, want 2", snap.SolvesByEngine["rho"])
	}
}

// TestRouteEngineOverride: the route endpoint honors the override and
// returns the same distance as the default engine.
func TestRouteEngineOverride(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	var def, par routeResponse
	if code := postJSON(t, ts, "/v1/route", routeRequest{Graph: "grid", Source: 0, Target: 399}, &def); code != http.StatusOK {
		t.Fatalf("default route: status %d", code)
	}
	if code := postJSON(t, ts, "/v1/route?engine=parallel", routeRequest{Graph: "grid", Source: 0, Target: 399}, &par); code != http.StatusOK {
		t.Fatalf("parallel route: status %d", code)
	}
	if def.Distance != par.Distance {
		t.Fatalf("route distance differs by engine: %v vs %v", def.Distance, par.Distance)
	}
	if def.Hops == 0 || par.Hops == 0 {
		t.Fatalf("degenerate route: %+v %+v", def, par)
	}
}

// TestGraphSpecDelta: the delta= key reaches the solver configuration.
func TestGraphSpecDelta(t *testing.T) {
	cfg, err := ParseGraphSpec("g=gen=road,n=500,delta=2.5,engine=delta")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Delta != 2.5 || cfg.Engine != "delta" {
		t.Fatalf("parsed spec: %+v", cfg)
	}
	entry, err := BuildEntry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if entry.Info.Engine != "delta" {
		t.Fatalf("entry engine: %q", entry.Info.Engine)
	}
	if _, _, err := entry.Backend.Distances(0, rs.EngineAuto); err != nil {
		t.Fatalf("delta-engine solve: %v", err)
	}
}
