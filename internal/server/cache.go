package server

import (
	"container/list"
	"sync"
)

// cacheKey identifies one cached distance vector: a (graph, epoch,
// source) triple. The epoch makes every consumer of the cache — and
// the flight group, which shares the key type — epoch-correct by
// construction: a vector solved on epoch N can never answer a query
// that resolved epoch N+1, because the keys differ. InvalidateGraph
// (called on every swap) reclaims the dead epoch's memory; correctness
// never depends on it.
type cacheKey struct {
	graph string
	epoch uint64
	src   int32
}

// entryOverhead approximates the per-entry bookkeeping cost (list node,
// map slot, key strings) charged against the byte budget in addition to
// the 8 bytes per distance.
const entryOverhead = 128

// CacheStats is a point-in-time snapshot of the distance cache.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	Budget    int64 `json:"budgetBytes"`
}

// distCache is a source-keyed LRU cache of full distance vectors with a
// byte budget. Repeated sources — the common production pattern — are
// served from here without re-solving. Cached slices are shared between
// requests and must be treated as read-only by all consumers.
type distCache struct {
	mu     sync.Mutex
	budget int64
	used   int64
	order  *list.List // front = most recently used
	items  map[cacheKey]*list.Element

	hits, misses, evictions int64
}

type cacheEntry struct {
	key   cacheKey
	dist  []float64
	bytes int64
}

// newDistCache returns a cache with the given byte budget. A budget
// <= 0 disables caching: Get always misses and Add is a no-op.
func newDistCache(budget int64) *distCache {
	return &distCache{
		budget: budget,
		order:  list.New(),
		items:  make(map[cacheKey]*list.Element),
	}
}

// Get returns the cached vector for key, marking it most recently used.
func (c *distCache) Get(key cacheKey) ([]float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).dist, true
	}
	c.misses++
	return nil, false
}

// Add inserts dist under key, evicting least-recently-used entries until
// the budget holds. A vector larger than the whole budget is not cached.
func (c *distCache) Add(key cacheKey, dist []float64) {
	if c.budget <= 0 {
		return
	}
	size := int64(len(dist))*8 + entryOverhead
	if size > c.budget {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		// Refresh a concurrent duplicate (two solves can race past the
		// cache check); keep the newer vector.
		ent := el.Value.(*cacheEntry)
		c.used += size - ent.bytes
		ent.dist, ent.bytes = dist, size
		c.order.MoveToFront(el)
	} else {
		el := c.order.PushFront(&cacheEntry{key: key, dist: dist, bytes: size})
		c.items[key] = el
		c.used += size
	}
	for c.used > c.budget {
		back := c.order.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*cacheEntry)
		c.order.Remove(back)
		delete(c.items, ent.key)
		c.used -= ent.bytes
		c.evictions++
	}
}

// InvalidateGraph drops every entry belonging to the named graph.
func (c *distCache) InvalidateGraph(graph string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.order.Front(); el != nil; {
		next := el.Next()
		ent := el.Value.(*cacheEntry)
		if ent.key.graph == graph {
			c.order.Remove(el)
			delete(c.items, ent.key)
			c.used -= ent.bytes
		}
		el = next
	}
}

// Stats snapshots the counters.
func (c *distCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   c.order.Len(),
		Bytes:     c.used,
		Budget:    c.budget,
	}
}
