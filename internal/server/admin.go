package server

import (
	"crypto/subtle"
	"errors"
	"net/http"
	"strings"
)

// The admin surface mutates the graph registry at runtime: hot reload,
// load, remove. It is deliberately not part of Handler's default route
// table — mutation does not belong on an open query port. Two mounting
// modes, both used by cmd/ssspd:
//
//   - AdminHandler: the full surface with no auth, for a separate
//     private listener (-admin-addr 127.0.0.1:...). Network reachability
//     is the guard.
//   - Config.AdminToken: mounts the same routes on the main handler,
//     each guarded by a constant-time bearer-token check.

// AdminHandler returns the admin route table (reload, load, remove,
// plus the health/readiness probes an operator pokes alongside them).
// Serve it on a private listener; it performs no authentication.
func (s *Server) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	s.mountAdmin(mux, nil)
	mux.HandleFunc("GET /healthz", s.instrument("/healthz", s.handleHealthz))
	mux.HandleFunc("GET /readyz", s.instrument("/readyz", s.handleReadyz))
	mux.HandleFunc("GET /v1/graphs", s.instrument("/v1/graphs", s.handleGraphs))
	return mux
}

// mountAdmin registers the admin routes on mux, wrapping each handler
// with guard when non-nil.
func (s *Server) mountAdmin(mux *http.ServeMux, guard func(http.HandlerFunc) http.HandlerFunc) {
	wrap := func(h http.HandlerFunc) http.HandlerFunc {
		if guard != nil {
			return guard(h)
		}
		return h
	}
	mux.HandleFunc("POST /v1/admin/reload", s.instrument("/v1/admin/reload", wrap(s.handleAdminReload)))
	mux.HandleFunc("POST /v1/admin/load", s.instrument("/v1/admin/load", wrap(s.handleAdminLoad)))
	mux.HandleFunc("DELETE /v1/admin/graphs/{name}", s.instrument("/v1/admin/remove", wrap(s.handleAdminRemove)))
}

// requireAdminToken guards an admin handler mounted on the query port:
// the request must carry "Authorization: Bearer <Config.AdminToken>".
// Comparison is constant-time; a missing or wrong token 403s without
// revealing whether the route exists beyond the 403 itself.
func (s *Server) requireAdminToken(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		auth := r.Header.Get("Authorization")
		token, ok := strings.CutPrefix(auth, "Bearer ")
		if !ok || subtle.ConstantTimeCompare([]byte(token), []byte(s.adminToken)) != 1 {
			s.fail(w, http.StatusForbidden, "admin endpoints require a valid bearer token")
			return
		}
		h(w, r)
	}
}

type adminReloadRequest struct {
	Graph string `json:"graph"`
}

// adminGraphResponse reports the outcome of a lifecycle mutation: the
// graph's health record afterward (state, epoch, quarantine error).
type adminGraphResponse struct {
	Graph  string      `json:"graph"`
	Health GraphHealth `json:"health"`
	Error  string      `json:"error,omitempty"`
}

// healthFor extracts one graph's health record (zero value when the
// graph is gone).
func (s *Server) healthFor(name string) GraphHealth {
	for _, h := range s.registry.Health() {
		if h.Name == name {
			return h
		}
	}
	return GraphHealth{Name: name}
}

// handleAdminReload re-reads a graph's source and swaps in a new
// epoch. Queries in flight on the old epoch finish on it; the swap is
// atomic for new queries. Failure quarantines: 422 with the error and
// the health record showing the old epoch still serving.
func (s *Server) handleAdminReload(w http.ResponseWriter, r *http.Request) {
	var req adminReloadRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Graph == "" {
		s.fail(w, http.StatusBadRequest, "reload needs a graph name")
		return
	}
	err := s.registry.Reload(req.Graph)
	resp := adminGraphResponse{Graph: req.Graph, Health: s.healthFor(req.Graph)}
	switch {
	case err == nil:
		s.logAdmin("reload", req.Graph, resp.Health.Epoch, nil)
		writeJSON(w, http.StatusOK, resp)
	case errors.Is(err, ErrGraphUnknown):
		s.fail(w, http.StatusNotFound, "unknown graph %q", req.Graph)
	case strings.Contains(err.Error(), "cannot be reloaded"):
		s.fail(w, http.StatusConflict, "%v", err)
	default:
		// Build/validation failure: the old epoch (if any) keeps
		// serving; the health record carries the quarantine details.
		resp.Error = err.Error()
		s.logAdmin("reload", req.Graph, resp.Health.Epoch, err)
		writeJSON(w, http.StatusUnprocessableEntity, resp)
	}
}

// adminLoadRequest accepts either a structured GraphConfig or a -graph
// style spec string ("name=snapshot=/path"); exactly one of the two.
type adminLoadRequest struct {
	Spec string `json:"spec,omitempty"`
	GraphConfig
}

// handleAdminLoad registers and loads a new graph at runtime. A build
// failure still registers the graph — failed, visible in health,
// re-probed by the watcher — and answers 422; DELETE removes it if the
// registration was a mistake.
func (s *Server) handleAdminLoad(w http.ResponseWriter, r *http.Request) {
	var req adminLoadRequest
	if !decodeBody(w, r, &req) {
		return
	}
	cfg := req.GraphConfig
	if req.Spec != "" {
		if cfg.Name != "" || cfg.Gen != "" || cfg.File != "" || cfg.Snapshot != "" || cfg.Pre != "" {
			s.fail(w, http.StatusBadRequest, "give either spec or structured fields, not both")
			return
		}
		var err error
		cfg, err = ParseGraphSpec(req.Spec)
		if err != nil {
			s.fail(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	if cfg.Name == "" {
		s.fail(w, http.StatusBadRequest, "load needs a graph name")
		return
	}
	err := s.registry.LoadConfig(cfg)
	resp := adminGraphResponse{Graph: cfg.Name, Health: s.healthFor(cfg.Name)}
	switch {
	case err == nil:
		s.logAdmin("load", cfg.Name, resp.Health.Epoch, nil)
		writeJSON(w, http.StatusOK, resp)
	case strings.Contains(err.Error(), "duplicate graph name"):
		s.fail(w, http.StatusConflict, "%v", err)
	default:
		resp.Error = err.Error()
		s.logAdmin("load", cfg.Name, 0, err)
		writeJSON(w, http.StatusUnprocessableEntity, resp)
	}
}

// handleAdminRemove unregisters a graph. In-flight queries finish on
// their pinned epoch; new queries 404.
func (s *Server) handleAdminRemove(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if name == "" {
		s.fail(w, http.StatusBadRequest, "remove needs a graph name")
		return
	}
	if !s.registry.Remove(name) {
		s.fail(w, http.StatusNotFound, "unknown graph %q", name)
		return
	}
	s.logAdmin("remove", name, 0, nil)
	writeJSON(w, http.StatusOK, map[string]string{"graph": name, "status": "removed"})
}

// logAdmin emits one structured log line per lifecycle mutation —
// admin actions are rare and load-bearing, so they always log.
func (s *Server) logAdmin(action, graph string, epoch uint64, err error) {
	if s.logger == nil {
		return
	}
	if err != nil {
		s.logger.Error("admin "+action+" failed", "graph", graph, "err", err.Error())
		return
	}
	s.logger.Info("admin "+action, "graph", graph, "epoch", epoch)
}
