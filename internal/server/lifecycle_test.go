package server

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	rs "radiusstep"
)

// ctxFakeBackend is a controllable ContextBackend: solves can block on
// a gate until released or until the solve context ends (mapping the
// cancellation cause exactly like the real cooperative probe), and can
// be armed to panic.
type ctxFakeBackend struct {
	n      int
	calls  atomic.Int64
	gate   chan struct{} // when non-nil, DistancesCtx blocks until closed or ctx ends
	panics atomic.Bool   // when set, the next solve panics
}

func (f *ctxFakeBackend) NumVertices() int { return f.n }

func (f *ctxFakeBackend) DistancesCtx(ctx context.Context, src rs.Vertex, _ rs.Engine) ([]float64, rs.Stats, error) {
	f.calls.Add(1)
	if f.panics.Load() {
		panic("injected backend panic")
	}
	if f.gate != nil {
		select {
		case <-f.gate:
		case <-ctx.Done():
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				return nil, rs.Stats{}, rs.ErrDeadline
			}
			return nil, rs.Stats{}, rs.ErrCanceled
		}
	}
	d := make([]float64, f.n)
	for i := range d {
		d[i] = float64(src) + float64(i)
	}
	return d, rs.Stats{}, nil
}

func (f *ctxFakeBackend) Distances(src rs.Vertex, eng rs.Engine) ([]float64, rs.Stats, error) {
	return f.DistancesCtx(context.Background(), src, eng)
}

func (f *ctxFakeBackend) Path(src, dst rs.Vertex, _ rs.Engine) ([]rs.Vertex, float64, error) {
	return []rs.Vertex{src, dst}, 1, nil
}

func (f *ctxFakeBackend) RouteCtx(ctx context.Context, src, dst rs.Vertex, _ rs.Engine, _ bool) ([]rs.Vertex, float64, rs.Stats, error) {
	if f.gate != nil {
		select {
		case <-f.gate:
		case <-ctx.Done():
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				return nil, 0, rs.Stats{}, rs.ErrDeadline
			}
			return nil, 0, rs.Stats{}, rs.ErrCanceled
		}
	}
	return []rs.Vertex{src, dst}, 1, rs.Stats{}, nil
}

func newCtxFakeServer(t *testing.T, fake *ctxFakeBackend, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	reg := NewRegistry()
	if err := reg.Add(&Entry{
		Name:    "fake",
		Backend: fake,
		Info:    GraphInfo{Name: "fake", Vertices: fake.n},
	}); err != nil {
		t.Fatalf("Add: %v", err)
	}
	s := New(reg, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// poolDrained waits for the server to report zero slots in use and an
// empty wait queue — the "released its slot, queue depth zero"
// acceptance check.
func poolDrained(t *testing.T, ts *httptest.Server) {
	t.Helper()
	flightWait(t, "pool to drain", func() bool {
		snap := fetchStats(t, ts)
		return snap.Pool.InUse == 0 && snap.Pool.Waiting == 0 && snap.Flight.InFlight == 0
	})
}

// TestSolveTimeoutReturns504: a request whose ?timeout_ms= budget
// expires mid-solve gets a gateway-timeout answer promptly, and the
// abandoned solve releases its pool slot.
func TestSolveTimeoutReturns504(t *testing.T) {
	fake := &ctxFakeBackend{n: 32, gate: make(chan struct{})}
	defer close(fake.gate)
	_, ts := newCtxFakeServer(t, fake, Config{Workers: 1, CacheBytes: 0})

	start := time.Now()
	var resp distancesResponse
	code := postJSON(t, ts, "/v1/distances?timeout_ms=50", distancesRequest{Graph: "fake", Source: 0}, &resp)
	elapsed := time.Since(start)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (resp %+v)", code, resp)
	}
	if resp.Error == "" {
		t.Fatal("504 body carries no error message")
	}
	// ~2x the 50ms deadline plus scheduler slop; generous for CI.
	if elapsed > 2*time.Second {
		t.Fatalf("504 took %v, deadline was 50ms", elapsed)
	}
	poolDrained(t, ts)
	snap := fetchStats(t, ts)
	if snap.SolveTimeouts < 1 {
		t.Fatalf("solveTimeouts: %d, want >= 1", snap.SolveTimeouts)
	}
}

// TestServerSolveTimeoutDefault: the server-wide SolveTimeout bounds
// requests that carry no per-request override.
func TestServerSolveTimeoutDefault(t *testing.T) {
	fake := &ctxFakeBackend{n: 16, gate: make(chan struct{})}
	defer close(fake.gate)
	_, ts := newCtxFakeServer(t, fake, Config{Workers: 1, SolveTimeout: 50 * time.Millisecond})

	var resp distancesResponse
	if code := postJSON(t, ts, "/v1/distances", distancesRequest{Graph: "fake", Source: 0}, &resp); code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", code)
	}
	// The override can shorten but never extend the server budget:
	// asking for 10s still times out on the 50ms server limit.
	start := time.Now()
	if code := postJSON(t, ts, "/v1/distances?timeout_ms=10000", distancesRequest{Graph: "fake", Source: 1}, &resp); code != http.StatusGatewayTimeout {
		t.Fatalf("extend attempt: status %d, want 504", code)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("extend attempt took %v, server budget was 50ms", elapsed)
	}
	poolDrained(t, ts)
}

func TestBadTimeoutParamRejected(t *testing.T) {
	fake := &ctxFakeBackend{n: 16}
	_, ts := newCtxFakeServer(t, fake, Config{})
	for _, raw := range []string{"abc", "-5", "0"} {
		var resp distancesResponse
		if code := postJSON(t, ts, "/v1/distances?timeout_ms="+raw, distancesRequest{Graph: "fake", Source: 0}, &resp); code != http.StatusBadRequest {
			t.Fatalf("timeout_ms=%s: status %d, want 400", raw, code)
		}
	}
	if got := fake.calls.Load(); got != 0 {
		t.Fatalf("bad timeout reached the backend %d times", got)
	}
}

// TestQueueFullSheds503: one slot busy, one queue position filled — the
// third concurrent query must be shed with 503 + Retry-After instead of
// queuing without bound.
func TestQueueFullSheds503(t *testing.T) {
	fake := &ctxFakeBackend{n: 32, gate: make(chan struct{})}
	_, ts := newCtxFakeServer(t, fake, Config{Workers: 1, QueueDepth: 1, CacheBytes: 0})

	codes := make(chan int, 2)
	for src := int64(0); src < 2; src++ {
		go func(src int64) {
			var resp distancesResponse
			codes <- postJSON(t, ts, "/v1/distances", distancesRequest{Graph: "fake", Source: src}, &resp)
		}(src)
	}
	flightWait(t, "slot busy and queue full", func() bool {
		snap := fetchStats(t, ts)
		return snap.Pool.InUse == 1 && snap.Pool.Waiting == 1
	})

	r, err := ts.Client().Post(ts.URL+"/v1/distances", "application/json",
		strings.NewReader(`{"graph":"fake","source":2}`))
	if err != nil {
		t.Fatalf("shed request: %v", err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed request: status %d, want 503", r.StatusCode)
	}
	if got := r.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After: %q, want \"1\"", got)
	}

	close(fake.gate)
	for i := 0; i < 2; i++ {
		if code := <-codes; code != http.StatusOK {
			t.Fatalf("held request %d: status %d", i, code)
		}
	}
	poolDrained(t, ts)
	snap := fetchStats(t, ts)
	if snap.Shed != 1 || snap.Pool.Shed != 1 {
		t.Fatalf("shed counters: stats=%d pool=%d, want 1/1", snap.Shed, snap.Pool.Shed)
	}
}

// TestSolvePanicContained: an engine panic becomes a 500 and a counter
// increment; the daemon keeps serving and no slot is stranded.
func TestSolvePanicContained(t *testing.T) {
	fake := &ctxFakeBackend{n: 16}
	fake.panics.Store(true)
	_, ts := newCtxFakeServer(t, fake, Config{Workers: 1, CacheBytes: 1 << 20})

	var resp distancesResponse
	if code := postJSON(t, ts, "/v1/distances", distancesRequest{Graph: "fake", Source: 0}, &resp); code != http.StatusInternalServerError {
		t.Fatalf("panicking solve: status %d, want 500", code)
	}
	if !strings.Contains(resp.Error, "panic") {
		t.Fatalf("500 body does not mention the panic: %q", resp.Error)
	}
	snap := fetchStats(t, ts)
	if snap.SolvePanics != 1 {
		t.Fatalf("solvePanics: %d, want 1", snap.SolvePanics)
	}
	poolDrained(t, ts)

	// The daemon survived: the next solve succeeds on the same slot.
	fake.panics.Store(false)
	if code := postJSON(t, ts, "/v1/distances", distancesRequest{Graph: "fake", Source: 1}, &resp); code != http.StatusOK {
		t.Fatalf("post-panic solve: status %d, want 200", code)
	}
}

// TestReadyzLifecycle: /readyz tracks loading and draining states while
// /healthz stays 200 throughout — liveness and routability are
// different questions.
func TestReadyzLifecycle(t *testing.T) {
	fake := &ctxFakeBackend{n: 16}
	s, ts := newCtxFakeServer(t, fake, Config{})

	check := func(wantCode int, wantStatus string) {
		t.Helper()
		var body map[string]any
		if code := getJSON(t, ts, "/readyz", &body); code != wantCode {
			t.Fatalf("readyz: status %d, want %d (%v)", code, wantCode, body)
		}
		if body["status"] != wantStatus {
			t.Fatalf("readyz body: %v, want status %q", body, wantStatus)
		}
		if code := getJSON(t, ts, "/healthz", nil); code != http.StatusOK {
			t.Fatalf("healthz: status %d, want 200 always", code)
		}
	}

	check(http.StatusOK, "ready")
	s.SetReady(false)
	check(http.StatusServiceUnavailable, "loading")
	s.SetReady(true)
	check(http.StatusOK, "ready")
	s.BeginDrain()
	check(http.StatusServiceUnavailable, "draining")
	if s.Ready() {
		t.Fatal("Ready() true while draining")
	}
	// Nothing in flight: drain completes immediately.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain with idle pool: %v", err)
	}
}

// TestDrainThenAbort: a straggler solve holds Drain past its grace;
// Abort cancels it through the flight layer and the client gets a
// cancellation-class answer.
func TestDrainThenAbort(t *testing.T) {
	fake := &ctxFakeBackend{n: 32, gate: make(chan struct{})}
	defer close(fake.gate)
	// SolveTimeout < 0 disables the server deadline: only Abort can end
	// this solve.
	s, ts := newCtxFakeServer(t, fake, Config{Workers: 1, SolveTimeout: -1, CacheBytes: 0})

	done := make(chan int, 1)
	go func() {
		var resp distancesResponse
		done <- postJSON(t, ts, "/v1/distances", distancesRequest{Graph: "fake", Source: 0}, &resp)
	}()
	flightWait(t, "straggler to occupy its slot", func() bool {
		return fetchStats(t, ts).Pool.InUse == 1
	})

	s.BeginDrain()
	graceCtx, graceCancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer graceCancel()
	if err := s.Drain(graceCtx); err == nil {
		t.Fatal("Drain returned nil with a solve still in flight")
	}

	s.Abort()
	if code := <-done; code != statusClientClosedRequest {
		t.Fatalf("aborted straggler: status %d, want %d", code, statusClientClosedRequest)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain after Abort: %v", err)
	}
	poolDrained(t, ts)
	if snap := fetchStats(t, ts); snap.SolvesCanceled < 1 {
		t.Fatalf("solvesCanceled: %d, want >= 1", snap.SolvesCanceled)
	}
}

// TestRouteTimeout504: the route path threads the request deadline into
// the probe-aware backend too.
func TestRouteTimeout504(t *testing.T) {
	fake := &ctxFakeBackend{n: 32, gate: make(chan struct{})}
	defer close(fake.gate)
	_, ts := newCtxFakeServer(t, fake, Config{Workers: 1})

	var resp routeResponse
	code := postJSON(t, ts, "/v1/route?timeout_ms=50", routeRequest{Graph: "fake", Source: 0, Target: 5}, &resp)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("route timeout: status %d, want 504 (%+v)", code, resp)
	}
	poolDrained(t, ts)
}
