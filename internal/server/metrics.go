package server

import (
	"math"
	"net/http"
	runtimemetrics "runtime/metrics"
	"sync"
	"time"

	"radiusstep/internal/metrics"
	"radiusstep/internal/parallel"

	rs "radiusstep"
)

// endpointNames maps the short request-counter keys of /v1/stats to the
// endpoint label values used on /metrics. One fixed table keeps the two
// views enumerable from the same registry children.
var endpointNames = map[string]string{
	"distances": "/v1/distances",
	"route":     "/v1/route",
	"batch":     "/v1/batch",
	"graphs":    "/v1/graphs",
	"stats":     "/v1/stats",
	"healthz":   "/healthz",
	"readyz":    "/readyz",
	"metrics":   "/metrics",

	"adminReload": "/v1/admin/reload",
	"adminLoad":   "/v1/admin/load",
	"adminRemove": "/v1/admin/remove",
}

// statusClasses are the error-class label values (satellite of the
// errors-by-endpoint split: client vs server failures count apart).
var statusClasses = []string{"4xx", "5xx"}

// serverMetrics is the server's single metrics registry: every counter
// the handlers maintain lives here, and both GET /metrics (Prometheus
// text) and GET /v1/stats (JSON snapshot) read it. Hot-path handles
// (per-endpoint counters, per-engine histograms) are captured once at
// construction or memoized in sync.Maps, so request handling never
// takes the family mutex.
type serverMetrics struct {
	reg *metrics.Registry

	requests   *metrics.CounterVec   // endpoint
	reqDur     *metrics.HistogramVec // endpoint
	httpErrors *metrics.CounterVec   // endpoint, class

	solves           *metrics.Counter
	solveDur         *metrics.HistogramVec // engine
	engineSolves     *metrics.CounterVec   // engine
	graphSolves      *metrics.CounterVec   // graph
	routeSolves      *metrics.Counter
	routeCacheHits   *metrics.Counter
	routePruned      *metrics.Counter
	landmarksAdopted *metrics.Counter
	coalesced        *metrics.Counter
	batchSources     *metrics.Counter
	solveTimeouts    *metrics.Counter
	solvesCanceled   *metrics.Counter
	solvePanics      *metrics.Counter
	frontierOps      *metrics.CounterVec // op
	solveBarrier     *metrics.Histogram  // per-solve join-barrier nanos
	poolWake         *metrics.Histogram  // per-solve worker-wake nanos

	// Memoized children for hot paths and for snapshot enumeration
	// (CounterVec does not expose its label sets).
	engineCells sync.Map // engine name -> *metrics.Counter
	graphCells  sync.Map // graph name -> *metrics.Counter

	rt runtimeStats
}

// newServerMetrics builds the registry over the server's cache, pool and
// flight group (whose own counters are exported as scrape-time funcs —
// one source of truth, no mirroring).
func newServerMetrics(s *Server) *serverMetrics {
	r := metrics.NewRegistry()
	m := &serverMetrics{reg: r}

	// Latency buckets: 100µs .. ~27s, log-spaced. Solves on small graphs
	// sit at the bottom, cold large-graph solves at the top.
	solveBuckets := metrics.ExpBuckets(1e-4, 2.5, 14)
	reqBuckets := metrics.ExpBuckets(1e-4, 2.5, 14)

	m.requests = r.NewCounterVec("sssp_http_requests_total",
		"HTTP requests received, by endpoint.", "endpoint")
	m.reqDur = r.NewHistogramVec("sssp_http_request_duration_seconds",
		"HTTP request latency, by endpoint.", []string{"endpoint"}, reqBuckets)
	m.httpErrors = r.NewCounterVec("sssp_http_errors_total",
		"HTTP error responses, by endpoint and status class.", "endpoint", "class")

	m.solves = r.NewCounter("sssp_solves_total",
		"Full SSSP solves executed by a backend (cache hits excluded).")
	m.solveDur = r.NewHistogramVec("sssp_solve_duration_seconds",
		"Full SSSP solve latency, by engine.", []string{"engine"}, solveBuckets)
	m.engineSolves = r.NewCounterVec("sssp_engine_solves_total",
		"Full SSSP solves, by stepping engine.", "engine")
	m.graphSolves = r.NewCounterVec("sssp_graph_solves_total",
		"Full SSSP solves, by graph name.", "graph")
	m.routeSolves = r.NewCounter("sssp_route_solves_total",
		"Early-terminated point-to-point route solves.")
	m.routeCacheHits = r.NewCounter("sssp_route_cache_hits_total",
		"Route queries answered from a cached distance vector (no solve).")
	m.routePruned = r.NewCounter("sssp_route_pruned_relaxations_total",
		"Relaxation candidates skipped by goal-directed landmark pruning.")
	m.landmarksAdopted = r.NewCounter("sssp_landmarks_adopted_total",
		"Cached distance vectors promoted into ALT landmark sets.")
	r.NewGaugeFunc("sssp_landmarks", "ALT landmark vectors serving route pruning, across graphs.",
		func() float64 {
			var total int
			for _, e := range s.registry.List() {
				if lb, ok := e.Backend.(LandmarkBackend); ok {
					total += lb.Landmarks()
				}
			}
			return float64(total)
		})
	m.coalesced = r.NewCounter("sssp_coalesced_requests_total",
		"Queries that piggybacked on an in-flight identical solve.")
	m.batchSources = r.NewCounter("sssp_batch_sources_total",
		"Sources processed via /v1/batch.")

	// Request-lifecycle counters: deadline expiries (504s), client
	// departures (499s), contained engine panics, and shed requests.
	// Plain counters (not funcs) so they appear in the exposition at 0 —
	// alerting rules and the CI promcheck -require gate depend on the
	// families existing before the first incident.
	m.solveTimeouts = r.NewCounter("sssp_solve_timeouts_total",
		"Solve-backed requests that hit their deadline (504 class).")
	m.solvesCanceled = r.NewCounter("sssp_solves_canceled_total",
		"Solve-backed requests aborted by client departure (499 class).")
	m.solvePanics = r.NewCounter("sssp_solve_panics_total",
		"Engine panics contained by the serving layer (500 instead of a dead daemon).")
	r.NewCounterFunc("sssp_requests_shed_total",
		"Requests rejected because the solve wait queue was full (503 + Retry-After).",
		func() float64 { return float64(s.pool.Stats().Shed) })
	r.NewGaugeFunc("sssp_pool_queue_depth",
		"Requests currently waiting for a solve slot (the bounded admission queue).",
		func() float64 { return float64(s.pool.Stats().Waiting) })

	// Graph-lifecycle families, sampled from the registry's counters at
	// scrape time. A load failure here means a graph is quarantined (still
	// serving its previous epoch) or failed (never served) — the
	// sssp_graphs_quarantined gauge says whether the condition persists.
	r.NewCounterFunc("sssp_graph_load_failures_total",
		"Graph load/reload attempts rejected by validation (torn snapshot, bad checksum, build error).",
		func() float64 { return float64(s.registry.Counters().LoadFailures) })
	r.NewCounterFunc("sssp_graph_reloads_total",
		"Successful hot reloads: a new graph epoch atomically replaced a serving one.",
		func() float64 { return float64(s.registry.Counters().Reloads) })
	r.NewCounterFunc("sssp_graph_evictions_total",
		"Graph epochs evicted to cold state by the memory budget.",
		func() float64 { return float64(s.registry.Counters().Evictions) })
	r.NewCounterFunc("sssp_graph_cold_reloads_total",
		"Budget-evicted graphs reloaded on demand by a query.",
		func() float64 { return float64(s.registry.Counters().ColdReloads) })
	r.NewGaugeFunc("sssp_graphs_quarantined",
		"Graphs whose most recent load attempt failed (serving a stale epoch or nothing).",
		func() float64 { return float64(s.registry.QuarantinedCount()) })
	r.NewGaugeFunc("sssp_graphs_serving",
		"Graphs with a live epoch answering queries right now.",
		func() float64 { serving, _ := s.registry.ReadyCount(); return float64(serving) })
	m.frontierOps = r.NewCounterVec("sssp_frontier_ops_total",
		"Ordered-frontier substrate operations across frontier-backed solves, by op.", "op")

	// Per-solve fork-join contention, sampled as worker-pool counter
	// deltas around each backend solve (the same counters -trace reads,
	// so contention is visible in production without tracing overhead).
	// The pool counters are process-global: under concurrent solves a
	// delta also absorbs the overlapping solves' events, so these read
	// as load-level contention, exact per-solve attribution only when
	// solves don't overlap. Buckets: 1µs .. ~4s, log-spaced.
	poolBuckets := metrics.ExpBuckets(1e3, 4, 12)
	m.solveBarrier = r.NewHistogram("sssp_solve_barrier_nanos",
		"Join-barrier wait nanoseconds accumulated by fork callers during one solve.", poolBuckets)
	m.poolWake = r.NewHistogram("sssp_pool_wake_nanos",
		"Worker wake (dispatch-to-execution) nanoseconds accumulated during one solve.", poolBuckets)

	// Cache, pool and flight counters live in their own structs (the
	// /v1/stats sections); /metrics samples them at scrape.
	r.NewCounterFunc("sssp_cache_hits_total", "Distance-cache hits.",
		func() float64 { return float64(s.cache.Stats().Hits) })
	r.NewCounterFunc("sssp_cache_misses_total", "Distance-cache misses.",
		func() float64 { return float64(s.cache.Stats().Misses) })
	r.NewCounterFunc("sssp_cache_evictions_total", "Distance-cache evictions.",
		func() float64 { return float64(s.cache.Stats().Evictions) })
	r.NewGaugeFunc("sssp_cache_entries", "Distance-cache resident entries.",
		func() float64 { return float64(s.cache.Stats().Entries) })
	r.NewGaugeFunc("sssp_cache_bytes", "Distance-cache resident bytes.",
		func() float64 { return float64(s.cache.Stats().Bytes) })
	r.NewGaugeFunc("sssp_pool_workers", "Solve-pool slot count.",
		func() float64 { return float64(s.pool.Stats().Workers) })
	r.NewGaugeFunc("sssp_pool_in_use", "Solve-pool slots currently held.",
		func() float64 { return float64(s.pool.Stats().InUse) })
	r.NewGaugeFunc("sssp_pool_waiting", "Requests waiting for a solve slot.",
		func() float64 { return float64(s.pool.Stats().Waiting) })
	r.NewGaugeFunc("sssp_flight_waiting", "Requests joined to an in-flight solve.",
		func() float64 { return float64(s.flight.Stats().Waiting) })

	// Go runtime health, sampled from runtime/metrics once per scrape
	// (handleMetrics calls rt.sample before writing).
	r.NewGaugeFunc("sssp_go_goroutines", "Goroutine count.",
		func() float64 { return m.rt.get().goroutines })
	r.NewGaugeFunc("sssp_go_heap_objects_bytes", "Live heap object bytes.",
		func() float64 { return m.rt.get().heapBytes })
	r.NewGaugeFunc("sssp_go_gc_pause_p50_seconds", "Median stop-the-world GC pause.",
		func() float64 { return m.rt.get().gcP50 })
	r.NewGaugeFunc("sssp_go_gc_pause_p99_seconds", "99th-percentile stop-the-world GC pause.",
		func() float64 { return m.rt.get().gcP99 })
	r.NewGaugeFunc("sssp_go_sched_latency_p50_seconds", "Median goroutine scheduling latency.",
		func() float64 { return m.rt.get().schedP50 })
	r.NewGaugeFunc("sssp_go_sched_latency_p99_seconds", "99th-percentile goroutine scheduling latency.",
		func() float64 { return m.rt.get().schedP99 })

	return m
}

// engineCounter memoizes the per-engine solve counter; the sync.Map is
// also the enumeration source for the /v1/stats solvesByEngine map.
func (m *serverMetrics) engineCounter(engine string) *metrics.Counter {
	if c, ok := m.engineCells.Load(engine); ok {
		return c.(*metrics.Counter)
	}
	c := m.engineSolves.With(engine)
	m.engineCells.Store(engine, c)
	return c
}

func (m *serverMetrics) graphCounter(graph string) *metrics.Counter {
	if c, ok := m.graphCells.Load(graph); ok {
		return c.(*metrics.Counter)
	}
	c := m.graphSolves.With(graph)
	m.graphCells.Store(graph, c)
	return c
}

// observeSolve folds one full solve into the registry: totals, the
// per-engine latency histogram, per-engine and per-graph counters, and
// the frontier substrate's operation counters.
func (m *serverMetrics) observeSolve(graph string, st rs.Stats, dur time.Duration) {
	m.solves.Inc()
	m.graphCounter(graph).Inc()
	if st.Engine != "" {
		m.engineCounter(st.Engine).Inc()
		m.solveDur.With(st.Engine).Observe(dur.Seconds())
	}
	if st.Frontier.Pushes != 0 {
		f := st.Frontier
		for _, op := range []struct {
			name string
			n    int64
		}{
			{"pushes", f.Pushes}, {"batches", f.Batches}, {"merges", f.Merges},
			{"extracted", f.Extracted}, {"stale", f.Stale}, {"selects", f.Selects},
		} {
			m.frontierOps.With(op.name).Add(op.n)
		}
	}
}

// poolBefore snapshots the worker pool's cumulative counters ahead of a
// solve; pass the result to observePool afterwards.
func (m *serverMetrics) poolBefore() parallel.PoolCounters {
	return parallel.ReadPoolCounters()
}

// observePool folds the solve's pool-counter delta into the barrier and
// wake histograms (see their registration comment for the concurrency
// caveat). Solves that never forked (sequential engine, GOMAXPROCS=1)
// still observe zeros, keeping _count equal to the solve count so rates
// stay comparable.
func (m *serverMetrics) observePool(before parallel.PoolCounters) {
	after := parallel.ReadPoolCounters()
	m.solveBarrier.Observe(float64(after.BarrierNanos - before.BarrierNanos))
	m.poolWake.Observe(float64(after.WakeNanos - before.WakeNanos))
}

// errorsTotal sums the labeled error counters back into the single
// number /v1/stats has always reported.
func (m *serverMetrics) errorsTotal() int64 {
	var total int64
	for _, ep := range endpointNames {
		for _, class := range statusClasses {
			total += m.httpErrors.With(ep, class).Value()
		}
	}
	return total
}

// handleMetrics serves the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.metrics.rt.sample()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.metrics.reg.WritePrometheus(w)
}

// --- runtime/metrics sampling ---------------------------------------------

// runtimeValues is one sample of the Go runtime health metrics exported
// on /metrics.
type runtimeValues struct {
	goroutines float64
	heapBytes  float64
	gcP50      float64
	gcP99      float64
	schedP50   float64
	schedP99   float64
}

// runtimeStats samples runtime/metrics once per scrape: handleMetrics
// calls sample() before writing, and each gauge func reads the shared
// snapshot instead of re-reading the runtime six times.
type runtimeStats struct {
	mu   sync.Mutex
	last runtimeValues
}

func (r *runtimeStats) get() runtimeValues {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.last
}

func (r *runtimeStats) sample() {
	samples := []runtimemetrics.Sample{
		{Name: "/sched/goroutines:goroutines"},
		{Name: "/memory/classes/heap/objects:bytes"},
		{Name: "/gc/pauses:seconds"},
		{Name: "/sched/latencies:seconds"},
	}
	runtimemetrics.Read(samples)
	var v runtimeValues
	if samples[0].Value.Kind() == runtimemetrics.KindUint64 {
		v.goroutines = float64(samples[0].Value.Uint64())
	}
	if samples[1].Value.Kind() == runtimemetrics.KindUint64 {
		v.heapBytes = float64(samples[1].Value.Uint64())
	}
	if samples[2].Value.Kind() == runtimemetrics.KindFloat64Histogram {
		h := samples[2].Value.Float64Histogram()
		v.gcP50, v.gcP99 = histQuantile(h, 0.50), histQuantile(h, 0.99)
	}
	if samples[3].Value.Kind() == runtimemetrics.KindFloat64Histogram {
		h := samples[3].Value.Float64Histogram()
		v.schedP50, v.schedP99 = histQuantile(h, 0.50), histQuantile(h, 0.99)
	}
	r.mu.Lock()
	r.last = v
	r.mu.Unlock()
}

// histQuantile reads quantile q out of a runtime/metrics histogram,
// reporting the upper edge of the bucket the quantile falls in (the
// conservative answer for latency alerts).
func histQuantile(h *runtimemetrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if float64(cum) >= target {
			// Counts[i] spans Buckets[i]..Buckets[i+1]; an infinite upper
			// edge falls back to the finite lower edge.
			hi := h.Buckets[i+1]
			if math.IsInf(hi, 1) {
				return h.Buckets[i]
			}
			return hi
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}
