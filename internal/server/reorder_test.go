package server

import (
	"math"
	"path/filepath"
	"testing"

	rs "radiusstep"
)

// packReordered simulates `graphpack -order <name>`: relabel, preprocess
// in the stored id space, and write a permutation-carrying snapshot.
func packReordered(t *testing.T, g *rs.Graph, order, path string) {
	t.Helper()
	perm, err := rs.OrderByName(g, order)
	if err != nil {
		t.Fatal(err)
	}
	rg := rs.ApplyOrder(g, perm)
	opt := rs.Options{Rho: 8}
	pre, err := rs.Preprocess(rg, opt)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := rs.NewSnapshot(pre, opt)
	if err != nil {
		t.Fatal(err)
	}
	snap.Perm = perm
	if err := rs.WriteSnapshotFile(path, snap); err != nil {
		t.Fatal(err)
	}
}

// TestReorderedSnapshotServesOriginalIDs is the end-to-end round trip
// for the cache-locality relabeling: a snapshot packed with -order-style
// reordering must serve distances and routes in ORIGINAL vertex ids —
// byte-identical to Dijkstra on the unreordered input — for every
// engine, with the registry reporting the reorder and the persisted
// radii both in effect.
func TestReorderedSnapshotServesOriginalIDs(t *testing.T) {
	g := rs.WithUniformIntWeights(rs.Grid2D(15, 15), 1, 50, 11)
	for _, order := range []string{"bfs", "degree"} {
		path := filepath.Join(t.TempDir(), order+".snap")
		packReordered(t, g, order, path)

		entry, err := BuildEntry(GraphConfig{Name: "g", Snapshot: path})
		if err != nil {
			t.Fatal(err)
		}
		if !entry.Info.Reordered {
			t.Fatalf("order %s: entry does not report Reordered", order)
		}
		if entry.Info.RadiiSource != RadiiFromSnapshot {
			t.Fatalf("order %s: radii source %q, want %q (reorder must not defeat the cold-start path)",
				order, entry.Info.RadiiSource, RadiiFromSnapshot)
		}
		if entry.Backend.NumVertices() != g.NumVertices() {
			t.Fatalf("order %s: %d vertices, want %d", order, entry.Backend.NumVertices(), g.NumVertices())
		}

		for _, src := range []rs.Vertex{0, 7, 113, 224} {
			want := rs.Dijkstra(g, src)
			for _, eng := range []rs.Engine{rs.EngineAuto, rs.EngineSequential, rs.EngineParallel, rs.EngineFlat, rs.EngineDelta, rs.EngineRho} {
				got, _, err := entry.Backend.Distances(src, eng)
				if err != nil {
					t.Fatalf("order %s src %d engine %v: %v", order, src, eng, err)
				}
				for v := range got {
					if math.Float64bits(got[v]) != math.Float64bits(want[v]) {
						t.Fatalf("order %s src %d engine %v: dist[%d] = %v, want %v",
							order, src, eng, v, got[v], want[v])
					}
				}
			}
		}

		// Routes come back as original-id vertex sequences realizable in
		// the original graph with the right length.
		src, dst := rs.Vertex(0), rs.Vertex(224)
		wantD := rs.Dijkstra(g, src)[dst]
		path2, d, err := entry.Backend.Path(src, dst, rs.EngineAuto)
		if err != nil {
			t.Fatal(err)
		}
		if d != wantD {
			t.Fatalf("order %s: path distance %v, want %v", order, d, wantD)
		}
		if len(path2) == 0 || path2[0] != src || path2[len(path2)-1] != dst {
			t.Fatalf("order %s: path endpoints %v", order, path2)
		}
		if got, err := rs.PathLength(g, path2); err != nil || got != wantD {
			t.Fatalf("order %s: path not realizable in original ids: length %v err %v, want %v",
				order, got, err, wantD)
		}
	}
}

// TestReorderedRawSnapshotPreprocessesAndRemaps: a graph-only reordered
// snapshot (graphpack -raw -order ...) preprocesses at load time and
// still serves original ids.
func TestReorderedRawSnapshotPreprocessesAndRemaps(t *testing.T) {
	g := rs.WithUniformIntWeights(rs.Grid2D(9, 9), 1, 30, 5)
	perm, err := rs.OrderByName(g, "bfs")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "raw.snap")
	if err := rs.WriteSnapshotFile(path, &rs.Snapshot{G: rs.ApplyOrder(g, perm), Perm: perm}); err != nil {
		t.Fatal(err)
	}
	entry, err := BuildEntry(GraphConfig{Name: "g", Snapshot: path, Rho: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !entry.Info.Reordered {
		t.Fatal("raw reordered snapshot does not report Reordered")
	}
	want := rs.Dijkstra(g, 3)
	got, _, err := entry.Backend.Distances(3, rs.EngineAuto)
	if err != nil {
		t.Fatal(err)
	}
	for v := range got {
		if math.Float64bits(got[v]) != math.Float64bits(want[v]) {
			t.Fatalf("dist[%d] = %v, want %v", v, got[v], want[v])
		}
	}
}

// TestLoadGraphFileUndoesReordering: the "real input graph, original
// ids" contract of LoadGraphFile holds for reordered snapshots, so
// re-packing one never leaks stored ids.
func TestLoadGraphFileUndoesReordering(t *testing.T) {
	g := rs.WithUniformIntWeights(rs.Grid2D(8, 8), 1, 20, 3)
	path := filepath.Join(t.TempDir(), "g.snap")
	packReordered(t, g, "degree", path)
	got, format, err := rs.LoadGraphFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if format != rs.FormatSnapshot {
		t.Fatalf("format %v", format)
	}
	// Same metric under the identity mapping == same graph up to arc order.
	for _, src := range []rs.Vertex{0, 13, 63} {
		want, gotD := rs.Dijkstra(g, src), rs.Dijkstra(got, src)
		for v := range want {
			if math.Float64bits(want[v]) != math.Float64bits(gotD[v]) {
				t.Fatalf("src %d: dist[%d] = %v, want %v", src, v, gotD[v], want[v])
			}
		}
	}
}

// TestRemapBackendRejectsOutOfRange: the remapping layer validates ids
// like the plain solver backend does — a clean error, never a panic
// from the permutation lookup.
func TestRemapBackendRejectsOutOfRange(t *testing.T) {
	g := rs.WithUniformIntWeights(rs.Grid2D(6, 6), 1, 10, 2)
	path := filepath.Join(t.TempDir(), "g.snap")
	packReordered(t, g, "bfs", path)
	entry, err := BuildEntry(GraphConfig{Name: "g", Snapshot: path})
	if err != nil {
		t.Fatal(err)
	}
	n := rs.Vertex(g.NumVertices())
	if _, _, err := entry.Backend.Distances(n, rs.EngineAuto); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	if _, _, err := entry.Backend.Distances(-1, rs.EngineAuto); err == nil {
		t.Fatal("negative source accepted")
	}
	if _, _, err := entry.Backend.Path(0, n+5, rs.EngineAuto); err == nil {
		t.Fatal("out-of-range target accepted")
	}
}
