package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	rs "radiusstep"
)

// fakeBackend is a controllable Backend: it counts solves and can block
// them on a gate so tests can hold a solve in flight while concurrent
// clients pile up behind it.
type fakeBackend struct {
	n     int
	calls atomic.Int64
	gate  chan struct{} // when non-nil, Distances blocks until closed
}

func (f *fakeBackend) NumVertices() int { return f.n }

func (f *fakeBackend) Distances(src rs.Vertex, _ rs.Engine) ([]float64, rs.Stats, error) {
	f.calls.Add(1)
	if f.gate != nil {
		<-f.gate
	}
	d := make([]float64, f.n)
	for i := range d {
		d[i] = float64(src) + float64(i)
	}
	return d, rs.Stats{}, nil
}

func (f *fakeBackend) Path(src, dst rs.Vertex, _ rs.Engine) ([]rs.Vertex, float64, error) {
	return []rs.Vertex{src, dst}, 1, nil
}

func newFakeServer(t *testing.T, fake *fakeBackend, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	reg := NewRegistry()
	if err := reg.Add(&Entry{
		Name:    "fake",
		Backend: fake,
		Info:    GraphInfo{Name: "fake", Vertices: fake.n},
	}); err != nil {
		t.Fatalf("Add: %v", err)
	}
	s := New(reg, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// TestCoalescing is the acceptance test for request deduplication: N
// concurrent identical (graph, source) queries trigger exactly one
// backend solve, verified through the /v1/stats counters.
func TestCoalescing(t *testing.T) {
	const clients = 8
	fake := &fakeBackend{n: 50, gate: make(chan struct{})}
	// Cache disabled: every request must reach the coalescing layer.
	_, ts := newFakeServer(t, fake, Config{Workers: 4, CacheBytes: 0})

	var wg sync.WaitGroup
	responses := make([]distancesResponse, clients)
	codes := make([]int, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i] = postJSON(t, ts, "/v1/distances", distancesRequest{Graph: "fake", Source: 3}, &responses[i])
		}(i)
	}

	// Hold the gate until the leader is inside the backend and the other
	// clients are parked on its flight, so the coalescing claim is
	// deterministic rather than timing-dependent.
	deadline := time.Now().Add(10 * time.Second)
	for {
		snap := fetchStats(t, ts)
		if fake.calls.Load() == 1 && snap.Flight.Waiting == clients-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("clients never coalesced: backend calls=%d waiting=%d",
				fake.calls.Load(), snap.Flight.Waiting)
		}
		time.Sleep(time.Millisecond)
	}
	close(fake.gate)
	wg.Wait()

	for i := range codes {
		if codes[i] != http.StatusOK {
			t.Fatalf("client %d: status %d", i, codes[i])
		}
		if len(responses[i].Distances) != fake.n || responses[i].Distances[0] != 3 {
			t.Fatalf("client %d: bad vector %v", i, responses[i].Distances[:1])
		}
	}
	snap := fetchStats(t, ts)
	if got := fake.calls.Load(); got != 1 {
		t.Fatalf("backend solved %d times, want 1", got)
	}
	if snap.Solves != 1 {
		t.Fatalf("stats solves: got %d want 1", snap.Solves)
	}
	if snap.Coalesced != clients-1 {
		t.Fatalf("stats coalesced: got %d want %d", snap.Coalesced, clients-1)
	}
	if snap.Cache.Misses != clients {
		t.Fatalf("stats misses: got %d want %d", snap.Cache.Misses, clients)
	}
	if snap.SolvesByGraph["fake"] != 1 {
		t.Fatalf("solvesByGraph: %v", snap.SolvesByGraph)
	}
}

// TestCachedSourceSkipsEngine is the other half of the acceptance
// criterion: once a source is cached, answering it must not invoke the
// engine at all.
func TestCachedSourceSkipsEngine(t *testing.T) {
	fake := &fakeBackend{n: 50}
	_, ts := newFakeServer(t, fake, Config{CacheBytes: 1 << 20})

	var first, second distancesResponse
	if code := postJSON(t, ts, "/v1/distances", distancesRequest{Graph: "fake", Source: 5}, &first); code != http.StatusOK {
		t.Fatalf("first: status %d", code)
	}
	if first.Cached {
		t.Fatal("first query reported cached")
	}
	if code := postJSON(t, ts, "/v1/distances", distancesRequest{Graph: "fake", Source: 5}, &second); code != http.StatusOK {
		t.Fatalf("second: status %d", code)
	}
	if !second.Cached {
		t.Fatal("second query not served from cache")
	}
	if got := fake.calls.Load(); got != 1 {
		t.Fatalf("engine invoked %d times, want 1", got)
	}
	snap := fetchStats(t, ts)
	if snap.Solves != 1 || snap.Cache.Hits != 1 || snap.Cache.Misses != 1 {
		t.Fatalf("stats: solves=%d hits=%d misses=%d", snap.Solves, snap.Cache.Hits, snap.Cache.Misses)
	}
	// A different source still solves.
	var third distancesResponse
	postJSON(t, ts, "/v1/distances", distancesRequest{Graph: "fake", Source: 6}, &third)
	if got := fake.calls.Load(); got != 2 {
		t.Fatalf("distinct source: engine invoked %d times, want 2", got)
	}
}

// TestConcurrentMixedLoad hammers the full pipeline under -race: many
// clients, few sources, small pool.
func TestConcurrentMixedLoad(t *testing.T) {
	fake := &fakeBackend{n: 64}
	_, ts := newFakeServer(t, fake, Config{Workers: 2, CacheBytes: 1 << 20})

	const clients = 24
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var resp distancesResponse
			code := postJSON(t, ts, "/v1/distances", distancesRequest{Graph: "fake", Source: int64(i % 4), TopK: 5}, &resp)
			if code != http.StatusOK {
				errs <- fmt.Errorf("client %d: status %d", i, code)
				return
			}
			if len(resp.Nearest) != 5 {
				errs <- fmt.Errorf("client %d: %d nearest", i, len(resp.Nearest))
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// 4 distinct sources: every query beyond the first per source must
	// have been served by the cache or by coalescing.
	if got := fake.calls.Load(); got != 4 {
		t.Fatalf("backend calls: got %d want 4", got)
	}
}
