package server

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"radiusstep/internal/fault"

	rs "radiusstep"
)

// Graph lifecycle states, as reported by Registry.Health and
// GET /v1/graphs. A graph's state is derived, not stored: it falls out
// of which of the graphState fields are set.
const (
	// GraphReady: a published epoch is serving and the last load worked.
	GraphReady = "ready"
	// GraphQuarantined: the last reload failed validation, the previous
	// epoch keeps serving, and the watcher re-probes with backoff.
	GraphQuarantined = "quarantined"
	// GraphFailed: no epoch has ever loaded (degraded startup); queries
	// get 503 until a re-probe or admin reload succeeds.
	GraphFailed = "failed"
	// GraphCold: the epoch was evicted under the memory budget; the next
	// query triggers a transparent background reload.
	GraphCold = "cold"
	// GraphLoading: a cold/background reload is in flight.
	GraphLoading = "loading"
)

// Typed Acquire failures. The serving layer maps them to status codes:
// unknown → 404, loading/cold → 503 + Retry-After, failed → 503 with
// the quarantine cause.
var (
	// ErrGraphUnknown: no graph with that name was ever registered.
	ErrGraphUnknown = errors.New("server: unknown graph")
	// ErrGraphReloading: the graph was evicted to cold state and a
	// background reload is (now) in flight; retry shortly.
	ErrGraphReloading = errors.New("server: graph reloading")
	// ErrGraphFailed: the graph has never produced a servable epoch; its
	// health entry carries the load error.
	ErrGraphFailed = errors.New("server: graph unavailable")
)

// graphState is the registry's mutable lifecycle record for one named
// graph. The published epoch lives in cur — an atomic pointer readers
// pin without locks — and everything else (reload config, quarantine
// bookkeeping, eviction state) sits behind the per-graph mutex so a
// slow rebuild of one graph never blocks another graph's reload, and
// never blocks any reader at all.
type graphState struct {
	name string
	cur  atomic.Pointer[Entry] // nil while failed or cold

	// lastUsed is the registry LRU clock value at the most recent
	// Acquire — the eviction order under a memory budget.
	lastUsed atomic.Int64
	// bytes is the resident-size estimate of the published epoch,
	// counted against the registry budget (0 while cold/failed).
	bytes atomic.Int64

	mu         sync.Mutex
	cfg        GraphConfig // rebuild recipe; meaningful iff reloadable
	reloadable bool        // false for entries published via Add (no recipe)
	loading    bool        // a background (cold) reload is in flight

	// Quarantine bookkeeping: consecutive build failures, the latest
	// error, and the watcher's next re-probe time (exponential backoff).
	failures  int
	lastErr   error
	lastErrAt time.Time
	nextProbe time.Time
	// srcMtime is the last observed modification time of a file-backed
	// source, so the watcher reloads exactly when the file changes.
	srcMtime time.Time
	// evicted marks a budget eviction (cold state): cur is nil but the
	// graph is healthy and reloads on demand.
	evicted bool
}

// sourcePath returns the on-disk file behind a reloadable config, or ""
// for generated graphs (which the watcher has nothing to watch).
func (g *GraphConfig) sourcePath() string {
	switch {
	case g.Snapshot != "":
		return g.Snapshot
	case g.File != "":
		return g.File
	case g.Pre != "":
		return g.Pre
	}
	return ""
}

// Registry maps graph names to epoch-versioned backends so multiple
// graph deployments coexist in one daemon and any of them can be
// reloaded, quarantined, evicted, or removed at runtime without
// touching the others. Readers never lock beyond the name lookup: they
// pin the current epoch with one atomic load and keep computing on it
// even while a swap publishes the next one.
type Registry struct {
	mu     sync.RWMutex
	graphs map[string]*graphState

	// epoch is the process-wide monotonic version counter; every
	// published Entry gets the next value, across all graphs, so "newer
	// epoch" is meaningful even between different graphs' reloads.
	epoch atomic.Uint64
	// useSeq is the LRU clock: each Acquire stamps the graph with the
	// next tick, and budget eviction picks the smallest stamp.
	useSeq atomic.Int64
	// budget caps the summed resident-size estimates (0 = unlimited).
	budget atomic.Int64

	// onSwap, when set (by Server), is called with the graph name after
	// every swap, eviction, or removal — the epoch-scoped cache
	// invalidation hook. It must be cheap and must not call back into
	// the registry.
	onSwap atomic.Pointer[func(string)]

	// Lifecycle counters, read at scrape time by serverMetrics.
	loadFailures atomic.Int64 // builds that failed (startup, reload, re-probe)
	reloads      atomic.Int64 // successful epoch swaps after the first load
	evictions    atomic.Int64 // budget evictions to cold state
	coldReloads  atomic.Int64 // successful reloads out of cold state
}

func NewRegistry() *Registry {
	return &Registry{graphs: make(map[string]*graphState)}
}

// SetBudget caps the summed resident-size estimate of all published
// epochs; exceeding it evicts least-recently-queried reloadable graphs
// to cold state. Zero (the default) disables eviction.
func (r *Registry) SetBudget(bytes int64) {
	r.budget.Store(bytes)
	if bytes > 0 {
		r.enforceBudget("")
	}
}

// OnSwap installs the cache-invalidation hook called (with the graph
// name) after every epoch swap, eviction, and removal.
func (r *Registry) OnSwap(fn func(string)) { r.onSwap.Store(&fn) }

func (r *Registry) notifySwap(name string) {
	if fn := r.onSwap.Load(); fn != nil {
		(*fn)(name)
	}
}

func (r *Registry) nextEpoch() uint64 { return r.epoch.Add(1) }

// state looks up the lifecycle record for name.
func (r *Registry) state(name string) (*graphState, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	gs, ok := r.graphs[name]
	return gs, ok
}

// Add publishes e as a new graph, rejecting duplicate names. Entries
// added this way have no rebuild recipe: they cannot be reloaded or
// budget-evicted (there is nothing to reload them from), which is
// exactly right for the in-process backends tests register.
func (r *Registry) Add(e *Entry) error {
	if e == nil || e.Name == "" || e.Backend == nil {
		return fmt.Errorf("server: invalid registry entry")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.graphs[e.Name]; ok {
		return fmt.Errorf("server: duplicate graph name %q", e.Name)
	}
	if e.Epoch == 0 {
		e.Epoch = r.nextEpoch()
	}
	gs := &graphState{name: e.Name}
	gs.cur.Store(e)
	gs.bytes.Store(estimateEntryBytes(e))
	r.graphs[e.Name] = gs
	return nil
}

// Get returns the current epoch of a serving graph. It reports false
// for unknown, failed, and cold graphs alike — callers that need to
// distinguish (and trigger cold reloads) use Acquire.
func (r *Registry) Get(name string) (*Entry, bool) {
	gs, ok := r.state(name)
	if !ok {
		return nil, false
	}
	e := gs.cur.Load()
	return e, e != nil
}

// Acquire pins the current epoch of name for one query: the returned
// Entry is immutable and stays valid however many swaps follow. A cold
// graph kicks off a single background reload and returns
// ErrGraphReloading (the serving layer answers 503 + Retry-After — the
// caller is never blocked on a multi-second rebuild); a graph that has
// never loaded returns ErrGraphFailed wrapping the load error.
func (r *Registry) Acquire(name string) (*Entry, error) {
	gs, ok := r.state(name)
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrGraphUnknown, name)
	}
	if e := gs.cur.Load(); e != nil {
		gs.lastUsed.Store(r.useSeq.Add(1))
		return e, nil
	}
	gs.mu.Lock()
	// Re-check under the lock: a reload may have published between the
	// pointer load and here.
	if e := gs.cur.Load(); e != nil {
		gs.mu.Unlock()
		gs.lastUsed.Store(r.useSeq.Add(1))
		return e, nil
	}
	switch {
	case gs.loading:
		gs.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrGraphReloading, name)
	case gs.evicted:
		if time.Now().Before(gs.nextProbe) {
			// A cold reload just failed; hold the backoff gate instead
			// of rebuilding once per request.
			gs.mu.Unlock()
			return nil, fmt.Errorf("%w: %q", ErrGraphReloading, name)
		}
		// First query against a cold graph: start the transparent
		// background reload (single-flight — loading gates duplicates).
		gs.loading = true
		gs.mu.Unlock()
		go r.reloadCold(gs)
		return nil, fmt.Errorf("%w: %q", ErrGraphReloading, name)
	default:
		err := gs.lastErr
		gs.mu.Unlock()
		if err == nil {
			err = errors.New("not loaded")
		}
		return nil, fmt.Errorf("%w: %q: %v", ErrGraphFailed, name, err)
	}
}

// List returns the current epoch of every serving graph, sorted by
// name. Failed and cold graphs are omitted — they have no epoch to
// serve — and show up in Health instead.
func (r *Registry) List() []*Entry {
	r.mu.RLock()
	out := make([]*Entry, 0, len(r.graphs))
	for _, gs := range r.graphs {
		if e := gs.cur.Load(); e != nil {
			out = append(out, e)
		}
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of graphs currently serving an epoch.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, gs := range r.graphs {
		if gs.cur.Load() != nil {
			n++
		}
	}
	return n
}

// Names returns every registered graph name (serving or not), sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	out := make([]string, 0, len(r.graphs))
	for name := range r.graphs {
		out = append(out, name)
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}

// LoadConfig builds cfg's graph and publishes its first epoch. On
// failure the graph is still registered — failed, with the error in
// its health record and the watcher re-probing with backoff — so a
// daemon starting with one bad spec comes up degraded instead of dying
// (the caller decides whether a total failure is fatal). The graph is
// reloadable afterward: Reload, the watcher, and budget eviction all
// apply.
func (r *Registry) LoadConfig(cfg GraphConfig) error {
	if cfg.Name == "" {
		return fmt.Errorf("server: graph config needs a name")
	}
	gs := &graphState{name: cfg.Name, cfg: cfg, reloadable: true}
	r.mu.Lock()
	if _, ok := r.graphs[cfg.Name]; ok {
		r.mu.Unlock()
		return fmt.Errorf("server: duplicate graph name %q", cfg.Name)
	}
	r.graphs[cfg.Name] = gs
	r.mu.Unlock()

	gs.mu.Lock()
	err := r.buildLocked(gs)
	gs.mu.Unlock()
	if err == nil {
		r.enforceBudget(cfg.Name)
	}
	return err
}

// buildLocked rebuilds gs from its config and publishes the new epoch,
// or records the failure for quarantine. Caller holds gs.mu (and must
// run enforceBudget after releasing it — never under it, or two
// concurrent reloads could deadlock evicting each other); the registry
// map lock is NOT held, so concurrent loads of different graphs
// proceed in parallel and readers of this graph keep serving the old
// epoch throughout.
func (r *Registry) buildLocked(gs *graphState) error {
	e, err := BuildEntry(gs.cfg)
	if err != nil {
		r.loadFailures.Add(1)
		gs.failures++
		gs.lastErr = err
		gs.lastErrAt = time.Now()
		return err
	}
	e.Epoch = r.nextEpoch()
	if p := gs.cfg.sourcePath(); p != "" {
		if st, serr := os.Stat(p); serr == nil {
			gs.srcMtime = st.ModTime()
		}
	}
	hadOld := gs.cur.Load() != nil
	gs.cur.Store(e)
	gs.bytes.Store(estimateEntryBytes(e))
	gs.failures = 0
	gs.lastErr = nil
	gs.nextProbe = time.Time{}
	wasEvicted := gs.evicted
	gs.evicted = false
	if hadOld {
		r.reloads.Add(1)
		// Old-epoch cache vectors are unreachable (the key embeds the
		// epoch) but still resident; drop them now rather than waiting
		// for LRU churn.
		r.notifySwap(gs.name)
	} else if wasEvicted {
		r.coldReloads.Add(1)
	}
	return nil
}

// Reload re-reads a graph's source and swaps in a new epoch. In-flight
// queries on the old epoch finish untouched; new queries see the new
// epoch the instant the pointer swaps. On any build or validation
// failure the old epoch keeps serving and the graph is quarantined:
// failures count up, health carries the error, and the watcher's
// re-probe backs off exponentially.
func (r *Registry) Reload(name string) error {
	gs, ok := r.state(name)
	if !ok {
		return fmt.Errorf("%w %q", ErrGraphUnknown, name)
	}
	gs.mu.Lock()
	if !gs.reloadable {
		gs.mu.Unlock()
		return fmt.Errorf("server: graph %q was registered without a rebuild recipe and cannot be reloaded", name)
	}
	if ferr := fault.Check(fault.SiteReload); ferr != nil {
		r.loadFailures.Add(1)
		gs.failures++
		gs.lastErr = ferr
		gs.lastErrAt = time.Now()
		gs.mu.Unlock()
		return fmt.Errorf("server: graph %q: %w", name, ferr)
	}
	err := r.buildLocked(gs)
	gs.mu.Unlock()
	if err == nil {
		r.enforceBudget(name)
	}
	return err
}

// reloadCold is the background half of a cold-graph Acquire. It runs
// without the caller waiting; queries keep getting 503 + Retry-After
// until the epoch publishes. A failed cold reload sets a backoff gate
// (nextProbe) so a query storm against a graph whose file broke while
// cold costs one rebuild attempt per backoff window, not one per
// request.
func (r *Registry) reloadCold(gs *graphState) {
	gs.mu.Lock()
	var err error
	if gs.cur.Load() == nil { // else someone already published
		if ferr := fault.Check(fault.SiteReload); ferr != nil {
			r.loadFailures.Add(1)
			gs.failures++
			gs.lastErr = ferr
			gs.lastErrAt = time.Now()
			err = ferr
		} else {
			err = r.buildLocked(gs)
		}
		if err != nil {
			factor := time.Duration(1)
			for i := 1; i < gs.failures && factor < maxBackoffFactor; i++ {
				factor <<= 1
			}
			gs.nextProbe = time.Now().Add(factor * coldRetryBase)
			log.Printf("graph %q: cold reload failed (next attempt in %v): %v",
				gs.name, factor*coldRetryBase, err)
		}
	}
	gs.loading = false
	gs.mu.Unlock()
	if err == nil {
		r.enforceBudget(gs.name)
	}
}

// coldRetryBase is the base backoff between failed cold-reload
// attempts (doubling per consecutive failure up to maxBackoffFactor).
const coldRetryBase = time.Second

// Remove unregisters a graph. In-flight queries holding its last epoch
// finish normally; the name 404s immediately afterward.
func (r *Registry) Remove(name string) bool {
	r.mu.Lock()
	_, ok := r.graphs[name]
	delete(r.graphs, name)
	r.mu.Unlock()
	if ok {
		r.notifySwap(name)
	}
	return ok
}

// enforceBudget evicts least-recently-queried reloadable graphs to
// cold state until the summed resident estimate fits the budget. The
// graph named keep (the one just loaded) is never evicted — loading a
// graph must not immediately un-load it, even if it alone exceeds the
// budget (operators set budgets; they also get to overrule them one
// graph at a time). Non-reloadable entries are skipped: with no
// recipe, eviction would be deletion.
func (r *Registry) enforceBudget(keep string) {
	budget := r.budget.Load()
	if budget <= 0 {
		return
	}
	type candidate struct {
		gs       *graphState
		lastUsed int64
		bytes    int64
	}
	for {
		r.mu.RLock()
		var total int64
		var cands []candidate
		for _, gs := range r.graphs {
			b := gs.bytes.Load()
			total += b
			// reloadable is immutable after publication, so reading it
			// without gs.mu is safe here.
			if gs.name != keep && b > 0 && gs.reloadable && gs.cur.Load() != nil {
				cands = append(cands, candidate{gs, gs.lastUsed.Load(), b})
			}
		}
		r.mu.RUnlock()
		if total <= budget || len(cands) == 0 {
			return
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].lastUsed < cands[j].lastUsed })
		victim := cands[0].gs
		victim.mu.Lock()
		if victim.cur.Load() == nil {
			// Raced with a concurrent eviction or removal; re-collect —
			// the victim no longer carries bytes, so the loop makes
			// progress either way.
			victim.mu.Unlock()
			continue
		}
		victim.cur.Store(nil)
		victim.bytes.Store(0)
		victim.evicted = true
		victim.nextProbe = time.Time{} // evicted ≠ failed: reload immediately on demand
		victim.mu.Unlock()
		r.evictions.Add(1)
		log.Printf("graph %q: evicted under memory budget (%d bytes over)", victim.name, total-budget)
		r.notifySwap(victim.name)
	}
}

// estimateEntryBytes approximates the resident size of one epoch for
// budget accounting: the snapshot size when the graph came from one
// (the arrays mmap-free load roughly 1:1), else a CSR-shaped estimate
// from the metadata. Precision is not the point — relative order and
// magnitude are, so eviction picks sensibly.
func estimateEntryBytes(e *Entry) int64 {
	n := int64(e.Info.Vertices)
	arcs := 2 * int64(e.Info.Edges)
	est := (n+1)*8 + arcs*12 + n*8 // Off + (Adj,W) + radii
	if lm := int64(e.Info.Landmarks); lm > 0 {
		est += lm * n * 8
	}
	if e.Info.SnapshotBytes > est {
		est = e.Info.SnapshotBytes
	}
	if est <= 0 {
		est = 1 // a zero-cost entry could never be evicted nor counted
	}
	return est
}

// GraphHealth is the per-graph lifecycle record served by /v1/graphs
// and /readyz: which state the graph is in, which epoch is serving,
// and — when quarantined or failed — what went wrong and when the next
// automatic re-probe happens.
type GraphHealth struct {
	Name  string `json:"name"`
	State string `json:"state"`
	Epoch uint64 `json:"epoch,omitempty"`
	// Failures counts consecutive failed builds (resets on success).
	Failures int    `json:"failures,omitempty"`
	Error    string `json:"error,omitempty"`
	// ErrorClass distinguishes quarantine causes an operator fixes
	// differently: "truncated" (re-fetch the file) vs "corrupt"
	// (rebuild it) vs "" (other).
	ErrorClass string    `json:"errorClass,omitempty"`
	ErrorAt    time.Time `json:"errorAt,omitzero"`
	NextProbe  time.Time `json:"nextProbe,omitzero"`
	// Bytes is the resident-size estimate counted against -graph-budget.
	Bytes int64 `json:"bytes,omitempty"`
	// Reloadable reports whether the graph has a rebuild recipe (admin
	// reload, watcher, and budget eviction all require one).
	Reloadable bool `json:"reloadable"`
}

// Health reports the lifecycle state of every registered graph,
// serving or not, sorted by name.
func (r *Registry) Health() []GraphHealth {
	r.mu.RLock()
	states := make([]*graphState, 0, len(r.graphs))
	for _, gs := range r.graphs {
		states = append(states, gs)
	}
	r.mu.RUnlock()
	out := make([]GraphHealth, 0, len(states))
	for _, gs := range states {
		out = append(out, r.healthOf(gs))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (r *Registry) healthOf(gs *graphState) GraphHealth {
	gs.mu.Lock()
	defer gs.mu.Unlock()
	h := GraphHealth{
		Name:       gs.name,
		Failures:   gs.failures,
		Bytes:      gs.bytes.Load(),
		Reloadable: gs.reloadable,
	}
	if gs.lastErr != nil {
		h.Error = gs.lastErr.Error()
		h.ErrorAt = gs.lastErrAt
		h.NextProbe = gs.nextProbe
		switch {
		case errors.Is(gs.lastErr, rs.ErrSnapshotTruncated):
			h.ErrorClass = "truncated"
		case errors.Is(gs.lastErr, rs.ErrSnapshotCorrupt):
			h.ErrorClass = "corrupt"
		}
	}
	e := gs.cur.Load()
	switch {
	case e != nil && gs.lastErr == nil:
		h.State = GraphReady
		h.Epoch = e.Epoch
	case e != nil:
		h.State = GraphQuarantined
		h.Epoch = e.Epoch
	case gs.loading:
		h.State = GraphLoading
	case gs.evicted:
		h.State = GraphCold
	default:
		h.State = GraphFailed
	}
	return h
}

// ReadyCount reports how many graphs are serving an epoch and how many
// are registered in total — the /readyz degraded-mode inputs.
func (r *Registry) ReadyCount() (serving, total int) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, gs := range r.graphs {
		if gs.cur.Load() != nil {
			serving++
		}
	}
	return serving, len(r.graphs)
}

// Watch polls file-backed graphs every interval until ctx ends: a
// changed source mtime triggers a reload, and a quarantined or failed
// graph is re-probed on an exponential backoff schedule (interval,
// 2·interval, 4·interval, … capped at maxBackoffFactor·interval) so a
// persistently broken file costs a bounded probe rate, not a rebuild
// attempt per tick.
func (r *Registry) Watch(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		return
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			r.probeAll(interval)
		}
	}
}

// maxBackoffFactor caps quarantine re-probe backoff at this multiple
// of the watch interval.
const maxBackoffFactor = 16

// probeAll runs one watcher tick; split from Watch so tests drive
// ticks synchronously.
func (r *Registry) probeAll(interval time.Duration) {
	r.mu.RLock()
	states := make([]*graphState, 0, len(r.graphs))
	for _, gs := range r.graphs {
		states = append(states, gs)
	}
	r.mu.RUnlock()
	now := time.Now()
	for _, gs := range states {
		if name, due := r.probeDue(gs, now, interval); due {
			if err := r.Reload(name); err != nil {
				log.Printf("graph %q: watch reload failed (retry per backoff): %v", name, err)
			} else {
				log.Printf("graph %q: watch reload swapped in a new epoch", name)
			}
		}
	}
}

// probeDue decides, under gs.mu, whether the watcher should rebuild gs
// this tick, and schedules the next backoff probe when it fires for an
// unhealthy graph.
func (r *Registry) probeDue(gs *graphState, now time.Time, interval time.Duration) (string, bool) {
	gs.mu.Lock()
	defer gs.mu.Unlock()
	if !gs.reloadable || gs.loading || gs.evicted {
		return "", false
	}
	unhealthy := gs.lastErr != nil
	if unhealthy {
		if now.Before(gs.nextProbe) {
			return "", false
		}
		// Schedule the next probe before attempting this one, doubling
		// per consecutive failure: a success resets nextProbe anyway.
		factor := int64(1)
		for i := 0; i < gs.failures && factor < maxBackoffFactor; i++ {
			factor <<= 1
		}
		gs.nextProbe = now.Add(time.Duration(factor) * interval)
		return gs.name, true
	}
	p := gs.cfg.sourcePath()
	if p == "" {
		return "", false // generated graphs have no file to watch
	}
	st, err := os.Stat(p)
	if err != nil {
		// The file vanished: keep serving the loaded epoch, say nothing.
		// A later replacement shows up as a fresh mtime.
		return "", false
	}
	if !st.ModTime().After(gs.srcMtime) {
		return "", false
	}
	// Gate the next tick before attempting: if this reload fails, the
	// graph enters quarantine and must wait out one interval rather
	// than being rebuilt again on the very next tick.
	gs.nextProbe = now.Add(interval)
	return gs.name, true
}

// LifecycleCounters is the registry's monotonic lifecycle counter
// snapshot, exposed as Prometheus families and in /v1/stats.
type LifecycleCounters struct {
	LoadFailures int64 `json:"loadFailures"`
	Reloads      int64 `json:"reloads"`
	Evictions    int64 `json:"evictions"`
	ColdReloads  int64 `json:"coldReloads"`
}

// Counters returns the lifecycle counter snapshot.
func (r *Registry) Counters() LifecycleCounters {
	return LifecycleCounters{
		LoadFailures: r.loadFailures.Load(),
		Reloads:      r.reloads.Load(),
		Evictions:    r.evictions.Load(),
		ColdReloads:  r.coldReloads.Load(),
	}
}

// QuarantinedCount reports how many graphs currently carry a load
// error (quarantined or failed) — the sssp_graphs_quarantined gauge.
func (r *Registry) QuarantinedCount() int {
	r.mu.RLock()
	states := make([]*graphState, 0, len(r.graphs))
	for _, gs := range r.graphs {
		states = append(states, gs)
	}
	r.mu.RUnlock()
	n := 0
	for _, gs := range states {
		gs.mu.Lock()
		if gs.lastErr != nil {
			n++
		}
		gs.mu.Unlock()
	}
	return n
}
