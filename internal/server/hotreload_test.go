package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"radiusstep/internal/fault"

	rs "radiusstep"
)

// packWeighted writes a serving-ready snapshot of a 12x12 grid whose
// edges ALL weigh exactly w, so every shortest distance is a multiple
// of w — a reload that changes w changes every answer proportionally,
// which is how the tests below detect epoch mixing. Sentinel radii skip
// preprocessing, keeping reloads fast.
func packWeighted(t *testing.T, path string, w int) {
	t.Helper()
	g := rs.WithUniformIntWeights(rs.Grid2D(12, 12), w, w, 1)
	radii := make([]float64, g.NumVertices())
	for i := range radii {
		radii[i] = 4
	}
	if err := rs.WriteSnapshotFile(path, &rs.Snapshot{G: g, Radii: radii, Rho: 8, K: 1, Heuristic: "direct"}); err != nil {
		t.Fatalf("WriteSnapshotFile: %v", err)
	}
}

// newLifecycleServer loads the given specs through the epoch-versioned
// registry (the daemon's path, including degraded registration of
// failing specs) and serves them over HTTP.
func newLifecycleServer(t *testing.T, cfg Config, specs ...GraphConfig) (*Server, *httptest.Server) {
	t.Helper()
	reg := NewRegistry()
	for _, gc := range specs {
		_ = reg.LoadConfig(gc) // failures register quarantined — intended
	}
	s := New(reg, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// queryTargets fetches distances to vertices 1 and 2 of the grid (w and
// 2w from source 0) and returns status, epoch, and both distances.
func queryTargets(t *testing.T, ts *httptest.Server, graph string) (code int, epoch uint64, d1, d2 float64) {
	t.Helper()
	body := fmt.Sprintf(`{"graph":%q,"source":0,"targets":[1,2]}`, graph)
	r, err := ts.Client().Post(ts.URL+"/v1/distances", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer r.Body.Close()
	var resp distancesResponse
	if derr := json.NewDecoder(r.Body).Decode(&resp); derr != nil && r.StatusCode == http.StatusOK {
		t.Fatalf("decode: %v", derr)
	}
	if len(resp.Targets) == 2 {
		d1, d2 = resp.Targets[0].Distance, resp.Targets[1].Distance
	}
	return r.StatusCode, resp.Epoch, d1, d2
}

// TestHotReloadSwapsEpoch: a reload atomically replaces the serving
// epoch — answers change, the epoch counter moves, and the distance
// cache cannot serve the old epoch's vector afterward (its key embeds
// the dead epoch).
func TestHotReloadSwapsEpoch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.snap")
	packWeighted(t, path, 100)
	s, ts := newLifecycleServer(t, Config{CacheBytes: 1 << 20}, GraphConfig{Name: "g", Snapshot: path})

	code, epoch1, d1, d2 := queryTargets(t, ts, "g")
	if code != http.StatusOK || d1 != 100 || d2 != 200 {
		t.Fatalf("before reload: code=%d d1=%v d2=%v, want 200/100/200", code, d1, d2)
	}
	// Prime the cache, then reload with doubled weights.
	if code, _, _, _ := queryTargets(t, ts, "g"); code != http.StatusOK {
		t.Fatalf("cache-priming query failed: %d", code)
	}
	packWeighted(t, path, 200)
	if err := s.Registry().Reload("g"); err != nil {
		t.Fatalf("Reload: %v", err)
	}
	code, epoch2, d1, d2 := queryTargets(t, ts, "g")
	if code != http.StatusOK || d1 != 200 || d2 != 400 {
		t.Fatalf("after reload: code=%d d1=%v d2=%v, want 200/200/400 — stale epoch served", code, d1, d2)
	}
	if epoch2 <= epoch1 {
		t.Fatalf("epoch did not advance: %d -> %d", epoch1, epoch2)
	}
	if c := s.Registry().Counters(); c.Reloads != 1 {
		t.Fatalf("reloads counter = %d, want 1", c.Reloads)
	}
	// The cached vector now carries the new epoch.
	code, epoch3, d1, _ := queryTargets(t, ts, "g")
	if code != http.StatusOK || epoch3 != epoch2 || d1 != 200 {
		t.Fatalf("cached answer after reload: code=%d epoch=%d d1=%v, want %d/200", code, epoch3, d1, epoch2)
	}
}

// TestReloadUnderLoadZeroStale is the tentpole's live drill: sustained
// concurrent queries across repeated hot reloads, with ZERO failed
// responses and zero torn answers. Torn epochs are detectable by
// construction: all edges weigh w per epoch, so any 200 whose two
// target distances are not (w, 2w) for a single w mixed two epochs.
func TestReloadUnderLoadZeroStale(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.snap")
	packWeighted(t, path, 100)
	s, ts := newLifecycleServer(t, Config{CacheBytes: 1 << 20, Workers: 4}, GraphConfig{Name: "g", Snapshot: path})

	var stop atomic.Bool
	var queries, bad atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				code, epoch, d1, d2 := queryTargets(t, ts, "g")
				queries.Add(1)
				if code != http.StatusOK {
					bad.Add(1)
					continue
				}
				if epoch == 0 || (d1 != 100 && d1 != 200) || d2 != 2*d1 {
					t.Errorf("torn/stale answer: epoch=%d d1=%v d2=%v", epoch, d1, d2)
					bad.Add(1)
				}
			}
		}()
	}

	const reloads = 10
	for i := 0; i < reloads; i++ {
		w := 100
		if i%2 == 0 {
			w = 200
		}
		packWeighted(t, path, w)
		if err := s.Registry().Reload("g"); err != nil {
			t.Fatalf("reload %d: %v", i, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()

	if q := queries.Load(); q < int64(reloads) {
		t.Fatalf("only %d queries ran across %d reloads", q, reloads)
	}
	if b := bad.Load(); b != 0 {
		t.Fatalf("%d failed/stale responses during reload-under-load (of %d)", b, queries.Load())
	}
	if c := s.Registry().Counters(); c.Reloads != reloads {
		t.Fatalf("reloads counter = %d, want %d", c.Reloads, reloads)
	}
}

// TestQuarantineKeepsOldEpochServing: a reload that fails validation
// (truncated snapshot) must leave the previous epoch serving untouched,
// mark the graph quarantined with the truncation class, count the
// failure, and recover on the next good reload.
func TestQuarantineKeepsOldEpochServing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.snap")
	packWeighted(t, path, 100)
	s, ts := newLifecycleServer(t, Config{}, GraphConfig{Name: "g", Snapshot: path})

	_, epoch1, d1, _ := queryTargets(t, ts, "g")
	if d1 != 100 {
		t.Fatalf("baseline d1=%v, want 100", d1)
	}

	// Truncate the file in place and attempt a reload.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read snapshot: %v", err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/3], 0o644); err != nil {
		t.Fatalf("truncate snapshot: %v", err)
	}
	rerr := s.Registry().Reload("g")
	if rerr == nil {
		t.Fatal("reload of truncated snapshot succeeded")
	}
	if !errors.Is(rerr, rs.ErrSnapshotTruncated) {
		t.Fatalf("reload error %v, want ErrSnapshotTruncated in chain", rerr)
	}

	// Old epoch still serves the old answers.
	code, epoch2, d1, _ := queryTargets(t, ts, "g")
	if code != http.StatusOK || epoch2 != epoch1 || d1 != 100 {
		t.Fatalf("after failed reload: code=%d epoch=%d d1=%v, want 200/%d/100", code, epoch2, d1, epoch1)
	}
	var h GraphHealth
	for _, gh := range s.Registry().Health() {
		if gh.Name == "g" {
			h = gh
		}
	}
	if h.State != GraphQuarantined || h.ErrorClass != "truncated" || h.Failures != 1 {
		t.Fatalf("health = %+v, want quarantined/truncated/1", h)
	}
	if c := s.Registry().Counters(); c.LoadFailures != 1 {
		t.Fatalf("loadFailures = %d, want 1", c.LoadFailures)
	}
	if got := s.Registry().QuarantinedCount(); got != 1 {
		t.Fatalf("QuarantinedCount = %d, want 1", got)
	}

	// Fix the file; the next reload recovers and clears quarantine.
	packWeighted(t, path, 300)
	if err := s.Registry().Reload("g"); err != nil {
		t.Fatalf("recovery reload: %v", err)
	}
	code, epoch3, d1, _ := queryTargets(t, ts, "g")
	if code != http.StatusOK || epoch3 <= epoch1 || d1 != 300 {
		t.Fatalf("after recovery: code=%d epoch=%d d1=%v, want 200/>%d/300", code, epoch3, d1, epoch1)
	}
	if got := s.Registry().QuarantinedCount(); got != 0 {
		t.Fatalf("QuarantinedCount after recovery = %d, want 0", got)
	}
}

// TestDegradedStartupAndReadyz: a failing spec registers quarantined
// while a good one serves; /readyz reports degraded with per-graph
// states; queries against the failed graph answer 503 with the cause,
// against the good one 200.
func TestDegradedStartupAndReadyz(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.snap")
	packWeighted(t, good, 100)
	bad := filepath.Join(dir, "bad.snap")
	if err := os.WriteFile(bad, []byte("RSSNAP01 but then garbage"), 0o644); err != nil {
		t.Fatalf("write bad snapshot: %v", err)
	}
	_, ts := newLifecycleServer(t, Config{},
		GraphConfig{Name: "good", Snapshot: good},
		GraphConfig{Name: "bad", Snapshot: bad})

	var body map[string]any
	if code := getJSON(t, ts, "/readyz", &body); code != http.StatusOK {
		t.Fatalf("degraded readyz: status %d, want 200 (one graph serves)", code)
	}
	if body["status"] != "degraded" {
		t.Fatalf("readyz status %v, want degraded", body["status"])
	}
	per, _ := body["perGraph"].(map[string]any)
	if per["good"] != GraphReady || per["bad"] != GraphFailed {
		t.Fatalf("perGraph = %v, want good=ready bad=failed", per)
	}

	if code, _, d1, _ := queryTargets(t, ts, "good"); code != http.StatusOK || d1 != 100 {
		t.Fatalf("good graph: code=%d d1=%v", code, d1)
	}
	code, _, _, _ := queryTargets(t, ts, "bad")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("failed graph: code=%d, want 503", code)
	}
}

// TestReadyzAllFailed: graphs registered but none serving is a 503 —
// the daemon is not worth routing to.
func TestReadyzAllFailed(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "bad.snap")
	if err := os.WriteFile(bad, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	_, ts := newLifecycleServer(t, Config{}, GraphConfig{Name: "bad", Snapshot: bad})
	var body map[string]any
	if code := getJSON(t, ts, "/readyz", &body); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz with zero serving: %d, want 503", code)
	}
	if body["status"] != "unavailable" {
		t.Fatalf("status %v, want unavailable", body["status"])
	}
}

// TestBudgetEvictionAndColdReload: exceeding the registry budget evicts
// the least-recently-queried graph to cold state; the next Acquire
// answers ErrGraphReloading while a single background rebuild runs, and
// the graph returns transparently.
func TestBudgetEvictionAndColdReload(t *testing.T) {
	dir := t.TempDir()
	pa, pb := filepath.Join(dir, "a.snap"), filepath.Join(dir, "b.snap")
	packWeighted(t, pa, 100)
	packWeighted(t, pb, 100)

	reg := NewRegistry()
	if err := reg.LoadConfig(GraphConfig{Name: "a", Snapshot: pa}); err != nil {
		t.Fatalf("load a: %v", err)
	}
	ea, _ := reg.Get("a")
	// Budget fits one graph, not two: loading b must evict a (the LRU).
	reg.SetBudget(estimateEntryBytes(ea) + estimateEntryBytes(ea)/2)
	if err := reg.LoadConfig(GraphConfig{Name: "b", Snapshot: pb}); err != nil {
		t.Fatalf("load b: %v", err)
	}
	if _, ok := reg.Get("a"); ok {
		t.Fatal("a still serving; budget eviction did not fire")
	}
	if _, ok := reg.Get("b"); !ok {
		t.Fatal("b (just loaded) was evicted — keep protection failed")
	}
	if c := reg.Counters(); c.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", c.Evictions)
	}

	// Cold acquire: 503-class error now, transparent reload shortly. The
	// reload will evict b in turn (the budget still only fits one).
	if _, err := reg.Acquire("a"); !errors.Is(err, ErrGraphReloading) {
		t.Fatalf("cold acquire: %v, want ErrGraphReloading", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := reg.Acquire("a"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cold reload never completed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if c := reg.Counters(); c.ColdReloads != 1 {
		t.Fatalf("coldReloads = %d, want 1", c.ColdReloads)
	}
	if c := reg.Counters(); c.LoadFailures != 0 {
		t.Fatalf("loadFailures = %d, want 0 — eviction is not failure", c.LoadFailures)
	}
}

// TestWatcherReloadsOnMtimeAndBacksOffOnFailure drives probeAll ticks
// synchronously: a fresher source mtime triggers a reload; a breaking
// file quarantines; subsequent ticks within the backoff window skip the
// rebuild (bounded probe rate), and a fixed file recovers on the next
// due probe.
func TestWatcherReloadsOnMtimeAndBacksOffOnFailure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.snap")
	packWeighted(t, path, 100)
	reg := NewRegistry()
	if err := reg.LoadConfig(GraphConfig{Name: "g", Snapshot: path}); err != nil {
		t.Fatalf("load: %v", err)
	}
	const interval = 50 * time.Millisecond

	// Unchanged mtime: a tick must not reload.
	reg.probeAll(interval)
	if c := reg.Counters(); c.Reloads != 0 {
		t.Fatalf("tick with unchanged mtime reloaded (%d)", c.Reloads)
	}

	// Fresher mtime: reload fires. Chtimes avoids mtime-granularity flakes.
	packWeighted(t, path, 200)
	future := time.Now().Add(time.Hour)
	if err := os.Chtimes(path, future, future); err != nil {
		t.Fatalf("chtimes: %v", err)
	}
	reg.probeAll(interval)
	if c := reg.Counters(); c.Reloads != 1 {
		t.Fatalf("reloads after mtime bump = %d, want 1", c.Reloads)
	}

	// Break the file with a newer mtime: the next tick fails and
	// quarantines...
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatalf("break file: %v", err)
	}
	future = future.Add(time.Hour)
	if err := os.Chtimes(path, future, future); err != nil {
		t.Fatalf("chtimes: %v", err)
	}
	reg.probeAll(interval)
	if c := reg.Counters(); c.LoadFailures != 1 {
		t.Fatalf("loadFailures after broken tick = %d, want 1", c.LoadFailures)
	}
	// ...and an immediate second tick is inside the backoff window: no
	// second rebuild attempt.
	reg.probeAll(interval)
	if c := reg.Counters(); c.LoadFailures != 1 {
		t.Fatalf("backoff did not hold: loadFailures = %d, want still 1", c.LoadFailures)
	}
	// The old epoch still serves throughout quarantine.
	if _, ok := reg.Get("g"); !ok {
		t.Fatal("quarantined graph stopped serving its old epoch")
	}

	// Fix the file and wait out the backoff (1 interval after 1 failure):
	// the next due tick recovers.
	packWeighted(t, path, 300)
	future = future.Add(time.Hour)
	if err := os.Chtimes(path, future, future); err != nil {
		t.Fatalf("chtimes: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for reg.Counters().Reloads < 2 {
		if time.Now().After(deadline) {
			t.Fatal("watcher never recovered the fixed file")
		}
		reg.probeAll(interval)
		time.Sleep(interval / 2)
	}
	if got := reg.QuarantinedCount(); got != 0 {
		t.Fatalf("QuarantinedCount after recovery = %d, want 0", got)
	}
}

// --- admin surface ---------------------------------------------------------

func adminDo(t *testing.T, ts *httptest.Server, method, path, token string, body string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(method, ts.URL+path, bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	r, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	defer r.Body.Close()
	raw, _ := io.ReadAll(r.Body)
	return r.StatusCode, string(raw)
}

// TestAdminTokenGate: without a configured token the admin routes do
// not exist on the query port at all; with one, requests need the exact
// bearer token.
func TestAdminTokenGate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.snap")
	packWeighted(t, path, 100)

	// No token configured: the routes are absent (404), not just denied.
	_, tsNo := newLifecycleServer(t, Config{}, GraphConfig{Name: "g", Snapshot: path})
	if code, _ := adminDo(t, tsNo, "POST", "/v1/admin/reload", "", `{"graph":"g"}`); code != http.StatusNotFound {
		t.Fatalf("admin route without token config: %d, want 404", code)
	}

	s, ts := newLifecycleServer(t, Config{AdminToken: "sekret"}, GraphConfig{Name: "g", Snapshot: path})
	for _, token := range []string{"", "wrong"} {
		if code, _ := adminDo(t, ts, "POST", "/v1/admin/reload", token, `{"graph":"g"}`); code != http.StatusForbidden {
			t.Fatalf("token %q: %d, want 403", token, code)
		}
	}
	if c := s.Registry().Counters(); c.Reloads != 0 {
		t.Fatal("unauthorized request reached the registry")
	}
	if code, body := adminDo(t, ts, "POST", "/v1/admin/reload", "sekret", `{"graph":"g"}`); code != http.StatusOK {
		t.Fatalf("authorized reload: %d (%s)", code, body)
	}
	if c := s.Registry().Counters(); c.Reloads != 1 {
		t.Fatalf("reloads = %d, want 1", c.Reloads)
	}
}

// TestAdminHandlerLifecycle exercises the private-listener surface end
// to end: reload (200 / 404 / 422-quarantine), load (200 / 409 / 400),
// and remove (200 / 404).
func TestAdminHandlerLifecycle(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.snap")
	packWeighted(t, path, 100)
	s, _ := newLifecycleServer(t, Config{}, GraphConfig{Name: "g", Snapshot: path})
	admin := httptest.NewServer(s.AdminHandler())
	t.Cleanup(admin.Close)

	if code, body := adminDo(t, admin, "POST", "/v1/admin/reload", "", `{"graph":"g"}`); code != http.StatusOK {
		t.Fatalf("reload: %d (%s)", code, body)
	}
	if code, _ := adminDo(t, admin, "POST", "/v1/admin/reload", "", `{"graph":"nope"}`); code != http.StatusNotFound {
		t.Fatalf("reload unknown: %d, want 404", code)
	}

	// A reload failure answers 422 and reports the quarantine.
	raw, _ := os.ReadFile(path)
	if err := os.WriteFile(path, raw[:100], 0o644); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	code, body := adminDo(t, admin, "POST", "/v1/admin/reload", "", `{"graph":"g"}`)
	if code != http.StatusUnprocessableEntity || !strings.Contains(body, GraphQuarantined) {
		t.Fatalf("reload of broken file: %d (%s), want 422 + quarantined health", code, body)
	}
	packWeighted(t, path, 100) // restore

	// Load a second graph by spec string; duplicates conflict.
	p2 := filepath.Join(dir, "h.snap")
	packWeighted(t, p2, 100)
	spec := fmt.Sprintf(`{"spec":"h=snapshot=%s"}`, p2)
	if code, body := adminDo(t, admin, "POST", "/v1/admin/load", "", spec); code != http.StatusOK {
		t.Fatalf("load: %d (%s)", code, body)
	}
	if _, ok := s.Registry().Get("h"); !ok {
		t.Fatal("loaded graph not serving")
	}
	if code, _ := adminDo(t, admin, "POST", "/v1/admin/load", "", spec); code != http.StatusConflict {
		t.Fatalf("duplicate load: %d, want 409", code)
	}
	if code, _ := adminDo(t, admin, "POST", "/v1/admin/load", "", `{"spec":"x=snapshot=/nope","name":"x"}`); code != http.StatusBadRequest {
		t.Fatalf("spec+fields load: %d, want 400", code)
	}

	if code, _ := adminDo(t, admin, "DELETE", "/v1/admin/graphs/h", "", ""); code != http.StatusOK {
		t.Fatalf("remove: %d", code)
	}
	if _, ok := s.Registry().Get("h"); ok {
		t.Fatal("removed graph still serving")
	}
	if code, _ := adminDo(t, admin, "DELETE", "/v1/admin/graphs/h", "", ""); code != http.StatusNotFound {
		t.Fatalf("double remove: %d, want 404", code)
	}
}

// TestChaosReloadUnderLoad extends the chaos suite to the reload seam:
// faults injected at SiteReload while clients hammer the graph. Old
// epochs must keep serving byte-identical answers, the quarantine
// counters must fire, and nothing may leak.
func TestChaosReloadUnderLoad(t *testing.T) {
	before := runtime.NumGoroutine()
	fault.Clear()
	t.Cleanup(fault.Clear)

	path := filepath.Join(t.TempDir(), "g.snap")
	packWeighted(t, path, 100)
	s, ts := newLifecycleServer(t, Config{CacheBytes: 0, Workers: 4}, GraphConfig{Name: "g", Snapshot: path})

	// No-fault baseline for a fixed query. The comparison key excludes
	// the epoch field: successful reloads of the SAME file bump the
	// epoch but must reproduce identical distances, so any distance
	// divergence is a real stale/torn answer.
	get := func() (int, string) {
		r, err := ts.Client().Post(ts.URL+"/v1/distances", "application/json",
			strings.NewReader(`{"graph":"g","source":0,"targets":[1,2,143]}`))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		defer r.Body.Close()
		var resp distancesResponse
		if derr := json.NewDecoder(r.Body).Decode(&resp); derr != nil {
			return r.StatusCode, "decode error: " + derr.Error()
		}
		return r.StatusCode, fmt.Sprint(resp.Targets)
	}
	code, baseline := get()
	if code != http.StatusOK {
		t.Fatalf("baseline: %d", code)
	}

	fault.Inject(fault.SiteReload, fault.Plan{Err: errors.New("reload sabotaged"), Limit: 3})

	var stop atomic.Bool
	var wg sync.WaitGroup
	var served, diverged atomic.Int64
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				code, body := get()
				if code == http.StatusOK {
					served.Add(1)
					if body != baseline {
						diverged.Add(1)
					}
				} else {
					// Reload faults must never fail queries: the old epoch
					// serves throughout.
					t.Errorf("query failed during sabotaged reloads: %d (%s)", code, body)
				}
			}
		}()
	}
	var sawFailure bool
	for i := 0; i < 5; i++ {
		if err := s.Registry().Reload("g"); err != nil {
			sawFailure = true
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()

	if !sawFailure {
		t.Fatal("injected reload fault never fired")
	}
	if fault.Fired(fault.SiteReload) == 0 {
		t.Fatal("SiteReload never checked")
	}
	if served.Load() == 0 {
		t.Fatal("no queries served during the drill")
	}
	if d := diverged.Load(); d != 0 {
		t.Fatalf("%d responses diverged from baseline (epoch field aside, distances must be identical)", d)
	}
	if c := s.Registry().Counters(); c.LoadFailures != 3 {
		t.Fatalf("loadFailures = %d, want exactly the fault limit 3", c.LoadFailures)
	}
	// The limit exhausted: reloads 4 and 5 succeeded (same file, new
	// epochs), clearing quarantine.
	if c := s.Registry().Counters(); c.Reloads < 1 {
		t.Fatalf("reloads = %d, want >= 1 after the fault limit", c.Reloads)
	}
	if got := s.Registry().QuarantinedCount(); got != 0 {
		t.Fatalf("QuarantinedCount = %d, want 0 after recovery", got)
	}

	ts.Client().CloseIdleConnections()
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before+8 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestReloadSameFileKeepsDistances pins the assumption the chaos drill
// leans on: reloading an unchanged file yields a new epoch with
// identical distances.
func TestReloadSameFileKeepsDistances(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.snap")
	packWeighted(t, path, 100)
	s, ts := newLifecycleServer(t, Config{}, GraphConfig{Name: "g", Snapshot: path})
	_, e1, d1a, d2a := queryTargets(t, ts, "g")
	if err := s.Registry().Reload("g"); err != nil {
		t.Fatalf("Reload: %v", err)
	}
	_, e2, d1b, d2b := queryTargets(t, ts, "g")
	if e2 <= e1 || d1a != d1b || d2a != d2b {
		t.Fatalf("same-file reload: epochs %d->%d, distances (%v,%v)->(%v,%v)", e1, e2, d1a, d2a, d1b, d2b)
	}
}
