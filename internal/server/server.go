// Package server implements ssspd's query-serving subsystem: a registry
// of named preprocessed graphs, a bounded pool of concurrent solves,
// singleflight coalescing of duplicate (graph, source) queries, and a
// source-keyed LRU cache of distance vectors — the layer that turns the
// radius-stepping library's preprocess-once/query-many shape into an
// online HTTP service.
//
// Endpoints (all JSON):
//
//	POST /v1/distances  one source; full vector, top-k nearest, or a target subset
//	POST /v1/route      point-to-point path via the early-terminating solver
//	POST /v1/batch      many sources with source-level parallelism
//	GET  /v1/graphs     registry metadata (n, m, ρ, k, preprocessing stats)
//	GET  /v1/stats      cache/coalescing/pool counters
//	GET  /healthz       liveness
//
// The solve endpoints accept an ?engine= query parameter (sequential,
// parallel, flat, delta, rho) overriding the graph's configured engine
// for that request; /v1/stats reports solve counts per engine. All
// engines return identical distances, so the cache and request
// coalescing ignore the override.
//
// Unreachable vertices are reported with distance -1 (JSON has no +Inf).
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"time"

	rs "radiusstep"
)

// Config tunes a Server.
type Config struct {
	// Workers bounds concurrent solves (default GOMAXPROCS).
	Workers int
	// CacheBytes is the distance-cache budget; <= 0 disables caching.
	CacheBytes int64
	// Logger, when non-nil, receives structured request logs (one line
	// per request with endpoint, status and latency) and per-solve logs
	// (engine, step counts, duration).
	Logger *slog.Logger
	// AutoLandmarks promotes freshly cached distance vectors into each
	// graph's ALT landmark set (until it is full), so the serving cache
	// doubles as a goal-direction index: hot sources sharpen every later
	// route query's pruning for free.
	AutoLandmarks bool
}

// Server serves shortest-path queries over a Registry. Create with New,
// mount via Handler.
type Server struct {
	registry      *Registry
	cache         *distCache
	flight        *flightGroup
	pool          *solvePool
	metrics       *serverMetrics
	logger        *slog.Logger
	autoLandmarks bool
	start         time.Time
}

// New builds a server over reg.
func New(reg *Registry, cfg Config) *Server {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &Server{
		registry:      reg,
		cache:         newDistCache(cfg.CacheBytes),
		flight:        newFlightGroup(),
		pool:          newSolvePool(workers),
		logger:        cfg.Logger,
		autoLandmarks: cfg.AutoLandmarks,
		start:         time.Now(),
	}
	s.metrics = newServerMetrics(s)
	return s
}

// Registry exposes the graph registry (for daemon startup logging).
func (s *Server) Registry() *Registry { return s.registry }

// Handler returns the route table as an http.Handler. Every route is
// wrapped in the instrumentation middleware (request counter, latency
// histogram, error-by-status-class counter, optional request log).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.instrument("/healthz", s.handleHealthz))
	mux.HandleFunc("GET /metrics", s.instrument("/metrics", s.handleMetrics))
	mux.HandleFunc("GET /v1/graphs", s.instrument("/v1/graphs", s.handleGraphs))
	mux.HandleFunc("GET /v1/stats", s.instrument("/v1/stats", s.handleStats))
	mux.HandleFunc("POST /v1/distances", s.instrument("/v1/distances", s.handleDistances))
	mux.HandleFunc("POST /v1/route", s.instrument("/v1/route", s.handleRoute))
	mux.HandleFunc("POST /v1/batch", s.instrument("/v1/batch", s.handleBatch))
	return mux
}

// statusWriter captures the response status for the middleware; Write
// without an explicit WriteHeader means 200, matching net/http.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// statusClass buckets an HTTP status into the error-class label ("4xx",
// "5xx", or "" for success).
func statusClass(status int) string {
	switch {
	case status >= 500:
		return "5xx"
	case status >= 400:
		return "4xx"
	}
	return ""
}

// instrument wraps a handler with per-endpoint metrics: a request
// counter, a latency histogram, and error counters split by status
// class. The child handles are captured once here, so the per-request
// cost is three atomic ops and a clock read.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	reqs := s.metrics.requests.With(endpoint)
	dur := s.metrics.reqDur.With(endpoint)
	e4 := s.metrics.httpErrors.With(endpoint, "4xx")
	e5 := s.metrics.httpErrors.With(endpoint, "5xx")
	return func(w http.ResponseWriter, r *http.Request) {
		reqs.Inc()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		t0 := time.Now()
		h(sw, r)
		elapsed := time.Since(t0)
		dur.Observe(elapsed.Seconds())
		switch statusClass(sw.status) {
		case "5xx":
			e5.Inc()
		case "4xx":
			e4.Inc()
		}
		if s.logger != nil {
			s.logger.Info("request",
				"endpoint", endpoint,
				"method", r.Method,
				"status", sw.status,
				"durMicros", elapsed.Microseconds())
		}
	}
}

// --- core query path ------------------------------------------------------

// engineParam parses the optional ?engine= override, returning
// EngineAuto (= "no override", the graph's configured engine) when the
// parameter is absent. Unknown names are a client error (the
// fail-loudly contract of ParseEngine).
func engineParam(r *http.Request) (rs.Engine, error) {
	name := r.URL.Query().Get("engine")
	if name == "" {
		return rs.EngineAuto, nil
	}
	return rs.ParseEngine(name)
}

// distances answers one (graph, source) query through the cache →
// coalescing → pool pipeline. The returned slice is shared (cache and
// concurrent waiters) and must not be modified. Distances are identical
// across engines, so the cache and coalescing key stays (graph, source):
// an engine override only decides which engine runs on a miss, and
// concurrent same-key requests with different overrides share the
// leader's solve.
func (s *Server) distances(ctx context.Context, e *Entry, src rs.Vertex, engine rs.Engine) (dist []float64, cached bool, err error) {
	key := cacheKey{graph: e.Name, src: int32(src)}
	if d, ok := s.cache.Get(key); ok {
		return d, true, nil
	}
	// The solve runs detached from the leader's request context: its
	// result is shared with every coalesced waiter and the cache, so one
	// client disconnecting must not poison the others' queries.
	solveCtx := context.WithoutCancel(ctx)
	d, joined, err := s.flight.Do(ctx, key, func() ([]float64, error) {
		if err := s.pool.acquire(solveCtx); err != nil {
			return nil, err
		}
		defer s.pool.release()
		pc0 := s.metrics.poolBefore()
		t0 := time.Now()
		d, st, err := e.Backend.Distances(src, engine)
		if err != nil {
			return nil, err
		}
		dur := time.Since(t0)
		s.metrics.observePool(pc0)
		s.metrics.observeSolve(e.Name, st, dur)
		s.logSolve(e.Name, src, st, dur)
		s.cache.Add(key, d)
		s.maybeAdoptLandmark(e, src, d)
		return d, nil
	})
	if joined {
		s.metrics.coalesced.Inc()
	}
	return d, false, err
}

// maybeAdoptLandmark promotes a freshly solved distance vector into the
// graph's ALT landmark set when Config.AutoLandmarks is on — the cache
// write doubling as goal-direction index maintenance. Adoption copies
// the vector, so sharing d with the cache and waiters stays safe.
// Skipped silently when the set is full, src is already a landmark, or
// the backend has no landmark support.
func (s *Server) maybeAdoptLandmark(e *Entry, src rs.Vertex, dist []float64) {
	if !s.autoLandmarks {
		return
	}
	lb, ok := e.Backend.(LandmarkBackend)
	if !ok {
		return
	}
	adopted, err := lb.AdoptLandmark(src, dist)
	if err != nil {
		if s.logger != nil {
			s.logger.Warn("landmark adoption failed", "graph", e.Name, "source", int64(src), "err", err.Error())
		}
		return
	}
	if adopted {
		s.metrics.landmarksAdopted.Inc()
	}
}

// logSolve emits one structured log line per executed solve (cache hits
// and coalesced joins are request-level events, not solves).
func (s *Server) logSolve(graph string, src rs.Vertex, st rs.Stats, dur time.Duration) {
	if s.logger == nil {
		return
	}
	s.logger.Info("solve",
		"graph", graph,
		"source", int64(src),
		"engine", st.Engine,
		"steps", st.Steps,
		"substeps", st.Substeps,
		"relaxations", st.Relaxations,
		"durMicros", dur.Microseconds())
}

// --- request/response types ----------------------------------------------

type distancesRequest struct {
	Graph   string  `json:"graph"`
	Source  int64   `json:"source"`
	TopK    int     `json:"topk,omitempty"`
	Targets []int64 `json:"targets,omitempty"`
}

// vertexDistance pairs a vertex with its distance (-1 = unreachable).
type vertexDistance struct {
	Vertex   int64   `json:"vertex"`
	Distance float64 `json:"distance"`
}

type distancesResponse struct {
	Graph     string           `json:"graph"`
	Source    int64            `json:"source"`
	Cached    bool             `json:"cached"`
	Reached   int              `json:"reached"`
	Distances []float64        `json:"distances,omitempty"`
	Nearest   []vertexDistance `json:"nearest,omitempty"`
	Targets   []vertexDistance `json:"targets,omitempty"`
	// Trace is the solve timeline, present only for ?trace=1 requests.
	Trace *rs.Timeline `json:"trace,omitempty"`
	Error string       `json:"error,omitempty"`
}

type routeRequest struct {
	Graph  string `json:"graph"`
	Source int64  `json:"source"`
	Target int64  `json:"target"`
}

type routeResponse struct {
	Graph    string  `json:"graph"`
	Source   int64   `json:"source"`
	Target   int64   `json:"target"`
	Distance float64 `json:"distance"` // -1 when unreachable
	Hops     int     `json:"hops"`
	Path     []int64 `json:"path,omitempty"`
	// Cached reports the route was reconstructed from a cached full
	// distance vector — no solve ran and no solve slot was held.
	Cached bool `json:"cached,omitempty"`
	// Pruned counts relaxation candidates skipped by goal-directed
	// landmark pruning during this route's solve.
	Pruned int64 `json:"pruned,omitempty"`
}

type batchRequest struct {
	Graph   string  `json:"graph"`
	Sources []int64 `json:"sources"`
	TopK    int     `json:"topk,omitempty"`
	Targets []int64 `json:"targets,omitempty"`
}

type batchResponse struct {
	Graph   string              `json:"graph"`
	Results []distancesResponse `json:"results"`
}

// --- handlers -------------------------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":        "ok",
		"graphs":        s.registry.Len(),
		"uptimeSeconds": int64(time.Since(s.start).Seconds()),
	})
}

func (s *Server) handleGraphs(w http.ResponseWriter, _ *http.Request) {
	entries := s.registry.List()
	infos := make([]GraphInfo, len(entries))
	for i, e := range entries {
		infos[i] = e.Info
		// Landmark sets grow after load (cache adoption); report the
		// live count, not the snapshot taken at build time.
		if lb, ok := e.Backend.(LandmarkBackend); ok {
			infos[i].Landmarks = lb.Landmarks()
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"graphs": infos})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.statsSnapshot())
}

func (s *Server) handleDistances(w http.ResponseWriter, r *http.Request) {
	var req distancesRequest
	if !decodeBody(w, r, &req) {
		return
	}
	eng, err := engineParam(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	e, src, ok := s.resolve(w, req.Graph, req.Source)
	if !ok {
		return
	}
	if !s.checkTargets(w, e, req.Targets) {
		return
	}
	if traceParam(r) {
		resp, status := s.answerTraced(r.Context(), e, src, req.TopK, req.Targets, eng)
		writeJSON(w, status, resp)
		return
	}
	resp, status := s.answerSource(r.Context(), e, src, req.TopK, req.Targets, eng)
	writeJSON(w, status, resp)
}

// traceParam reports whether the request asked for a solve timeline.
func traceParam(r *http.Request) bool {
	switch r.URL.Query().Get("trace") {
	case "1", "true":
		return true
	}
	return false
}

// answerTraced runs one traced source query. Tracing deliberately
// bypasses the cache and coalescing on both read and write: the
// timeline must describe an actual solve executed for this request, and
// a traced solve's extra clock reads should not pollute the shared
// cache path timings. The pool still bounds it like any other solve.
func (s *Server) answerTraced(ctx context.Context, e *Entry, src rs.Vertex, topK int, targets []int64, engine rs.Engine) (distancesResponse, int) {
	resp := distancesResponse{Graph: e.Name, Source: int64(src)}
	tb, ok := e.Backend.(TracingBackend)
	if !ok {
		resp.Error = fmt.Sprintf("graph %q does not support tracing", e.Name)
		return resp, http.StatusBadRequest
	}
	if err := s.pool.acquire(ctx); err != nil {
		resp.Error = err.Error()
		return resp, http.StatusServiceUnavailable
	}
	pc0 := s.metrics.poolBefore()
	t0 := time.Now()
	dist, st, tl, err := tb.DistancesTraced(src, engine)
	s.pool.release()
	if err != nil {
		resp.Error = err.Error()
		return resp, http.StatusInternalServerError
	}
	dur := time.Since(t0)
	s.metrics.observePool(pc0)
	s.metrics.observeSolve(e.Name, st, dur)
	s.logSolve(e.Name, src, st, dur)
	resp.Trace = tl
	s.shapeDistances(&resp, dist, topK, targets)
	return resp, http.StatusOK
}

// checkTargets range-checks target vertices before any solve runs, so a
// bad target is rejected for free instead of after a full SSSP.
func (s *Server) checkTargets(w http.ResponseWriter, e *Entry, targets []int64) bool {
	n := int64(e.Backend.NumVertices())
	for _, t := range targets {
		if t < 0 || t >= n {
			s.fail(w, http.StatusBadRequest, "target %d out of range [0, %d)", t, n)
			return false
		}
	}
	return true
}

// answerSource runs one source query and shapes the response per the
// topk/targets options. It is shared by /v1/distances and /v1/batch.
func (s *Server) answerSource(ctx context.Context, e *Entry, src rs.Vertex, topK int, targets []int64, engine rs.Engine) (distancesResponse, int) {
	resp := distancesResponse{Graph: e.Name, Source: int64(src)}
	dist, cached, err := s.distances(ctx, e, src, engine)
	if err != nil {
		resp.Error = err.Error()
		return resp, http.StatusInternalServerError
	}
	resp.Cached = cached
	s.shapeDistances(&resp, dist, topK, targets)
	return resp, http.StatusOK
}

// shapeDistances fills the response body per the topk/targets options.
func (s *Server) shapeDistances(resp *distancesResponse, dist []float64, topK int, targets []int64) {
	for _, d := range dist {
		if !math.IsInf(d, 1) {
			resp.Reached++
		}
	}
	switch {
	case len(targets) > 0:
		// Targets were range-checked by the handler before the solve.
		resp.Targets = make([]vertexDistance, 0, len(targets))
		for _, t := range targets {
			resp.Targets = append(resp.Targets, vertexDistance{Vertex: t, Distance: finite(dist[t])})
		}
	case topK > 0:
		resp.Nearest = nearestK(dist, topK)
	default:
		out := make([]float64, len(dist))
		for i, d := range dist {
			out[i] = finite(d)
		}
		resp.Distances = out
	}
}

// pruneParam parses the optional ?prune= opt-out for /v1/route.
// Goal-directed landmark pruning defaults to on (it never changes the
// answer, only the work); "0" or "false" disables it for A/B
// measurement. Anything else is a client error.
func pruneParam(r *http.Request) (bool, error) {
	switch r.URL.Query().Get("prune") {
	case "", "1", "true":
		return true, nil
	case "0", "false":
		return false, nil
	default:
		return false, fmt.Errorf("bad prune parameter %q (want 0, 1, true, false)", r.URL.Query().Get("prune"))
	}
}

// handleRoute answers a point-to-point query, cheapest strategy first:
//
//  1. A cached full distance vector for the source answers the route by
//     tight-edge reconstruction alone — no solve, no solve slot.
//  2. Otherwise an early-terminated solve runs under the pool, with
//     goal-directed landmark pruning unless ?prune=0 opts out.
//  3. A backend without route support falls back to plain Path.
func (s *Server) handleRoute(w http.ResponseWriter, r *http.Request) {
	var req routeRequest
	if !decodeBody(w, r, &req) {
		return
	}
	e, src, ok := s.resolve(w, req.Graph, req.Source)
	if !ok {
		return
	}
	if req.Target < 0 || req.Target >= int64(e.Backend.NumVertices()) {
		s.fail(w, http.StatusBadRequest, "target %d out of range [0, %d)", req.Target, e.Backend.NumVertices())
		return
	}
	eng, perr := engineParam(r)
	if perr != nil {
		s.fail(w, http.StatusBadRequest, "%v", perr)
		return
	}
	prune, perr := pruneParam(r)
	if perr != nil {
		s.fail(w, http.StatusBadRequest, "%v", perr)
		return
	}
	dst := rs.Vertex(req.Target)
	resp := routeResponse{Graph: e.Name, Source: req.Source, Target: req.Target}

	// Cache-first: a full vector for this source already holds every
	// distance, and reconstruction is a cheap backward walk — answering
	// here keeps the solve pool free for real misses.
	if vr, ok := e.Backend.(VectorRouter); ok {
		if dist, hit := s.cache.Get(cacheKey{graph: e.Name, src: int32(src)}); hit {
			path, d, err := vr.PathFromDistances(src, dst, dist)
			if err == nil {
				s.metrics.routeCacheHits.Inc()
				resp.Cached = true
				writeRoute(w, resp, path, d)
				return
			}
			// An unusable cached vector falls through to a real solve
			// rather than failing the request.
		}
	}

	if err := s.pool.acquire(r.Context()); err != nil {
		s.fail(w, http.StatusServiceUnavailable, "route: %v", err)
		return
	}
	var (
		path []rs.Vertex
		d    float64
		err  error
	)
	if rb, ok := e.Backend.(RoutingBackend); ok {
		var st rs.Stats
		path, d, st, err = rb.Route(src, dst, eng, prune)
		if st.Pruned > 0 {
			s.metrics.routePruned.Add(st.Pruned)
			resp.Pruned = st.Pruned
		}
	} else {
		path, d, err = e.Backend.Path(src, dst, eng)
	}
	s.pool.release()
	if err != nil {
		s.fail(w, http.StatusInternalServerError, "route: %v", err)
		return
	}
	s.metrics.routeSolves.Inc()
	writeRoute(w, resp, path, d)
}

// writeRoute finishes a route response from the computed path.
func writeRoute(w http.ResponseWriter, resp routeResponse, path []rs.Vertex, d float64) {
	resp.Distance = finite(d)
	if len(path) > 0 {
		resp.Hops = len(path) - 1
		resp.Path = make([]int64, len(path))
		for i, v := range path {
			resp.Path[i] = int64(v)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !decodeBody(w, r, &req) {
		return
	}
	eng, perr := engineParam(r)
	if perr != nil {
		s.fail(w, http.StatusBadRequest, "%v", perr)
		return
	}
	e, ok := s.registry.Get(req.Graph)
	if !ok {
		s.fail(w, http.StatusNotFound, "unknown graph %q", req.Graph)
		return
	}
	if len(req.Sources) == 0 {
		s.fail(w, http.StatusBadRequest, "batch needs at least one source")
		return
	}
	const maxBatch = 4096
	if len(req.Sources) > maxBatch {
		s.fail(w, http.StatusBadRequest, "batch of %d sources exceeds limit %d", len(req.Sources), maxBatch)
		return
	}
	n := e.Backend.NumVertices()
	for _, src := range req.Sources {
		if src < 0 || src >= int64(n) {
			s.fail(w, http.StatusBadRequest, "source %d out of range [0, %d)", src, n)
			return
		}
	}
	if !s.checkTargets(w, e, req.Targets) {
		return
	}
	s.metrics.batchSources.Add(int64(len(req.Sources)))

	// Source-level parallelism: each source runs the full cache →
	// coalescing → pool pipeline, so duplicates inside one batch
	// coalesce exactly like concurrent independent clients. Per-source
	// failures are embedded in a 200 batch response, invisible to the
	// middleware, so they count into the error family here.
	batchErrs := s.metrics.httpErrors.With("/v1/batch", "5xx")
	results := make([]distancesResponse, len(req.Sources))
	var wg sync.WaitGroup
	for i, src := range req.Sources {
		wg.Add(1)
		go func(i int, src int64) {
			defer wg.Done()
			var status int
			results[i], status = s.answerSource(r.Context(), e, rs.Vertex(src), req.TopK, req.Targets, eng)
			if status >= 400 {
				batchErrs.Inc()
			}
		}(i, src)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, batchResponse{Graph: e.Name, Results: results})
}

// --- helpers --------------------------------------------------------------

// resolve looks up the graph and validates the source vertex.
func (s *Server) resolve(w http.ResponseWriter, graph string, source int64) (*Entry, rs.Vertex, bool) {
	e, ok := s.registry.Get(graph)
	if !ok {
		s.fail(w, http.StatusNotFound, "unknown graph %q", graph)
		return nil, 0, false
	}
	if source < 0 || source >= int64(e.Backend.NumVertices()) {
		s.fail(w, http.StatusBadRequest, "source %d out of range [0, %d)", source, e.Backend.NumVertices())
		return nil, 0, false
	}
	return e, rs.Vertex(source), true
}

// fail writes an error response; the instrumentation middleware counts
// it into the per-endpoint, per-status-class error family.
func (s *Server) fail(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request body: " + err.Error()})
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// finite maps +Inf (unreachable) to the JSON-safe sentinel -1.
func finite(d float64) float64 {
	if math.IsInf(d, 1) {
		return -1
	}
	return d
}

// nearestK returns the k closest reachable vertices, ties broken by id.
// A bounded max-heap keeps this O(n log k) with O(k) extra memory —
// cached hot sources answer top-k requests without an O(n log n) sort.
func nearestK(dist []float64, k int) []vertexDistance {
	if k <= 0 {
		return nil
	}
	// after reports whether a sorts after b (farther, or same distance
	// with a larger id); the heap keeps the "worst kept" entry at h[0].
	after := func(a, b vertexDistance) bool {
		if a.Distance != b.Distance {
			return a.Distance > b.Distance
		}
		return a.Vertex > b.Vertex
	}
	h := make([]vertexDistance, 0, k)
	siftDown := func() {
		i := 0
		for {
			l, r, worst := 2*i+1, 2*i+2, i
			if l < len(h) && after(h[l], h[worst]) {
				worst = l
			}
			if r < len(h) && after(h[r], h[worst]) {
				worst = r
			}
			if worst == i {
				return
			}
			h[i], h[worst] = h[worst], h[i]
			i = worst
		}
	}
	for v, d := range dist {
		if math.IsInf(d, 1) {
			continue
		}
		cand := vertexDistance{Vertex: int64(v), Distance: d}
		if len(h) < k {
			h = append(h, cand)
			for i := len(h) - 1; i > 0; {
				p := (i - 1) / 2
				if !after(h[i], h[p]) {
					break
				}
				h[i], h[p] = h[p], h[i]
				i = p
			}
		} else if after(h[0], cand) {
			h[0] = cand
			siftDown()
		}
	}
	sort.Slice(h, func(i, j int) bool { return after(h[j], h[i]) })
	return h
}
