// Package server implements ssspd's query-serving subsystem: a registry
// of named preprocessed graphs, a bounded pool of concurrent solves,
// singleflight coalescing of duplicate (graph, source) queries, and a
// source-keyed LRU cache of distance vectors — the layer that turns the
// radius-stepping library's preprocess-once/query-many shape into an
// online HTTP service.
//
// Endpoints (all JSON):
//
//	POST /v1/distances  one source; full vector, top-k nearest, or a target subset
//	POST /v1/route      point-to-point path via the early-terminating solver
//	POST /v1/batch      many sources with source-level parallelism
//	GET  /v1/graphs     registry metadata (n, m, ρ, k, preprocessing stats)
//	GET  /v1/stats      cache/coalescing/pool counters
//	GET  /healthz       liveness
//
// The solve endpoints accept an ?engine= query parameter (sequential,
// parallel, flat, delta, rho) overriding the graph's configured engine
// for that request; /v1/stats reports solve counts per engine. All
// engines return identical distances, so the cache and request
// coalescing ignore the override.
//
// Unreachable vertices are reported with distance -1 (JSON has no +Inf).
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	rs "radiusstep"
)

// Config tunes a Server.
type Config struct {
	// Workers bounds concurrent solves (default GOMAXPROCS).
	Workers int
	// CacheBytes is the distance-cache budget; <= 0 disables caching.
	CacheBytes int64
}

// Server serves shortest-path queries over a Registry. Create with New,
// mount via Handler.
type Server struct {
	registry *Registry
	cache    *distCache
	flight   *flightGroup
	pool     *solvePool
	counters counters
	start    time.Time

	solvesByGraph  sync.Map // graph name -> *counterCell
	solvesByEngine sync.Map // engine name -> *counterCell
}

type counterCell struct{ v atomic.Int64 }

// New builds a server over reg.
func New(reg *Registry, cfg Config) *Server {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Server{
		registry: reg,
		cache:    newDistCache(cfg.CacheBytes),
		flight:   newFlightGroup(),
		pool:     newSolvePool(workers),
		start:    time.Now(),
	}
}

// Registry exposes the graph registry (for daemon startup logging).
func (s *Server) Registry() *Registry { return s.registry }

// Handler returns the route table as an http.Handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/graphs", s.handleGraphs)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("POST /v1/distances", s.handleDistances)
	mux.HandleFunc("POST /v1/route", s.handleRoute)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	return mux
}

// --- core query path ------------------------------------------------------

// engineParam parses the optional ?engine= override, returning
// EngineAuto (= "no override", the graph's configured engine) when the
// parameter is absent. Unknown names are a client error (the
// fail-loudly contract of ParseEngine).
func engineParam(r *http.Request) (rs.Engine, error) {
	name := r.URL.Query().Get("engine")
	if name == "" {
		return rs.EngineAuto, nil
	}
	return rs.ParseEngine(name)
}

// distances answers one (graph, source) query through the cache →
// coalescing → pool pipeline. The returned slice is shared (cache and
// concurrent waiters) and must not be modified. Distances are identical
// across engines, so the cache and coalescing key stays (graph, source):
// an engine override only decides which engine runs on a miss, and
// concurrent same-key requests with different overrides share the
// leader's solve.
func (s *Server) distances(ctx context.Context, e *Entry, src rs.Vertex, engine rs.Engine) (dist []float64, cached bool, err error) {
	key := cacheKey{graph: e.Name, src: int32(src)}
	if d, ok := s.cache.Get(key); ok {
		return d, true, nil
	}
	// The solve runs detached from the leader's request context: its
	// result is shared with every coalesced waiter and the cache, so one
	// client disconnecting must not poison the others' queries.
	solveCtx := context.WithoutCancel(ctx)
	d, joined, err := s.flight.Do(ctx, key, func() ([]float64, error) {
		if err := s.pool.acquire(solveCtx); err != nil {
			return nil, err
		}
		defer s.pool.release()
		d, st, err := e.Backend.Distances(src, engine)
		if err != nil {
			return nil, err
		}
		s.counters.observeSolve(st)
		s.bump(&s.solvesByGraph, e.Name)
		if st.Engine != "" {
			s.bump(&s.solvesByEngine, st.Engine)
		}
		s.cache.Add(key, d)
		return d, nil
	})
	if joined {
		s.counters.coalesced.Add(1)
	}
	return d, false, err
}

func (s *Server) bump(m *sync.Map, key string) {
	cell, _ := m.LoadOrStore(key, &counterCell{})
	cell.(*counterCell).v.Add(1)
}

// --- request/response types ----------------------------------------------

type distancesRequest struct {
	Graph   string  `json:"graph"`
	Source  int64   `json:"source"`
	TopK    int     `json:"topk,omitempty"`
	Targets []int64 `json:"targets,omitempty"`
}

// vertexDistance pairs a vertex with its distance (-1 = unreachable).
type vertexDistance struct {
	Vertex   int64   `json:"vertex"`
	Distance float64 `json:"distance"`
}

type distancesResponse struct {
	Graph     string           `json:"graph"`
	Source    int64            `json:"source"`
	Cached    bool             `json:"cached"`
	Reached   int              `json:"reached"`
	Distances []float64        `json:"distances,omitempty"`
	Nearest   []vertexDistance `json:"nearest,omitempty"`
	Targets   []vertexDistance `json:"targets,omitempty"`
	Error     string           `json:"error,omitempty"`
}

type routeRequest struct {
	Graph  string `json:"graph"`
	Source int64  `json:"source"`
	Target int64  `json:"target"`
}

type routeResponse struct {
	Graph    string  `json:"graph"`
	Source   int64   `json:"source"`
	Target   int64   `json:"target"`
	Distance float64 `json:"distance"` // -1 when unreachable
	Hops     int     `json:"hops"`
	Path     []int64 `json:"path,omitempty"`
}

type batchRequest struct {
	Graph   string  `json:"graph"`
	Sources []int64 `json:"sources"`
	TopK    int     `json:"topk,omitempty"`
	Targets []int64 `json:"targets,omitempty"`
}

type batchResponse struct {
	Graph   string              `json:"graph"`
	Results []distancesResponse `json:"results"`
}

// --- handlers -------------------------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":        "ok",
		"graphs":        s.registry.Len(),
		"uptimeSeconds": int64(time.Since(s.start).Seconds()),
	})
}

func (s *Server) handleGraphs(w http.ResponseWriter, _ *http.Request) {
	s.counters.reqGraphs.Add(1)
	entries := s.registry.List()
	infos := make([]GraphInfo, len(entries))
	for i, e := range entries {
		infos[i] = e.Info
	}
	writeJSON(w, http.StatusOK, map[string]any{"graphs": infos})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.counters.reqStats.Add(1)
	writeJSON(w, http.StatusOK, s.statsSnapshot())
}

// statsSnapshot assembles the full stats body — counters plus cache,
// pool, flight, per-graph solve, and load sections — for /v1/stats and
// the selftest report alike.
func (s *Server) statsSnapshot() StatsSnapshot {
	snap := s.counters.snapshot()
	snap.Cache = s.cache.Stats()
	snap.Pool = s.pool.Stats()
	snap.Flight = s.flight.Stats()
	snap.SolvesByGraph = make(map[string]int64)
	s.solvesByGraph.Range(func(k, v any) bool {
		snap.SolvesByGraph[k.(string)] = v.(*counterCell).v.Load()
		return true
	})
	snap.SolvesByEngine = make(map[string]int64)
	s.solvesByEngine.Range(func(k, v any) bool {
		snap.SolvesByEngine[k.(string)] = v.(*counterCell).v.Load()
		return true
	})
	snap.GraphLoads = make(map[string]GraphLoadStats)
	for _, e := range s.registry.List() {
		snap.GraphLoads[e.Name] = GraphLoadStats{
			Source:          e.Info.Source,
			Format:          e.Info.Format,
			RadiiSource:     e.Info.RadiiSource,
			SnapshotBytes:   e.Info.SnapshotBytes,
			ColdStartMillis: e.Info.ColdStartMillis,
		}
	}
	return snap
}

func (s *Server) handleDistances(w http.ResponseWriter, r *http.Request) {
	s.counters.reqDistances.Add(1)
	var req distancesRequest
	if !decodeBody(w, r, &req, &s.counters) {
		return
	}
	eng, err := engineParam(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	e, src, ok := s.resolve(w, req.Graph, req.Source)
	if !ok {
		return
	}
	if !s.checkTargets(w, e, req.Targets) {
		return
	}
	resp, status := s.answerSource(r.Context(), e, src, req.TopK, req.Targets, eng)
	writeJSON(w, status, resp)
}

// checkTargets range-checks target vertices before any solve runs, so a
// bad target is rejected for free instead of after a full SSSP.
func (s *Server) checkTargets(w http.ResponseWriter, e *Entry, targets []int64) bool {
	n := int64(e.Backend.NumVertices())
	for _, t := range targets {
		if t < 0 || t >= n {
			s.fail(w, http.StatusBadRequest, "target %d out of range [0, %d)", t, n)
			return false
		}
	}
	return true
}

// answerSource runs one source query and shapes the response per the
// topk/targets options. It is shared by /v1/distances and /v1/batch.
func (s *Server) answerSource(ctx context.Context, e *Entry, src rs.Vertex, topK int, targets []int64, engine rs.Engine) (distancesResponse, int) {
	resp := distancesResponse{Graph: e.Name, Source: int64(src)}
	dist, cached, err := s.distances(ctx, e, src, engine)
	if err != nil {
		s.counters.errors.Add(1)
		resp.Error = err.Error()
		return resp, http.StatusInternalServerError
	}
	resp.Cached = cached
	for _, d := range dist {
		if !math.IsInf(d, 1) {
			resp.Reached++
		}
	}
	switch {
	case len(targets) > 0:
		// Targets were range-checked by the handler before the solve.
		resp.Targets = make([]vertexDistance, 0, len(targets))
		for _, t := range targets {
			resp.Targets = append(resp.Targets, vertexDistance{Vertex: t, Distance: finite(dist[t])})
		}
	case topK > 0:
		resp.Nearest = nearestK(dist, topK)
	default:
		out := make([]float64, len(dist))
		for i, d := range dist {
			out[i] = finite(d)
		}
		resp.Distances = out
	}
	return resp, http.StatusOK
}

func (s *Server) handleRoute(w http.ResponseWriter, r *http.Request) {
	s.counters.reqRoute.Add(1)
	var req routeRequest
	if !decodeBody(w, r, &req, &s.counters) {
		return
	}
	e, src, ok := s.resolve(w, req.Graph, req.Source)
	if !ok {
		return
	}
	if req.Target < 0 || req.Target >= int64(e.Backend.NumVertices()) {
		s.fail(w, http.StatusBadRequest, "target %d out of range [0, %d)", req.Target, e.Backend.NumVertices())
		return
	}
	eng, perr := engineParam(r)
	if perr != nil {
		s.fail(w, http.StatusBadRequest, "%v", perr)
		return
	}
	if err := s.pool.acquire(r.Context()); err != nil {
		s.fail(w, http.StatusServiceUnavailable, "route: %v", err)
		return
	}
	path, d, err := e.Backend.Path(src, rs.Vertex(req.Target), eng)
	s.pool.release()
	if err != nil {
		s.fail(w, http.StatusInternalServerError, "route: %v", err)
		return
	}
	s.counters.routeSolves.Add(1)
	resp := routeResponse{Graph: e.Name, Source: req.Source, Target: req.Target, Distance: finite(d)}
	if len(path) > 0 {
		resp.Hops = len(path) - 1
		resp.Path = make([]int64, len(path))
		for i, v := range path {
			resp.Path[i] = int64(v)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.counters.reqBatch.Add(1)
	var req batchRequest
	if !decodeBody(w, r, &req, &s.counters) {
		return
	}
	eng, perr := engineParam(r)
	if perr != nil {
		s.fail(w, http.StatusBadRequest, "%v", perr)
		return
	}
	e, ok := s.registry.Get(req.Graph)
	if !ok {
		s.fail(w, http.StatusNotFound, "unknown graph %q", req.Graph)
		return
	}
	if len(req.Sources) == 0 {
		s.fail(w, http.StatusBadRequest, "batch needs at least one source")
		return
	}
	const maxBatch = 4096
	if len(req.Sources) > maxBatch {
		s.fail(w, http.StatusBadRequest, "batch of %d sources exceeds limit %d", len(req.Sources), maxBatch)
		return
	}
	n := e.Backend.NumVertices()
	for _, src := range req.Sources {
		if src < 0 || src >= int64(n) {
			s.fail(w, http.StatusBadRequest, "source %d out of range [0, %d)", src, n)
			return
		}
	}
	if !s.checkTargets(w, e, req.Targets) {
		return
	}
	s.counters.batchSources.Add(int64(len(req.Sources)))

	// Source-level parallelism: each source runs the full cache →
	// coalescing → pool pipeline, so duplicates inside one batch
	// coalesce exactly like concurrent independent clients.
	results := make([]distancesResponse, len(req.Sources))
	var wg sync.WaitGroup
	for i, src := range req.Sources {
		wg.Add(1)
		go func(i int, src int64) {
			defer wg.Done()
			results[i], _ = s.answerSource(r.Context(), e, rs.Vertex(src), req.TopK, req.Targets, eng)
		}(i, src)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, batchResponse{Graph: e.Name, Results: results})
}

// --- helpers --------------------------------------------------------------

// resolve looks up the graph and validates the source vertex.
func (s *Server) resolve(w http.ResponseWriter, graph string, source int64) (*Entry, rs.Vertex, bool) {
	e, ok := s.registry.Get(graph)
	if !ok {
		s.fail(w, http.StatusNotFound, "unknown graph %q", graph)
		return nil, 0, false
	}
	if source < 0 || source >= int64(e.Backend.NumVertices()) {
		s.fail(w, http.StatusBadRequest, "source %d out of range [0, %d)", source, e.Backend.NumVertices())
		return nil, 0, false
	}
	return e, rs.Vertex(source), true
}

func (s *Server) fail(w http.ResponseWriter, status int, format string, args ...any) {
	s.counters.errors.Add(1)
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func decodeBody(w http.ResponseWriter, r *http.Request, dst any, c *counters) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		c.errors.Add(1)
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request body: " + err.Error()})
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// finite maps +Inf (unreachable) to the JSON-safe sentinel -1.
func finite(d float64) float64 {
	if math.IsInf(d, 1) {
		return -1
	}
	return d
}

// nearestK returns the k closest reachable vertices, ties broken by id.
// A bounded max-heap keeps this O(n log k) with O(k) extra memory —
// cached hot sources answer top-k requests without an O(n log n) sort.
func nearestK(dist []float64, k int) []vertexDistance {
	if k <= 0 {
		return nil
	}
	// after reports whether a sorts after b (farther, or same distance
	// with a larger id); the heap keeps the "worst kept" entry at h[0].
	after := func(a, b vertexDistance) bool {
		if a.Distance != b.Distance {
			return a.Distance > b.Distance
		}
		return a.Vertex > b.Vertex
	}
	h := make([]vertexDistance, 0, k)
	siftDown := func() {
		i := 0
		for {
			l, r, worst := 2*i+1, 2*i+2, i
			if l < len(h) && after(h[l], h[worst]) {
				worst = l
			}
			if r < len(h) && after(h[r], h[worst]) {
				worst = r
			}
			if worst == i {
				return
			}
			h[i], h[worst] = h[worst], h[i]
			i = worst
		}
	}
	for v, d := range dist {
		if math.IsInf(d, 1) {
			continue
		}
		cand := vertexDistance{Vertex: int64(v), Distance: d}
		if len(h) < k {
			h = append(h, cand)
			for i := len(h) - 1; i > 0; {
				p := (i - 1) / 2
				if !after(h[i], h[p]) {
					break
				}
				h[i], h[p] = h[p], h[i]
				i = p
			}
		} else if after(h[0], cand) {
			h[0] = cand
			siftDown()
		}
	}
	sort.Slice(h, func(i, j int) bool { return after(h[j], h[i]) })
	return h
}
