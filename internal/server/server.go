// Package server implements ssspd's query-serving subsystem: a registry
// of named preprocessed graphs, a bounded pool of concurrent solves,
// singleflight coalescing of duplicate (graph, source) queries, and a
// source-keyed LRU cache of distance vectors — the layer that turns the
// radius-stepping library's preprocess-once/query-many shape into an
// online HTTP service.
//
// Endpoints (all JSON):
//
//	POST /v1/distances  one source; full vector, top-k nearest, or a target subset
//	POST /v1/route      point-to-point path via the early-terminating solver
//	POST /v1/batch      many sources with source-level parallelism
//	GET  /v1/graphs     registry metadata (n, m, ρ, k, preprocessing stats)
//	GET  /v1/stats      cache/coalescing/pool counters
//	GET  /healthz       liveness
//
// The solve endpoints accept an ?engine= query parameter (sequential,
// parallel, flat, delta, rho) overriding the graph's configured engine
// for that request; /v1/stats reports solve counts per engine. All
// engines return identical distances, so the cache and request
// coalescing ignore the override.
//
// Unreachable vertices are reported with distance -1 (JSON has no +Inf).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"radiusstep/internal/fault"

	rs "radiusstep"
)

// DefaultSolveTimeout bounds a solve-backed request when Config leaves
// SolveTimeout zero. Generous — a cold multi-million-vertex solve fits —
// but finite, so no request can hold a pool slot forever.
const DefaultSolveTimeout = 30 * time.Second

// Config tunes a Server.
type Config struct {
	// Workers bounds concurrent solves (default GOMAXPROCS).
	Workers int
	// CacheBytes is the distance-cache budget; <= 0 disables caching.
	CacheBytes int64
	// Logger, when non-nil, receives structured request logs (one line
	// per request with endpoint, status and latency) and per-solve logs
	// (engine, step counts, duration).
	Logger *slog.Logger
	// AutoLandmarks promotes freshly cached distance vectors into each
	// graph's ALT landmark set (until it is full), so the serving cache
	// doubles as a goal-direction index: hot sources sharpen every later
	// route query's pruning for free.
	AutoLandmarks bool
	// SolveTimeout is the per-request deadline for solve-backed
	// endpoints (default DefaultSolveTimeout; < 0 disables). Requests
	// may shorten it per call with ?timeout_ms=; they can never extend
	// past it.
	SolveTimeout time.Duration
	// QueueDepth caps how many requests may wait for a solve slot
	// before the server sheds load with 503 + Retry-After (<= 0 selects
	// 8 waiters per worker).
	QueueDepth int
	// AdminToken, when non-empty, mounts the /v1/admin/* lifecycle
	// endpoints (reload, load, remove) on the main handler, guarded by
	// this bearer token. Leave empty to keep admin off the query port —
	// the daemon can still serve AdminHandler on a separate private
	// listener (-admin-addr).
	AdminToken string
}

// Server serves shortest-path queries over a Registry. Create with New,
// mount via Handler.
type Server struct {
	registry      *Registry
	cache         *distCache
	flight        *flightGroup
	pool          *solvePool
	metrics       *serverMetrics
	logger        *slog.Logger
	autoLandmarks bool
	solveTimeout  time.Duration
	adminToken    string
	start         time.Time

	// Lifecycle: ready gates /readyz (New starts ready; the daemon
	// flips it around graph loading), draining marks shutdown, and
	// lifeCtx ends when Abort tears down stragglers.
	ready      atomic.Bool
	draining   atomic.Bool
	lifeCtx    context.Context
	lifeCancel context.CancelFunc
}

// New builds a server over reg.
func New(reg *Registry, cfg Config) *Server {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	timeout := cfg.SolveTimeout
	if timeout == 0 {
		timeout = DefaultSolveTimeout
	}
	if timeout < 0 {
		timeout = 0 // disabled
	}
	s := &Server{
		registry:      reg,
		cache:         newDistCache(cfg.CacheBytes),
		flight:        newFlightGroup(),
		pool:          newSolvePool(workers, cfg.QueueDepth),
		logger:        cfg.Logger,
		autoLandmarks: cfg.AutoLandmarks,
		solveTimeout:  timeout,
		adminToken:    cfg.AdminToken,
		start:         time.Now(),
	}
	s.lifeCtx, s.lifeCancel = context.WithCancel(context.Background())
	s.ready.Store(true)
	s.metrics = newServerMetrics(s)
	// Epoch-scoped cache invalidation: a swap, eviction, or removal
	// drops only that graph's vectors (every epoch — the dead one is
	// unreachable anyway, this reclaims its memory).
	reg.OnSwap(s.cache.InvalidateGraph)
	return s
}

// SetReady flips the /readyz readiness gate; the daemon holds it false
// while graphs load so load balancers don't route to a cold process.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// Ready reports whether the server is accepting work (ready and not
// draining).
func (s *Server) Ready() bool { return s.ready.Load() && !s.draining.Load() }

// BeginDrain marks the server draining: /readyz turns 503 immediately
// so load balancers stop sending traffic, while in-flight requests keep
// running. Call Drain afterwards to wait them out.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Drain waits for the solve pool to empty — the graceful half of
// shutdown. It returns nil once no solve is running or waiting, or
// ctx's error when the grace period expires first (the caller then
// escalates to Abort).
func (s *Server) Drain(ctx context.Context) error {
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for {
		st := s.pool.Stats()
		if st.InUse == 0 && st.Waiting == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// Abort cancels every in-flight solve through the cooperative probe —
// the forceful half of shutdown, for stragglers that outlived the
// drain grace.
func (s *Server) Abort() {
	s.lifeCancel()
	s.flight.abortAll()
}

// Registry exposes the graph registry (for daemon startup logging).
func (s *Server) Registry() *Registry { return s.registry }

// Handler returns the route table as an http.Handler. Every route is
// wrapped in the instrumentation middleware (request counter, latency
// histogram, error-by-status-class counter, optional request log).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.instrument("/healthz", s.handleHealthz))
	mux.HandleFunc("GET /readyz", s.instrument("/readyz", s.handleReadyz))
	mux.HandleFunc("GET /metrics", s.instrument("/metrics", s.handleMetrics))
	mux.HandleFunc("GET /v1/graphs", s.instrument("/v1/graphs", s.handleGraphs))
	mux.HandleFunc("GET /v1/stats", s.instrument("/v1/stats", s.handleStats))
	mux.HandleFunc("POST /v1/distances", s.instrument("/v1/distances", s.handleDistances))
	mux.HandleFunc("POST /v1/route", s.instrument("/v1/route", s.handleRoute))
	mux.HandleFunc("POST /v1/batch", s.instrument("/v1/batch", s.handleBatch))
	if s.adminToken != "" {
		// Lifecycle mutation on the query port, opt-in and token-guarded;
		// without a token the admin surface exists only via AdminHandler
		// on a separate private listener.
		s.mountAdmin(mux, s.requireAdminToken)
	}
	return mux
}

// statusWriter captures the response status for the middleware; Write
// without an explicit WriteHeader means 200, matching net/http.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// statusClass buckets an HTTP status into the error-class label ("4xx",
// "5xx", or "" for success).
func statusClass(status int) string {
	switch {
	case status >= 500:
		return "5xx"
	case status >= 400:
		return "4xx"
	}
	return ""
}

// instrument wraps a handler with per-endpoint metrics: a request
// counter, a latency histogram, and error counters split by status
// class. The child handles are captured once here, so the per-request
// cost is three atomic ops and a clock read.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	reqs := s.metrics.requests.With(endpoint)
	dur := s.metrics.reqDur.With(endpoint)
	e4 := s.metrics.httpErrors.With(endpoint, "4xx")
	e5 := s.metrics.httpErrors.With(endpoint, "5xx")
	return func(w http.ResponseWriter, r *http.Request) {
		reqs.Inc()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		t0 := time.Now()
		h(sw, r)
		elapsed := time.Since(t0)
		dur.Observe(elapsed.Seconds())
		switch statusClass(sw.status) {
		case "5xx":
			e5.Inc()
		case "4xx":
			e4.Inc()
		}
		if s.logger != nil {
			s.logger.Info("request",
				"endpoint", endpoint,
				"method", r.Method,
				"status", sw.status,
				"durMicros", elapsed.Microseconds())
		}
	}
}

// --- request lifecycle ----------------------------------------------------

// statusClientClosedRequest is the nginx-convention status for "the
// client went away before we could answer" — a solve aborted by its own
// caller's disconnect, distinct from a server-imposed 504 deadline.
const statusClientClosedRequest = 499

// requestCtx derives the context a solve-backed request runs under: the
// request's own context bounded by the server's solve timeout —
// shortened, never extended, by a ?timeout_ms= override — and canceled
// by server Abort (shutdown stragglers). The returned cancel must be
// called when the request finishes.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc, error) {
	timeout := s.solveTimeout
	if raw := r.URL.Query().Get("timeout_ms"); raw != "" {
		ms, err := strconv.ParseInt(raw, 10, 64)
		if err != nil || ms <= 0 {
			return nil, nil, fmt.Errorf("bad timeout_ms %q (want a positive integer)", raw)
		}
		if d := time.Duration(ms) * time.Millisecond; timeout == 0 || d < timeout {
			timeout = d
		}
	}
	ctx := r.Context()
	var cancel context.CancelFunc
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	stop := context.AfterFunc(s.lifeCtx, cancel)
	return ctx, func() { stop(); cancel() }, nil
}

// solveStatus maps a solve-path error onto its HTTP status: deadline
// expiry is the 504 class (the server's time budget ran out), client
// departure is 499 (nginx convention), a full queue is 503, anything
// else a plain 500.
func solveStatus(err error) int {
	switch {
	case errors.Is(err, rs.ErrDeadline) || errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, rs.ErrCanceled) || errors.Is(err, context.Canceled):
		return statusClientClosedRequest
	case errors.Is(err, errQueueFull):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// recordSolveError folds a failed solve into the shed/timeout/cancel/
// panic counter families (the success path has its own counters).
func (s *Server) recordSolveError(err error) {
	switch {
	case errors.Is(err, rs.ErrDeadline) || errors.Is(err, context.DeadlineExceeded):
		s.metrics.solveTimeouts.Inc()
	case errors.Is(err, rs.ErrCanceled) || errors.Is(err, context.Canceled):
		s.metrics.solvesCanceled.Inc()
	}
}

// failSolve writes a solve-path failure with its mapped status; shed
// requests carry Retry-After so well-behaved clients back off.
func (s *Server) failSolve(w http.ResponseWriter, err error, format string, args ...any) {
	status := solveStatus(err)
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	s.fail(w, status, format, args...)
}

// --- core query path ------------------------------------------------------

// engineParam parses the optional ?engine= override, returning
// EngineAuto (= "no override", the graph's configured engine) when the
// parameter is absent. Unknown names are a client error (the
// fail-loudly contract of ParseEngine).
func engineParam(r *http.Request) (rs.Engine, error) {
	name := r.URL.Query().Get("engine")
	if name == "" {
		return rs.EngineAuto, nil
	}
	return rs.ParseEngine(name)
}

// distances answers one (graph, source) query through the cache →
// coalescing → pool pipeline. The returned slice is shared (cache and
// concurrent waiters) and must not be modified. Distances are identical
// across engines, so the cache and coalescing key stays (graph, source):
// an engine override only decides which engine runs on a miss, and
// concurrent same-key requests with different overrides share the
// leader's solve.
func (s *Server) distances(ctx context.Context, e *Entry, src rs.Vertex, engine rs.Engine) (dist []float64, cached bool, err error) {
	// The key carries e.Epoch: the whole request already pinned one
	// epoch at resolve time, so cache hits, coalesced joins, and the
	// fill below are all scoped to that epoch — a reload mid-request
	// can neither serve this request a stale vector nor adopt this
	// request's vector into the new epoch's cache.
	key := cacheKey{graph: e.Name, epoch: e.Epoch, src: int32(src)}
	if d, ok := s.cache.Get(key); ok {
		return d, true, nil
	}
	// The solve runs under the flight call's own context: detached from
	// any single request's values and deadline — its result is shared
	// with every coalesced waiter and the cache, so one client
	// disconnecting must not poison the others' queries — but canceled
	// when the LAST interested participant departs, so an abandoned
	// solve stops burning its pool slot.
	d, joined, err := s.flight.Do(ctx, key, func(solveCtx context.Context) ([]float64, error) {
		if err := s.pool.acquire(solveCtx); err != nil {
			return nil, err
		}
		defer s.pool.release()
		pc0 := s.metrics.poolBefore()
		t0 := time.Now()
		d, st, err := s.solveGuarded(solveCtx, e, src, engine)
		if err != nil {
			return nil, err
		}
		dur := time.Since(t0)
		s.metrics.observePool(pc0)
		s.metrics.observeSolve(e.Name, st, dur)
		s.logSolve(e.Name, src, st, dur)
		s.fillCache(e, key, src, d)
		return d, nil
	})
	if joined {
		s.metrics.coalesced.Inc()
	}
	// The flight's solve context carries no deadline (waiters may have
	// different ones), so a solve aborted because THIS request's
	// deadline expired comes back as a cancellation; restore the real
	// cause for status mapping (504, not 499).
	if err != nil && errors.Is(ctx.Err(), context.DeadlineExceeded) {
		err = rs.ErrDeadline
	}
	return d, false, err
}

// solveGuarded runs one backend solve with panic containment: an engine
// panic becomes an error (and a counter increment) instead of a dead
// daemon — the deferred pool release and flight completion above then
// unwind normally, so no slot or waiter is stuck. Backends implementing
// ContextBackend get the solve context threaded through to the
// cooperative cancel probe; others run to completion as before.
func (s *Server) solveGuarded(ctx context.Context, e *Entry, src rs.Vertex, engine rs.Engine) (d []float64, st rs.Stats, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.metrics.solvePanics.Inc()
			if s.logger != nil {
				s.logger.Error("solve panic", "graph", e.Name, "source", int64(src), "panic", fmt.Sprint(r))
			}
			d, st, err = nil, rs.Stats{}, fmt.Errorf("server: solve panic: %v", r)
		}
	}()
	if ferr := fault.Check(fault.SiteSolve); ferr != nil {
		return nil, rs.Stats{}, ferr
	}
	if cb, ok := e.Backend.(ContextBackend); ok {
		return cb.DistancesCtx(ctx, src, engine)
	}
	return e.Backend.Distances(src, engine)
}

// fillCache publishes a solved vector to the distance cache and the
// landmark-adoption path. The fill is best-effort: an injected (or
// real) failure here must never fail the response — the solve already
// produced a correct answer — so errors skip the fill and panics are
// contained to a counter.
func (s *Server) fillCache(e *Entry, key cacheKey, src rs.Vertex, d []float64) {
	defer func() {
		if r := recover(); r != nil {
			s.metrics.solvePanics.Inc()
			if s.logger != nil {
				s.logger.Error("cache fill panic", "graph", e.Name, "source", int64(src), "panic", fmt.Sprint(r))
			}
		}
	}()
	if err := fault.Check(fault.SiteCacheFill); err != nil {
		return
	}
	s.cache.Add(key, d)
	s.maybeAdoptLandmark(e, src, d)
}

// maybeAdoptLandmark promotes a freshly solved distance vector into the
// graph's ALT landmark set when Config.AutoLandmarks is on — the cache
// write doubling as goal-direction index maintenance. Adoption copies
// the vector, so sharing d with the cache and waiters stays safe.
// Skipped silently when the set is full, src is already a landmark, or
// the backend has no landmark support.
func (s *Server) maybeAdoptLandmark(e *Entry, src rs.Vertex, dist []float64) {
	if !s.autoLandmarks {
		return
	}
	lb, ok := e.Backend.(LandmarkBackend)
	if !ok {
		return
	}
	adopted, err := lb.AdoptLandmark(src, dist)
	if err != nil {
		if s.logger != nil {
			s.logger.Warn("landmark adoption failed", "graph", e.Name, "source", int64(src), "err", err.Error())
		}
		return
	}
	if adopted {
		s.metrics.landmarksAdopted.Inc()
	}
}

// logSolve emits one structured log line per executed solve (cache hits
// and coalesced joins are request-level events, not solves).
func (s *Server) logSolve(graph string, src rs.Vertex, st rs.Stats, dur time.Duration) {
	if s.logger == nil {
		return
	}
	s.logger.Info("solve",
		"graph", graph,
		"source", int64(src),
		"engine", st.Engine,
		"steps", st.Steps,
		"substeps", st.Substeps,
		"relaxations", st.Relaxations,
		"durMicros", dur.Microseconds())
}

// --- request/response types ----------------------------------------------

type distancesRequest struct {
	Graph   string  `json:"graph"`
	Source  int64   `json:"source"`
	TopK    int     `json:"topk,omitempty"`
	Targets []int64 `json:"targets,omitempty"`
}

// vertexDistance pairs a vertex with its distance (-1 = unreachable).
type vertexDistance struct {
	Vertex   int64   `json:"vertex"`
	Distance float64 `json:"distance"`
}

type distancesResponse struct {
	Graph  string `json:"graph"`
	Source int64  `json:"source"`
	// Epoch is the graph epoch this answer was computed on. Clients
	// driving hot reloads use it to assert freshness: a response
	// reporting epoch N carries distances byte-identical to epoch N's
	// snapshot, never a mix.
	Epoch     uint64           `json:"epoch,omitempty"`
	Cached    bool             `json:"cached"`
	Reached   int              `json:"reached"`
	Distances []float64        `json:"distances,omitempty"`
	Nearest   []vertexDistance `json:"nearest,omitempty"`
	Targets   []vertexDistance `json:"targets,omitempty"`
	// Trace is the solve timeline, present only for ?trace=1 requests.
	Trace *rs.Timeline `json:"trace,omitempty"`
	Error string       `json:"error,omitempty"`
}

type routeRequest struct {
	Graph  string `json:"graph"`
	Source int64  `json:"source"`
	Target int64  `json:"target"`
}

type routeResponse struct {
	Graph  string `json:"graph"`
	Source int64  `json:"source"`
	Target int64  `json:"target"`
	// Epoch is the graph epoch the route was computed on (cache-first
	// answers report the epoch whose cached vector they used — the key
	// embeds it, so it is necessarily the request's pinned epoch).
	Epoch    uint64  `json:"epoch,omitempty"`
	Distance float64 `json:"distance"` // -1 when unreachable
	Hops     int     `json:"hops"`
	Path     []int64 `json:"path,omitempty"`
	// Cached reports the route was reconstructed from a cached full
	// distance vector — no solve ran and no solve slot was held.
	Cached bool `json:"cached,omitempty"`
	// Pruned counts relaxation candidates skipped by goal-directed
	// landmark pruning during this route's solve.
	Pruned int64 `json:"pruned,omitempty"`
}

type batchRequest struct {
	Graph   string  `json:"graph"`
	Sources []int64 `json:"sources"`
	TopK    int     `json:"topk,omitempty"`
	Targets []int64 `json:"targets,omitempty"`
}

type batchResponse struct {
	Graph   string              `json:"graph"`
	Results []distancesResponse `json:"results"`
}

// --- handlers -------------------------------------------------------------

// handleHealthz is pure liveness: 200 for as long as the process can
// serve HTTP at all, even while loading or draining. Orchestrators use
// it to decide restarts; routing decisions belong to /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":        "ok",
		"graphs":        s.registry.Len(),
		"uptimeSeconds": int64(time.Since(s.start).Seconds()),
	})
}

// handleReadyz is the routing gate, now per-graph: 503 while the
// daemon is still loading or draining, 503 when graphs are registered
// but ZERO are serving, 200 "ready" when every graph serves, and 200
// "degraded" when at least one serves while others are quarantined,
// failed, or cold — a degraded daemon is still worth routing to. The
// body carries per-graph states so an operator sees which graph is the
// problem from the probe alone.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	switch {
	case s.draining.Load():
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	case !s.ready.Load():
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "loading"})
		return
	}
	serving, total := s.registry.ReadyCount()
	states := make(map[string]string, total)
	for _, h := range s.registry.Health() {
		states[h.Name] = h.State
	}
	body := map[string]any{"graphs": serving, "registered": total}
	switch {
	case total > 0 && serving == 0:
		body["status"] = "unavailable"
		body["perGraph"] = states
		writeJSON(w, http.StatusServiceUnavailable, body)
	case serving < total:
		body["status"] = "degraded"
		body["perGraph"] = states
		writeJSON(w, http.StatusOK, body)
	default:
		body["status"] = "ready"
		writeJSON(w, http.StatusOK, body)
	}
}

func (s *Server) handleGraphs(w http.ResponseWriter, _ *http.Request) {
	entries := s.registry.List()
	infos := make([]GraphInfo, len(entries))
	for i, e := range entries {
		infos[i] = e.Info
		// Landmark sets grow after load (cache adoption); report the
		// live count, not the snapshot taken at build time.
		if lb, ok := e.Backend.(LandmarkBackend); ok {
			infos[i].Landmarks = lb.Landmarks()
		}
	}
	// health covers every registered graph — including failed and cold
	// ones that have no serving entry above — with epoch, quarantine
	// error (classed truncated vs corrupt), and re-probe schedule.
	writeJSON(w, http.StatusOK, map[string]any{
		"graphs": infos,
		"health": s.registry.Health(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.statsSnapshot())
}

func (s *Server) handleDistances(w http.ResponseWriter, r *http.Request) {
	var req distancesRequest
	if !decodeBody(w, r, &req) {
		return
	}
	eng, err := engineParam(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	e, src, ok := s.resolve(w, req.Graph, req.Source)
	if !ok {
		return
	}
	if !s.checkTargets(w, e, req.Targets) {
		return
	}
	ctx, cancel, cerr := s.requestCtx(r)
	if cerr != nil {
		s.fail(w, http.StatusBadRequest, "%v", cerr)
		return
	}
	defer cancel()
	if traceParam(r) {
		resp, status := s.answerTraced(ctx, e, src, req.TopK, req.Targets, eng)
		writeJSON(w, status, resp)
		return
	}
	resp, status := s.answerSource(ctx, e, src, req.TopK, req.Targets, eng)
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, resp)
}

// traceParam reports whether the request asked for a solve timeline.
func traceParam(r *http.Request) bool {
	switch r.URL.Query().Get("trace") {
	case "1", "true":
		return true
	}
	return false
}

// answerTraced runs one traced source query. Tracing deliberately
// bypasses the cache and coalescing on both read and write: the
// timeline must describe an actual solve executed for this request, and
// a traced solve's extra clock reads should not pollute the shared
// cache path timings. The pool still bounds it like any other solve.
func (s *Server) answerTraced(ctx context.Context, e *Entry, src rs.Vertex, topK int, targets []int64, engine rs.Engine) (distancesResponse, int) {
	resp := distancesResponse{Graph: e.Name, Source: int64(src), Epoch: e.Epoch}
	tb, ok := e.Backend.(TracingBackend)
	if !ok {
		resp.Error = fmt.Sprintf("graph %q does not support tracing", e.Name)
		return resp, http.StatusBadRequest
	}
	if err := s.pool.acquire(ctx); err != nil {
		s.recordSolveError(err)
		resp.Error = err.Error()
		return resp, solveStatus(err)
	}
	defer s.pool.release()
	pc0 := s.metrics.poolBefore()
	t0 := time.Now()
	dist, st, tl, err := tb.DistancesTraced(src, engine)
	if err != nil {
		resp.Error = err.Error()
		return resp, http.StatusInternalServerError
	}
	dur := time.Since(t0)
	s.metrics.observePool(pc0)
	s.metrics.observeSolve(e.Name, st, dur)
	s.logSolve(e.Name, src, st, dur)
	resp.Trace = tl
	s.shapeDistances(&resp, dist, topK, targets)
	return resp, http.StatusOK
}

// checkTargets range-checks target vertices before any solve runs, so a
// bad target is rejected for free instead of after a full SSSP.
func (s *Server) checkTargets(w http.ResponseWriter, e *Entry, targets []int64) bool {
	n := int64(e.Backend.NumVertices())
	for _, t := range targets {
		if t < 0 || t >= n {
			s.fail(w, http.StatusBadRequest, "target %d out of range [0, %d)", t, n)
			return false
		}
	}
	return true
}

// answerSource runs one source query and shapes the response per the
// topk/targets options. It is shared by /v1/distances and /v1/batch.
func (s *Server) answerSource(ctx context.Context, e *Entry, src rs.Vertex, topK int, targets []int64, engine rs.Engine) (distancesResponse, int) {
	resp := distancesResponse{Graph: e.Name, Source: int64(src), Epoch: e.Epoch}
	dist, cached, err := s.distances(ctx, e, src, engine)
	if err != nil {
		s.recordSolveError(err)
		resp.Error = err.Error()
		return resp, solveStatus(err)
	}
	resp.Cached = cached
	s.shapeDistances(&resp, dist, topK, targets)
	return resp, http.StatusOK
}

// shapeDistances fills the response body per the topk/targets options.
func (s *Server) shapeDistances(resp *distancesResponse, dist []float64, topK int, targets []int64) {
	for _, d := range dist {
		if !math.IsInf(d, 1) {
			resp.Reached++
		}
	}
	switch {
	case len(targets) > 0:
		// Targets were range-checked by the handler before the solve.
		resp.Targets = make([]vertexDistance, 0, len(targets))
		for _, t := range targets {
			resp.Targets = append(resp.Targets, vertexDistance{Vertex: t, Distance: finite(dist[t])})
		}
	case topK > 0:
		resp.Nearest = nearestK(dist, topK)
	default:
		out := make([]float64, len(dist))
		for i, d := range dist {
			out[i] = finite(d)
		}
		resp.Distances = out
	}
}

// pruneParam parses the optional ?prune= opt-out for /v1/route.
// Goal-directed landmark pruning defaults to on (it never changes the
// answer, only the work); "0" or "false" disables it for A/B
// measurement. Anything else is a client error.
func pruneParam(r *http.Request) (bool, error) {
	switch r.URL.Query().Get("prune") {
	case "", "1", "true":
		return true, nil
	case "0", "false":
		return false, nil
	default:
		return false, fmt.Errorf("bad prune parameter %q (want 0, 1, true, false)", r.URL.Query().Get("prune"))
	}
}

// handleRoute answers a point-to-point query, cheapest strategy first:
//
//  1. A cached full distance vector for the source answers the route by
//     tight-edge reconstruction alone — no solve, no solve slot.
//  2. Otherwise an early-terminated solve runs under the pool, with
//     goal-directed landmark pruning unless ?prune=0 opts out.
//  3. A backend without route support falls back to plain Path.
func (s *Server) handleRoute(w http.ResponseWriter, r *http.Request) {
	var req routeRequest
	if !decodeBody(w, r, &req) {
		return
	}
	e, src, ok := s.resolve(w, req.Graph, req.Source)
	if !ok {
		return
	}
	if req.Target < 0 || req.Target >= int64(e.Backend.NumVertices()) {
		s.fail(w, http.StatusBadRequest, "target %d out of range [0, %d)", req.Target, e.Backend.NumVertices())
		return
	}
	eng, perr := engineParam(r)
	if perr != nil {
		s.fail(w, http.StatusBadRequest, "%v", perr)
		return
	}
	prune, perr := pruneParam(r)
	if perr != nil {
		s.fail(w, http.StatusBadRequest, "%v", perr)
		return
	}
	dst := rs.Vertex(req.Target)
	resp := routeResponse{Graph: e.Name, Source: req.Source, Target: req.Target, Epoch: e.Epoch}

	// Cache-first: a full vector for this source already holds every
	// distance, and reconstruction is a cheap backward walk — answering
	// here keeps the solve pool free for real misses.
	if vr, ok := e.Backend.(VectorRouter); ok {
		if dist, hit := s.cache.Get(cacheKey{graph: e.Name, epoch: e.Epoch, src: int32(src)}); hit {
			path, d, err := vr.PathFromDistances(src, dst, dist)
			if err == nil {
				s.metrics.routeCacheHits.Inc()
				resp.Cached = true
				writeRoute(w, resp, path, d)
				return
			}
			// An unusable cached vector falls through to a real solve
			// rather than failing the request.
		}
	}

	ctx, cancel, cerr := s.requestCtx(r)
	if cerr != nil {
		s.fail(w, http.StatusBadRequest, "%v", cerr)
		return
	}
	defer cancel()
	if err := s.pool.acquire(ctx); err != nil {
		s.recordSolveError(err)
		s.failSolve(w, err, "route: %v", err)
		return
	}
	path, d, err := s.routeGuarded(ctx, e, src, dst, eng, prune, &resp)
	if err != nil {
		s.recordSolveError(err)
		s.failSolve(w, err, "route: %v", err)
		return
	}
	s.metrics.routeSolves.Inc()
	writeRoute(w, resp, path, d)
}

// routeGuarded runs one route solve under the pool slot (released on
// every path, panics included) with the same panic containment and
// context threading as solveGuarded.
func (s *Server) routeGuarded(ctx context.Context, e *Entry, src, dst rs.Vertex, eng rs.Engine, prune bool, resp *routeResponse) (path []rs.Vertex, d float64, err error) {
	defer s.pool.release()
	defer func() {
		if r := recover(); r != nil {
			s.metrics.solvePanics.Inc()
			if s.logger != nil {
				s.logger.Error("route panic", "graph", e.Name, "source", int64(src), "panic", fmt.Sprint(r))
			}
			path, d, err = nil, 0, fmt.Errorf("server: route panic: %v", r)
		}
	}()
	var st rs.Stats
	switch b := e.Backend.(type) {
	case ContextBackend:
		path, d, st, err = b.RouteCtx(ctx, src, dst, eng, prune)
	case RoutingBackend:
		path, d, st, err = b.Route(src, dst, eng, prune)
	default:
		path, d, err = e.Backend.Path(src, dst, eng)
	}
	if st.Pruned > 0 {
		s.metrics.routePruned.Add(st.Pruned)
		resp.Pruned = st.Pruned
	}
	return path, d, err
}

// writeRoute finishes a route response from the computed path.
func writeRoute(w http.ResponseWriter, resp routeResponse, path []rs.Vertex, d float64) {
	resp.Distance = finite(d)
	if len(path) > 0 {
		resp.Hops = len(path) - 1
		resp.Path = make([]int64, len(path))
		for i, v := range path {
			resp.Path[i] = int64(v)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !decodeBody(w, r, &req) {
		return
	}
	eng, perr := engineParam(r)
	if perr != nil {
		s.fail(w, http.StatusBadRequest, "%v", perr)
		return
	}
	e, ok := s.acquireEntry(w, req.Graph)
	if !ok {
		return
	}
	if len(req.Sources) == 0 {
		s.fail(w, http.StatusBadRequest, "batch needs at least one source")
		return
	}
	const maxBatch = 4096
	if len(req.Sources) > maxBatch {
		s.fail(w, http.StatusBadRequest, "batch of %d sources exceeds limit %d", len(req.Sources), maxBatch)
		return
	}
	n := e.Backend.NumVertices()
	for _, src := range req.Sources {
		if src < 0 || src >= int64(n) {
			s.fail(w, http.StatusBadRequest, "source %d out of range [0, %d)", src, n)
			return
		}
	}
	if !s.checkTargets(w, e, req.Targets) {
		return
	}
	s.metrics.batchSources.Add(int64(len(req.Sources)))
	ctx, cancel, cerr := s.requestCtx(r)
	if cerr != nil {
		s.fail(w, http.StatusBadRequest, "%v", cerr)
		return
	}
	defer cancel()

	// Source-level parallelism: each source runs the full cache →
	// coalescing → pool pipeline, so duplicates inside one batch
	// coalesce exactly like concurrent independent clients. Per-source
	// failures are embedded in a 200 batch response, invisible to the
	// middleware, so they count into the error family here.
	batchErrs := s.metrics.httpErrors.With("/v1/batch", "5xx")
	results := make([]distancesResponse, len(req.Sources))
	var wg sync.WaitGroup
	for i, src := range req.Sources {
		wg.Add(1)
		go func(i int, src int64) {
			defer wg.Done()
			var status int
			results[i], status = s.answerSource(ctx, e, rs.Vertex(src), req.TopK, req.Targets, eng)
			if status >= 400 {
				batchErrs.Inc()
			}
		}(i, src)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, batchResponse{Graph: e.Name, Results: results})
}

// --- helpers --------------------------------------------------------------

// resolve pins the graph's current epoch and validates the source
// vertex. The returned Entry is the request's epoch for its whole
// lifetime: cache lookups, coalescing, the solve, and the response all
// use it, so a concurrent reload never mixes epochs within a request.
func (s *Server) resolve(w http.ResponseWriter, graph string, source int64) (*Entry, rs.Vertex, bool) {
	e, ok := s.acquireEntry(w, graph)
	if !ok {
		return nil, 0, false
	}
	if source < 0 || source >= int64(e.Backend.NumVertices()) {
		s.fail(w, http.StatusBadRequest, "source %d out of range [0, %d)", source, e.Backend.NumVertices())
		return nil, 0, false
	}
	return e, rs.Vertex(source), true
}

// acquireEntry maps the registry's typed lifecycle errors onto HTTP:
// unknown → 404; cold/reloading → 503 + Retry-After (the reload runs
// in the background — the client retries instead of blocking a
// connection on a multi-second rebuild); never-loaded → 503 with the
// quarantine cause.
func (s *Server) acquireEntry(w http.ResponseWriter, graph string) (*Entry, bool) {
	e, err := s.registry.Acquire(graph)
	if err == nil {
		return e, true
	}
	switch {
	case errors.Is(err, ErrGraphUnknown):
		s.fail(w, http.StatusNotFound, "unknown graph %q", graph)
	case errors.Is(err, ErrGraphReloading):
		w.Header().Set("Retry-After", "1")
		s.fail(w, http.StatusServiceUnavailable, "graph %q is reloading, retry shortly", graph)
	default:
		s.fail(w, http.StatusServiceUnavailable, "%v", err)
	}
	return nil, false
}

// fail writes an error response; the instrumentation middleware counts
// it into the per-endpoint, per-status-class error family.
func (s *Server) fail(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request body: " + err.Error()})
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// finite maps +Inf (unreachable) to the JSON-safe sentinel -1.
func finite(d float64) float64 {
	if math.IsInf(d, 1) {
		return -1
	}
	return d
}

// nearestK returns the k closest reachable vertices, ties broken by id.
// A bounded max-heap keeps this O(n log k) with O(k) extra memory —
// cached hot sources answer top-k requests without an O(n log n) sort.
func nearestK(dist []float64, k int) []vertexDistance {
	if k <= 0 {
		return nil
	}
	// after reports whether a sorts after b (farther, or same distance
	// with a larger id); the heap keeps the "worst kept" entry at h[0].
	after := func(a, b vertexDistance) bool {
		if a.Distance != b.Distance {
			return a.Distance > b.Distance
		}
		return a.Vertex > b.Vertex
	}
	h := make([]vertexDistance, 0, k)
	siftDown := func() {
		i := 0
		for {
			l, r, worst := 2*i+1, 2*i+2, i
			if l < len(h) && after(h[l], h[worst]) {
				worst = l
			}
			if r < len(h) && after(h[r], h[worst]) {
				worst = r
			}
			if worst == i {
				return
			}
			h[i], h[worst] = h[worst], h[i]
			i = worst
		}
	}
	for v, d := range dist {
		if math.IsInf(d, 1) {
			continue
		}
		cand := vertexDistance{Vertex: int64(v), Distance: d}
		if len(h) < k {
			h = append(h, cand)
			for i := len(h) - 1; i > 0; {
				p := (i - 1) / 2
				if !after(h[i], h[p]) {
					break
				}
				h[i], h[p] = h[p], h[i]
				i = p
			}
		} else if after(h[0], cand) {
			h[0] = cand
			siftDown()
		}
	}
	sort.Slice(h, func(i, j int) bool { return after(h[j], h[i]) })
	return h
}
