package frontier

import "slices"

// Runs are sorted by Key ONLY: every consumer of run order
// (ExtractBelow's binary search, run merging, the rank-query gather) is
// set-semantic under key ties, so paying comparisons for a vertex-id
// tiebreak in the hottest loop would buy nothing. Min, the one query
// that must break ties lexicographically, scans the equal-key head
// prefix instead (see F.Min).

// lessKey orders entries by Key alone — the run order.
func lessKey(a, b Entry) bool { return a.Key < b.Key }

// cmpKey is lessKey as a three-way comparison for slices.SortFunc.
func cmpKey(a, b Entry) int {
	switch {
	case a.Key < b.Key:
		return -1
	case b.Key < a.Key:
		return 1
	default:
		return 0
	}
}

// sortEnts sorts ents ascending by Key: an inlined median-of-three
// quicksort with an insertion-sort base case and a depth limit that
// falls back to the generic sort. Sealing a run is the substrate's
// hottest operation (once per step), and the inlined field comparisons
// run a multiple faster than a func-valued generic sort while
// allocating nothing.
func sortEnts(e []Entry) {
	depth := 2
	for n := len(e); n > 0; n >>= 1 {
		depth += 2
	}
	quickEnts(e, depth)
}

// insertionThreshold is the partition size below which insertion sort
// takes over.
const insertionThreshold = 24

func quickEnts(e []Entry, depth int) {
	for len(e) > insertionThreshold {
		if depth == 0 {
			// Pathological pivot luck: hand off to the introspective
			// generic sort rather than going quadratic.
			slices.SortFunc(e, cmpKey)
			return
		}
		depth--
		p := med3(e[0], e[len(e)/2], e[len(e)-1]).Key
		i, j := 0, len(e)-1
		for i <= j {
			for e[i].Key < p {
				i++
			}
			for p < e[j].Key {
				j--
			}
			if i <= j {
				e[i], e[j] = e[j], e[i]
				i++
				j--
			}
		}
		// Recurse into the smaller partition, iterate on the larger, so
		// stack depth stays logarithmic.
		if j+1 < len(e)-i {
			quickEnts(e[:j+1], depth)
			e = e[i:]
		} else {
			quickEnts(e[i:], depth)
			e = e[:j+1]
		}
	}
	insertionEnts(e)
}

func insertionEnts(e []Entry) {
	for i := 1; i < len(e); i++ {
		x := e[i]
		j := i - 1
		for j >= 0 && x.Key < e[j].Key {
			e[j+1] = e[j]
			j--
		}
		e[j+1] = x
	}
}

func med3(a, b, c Entry) Entry {
	if a.Key < b.Key {
		switch {
		case b.Key < c.Key:
			return b
		case a.Key < c.Key:
			return c
		default:
			return a
		}
	}
	switch {
	case a.Key < c.Key:
		return a
	case b.Key < c.Key:
		return c
	default:
		return b
	}
}
