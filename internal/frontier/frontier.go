// Package frontier implements the flat, arena-backed ordered frontier
// that backs the paper's parallel engine (Algorithm 2) and the
// ρ-stepping engine: a lazy-batched priority multiset in the style of
// Dong et al., "Efficient Stepping Algorithms and Implementations for
// Parallel Shortest Paths" (2021), replacing the pointer-based ordered
// sets of internal/pset on the query hot path.
//
// The structure keeps its (key, vertex) entries in a small collection of
// distance-sorted runs plus one unsorted staging batch:
//
//   - Push records an insert or decrease-key lazily: one append to the
//     staging batch plus a per-vertex epoch bump that invalidates every
//     older entry for that vertex (stamp-based deduplication — stale
//     entries are never searched for, only skipped when met).
//   - Commit seals the staging batch into a new sorted run (the bulk
//     union of Algorithm 2), then restores the size-tiered run invariant
//     by merging the topmost runs; merges drop stale entries, so the
//     arena compacts itself as a side effect of ordinary operation.
//   - ExtractBelow(d) removes and returns every live vertex with
//     key <= d — Algorithm 2's split — touching only a binary search
//     plus the extracted prefix of each run.
//   - Min returns the smallest live (key, vertex), skipping dead run
//     heads permanently (lazy deletion, amortized O(1) per entry).
//   - SelectKth answers the ρ-th-smallest rank query of ρ-stepping
//     directly from the runs, replacing the ordered-set rank search.
//
// All storage is workspace-owned and grow-only: run buffers retire into
// a free arena on Reset and are reused by later solves, so a
// steady-state solve performs no allocations. Sorting and merging of
// large runs go through internal/parallel's sort/merge primitives; the
// rank-query scan parallelizes over run blocks. A frontier is not safe
// for concurrent use — per-worker staging happens upstream (the relax
// kernels' per-worker buffers), and batches arrive here already merged.
//
// internal/pset remains in the tree as the differential-testing oracle
// for this package: both expose the same extract/union/select semantics,
// and the property tests drive them with identical operation sequences.
package frontier

import (
	"math"
	"time"

	"radiusstep/internal/parallel"
)

// Entry is one frontier element: a vertex and the key it was filed
// under. E is the vertex's push epoch at filing time; an entry is live
// iff it carries the vertex's current epoch (older entries are stale and
// skipped wherever they surface). Keys must not be NaN.
type Entry struct {
	Key float64
	V   int32
	E   uint32
}

// lessEntry orders entries lexicographically by (Key, V), the same
// total order the pset engine used for its tree keys. It is the
// tie-breaking order of Min; run STORAGE order is by Key alone (see
// entrysort.go).
func lessEntry(a, b Entry) bool {
	return a.Key < b.Key || (a.Key == b.Key && a.V < b.V)
}

// Ops counts substrate operations for one solve — the observability
// hook surfaced through core.Stats, the engine-matrix benchmark rows,
// and the daemon's /v1/stats frontier section.
type Ops struct {
	// Pushes counts lazy insert/decrease-key records staged.
	Pushes int64 `json:"pushes"`
	// Batches counts staging batches sealed into sorted runs.
	Batches int64 `json:"batches"`
	// Merges counts run merges (the lazy batched union restoring the
	// size-tier invariant).
	Merges int64 `json:"merges"`
	// Extracted counts live entries removed by ExtractBelow.
	Extracted int64 `json:"extracted"`
	// Stale counts dead entries skipped or compacted away.
	Stale int64 `json:"stale"`
	// Selects counts rank queries served by SelectKth.
	Selects int64 `json:"selects"`

	// Phase timings, populated only when SetTiming(true) was called
	// (the solve-trace recorder enables it; untraced solves never read
	// the clock here). FilterNanos times Commit's stale-entry filter
	// pass, SortNanos the batch sort sealing a run, and MergeNanos the
	// size-tier run merges (including their compaction sweeps).
	FilterNanos int64 `json:"filterNanos,omitempty"`
	SortNanos   int64 `json:"sortNanos,omitempty"`
	MergeNanos  int64 `json:"mergeNanos,omitempty"`
}

// run is one distance-sorted slice of entries; start indexes the first
// unconsumed entry (extraction and head-skipping advance it, so the
// consumed prefix is never revisited).
type run struct {
	ents  []Entry
	start int
}

func (r *run) size() int { return len(r.ents) - r.start }

// sortParThreshold is the batch size above which sealing a run uses the
// parallel merge sort (below it, a zero-allocation sequential sort).
const sortParThreshold = 1 << 13

// mergeParThreshold is the combined size above which a run merge uses
// the parallel merge primitive.
const mergeParThreshold = 1 << 14

// selectGrain is the per-block work size of the parallel rank-query
// scan.
const selectGrain = 1 << 13

// filterParThreshold is the entry count above which Commit's stale
// filter and the merge-path compaction run as a parallel
// count–scan–scatter instead of a sequential sweep. Below it the
// sequential sweep wins: the filter is a predicated copy, cheap enough
// that a fork-join barrier costs more than the sweep.
const filterParThreshold = 1 << 13

// filterGrain is the per-block size of the parallel live filter.
const filterGrain = 1 << 12

// F is a flat ordered frontier over vertices [0, n). The zero value is
// NOT ready; obtain one from New and call Reset before each solve.
// Buffers are grow-only and reused across solves.
type F struct {
	// Per-vertex state. mark[v] == stamp means v is currently in the
	// frontier; epoch[v] is bumped by every push so older entries go
	// stale; cur[v] is the key of v's live entry (valid while marked).
	mark  []uint32
	epoch []uint32
	cur   []float64
	stamp uint32
	liveN int

	stage   []Entry // unsorted staging batch (pending bulk union)
	runs    []run   // size-tiered sorted runs, oldest first
	free    [][]Entry
	scratch []Entry // parallel-sort scratch, grow-only

	keys   []float64 // rank-query gather buffer
	counts []int64   // rank-query per-block offsets

	ops   Ops
	timed bool // record phase timings into ops (solve tracing only)
}

// New returns an empty frontier. Call Reset before use.
func New() *F { return &F{} }

// Reset prepares the frontier for a solve over n vertices: membership is
// cleared by advancing the solve stamp (no O(n) sweep), run buffers
// retire into the free arena for reuse, and the op counters restart.
func (f *F) Reset(n int) {
	f.mark = sizedU32(f.mark, n)
	f.epoch = sizedU32(f.epoch, n)
	f.cur = sizedF64(f.cur, n)
	if f.stamp == ^uint32(0) {
		parallel.Fill(f.mark, 0)
		f.stamp = 0
	}
	f.stamp++
	f.liveN = 0
	f.stage = f.stage[:0]
	for i := range f.runs {
		f.retire(f.runs[i].ents)
	}
	f.runs = f.runs[:0]
	f.ops = Ops{}
}

// Len reports the number of live vertices in the frontier.
func (f *F) Len() int { return f.liveN }

// Ops returns the operation counters accumulated since Reset.
func (f *F) Ops() Ops { return f.ops }

// SetTiming enables (or disables) phase timing: when on, Commit and the
// run merges stamp wall-clock boundaries into Ops' FilterNanos/
// SortNanos/MergeNanos. Off by default so untraced solves never read
// the clock on the commit path. Persists across Reset.
func (f *F) SetTiming(on bool) { f.timed = on }

// now reads the wall clock when timing is enabled; otherwise it returns
// the zero time and the paired elapsed() is never consulted.
func (f *F) now() time.Time {
	if !f.timed {
		return time.Time{}
	}
	return time.Now()
}

// addElapsed accumulates time since t0 into *dst when timing is on.
func (f *F) addElapsed(dst *int64, t0 time.Time) {
	if f.timed {
		*dst += time.Since(t0).Nanoseconds()
	}
}

// Contains reports whether v is live in the frontier.
func (f *F) Contains(v int32) bool { return f.mark[v] == f.stamp }

// Key returns v's current key; ok is false when v is not in the
// frontier.
func (f *F) Key(v int32) (key float64, ok bool) {
	if f.mark[v] != f.stamp {
		return 0, false
	}
	return f.cur[v], true
}

// Push inserts v with the given key, or moves it there if already
// present (both decrease- and increase-key are supported; the engines
// only ever decrease). The update is lazy: one staged entry plus an
// epoch bump that strands every older entry for v. Pushing a vertex at
// its current key is a no-op.
func (f *F) Push(v int32, key float64) {
	if f.mark[v] == f.stamp {
		if f.cur[v] == key {
			return
		}
	} else {
		f.mark[v] = f.stamp
		f.liveN++
	}
	f.cur[v] = key
	f.epoch[v]++
	f.stage = append(f.stage, Entry{Key: key, V: v, E: f.epoch[v]})
	f.ops.Pushes++
}

// Drop removes v from the frontier if present. Lazy: v's entries stay in
// place and are skipped as stale when met.
func (f *F) Drop(v int32) {
	if f.mark[v] == f.stamp {
		f.mark[v] = 0
		f.liveN--
	}
}

// live reports whether e is the current entry of its vertex.
func (f *F) live(e Entry) bool {
	return f.mark[e.V] == f.stamp && f.epoch[e.V] == e.E
}

// Commit seals the staging batch into a sorted run and restores the
// size-tier invariant (each run at least twice the size of the next
// newer one) by merging the topmost runs — the lazy bulk union. A
// no-op when nothing is staged. Queries (Min, ExtractBelow, SelectKth)
// self-commit, so calling Commit is an optimization, not a correctness
// requirement.
func (f *F) Commit() {
	if len(f.stage) == 0 {
		return
	}
	// Drop staged entries already superseded (re-pushed or dropped since
	// staging) before paying for the sort: with commits deferred across
	// a step's substeps, a vertex improved k times stages k entries but
	// only the last is live. Large batches filter in parallel, so the
	// commit path's formerly sequential prefix shrinks to the scan.
	t0 := f.now()
	var ents []Entry
	if len(f.stage) > filterParThreshold && parallel.Procs() > 1 {
		ents = f.filterLivePar(f.stage)
		f.stage = f.stage[:0]
	} else {
		w := 0
		for _, e := range f.stage {
			if f.live(e) {
				f.stage[w] = e
				w++
			} else {
				f.ops.Stale++
			}
		}
		ents = f.stage[:w]
		f.stage = f.takeBuf(cap(f.stage))[:0]
	}
	f.addElapsed(&f.ops.FilterNanos, t0)
	if len(ents) == 0 {
		f.retire(ents)
		return
	}
	t1 := f.now()
	f.sortEntries(ents)
	f.addElapsed(&f.ops.SortNanos, t1)
	f.runs = append(f.runs, run{ents: ents})
	f.ops.Batches++
	for len(f.runs) >= 2 && f.runs[len(f.runs)-2].size() < 2*f.runs[len(f.runs)-1].size() {
		f.mergeTopTwo()
	}
}

// sortEntries sorts ents by Key: a zero-allocation sequential sort for
// typical batch sizes, the parallel merge sort (with pooled scratch)
// for large ones.
func (f *F) sortEntries(ents []Entry) {
	if len(ents) > sortParThreshold && parallel.Procs() > 1 {
		if cap(f.scratch) < len(ents) {
			// Round up like takeBuf so a frontier that ramps across
			// steps reallocates the scratch O(log) times, not per seal.
			c := 2 * sortParThreshold
			for c < len(ents) {
				c <<= 1
			}
			f.scratch = make([]Entry, c)
		}
		parallel.SortScratch(ents, f.scratch[:cap(f.scratch)], lessKey)
		return
	}
	sortEnts(ents)
}

// mergeTopTwo merges the two newest runs into one, dropping stale
// entries (compaction) before the merge so the arena never accretes dead
// weight.
func (f *F) mergeTopTwo() {
	t0 := f.now()
	defer f.addElapsed(&f.ops.MergeNanos, t0)
	k := len(f.runs)
	a, b := &f.runs[k-2], &f.runs[k-1]
	f.compact(a)
	f.compact(b)
	la, lb := len(a.ents), len(b.ents)
	out := f.takeBuf(la + lb)[:la+lb]
	switch {
	case la == 0:
		copy(out, b.ents)
	case lb == 0:
		copy(out, a.ents)
	case la+lb > mergeParThreshold && parallel.Procs() > 1:
		parallel.Merge(a.ents, b.ents, out, lessKey)
	default:
		mergeEntries(a.ents, b.ents, out)
	}
	f.retire(a.ents)
	f.retire(b.ents)
	f.runs[k-2] = run{ents: out}
	f.runs = f.runs[:k-1]
	f.ops.Merges++
}

// compact rewrites r keeping only live entries, order preserved. Small
// runs sweep in place (the write index never catches the read index);
// large runs use the parallel live filter into an arena buffer, retiring
// the old one — this keeps the merge path's stale-dropping pass off the
// sequential critical section on big fringes.
func (f *F) compact(r *run) {
	if r.size() > filterParThreshold && parallel.Procs() > 1 {
		out := f.filterLivePar(r.ents[r.start:])
		f.retire(r.ents)
		r.ents = out
		r.start = 0
		return
	}
	w := 0
	for _, e := range r.ents[r.start:] {
		if f.live(e) {
			r.ents[w] = e
			w++
		} else {
			f.ops.Stale++
		}
	}
	r.ents = r.ents[:w]
	r.start = 0
}

// filterLivePar writes src's live entries, order preserved, into a
// buffer taken from the arena — a three-pass parallel pack mirroring
// packRun (per-block live counts, scan, scatter). An in-place parallel
// filter is impossible (block b's writes land inside earlier blocks'
// read ranges), hence the fresh destination; the source buffer remains
// the caller's to reuse or retire. Dropped entries are counted as stale.
func (f *F) filterLivePar(src []Entry) []Entry {
	nb := (len(src) + filterGrain - 1) / filterGrain
	if cap(f.counts) < nb+1 {
		f.counts = make([]int64, nb+1)
	}
	counts := f.counts[:nb]
	parallel.Blocks(nb, 1, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo, hi := b*filterGrain, (b+1)*filterGrain
			if hi > len(src) {
				hi = len(src)
			}
			var c int64
			for _, e := range src[lo:hi] {
				if f.live(e) {
					c++
				}
			}
			counts[b] = c
		}
	})
	total := parallel.ExclusiveScan(counts, counts)
	out := f.takeBuf(int(total))[:total]
	parallel.Blocks(nb, 1, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo, hi := b*filterGrain, (b+1)*filterGrain
			if hi > len(src) {
				hi = len(src)
			}
			pos := counts[b]
			for _, e := range src[lo:hi] {
				if f.live(e) {
					out[pos] = e
					pos++
				}
			}
		}
	})
	f.ops.Stale += int64(len(src)) - total
	return out
}

// mergeEntries is the sequential two-pointer merge of Key-sorted a and
// b into out (len(out) == len(a)+len(b)).
func mergeEntries(a, b, out []Entry) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if b[j].Key < a[i].Key {
			out[k] = b[j]
			j++
		} else {
			out[k] = a[i]
			i++
		}
		k++
	}
	copy(out[k:], a[i:])
	copy(out[k+len(a)-i:], b[j:])
}

// Min returns the smallest live (key, vertex) under (Key, V) order; ok
// is false when the frontier is empty. Stale run heads are skipped and
// permanently consumed, so finding each run's minimum KEY is O(runs)
// amortized; because runs are Key-sorted only, the vertex tiebreak
// scans the live head's equal-key prefix (typically a handful of
// entries — all keys equal, as on unweighted graphs, degrades this to a
// run scan, the same class as the rank query that accompanies it).
func (f *F) Min() (e Entry, ok bool) {
	f.Commit()
	if f.liveN == 0 {
		return Entry{}, false
	}
	best := Entry{Key: math.Inf(1), V: -1}
	for i := range f.runs {
		r := &f.runs[i]
		for r.start < len(r.ents) && !f.live(r.ents[r.start]) {
			r.start++
			f.ops.Stale++
		}
		if r.start == len(r.ents) {
			continue
		}
		h := r.ents[r.start]
		for j := r.start + 1; j < len(r.ents) && r.ents[j].Key == h.Key; j++ {
			if c := r.ents[j]; c.V < h.V && f.live(c) {
				h = c
			}
		}
		if lessEntry(h, best) || best.V < 0 {
			best = h
		}
	}
	return best, best.V >= 0
}

// Head returns a live entry with the minimum key, ties broken
// arbitrarily (whichever run head wins); ok is false when the frontier
// is empty. Unlike Min it never scans an equal-key prefix for the
// vertex tiebreak, so it is O(runs) amortized even when every key is
// equal — use it when any minimum-key witness will do (the ρ-stepping
// lead vertex).
func (f *F) Head() (e Entry, ok bool) {
	f.Commit()
	if f.liveN == 0 {
		return Entry{}, false
	}
	best := Entry{Key: math.Inf(1), V: -1}
	for i := range f.runs {
		r := &f.runs[i]
		for r.start < len(r.ents) && !f.live(r.ents[r.start]) {
			r.start++
			f.ops.Stale++
		}
		if r.start == len(r.ents) {
			continue
		}
		if h := r.ents[r.start]; h.Key < best.Key || best.V < 0 {
			best = h
		}
	}
	return best, best.V >= 0
}

// MinShifted returns the live vertex minimizing Key + shift[V] (ties
// broken toward the smaller vertex id) and that minimum; ok is false
// when the frontier is empty. This is the radius-stepping target rule
// d_i = min δ(v)+r(v) answered directly from the runs: Algorithm 2's R
// set exists only to serve this query, so the flat substrate replaces
// the second ordered set with one stale-skipping reduction over Q.
// Unlike Min, the scan cannot exploit run order (the shift reorders
// entries), so it touches every entry; radius-stepping keeps steps few
// precisely so this per-step cost stays small.
func (f *F) MinShifted(shift []float64) (v int32, val float64, ok bool) {
	f.Commit()
	if f.liveN == 0 {
		return -1, 0, false
	}
	best, bestV := math.Inf(1), int32(-1)
	for i := range f.runs {
		r := &f.runs[i]
		for _, e := range r.ents[r.start:] {
			if !f.live(e) {
				continue
			}
			s := e.Key + shift[e.V]
			if s < best || (s == best && (bestV < 0 || e.V < bestV)) {
				best, bestV = s, e.V
			}
		}
	}
	return bestV, best, bestV >= 0
}

// ExtractBelow removes every live vertex with key <= threshold from the
// frontier, appending them to dst — the split of Algorithm 2 (line 7).
// Only a binary search plus the extracted prefix of each run is touched;
// extraction order is per-run ascending, not globally sorted.
func (f *F) ExtractBelow(threshold float64, dst []int32) []int32 {
	f.Commit()
	w := 0
	for i := range f.runs {
		r := &f.runs[i]
		ents := r.ents
		// First index past the threshold (entries are Key-sorted).
		lo, hi := r.start, len(ents)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if ents[mid].Key <= threshold {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		for j := r.start; j < lo; j++ {
			e := ents[j]
			if f.live(e) {
				f.mark[e.V] = 0
				f.liveN--
				f.ops.Extracted++
				dst = append(dst, e.V)
			} else {
				f.ops.Stale++
			}
		}
		r.start = lo
		if r.start == len(ents) {
			f.retire(ents)
		} else {
			f.runs[w] = *r
			w++
		}
	}
	f.runs = f.runs[:w]
	return dst
}

// takeBuf returns a retired buffer with capacity >= n (length 0), or
// allocates one. The free arena is scanned newest-first; fits are the
// common case once sizes stabilize, making steady-state solves
// allocation-free.
func (f *F) takeBuf(n int) []Entry {
	for i := len(f.free) - 1; i >= 0; i-- {
		if cap(f.free[i]) >= n {
			buf := f.free[i]
			last := len(f.free) - 1
			f.free[i] = f.free[last]
			f.free[last] = nil
			f.free = f.free[:last]
			return buf[:0]
		}
	}
	c := 64
	for c < n {
		c <<= 1
	}
	return make([]Entry, 0, c)
}

// retire returns a run buffer to the free arena for reuse.
func (f *F) retire(buf []Entry) {
	f.free = append(f.free, buf[:0])
}

func sizedU32(s []uint32, n int) []uint32 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]uint32, n)
}

func sizedF64(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n)
}
