package frontier

import (
	"fmt"
	"math/rand"
	"testing"
)

// The four substrate operations benchmarked across four decades of
// frontier size — the CI perf-smoke sweep runs each once (-benchtime 1x)
// so regressions that break compilation or explode complexity surface
// early; timings are compared on a quiet box via radius-bench.

func benchSizes() []int { return []int{1_000, 10_000, 100_000, 1_000_000} }

func benchKeys(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]float64, n)
	for i := range keys {
		keys[i] = float64(rng.Intn(1 << 20))
	}
	return keys
}

func buildFrontier(f *F, keys []float64) {
	f.Reset(len(keys))
	for v, k := range keys {
		f.Push(int32(v), k)
	}
	f.Commit()
}

// BenchmarkBuild measures bulk build: n pushes sealed into runs.
func BenchmarkBuild(b *testing.B) {
	for _, n := range benchSizes() {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			f := New()
			keys := benchKeys(n, 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buildFrontier(f, keys)
			}
		})
	}
}

// BenchmarkExtract measures the split: draining a built frontier with
// 16 ascending thresholds.
func BenchmarkExtract(b *testing.B) {
	for _, n := range benchSizes() {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			f := New()
			keys := benchKeys(n, 2)
			var buf []int32
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				buildFrontier(f, keys)
				b.StartTimer()
				for t := 1; t <= 16; t++ {
					buf = f.ExtractBelow(float64(t)*float64(1<<16), buf[:0])
				}
			}
		})
	}
}

// BenchmarkUnion measures the lazy batched union: 16 incremental
// batches of n/16 decrease-keys committed into an n-entry frontier.
func BenchmarkUnion(b *testing.B) {
	for _, n := range benchSizes() {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			f := New()
			keys := benchKeys(n, 3)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				buildFrontier(f, keys)
				b.StartTimer()
				batch := n / 16
				if batch == 0 {
					batch = 1
				}
				for lo := 0; lo < n; lo += batch {
					hi := lo + batch
					if hi > n {
						hi = n
					}
					for v := lo; v < hi; v++ {
						f.Push(int32(v), keys[v]/2)
					}
					f.Commit()
				}
			}
		})
	}
}

// BenchmarkSelect measures the rank query serving the ρ-stepping quota
// rule: 16 SelectKth calls at spread ranks on a built frontier.
func BenchmarkSelect(b *testing.B) {
	for _, n := range benchSizes() {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			f := New()
			buildFrontier(f, benchKeys(n, 4))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for t := 1; t <= 16; t++ {
					_ = f.SelectKth(t * f.Len() / 17)
				}
			}
		})
	}
}
