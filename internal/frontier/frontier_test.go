package frontier

import (
	"math/rand"
	"runtime"
	"sort"
	"testing"
)

func TestPushMinExtractBasics(t *testing.T) {
	f := New()
	f.Reset(10)
	if _, ok := f.Min(); ok {
		t.Fatal("Min on empty frontier reported ok")
	}
	f.Push(3, 5)
	f.Push(7, 2)
	f.Push(1, 9)
	if f.Len() != 3 {
		t.Fatalf("Len = %d, want 3", f.Len())
	}
	if mn, ok := f.Min(); !ok || mn.V != 7 || mn.Key != 2 {
		t.Fatalf("Min = %+v ok=%v, want (2, 7)", mn, ok)
	}
	// Decrease-key: vertex 1 moves to the front.
	f.Push(1, 1)
	if mn, ok := f.Min(); !ok || mn.V != 1 || mn.Key != 1 {
		t.Fatalf("Min after decrease = %+v ok=%v, want (1, 1)", mn, ok)
	}
	got := f.ExtractBelow(2, nil)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if len(got) != 2 || got[0] != 1 || got[1] != 7 {
		t.Fatalf("ExtractBelow(2) = %v, want [1 7]", got)
	}
	if f.Len() != 1 {
		t.Fatalf("Len after extract = %d, want 1", f.Len())
	}
	if k, ok := f.Key(3); !ok || k != 5 {
		t.Fatalf("Key(3) = %v ok=%v, want 5", k, ok)
	}
	f.Drop(3)
	if f.Len() != 0 || f.Contains(3) {
		t.Fatal("Drop(3) left the frontier non-empty")
	}
	if _, ok := f.Min(); ok {
		t.Fatal("Min after final drop reported ok")
	}
}

// TestDropRepushSameKey is the stale-duplicate regression: dropping a
// vertex and re-pushing it at the SAME key must leave exactly one live
// entry, even though an identical (key, vertex) pair survives inside an
// older run. The epoch stamp, not the key value, decides liveness.
func TestDropRepushSameKey(t *testing.T) {
	f := New()
	f.Reset(4)
	f.Push(2, 5)
	f.Commit() // seal (5, 2) into a run
	f.Drop(2)
	f.Push(2, 5) // same key, new epoch
	if f.Len() != 1 {
		t.Fatalf("Len = %d, want 1", f.Len())
	}
	got := f.ExtractBelow(10, nil)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("ExtractBelow = %v, want exactly [2]", got)
	}
	if f.Len() != 0 {
		t.Fatalf("Len after extract = %d, want 0", f.Len())
	}
	// The rank query must count the vertex once, too.
	f.Push(1, 3)
	f.Commit()
	f.Drop(1)
	f.Push(1, 3)
	f.Push(3, 4)
	if d := f.SelectKth(2); d != 4 {
		t.Fatalf("SelectKth(2) = %v, want 4 (duplicate live entry counted twice?)", d)
	}
}

// TestResetIsolatesSolves: entries from a previous solve must never leak
// into the next one, across shrinking and growing vertex counts.
func TestResetIsolatesSolves(t *testing.T) {
	f := New()
	f.Reset(8)
	for v := int32(0); v < 8; v++ {
		f.Push(v, float64(v))
	}
	f.Commit()
	f.Reset(4)
	if f.Len() != 0 {
		t.Fatalf("Len after Reset = %d", f.Len())
	}
	if _, ok := f.Min(); ok {
		t.Fatal("Min after Reset reported ok")
	}
	f.Push(2, 1)
	if got := f.ExtractBelow(100, nil); len(got) != 1 || got[0] != 2 {
		t.Fatalf("extract after reset = %v, want [2]", got)
	}
}

// TestSelectKth ports the quickselect test from internal/core: the k-th
// smallest live key must match a sorted oracle under heavy ties, with
// runs and staging in arbitrary interleavings.
func TestSelectKth(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(60)
		f := New()
		f.Reset(n)
		keys := make([]float64, n)
		for v := 0; v < n; v++ {
			keys[v] = float64(rng.Intn(10)) // heavy ties
			f.Push(int32(v), keys[v])
			if rng.Intn(4) == 0 {
				f.Commit() // scatter entries across several runs
			}
		}
		sorted := append([]float64(nil), keys...)
		sort.Float64s(sorted)
		k := 1 + rng.Intn(n)
		if got := f.SelectKth(k); got != sorted[k-1] {
			t.Fatalf("trial %d: SelectKth(%d) = %v, want %v (keys %v)", trial, k, got, sorted[k-1], keys)
		}
	}
}

// TestSortEnts pins the inlined run sort against the generic sort on
// adversarial shapes: random, heavy ties, sorted, reversed, organ-pipe.
func TestSortEnts(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	shapes := []func(i, n int) Entry{
		func(i, n int) Entry { return Entry{Key: float64(rng.Intn(1 << 20)), V: int32(i)} },
		func(i, n int) Entry { return Entry{Key: float64(rng.Intn(3)), V: int32(rng.Intn(8))} },
		func(i, n int) Entry { return Entry{Key: float64(i), V: int32(i)} },
		func(i, n int) Entry { return Entry{Key: float64(n - i), V: int32(i)} },
		func(i, n int) Entry {
			if i < n/2 {
				return Entry{Key: float64(i), V: int32(i)}
			}
			return Entry{Key: float64(n - i), V: int32(i)}
		},
	}
	for si, shape := range shapes {
		for _, n := range []int{0, 1, 2, insertionThreshold, 100, 5000} {
			ents := make([]Entry, n)
			for i := range ents {
				ents[i] = shape(i, n)
			}
			want := append([]Entry(nil), ents...)
			sort.Slice(want, func(a, b int) bool { return want[a].Key < want[b].Key })
			sortEnts(ents)
			// Runs are Key-sorted only; tie order among equal keys is
			// unspecified, so assert the key sequence (which, with the
			// multiset preserved by in-place sorting, pins correctness).
			for i := range ents {
				if ents[i].Key != want[i].Key {
					t.Fatalf("shape %d n=%d: key order broken at %d: %+v", si, n, i, ents[i])
				}
			}
		}
	}
}

// TestSteadyStateZeroAllocs is the substrate's own allocation contract:
// after a warm-up solve has grown every buffer, a full
// push/commit/min/extract/select cycle allocates nothing.
func TestSteadyStateZeroAllocs(t *testing.T) {
	const n = 512
	f := New()
	var buf []int32
	cycle := func() {
		f.Reset(n)
		for v := int32(0); v < n; v++ {
			f.Push(v, float64((v*37)%101))
		}
		f.Commit()
		for f.Len() > 0 {
			k := f.Len()
			if k > 32 {
				k = 32
			}
			d := f.SelectKth(k)
			if mn, ok := f.Min(); !ok || mn.Key > d {
				t.Fatalf("Min %v inconsistent with SelectKth %v", mn, d)
			}
			buf = f.ExtractBelow(d, buf[:0])
			// Push a shrinking tail back above the threshold to exercise
			// decrease-key staleness, union, and run merging; extraction
			// outpaces re-insertion, so the loop terminates.
			for i, v := range buf {
				if i%3 == 0 && d < 90 {
					f.Push(v, d+1+float64(i%7))
				}
			}
			f.Commit()
		}
	}
	cycle() // warm: grow buffers, arena, gather scratch
	cycle()
	allocs := testing.AllocsPerRun(20, cycle)
	if allocs > 0 {
		t.Fatalf("steady-state cycle allocates %v objects, want 0", allocs)
	}
}

// TestParallelCommitLargeBatch forces the parallel filter and compact
// paths (batches above filterParThreshold at GOMAXPROCS >= 2) with a
// heavy stale load — every vertex is pushed three times at decreasing
// keys and a third are dropped before commit — then verifies extraction
// order-insensitively against a sequential model. Run under -race by CI.
func TestParallelCommitLargeBatch(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	const n = 3 * filterParThreshold
	rng := rand.New(rand.NewSource(42))
	f := New()
	f.Reset(n)
	want := make(map[int32]float64)
	for v := int32(0); v < n; v++ {
		k := rng.Float64() * 1000
		// Three pushes per vertex: the two higher keys go stale.
		f.Push(v, k+20)
		f.Push(v, k+10)
		f.Push(v, k)
		want[v] = k
	}
	for v := int32(0); v < n; v += 3 {
		f.Drop(v)
		delete(want, v)
	}
	f.Commit()
	if f.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", f.Len(), len(want))
	}
	// Several staged rounds force tier merges over large runs, which
	// drives the parallel compact inside mergeTopTwo.
	for round := 0; round < 4; round++ {
		for v := int32(1); v < n; v += 4 {
			if k, ok := want[v]; ok {
				f.Push(v, k-float64(round+1))
				want[v] = k - float64(round+1)
			}
		}
		f.Commit()
	}
	got := f.ExtractBelow(500, nil)
	for _, v := range got {
		k, ok := want[v]
		if !ok {
			t.Fatalf("extracted vertex %d not live in model", v)
		}
		if k > 500 {
			t.Fatalf("extracted vertex %d with model key %v > threshold", v, k)
		}
		delete(want, v)
	}
	for v, k := range want {
		if k <= 500 {
			t.Fatalf("vertex %d (key %v) should have been extracted", v, k)
		}
	}
}
