package frontier

import (
	"slices"

	"radiusstep/internal/parallel"
)

// SelectKth returns the k-th smallest (1-based) live key in the
// frontier, the rank query behind the ρ-stepping quota rule — d_i is
// the ρ-th smallest tentative distance. k is clamped to [1, Len()];
// calling it on an empty frontier panics. The live keys are gathered
// from the runs (block-parallel for large frontiers) and selected with
// an in-place quickselect, replacing the O(log n)-pointer-chase rank
// search of the ordered-set substrate with two cache-friendly passes.
func (f *F) SelectKth(k int) float64 {
	f.Commit()
	if f.liveN == 0 {
		panic("frontier: SelectKth on empty frontier")
	}
	if k < 1 {
		k = 1
	}
	if k > f.liveN {
		k = f.liveN
	}
	f.ops.Selects++
	keys := f.gatherLiveKeys()
	return nthSmallest(keys, k)
}

// gatherLiveKeys collects the keys of every live entry into the pooled
// gather buffer. Small runs append sequentially; a large run is packed
// with a block count / exclusive scan / scatter pass over pooled
// buffers, so the scan parallelizes without allocating.
func (f *F) gatherLiveKeys() []float64 {
	keys := f.keys[:0]
	for i := range f.runs {
		r := &f.runs[i]
		ents := r.ents[r.start:]
		if len(ents) > selectGrain && parallel.Procs() > 1 {
			keys = f.packRun(ents, keys)
			continue
		}
		for _, e := range ents {
			if f.live(e) {
				keys = append(keys, e.Key)
			}
		}
	}
	f.keys = keys
	return keys
}

// packRun appends the live keys of ents to keys with a three-pass
// parallel pack: per-block live counts, an exclusive scan into offsets,
// then a parallel scatter.
func (f *F) packRun(ents []Entry, keys []float64) []float64 {
	nb := (len(ents) + selectGrain - 1) / selectGrain
	if cap(f.counts) < nb {
		f.counts = make([]int64, nb)
	}
	counts := f.counts[:nb]
	parallel.Blocks(nb, 1, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo, hi := b*selectGrain, (b+1)*selectGrain
			if hi > len(ents) {
				hi = len(ents)
			}
			var c int64
			for _, e := range ents[lo:hi] {
				if f.live(e) {
					c++
				}
			}
			counts[b] = c
		}
	})
	total := parallel.ExclusiveScan(counts, counts)
	base := len(keys)
	keys = slices.Grow(keys, int(total))[:base+int(total)]
	parallel.Blocks(nb, 1, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo, hi := b*selectGrain, (b+1)*selectGrain
			if hi > len(ents) {
				hi = len(ents)
			}
			pos := base + int(counts[b])
			for _, e := range ents[lo:hi] {
				if f.live(e) {
					keys[pos] = e.Key
					pos++
				}
			}
		}
	})
	return keys
}

// nthSmallest returns the k-th smallest (1-based, 1 <= k <= len) element
// of keys, partially reordering the slice (Hoare quickselect).
func nthSmallest(keys []float64, k int) float64 {
	t := k - 1
	lo, hi := 0, len(keys)-1
	for lo < hi {
		pivot := keys[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for keys[i] < pivot {
				i++
			}
			for keys[j] > pivot {
				j--
			}
			if i <= j {
				keys[i], keys[j] = keys[j], keys[i]
				i++
				j--
			}
		}
		switch {
		case t <= j:
			hi = j
		case t >= i:
			lo = i
		default:
			return keys[t]
		}
	}
	return keys[t]
}
