package frontier

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"radiusstep/internal/pset"
)

// The differential oracle: internal/pset's join-based ordered set — the
// paper's §2/§3.3 substrate, and the structure the flat frontier
// replaced on the hot path — driven with the exact same operation
// sequences. dv and its order/hash are the key type the pset engine
// used before the rewire.

type dv struct {
	d float64
	v int32
}

func dvLess(a, b dv) bool { return a.d < b.d || (a.d == b.d && a.v < b.v) }

func dvHash(k dv) uint64 {
	return pset.Splitmix64(math.Float64bits(k.d) ^ uint64(uint32(k.v))*0x9e3779b97f4a7c15)
}

// oracle mirrors F's semantics on a pset tree: one live (key, vertex)
// pair per member vertex, explicit delete-then-insert for moves.
type oracle struct {
	set *pset.Set[dv]
	cur map[int32]float64
}

func newOracle() *oracle {
	return &oracle{set: pset.New(dvLess, dvHash), cur: make(map[int32]float64)}
}

func (o *oracle) push(v int32, key float64) {
	if old, ok := o.cur[v]; ok {
		if old == key {
			return
		}
		o.set.Delete(dv{old, v})
	}
	o.set.Insert(dv{key, v})
	o.cur[v] = key
}

func (o *oracle) drop(v int32) {
	if old, ok := o.cur[v]; ok {
		o.set.Delete(dv{old, v})
		delete(o.cur, v)
	}
}

func (o *oracle) min() (dv, bool) { return o.set.Min() }

// extractBelow is Algorithm 2's split on the tree: every key <= d. The
// result is canonicalized to ascending vertex order for set comparison.
func (o *oracle) extractBelow(d float64) []int32 {
	aset := o.set.SplitLE(dv{d, math.MaxInt32})
	var out []int32
	for _, k := range aset.Slice() {
		out = append(out, k.v)
		delete(o.cur, k.v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// selectKth is the tree rank query frontier.SelectKth replaces.
func (o *oracle) selectKth(k int) float64 {
	e, ok := o.set.At(k - 1)
	if !ok {
		panic("oracle: rank out of range")
	}
	return e.d
}

// minShifted is the radius target rule d = min key+shift[v] (ties to
// the smaller vertex) computed the slow, obviously-correct way.
func (o *oracle) minShifted(shift []float64) (int32, float64, bool) {
	bestV, best := int32(-1), math.Inf(1)
	for v, key := range o.cur {
		s := key + shift[v]
		if s < best || (s == best && (bestV < 0 || v < bestV)) {
			bestV, best = v, s
		}
	}
	return bestV, best, bestV >= 0
}

// checkStep runs one random operation on both structures and compares
// every observable: length, minimum, extracted sets, rank queries.
func checkStep(t *testing.T, rng *rand.Rand, f *F, o *oracle, n int, shift []float64, buf *[]int32) {
	t.Helper()
	switch op := rng.Intn(11); {
	case op < 4: // push / decrease-key / re-key
		v := int32(rng.Intn(n))
		key := float64(rng.Intn(32))
		f.Push(v, key)
		o.push(v, key)
	case op < 6: // drop
		v := int32(rng.Intn(n))
		f.Drop(v)
		o.drop(v)
	case op == 6: // commit (seal a run; oracle is always committed)
		f.Commit()
	case op == 7: // extract
		d := float64(rng.Intn(34) - 1)
		*buf = f.ExtractBelow(d, (*buf)[:0])
		got := append([]int32(nil), *buf...)
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		want := o.extractBelow(d)
		if len(got) != len(want) {
			t.Fatalf("ExtractBelow(%v): %v vs oracle %v", d, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("ExtractBelow(%v): %v vs oracle %v", d, got, want)
			}
		}
	case op == 8: // min (exact) + head (key-witness only)
		gm, gok := f.Min()
		wm, wok := o.min()
		if gok != wok || (gok && (gm.Key != wm.d || gm.V != wm.v)) {
			t.Fatalf("Min: (%v,%v,%v) vs oracle (%v,%v,%v)", gm.Key, gm.V, gok, wm.d, wm.v, wok)
		}
		gh, hok := f.Head()
		if hok != wok || (hok && gh.Key != wm.d) {
			t.Fatalf("Head: (%v,%v) vs oracle min key (%v,%v)", gh.Key, hok, wm.d, wok)
		}
		if hok {
			if k, live := f.Key(gh.V); !live || k != gh.Key {
				t.Fatalf("Head witness (%v,%v) is not a live entry", gh.Key, gh.V)
			}
		}
	case op == 9: // rank query
		if f.Len() == 0 {
			return
		}
		k := 1 + rng.Intn(f.Len())
		if got, want := f.SelectKth(k), o.selectKth(k); got != want {
			t.Fatalf("SelectKth(%d): %v vs oracle %v", k, got, want)
		}
	default: // shifted minimum (the radius target rule)
		gv, gd, gok := f.MinShifted(shift)
		wv, wd, wok := o.minShifted(shift)
		if gok != wok || gv != wv || (gok && gd != wd) {
			t.Fatalf("MinShifted: (%v,%v,%v) vs oracle (%v,%v,%v)", gv, gd, gok, wv, wd, wok)
		}
	}
	if f.Len() != o.set.Len() {
		t.Fatalf("Len: %d vs oracle %d", f.Len(), o.set.Len())
	}
}

// TestDifferentialVsPset drives the flat frontier and the ordered-set
// oracle with identical random extract/union/ρ-select sequences — the
// results must be byte-identical (integer keys make every float exact).
// CI runs this under -race alongside the engine equivalence tests.
func TestDifferentialVsPset(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) * 6364136223846793005))
		n := 4 + rng.Intn(60)
		f := New()
		f.Reset(n)
		o := newOracle()
		shift := make([]float64, n)
		for v := range shift {
			shift[v] = float64(rng.Intn(6))
		}
		var buf []int32
		steps := 200 + rng.Intn(400)
		for s := 0; s < steps; s++ {
			checkStep(t, rng, f, o, n, shift, &buf)
		}
		// Drain both and compare the tails.
		got := f.ExtractBelow(math.Inf(1), buf[:0])
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		want := o.extractBelow(math.Inf(1))
		if len(got) != len(want) {
			t.Fatalf("trial %d drain: %v vs %v", trial, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d drain: %v vs %v", trial, got, want)
			}
		}
	}
}

// FuzzFrontierVsPset feeds byte-string-driven operation sequences to
// both structures. Each pair of bytes is one operation; every query
// result must match the oracle exactly.
func FuzzFrontierVsPset(f *testing.F) {
	f.Add([]byte{0x00, 0x05, 0x13, 0x07, 0x46, 0x00, 0x63, 0x01})
	f.Add([]byte{0x20, 0x1f, 0x81, 0x10, 0x42, 0x33, 0xa5, 0x00, 0x64, 0x09})
	f.Add([]byte{0xff, 0x00, 0x00, 0xff, 0x81, 0x81, 0x42, 0x42, 0x63})
	f.Fuzz(func(t *testing.T, data []byte) {
		const n = 32
		fr := New()
		fr.Reset(n)
		o := newOracle()
		shift := make([]float64, n)
		for v := range shift {
			shift[v] = float64(v % 5)
		}
		var buf []int32
		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i], data[i+1]
			switch op % 6 {
			case 0, 1: // push: vertex from op's high bits, key from arg
				v := int32(op>>3) % n
				key := float64(arg % 24)
				fr.Push(v, key)
				o.push(v, key)
			case 2: // drop
				v := int32(arg) % n
				fr.Drop(v)
				o.drop(v)
			case 3: // commit
				fr.Commit()
			case 4: // extract below
				d := float64(arg % 26)
				buf = fr.ExtractBelow(d, buf[:0])
				got := append([]int32(nil), buf...)
				sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
				want := o.extractBelow(d)
				if len(got) != len(want) {
					t.Fatalf("op %d ExtractBelow(%v): %v vs %v", i, d, got, want)
				}
				for j := range got {
					if got[j] != want[j] {
						t.Fatalf("op %d ExtractBelow(%v): %v vs %v", i, d, got, want)
					}
				}
			default: // min + shifted min + rank query
				gm, gok := fr.Min()
				wm, wok := o.min()
				if gok != wok || (gok && (gm.Key != wm.d || gm.V != wm.v)) {
					t.Fatalf("op %d Min mismatch", i)
				}
				gv, gd, gsok := fr.MinShifted(shift)
				wv, wd, wsok := o.minShifted(shift)
				if gsok != wsok || gv != wv || (gsok && gd != wd) {
					t.Fatalf("op %d MinShifted: (%v,%v,%v) vs (%v,%v,%v)", i, gv, gd, gsok, wv, wd, wsok)
				}
				if fr.Len() > 0 {
					k := 1 + int(arg)%fr.Len()
					if got, want := fr.SelectKth(k), o.selectKth(k); got != want {
						t.Fatalf("op %d SelectKth(%d): %v vs %v", i, k, got, want)
					}
				}
			}
			if fr.Len() != o.set.Len() {
				t.Fatalf("op %d Len: %d vs %d", i, fr.Len(), o.set.Len())
			}
		}
	})
}
