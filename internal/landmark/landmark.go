// Package landmark implements ALT-style (A*, Landmarks, Triangle
// inequality) lower bounds for goal-directed shortest-path queries.
//
// A landmark L is a vertex whose full single-source distance vector
// d(L, ·) is precomputed. On an undirected graph the triangle
// inequality gives, for any vertices v and t,
//
//	|d(L, v) − d(L, t)| <= d(v, t) <= d(L, v) + d(L, t)
//
// so a Set of k landmarks serves an admissible lower bound
// LowerBound(v, t) = max_L |d(L,v) − d(L,t)| (the goal-direction hook
// fed to core.Params.Bound) and an a-priori upper bound Estimate(s, t)
// = min_L d(L,s) + d(L,t) (the bound that primes pruning before any
// relaxation reaches the target).
//
// Distance vectors are stored in one flat vertex-major matrix —
// dist[v*k+i] holds d(landmark i, v) — so the per-vertex bound query
// the relax hot path issues reads k contiguous float64s. A Set is
// immutable after construction; adding a landmark (With) copies into a
// wider matrix, which makes a Set safe to publish via atomic pointer
// and read from any number of concurrent solves.
//
// Infinite entries are meaningful: d(L,v) = +Inf means v is outside
// L's component. One-sided infinity certifies v and t are in different
// components (LowerBound = +Inf, itself admissible); double-sided
// infinity says nothing (contributes 0). All finite bounds are shrunk
// by a relative safety margin (slack) so that accumulated float64
// rounding in the solver's path sums can never make an admissible real
// bound inadmissible in floating point — the property the byte-
// identical pruning guarantee rests on.
package landmark

import (
	"fmt"
	"math"

	"radiusstep/internal/graph"
)

// slack is the relative admissibility margin: lower bounds are shrunk
// and upper bounds inflated by this fraction of their magnitude. Path
// sums in the solver accumulate at most one float64 rounding (2^-53
// relative) per edge, so any path shorter than ~2^23 edges stays well
// inside 1e-9 relative error; the margin makes the triangle-inequality
// comparisons immune to that noise while costing a vanishing amount of
// pruning power. Integer-weighted graphs (the committed workloads) are
// exact anyway — there the margin only widens comparisons that were
// never tight.
const slack = 1e-9

// MaxLandmarks caps a Set's size: bound queries cost O(k) on the relax
// hot path, and past a few dozen landmarks the extra pruning power no
// longer pays for the scan.
const MaxLandmarks = 64

// Set is an immutable ALT landmark index over a graph with n vertices.
// The zero value is unusable; build one with New, FromRows, or With.
type Set struct {
	n     int
	verts []graph.V // landmark ids, in insertion order
	dist  []float64 // vertex-major: dist[v*k+i] = d(verts[i], v)
}

// New returns an empty landmark set for an n-vertex graph. An empty
// set answers LowerBound 0 and Estimate +Inf (no information).
func New(n int) (*Set, error) {
	if n < 0 {
		return nil, fmt.Errorf("landmark: negative vertex count %d", n)
	}
	return &Set{n: n}, nil
}

// K reports the number of landmarks; nil-safe (a nil Set has none).
func (s *Set) K() int {
	if s == nil {
		return 0
	}
	return len(s.verts)
}

// N reports the vertex count the set was built for.
func (s *Set) N() int {
	if s == nil {
		return 0
	}
	return s.n
}

// Vertices returns a copy of the landmark ids in insertion order.
func (s *Set) Vertices() []graph.V {
	if s == nil || len(s.verts) == 0 {
		return nil
	}
	out := make([]graph.V, len(s.verts))
	copy(out, s.verts)
	return out
}

// Has reports whether v is already a landmark.
func (s *Set) Has(v graph.V) bool {
	if s == nil {
		return false
	}
	for _, l := range s.verts {
		if l == v {
			return true
		}
	}
	return false
}

// checkVector validates one landmark candidate against the set's
// shape: vertex in range, not already present, vector of length n with
// no negative or NaN entries (+Inf marks other components and is
// fine), and d(L, L) == 0.
func (s *Set) checkVector(v graph.V, dist []float64) error {
	if v < 0 || int(v) >= s.n {
		return fmt.Errorf("landmark: vertex %d out of range [0,%d)", v, s.n)
	}
	if s.Has(v) {
		return fmt.Errorf("landmark: vertex %d is already a landmark", v)
	}
	if len(s.verts) >= MaxLandmarks {
		return fmt.Errorf("landmark: set is full (%d landmarks)", MaxLandmarks)
	}
	if len(dist) != s.n {
		return fmt.Errorf("landmark: vector has %d entries for %d vertices", len(dist), s.n)
	}
	for i, d := range dist {
		if math.IsNaN(d) || d < 0 {
			return fmt.Errorf("landmark: invalid distance %v at vertex %d", d, i)
		}
	}
	if s.n > 0 && dist[v] != 0 {
		return fmt.Errorf("landmark: vector claims d(%d,%d) = %v, want 0", v, v, dist[v])
	}
	return nil
}

// With returns a new Set extended by landmark v with its full distance
// vector d(v, ·). The receiver is unchanged (copy-on-write), so
// readers holding the old Set are never disturbed — publish the result
// with an atomic pointer swap.
func (s *Set) With(v graph.V, dist []float64) (*Set, error) {
	if s == nil {
		return nil, fmt.Errorf("landmark: With on a nil set")
	}
	if err := s.checkVector(v, dist); err != nil {
		return nil, err
	}
	k := len(s.verts)
	out := &Set{
		n:     s.n,
		verts: append(append(make([]graph.V, 0, k+1), s.verts...), v),
		dist:  make([]float64, s.n*(k+1)),
	}
	for u := 0; u < s.n; u++ {
		row := out.dist[u*(k+1):]
		copy(row[:k], s.dist[u*k:(u+1)*k])
		row[k] = dist[u]
	}
	return out, nil
}

// FromRows rebuilds a Set from landmark-major rows: rows[i*n : (i+1)*n]
// is landmark i's full distance vector. This is the snapshot
// persistence layout (one contiguous vector per landmark); the
// constructor transposes into the vertex-major query layout.
func FromRows(n int, verts []graph.V, rows []float64) (*Set, error) {
	s, err := New(n)
	if err != nil {
		return nil, err
	}
	if len(rows) != len(verts)*n {
		return nil, fmt.Errorf("landmark: %d row entries for %d landmarks over %d vertices", len(rows), len(verts), n)
	}
	for i, v := range verts {
		if s, err = s.With(v, rows[i*n:(i+1)*n]); err != nil {
			return nil, fmt.Errorf("landmark %d: %w", i, err)
		}
	}
	return s, nil
}

// Rows returns the set's matrix in landmark-major layout (the inverse
// of FromRows): a freshly allocated k*n slice where row i is landmark
// i's full distance vector.
func (s *Set) Rows() []float64 {
	if s.K() == 0 {
		return nil
	}
	k := len(s.verts)
	rows := make([]float64, k*s.n)
	for u := 0; u < s.n; u++ {
		for i, d := range s.dist[u*k : (u+1)*k] {
			rows[i*s.n+u] = d
		}
	}
	return rows
}

// lower is the per-landmark admissible bound |a−b| with Inf semantics
// and the float-safety margin applied.
func lower(a, b float64) float64 {
	if math.IsInf(a, 1) || math.IsInf(b, 1) {
		if a == b {
			// Both outside the landmark's component: the landmark says
			// nothing about d(v, t).
			return 0
		}
		// Exactly one of v, t reaches the landmark, so they are in
		// different components of the (undirected) graph: d(v,t) = +Inf,
		// and +Inf is an exact — hence admissible — bound.
		return math.Inf(1)
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if b > m {
		m = b
	}
	d -= slack * m
	if d < 0 {
		return 0
	}
	return d
}

// LowerBound returns an admissible lower bound on d(v, t): the best
// triangle-inequality bound over every landmark, 0 when the set is
// empty or knows nothing, +Inf when some landmark certifies v and t
// lie in different components.
func (s *Set) LowerBound(v, t graph.V) float64 {
	if s.K() == 0 {
		return 0
	}
	if v < 0 || int(v) >= s.n || t < 0 || int(t) >= s.n {
		return 0 // out-of-range queries get the vacuous (admissible) bound
	}
	k := len(s.verts)
	dv := s.dist[int(v)*k : int(v)*k+k]
	dt := s.dist[int(t)*k : int(t)*k+k]
	best := 0.0
	for i, a := range dv {
		if lb := lower(a, dt[i]); lb > best {
			best = lb
		}
	}
	return best
}

// BoundTo returns the goal-direction hook for target t — a closure
// computing LowerBound(v, t) with t's landmark column captured — in
// the shape core.Params.Bound expects. Returns nil when the set holds
// no landmarks (no hook beats a useless hook on the hot path). The
// closure is pure and safe for concurrent use.
func (s *Set) BoundTo(t graph.V) func(graph.V) float64 {
	if s.K() == 0 {
		return nil
	}
	if t < 0 || int(t) >= s.n {
		return nil
	}
	k := len(s.verts)
	dist := s.dist
	dt := dist[int(t)*k : int(t)*k+k]
	return func(v graph.V) float64 {
		dv := dist[int(v)*k : int(v)*k+k]
		best := 0.0
		for i, a := range dv {
			if lb := lower(a, dt[i]); lb > best {
				best = lb
			}
		}
		return best
	}
}

// Estimate returns an a-priori upper bound on d(s, t): the best
// through-landmark path min_L d(L,v) + d(L,t), inflated by the safety
// margin, or +Inf when no landmark reaches both endpoints. A finite
// estimate certifies the endpoints are connected.
func (s *Set) Estimate(v, t graph.V) float64 {
	if s.K() == 0 {
		return math.Inf(1)
	}
	k := len(s.verts)
	dv := s.dist[int(v)*k : int(v)*k+k]
	dt := s.dist[int(t)*k : int(t)*k+k]
	best := math.Inf(1)
	for i, a := range dv {
		if c := a + dt[i]; c < best {
			best = c
		}
	}
	if !math.IsInf(best, 1) {
		best += slack * best
	}
	return best
}
