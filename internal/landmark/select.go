package landmark

import (
	"fmt"
	"math"

	"radiusstep/internal/graph"
)

// Strategy names a landmark-selection policy.
type Strategy int

const (
	// Farthest is farthest-point selection: start from the
	// highest-degree vertex, then repeatedly add the vertex maximizing
	// the distance to its nearest chosen landmark. Unreached vertices
	// (other components) count as infinitely far, so disconnected
	// graphs get one landmark per reached component before any
	// intra-component spreading. The classic ALT default: landmarks
	// end up on the periphery, where triangle bounds are tight.
	Farthest Strategy = iota
	// Degree is degree-weighted selection: the k highest-degree
	// vertices. Cheaper to select (no intermediate solves guide the
	// choice) and well-suited to scale-free graphs, where hubs lie on
	// many shortest paths.
	Degree
)

// String names the strategy as ParseStrategy accepts it.
func (s Strategy) String() string {
	switch s {
	case Farthest:
		return "farthest"
	case Degree:
		return "degree"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// ParseStrategy maps a strategy name to its Strategy value.
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "farthest":
		return Farthest, nil
	case "degree":
		return Degree, nil
	default:
		return 0, fmt.Errorf("landmark: unknown strategy %q (want farthest|degree)", name)
	}
}

// SolveFunc computes a full single-source distance vector; Build uses
// it to solve from each chosen landmark. Callers pass a closure over
// their configured solver so this package needs no engine dependency.
type SolveFunc func(src graph.V) ([]float64, error)

// maxDegreeVertex returns the highest-degree vertex not already
// chosen, preferring lower ids on ties; ok=false when all are chosen.
func maxDegreeVertex(g *graph.CSR, chosen map[graph.V]bool) (graph.V, bool) {
	best, bestDeg, ok := graph.V(0), -1, false
	for v := 0; v < g.NumVertices(); v++ {
		if chosen[graph.V(v)] {
			continue
		}
		if d := g.Degree(graph.V(v)); d > bestDeg {
			best, bestDeg, ok = graph.V(v), d, true
		}
	}
	return best, ok
}

// Build selects up to k landmarks from g with the given strategy,
// solves a full distance vector from each via solve, and returns the
// resulting Set. Fewer than k landmarks come back when the graph is
// smaller than k. Selection is deterministic: ties break toward lower
// vertex ids, so the same graph always yields the same landmarks.
func Build(g *graph.CSR, k int, strat Strategy, solve SolveFunc) (*Set, error) {
	n := g.NumVertices()
	if k < 0 {
		return nil, fmt.Errorf("landmark: negative landmark count %d", k)
	}
	if k > MaxLandmarks {
		return nil, fmt.Errorf("landmark: %d landmarks exceeds the maximum %d", k, MaxLandmarks)
	}
	if k > n {
		k = n
	}
	set, err := New(n)
	if err != nil {
		return nil, err
	}
	if k == 0 || n == 0 {
		return set, nil
	}

	chosen := make(map[graph.V]bool, k)
	add := func(v graph.V) error {
		dist, err := solve(v)
		if err != nil {
			return fmt.Errorf("landmark: solving from %d: %w", v, err)
		}
		if set, err = set.With(v, dist); err != nil {
			return err
		}
		chosen[v] = true
		return nil
	}

	switch strat {
	case Degree:
		for len(chosen) < k {
			v, ok := maxDegreeVertex(g, chosen)
			if !ok {
				break
			}
			if err := add(v); err != nil {
				return nil, err
			}
		}
	case Farthest:
		// minDist[v] = distance from v to its nearest chosen landmark,
		// folded in as each landmark's vector arrives.
		minDist := make([]float64, n)
		for i := range minDist {
			minDist[i] = math.Inf(1)
		}
		fold := func() {
			kk := len(set.verts)
			for v := 0; v < n; v++ {
				if d := set.dist[v*kk+kk-1]; d < minDist[v] {
					minDist[v] = d
				}
			}
		}
		seedV, ok := maxDegreeVertex(g, chosen)
		if !ok {
			break
		}
		if err := add(seedV); err != nil {
			return nil, err
		}
		fold()
		for len(chosen) < k {
			// Farthest vertex from the chosen set; +Inf (an unreached
			// component) always wins, breaking component ties — and all
			// ties — toward the lower id.
			next, best, ok := graph.V(0), -1.0, false
			for v := 0; v < n; v++ {
				if chosen[graph.V(v)] {
					continue
				}
				if d := minDist[v]; !ok || d > best {
					next, best, ok = graph.V(v), d, true
				}
			}
			if !ok {
				break
			}
			if err := add(next); err != nil {
				return nil, err
			}
			fold()
		}
	default:
		return nil, fmt.Errorf("landmark: unknown strategy %d", int(strat))
	}
	return set, nil
}
