package landmark

import (
	"math"
	"strings"
	"testing"

	"radiusstep/internal/baseline"
	"radiusstep/internal/graph"
)

// line builds the unit-weight path graph 0—1—…—(n−1), where every
// pairwise distance is |u−v| and landmark bounds from an endpoint are
// tight — the cleanest fixture for checking the triangle-bound math.
func line(n int) *graph.CSR {
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.Add(graph.V(v-1), graph.V(v), 1)
	}
	return b.Build()
}

// twoComponents builds {0—1 (w=2)} ∪ {2—3 (w=3)}: the minimal fixture
// for the one-sided- and double-sided-infinity bound semantics.
func twoComponents() *graph.CSR {
	b := graph.NewBuilder(4)
	b.Add(0, 1, 2)
	b.Add(2, 3, 3)
	return b.Build()
}

func oracle(g *graph.CSR) SolveFunc {
	return func(src graph.V) ([]float64, error) {
		return baseline.Dijkstra(g, src), nil
	}
}

func mustWith(t *testing.T, s *Set, v graph.V, dist []float64) *Set {
	t.Helper()
	out, err := s.With(v, dist)
	if err != nil {
		t.Fatalf("With(%d): %v", v, err)
	}
	return out
}

func TestEmptyAndNilSets(t *testing.T) {
	if _, err := New(-1); err == nil {
		t.Fatal("New(-1) accepted")
	}
	s, err := New(5)
	if err != nil {
		t.Fatal(err)
	}
	if s.K() != 0 || s.N() != 5 || s.Has(2) || s.Vertices() != nil || s.Rows() != nil {
		t.Fatalf("empty set leaks state: K=%d N=%d", s.K(), s.N())
	}
	if lb := s.LowerBound(0, 4); lb != 0 {
		t.Fatalf("empty LowerBound = %v, want 0", lb)
	}
	if est := s.Estimate(0, 4); !math.IsInf(est, 1) {
		t.Fatalf("empty Estimate = %v, want +Inf", est)
	}
	if s.BoundTo(3) != nil {
		t.Fatal("empty set returned a bound closure")
	}

	var nilSet *Set
	if nilSet.K() != 0 || nilSet.N() != 0 || nilSet.Has(0) || nilSet.Vertices() != nil {
		t.Fatal("nil set leaks state")
	}
	if _, err := nilSet.With(0, nil); err == nil {
		t.Fatal("With on nil set accepted")
	}
}

func TestBoundsOnLineGraph(t *testing.T) {
	const n = 9
	g := line(n)
	s, _ := New(n)
	s = mustWith(t, s, 0, baseline.Dijkstra(g, 0))
	s = mustWith(t, s, n-1, baseline.Dijkstra(g, graph.V(n-1)))
	if s.K() != 2 || !s.Has(0) || !s.Has(n-1) || s.Has(3) {
		t.Fatalf("set shape: K=%d verts=%v", s.K(), s.Vertices())
	}
	for v := 0; v < n; v++ {
		for u := 0; u < n; u++ {
			want := math.Abs(float64(v - u))
			lb := s.LowerBound(graph.V(v), graph.V(u))
			// On a path with an endpoint landmark the triangle bound is
			// exact, minus only the float-safety margin.
			if lb > want || lb < want-1e-6 {
				t.Fatalf("LowerBound(%d,%d) = %v, want ≈%v", v, u, lb, want)
			}
			if est := s.Estimate(graph.V(v), graph.V(u)); est < want {
				t.Fatalf("Estimate(%d,%d) = %v below true %v", v, u, est, want)
			}
			hook := s.BoundTo(graph.V(u))
			if hook == nil {
				t.Fatalf("BoundTo(%d) = nil on a populated set", u)
			}
			if hb := hook(graph.V(v)); math.Float64bits(hb) != math.Float64bits(lb) {
				t.Fatalf("BoundTo(%d)(%d) = %v != LowerBound %v", u, v, hb, lb)
			}
		}
	}
	// Out-of-range queries answer the vacuous (still admissible) bound.
	if lb := s.LowerBound(-1, 2); lb != 0 {
		t.Fatalf("out-of-range LowerBound = %v", lb)
	}
	if s.BoundTo(-1) != nil || s.BoundTo(n) != nil {
		t.Fatal("BoundTo handed out a closure for an out-of-range target")
	}
}

func TestInfinitySemantics(t *testing.T) {
	g := twoComponents()
	s, _ := New(4)
	s = mustWith(t, s, 0, baseline.Dijkstra(g, 0)) // [0, 2, +Inf, +Inf]

	// One-sided infinity certifies disconnection: the bound is +Inf.
	if lb := s.LowerBound(1, 2); !math.IsInf(lb, 1) {
		t.Fatalf("cross-component LowerBound = %v, want +Inf", lb)
	}
	// Double-sided infinity says nothing: the landmark contributes 0.
	if lb := s.LowerBound(2, 3); lb != 0 {
		t.Fatalf("both-unreached LowerBound = %v, want 0", lb)
	}
	if est := s.Estimate(2, 3); !math.IsInf(est, 1) {
		t.Fatalf("unreached Estimate = %v, want +Inf", est)
	}
	if est := s.Estimate(0, 1); est < 2 {
		t.Fatalf("Estimate(0,1) = %v below true 2", est)
	}
}

func TestCheckVectorErrors(t *testing.T) {
	const n = 6
	g := line(n)
	good := baseline.Dijkstra(g, 2)
	s, _ := New(n)
	s = mustWith(t, s, 2, good)

	bad := func(v graph.V, dist []float64, frag string) {
		t.Helper()
		if _, err := s.With(v, dist); err == nil || !strings.Contains(err.Error(), frag) {
			t.Fatalf("With(%d) err = %v, want %q", v, err, frag)
		}
	}
	bad(-1, good, "out of range")
	bad(n, good, "out of range")
	bad(2, good, "already a landmark")
	bad(3, good[:n-1], "entries")
	neg := baseline.Dijkstra(g, 3)
	neg[0] = -1
	bad(3, neg, "invalid distance")
	nan := baseline.Dijkstra(g, 3)
	nan[5] = math.NaN()
	bad(3, nan, "invalid distance")
	shifted := baseline.Dijkstra(g, 4) // d(3,3) != 0
	bad(3, shifted, "want 0")
}

func TestSetCapacity(t *testing.T) {
	// Synthetic vectors (d(L,v) = |v−L|) are valid without solving: the
	// set stores what it is given and only checks shape.
	n := MaxLandmarks + 5
	vec := func(l int) []float64 {
		d := make([]float64, n)
		for v := range d {
			d[v] = math.Abs(float64(v - l))
		}
		return d
	}
	s, _ := New(n)
	for l := 0; l < MaxLandmarks; l++ {
		var err error
		if s, err = s.With(graph.V(l), vec(l)); err != nil {
			t.Fatalf("landmark %d: %v", l, err)
		}
	}
	if s.K() != MaxLandmarks {
		t.Fatalf("K = %d, want %d", s.K(), MaxLandmarks)
	}
	if _, err := s.With(graph.V(MaxLandmarks), vec(MaxLandmarks)); err == nil || !strings.Contains(err.Error(), "full") {
		t.Fatalf("oversize With err = %v, want full-set error", err)
	}
}

func TestRowsRoundTrip(t *testing.T) {
	g := line(7)
	s, _ := New(7)
	for _, l := range []graph.V{0, 3, 6} {
		s = mustWith(t, s, l, baseline.Dijkstra(g, l))
	}
	got, err := FromRows(7, s.Vertices(), s.Rows())
	if err != nil {
		t.Fatalf("FromRows: %v", err)
	}
	if got.K() != s.K() || got.N() != s.N() {
		t.Fatalf("shape mismatch: K=%d N=%d", got.K(), got.N())
	}
	for v := 0; v < 7; v++ {
		for u := 0; u < 7; u++ {
			a, b := s.LowerBound(graph.V(v), graph.V(u)), got.LowerBound(graph.V(v), graph.V(u))
			if math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("LowerBound(%d,%d) changed across the roundtrip: %v vs %v", v, u, a, b)
			}
		}
	}

	if _, err := FromRows(7, []graph.V{0, 3}, make([]float64, 7)); err == nil {
		t.Fatal("row-length mismatch accepted")
	}
	rows := s.Rows()
	rows[7*1+3] = 5 // landmark 3's vector now claims d(3,3) != 0
	if _, err := FromRows(7, s.Vertices(), rows); err == nil || !strings.Contains(err.Error(), "landmark 1") {
		t.Fatalf("corrupt row accepted: %v", err)
	}
}

func TestBuildFarthestIsDeterministicAndPeripheral(t *testing.T) {
	g := line(9)
	for round := 0; round < 2; round++ {
		s, err := Build(g, 3, Farthest, oracle(g))
		if err != nil {
			t.Fatal(err)
		}
		// Seed: highest degree (2), ties to the lowest id → vertex 1.
		// Farthest from 1 → 8; then max min-distance → 4 (ties low).
		want := []graph.V{1, 8, 4}
		got := s.Vertices()
		if len(got) != len(want) {
			t.Fatalf("round %d: %v, want %v", round, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d: %v, want %v", round, got, want)
			}
		}
	}
}

func TestBuildFarthestCoversComponents(t *testing.T) {
	g := twoComponents()
	s, err := Build(g, 2, Farthest, oracle(g))
	if err != nil {
		t.Fatal(err)
	}
	verts := s.Vertices()
	if len(verts) != 2 {
		t.Fatalf("got %v", verts)
	}
	// +Inf min-distance (the unreached component) must win the second
	// pick, so one landmark lands in each component.
	inA := func(v graph.V) bool { return v <= 1 }
	if inA(verts[0]) == inA(verts[1]) {
		t.Fatalf("both landmarks in one component: %v", verts)
	}
}

func TestBuildDegree(t *testing.T) {
	// A star: the hub has degree 5, every leaf degree 1.
	b := graph.NewBuilder(6)
	for v := 1; v < 6; v++ {
		b.Add(0, graph.V(v), float64(v))
	}
	g := b.Build()
	s, err := Build(g, 2, Degree, oracle(g))
	if err != nil {
		t.Fatal(err)
	}
	verts := s.Vertices()
	if len(verts) != 2 || verts[0] != 0 || verts[1] != 1 {
		t.Fatalf("degree selection picked %v, want [0 1]", verts)
	}
}

func TestBuildEdgeCases(t *testing.T) {
	g := line(4)
	if _, err := Build(g, -1, Farthest, oracle(g)); err == nil {
		t.Fatal("negative k accepted")
	}
	if _, err := Build(g, MaxLandmarks+1, Farthest, oracle(g)); err == nil {
		t.Fatal("k > MaxLandmarks accepted")
	}
	if _, err := Build(g, 2, Strategy(99), oracle(g)); err == nil {
		t.Fatal("unknown strategy accepted")
	}
	if s, err := Build(g, 0, Farthest, oracle(g)); err != nil || s.K() != 0 {
		t.Fatalf("k=0: %v, K=%d", err, s.K())
	}
	// k > n clamps to one landmark per vertex.
	if s, err := Build(g, 50, Degree, oracle(g)); err != nil || s.K() != 4 {
		t.Fatalf("k>n: %v, K=%d", err, s.K())
	}
	// Solver errors surface with the landmark id attached.
	boom := func(src graph.V) ([]float64, error) {
		return nil, errFake
	}
	if _, err := Build(g, 2, Farthest, boom); err == nil || !strings.Contains(err.Error(), "solving from") {
		t.Fatalf("solve error lost: %v", err)
	}
}

type fakeErr struct{}

func (fakeErr) Error() string { return "fake solve failure" }

var errFake = fakeErr{}

func TestStrategyNames(t *testing.T) {
	for _, strat := range []Strategy{Farthest, Degree} {
		got, err := ParseStrategy(strat.String())
		if err != nil || got != strat {
			t.Fatalf("ParseStrategy(%q) = %v, %v", strat.String(), got, err)
		}
	}
	if _, err := ParseStrategy("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
	if s := Strategy(42).String(); !strings.Contains(s, "42") {
		t.Fatalf("Strategy(42).String() = %q", s)
	}
}
