package core

import (
	"math"

	"radiusstep/internal/graph"
	"radiusstep/internal/parallel"
	"radiusstep/internal/pset"
)

// dv is the lexicographic (distance, vertex) key both priority sets use:
// Q holds (δ(v), v), R holds (δ(v)+r(v), v).
type dv struct {
	d float64
	v graph.V
}

func dvLess(a, b dv) bool { return a.d < b.d || (a.d == b.d && a.v < b.v) }

func dvHash(k dv) uint64 {
	return pset.Splitmix64(math.Float64bits(k.d) ^ uint64(uint32(k.v))*0x9e3779b97f4a7c15)
}

func newDVSet() *pset.Set[dv] { return pset.New(dvLess, dvHash) }

// sortedDVSet builds an ordered set from an unsorted batch of unique-
// vertex keys. The batch slice is only sorted, not retained: tree nodes
// copy the keys, so callers may reuse it afterwards.
func sortedDVSet(keys []dv) *pset.Set[dv] {
	parallel.Sort(keys, dvLess)
	return pset.NewSorted(keys, dvLess, dvHash)
}

// psetStepper is the fringe of the paper's parallel engine (Algorithm
// 2): the priority sets Q and R are join-based ordered sets updated with
// bulk split/union/difference. push and settle buffer their work; commit
// applies it as one sorted difference plus one sorted union per substep.
// inQ/qkey track membership and the exact key each vertex is stored
// under, so removals never search the trees.
type psetStepper struct {
	ws   *Workspace
	q, r *pset.Set[dv]
	inQ  []bool
	qkey []float64

	qIns, qRem, rIns, rRem []dv
}

func (p *psetStepper) reset() {
	n := len(p.ws.bits)
	p.q, p.r = newDVSet(), newDVSet()
	p.inQ = sized(p.inQ, n)
	parallel.Fill(p.inQ, false)
	p.qkey = sized(p.qkey, n)
	p.qIns, p.qRem = p.qIns[:0], p.qRem[:0]
	p.rIns, p.rRem = p.rIns[:0], p.rRem[:0]
}

func (p *psetStepper) seed(vs []graph.V) {
	for _, v := range vs {
		p.push(v, parallel.FromBits(p.ws.bits[v]))
	}
	p.commit()
}

func (p *psetStepper) target() (float64, graph.V, bool) {
	if p.q.Len() == 0 {
		return 0, -1, false
	}
	mn, _ := p.r.Min()
	return mn.d, mn.v, true
}

func (p *psetStepper) collect(di float64, dst []graph.V) []graph.V {
	// A split of Q takes every key <= d_i, and a bulk difference removes
	// the matching (δ(v)+r(v), v) keys from R.
	aset := p.q.SplitLE(dv{di, math.MaxInt32})
	rem := p.rRem[:0]
	for _, k := range aset.Slice() {
		v := k.v
		p.inQ[v] = false
		dst = append(dst, v)
		rem = append(rem, dv{p.qkey[v] + p.ws.radii[v], v})
	}
	p.r.DiffWith(sortedDVSet(rem))
	p.rRem = rem[:0]
	return dst
}

func (p *psetStepper) push(v graph.V, d float64) {
	if p.inQ[v] {
		p.qRem = append(p.qRem, dv{p.qkey[v], v})
		p.rRem = append(p.rRem, dv{p.qkey[v] + p.ws.radii[v], v})
	}
	p.inQ[v] = true
	p.qkey[v] = d
	p.qIns = append(p.qIns, dv{d, v})
	p.rIns = append(p.rIns, dv{d + p.ws.radii[v], v})
}

func (p *psetStepper) settle(v graph.V) {
	if p.inQ[v] {
		p.qRem = append(p.qRem, dv{p.qkey[v], v})
		p.rRem = append(p.rRem, dv{p.qkey[v] + p.ws.radii[v], v})
		p.inQ[v] = false
	}
}

func (p *psetStepper) commit() {
	// Differences first: a moved vertex appears in both the removal (old
	// key) and insertion (new key) batches.
	if len(p.qRem) > 0 {
		p.q.DiffWith(sortedDVSet(p.qRem))
		p.r.DiffWith(sortedDVSet(p.rRem))
		p.qRem, p.rRem = p.qRem[:0], p.rRem[:0]
	}
	if len(p.qIns) > 0 {
		p.q.UnionWith(sortedDVSet(p.qIns))
		p.r.UnionWith(sortedDVSet(p.rIns))
		p.qIns, p.rIns = p.qIns[:0], p.rIns[:0]
	}
}

// Solve computes shortest-path distances from src with the parallel
// Radius-Stepping engine of Algorithm 2. The priority sets Q and R are
// join-based ordered sets updated with bulk split/union/difference, and
// each Bellman–Ford substep relaxes the frontier's arcs concurrently
// using priority-writes. Steps, substeps and distances are identical to
// SolveRef.
func Solve(g *graph.CSR, radii []float64, src graph.V) ([]float64, Stats, error) {
	return SolveKind(g, radii, src, KindParallel, Params{}, nil)
}
