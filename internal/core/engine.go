package core

import (
	"math"
	"sync/atomic"

	"radiusstep/internal/graph"
	"radiusstep/internal/parallel"
	"radiusstep/internal/pset"
)

// dv is the lexicographic (distance, vertex) key both priority sets use:
// Q holds (δ(v), v), R holds (δ(v)+r(v), v).
type dv struct {
	d float64
	v graph.V
}

func dvLess(a, b dv) bool { return a.d < b.d || (a.d == b.d && a.v < b.v) }

func dvHash(k dv) uint64 {
	return pset.Splitmix64(math.Float64bits(k.d) ^ uint64(uint32(k.v))*0x9e3779b97f4a7c15)
}

func newDVSet() *pset.Set[dv] { return pset.New(dvLess, dvHash) }

// sortedDVSet builds an ordered set from an unsorted batch of unique-
// vertex keys.
func sortedDVSet(keys []dv) *pset.Set[dv] {
	parallel.Sort(keys, dvLess)
	return pset.NewSorted(keys, dvLess, dvHash)
}

// Solve computes shortest-path distances from src with the parallel
// Radius-Stepping engine of Algorithm 2. The priority sets Q and R are
// join-based ordered sets updated with bulk split/union/difference, and
// each Bellman–Ford substep relaxes the frontier's arcs concurrently
// using priority-writes. Steps, substeps and distances are identical to
// SolveRef.
func Solve(g *graph.CSR, radii []float64, src graph.V) ([]float64, Stats, error) {
	if err := validate(g, radii, src); err != nil {
		return nil, Stats{}, err
	}
	n := g.NumVertices()
	var st Stats

	bits := make([]uint64, n)
	parallel.Fill(bits, parallel.InfBits)
	bits[src] = parallel.ToBits(0)
	done := make([]bool, n)
	act := make([]uint32, n)   // == step stamp: settled in the current step
	sub := make([]uint32, n)   // substep claim stamps
	inQ := make([]bool, n)     // v currently resides in Q and R
	qkey := make([]float64, n) // exact key v is stored under in Q

	q := newDVSet()
	r := newDVSet()
	done[src] = true

	// Relax the source's neighbors (Algorithm 1, line 2) and seed Q, R.
	{
		adj, ws := g.Neighbors(src)
		st.EdgesScanned += int64(len(adj))
		var qi, ri []dv
		for i, v := range adj {
			nb := parallel.ToBits(ws[i])
			if parallel.WriteMin(&bits[v], nb) {
				st.Relaxations++
			}
		}
		for _, v := range adj {
			if !inQ[v] {
				d := parallel.FromBits(bits[v])
				inQ[v] = true
				qkey[v] = d
				qi = append(qi, dv{d, v})
				ri = append(ri, dv{d + radii[v], v})
			}
		}
		q.UnionWith(sortedDVSet(qi))
		r.UnionWith(sortedDVSet(ri))
	}

	step := uint32(0)
	subID := uint32(0)
	var active, frontier []graph.V

	for q.Len() > 0 {
		step++
		st.Steps++
		mn, _ := r.Min()
		di := mn.d

		// Extract A = {v : δ(v) <= d_i}: a split of Q, and a bulk
		// difference on R for the matching keys.
		aset := q.SplitLE(dv{di, math.MaxInt32})
		akeys := aset.Slice()
		active = active[:0]
		rRem := make([]dv, 0, len(akeys))
		for _, k := range akeys {
			v := k.v
			inQ[v] = false
			act[v] = step
			active = append(active, v)
			rRem = append(rRem, dv{qkey[v] + radii[v], v})
		}
		r.DiffWith(sortedDVSet(rRem))

		frontier = append(frontier[:0], active...)
		substeps := 0
		for len(frontier) > 0 {
			substeps++
			subID++
			updated := relaxParallel(g, bits, sub, subID, frontier, &st)

			// Tree maintenance: partition this substep's improvements
			// into newly activated (join A and the frontier), moved
			// (key change in Q and R), and discovered (fresh insert).
			var next []graph.V
			var qRem, qIns, rRemB, rInsB []dv
			for _, v := range updated {
				nd := parallel.FromBits(bits[v])
				if nd <= di {
					if act[v] != step {
						act[v] = step
						active = append(active, v)
						if inQ[v] {
							qRem = append(qRem, dv{qkey[v], v})
							rRemB = append(rRemB, dv{qkey[v] + radii[v], v})
							inQ[v] = false
						}
					}
					next = append(next, v)
				} else {
					if inQ[v] {
						qRem = append(qRem, dv{qkey[v], v})
						rRemB = append(rRemB, dv{qkey[v] + radii[v], v})
					}
					inQ[v] = true
					qkey[v] = nd
					qIns = append(qIns, dv{nd, v})
					rInsB = append(rInsB, dv{nd + radii[v], v})
				}
			}
			if len(qRem) > 0 {
				q.DiffWith(sortedDVSet(qRem))
				r.DiffWith(sortedDVSet(rRemB))
			}
			if len(qIns) > 0 {
				q.UnionWith(sortedDVSet(qIns))
				r.UnionWith(sortedDVSet(rInsB))
			}
			frontier = next
		}

		st.Substeps += substeps
		if substeps > st.MaxSubsteps {
			st.MaxSubsteps = substeps
		}
		if len(active) > st.MaxStep {
			st.MaxStep = len(active)
		}
		for _, v := range active {
			done[v] = true
		}
	}
	return parallel.BitsToFloats(bits), st, nil
}

// relaxParallel relaxes every arc out of frontier with WriteMin and
// returns the set of vertices whose distance improved, each claimed
// exactly once for this substep. The substep is synchronous: source
// distances are snapshotted before any relaxation, so the round is a
// Jacobi-style Bellman–Ford iteration with deterministic results (the
// PRAM semantics the paper's substep bounds assume).
func relaxParallel(g *graph.CSR, bits []uint64, sub []uint32, subID uint32, frontier []graph.V, st *Stats) []graph.V {
	p := parallel.Procs()
	parts := make([][]graph.V, p)
	snap := make([]float64, len(frontier))
	parallel.For(len(frontier), func(i int) {
		snap[i] = parallel.FromBits(atomic.LoadUint64(&bits[frontier[i]]))
	})
	var relaxed, scanned atomic.Int64
	parallel.Workers(len(frontier), func(w int, claim func() (int, bool)) {
		var local []graph.V
		var rl, sc int64
		for {
			i, ok := claim()
			if !ok {
				break
			}
			u := frontier[i]
			du := snap[i]
			adj, ws := g.Neighbors(u)
			sc += int64(len(adj))
			for j, v := range adj {
				nb := parallel.ToBits(du + ws[j])
				if parallel.WriteMin(&bits[v], nb) {
					rl++
					if parallel.Claim(&sub[v], subID) {
						local = append(local, v)
					}
				}
			}
		}
		parts[w] = local
		relaxed.Add(rl)
		scanned.Add(sc)
	})
	st.Relaxations += relaxed.Load()
	st.EdgesScanned += scanned.Load()
	var out []graph.V
	for _, part := range parts {
		out = append(out, part...)
	}
	return out
}
