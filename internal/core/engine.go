package core

import (
	"radiusstep/internal/frontier"
	"radiusstep/internal/graph"
	"radiusstep/internal/parallel"
)

// FrontierOps aliases the ordered-frontier substrate's operation
// counters so callers of the public API can read Stats.Frontier without
// importing internal/frontier.
type FrontierOps = frontier.Ops

// frontierBacked is implemented by steppers built on the flat frontier
// substrate; the driver folds their op counters into Stats.
type frontierBacked interface {
	frontierOps() frontier.Ops
}

// frontierStepper is the fringe of the paper's parallel engine
// (Algorithm 2) on the flat arena-backed frontier substrate: the
// priority set Q (keyed by δ(v)) is a lazy-batched run collection
// instead of the pointer-based ordered sets of internal/pset. push and
// settle stage their work as O(1) epoch-stamped records; commit seals
// each substep's batch into a sorted run and merges runs lazily (the
// bulk union), and collect is a binary-searched prefix extraction (the
// split). The paper's second set R (keyed by δ(v)+r(v)) is not
// materialized: its only role in Algorithm 2 is the d_i = min δ(v)+r(v)
// query, which the substrate answers with one shifted min-reduction
// over Q's runs — maintaining R's order cost as much as Q's and bought
// nothing else. Same step/substep structure as the tree version, with
// zero steady-state allocations and no pointer chasing.
type frontierStepper struct {
	ws *Workspace
	q  *frontier.F
}

func (p *frontierStepper) reset() {
	if p.q == nil {
		p.q = frontier.New()
	}
	p.q.Reset(len(p.ws.bits))
}

func (p *frontierStepper) seed(vs []graph.V) {
	for _, v := range vs {
		p.push(v, parallel.FromBits(p.ws.bits[v]))
	}
	p.q.Commit()
}

func (p *frontierStepper) target() (float64, graph.V, bool) {
	// d_i = min over the fringe of δ(v)+r(v), ties to the smaller
	// vertex — the same target (and lead) the ordered-set R produced.
	v, di, ok := p.q.MinShifted(p.ws.radii)
	if !ok {
		return 0, -1, false
	}
	return di, v, true
}

func (p *frontierStepper) collect(di float64, dst []graph.V) []graph.V {
	// The split of Q takes every key <= d_i.
	return p.q.ExtractBelow(di, dst)
}

func (p *frontierStepper) push(v graph.V, d float64) {
	p.q.Push(v, d)
}

func (p *frontierStepper) settle(v graph.V) {
	p.q.Drop(v)
}

// commit is a no-op: the frontier self-commits at the next query
// (target or collect), so a step's substeps pool their pushes into ONE
// batch — a vertex improved in several substeps is sorted once, at its
// final key, instead of once per substep.
func (p *frontierStepper) commit() {}

func (p *frontierStepper) fringe() int { return p.q.Len() }

func (p *frontierStepper) setTiming(on bool) { p.q.SetTiming(on) }

func (p *frontierStepper) frontierOps() frontier.Ops {
	return p.q.Ops()
}

// Solve computes shortest-path distances from src with the parallel
// Radius-Stepping engine of Algorithm 2. The priority sets Q and R are
// flat arena-backed frontiers updated with bulk split/union (lazy
// batched runs), and each Bellman–Ford substep relaxes the frontier's
// arcs concurrently using priority-writes. Steps, substeps and
// distances are identical to SolveRef.
func Solve(g *graph.CSR, radii []float64, src graph.V) ([]float64, Stats, error) {
	return SolveKind(g, radii, src, KindParallel, Params{}, nil)
}
