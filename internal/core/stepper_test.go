package core

import (
	"math"
	"math/rand"
	"testing"

	"radiusstep/internal/baseline"
	"radiusstep/internal/check"
	"radiusstep/internal/gen"
	"radiusstep/internal/graph"
	"radiusstep/internal/preprocess"
)

func allKinds() []EngineKind {
	return []EngineKind{KindSequential, KindParallel, KindFlat, KindDelta, KindRho}
}

// randomGraph builds a seeded random graph with integer weights in
// [0, 5] — zero-weight edges included — and NO connectivity guarantee,
// so a fair share of instances are disconnected.
func randomGraph(n, m int, seed int64) *graph.CSR {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		u := graph.V(rng.Intn(n))
		v := graph.V(rng.Intn(n))
		if u == v {
			continue
		}
		b.Add(u, v, float64(rng.Intn(6)))
	}
	return b.Build()
}

// TestFiveEnginesByteIdenticalDistances is the cross-engine property
// test: on random graphs (zero-weight edges, disconnected components)
// all five engines must produce byte-identical distance vectors.
// Integer weights make float sums exact, so "identical" means equal
// Float64bits, +Inf included. Each kind reuses one workspace across
// every trial, so the test also exercises pooled-buffer reuse across
// graphs of different shapes. Run under -race by CI.
func TestFiveEnginesByteIdenticalDistances(t *testing.T) {
	ws := make(map[EngineKind]*Workspace)
	for _, k := range allKinds() {
		ws[k] = NewWorkspace()
	}
	for trial := 0; trial < 30; trial++ {
		n := 20 + trial*7
		m := n * (1 + trial%4)
		g := randomGraph(n, m, int64(trial)*1299721)
		radii, err := preprocess.RadiiOnly(g, 1+trial%9)
		if err != nil {
			t.Fatal(err)
		}
		src := graph.V(trial % n)
		want := baseline.Dijkstra(g, src)
		params := Params{Delta: float64(trial%7) / 2, Rho: trial % 11} // incl. derive-default cases
		for _, kind := range allKinds() {
			got, st, err := SolveKind(g, radii, src, kind, params, ws[kind])
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, kind, err)
			}
			if st.Engine != kind.String() {
				t.Fatalf("trial %d: Stats.Engine = %q, want %q", trial, st.Engine, kind)
			}
			if len(got) != n {
				t.Fatalf("trial %d %s: %d distances for %d vertices", trial, kind, len(got), n)
			}
			for v := range got {
				if math.Float64bits(got[v]) != math.Float64bits(want[v]) {
					t.Fatalf("trial %d %s: dist[%d] = %v (bits %x), want %v (bits %x)",
						trial, kind, v, got[v], math.Float64bits(got[v]),
						want[v], math.Float64bits(want[v]))
				}
			}
			if err := check.VerifyDistances(g, src, got); err != nil {
				t.Fatalf("trial %d %s: certificate: %v", trial, kind, err)
			}
		}
	}
}

// TestRadiiFreeKindsAcceptNilRadii: Δ- and ρ-stepping never consult the
// radii, so they run without preprocessing; the radius kinds must still
// reject nil radii.
func TestRadiiFreeKindsAcceptNilRadii(t *testing.T) {
	g := gen.WithUniformIntWeights(gen.Grid2D(9, 9), 1, 40, 3)
	want := baseline.Dijkstra(g, 0)
	for _, kind := range []EngineKind{KindDelta, KindRho} {
		got, _, err := SolveKind(g, nil, 0, kind, Params{}, nil)
		if err != nil {
			t.Fatalf("%s with nil radii: %v", kind, err)
		}
		if i := check.SameDistances(want, got, 0); i >= 0 {
			t.Fatalf("%s: mismatch at %d", kind, i)
		}
	}
	for _, kind := range []EngineKind{KindSequential, KindParallel, KindFlat} {
		if _, _, err := SolveKind(g, nil, 0, kind, Params{}, nil); err == nil {
			t.Fatalf("%s accepted nil radii", kind)
		}
	}
}

func TestSolveKindRejectsUnknownKind(t *testing.T) {
	g := gen.Chain(4)
	if _, _, err := SolveKind(g, ZeroRadii(4), 0, EngineKind(99), Params{}, nil); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, _, err := SolveKind(g, ZeroRadii(4), 0, EngineKind(-1), Params{}, nil); err == nil {
		t.Fatal("negative kind accepted")
	}
}

// TestSolveKindTargetEveryEngine: early termination works for every
// strategy — the settled-set-is-exact invariant is engine-independent.
func TestSolveKindTargetEveryEngine(t *testing.T) {
	g := gen.WithUniformIntWeights(gen.Grid2D(12, 12), 1, 25, 7)
	radii, err := preprocess.RadiiOnly(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	want := baseline.Dijkstra(g, 0)
	for _, kind := range allKinds() {
		for _, dst := range []graph.V{1, 40, 143} {
			d, _, _, err := SolveKindTarget(g, radii, 0, dst, kind, Params{}, nil)
			if err != nil {
				t.Fatalf("%s target %d: %v", kind, dst, err)
			}
			if d != want[dst] {
				t.Fatalf("%s target %d: %v, want %v", kind, dst, d, want[dst])
			}
		}
	}
	if _, _, _, err := SolveKindTarget(g, radii, 0, 9999, KindSequential, Params{}, nil); err == nil {
		t.Fatal("out-of-range target accepted")
	}
}

// TestDeltaRhoStepStructure sanity-checks the strategy knobs: a wider Δ
// and a larger ρ must not increase the step count, and explicit knobs
// must change the round structure the way the strategy promises.
func TestDeltaRhoStepStructure(t *testing.T) {
	g := gen.WithUniformIntWeights(gen.Grid2D(20, 20), 1, 100, 11)
	n := g.NumVertices()
	_, stNarrow, err := SolveDelta(g, 0, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, stWide, err := SolveDelta(g, 0, 1e6, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stWide.Steps != 1 {
		t.Fatalf("Δ covering the whole weight range must settle in 1 step, got %d", stWide.Steps)
	}
	if stNarrow.Steps < stWide.Steps {
		t.Fatalf("narrow Δ produced fewer steps (%d) than wide Δ (%d)", stNarrow.Steps, stWide.Steps)
	}
	_, stSmall, err := SolveRho(g, 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, stBig, err := SolveRho(g, 0, n, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stBig.Steps > stSmall.Steps {
		t.Fatalf("ρ=n produced more steps (%d) than ρ=1 (%d)", stBig.Steps, stSmall.Steps)
	}
}

// (TestNthSmallest moved to internal/frontier with the quickselect: the
// rank query is now the substrate's SelectKth.)

func TestDefaultDelta(t *testing.T) {
	if d := DefaultDelta(graph.FromEdges(1, nil)); !(d > 0) {
		t.Fatalf("edgeless graph: delta %v not positive", d)
	}
	b := graph.NewBuilder(3)
	b.Add(0, 1, 0)
	b.Add(1, 2, 0)
	if d := DefaultDelta(b.Build()); !(d > 0) {
		t.Fatalf("all-zero weights: delta %v not positive", d)
	}
	g := gen.WithUniformIntWeights(gen.Grid2D(8, 8), 1, 100, 2)
	if d := DefaultDelta(g); !(d > 0) || math.IsInf(d, 1) {
		t.Fatalf("grid: implausible delta %v", d)
	}
}
