package core

import (
	"math"

	"radiusstep/internal/graph"
	"radiusstep/internal/parallel"
)

// SolveFlat computes shortest-path distances from src with the frontier
// ("flat") Radius-Stepping engine of §3.4: instead of ordered sets it
// keeps the fringe — reached-but-unsettled vertices — in a plain array,
// picks each round distance with a parallel min-reduction over the
// fringe, and runs the same parallel Bellman–Ford substeps. On unweighted
// graphs this is the paper's parallel-BFS-style variant (each step costs
// work proportional to the fringe, with no log-factor from trees); it is
// correct for arbitrary weights and produces step/substep counts
// identical to SolveRef and Solve.
func SolveFlat(g *graph.CSR, radii []float64, src graph.V) ([]float64, Stats, error) {
	if err := validate(g, radii, src); err != nil {
		return nil, Stats{}, err
	}
	n := g.NumVertices()
	var st Stats

	bits := make([]uint64, n)
	parallel.Fill(bits, parallel.InfBits)
	bits[src] = parallel.ToBits(0)
	done := make([]bool, n)
	act := make([]uint32, n)
	sub := make([]uint32, n)
	seen := make([]uint32, n) // per-step dedup while compacting the fringe
	done[src] = true

	// Relax the source's neighbors to seed the fringe. The fringe may
	// contain duplicates and stale (settled) entries; every consumer
	// below tolerates both.
	var pending []graph.V
	{
		adj, ws := g.Neighbors(src)
		st.EdgesScanned += int64(len(adj))
		for i, v := range adj {
			if parallel.WriteMin(&bits[v], parallel.ToBits(ws[i])) {
				st.Relaxations++
			}
		}
		pending = append(pending, adj...)
	}

	step := uint32(0)
	subID := uint32(0)
	var active, frontier []graph.V

	for len(pending) > 0 {
		// d_i = min over the fringe of δ(v)+r(v); settled duplicates
		// are skipped by treating them as +Inf.
		_, di := parallel.MinIndex(len(pending), math.Inf(1), func(i int) float64 {
			v := pending[i]
			if done[v] {
				return math.Inf(1)
			}
			return parallel.FromBits(bits[v]) + radii[v]
		})
		if math.IsInf(di, 1) {
			break // only stale entries remained
		}
		step++
		st.Steps++

		// Extract A = {δ(v) <= d_i}; the rest stays pending.
		active = active[:0]
		rest := pending[:0]
		for _, v := range pending {
			if done[v] || seen[v] == step {
				continue
			}
			seen[v] = step
			if parallel.FromBits(bits[v]) <= di {
				act[v] = step
				active = append(active, v)
			} else {
				rest = append(rest, v)
			}
		}

		frontier = append(frontier[:0], active...)
		substeps := 0
		for len(frontier) > 0 {
			substeps++
			subID++
			updated := relaxParallel(g, bits, sub, subID, frontier, &st)
			var next []graph.V
			for _, v := range updated {
				nd := parallel.FromBits(bits[v])
				switch {
				case nd <= di:
					// Joins (or re-enters) the active set; a stale copy
					// of v possibly left in rest is skipped later via
					// the done check.
					if act[v] != step {
						act[v] = step
						active = append(active, v)
					}
					next = append(next, v)
				case seen[v] != step:
					// Newly discovered beyond d_i: joins the fringe.
					seen[v] = step
					rest = append(rest, v)
				}
			}
			frontier = next
		}

		st.Substeps += substeps
		if substeps > st.MaxSubsteps {
			st.MaxSubsteps = substeps
		}
		if len(active) > st.MaxStep {
			st.MaxStep = len(active)
		}
		for _, v := range active {
			done[v] = true
		}
		pending = rest
	}
	return parallel.BitsToFloats(bits), st, nil
}
