package core

import (
	"math"

	"radiusstep/internal/graph"
	"radiusstep/internal/parallel"
)

// flatStepper is the frontier ("flat") fringe shared by two engines:
// instead of ordered sets it keeps reached-but-unsettled vertices in a
// plain array and picks each round distance with a reduction over the
// fringe. The array may contain stale (settled) entries — every consumer
// tolerates them — and the seen stamps bound it to one live entry per
// vertex per step. Which reduction runs is the stepping strategy:
//
//	KindFlat   d_i = min δ(v)+r(v)           (Radius-Stepping, §3.4)
//	KindDelta  d_i = bucket ceiling of min δ (Δ-stepping)
//
// (KindRho ran here before the frontier substrate landed; its rank-query
// rule now lives in rhoStepper, answered by frontier.SelectKth.)
type flatStepper struct {
	ws            *Workspace
	pending, rest []graph.V

	kind  EngineKind
	delta float64
}

func (f *flatStepper) reset() {
	f.pending, f.rest = f.pending[:0], f.rest[:0]
}

func (f *flatStepper) seed(vs []graph.V) {
	f.pending = append(f.pending[:0], vs...)
}

func (f *flatStepper) target() (float64, graph.V, bool) {
	switch f.kind {
	case KindDelta:
		idx, minD := f.minDist()
		if idx < 0 {
			return 0, -1, false
		}
		// The ceiling of the lowest occupied bucket. Float saturation
		// (minD/Δ near 2^53) can round the +1 away; degrading d_i to
		// minD keeps the step non-empty, i.e. batched-ties Dijkstra.
		di := (math.Floor(minD/f.delta) + 1) * f.delta
		if di <= minD {
			di = minD
		}
		return di, f.pending[idx], true
	default: // KindFlat
		// d_i = min over the fringe of δ(v)+r(v); settled duplicates are
		// skipped by treating them as +Inf.
		idx, di := parallel.MinIndex(len(f.pending), math.Inf(1), func(i int) float64 {
			v := f.pending[i]
			if f.ws.done[v] {
				return math.Inf(1)
			}
			return parallel.FromBits(f.ws.bits[v]) + f.ws.radii[v]
		})
		if math.IsInf(di, 1) {
			return 0, -1, false
		}
		return di, f.pending[idx], true
	}
}

// minDist finds the live fringe vertex with the smallest tentative
// distance; index -1 means only stale entries remain.
func (f *flatStepper) minDist() (int, float64) {
	idx, minD := parallel.MinIndex(len(f.pending), math.Inf(1), func(i int) float64 {
		v := f.pending[i]
		if f.ws.done[v] {
			return math.Inf(1)
		}
		return parallel.FromBits(f.ws.bits[v])
	})
	if math.IsInf(minD, 1) {
		return -1, minD
	}
	return idx, minD
}

func (f *flatStepper) collect(di float64, dst []graph.V) []graph.V {
	step := f.ws.step
	rest := f.rest[:0]
	for _, v := range f.pending {
		if f.ws.done[v] || f.ws.seen[v] == step {
			continue
		}
		f.ws.seen[v] = step
		if parallel.FromBits(f.ws.bits[v]) <= di {
			dst = append(dst, v)
		} else {
			rest = append(rest, v)
		}
	}
	f.pending, f.rest = rest, f.pending
	return dst
}

func (f *flatStepper) push(v graph.V, _ float64) {
	// Newly discovered beyond d_i: joins the fringe once per step.
	if f.ws.seen[v] != f.ws.step {
		f.ws.seen[v] = f.ws.step
		f.pending = append(f.pending, v)
	}
}

// settle is a no-op: a stale copy of v possibly left in the fringe is
// skipped later via the done check.
func (f *flatStepper) settle(graph.V) {}

func (f *flatStepper) commit() {}

// fringe reports the fringe array length — an overcount when stale
// (settled) entries remain; trace annotation only.
func (f *flatStepper) fringe() int { return len(f.pending) }

// SolveFlat computes shortest-path distances from src with the frontier
// ("flat") Radius-Stepping engine of §3.4: instead of ordered sets it
// keeps the fringe in a plain array, picks each round distance with a
// parallel min-reduction over the fringe, and runs the same parallel
// Bellman–Ford substeps. On unweighted graphs this is the paper's
// parallel-BFS-style variant (each step costs work proportional to the
// fringe, with no log-factor from trees); it is correct for arbitrary
// weights and produces step/substep counts identical to SolveRef and
// Solve.
func SolveFlat(g *graph.CSR, radii []float64, src graph.V) ([]float64, Stats, error) {
	return SolveKind(g, radii, src, KindFlat, Params{}, nil)
}

// SolveDelta computes shortest-path distances from src with the
// Δ-stepping strategy in the unified framework: each step settles every
// fringe vertex below the ceiling of the lowest occupied Δ-bucket, with
// the same synchronous Bellman–Ford substeps as the radius engines.
// delta <= 0 derives DefaultDelta. Δ-stepping is the fixed-step-width
// algorithm Radius-Stepping refines; it needs no radii and therefore no
// preprocessing.
func SolveDelta(g *graph.CSR, src graph.V, delta float64, ws *Workspace) ([]float64, Stats, error) {
	return SolveKind(g, nil, src, KindDelta, Params{Delta: delta}, ws)
}

// SolveRho computes shortest-path distances from src with the
// ρ-stepping strategy (Dong et al.): each step settles at least the rho
// closest fringe vertices by taking d_i as the ρ-th smallest tentative
// distance. rho <= 0 selects 32. Like Δ-stepping it needs no radii.
func SolveRho(g *graph.CSR, src graph.V, rho int, ws *Workspace) ([]float64, Stats, error) {
	return SolveKind(g, nil, src, KindRho, Params{Rho: rho}, ws)
}
