package core

import (
	"errors"
	"sync/atomic"
)

// Cancellation errors returned by a solve whose Params.Probe fired. They
// are sentinel values (compare with errors.Is) so the serving layer can
// map them onto distinct HTTP statuses: a deadline is the server's
// fault-budget expiring (504-class), a cancel is the caller giving up
// (client-gone class).
var (
	// ErrCanceled reports that the solve was cooperatively canceled via
	// its Probe before completing. The distance vector is not returned.
	ErrCanceled = errors.New("core: solve canceled")
	// ErrDeadline reports that the solve's deadline expired before it
	// completed. The distance vector is not returned.
	ErrDeadline = errors.New("core: solve deadline exceeded")
)

// Probe fire causes. Zero (probeLive) must be the ready state so a
// zero-valued Probe is live.
const (
	probeLive uint32 = iota
	probeCanceled
	probeDeadline
)

// Probe is the cooperative-cancellation seam between a long-running
// solve and the request lifecycle around it: the driver (and every relax
// kernel) polls the probe — once per step, once per substep, and every
// ~probeArcInterval scanned arcs inside a substep — and unwinds with a
// typed error when it has fired. The poll is one atomic load, and a nil
// probe costs a single pointer comparison per site, so the
// steady-state solve path (Params.Probe == nil) keeps its zero-overhead
// and zero-allocation guarantees.
//
// A Probe is single-use: it latches the first cause fired (Cancel or
// Expire) and ignores later ones. Aborting a solve mid-substep leaves
// the pooled Workspace in a consistent state — every per-solve buffer is
// re-prepared on the next solve — so pooling works unchanged across
// canceled solves.
type Probe struct {
	state atomic.Uint32
}

// Cancel fires the probe with the canceled cause (caller went away).
// The first cause to fire wins; safe for concurrent use.
func (p *Probe) Cancel() { p.state.CompareAndSwap(probeLive, probeCanceled) }

// Expire fires the probe with the deadline cause (time budget spent).
// The first cause to fire wins; safe for concurrent use.
func (p *Probe) Expire() { p.state.CompareAndSwap(probeLive, probeDeadline) }

// Fired reports whether the probe has fired. Safe on a nil receiver,
// which is the hot path: one pointer comparison, no atomic.
func (p *Probe) Fired() bool { return p != nil && p.state.Load() != probeLive }

// Err returns the typed error for the fired cause, or nil while the
// probe is live (or nil itself).
func (p *Probe) Err() error {
	if p == nil {
		return nil
	}
	switch p.state.Load() {
	case probeCanceled:
		return ErrCanceled
	case probeDeadline:
		return ErrDeadline
	}
	return nil
}

// probeArcInterval is the scanned-arc granularity of mid-substep probe
// polls in the scalar relax kernels (the parallel kernels poll at claim
// granularity instead, which is the same order of magnitude). Small
// enough that a multi-million-arc substep on a huge graph notices a
// cancel in well under a millisecond of extra work, large enough that
// the poll branch vanishes against the relaxation work between polls.
const probeArcInterval = 8192
