package core

import (
	"sync/atomic"

	"radiusstep/internal/graph"
	"radiusstep/internal/parallel"
)

// Workspace holds every buffer a solve needs — the distance bits, the
// settled/stamp arrays, the frontier lists, and per-stepper fringe
// structures. A zero workspace is ready to use; reusing one across
// solves (typically via a sync.Pool owned by the caller) makes repeated
// queries allocation-free in steady state, which is the hot path a
// serving daemon's cache misses pay. A Workspace is not safe for
// concurrent use; pool one per in-flight solve.
//
// Buffers are grow-only: a workspace that served a large graph keeps its
// capacity when later solving a small one, and all slices are re-sliced
// to the current vertex count on prepare.
type Workspace struct {
	g     *graph.CSR
	radii []float64

	bits []uint64 // tentative distances as priority-write float bits
	done []bool   // settled in an earlier step
	act  []uint32 // == step stamp: joined the active set this step
	sub  []uint32 // substep claim stamps (one improvement report per substep)
	seen []uint32 // per-step fringe dedup for the flat-fringe steppers

	active, frontier, next, updated []graph.V
	snap                            []float64
	parts                           [][]graph.V

	hp *heapStepper
	ps *psetStepper
	fl *flatStepper

	step  uint32 // current step stamp (1-based within a solve)
	subID uint32 // current substep stamp
}

// NewWorkspace returns an empty workspace. Buffers are sized lazily on
// first use.
func NewWorkspace() *Workspace { return &Workspace{} }

// prepare re-slices every shared buffer to n vertices and resets the
// per-solve state: distances to +Inf, settled marks to false. The stamp
// arrays are deliberately NOT cleared: ws.step and ws.subID increase
// monotonically across the workspace's lifetime, so a stamp written by
// an earlier solve can never equal a current one (freshly grown arrays
// are zero and stamps start at 1). nextStep/nextSubID re-zero an array
// on the once-per-4-billion wraparound. This keeps the per-query reset
// at two O(n) sweeps instead of five.
func (ws *Workspace) prepare(g *graph.CSR, radii []float64) {
	n := g.NumVertices()
	ws.g, ws.radii = g, radii
	ws.bits = sized(ws.bits, n)
	parallel.Fill(ws.bits, parallel.InfBits)
	ws.done = sized(ws.done, n)
	parallel.Fill(ws.done, false)
	ws.act = sized(ws.act, n)
	ws.sub = sized(ws.sub, n)
	ws.seen = sized(ws.seen, n)
}

// nextStep advances the step stamp, clearing the step-stamped arrays on
// wraparound so stale stamps can never collide with a new step.
func (ws *Workspace) nextStep() uint32 {
	if ws.step == ^uint32(0) {
		parallel.Fill(ws.act, 0)
		parallel.Fill(ws.seen, 0)
		ws.step = 0
	}
	ws.step++
	return ws.step
}

// nextSubID advances the substep claim stamp, likewise clearing the
// claim array on wraparound.
func (ws *Workspace) nextSubID() uint32 {
	if ws.subID == ^uint32(0) {
		parallel.Fill(ws.sub, 0)
		ws.subID = 0
	}
	ws.subID++
	return ws.subID
}

// sized returns s with length exactly n, reusing capacity when possible.
func sized[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// relaxSeq is the sequential Bellman–Ford substep: relax every arc out
// of frontier against a snapshot of the frontier's distances (Jacobi
// semantics, so substep counts match the parallel engines exactly) and
// return the vertices whose distance improved, each reported once.
func (ws *Workspace) relaxSeq(frontier []graph.V, st *Stats) []graph.V {
	subID := ws.subID
	snap := sized(ws.snap, len(frontier))
	ws.snap = snap
	for i, u := range frontier {
		snap[i] = parallel.FromBits(ws.bits[u])
	}
	out := ws.updated[:0]
	for fi, u := range frontier {
		du := snap[fi]
		adj, wts := ws.g.Neighbors(u)
		st.EdgesScanned += int64(len(adj))
		for j, v := range adj {
			if ws.done[v] {
				continue
			}
			nd := du + wts[j]
			if nd >= parallel.FromBits(ws.bits[v]) {
				continue
			}
			ws.bits[v] = parallel.ToBits(nd)
			st.Relaxations++
			if ws.sub[v] != subID {
				ws.sub[v] = subID
				out = append(out, v)
			}
		}
	}
	ws.updated = out
	return out
}

// relaxPar relaxes every arc out of frontier with WriteMin and returns
// the set of vertices whose distance improved, each claimed exactly once
// for this substep. The substep is synchronous: source distances are
// snapshotted before any relaxation, so the round is a Jacobi-style
// Bellman–Ford iteration with deterministic results (the PRAM semantics
// the paper's substep bounds assume).
func (ws *Workspace) relaxPar(frontier []graph.V, st *Stats) []graph.V {
	subID := ws.subID
	p := parallel.Procs()
	if cap(ws.parts) < p {
		ws.parts = make([][]graph.V, p)
	}
	parts := ws.parts[:p]
	snap := sized(ws.snap, len(frontier))
	ws.snap = snap
	bits := ws.bits
	parallel.For(len(frontier), func(i int) {
		snap[i] = parallel.FromBits(atomic.LoadUint64(&bits[frontier[i]]))
	})
	var relaxed, scanned atomic.Int64
	parallel.Workers(len(frontier), func(w int, claim func() (int, bool)) {
		local := parts[w][:0]
		var rl, sc int64
		for {
			i, ok := claim()
			if !ok {
				break
			}
			u := frontier[i]
			du := snap[i]
			adj, wts := ws.g.Neighbors(u)
			sc += int64(len(adj))
			for j, v := range adj {
				nb := parallel.ToBits(du + wts[j])
				if parallel.WriteMin(&bits[v], nb) {
					rl++
					if parallel.Claim(&ws.sub[v], subID) {
						local = append(local, v)
					}
				}
			}
		}
		parts[w] = local
		relaxed.Add(rl)
		scanned.Add(sc)
	})
	st.Relaxations += relaxed.Load()
	st.EdgesScanned += scanned.Load()
	out := ws.updated[:0]
	for _, part := range parts {
		out = append(out, part...)
	}
	ws.updated = out
	return out
}
