package core

import (
	"math"
	"sort"
	"sync/atomic"

	"radiusstep/internal/graph"
	"radiusstep/internal/parallel"
)

// RelaxMode selects how a Bellman–Ford substep traverses the frontier's
// arcs. All modes compute byte-identical distances (each vertex ends a
// substep at the minimum over the same candidate set); they differ only
// in traversal direction and synchronization cost, so the driver is free
// to pick per substep.
type RelaxMode int

const (
	// RelaxAdaptive (the default) chooses push or pull per substep from
	// the frontier's outgoing-arc count: sparse frontiers push (work
	// proportional to the frontier), dense frontiers pull (no atomics,
	// work proportional to the unsettled remainder).
	RelaxAdaptive RelaxMode = iota
	// RelaxPush forces push-style relaxation (scatter with atomic
	// priority-writes).
	RelaxPush
	// RelaxPull forces pull-style relaxation (each unsettled vertex
	// gathers over its incident arcs; one plain write per improvement).
	RelaxPull
)

// pullAtomicFactor weighs the adaptive push/pull decision: a push arc
// costs an atomic priority-write, roughly this many times a pull arc's
// plain read. A substep pulls when pushing the frontier's arcs would
// cost more than sweeping every unsettled vertex (remaining arcs plus
// the O(n) settled-check scan).
const pullAtomicFactor = 3

// Claim-grain bounds for the edge-balanced push and the parallel pull.
// Workers claim consecutive chunks of arc (or vertex) space, so a skewed
// frontier (one hub plus many leaves) still splits evenly — the hub's
// arc range is shared between workers instead of serializing on one.
// The chunk size itself is adaptive (see adaptiveGrain): a fixed grain
// either starves balance on small substeps (too few chunks to share) or
// drowns large ones in claim traffic (one atomic add per chunk).
const (
	arcGrainMin = 512
	arcGrainMax = 8192

	pullGrainMin = 512
	pullGrainMax = 4096
)

// adaptiveGrain sizes a dynamic claim chunk for total work items split
// across the current worker count: aim for ~8 chunks per worker — enough
// slack for dynamic balancing when per-chunk costs vary, few enough that
// claim-counter traffic stays negligible — clamped to [minG, maxG] so
// tiny substeps keep chunks worth dispatching and huge ones don't widen
// the straggler tail.
func adaptiveGrain(total, minG, maxG int) int {
	g := total / (parallel.Procs() * 8)
	if g < minG {
		return minG
	}
	if g > maxG {
		return maxG
	}
	return g
}

// ubSlack widens the target-mode prune threshold by one part in 1e9.
// Tentative distances are float path sums carrying up to ~1 ulp of
// rounding per edge (2^-53 relative, so well under 1e-9 for any
// realistic path), and the prune test compares such sums against each
// other: without the widening, a path whose float sum is minimal could
// be pruned because rounding noise pushed its prefix a few ulps above
// the target's current bound. The slack makes the comparison immune to
// that noise — pruned solves stay byte-identical to unpruned ones —
// while admitting only candidates within 1e-9 relative of the bound,
// a vanishing loss of pruning power.
const ubSlack = 1e-9

// Workspace holds every buffer a solve needs — the distance bits, the
// settled/stamp arrays, the frontier lists, and per-stepper fringe
// structures. A zero workspace is ready to use; reusing one across
// solves (typically via a sync.Pool owned by the caller) makes repeated
// queries allocation-free in steady state, which is the hot path a
// serving daemon's cache misses pay. A Workspace is not safe for
// concurrent use; pool one per in-flight solve.
//
// Buffers are grow-only: a workspace that served a large graph keeps its
// capacity when later solving a small one, and all slices are re-sliced
// to the current vertex count on prepare.
type Workspace struct {
	g     *graph.CSR
	radii []float64

	bits []uint64 // tentative distances as priority-write float bits
	done []bool   // settled in an earlier step
	act  []uint32 // == step stamp: joined the active set this step
	sub  []uint32 // substep claim stamps (one improvement report per substep)
	seen []uint32 // per-step fringe dedup for the flat-fringe steppers
	infr []uint32 // == substep stamp: member of the current frontier (pull mode)

	active, frontier, next, updated []graph.V
	snap                            []float64 // frontier-indexed distance snapshot (push)
	pullSnap                        []float64 // vertex-indexed distance snapshot (pull)
	degOff                          []int64   // frontier degree prefix sums (edge-balanced push)
	parts                           []workerBuf

	// remArcs tracks the arcs incident to not-yet-settled vertices, the
	// denominator of the adaptive push/pull decision. Maintained by the
	// driver as vertices settle.
	remArcs int64

	// bound, when non-nil, is the target-mode goal-direction hook
	// (Params.Bound): an admissible lower bound on the remaining
	// distance from a vertex to boundTarget. ubPrior is the a-priori
	// upper bound on d(src, boundTarget) (+Inf when none); ub is the
	// per-substep snapshot min(ubPrior, δ(boundTarget)) that relax
	// paths prune against — snapshotted once per substep so pruning
	// decisions are deterministic and free of cross-worker reads. The
	// driver resets bound on every solve.
	bound       func(graph.V) float64
	boundTarget graph.V
	ubPrior     float64
	ub          float64
	// bcache memoizes bound(v) for the current solve as
	// Float64bits(b)+1, zero meaning "uncomputed" — see boundAt.
	bcache []uint64

	// probe is the current solve's cooperative-cancellation probe
	// (Params.Probe), reset by the driver on every solve; nil on the
	// hot path. The relax kernels poll it mid-substep — every
	// ~probeArcInterval scanned arcs in the scalar paths, once per
	// claim chunk in the parallel paths — and bail out of the substep
	// early when it has fired; the driver then unwinds the solve. A
	// bailed substep may leave the frontier bookkeeping short, which is
	// fine: the partial state is never read again (the driver returns
	// an error, and the next solve re-prepares everything).
	probe *Probe

	hp *heapStepper
	fs *frontierStepper
	rh *rhoStepper
	fl *flatStepper

	step  uint32 // current step stamp (1-based within a solve)
	subID uint32 // current substep stamp
}

// NewWorkspace returns an empty workspace. Buffers are sized lazily on
// first use.
func NewWorkspace() *Workspace { return &Workspace{} }

// prepare re-slices every shared buffer to n vertices and resets the
// per-solve state: distances to +Inf, settled marks to false. The stamp
// arrays are deliberately NOT cleared: ws.step and ws.subID increase
// monotonically across the workspace's lifetime, so a stamp written by
// an earlier solve can never equal a current one (freshly grown arrays
// are zero and stamps start at 1). nextStep/nextSubID re-zero an array
// on the once-per-4-billion wraparound. This keeps the per-query reset
// at two O(n) sweeps instead of five.
func (ws *Workspace) prepare(g *graph.CSR, radii []float64) {
	n := g.NumVertices()
	ws.g, ws.radii = g, radii
	ws.bits = sized(ws.bits, n)
	parallel.Fill(ws.bits, parallel.InfBits)
	ws.done = sized(ws.done, n)
	parallel.Fill(ws.done, false)
	ws.act = sized(ws.act, n)
	ws.sub = sized(ws.sub, n)
	ws.seen = sized(ws.seen, n)
	ws.infr = sized(ws.infr, n)
	ws.remArcs = int64(g.NumArcs())
}

// settled records that v left the unsettled remainder, keeping the
// adaptive-decision denominator current.
func (ws *Workspace) settled(v graph.V) {
	ws.remArcs -= int64(ws.g.Degree(v))
}

// nextStep advances the step stamp, clearing the step-stamped arrays on
// wraparound so stale stamps can never collide with a new step.
func (ws *Workspace) nextStep() uint32 {
	if ws.step == ^uint32(0) {
		parallel.Fill(ws.act, 0)
		parallel.Fill(ws.seen, 0)
		ws.step = 0
	}
	ws.step++
	return ws.step
}

// nextSubID advances the substep claim stamp, likewise clearing the
// claim-stamped arrays on wraparound.
func (ws *Workspace) nextSubID() uint32 {
	if ws.subID == ^uint32(0) {
		parallel.Fill(ws.sub, 0)
		parallel.Fill(ws.infr, 0)
		ws.subID = 0
	}
	ws.subID++
	return ws.subID
}

// resetBound sizes and clears the per-solve bound memo; the driver
// calls it once when a goal-directed solve begins.
func (ws *Workspace) resetBound(n int) {
	ws.bcache = sized(ws.bcache, n)
	parallel.Fill(ws.bcache, 0)
}

// boundAt memoizes ws.bound per vertex for the current solve: the k-way
// landmark scan behind the hook runs at most once per vertex instead of
// once per scanned arc — the difference between goal-directed pruning
// being a net win and a net loss on dense frontiers. The cache stores
// Float64bits(b)+1 so the zero value means "uncomputed" and reset is
// one memclr; atomics make concurrent fills race-free, and duplicate
// computations are benign because bound is pure (identical bits land
// either way).
func (ws *Workspace) boundAt(v graph.V) float64 {
	if c := atomic.LoadUint64(&ws.bcache[v]); c != 0 {
		return math.Float64frombits(c - 1)
	}
	b := ws.bound(v)
	atomic.StoreUint64(&ws.bcache[v], math.Float64bits(b)+1)
	return b
}

// sized returns s with length exactly n, reusing capacity when possible.
func sized[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// workerBuf is one worker's improved-vertex buffer, padded so adjacent
// workers' slice headers sit on distinct cache lines. Workers append to
// their buffer inside every parallel substep and write the header back
// when the claim loop drains; with bare slice headers (24 bytes) two or
// three workers share a line and those writebacks — plus the appends'
// header reloads — false-share at substep frequency. The 40-byte pad
// rounds each header up to one 64-byte line.
type workerBuf struct {
	buf []graph.V
	_   [64 - 24]byte
}

// growParts makes sure ws.parts has at least p per-worker buffers,
// PRESERVING the buffers that already exist: their grown capacity is the
// point of pooling them, so reallocation must never drop them (append
// keeps the old prefix and adds empty slots for the new workers).
func (ws *Workspace) growParts(p int) []workerBuf {
	for len(ws.parts) < p {
		ws.parts = append(ws.parts, workerBuf{})
	}
	return ws.parts[:p]
}

// mergeParts concatenates the per-worker buffers into ws.updated and
// resets every buffer to length zero, so a later substep that runs fewer
// workers can never re-merge a stale buffer from this one.
func (ws *Workspace) mergeParts(parts []workerBuf) []graph.V {
	out := ws.updated[:0]
	for w := range parts {
		out = append(out, parts[w].buf...)
		parts[w].buf = parts[w].buf[:0]
	}
	ws.updated = out
	return out
}

// relax runs one synchronous Bellman–Ford substep over frontier and
// returns the vertices whose distance improved, each reported once. The
// substep is Jacobi-style: source distances are snapshotted before any
// relaxation, so results (and therefore step/substep counts) are
// deterministic and identical across every mode and parallelism degree.
//
// mode picks the traversal: RelaxAdaptive compares the frontier's
// outgoing arcs against the unsettled remainder; seq (the sequential
// engine) always takes the scalar paths. On GOMAXPROCS=1 the scalar
// paths also serve the parallel engines — same distances, no atomics.
func (ws *Workspace) relax(frontier []graph.V, st *Stats, seq bool, mode RelaxMode) []graph.V {
	if ws.bound != nil {
		// One upper-bound snapshot per substep: the best known distance
		// to the target. Reading δ(target) here (between substeps, on
		// one goroutine) keeps the prune predicate a pure function of
		// the substep's Jacobi snapshot, so prune decisions — like the
		// distances themselves — do not depend on worker interleaving.
		ub := ws.ubPrior
		if td := parallel.FromBits(ws.bits[ws.boundTarget]); td < ub {
			ub = td
		}
		ws.ub = ub + ub*ubSlack
	}
	par := !seq && parallel.Procs() > 1
	totalArcs := int64(-1) // frontier arc count; built lazily, at most once
	pull := false
	switch mode {
	case RelaxPull:
		pull = true
	case RelaxPush:
		pull = false
	default:
		// Pull's payoff is skipping push's atomic priority-writes, so it
		// can only win on the parallel path: the scalar push already has
		// no atomics, and a scalar pull would scan a superset of its
		// work (frontier arcs are a subset of the unsettled remainder).
		// The degree prefix built for the decision is the same one the
		// edge-balanced push partitions by, so push (the common case)
		// pays for it only once.
		if par {
			totalArcs = ws.frontierDegOffSnap(frontier)
			pull = pullAtomicFactor*totalArcs > ws.remArcs+int64(len(ws.bits))
		}
	}
	if pull {
		st.PullSubsteps++
		if par {
			return ws.pullPar(frontier, st)
		}
		return ws.pullSeq(frontier, st)
	}
	st.PushSubsteps++
	if par {
		if totalArcs < 0 { // forced push: the decision never built the prefix
			totalArcs = ws.frontierDegOffSnap(frontier)
		}
		return ws.pushPar(frontier, totalArcs, st)
	}
	return ws.pushSeq(frontier, st)
}

// frontierDegOffSnap fills ws.degOff with the frontier's degree prefix
// sums (degOff[i] = arcs of frontier[:i]) AND ws.snap with the frontier's
// Jacobi distance snapshot, returning the total arc count. Fusing the two
// fills into one parallel pass removes a whole fork-join barrier from
// every parallel push substep — the degree fill and the snapshot read
// disjoint data, and both walk the same frontier indices, so one chunk
// claim covers both. When the adaptive decision later picks pull, the
// snapshot fill was wasted work, but it is one float read+write per
// frontier element against a pull sweep that scans every unsettled
// vertex — noise, and pull substeps are the rare case.
func (ws *Workspace) frontierDegOffSnap(frontier []graph.V) int64 {
	degOff := sized(ws.degOff, len(frontier)+1)
	ws.degOff = degOff
	snap := sized(ws.snap, len(frontier))
	ws.snap = snap
	degOff[0] = 0
	bits := ws.bits
	parallel.For(len(frontier), func(i int) {
		u := frontier[i]
		degOff[i+1] = int64(ws.g.Degree(u))
		snap[i] = parallel.FromBits(atomic.LoadUint64(&bits[u]))
	})
	return parallel.InclusiveScan(degOff[1:], degOff[1:])
}

// pushSeq is the scalar push substep: relax every arc out of frontier
// against a snapshot of the frontier's distances and return the vertices
// whose distance improved, each reported once.
func (ws *Workspace) pushSeq(frontier []graph.V, st *Stats) []graph.V {
	subID := ws.subID
	snap := sized(ws.snap, len(frontier))
	ws.snap = snap
	for i, u := range frontier {
		snap[i] = parallel.FromBits(ws.bits[u])
	}
	bnd, ub := ws.bound, ws.ub
	out := ws.updated[:0]
	var sinceProbe int
	for fi, u := range frontier {
		du := snap[fi]
		adj, wts := ws.g.Neighbors(u)
		// Mid-substep cancellation poll at arc granularity: a frontier
		// of hubs can scan millions of arcs in one substep, and the
		// per-substep poll alone would notice a cancel far too late.
		if sinceProbe += len(adj); sinceProbe >= probeArcInterval {
			sinceProbe = 0
			if ws.probe.Fired() {
				break
			}
		}
		// Expansion-time prune: if u itself cannot lie on a path that
		// beats the target bound, none of its relaxations can — the
		// landmark bound is consistent (|lb(u) - lb(v)| <= w(u,v)), so
		// every arc out of u would fail the write-time test anyway.
		// Skipping the whole adjacency here is what turns pruning into
		// saved scan work rather than just saved writes.
		if bnd != nil && du+ws.boundAt(u) > ub {
			st.Pruned += int64(len(adj))
			continue
		}
		st.EdgesScanned += int64(len(adj))
		for j, v := range adj {
			if ws.done[v] {
				continue
			}
			nd := du + wts[j]
			if nd >= parallel.FromBits(ws.bits[v]) {
				continue
			}
			// The improvement test runs first: it is one load against the
			// memoized bound's potential miss, and a candidate is written
			// iff it improves AND survives the bound — order-free.
			if bnd != nil && nd+ws.boundAt(v) > ub {
				st.Pruned++
				continue
			}
			ws.bits[v] = parallel.ToBits(nd)
			st.Relaxations++
			if ws.sub[v] != subID {
				ws.sub[v] = subID
				out = append(out, v)
			}
		}
	}
	ws.updated = out
	return out
}

// pushPar is the edge-balanced parallel push substep. The frontier's
// degree prefix (ws.degOff) and Jacobi snapshot (ws.snap) were both
// built by frontierDegOffSnap in one fused pass; totalArcs is the prefix
// total. The prefix partitions the concatenated arc ranges into
// adaptively-sized chunks that workers claim dynamically, so a hub
// vertex's arcs split across workers instead of making one worker a
// straggler (safe because relaxation targets are claimed with atomic
// priority-writes, not by arc ownership). Improved vertices are claimed
// once per substep via CAS stamps into padded per-worker buffers.
func (ws *Workspace) pushPar(frontier []graph.V, totalArcs int64, st *Stats) []graph.V {
	subID := ws.subID
	parts := ws.growParts(parallel.Procs())
	snap := ws.snap
	bits := ws.bits
	degOff := ws.degOff
	bnd, ub := ws.bound, ws.ub

	var relaxed, scanned, pruned atomic.Int64
	grain := adaptiveGrain(int(totalArcs), arcGrainMin, arcGrainMax)
	parallel.WorkersGrain(int(totalArcs), grain, func(w int, claim func() (int, int, bool)) {
		local := parts[w].buf[:0]
		var rl, sc, pr int64
		for {
			alo, ahi, ok := claim()
			if !ok {
				break
			}
			// Per-chunk cancellation poll: chunks are 512–8192 arcs, the
			// same order as the scalar kernels' probeArcInterval. Workers
			// stop claiming and drain through the join barrier, so the
			// fork-join discipline (and the race-free merge) is intact.
			if ws.probe.Fired() {
				break
			}
			// First frontier index whose arc range reaches past alo.
			fi := sort.Search(len(frontier), func(i int) bool { return degOff[i+1] > int64(alo) })
			for ; fi < len(frontier) && degOff[fi] < int64(ahi); fi++ {
				u := frontier[fi]
				du := snap[fi]
				adj, wts := ws.g.Neighbors(u)
				lo, hi := int64(alo)-degOff[fi], int64(ahi)-degOff[fi]
				if lo < 0 {
					lo = 0
				}
				if hi > int64(len(adj)) {
					hi = int64(len(adj))
				}
				// Expansion-time prune (see pushSeq): a source vertex
				// that cannot beat the target bound contributes nothing;
				// skip its share of the claimed arc range wholesale.
				if bnd != nil && du+ws.boundAt(u) > ub {
					pr += hi - lo
					continue
				}
				sc += hi - lo
				for j := lo; j < hi; j++ {
					v := adj[j]
					nd := du + wts[j]
					if bnd != nil {
						// Monotone filter first: the cell only decreases,
						// so a candidate at or above the current value
						// would fail WriteMin anyway and needs no bound.
						if nd >= parallel.FromBits(atomic.LoadUint64(&bits[v])) {
							continue
						}
						if nd+ws.boundAt(v) > ub {
							pr++
							continue
						}
					}
					nb := parallel.ToBits(nd)
					if parallel.WriteMin(&bits[v], nb) {
						rl++
						if parallel.Claim(&ws.sub[v], subID) {
							local = append(local, v)
						}
					}
				}
			}
		}
		parts[w].buf = local
		relaxed.Add(rl)
		scanned.Add(sc)
		pruned.Add(pr)
	})
	st.Relaxations += relaxed.Load()
	st.EdgesScanned += scanned.Load()
	st.Pruned += pruned.Load()
	return ws.mergeParts(parts)
}

// markFrontier stamps the frontier's membership and snapshots its
// distances by vertex id, the lookup structure pull sweeps read.
func (ws *Workspace) markFrontier(frontier []graph.V, par bool) []float64 {
	subID := ws.subID
	fs := sized(ws.pullSnap, len(ws.bits))
	ws.pullSnap = fs
	if par {
		bits := ws.bits
		parallel.For(len(frontier), func(i int) {
			u := frontier[i]
			ws.infr[u] = subID
			fs[u] = parallel.FromBits(atomic.LoadUint64(&bits[u]))
		})
		return fs
	}
	for _, u := range frontier {
		ws.infr[u] = subID
		fs[u] = parallel.FromBits(ws.bits[u])
	}
	return fs
}

// pullSeq is the scalar pull substep: every unsettled vertex gathers
// over its incident arcs (the graph is undirected, so out-arcs are
// in-arcs) taking the min over frontier neighbors' snapshot distances.
// Exactly one writer per vertex, so no claim stamps are needed — an
// improved vertex is reported by its owner.
func (ws *Workspace) pullSeq(frontier []graph.V, st *Stats) []graph.V {
	subID := ws.subID
	fs := ws.markFrontier(frontier, false)
	bnd, ub := ws.bound, ws.ub
	out := ws.updated[:0]
	n := len(ws.bits)
	var sinceProbe int
	for v := 0; v < n; v++ {
		if ws.done[v] {
			continue
		}
		adj, wts := ws.g.Neighbors(graph.V(v))
		if sinceProbe += len(adj); sinceProbe >= probeArcInterval {
			sinceProbe = 0
			if ws.probe.Fired() {
				break
			}
		}
		st.EdgesScanned += int64(len(adj))
		dv := parallel.FromBits(ws.bits[v])
		nd := dv
		for j, u := range adj {
			if ws.infr[u] == subID {
				if c := fs[u] + wts[j]; c < nd {
					nd = c
				}
			}
		}
		if nd < dv {
			// Pull gathers the min first, so the prune test runs once
			// per improved vertex, not per arc: if the min candidate
			// cannot beat the target bound, no candidate can.
			if bnd != nil && nd+ws.boundAt(graph.V(v)) > ub {
				st.Pruned++
				continue
			}
			ws.bits[v] = parallel.ToBits(nd)
			st.Relaxations++
			out = append(out, graph.V(v))
		}
	}
	ws.updated = out
	return out
}

// pullPar is the parallel pull substep: vertex-partitioned, so each
// vertex has exactly one writer and the sweep needs no atomics at all —
// the read side touches only the immutable frontier snapshot and the
// worker's own distance cells.
func (ws *Workspace) pullPar(frontier []graph.V, st *Stats) []graph.V {
	subID := ws.subID
	fs := ws.markFrontier(frontier, true)
	parts := ws.growParts(parallel.Procs())
	bits := ws.bits
	infr := ws.infr
	bnd, ub := ws.bound, ws.ub
	var relaxed, scanned, pruned atomic.Int64
	grain := adaptiveGrain(len(bits), pullGrainMin, pullGrainMax)
	parallel.WorkersGrain(len(bits), grain, func(w int, claim func() (int, int, bool)) {
		local := parts[w].buf[:0]
		var rl, sc, pr int64
		for {
			lo, hi, ok := claim()
			if !ok {
				break
			}
			// Per-chunk cancellation poll (see pushPar).
			if ws.probe.Fired() {
				break
			}
			for v := lo; v < hi; v++ {
				if ws.done[v] {
					continue
				}
				adj, wts := ws.g.Neighbors(graph.V(v))
				sc += int64(len(adj))
				dv := parallel.FromBits(bits[v])
				nd := dv
				for j, u := range adj {
					if infr[u] == subID {
						if c := fs[u] + wts[j]; c < nd {
							nd = c
						}
					}
				}
				if nd < dv {
					if bnd != nil && nd+ws.boundAt(graph.V(v)) > ub {
						pr++
						continue
					}
					bits[v] = parallel.ToBits(nd)
					rl++
					local = append(local, graph.V(v))
				}
			}
		}
		parts[w].buf = local
		relaxed.Add(rl)
		scanned.Add(sc)
		pruned.Add(pr)
	})
	st.Relaxations += relaxed.Load()
	st.EdgesScanned += scanned.Load()
	st.Pruned += pruned.Load()
	return ws.mergeParts(parts)
}
