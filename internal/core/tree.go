package core

import (
	"math"

	"radiusstep/internal/graph"
	"radiusstep/internal/parallel"
)

// ShortestPathTree derives a parent array from a correct distance vector:
// parent[v] is a neighbor u with dist[u] + w(u,v) == dist[v], choosing
// the smallest (dist[u], u) among tight candidates so the tree is
// deterministic regardless of which engine produced the distances.
// parent[src] == src; unreachable vertices get -1. The derivation is a
// single parallel pass over the arcs.
func ShortestPathTree(g *graph.CSR, src graph.V, dist []float64) []graph.V {
	n := g.NumVertices()
	parent := make([]graph.V, n)
	parallel.For(n, func(vi int) {
		v := graph.V(vi)
		switch {
		case v == src:
			parent[v] = src
			return
		case math.IsInf(dist[v], 1):
			parent[v] = -1
			return
		}
		best := graph.V(-1)
		bestD := math.Inf(1)
		adj, ws := g.Neighbors(v)
		for i, u := range adj {
			if dist[u]+ws[i] == dist[v] {
				if dist[u] < bestD || (dist[u] == bestD && u < best) {
					best, bestD = u, dist[u]
				}
			}
		}
		parent[v] = best // -1 would mean dist was not a valid SSSP vector
	})
	return parent
}

// PathTo reconstructs the vertex sequence src..dst from a parent array.
// It returns nil when dst is unreachable.
func PathTo(parent []graph.V, dst graph.V) []graph.V {
	if dst < 0 || int(dst) >= len(parent) || parent[dst] == -1 {
		return nil
	}
	var rev []graph.V
	for v := dst; ; v = parent[v] {
		rev = append(rev, v)
		if parent[v] == v {
			break
		}
		if len(rev) > len(parent) {
			return nil // cycle: parent array is corrupt
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// SolveRefTarget is SolveRef with early termination: it stops as soon as
// target is settled (its distance is then exact — by Theorem 3.1 the
// settled set is always correct) and returns the target's distance plus
// the partial distance vector. Distances of vertices not yet settled are
// tentative upper bounds or +Inf. Point-to-point queries on large graphs
// typically settle the target after exploring only the ball of radius
// d(src, target).
func SolveRefTarget(g *graph.CSR, radii []float64, src, target graph.V) (float64, []float64, Stats, error) {
	return SolveKindTarget(g, radii, src, target, KindSequential, Params{}, nil)
}
