package core

import (
	"math"

	"radiusstep/internal/graph"
)

// refHeapEnt is a lazy-deletion heap entry keyed by key with payload v.
type refHeapEnt struct {
	key float64
	v   graph.V
}

// refHeap is a plain binary min-heap with lazy deletion: stale entries
// (whose key no longer matches the vertex's current key) are skipped at
// pop time. Decrease-key is "push a fresh entry".
type refHeap []refHeapEnt

func (h *refHeap) push(e refHeapEnt) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s[p].key <= e.key {
			break
		}
		s[i] = s[p]
		i = p
	}
	s[i] = e
}

func (h *refHeap) pop() refHeapEnt {
	s := *h
	top := s[0]
	last := len(s) - 1
	e := s[last]
	*h = s[:last]
	if last > 0 {
		i := 0
		for {
			c := 2*i + 1
			if c >= last {
				break
			}
			if c+1 < last && s[c+1].key < s[c].key {
				c++
			}
			if s[c].key >= e.key {
				break
			}
			s[i] = s[c]
			i = c
		}
		s[i] = e
	}
	return top
}

// SolveRef computes shortest-path distances from src with the reference
// (sequential) Radius-Stepping. It returns +Inf for unreachable vertices.
func SolveRef(g *graph.CSR, radii []float64, src graph.V) ([]float64, Stats, error) {
	return SolveRefTrace(g, radii, src, nil)
}

// SolveRefTrace is SolveRef with an optional per-step observer, used by
// the Figure-1 demo and by tests that assert the step structure.
func SolveRefTrace(g *graph.CSR, radii []float64, src graph.V, trace func(StepTrace)) ([]float64, Stats, error) {
	return solveRef(g, radii, src, trace, -1)
}

// solveRef is the reference engine. When stopAt >= 0 the solve ends as
// soon as that vertex is settled (its distance is then exact by Theorem
// 3.1); remaining distances are tentative upper bounds or +Inf.
func solveRef(g *graph.CSR, radii []float64, src graph.V, trace func(StepTrace), stopAt graph.V) ([]float64, Stats, error) {
	if err := validate(g, radii, src); err != nil {
		return nil, Stats{}, err
	}
	n := g.NumVertices()
	var st Stats
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	done := make([]bool, n)  // settled in an earlier step
	act := make([]uint32, n) // == step: active (settled) in current step
	sub := make([]uint32, n) // dedupe stamp for substep frontiers
	var q, r refHeap         // Q keyed by δ(v), R keyed by δ(v)+r(v)

	dist[src] = 0
	done[src] = true
	// Line 2 of Algorithm 1: relax the source's neighbors up front.
	adj, ws := g.Neighbors(src)
	st.EdgesScanned += int64(len(adj))
	for i, v := range adj {
		if ws[i] < dist[v] {
			dist[v] = ws[i]
			st.Relaxations++
			q.push(refHeapEnt{dist[v], v})
			r.push(refHeapEnt{dist[v] + radii[v], v})
		}
	}

	step := uint32(0)
	subID := uint32(0)
	active := make([]graph.V, 0, 64)
	frontier := make([]graph.V, 0, 64)
	next := make([]graph.V, 0, 64)

	for {
		// Pop stale R entries to find the round distance d_i and lead.
		var di float64
		var lead graph.V = -1
		for len(r) > 0 {
			top := r[0]
			if done[top.v] || top.key != dist[top.v]+radii[top.v] {
				r.pop()
				continue
			}
			di = top.key
			lead = top.v
			break
		}
		if lead == -1 {
			break // everything reached is settled
		}
		step++
		st.Steps++

		// Extract A = {v unsettled : δ(v) <= d_i} from Q.
		active = active[:0]
		for len(q) > 0 {
			top := q[0]
			if done[top.v] || top.key != dist[top.v] {
				q.pop()
				continue
			}
			if top.key > di {
				break
			}
			q.pop()
			act[top.v] = step
			active = append(active, top.v)
		}

		// Bellman–Ford substeps: relax from changed vertices only; a
		// round that produces no δ(v) <= d_i update is the last. Each
		// substep is synchronous (Jacobi): relaxations read the
		// distances as of the start of the substep, matching the PRAM
		// semantics of the paper and making substep counts identical
		// across all engines.
		frontier = append(frontier[:0], active...)
		snap := make([]float64, 0, len(frontier))
		substeps := 0
		for len(frontier) > 0 {
			substeps++
			subID++
			next = next[:0]
			snap = snap[:0]
			for _, u := range frontier {
				snap = append(snap, dist[u])
			}
			for fi, u := range frontier {
				du := snap[fi]
				adj, ws := g.Neighbors(u)
				st.EdgesScanned += int64(len(adj))
				for i, v := range adj {
					if done[v] {
						continue
					}
					nd := du + ws[i]
					if nd >= dist[v] {
						continue
					}
					dist[v] = nd
					st.Relaxations++
					if nd <= di {
						if act[v] != step {
							act[v] = step
							active = append(active, v)
						}
						if sub[v] != subID {
							sub[v] = subID
							next = append(next, v)
						}
					} else {
						q.push(refHeapEnt{nd, v})
						r.push(refHeapEnt{nd + radii[v], v})
					}
				}
			}
			frontier, next = next, frontier
		}
		st.Substeps += substeps
		if substeps > st.MaxSubsteps {
			st.MaxSubsteps = substeps
		}
		if len(active) > st.MaxStep {
			st.MaxStep = len(active)
		}
		for _, v := range active {
			done[v] = true
		}
		if trace != nil {
			trace(StepTrace{Step: int(step), Di: di, Lead: lead, Settled: len(active), Substeps: substeps})
		}
		if stopAt >= 0 && done[stopAt] {
			break
		}
	}
	return dist, st, nil
}
