package core

import (
	"radiusstep/internal/graph"
	"radiusstep/internal/parallel"
)

// refHeapEnt is a lazy-deletion heap entry keyed by key with payload v.
type refHeapEnt struct {
	key float64
	v   graph.V
}

// refHeap is a plain binary min-heap with lazy deletion: stale entries
// (whose key no longer matches the vertex's current key) are skipped at
// pop time. Decrease-key is "push a fresh entry".
type refHeap []refHeapEnt

func (h *refHeap) push(e refHeapEnt) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s[p].key <= e.key {
			break
		}
		s[i] = s[p]
		i = p
	}
	s[i] = e
}

func (h *refHeap) pop() refHeapEnt {
	s := *h
	top := s[0]
	last := len(s) - 1
	e := s[last]
	*h = s[:last]
	if last > 0 {
		i := 0
		for {
			c := 2*i + 1
			if c >= last {
				break
			}
			if c+1 < last && s[c+1].key < s[c].key {
				c++
			}
			if s[c].key >= e.key {
				break
			}
			s[i] = s[c]
			i = c
		}
		s[i] = e
	}
	return top
}

// heapStepper is the sequential reference fringe of Algorithm 1: two
// lazy-deletion binary heaps, Q keyed by δ(v) and R keyed by δ(v)+r(v).
// Staleness is detected at pop time by comparing an entry's key with the
// vertex's current distance, so push and settle never search the heaps.
type heapStepper struct {
	ws   *Workspace
	q, r refHeap
}

func (h *heapStepper) reset() {
	h.q, h.r = h.q[:0], h.r[:0]
}

func (h *heapStepper) seed(vs []graph.V) {
	for _, v := range vs {
		h.push(v, parallel.FromBits(h.ws.bits[v]))
	}
}

func (h *heapStepper) target() (float64, graph.V, bool) {
	// Pop stale R entries to find the round distance d_i and the lead.
	for len(h.r) > 0 {
		top := h.r[0]
		if h.ws.done[top.v] || top.key != parallel.FromBits(h.ws.bits[top.v])+h.ws.radii[top.v] {
			h.r.pop()
			continue
		}
		return top.key, top.v, true
	}
	return 0, -1, false
}

func (h *heapStepper) collect(di float64, dst []graph.V) []graph.V {
	for len(h.q) > 0 {
		top := h.q[0]
		if h.ws.done[top.v] || top.key != parallel.FromBits(h.ws.bits[top.v]) {
			h.q.pop()
			continue
		}
		if top.key > di {
			break
		}
		h.q.pop()
		dst = append(dst, top.v)
	}
	return dst
}

func (h *heapStepper) push(v graph.V, d float64) {
	h.q.push(refHeapEnt{d, v})
	h.r.push(refHeapEnt{d + h.ws.radii[v], v})
}

// settle is a no-op: the vertex's heap entries go stale (its distance
// dropped below their keys) and lazy deletion skips them.
func (h *heapStepper) settle(graph.V) {}

func (h *heapStepper) commit() {}

// fringe reports the Q heap length — an overcount when lazy-deleted
// entries remain; trace annotation only.
func (h *heapStepper) fringe() int { return len(h.q) }

// SolveRef computes shortest-path distances from src with the reference
// (sequential) Radius-Stepping. It returns +Inf for unreachable vertices.
func SolveRef(g *graph.CSR, radii []float64, src graph.V) ([]float64, Stats, error) {
	return SolveRefTrace(g, radii, src, nil)
}

// SolveRefTrace is SolveRef with an optional per-step observer, used by
// the Figure-1 demo and by tests that assert the step structure.
func SolveRefTrace(g *graph.CSR, radii []float64, src graph.V, trace func(StepTrace)) ([]float64, Stats, error) {
	return solve(g, radii, src, KindSequential, Params{}, nil, trace, -1)
}
