package core

import (
	"math"
	"runtime"
	"testing"

	"radiusstep/internal/baseline"
	"radiusstep/internal/check"
	"radiusstep/internal/graph"
	"radiusstep/internal/parallel"
	"radiusstep/internal/preprocess"
)

// multiEdgeGraph hand-builds a CSR with genuine parallel arcs (the
// Builder merges duplicates, so multigraphs can only arise from direct
// construction or external data): vertices 0..3 with a doubled 0–1 edge
// (weights 2 and 3), a zero-weight 1–2 edge, and a 0–3 edge.
func multiEdgeGraph() *graph.CSR {
	type arc struct {
		u, v graph.V
		w    float64
	}
	arcs := []arc{
		{0, 1, 2}, {0, 1, 3}, {0, 3, 7},
		{1, 0, 2}, {1, 0, 3}, {1, 2, 0},
		{2, 1, 0},
		{3, 0, 7},
	}
	g := &graph.CSR{Off: make([]int64, 5)}
	for _, a := range arcs {
		g.Off[a.u+1]++
	}
	for i := 1; i < len(g.Off); i++ {
		g.Off[i] += g.Off[i-1]
	}
	g.Adj = make([]graph.V, len(arcs))
	g.W = make([]float64, len(arcs))
	pos := append([]int64(nil), g.Off[:4]...)
	for _, a := range arcs {
		g.Adj[pos[a.u]] = a.v
		g.W[pos[a.u]] = a.w
		pos[a.u]++
	}
	return g
}

// disconnectedZeroMultigraph hand-builds the nastiest frontier input in
// one graph: two components, genuine parallel arcs INCLUDING a doubled
// zero-weight pair (so the ordered frontier sees repeated pushes of the
// same vertex at equal keys), and an isolated vertex. Targets the
// frontier substrate's stamp-based dedup on the engines rebuilt over it.
func disconnectedZeroMultigraph() *graph.CSR {
	type arc struct {
		u, v graph.V
		w    float64
	}
	arcs := []arc{
		// Component A: 0-1 doubled at zero weight, 1-2 zero, 0-2 heavy.
		{0, 1, 0}, {0, 1, 0}, {0, 2, 9},
		{1, 0, 0}, {1, 0, 0}, {1, 2, 0},
		{2, 1, 0}, {2, 0, 9},
		// Component B: 3-4 doubled with distinct weights.
		{3, 4, 1}, {3, 4, 2},
		{4, 3, 1}, {4, 3, 2},
		// Vertex 5 is isolated.
	}
	g := &graph.CSR{Off: make([]int64, 7)}
	for _, a := range arcs {
		g.Off[a.u+1]++
	}
	for i := 1; i < len(g.Off); i++ {
		g.Off[i] += g.Off[i-1]
	}
	g.Adj = make([]graph.V, len(arcs))
	g.W = make([]float64, len(arcs))
	pos := append([]int64(nil), g.Off[:6]...)
	for _, a := range arcs {
		g.Adj[pos[a.u]] = a.v
		g.W[pos[a.u]] = a.w
		pos[a.u]++
	}
	return g
}

// clique returns the complete unit-weight graph on n vertices — the
// dense workload whose frontier arcs dominate the unsettled remainder,
// forcing the adaptive rule into pull.
func clique(n int) *graph.CSR {
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.Add(graph.V(u), graph.V(v), 1)
		}
	}
	return b.Build()
}

// TestFiveEnginesByteIdenticalPushAndPull is the cross-mode sibling of
// TestFiveEnginesByteIdenticalDistances: every engine kind, forced
// through push-only, pull-only, and adaptive substeps, must produce
// byte-identical distances on random graphs with zero-weight edges and
// disconnected components, on a genuine multigraph, and on a dense
// clique. Run under -race by CI, which also exercises the parallel
// push (edge-balanced) and pull (atomics-free sweep) kernels when
// GOMAXPROCS > 1.
func TestFiveEnginesByteIdenticalPushAndPull(t *testing.T) {
	ws := NewWorkspace() // shared across kinds, modes, and graphs: pooled-buffer reuse
	modes := []RelaxMode{RelaxPush, RelaxPull, RelaxAdaptive}
	graphs := []*graph.CSR{
		multiEdgeGraph(),
		disconnectedZeroMultigraph(),
		clique(40),
	}
	for trial := 0; trial < 12; trial++ {
		n := 25 + trial*11
		graphs = append(graphs, randomGraph(n, n*(1+trial%4), int64(trial)*7817+5))
	}
	for gi, g := range graphs {
		n := g.NumVertices()
		radii, err := preprocess.RadiiOnly(g, 1+gi%5)
		if err != nil {
			t.Fatal(err)
		}
		src := graph.V(gi % n)
		want := baseline.Dijkstra(g, src)
		for _, kind := range allKinds() {
			for _, mode := range modes {
				got, st, err := SolveKind(g, radii, src, kind, Params{Relax: mode}, ws)
				if err != nil {
					t.Fatalf("graph %d %s mode=%d: %v", gi, kind, mode, err)
				}
				for v := range got {
					if math.Float64bits(got[v]) != math.Float64bits(want[v]) {
						t.Fatalf("graph %d %s mode=%d: dist[%d] = %v, want %v",
							gi, kind, mode, v, got[v], want[v])
					}
				}
				if err := check.VerifyDistances(g, src, got); err != nil {
					t.Fatalf("graph %d %s mode=%d: certificate: %v", gi, kind, mode, err)
				}
				if st.PushSubsteps+st.PullSubsteps != st.Substeps {
					t.Fatalf("graph %d %s mode=%d: push %d + pull %d != substeps %d",
						gi, kind, mode, st.PushSubsteps, st.PullSubsteps, st.Substeps)
				}
				switch mode {
				case RelaxPush:
					if st.PullSubsteps != 0 {
						t.Fatalf("graph %d %s: forced push ran %d pull substeps", gi, kind, st.PullSubsteps)
					}
				case RelaxPull:
					if st.PushSubsteps != 0 {
						t.Fatalf("graph %d %s: forced pull ran %d push substeps", gi, kind, st.PushSubsteps)
					}
				}
			}
		}
	}
}

// TestRelaxModesKeepStepStructure: the mode only changes traversal
// direction, never the updated sets, so step and substep counts must be
// identical across modes for every engine.
func TestRelaxModesKeepStepStructure(t *testing.T) {
	g := randomGraph(300, 900, 99)
	radii, err := preprocess.RadiiOnly(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range allKinds() {
		var ref Stats
		for i, mode := range []RelaxMode{RelaxPush, RelaxPull, RelaxAdaptive} {
			_, st, err := SolveKind(g, radii, 0, kind, Params{Relax: mode}, nil)
			if err != nil {
				t.Fatalf("%s mode=%d: %v", kind, mode, err)
			}
			if i == 0 {
				ref = st
				continue
			}
			if st.Steps != ref.Steps || st.Substeps != ref.Substeps {
				t.Fatalf("%s mode=%d: steps/substeps %d/%d, push mode had %d/%d",
					kind, mode, st.Steps, st.Substeps, ref.Steps, ref.Substeps)
			}
		}
	}
}

// TestAdaptivePullTriggersOnDenseFrontier: on a clique the first step's
// frontier carries almost every remaining arc, so the adaptive rule must
// choose at least one pull substep for the parallel kinds. Pull only
// pays off by skipping push's atomics, so the adaptive rule never picks
// it single-threaded — raise GOMAXPROCS for the duration.
func TestAdaptivePullTriggersOnDenseFrontier(t *testing.T) {
	if parallel.Procs() == 1 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(2))
	}
	g := clique(48)
	want := baseline.Dijkstra(g, 0)
	got, st, err := SolveKind(g, nil, 0, KindDelta, Params{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if i := check.SameDistances(want, got, 0); i >= 0 {
		t.Fatalf("clique distances wrong at %d", i)
	}
	if st.PullSubsteps == 0 {
		t.Fatalf("adaptive mode never pulled on a clique (push=%d pull=%d)",
			st.PushSubsteps, st.PullSubsteps)
	}
}

// TestSolveKindRejectsUnknownRelaxMode: the force knob is validated like
// every other enum in the framework.
func TestSolveKindRejectsUnknownRelaxMode(t *testing.T) {
	g := clique(4)
	if _, _, err := SolveKind(g, nil, 0, KindDelta, Params{Relax: RelaxMode(9)}, nil); err == nil {
		t.Fatal("unknown relax mode accepted")
	}
	if _, _, err := SolveKind(g, nil, 0, KindDelta, Params{Relax: RelaxMode(-1)}, nil); err == nil {
		t.Fatal("negative relax mode accepted")
	}
}
