package core

import (
	"math"
	"testing"

	"radiusstep/internal/baseline"
	"radiusstep/internal/graph"
	"radiusstep/internal/landmark"
	"radiusstep/internal/preprocess"
)

// testLandmarks builds a k-landmark ALT set over g with the sequential
// oracle supplying the distance vectors — the same bound construction
// the solver layer wires into Params, minus everything but the math.
func testLandmarks(t testing.TB, g *graph.CSR, k int) *landmark.Set {
	t.Helper()
	set, err := landmark.Build(g, k, landmark.Farthest, func(src graph.V) ([]float64, error) {
		return baseline.Dijkstra(g, src), nil
	})
	if err != nil {
		t.Fatalf("landmark.Build: %v", err)
	}
	return set
}

// TestFiveEnginesTargetPruneByteIdentical is the goal-directed
// differential property test: on random graphs (zero-weight edges,
// disconnected components) plus the hand-built multigraph fixtures,
// every engine's target solve must return the full solve's dist[target]
// bit-for-bit — without pruning, and with the ALT landmark bound and
// a-priori estimate installed. Unpruned solves must report zero pruned
// candidates, and a FULL solve must ignore the hook entirely. Run under
// -race by CI at GOMAXPROCS=4.
func TestFiveEnginesTargetPruneByteIdentical(t *testing.T) {
	ws := NewWorkspace() // shared across kinds and graphs: pooled-buffer reuse
	graphs := []*graph.CSR{
		multiEdgeGraph(),
		disconnectedZeroMultigraph(),
	}
	for trial := 0; trial < 14; trial++ {
		n := 24 + trial*9
		graphs = append(graphs, randomGraph(n, n*(1+trial%4), int64(trial)*104729+3))
	}
	var totalPruned int64
	for gi, g := range graphs {
		n := g.NumVertices()
		radii, err := preprocess.RadiiOnly(g, 1+gi%6)
		if err != nil {
			t.Fatal(err)
		}
		src := graph.V(gi % n)
		want := baseline.Dijkstra(g, src)
		set := testLandmarks(t, g, 1+gi%4)
		targets := []graph.V{
			graph.V((gi*13 + 1) % n), // arbitrary interior vertex
			graph.V(n - 1),           // includes unreachable components
			src,                      // degenerate src == dst
		}
		for _, kind := range allKinds() {
			for _, dst := range targets {
				d, _, st, err := SolveKindTarget(g, radii, src, dst, kind, Params{}, ws)
				if err != nil {
					t.Fatalf("graph %d %s target %d: %v", gi, kind, dst, err)
				}
				if math.Float64bits(d) != math.Float64bits(want[dst]) {
					t.Fatalf("graph %d %s target %d: unpruned %v, want %v", gi, kind, dst, d, want[dst])
				}
				if st.Pruned != 0 {
					t.Fatalf("graph %d %s target %d: unpruned solve reported %d pruned candidates",
						gi, kind, dst, st.Pruned)
				}
				p := Params{Bound: set.BoundTo(dst), UpperBound: set.Estimate(src, dst)}
				dp, distp, stp, err := SolveKindTarget(g, radii, src, dst, kind, p, ws)
				if err != nil {
					t.Fatalf("graph %d %s target %d pruned: %v", gi, kind, dst, err)
				}
				if math.Float64bits(dp) != math.Float64bits(want[dst]) {
					t.Fatalf("graph %d %s target %d: pruned %v (bits %x), want %v (bits %x)",
						gi, kind, dst, dp, math.Float64bits(dp), want[dst], math.Float64bits(want[dst]))
				}
				if math.Float64bits(distp[dst]) != math.Float64bits(dp) {
					t.Fatalf("graph %d %s target %d: dist[target] %v disagrees with returned %v",
						gi, kind, dst, distp[dst], dp)
				}
				totalPruned += stp.Pruned
			}
			// A full solve must ignore the goal-direction hook: every
			// distance byte-identical, nothing counted as pruned.
			got, st, err := SolveKind(g, radii, src, kind,
				Params{Bound: set.BoundTo(targets[0]), UpperBound: set.Estimate(src, targets[0])}, ws)
			if err != nil {
				t.Fatalf("graph %d %s full-with-hook: %v", gi, kind, err)
			}
			if st.Pruned != 0 {
				t.Fatalf("graph %d %s: full solve pruned %d candidates", gi, kind, st.Pruned)
			}
			for v := range got {
				if math.Float64bits(got[v]) != math.Float64bits(want[v]) {
					t.Fatalf("graph %d %s: full solve with hook: dist[%d] = %v, want %v",
						gi, kind, v, got[v], want[v])
				}
			}
		}
	}
	// The property "pruned solves are exact" is vacuous if the bound
	// never fires; make sure the suite actually exercised pruning.
	if totalPruned == 0 {
		t.Fatal("no solve pruned a single candidate — the landmark bound never fired")
	}
}

// FuzzLandmarkBound fuzzes the two properties the byte-identical
// pruning guarantee rests on: the landmark lower bound is admissible
// (never exceeds the true distance from the sequential oracle), and a
// target solve with the bound and a-priori estimate installed returns
// the oracle's distance bit-for-bit on every engine — in particular,
// never +Inf for a reachable target.
func FuzzLandmarkBound(f *testing.F) {
	f.Add(int64(1), uint8(20), uint8(2), uint8(0), uint8(5))
	f.Add(int64(42), uint8(47), uint8(0), uint8(3), uint8(3))
	f.Add(int64(-7), uint8(9), uint8(3), uint8(8), uint8(1))
	f.Add(int64(1299721), uint8(31), uint8(1), uint8(30), uint8(30))
	f.Fuzz(func(t *testing.T, seed int64, nn, mm, ss, tt uint8) {
		n := 2 + int(nn)%48
		g := randomGraph(n, n*(1+int(mm)%4), seed)
		src := graph.V(int(ss) % n)
		dst := graph.V(int(tt) % n)
		set := testLandmarks(t, g, 1+int(uint64(seed)%4))

		// Admissibility: LowerBound(v, dst) <= d(v, dst) for every v
		// (the graph is undirected, so Dijkstra from dst is the oracle
		// for distances TO dst). Inf > Inf is false, so certified
		// disconnection passes the same comparison.
		toDst := baseline.Dijkstra(g, dst)
		for v := 0; v < n; v++ {
			if lb := set.LowerBound(graph.V(v), dst); lb > toDst[v] {
				t.Fatalf("inadmissible bound: LowerBound(%d,%d) = %v > true %v", v, dst, lb, toDst[v])
			}
		}
		if est := set.Estimate(src, dst); est < toDst[src] {
			t.Fatalf("Estimate(%d,%d) = %v below true distance %v", src, dst, est, toDst[src])
		}

		// Pruned target solves stay exact on every engine.
		want := baseline.Dijkstra(g, src)
		radii, err := preprocess.RadiiOnly(g, 2)
		if err != nil {
			t.Fatal(err)
		}
		p := Params{Bound: set.BoundTo(dst), UpperBound: set.Estimate(src, dst)}
		for _, kind := range allKinds() {
			d, _, _, err := SolveKindTarget(g, radii, src, dst, kind, p, nil)
			if err != nil {
				t.Fatalf("%s: %v", kind, err)
			}
			if math.Float64bits(d) != math.Float64bits(want[dst]) {
				t.Fatalf("%s: pruned d(%d,%d) = %v, want %v", kind, src, dst, d, want[dst])
			}
		}
	})
}
