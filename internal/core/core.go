// Package core implements the unified stepping-engine framework behind
// the library: one driver (see solve in stepper.go) runs synchronous
// Bellman–Ford substeps against a pluggable Stepper that owns the fringe
// of reached-but-unsettled vertices and chooses each step's settling
// threshold d_i. Five engines plug in, all computing identical
// distances:
//
//   - KindSequential (SolveRef): Radius-Stepping with lazy-deletion
//     heaps and a sequential relax loop, faithful to Algorithm 1. It is
//     the fastest single-thread variant and the one experiments use for
//     step counting.
//   - KindParallel (Solve): the paper's efficient parallel
//     implementation (Algorithm 2) on the flat ordered-frontier
//     substrate (internal/frontier): the priority set Q is a collection
//     of lazy-batched distance-sorted runs updated with bulk split/
//     union, the d_i = min δ(v)+r(v) query replaces the R set, and
//     substeps relax edges concurrently with priority-writes.
//   - KindFlat (SolveFlat): the §3.4 frontier engine that avoids ordered
//     sets by scanning the (small) fringe to pick each round distance;
//     on unweighted graphs this is the paper's parallel-BFS-style
//     variant.
//   - KindDelta (SolveDelta): Δ-stepping expressed as a step-target
//     rule — d_i is the ceiling of the lowest occupied Δ-bucket — the
//     fixed-width strategy Radius-Stepping refines.
//   - KindRho (SolveRho): ρ-stepping — d_i is the ρ-th smallest fringe
//     distance, so each step settles (at least) the ρ closest vertices.
//
// The three radius engines take the per-vertex radii r(v) produced by
// preprocessing and yield identical step/substep counts; correctness
// holds for any non-negative radii (Theorem 3.1), while the step and
// substep bounds require the (k, ρ)-graph property. The Δ- and
// ρ-stepping engines ignore the radii entirely.
//
// Repeated solves can reuse a Workspace (pooled distance, stamp, heap
// and frontier buffers), making steady-state queries allocation-free on
// the sequential engine.
package core

import (
	"fmt"

	"radiusstep/internal/graph"
)

// Stats describes the round structure of one solve.
type Stats struct {
	// Engine names the engine kind that produced this solve
	// (sequential, parallel, flat, delta, rho).
	Engine string
	// Steps is the number of outer iterations (the paper's "steps"
	// or "rounds": Theorem 3.3 bounds it by O((n/ρ)·log ρL)).
	Steps int
	// Substeps is the total number of inner Bellman–Ford iterations
	// across all steps (at most k+2 per step on a (k, ρ)-graph,
	// Theorem 3.2).
	Substeps int
	// PushSubsteps and PullSubsteps split Substeps by relaxation
	// direction: push scatters the frontier's arcs with atomic
	// priority-writes; pull sweeps unsettled vertices gathering from
	// the frontier with no atomics. Their sum equals Substeps.
	PushSubsteps int
	PullSubsteps int
	// MaxSubsteps is the largest substep count of any single step.
	MaxSubsteps int
	// Relaxations counts successful distance improvements.
	Relaxations int64
	// Pruned counts relaxation candidates skipped by the target-mode
	// goal-direction hook (Params.Bound): their optimistic total
	// d(u)+w+Bound(v) could not beat the target's current upper bound.
	// Always zero on full solves and when no Bound is set.
	Pruned int64
	// EdgesScanned counts arcs examined.
	EdgesScanned int64
	// MaxStep is the largest number of vertices settled in one step.
	MaxStep int
	// QuotaAdjustments counts adaptive-ρ quota growth events (KindRho
	// without Params.RhoFixed): each is one doubling of the extraction
	// quota toward the ~n/steps settling goal. Zero for every other
	// engine and for fixed-ρ solves, so the step-count reduction the
	// adaptive rule buys is auditable per solve.
	QuotaAdjustments int
	// Frontier reports the ordered-frontier substrate's operation
	// counters for the engines built on internal/frontier (parallel,
	// rho); zero for the other engines.
	Frontier FrontierOps
}

func (s Stats) String() string {
	out := fmt.Sprintf("engine=%s steps=%d substeps=%d maxsub=%d relax=%d scanned=%d maxstep=%d",
		s.Engine, s.Steps, s.Substeps, s.MaxSubsteps, s.Relaxations, s.EdgesScanned, s.MaxStep)
	if s.Pruned > 0 {
		out += fmt.Sprintf(" pruned=%d", s.Pruned)
	}
	if s.QuotaAdjustments > 0 {
		out += fmt.Sprintf(" quotaadj=%d", s.QuotaAdjustments)
	}
	if s.Frontier.Batches > 0 {
		out += fmt.Sprintf(" frontier(batches=%d merges=%d extracted=%d stale=%d)",
			s.Frontier.Batches, s.Frontier.Merges, s.Frontier.Extracted, s.Frontier.Stale)
	}
	return out
}

// validateSrc checks the source alone (the radius-free engines accept
// nil radii).
func validateSrc(g *graph.CSR, src graph.V) error {
	if n := g.NumVertices(); src < 0 || int(src) >= n {
		return fmt.Errorf("core: source %d out of range [0,%d)", src, n)
	}
	return nil
}

// validate checks common argument invariants for the solvers.
func validate(g *graph.CSR, radii []float64, src graph.V) error {
	n := g.NumVertices()
	if len(radii) != n {
		return fmt.Errorf("core: %d radii for %d vertices", len(radii), n)
	}
	if err := validateSrc(g, src); err != nil {
		return err
	}
	for v, r := range radii {
		if r < 0 {
			return fmt.Errorf("core: negative radius %v at vertex %d", r, v)
		}
	}
	return nil
}

// StepTrace describes one completed step for observers.
type StepTrace struct {
	Step     int     // 1-based step index
	Di       float64 // the round distance d_i
	Lead     graph.V // the lead vertex attaining d_i
	Settled  int     // vertices settled in this step
	Substeps int     // substeps this step took
}

// ZeroRadii returns an all-zero radius vector (Radius-Stepping degenerates
// to Dijkstra-with-batched-ties, the ρ=1 baseline of Tables 6–7).
func ZeroRadii(n int) []float64 { return make([]float64, n) }

// UniformRadii returns a constant radius vector (Radius-Stepping becomes
// approximately ∆-stepping with ∆ = r, §3).
func UniformRadii(n int, r float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = r
	}
	return out
}
