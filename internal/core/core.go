// Package core implements Radius-Stepping, the paper's parallel
// single-source shortest-path algorithm (Algorithm 1/2).
//
// Three interchangeable solvers are provided, all computing identical
// distances and identical step/substep counts:
//
//   - SolveRef: a sequential reference with lazy-deletion heaps,
//     faithful to Algorithm 1. It is the fastest single-thread variant
//     and the one experiments use for step counting.
//   - Solve: the paper's efficient parallel implementation (Algorithm 2):
//     the Q and R priority sets are join-based ordered sets maintained
//     with bulk split/union/difference, and Bellman–Ford substeps relax
//     edges concurrently with priority-writes.
//   - SolveFlat: the §3.4 frontier engine that avoids ordered sets by
//     scanning the (small) fringe to pick each round distance; on
//     unweighted graphs this is the paper's parallel-BFS-style variant.
//
// All solvers take the per-vertex radii r(v) produced by preprocessing;
// correctness holds for any non-negative radii (Theorem 3.1), while the
// step and substep bounds require the (k, ρ)-graph property.
package core

import (
	"fmt"

	"radiusstep/internal/graph"
)

// Stats describes the round structure of one solve.
type Stats struct {
	// Steps is the number of outer iterations (the paper's "steps"
	// or "rounds": Theorem 3.3 bounds it by O((n/ρ)·log ρL)).
	Steps int
	// Substeps is the total number of inner Bellman–Ford iterations
	// across all steps (at most k+2 per step on a (k, ρ)-graph,
	// Theorem 3.2).
	Substeps int
	// MaxSubsteps is the largest substep count of any single step.
	MaxSubsteps int
	// Relaxations counts successful distance improvements.
	Relaxations int64
	// EdgesScanned counts arcs examined.
	EdgesScanned int64
	// MaxStep is the largest number of vertices settled in one step.
	MaxStep int
}

func (s Stats) String() string {
	return fmt.Sprintf("steps=%d substeps=%d maxsub=%d relax=%d scanned=%d maxstep=%d",
		s.Steps, s.Substeps, s.MaxSubsteps, s.Relaxations, s.EdgesScanned, s.MaxStep)
}

// validate checks common argument invariants for the solvers.
func validate(g *graph.CSR, radii []float64, src graph.V) error {
	n := g.NumVertices()
	if len(radii) != n {
		return fmt.Errorf("core: %d radii for %d vertices", len(radii), n)
	}
	if src < 0 || int(src) >= n {
		return fmt.Errorf("core: source %d out of range [0,%d)", src, n)
	}
	for v, r := range radii {
		if r < 0 {
			return fmt.Errorf("core: negative radius %v at vertex %d", r, v)
		}
	}
	return nil
}

// StepTrace describes one completed step for observers.
type StepTrace struct {
	Step     int     // 1-based step index
	Di       float64 // the round distance d_i
	Lead     graph.V // the lead vertex attaining d_i
	Settled  int     // vertices settled in this step
	Substeps int     // substeps this step took
}

// ZeroRadii returns an all-zero radius vector (Radius-Stepping degenerates
// to Dijkstra-with-batched-ties, the ρ=1 baseline of Tables 6–7).
func ZeroRadii(n int) []float64 { return make([]float64, n) }

// UniformRadii returns a constant radius vector (Radius-Stepping becomes
// approximately ∆-stepping with ∆ = r, §3).
func UniformRadii(n int, r float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = r
	}
	return out
}
