package core

import (
	"math"
	"testing"
	"unsafe"

	"radiusstep/internal/gen"
	"radiusstep/internal/graph"
)

// TestAdaptiveRhoReducesSteps pins the adaptive quota's step economics:
// on a graph large enough that a fixed small ρ pathologically crumbles
// the solve into hundreds of steps, the adaptive rule must (1) cut the
// step count by at least 2x, (2) report its growth events in
// Stats.QuotaAdjustments, and (3) keep the distance vector byte-identical
// to the fixed-ρ solve — exactness never depends on the quota.
func TestAdaptiveRhoReducesSteps(t *testing.T) {
	g := gen.WithUniformIntWeights(gen.Grid2D(120, 120), 1, 100, 5)
	src := graph.V(0)

	fixed, stFixed, err := SolveKind(g, nil, src, KindRho, Params{Rho: 32, RhoFixed: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stFixed.QuotaAdjustments != 0 {
		t.Fatalf("fixed-ρ solve reported %d quota adjustments, want 0", stFixed.QuotaAdjustments)
	}

	adaptive, stAdaptive, err := SolveKind(g, nil, src, KindRho, Params{Rho: 32}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stAdaptive.QuotaAdjustments == 0 {
		t.Fatal("adaptive-ρ solve reported 0 quota adjustments; the rule never fired")
	}
	if stAdaptive.Steps*2 > stFixed.Steps {
		t.Fatalf("adaptive ρ took %d steps vs fixed %d, want at least a 2x cut",
			stAdaptive.Steps, stFixed.Steps)
	}
	for v := range adaptive {
		if math.Float64bits(adaptive[v]) != math.Float64bits(fixed[v]) {
			t.Fatalf("dist[%d] = %v adaptive vs %v fixed; adaptation changed distances",
				v, adaptive[v], fixed[v])
		}
	}
	t.Logf("fixed ρ=32: %d steps; adaptive: %d steps, %d quota adjustments",
		stFixed.Steps, stAdaptive.Steps, stAdaptive.QuotaAdjustments)
}

// TestAdaptiveRhoDeterministic: the adaptive rule is a pure function of
// the solve's own step history, so re-running the same query (including
// through a reused workspace) must reproduce the same step count and
// adjustment count.
func TestAdaptiveRhoDeterministic(t *testing.T) {
	g := gen.WithUniformIntWeights(gen.Grid2D(60, 60), 1, 50, 9)
	ws := NewWorkspace()
	_, st1, err := SolveKind(g, nil, 0, KindRho, Params{Rho: 16}, ws)
	if err != nil {
		t.Fatal(err)
	}
	_, st2, err := SolveKind(g, nil, 0, KindRho, Params{Rho: 16}, ws)
	if err != nil {
		t.Fatal(err)
	}
	if st1.Steps != st2.Steps || st1.QuotaAdjustments != st2.QuotaAdjustments {
		t.Fatalf("re-solve diverged: steps %d vs %d, adjustments %d vs %d",
			st1.Steps, st2.Steps, st1.QuotaAdjustments, st2.QuotaAdjustments)
	}
}

// TestWorkerBufPadded asserts the per-worker relax buffers cannot
// false-share: each buffer header must occupy a full cache line.
func TestWorkerBufPadded(t *testing.T) {
	if s := unsafe.Sizeof(workerBuf{}); s%64 != 0 {
		t.Fatalf("workerBuf is %d bytes, want a multiple of 64", s)
	}
}
