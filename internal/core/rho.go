package core

import (
	"radiusstep/internal/frontier"
	"radiusstep/internal/graph"
	"radiusstep/internal/parallel"
)

// rhoStepper is the ρ-stepping fringe (Dong et al.) on the flat
// frontier substrate: one frontier keyed by tentative distance, with
// each step's threshold answered by the substrate's rank query —
// d_i is the ρ-th smallest live key — instead of a full fringe scan.
// Extraction, like the parallel engine's, is a binary-searched prefix
// split of the sorted runs, so a step touches the ρ-ish vertices it
// settles rather than the whole fringe.
type rhoStepper struct {
	ws    *Workspace
	f     *frontier.F
	quota int
}

func (s *rhoStepper) reset() {
	if s.f == nil {
		s.f = frontier.New()
	}
	s.f.Reset(len(s.ws.bits))
}

func (s *rhoStepper) seed(vs []graph.V) {
	for _, v := range vs {
		s.f.Push(v, parallel.FromBits(s.ws.bits[v]))
	}
	s.f.Commit()
}

func (s *rhoStepper) target() (float64, graph.V, bool) {
	m := s.f.Len()
	if m == 0 {
		return 0, -1, false
	}
	k := s.quota
	if k > m {
		k = m
	}
	// Head, not Min: the lead only labels the step trace, so any
	// minimum-key witness serves — no equal-key tiebreak scan.
	lead, _ := s.f.Head()
	return s.f.SelectKth(k), lead.V, true
}

func (s *rhoStepper) collect(di float64, dst []graph.V) []graph.V {
	return s.f.ExtractBelow(di, dst)
}

func (s *rhoStepper) push(v graph.V, d float64) { s.f.Push(v, d) }

func (s *rhoStepper) settle(v graph.V) { s.f.Drop(v) }

// commit defers to the next query's self-commit, pooling a step's
// substep batches into one sort (see frontierStepper.commit).
func (s *rhoStepper) commit() {}

func (s *rhoStepper) fringe() int { return s.f.Len() }

func (s *rhoStepper) setTiming(on bool) { s.f.SetTiming(on) }

func (s *rhoStepper) frontierOps() frontier.Ops { return s.f.Ops() }
