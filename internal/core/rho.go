package core

import (
	"radiusstep/internal/frontier"
	"radiusstep/internal/graph"
	"radiusstep/internal/parallel"
)

// rhoStepTarget is the adaptive quota's step-count goal: grow ρ until a
// step settles about n/rhoStepTarget vertices, so a full solve lands
// near rhoStepTarget steps. 128 keeps steps large enough to amortize
// per-step frontier maintenance (the 1069-step pathology of a fixed
// ρ=32 on 50k vertices) while preserving enough steps that the priority
// ordering still prunes work the way ρ-stepping intends.
const rhoStepTarget = 128

// rhoStepper is the ρ-stepping fringe (Dong et al.) on the flat
// frontier substrate: one frontier keyed by tentative distance, with
// each step's threshold answered by the substrate's rank query —
// d_i is the ρ-th smallest live key — instead of a full fringe scan.
// Extraction, like the parallel engine's, is a binary-searched prefix
// split of the sorted runs, so a step touches the ρ-ish vertices it
// settles rather than the whole fringe.
//
// Unless Params.RhoFixed pins it, the quota is adaptive in the spirit
// of Dong et al.'s ρ tuning: a step that settles fewer vertices than
// the ~n/rhoStepTarget goal doubles the quota (capped at the goal) for
// the next step. The rule is a pure function of the solve's own step
// history, so repeated solves of the same query remain deterministic —
// identical step counts and byte-identical distances — and the settled
// set stays exact for any quota (distance exactness never depends on ρ).
type rhoStepper struct {
	ws     *Workspace
	f      *frontier.F
	quota  int  // current quota; grows per the adaptive rule
	quota0 int  // configured quota (Params.Rho), restored each solve
	fixed  bool // Params.RhoFixed: never grow

	stepSettled int // vertices settled by the step in progress (-1: none yet)
	adjusts     int // quota growth events this solve (Stats.QuotaAdjustments)
}

func (s *rhoStepper) reset() {
	if s.f == nil {
		s.f = frontier.New()
	}
	s.f.Reset(len(s.ws.bits))
	s.quota = s.quota0
	s.stepSettled = -1
	s.adjusts = 0
}

func (s *rhoStepper) seed(vs []graph.V) {
	for _, v := range vs {
		s.f.Push(v, parallel.FromBits(s.ws.bits[v]))
	}
	s.f.Commit()
}

func (s *rhoStepper) target() (float64, graph.V, bool) {
	m := s.f.Len()
	if m == 0 {
		return 0, -1, false
	}
	if !s.fixed && s.stepSettled >= 0 {
		// Step economics: aim for ~n/rhoStepTarget settled per step.
		// A step that fell short doubles the quota toward that goal, so
		// a solve stuck settling ρ-sized crumbs converges to the goal in
		// O(log) steps instead of paying per-step overhead O(n/ρ) times.
		want := len(s.ws.bits) / rhoStepTarget
		if want < s.quota0 {
			want = s.quota0
		}
		if s.stepSettled < want && s.quota < want {
			s.quota *= 2
			if s.quota > want {
				s.quota = want
			}
			s.adjusts++
		}
	}
	s.stepSettled = 0
	k := s.quota
	if k > m {
		k = m
	}
	// Head, not Min: the lead only labels the step trace, so any
	// minimum-key witness serves — no equal-key tiebreak scan.
	lead, _ := s.f.Head()
	return s.f.SelectKth(k), lead.V, true
}

func (s *rhoStepper) collect(di float64, dst []graph.V) []graph.V {
	out := s.f.ExtractBelow(di, dst)
	s.stepSettled += len(out)
	return out
}

func (s *rhoStepper) push(v graph.V, d float64) { s.f.Push(v, d) }

// settle covers the vertices that join the step's active set during its
// substeps (collect counted the initial extraction); together they equal
// the step's final settled count, the adaptive rule's input.
func (s *rhoStepper) settle(v graph.V) {
	s.stepSettled++
	s.f.Drop(v)
}

// commit defers to the next query's self-commit, pooling a step's
// substep batches into one sort (see frontierStepper.commit).
func (s *rhoStepper) commit() {}

func (s *rhoStepper) fringe() int { return s.f.Len() }

func (s *rhoStepper) setTiming(on bool) { s.f.SetTiming(on) }

func (s *rhoStepper) frontierOps() frontier.Ops { return s.f.Ops() }
