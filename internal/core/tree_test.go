package core

import (
	"math"
	"testing"
	"testing/quick"

	"radiusstep/internal/baseline"
	"radiusstep/internal/gen"
	"radiusstep/internal/graph"
	"radiusstep/internal/preprocess"
)

func TestShortestPathTreeTightAndComplete(t *testing.T) {
	g := gen.WithUniformIntWeights(gen.RandomConnected(250, 700, 1), 1, 40, 2)
	dist := baseline.Dijkstra(g, 0)
	parent := ShortestPathTree(g, 0, dist)
	if parent[0] != 0 {
		t.Fatal("root parent wrong")
	}
	for v := 1; v < g.NumVertices(); v++ {
		p := parent[v]
		if p < 0 {
			t.Fatalf("no parent for reachable %d", v)
		}
		w, ok := graph.EdgeWeight(g, p, graph.V(v))
		if !ok || dist[p]+w != dist[v] {
			t.Fatalf("parent edge (%d,%d) not tight", p, v)
		}
	}
}

func TestShortestPathTreeUnreachable(t *testing.T) {
	b := graph.NewBuilder(4)
	b.Add(0, 1, 1)
	g := b.Build()
	dist := baseline.Dijkstra(g, 0)
	parent := ShortestPathTree(g, 0, dist)
	if parent[2] != -1 || parent[3] != -1 {
		t.Fatalf("unreachable parents = %v", parent)
	}
}

func TestPathToProperties(t *testing.T) {
	g := gen.WithUniformIntWeights(gen.Grid2D(12, 12), 1, 30, 3)
	dist := baseline.Dijkstra(g, 5)
	parent := ShortestPathTree(g, 5, dist)
	for _, dst := range []graph.V{0, 77, 143} {
		path := PathTo(parent, dst)
		if path[0] != 5 || path[len(path)-1] != dst {
			t.Fatalf("dst %d: endpoints %v", dst, path)
		}
		// Distances strictly increase along the path.
		for i := 1; i < len(path); i++ {
			if dist[path[i]] <= dist[path[i-1]] && dst != 5 {
				t.Fatalf("dst %d: distances not increasing", dst)
			}
		}
	}
	if PathTo(parent, -1) != nil || PathTo(parent, 999) != nil {
		t.Fatal("bad dst should return nil")
	}
	if got := PathTo(parent, 5); len(got) != 1 || got[0] != 5 {
		t.Fatalf("src path = %v", got)
	}
}

func TestPathToDetectsCorruptParents(t *testing.T) {
	parent := []graph.V{1, 0, 2} // 0 <-> 1 cycle, neither is a root
	if PathTo(parent, 0) != nil {
		t.Fatal("cycle not detected")
	}
}

func TestSolveRefTargetExactAndEarly(t *testing.T) {
	g := gen.WithUniformIntWeights(gen.Grid2D(40, 40), 1, 100, 4)
	radii, err := preprocess.RadiiOnly(g, 12)
	if err != nil {
		t.Fatal(err)
	}
	full := baseline.Dijkstra(g, 0)
	_, stFull, _ := SolveRef(g, radii, 0)
	for _, target := range []graph.V{1, 41, 800, 1599} {
		d, dist, st, err := SolveRefTarget(g, radii, 0, target)
		if err != nil {
			t.Fatal(err)
		}
		if d != full[target] {
			t.Fatalf("target %d: %v, want %v", target, d, full[target])
		}
		if dist[target] != d {
			t.Fatal("partial vector inconsistent at target")
		}
		if st.Steps > stFull.Steps {
			t.Fatalf("target solve took more steps than full: %d > %d", st.Steps, stFull.Steps)
		}
		// Settled prefix exactness: every vertex with final distance
		// strictly below the target's must be exact in the partial
		// vector (it settled in an earlier or equal annulus).
		for v, want := range full {
			if want < d && dist[v] != want {
				t.Fatalf("target %d: settled prefix wrong at %d", target, v)
			}
		}
	}
	// Near target needs fewer steps than far target.
	_, _, stNear, _ := SolveRefTarget(g, radii, 0, 1)
	_, _, stFar, _ := SolveRefTarget(g, radii, 0, 1599)
	if stNear.Steps >= stFar.Steps {
		t.Fatalf("near %d vs far %d steps", stNear.Steps, stFar.Steps)
	}
}

func TestSolveRefTargetSelf(t *testing.T) {
	g := gen.Chain(10)
	radii := ZeroRadii(10)
	d, _, _, err := SolveRefTarget(g, radii, 3, 3)
	if err != nil || d != 0 {
		t.Fatalf("self target: %v, %v", d, err)
	}
}

func TestSolveRefTargetUnreachable(t *testing.T) {
	b := graph.NewBuilder(4)
	b.Add(0, 1, 1)
	g := b.Build()
	d, _, _, err := SolveRefTarget(g, ZeroRadii(4), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(d, 1) {
		t.Fatalf("unreachable target = %v", d)
	}
	if _, _, _, err := SolveRefTarget(g, ZeroRadii(4), 0, 9); err == nil {
		t.Fatal("out-of-range target accepted")
	}
}

// TestQuickTreeIsValidSPT: on random graphs, the derived tree is always
// a valid shortest-path tree for Dijkstra distances.
func TestQuickTreeIsValidSPT(t *testing.T) {
	f := func(seed uint64) bool {
		g := gen.WithUniformIntWeights(gen.RandomConnected(60, 150, seed), 1, 25, seed^5)
		dist := baseline.Dijkstra(g, 0)
		parent := ShortestPathTree(g, 0, dist)
		for v := 1; v < g.NumVertices(); v++ {
			w, ok := graph.EdgeWeight(g, parent[v], graph.V(v))
			if !ok || dist[parent[v]]+w != dist[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
