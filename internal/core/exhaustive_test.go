package core

import (
	"testing"

	"radiusstep/internal/baseline"
	"radiusstep/internal/check"
	"radiusstep/internal/graph"
	"radiusstep/internal/preprocess"
)

// TestExhaustiveTinyGraphs enumerates EVERY graph on 4 vertices (all 64
// edge subsets, three weight patterns) and every source, checking all
// three engines against Dijkstra and the optimality certificate, with
// radii from preprocessing at every feasible ρ. This is the closest
// thing to a proof-by-exhaustion the test suite has: any systematic
// boundary bug (empty frontier, isolated source, single edge, full
// clique) must show up here.
func TestExhaustiveTinyGraphs(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive enumeration takes a few seconds")
	}
	n := 4
	type pair struct{ u, v graph.V }
	var pairs []pair
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			pairs = append(pairs, pair{graph.V(u), graph.V(v)})
		}
	}
	weightPatterns := [][]float64{
		{1, 1, 1, 1, 1, 1},
		{1, 2, 3, 4, 5, 6},
		{5, 1, 4, 1, 3, 9},
	}
	for mask := 0; mask < 1<<len(pairs); mask++ {
		for wp, weights := range weightPatterns {
			var edges []graph.Edge
			for i, p := range pairs {
				if mask&(1<<i) != 0 {
					edges = append(edges, graph.Edge{U: p.u, V: p.v, W: weights[i]})
				}
			}
			g := graph.FromEdges(n, edges)
			for _, rho := range []int{1, 2, 4} {
				res, err := preprocess.Run(g, preprocess.Options{Rho: rho, K: 1})
				if err != nil {
					t.Fatalf("mask=%d wp=%d rho=%d: %v", mask, wp, rho, err)
				}
				for src := graph.V(0); src < graph.V(n); src++ {
					want := baseline.Dijkstra(res.G, src)
					for _, s := range solvers() {
						got, _, err := s.fn(res.G, res.Radii, src)
						if err != nil {
							t.Fatalf("mask=%d wp=%d rho=%d src=%d %s: %v", mask, wp, rho, src, s.name, err)
						}
						if i := check.SameDistances(want, got, 0); i >= 0 {
							t.Fatalf("mask=%d wp=%d rho=%d src=%d %s: dist[%d]=%v want %v",
								mask, wp, rho, src, s.name, i, got[i], want[i])
						}
						if err := check.VerifyDistances(res.G, src, got); err != nil {
							t.Fatalf("mask=%d wp=%d rho=%d src=%d %s: %v", mask, wp, rho, src, s.name, err)
						}
					}
				}
			}
		}
	}
}
