package core

import (
	"testing"

	"radiusstep/internal/gen"
	"radiusstep/internal/preprocess"
)

func TestProfileConsistentWithStats(t *testing.T) {
	g := gen.WithUniformIntWeights(gen.Grid2D(20, 20), 1, 100, 1)
	radii, err := preprocess.RadiiOnly(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	prof, st, err := Profile(g, radii, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Settled) != st.Steps || len(prof.Substeps) != st.Steps {
		t.Fatalf("profile length %d, steps %d", len(prof.Settled), st.Steps)
	}
	total := 0
	for _, v := range prof.Settled {
		total += v
	}
	if total != g.NumVertices()-1 {
		t.Fatalf("settled sum %d, want %d", total, g.NumVertices()-1)
	}
	subTotal := 0
	for _, v := range prof.Substeps {
		subTotal += v
	}
	if subTotal != st.Substeps {
		t.Fatalf("substep sum %d, want %d", subTotal, st.Substeps)
	}
}

func TestSummaryOrderStatistics(t *testing.T) {
	p := &StepProfile{
		Settled:  []int{1, 9, 5, 3, 7, 2, 8, 4, 6, 10},
		Substeps: []int{2, 2, 2, 2, 2, 2, 2, 2, 2, 2},
	}
	s := p.Summarize()
	if s.Steps != 10 || s.TotalSettled != 55 {
		t.Fatalf("basic sums wrong: %+v", s)
	}
	if s.MeanSettled != 5.5 || s.MaxSettled != 10 {
		t.Fatalf("mean/max wrong: %+v", s)
	}
	if s.MedianSettled != 6 { // sorted[5]
		t.Fatalf("median = %d", s.MedianSettled)
	}
	if s.P10 != 2 || s.P90 != 10 { // sorted[1], sorted[9]
		t.Fatalf("percentiles = %d, %d", s.P10, s.P90)
	}
	if s.MeanSubsteps != 2 {
		t.Fatalf("substeps mean = %v", s.MeanSubsteps)
	}
	if s.String() == "" {
		t.Fatal("empty summary string")
	}
}

func TestSummaryEmpty(t *testing.T) {
	s := (&StepProfile{}).Summarize()
	if s.Steps != 0 || s.MeanSettled != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
}

func TestProfileParallelismGrowsWithRho(t *testing.T) {
	g := gen.WithUniformIntWeights(gen.Grid2D(30, 30), 1, 10000, 2)
	var prevMean float64
	for i, rho := range []int{2, 16, 64} {
		pre, err := preprocess.Run(g, preprocess.Options{Rho: rho, K: 1})
		if err != nil {
			t.Fatal(err)
		}
		prof, _, err := Profile(pre.G, pre.Radii, 0)
		if err != nil {
			t.Fatal(err)
		}
		s := prof.Summarize()
		if i > 0 && s.MeanSettled <= prevMean {
			t.Fatalf("mean settled did not grow: rho=%d gives %.1f after %.1f", rho, s.MeanSettled, prevMean)
		}
		prevMean = s.MeanSettled
	}
}
