package core

import (
	"math"
	"testing"
	"testing/quick"

	"radiusstep/internal/baseline"
	"radiusstep/internal/check"
	"radiusstep/internal/gen"
	"radiusstep/internal/graph"
	"radiusstep/internal/preprocess"
)

type solver struct {
	name string
	fn   func(*graph.CSR, []float64, graph.V) ([]float64, Stats, error)
}

func solvers() []solver {
	return []solver{
		{"ref", SolveRef},
		{"engine", Solve},
		{"flat", SolveFlat},
	}
}

func testGraphs() map[string]*graph.CSR {
	return map[string]*graph.CSR{
		"grid-w":    gen.WithUniformIntWeights(gen.Grid2D(15, 15), 1, 100, 1),
		"grid-u":    gen.Grid2D(15, 15),
		"scalefree": gen.ScaleFree(400, 4, 2),
		"random-w":  gen.WithUniformIntWeights(gen.RandomConnected(300, 900, 3), 1, 50, 4),
		"chain":     gen.Chain(50),
		"star":      gen.Star(30),
	}
}

func TestSolversMatchDijkstraAnyRadii(t *testing.T) {
	// Correctness holds for ANY non-negative radii (Theorem 3.1): test
	// zero, uniform, r_rho, and wild mixed radii.
	for name, g := range testGraphs() {
		n := g.NumVertices()
		rrho, err := preprocess.RadiiOnly(g, 8)
		if err != nil {
			t.Fatal(err)
		}
		mixed := make([]float64, n)
		for i := range mixed {
			mixed[i] = float64((i * 37) % 11)
		}
		radiiSets := map[string][]float64{
			"zero":    ZeroRadii(n),
			"uniform": UniformRadii(n, 3),
			"rrho":    rrho,
			"mixed":   mixed,
			"huge":    UniformRadii(n, 1e18),
		}
		want := baseline.Dijkstra(g, 0)
		for rname, radii := range radiiSets {
			for _, s := range solvers() {
				got, st, err := s.fn(g, radii, 0)
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", name, rname, s.name, err)
				}
				if i := check.SameDistances(want, got, 0); i >= 0 {
					t.Fatalf("%s/%s/%s: dist[%d] = %v, want %v", name, rname, s.name, i, got[i], want[i])
				}
				if err := check.VerifyDistances(g, 0, got); err != nil {
					t.Fatalf("%s/%s/%s: certificate: %v", name, rname, s.name, err)
				}
				if st.Steps < 1 {
					t.Fatalf("%s/%s/%s: zero steps", name, rname, s.name)
				}
			}
		}
	}
}

func TestEnginesAgreeOnStepCounts(t *testing.T) {
	// The three engines must produce identical step AND substep counts,
	// not just distances — they implement the same algorithm.
	for name, g := range testGraphs() {
		radii, err := preprocess.RadiiOnly(g, 6)
		if err != nil {
			t.Fatal(err)
		}
		_, stRef, _ := SolveRef(g, radii, 0)
		_, stEng, _ := Solve(g, radii, 0)
		_, stFlat, _ := SolveFlat(g, radii, 0)
		if stRef.Steps != stEng.Steps || stRef.Steps != stFlat.Steps {
			t.Fatalf("%s: steps ref=%d engine=%d flat=%d", name, stRef.Steps, stEng.Steps, stFlat.Steps)
		}
		if stRef.Substeps != stEng.Substeps || stRef.Substeps != stFlat.Substeps {
			t.Fatalf("%s: substeps ref=%d engine=%d flat=%d", name, stRef.Substeps, stEng.Substeps, stFlat.Substeps)
		}
	}
}

func TestBellmanFordDegenerate(t *testing.T) {
	// r = ∞ must give a single step (the Bellman–Ford degenerate case).
	g := gen.WithUniformIntWeights(gen.Grid2D(10, 10), 1, 20, 5)
	radii := UniformRadii(g.NumVertices(), math.Inf(1))
	_, st, err := SolveRef(g, radii, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Steps != 1 {
		t.Fatalf("steps = %d, want 1", st.Steps)
	}
}

func TestDijkstraDegenerate(t *testing.T) {
	// r = 0: steps = number of distinct shortest-path distances
	// (vertices with equal distance settle together).
	g := gen.WithUniformIntWeights(gen.Grid2D(10, 10), 1, 1000, 6)
	want, steps := baseline.DijkstraSteps(g, 0)
	got, st, err := SolveRef(g, ZeroRadii(g.NumVertices()), 0)
	if err != nil {
		t.Fatal(err)
	}
	if i := check.SameDistances(want, got, 0); i >= 0 {
		t.Fatalf("mismatch at %d", i)
	}
	if st.Steps != steps {
		t.Fatalf("steps = %d, want %d (Dijkstra distance classes)", st.Steps, steps)
	}
}

func TestUnweightedRhoOneEqualsBFSLevels(t *testing.T) {
	// On unit graphs with r = r_1 = 0... wait: r_1(v) = 0 (self), so
	// each step settles one distance class = one BFS level.
	for _, g := range []*graph.CSR{gen.Grid2D(12, 12), gen.ScaleFree(300, 3, 7), gen.Chain(40)} {
		_, levels := baseline.BFS(g, 0)
		_, st, err := SolveRef(g, ZeroRadii(g.NumVertices()), 0)
		if err != nil {
			t.Fatal(err)
		}
		if st.Steps != levels {
			t.Fatalf("steps = %d, want BFS levels = %d", st.Steps, levels)
		}
	}
}

func TestSubstepBoundOnPreprocessedGraph(t *testing.T) {
	// Theorem 3.2: with r(v) <= r̄_k(v) (guaranteed by preprocessing),
	// every step takes at most k+2 substeps.
	graphs := map[string]*graph.CSR{
		"grid-w":    gen.WithUniformIntWeights(gen.Grid2D(14, 14), 1, 60, 8),
		"scalefree": gen.ScaleFree(250, 4, 9),
	}
	for name, g := range graphs {
		for _, k := range []int{1, 2, 3} {
			for _, h := range []preprocess.Heuristic{preprocess.Greedy, preprocess.DP} {
				res, err := preprocess.Run(g, preprocess.Options{Rho: 8, K: k, Heuristic: h})
				if err != nil {
					t.Fatal(err)
				}
				for _, src := range []graph.V{0, 7, 19} {
					_, st, err := SolveRef(res.G, res.Radii, src)
					if err != nil {
						t.Fatal(err)
					}
					if st.MaxSubsteps > k+2 {
						t.Fatalf("%s k=%d %s src=%d: max substeps %d > k+2=%d",
							name, k, h, src, st.MaxSubsteps, k+2)
					}
				}
			}
		}
	}
}

func TestStepBoundTheorem33(t *testing.T) {
	// Theorem 3.3: steps <= ceil(n/ρ)·(1 + ceil(log2 ρL)) on a
	// (k,ρ)-graph with r(v) = r_ρ(v).
	g := gen.WithUniformIntWeights(gen.Grid2D(20, 20), 1, 16, 10)
	n := g.NumVertices()
	for _, rho := range []int{2, 5, 10, 25} {
		res, err := preprocess.Run(g, preprocess.Options{Rho: rho, K: 1})
		if err != nil {
			t.Fatal(err)
		}
		L := res.G.MaxWeight()
		bound := int(math.Ceil(float64(n)/float64(rho))) * (1 + int(math.Ceil(math.Log2(float64(rho)*L))))
		_, st, err := SolveRef(res.G, res.Radii, 0)
		if err != nil {
			t.Fatal(err)
		}
		if st.Steps > bound {
			t.Fatalf("rho=%d: steps %d > bound %d", rho, st.Steps, bound)
		}
	}
}

func TestStepsDecreaseWithRho(t *testing.T) {
	// The paper's headline empirical finding: steps fall roughly
	// inversely with ρ.
	g := gen.WithUniformIntWeights(gen.Grid2D(30, 30), 1, 10000, 11)
	var prev int
	for i, rho := range []int{1, 4, 16, 64} {
		res, err := preprocess.Run(g, preprocess.Options{Rho: rho, K: 1})
		if err != nil {
			t.Fatal(err)
		}
		_, st, err := SolveRef(res.G, res.Radii, 0)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && st.Steps >= prev {
			t.Fatalf("steps did not decrease: rho=%d gives %d, previous %d", rho, st.Steps, prev)
		}
		prev = st.Steps
	}
}

func TestTraceObserver(t *testing.T) {
	g := gen.WithUniformIntWeights(gen.Grid2D(8, 8), 1, 50, 12)
	radii, _ := preprocess.RadiiOnly(g, 4)
	var traces []StepTrace
	_, st, err := SolveRefTrace(g, radii, 0, func(tr StepTrace) { traces = append(traces, tr) })
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != st.Steps {
		t.Fatalf("traces = %d, steps = %d", len(traces), st.Steps)
	}
	totalSettled := 0
	lastDi := math.Inf(-1)
	for i, tr := range traces {
		if tr.Step != i+1 {
			t.Fatalf("trace %d has step %d", i, tr.Step)
		}
		if tr.Di < lastDi {
			t.Fatalf("round distances not monotone: %v after %v", tr.Di, lastDi)
		}
		lastDi = tr.Di
		totalSettled += tr.Settled
		if tr.Substeps < 1 || tr.Settled < 1 {
			t.Fatalf("trace %d implausible: %+v", i, tr)
		}
	}
	if totalSettled != g.NumVertices()-1 {
		t.Fatalf("settled %d, want %d", totalSettled, g.NumVertices()-1)
	}
}

func TestValidation(t *testing.T) {
	g := gen.Chain(5)
	if _, _, err := SolveRef(g, make([]float64, 3), 0); err == nil {
		t.Fatal("short radii accepted")
	}
	if _, _, err := SolveRef(g, make([]float64, 5), 9); err == nil {
		t.Fatal("bad source accepted")
	}
	bad := make([]float64, 5)
	bad[2] = -1
	if _, _, err := SolveRef(g, bad, 0); err == nil {
		t.Fatal("negative radius accepted")
	}
	if _, _, err := Solve(g, bad, 0); err == nil {
		t.Fatal("engine: negative radius accepted")
	}
	if _, _, err := SolveFlat(g, bad, 0); err == nil {
		t.Fatal("flat: negative radius accepted")
	}
}

func TestDisconnectedGraph(t *testing.T) {
	b := graph.NewBuilder(6)
	b.Add(0, 1, 2)
	b.Add(1, 2, 3)
	b.Add(3, 4, 1)
	g := b.Build()
	for _, s := range solvers() {
		dist, _, err := s.fn(g, UniformRadii(6, 1), 0)
		if err != nil {
			t.Fatal(err)
		}
		if dist[0] != 0 || dist[1] != 2 || dist[2] != 5 {
			t.Fatalf("%s: reachable distances wrong: %v", s.name, dist[:3])
		}
		for _, v := range []int{3, 4, 5} {
			if !math.IsInf(dist[v], 1) {
				t.Fatalf("%s: dist[%d] = %v, want +Inf", s.name, v, dist[v])
			}
		}
	}
}

func TestSingleVertexGraph(t *testing.T) {
	g := graph.FromEdges(1, nil)
	for _, s := range solvers() {
		dist, st, err := s.fn(g, []float64{0}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if dist[0] != 0 || st.Steps != 0 {
			t.Fatalf("%s: single vertex: dist=%v steps=%d", s.name, dist[0], st.Steps)
		}
	}
}

func TestNonSourceVertex(t *testing.T) {
	g := gen.WithUniformIntWeights(gen.Grid2D(9, 9), 1, 30, 13)
	src := graph.V(40)
	want := baseline.Dijkstra(g, src)
	radii, _ := preprocess.RadiiOnly(g, 5)
	for _, s := range solvers() {
		got, _, err := s.fn(g, radii, src)
		if err != nil {
			t.Fatal(err)
		}
		if i := check.SameDistances(want, got, 0); i >= 0 {
			t.Fatalf("%s: mismatch at %d", s.name, i)
		}
	}
}

// TestQuickEnginesAgree drives all three engines over random graphs,
// radii and sources with testing/quick.
func TestQuickEnginesAgree(t *testing.T) {
	f := func(seed uint64, srcRaw uint8, radScale uint8) bool {
		n := 50
		g := gen.WithUniformIntWeights(gen.RandomConnected(n, 120, seed), 1, 20, seed^3)
		src := graph.V(int(srcRaw) % n)
		radii := make([]float64, n)
		for i := range radii {
			radii[i] = float64((uint64(i)*seed)%uint64(1+radScale%16)) / 2
		}
		want := baseline.Dijkstra(g, src)
		d1, s1, err1 := SolveRef(g, radii, src)
		d2, s2, err2 := Solve(g, radii, src)
		d3, s3, err3 := SolveFlat(g, radii, src)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		if check.SameDistances(want, d1, 0) >= 0 ||
			check.SameDistances(want, d2, 0) >= 0 ||
			check.SameDistances(want, d3, 0) >= 0 {
			return false
		}
		return s1.Steps == s2.Steps && s1.Steps == s3.Steps &&
			s1.Substeps == s2.Substeps && s1.Substeps == s3.Substeps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{Steps: 3, Substeps: 7}
	if s.String() == "" {
		t.Fatal("empty Stats string")
	}
}
