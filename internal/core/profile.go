package core

import (
	"fmt"
	"sort"

	"radiusstep/internal/graph"
)

// StepProfile records, for one solve, the work available in every step —
// the quantity behind the paper's parallelism argument P = W/D: each
// step is a parallel phase, so per-step settled counts and edge scans
// measure how much of the work the algorithm exposes per unit of depth.
type StepProfile struct {
	Settled  []int // vertices settled per step
	Substeps []int // substeps per step
}

// Profile runs the reference engine collecting a per-step profile.
func Profile(g *graph.CSR, radii []float64, src graph.V) (*StepProfile, Stats, error) {
	p := &StepProfile{}
	_, st, err := SolveRefTrace(g, radii, src, func(tr StepTrace) {
		p.Settled = append(p.Settled, tr.Settled)
		p.Substeps = append(p.Substeps, tr.Substeps)
	})
	if err != nil {
		return nil, Stats{}, err
	}
	return p, st, nil
}

// Summary condenses a profile into the statistics experiments report.
type Summary struct {
	Steps         int
	TotalSettled  int
	MeanSettled   float64
	MedianSettled int
	MaxSettled    int
	P10, P90      int     // 10th/90th percentile of per-step settled counts
	MeanSubsteps  float64 // mean substeps per step
}

// Summarize computes order statistics of the per-step settled counts.
func (p *StepProfile) Summarize() Summary {
	var s Summary
	s.Steps = len(p.Settled)
	if s.Steps == 0 {
		return s
	}
	sorted := append([]int(nil), p.Settled...)
	sort.Ints(sorted)
	for _, v := range sorted {
		s.TotalSettled += v
		if v > s.MaxSettled {
			s.MaxSettled = v
		}
	}
	s.MeanSettled = float64(s.TotalSettled) / float64(s.Steps)
	s.MedianSettled = sorted[s.Steps/2]
	s.P10 = sorted[s.Steps/10]
	s.P90 = sorted[s.Steps*9/10]
	var sub int
	for _, v := range p.Substeps {
		sub += v
	}
	s.MeanSubsteps = float64(sub) / float64(s.Steps)
	return s
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("steps=%d settled(mean=%.1f med=%d p10=%d p90=%d max=%d) substeps/step=%.2f",
		s.Steps, s.MeanSettled, s.MedianSettled, s.P10, s.P90, s.MaxSettled, s.MeanSubsteps)
}
