package core

import (
	"errors"
	"testing"

	"radiusstep/internal/check"
	"radiusstep/internal/gen"
	"radiusstep/internal/graph"
	"radiusstep/internal/preprocess"
)

func cancelTestGraph(t *testing.T) (*graph.CSR, []float64) {
	t.Helper()
	g := gen.WithUniformIntWeights(gen.Grid2D(20, 20), 1, 100, 21)
	radii, err := preprocess.RadiiOnly(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	return g, radii
}

func TestPreFiredProbeAbortsEveryEngine(t *testing.T) {
	g, radii := cancelTestGraph(t)
	causes := []struct {
		name string
		fire func(*Probe)
		want error
	}{
		{"cancel", (*Probe).Cancel, ErrCanceled},
		{"deadline", (*Probe).Expire, ErrDeadline},
	}
	for _, kind := range allKinds() {
		for _, c := range causes {
			p := new(Probe)
			c.fire(p)
			dist, st, err := SolveKind(g, radii, 0, kind, Params{Probe: p}, nil)
			if !errors.Is(err, c.want) {
				t.Fatalf("%s/%s: err = %v, want %v", kind, c.name, err, c.want)
			}
			if dist != nil {
				t.Fatalf("%s/%s: aborted solve returned distances", kind, c.name)
			}
			if st.Engine != kind.String() {
				t.Fatalf("%s/%s: stats engine = %q", kind, c.name, st.Engine)
			}
		}
	}
}

func TestProbeFirstCauseWins(t *testing.T) {
	p := new(Probe)
	p.Cancel()
	p.Expire() // latched: the later cause must not overwrite the first
	if !errors.Is(p.Err(), ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", p.Err())
	}
	if !p.Fired() {
		t.Fatal("fired probe reports live")
	}
	var nilProbe *Probe
	if nilProbe.Fired() || nilProbe.Err() != nil {
		t.Fatal("nil probe must read as live")
	}
}

func TestLiveProbeDistancesIdentical(t *testing.T) {
	// A probe that never fires must not perturb the solve: distances are
	// byte-identical to the nil-probe solve for every engine.
	g, radii := cancelTestGraph(t)
	for _, kind := range allKinds() {
		want, _, err := SolveKind(g, radii, 0, kind, Params{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := SolveKind(g, radii, 0, kind, Params{Probe: new(Probe)}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if i := check.SameDistances(want, got, 0); i >= 0 {
			t.Fatalf("%s: dist[%d] = %v, want %v", kind, i, got[i], want[i])
		}
	}
}

func TestMidSolveCancelThenWorkspaceReuse(t *testing.T) {
	// Fire the probe from the per-step observer so the solve aborts at a
	// mid-solve boundary with the workspace genuinely dirty, then reuse
	// the same pooled workspace for a clean solve: distances must be
	// byte-identical to a fresh solve, proving an aborted solve leaves no
	// residue in the pooled buffers.
	g, radii := cancelTestGraph(t)
	for _, kind := range allKinds() {
		ws := NewWorkspace()
		p := new(Probe)
		fired := false
		observe := func(StepTrace) {
			if !fired {
				fired = true
				p.Cancel()
			}
		}
		dist, _, err := solve(g, radii, 0, kind, Params{Probe: p}, ws, observe, -1)
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("%s: err = %v, want ErrCanceled", kind, err)
		}
		if dist != nil {
			t.Fatalf("%s: canceled solve returned distances", kind)
		}
		if !fired {
			t.Fatalf("%s: solve finished before the first step observer", kind)
		}

		want, _, err := SolveKind(g, radii, 0, kind, Params{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := SolveKind(g, radii, 0, kind, Params{}, ws)
		if err != nil {
			t.Fatalf("%s: reuse after cancel: %v", kind, err)
		}
		if i := check.SameDistances(want, got, 0); i >= 0 {
			t.Fatalf("%s: reused workspace dist[%d] = %v, want %v", kind, i, got[i], want[i])
		}
	}
}

func TestProbeMidArcPollAborts(t *testing.T) {
	// A probe fired before the seed relaxation must abort even when the
	// graph is large enough that a single substep spans many arc-interval
	// polls — exercises the kernels' mid-substep poll paths under -race.
	g := gen.WithUniformIntWeights(gen.RandomConnected(5000, 40000, 7), 1, 30, 9)
	radii, err := preprocess.RadiiOnly(g, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range allKinds() {
		ws := NewWorkspace()
		p := new(Probe)
		steps := 0
		observe := func(StepTrace) {
			steps++
			if steps == 2 {
				p.Expire()
			}
		}
		_, _, err := solve(g, radii, 0, kind, Params{Probe: p}, ws, observe, -1)
		if !errors.Is(err, ErrDeadline) {
			t.Fatalf("%s: err = %v, want ErrDeadline", kind, err)
		}
	}
}
