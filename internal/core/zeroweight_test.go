package core

import (
	"testing"

	"radiusstep/internal/baseline"
	"radiusstep/internal/check"
	"radiusstep/internal/gen"
	"radiusstep/internal/graph"
)

// The paper normalizes the lightest nonzero weight to 1, but the solvers
// themselves must stay correct on graphs with zero-weight edges (the
// step bounds degrade; distances may not).

func zeroWeightGraph() *graph.CSR {
	b := graph.NewBuilder(8)
	b.Add(0, 1, 0)
	b.Add(1, 2, 0)
	b.Add(2, 3, 5)
	b.Add(0, 4, 3)
	b.Add(4, 3, 0)
	b.Add(3, 5, 1)
	b.Add(5, 6, 0)
	b.Add(0, 7, 10)
	b.Add(6, 7, 0)
	return b.Build()
}

func TestSolversHandleZeroWeights(t *testing.T) {
	g := zeroWeightGraph()
	want := baseline.Dijkstra(g, 0)
	if err := check.VerifyDistances(g, 0, want); err != nil {
		t.Fatal(err)
	}
	for _, radii := range [][]float64{
		ZeroRadii(8),
		UniformRadii(8, 2),
		{0, 1, 0, 2, 1, 0, 3, 1},
	} {
		for _, s := range solvers() {
			dist, _, err := s.fn(g, radii, 0)
			if err != nil {
				t.Fatal(err)
			}
			if i := check.SameDistances(want, dist, 0); i >= 0 {
				t.Fatalf("%s: mismatch at %d: %v vs %v", s.name, i, dist[i], want[i])
			}
		}
	}
}

func TestZeroWeightCluster(t *testing.T) {
	// A clique connected entirely by zero-weight edges: all vertices at
	// distance 0, settled in one step with r=0 (same distance class).
	b := graph.NewBuilder(5)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			b.Add(graph.V(i), graph.V(j), 0)
		}
	}
	b.Add(3, 4, 7)
	g := b.Build()
	dist, st, err := SolveRef(g, ZeroRadii(5), 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 4; v++ {
		if dist[v] != 0 {
			t.Fatalf("dist[%d] = %v, want 0", v, dist[v])
		}
	}
	if dist[4] != 7 {
		t.Fatalf("dist[4] = %v", dist[4])
	}
	if st.Steps != 2 {
		t.Fatalf("steps = %d, want 2 (zero class, then 7 class)", st.Steps)
	}
}

func TestMixedZeroWeightsLargerGraph(t *testing.T) {
	// Random graph where ~20% of edges have weight zero.
	g := gen.WithUniformIntWeights(gen.RandomConnected(200, 600, 5), 1, 10, 6)
	g = graph.Reweight(g, func(u, v graph.V, w float64) float64 {
		if (u+v)%5 == 0 {
			return 0
		}
		return w
	})
	want := baseline.Dijkstra(g, 0)
	for _, s := range solvers() {
		dist, _, err := s.fn(g, UniformRadii(200, 3), 0)
		if err != nil {
			t.Fatal(err)
		}
		if i := check.SameDistances(want, dist, 0); i >= 0 {
			t.Fatalf("%s: mismatch at %d", s.name, i)
		}
	}
}
