package core

import (
	"fmt"
	"math"
	"time"

	"radiusstep/internal/graph"
	"radiusstep/internal/parallel"
	"radiusstep/internal/trace"
)

// EngineKind identifies one engine of the unified stepping framework: a
// fringe structure plus a step-target rule plus a relaxation mode. All
// kinds share one driver (the solve function below) and differ only in
// how reached-but-unsettled vertices are tracked and how each step's
// settling threshold d_i is chosen:
//
//	KindSequential  lazy-heap fringe, radius rule, sequential relax
//	KindParallel    ordered frontier (Q/R runs), radius rule, parallel relax
//	KindFlat        flat fringe, radius rule, parallel relax
//	KindDelta       flat fringe, Δ bucket-ceiling rule, parallel relax
//	KindRho         ordered frontier, ρ-quota rank rule, parallel relax
//
// The first three are Radius-Stepping (Algorithms 1/2 and §3.4 of the
// paper) and produce identical step and substep counts. KindDelta and
// KindRho are the Δ- and ρ-stepping strategies of the stepping-algorithm
// family (Dong et al., "Efficient Stepping Algorithms and
// Implementations for Parallel Shortest Paths"): they ignore the radii
// and instead pick d_i from a fixed bucket width or a per-step vertex
// quota. Every kind returns identical distances; only the round
// structure (and therefore performance) differs.
type EngineKind int

const (
	KindSequential EngineKind = iota
	KindParallel
	KindFlat
	KindDelta
	KindRho
)

// String names the kind; the names appear in Stats.Engine and in the
// daemon's per-engine solve counters.
func (k EngineKind) String() string {
	switch k {
	case KindSequential:
		return "sequential"
	case KindParallel:
		return "parallel"
	case KindFlat:
		return "flat"
	case KindDelta:
		return "delta"
	case KindRho:
		return "rho"
	default:
		return fmt.Sprintf("EngineKind(%d)", int(k))
	}
}

// Params tunes the radius-free stepping strategies and the relaxation
// substrate. The zero value selects sensible defaults for everything.
type Params struct {
	// Delta is the Δ-stepping bucket width (KindDelta). <= 0 derives
	// DefaultDelta from the graph.
	Delta float64
	// Rho is the ρ-stepping extraction quota (KindRho): each step
	// settles (at least) the ρ closest fringe vertices. <= 0 selects 32.
	// By default Rho is only the STARTING quota: an adaptive rule grows
	// it when steps settle too few vertices (see rhoStepper), cutting
	// step counts on large fringes while keeping distances exact.
	Rho int
	// RhoFixed pins the ρ quota to Rho for the whole solve, disabling
	// the adaptive growth rule. Step/substep counts then match the
	// classic fixed-ρ strategy; distances are byte-identical either way.
	RhoFixed bool
	// Relax selects the substep traversal: RelaxAdaptive (default)
	// switches between push and pull per substep; RelaxPush/RelaxPull
	// force one direction (distances are identical either way — the
	// force knobs exist for benchmarking and the cross-mode property
	// tests).
	Relax RelaxMode
	// Recorder, when non-nil, receives a per-step/per-substep timeline
	// of the solve (see internal/trace). nil — the default and the hot
	// path — adds a single pointer comparison per instrumentation site
	// and zero allocations; the CI alloc gates depend on that.
	Recorder *trace.Recorder
	// Bound, when non-nil on a target-mode solve (SolveKindTarget), is
	// an admissible lower bound on the remaining distance from v to the
	// solve's target: Bound(v) <= true d(v, target) for every v, with 0
	// meaning "unknown" and +Inf asserting the target is unreachable
	// from v. Relaxations whose optimistic total d(u)+w+Bound(v)
	// strictly exceeds the target's current upper bound are skipped and
	// counted in Stats.Pruned; admissibility guarantees no relaxation
	// on a shortest path to the target is ever skipped, so the target
	// distance is byte-identical to the unpruned solve's (remaining
	// entries of the distance vector may be looser upper bounds than an
	// unpruned target solve would leave). Full solves (no target)
	// ignore the hook. Bound is called on the relaxation hot path from
	// multiple goroutines concurrently: it must be cheap, pure, and
	// safe for concurrent use.
	Bound func(v graph.V) float64
	// UpperBound primes the target's upper bound before the first
	// substep (for ALT, the landmark estimate min_L d(L,s)+d(L,t) >=
	// d(s,t)), so pruning bites before any relaxation reaches the
	// target. It must be a true upper bound on d(src, target); <= 0
	// means none. Consulted only when Bound is non-nil.
	UpperBound float64
	// Probe, when non-nil, lets the caller cooperatively abort the
	// solve: the driver polls it once per step and substep, and the
	// relax kernels poll it every ~probeArcInterval scanned arcs, so
	// even one enormous substep notices quickly. When the probe has
	// fired the solve unwinds with its typed error (ErrCanceled or
	// ErrDeadline) and no distance vector; the workspace stays valid
	// for pooled reuse. nil — the default and the hot path — costs a
	// pointer comparison per poll site and zero allocations, so the
	// alloc gates and latency baselines hold unchanged.
	Probe *Probe
}

// NewTraceRecorder returns a solve-trace recorder wired to the worker
// pool's process-global counters, ready to pass as Params.Recorder.
func NewTraceRecorder() *trace.Recorder {
	return trace.NewRecorder(func() trace.PoolDelta {
		pc := parallel.ReadPoolCounters()
		return trace.PoolDelta{
			Forks:          pc.Forks,
			Dispatched:     pc.Dispatched,
			Inline:         pc.Inline,
			WorkersCreated: pc.Created,
			Parks:          pc.Parks,
			WakeNanos:      pc.WakeNanos,
			BarrierNanos:   pc.BarrierNanos,
			Claims:         pc.Claims,
		}
	})
}

// defaultRhoQuota mirrors the default preprocessing ball size: steps
// settle about as many vertices as one ball holds.
const defaultRhoQuota = 32

// DefaultDelta derives a Δ-stepping bucket width when none is given:
// L/d̄ (the largest edge weight over the mean degree), the Meyer–Sanders
// guidance of Δ = Θ(1/d) for weights normalized to [0, L]. Degenerate
// graphs (no edges, all-zero weights) get Δ = 1; any positive width is
// correct there.
func DefaultDelta(g *graph.CSR) float64 {
	n := g.NumVertices()
	if n == 0 {
		return 1
	}
	dbar := float64(g.NumArcs()) / float64(n)
	if dbar < 1 {
		dbar = 1
	}
	d := g.MaxWeight() / dbar
	if !(d > 0) {
		return 1
	}
	return d
}

// stepper is the strategy half of the framework: it owns the fringe
// (reached-but-unsettled vertices) and chooses each step's settling
// threshold d_i. The driver owns everything else — the distance array,
// the Bellman–Ford substep loop, settling, stamps, and statistics — so a
// new stepping strategy is only a fringe structure plus a target rule.
type stepper interface {
	// reset prepares the fringe for a new solve (the workspace has
	// already been prepared, so sizes and radii are current).
	reset()
	// seed enters the source's relaxed neighbors (unique, unsettled,
	// with final tentative distances) into the fringe.
	seed(vs []graph.V)
	// target picks the next step: the threshold d_i and the lead vertex
	// attaining it. ok=false ends the solve (fringe exhausted).
	target() (di float64, lead graph.V, ok bool)
	// collect removes every fringe vertex with δ(v) <= di, appending it
	// to dst. It must tolerate stale (settled) fringe entries.
	collect(di float64, dst []graph.V) []graph.V
	// push records that v's distance improved to d with d > d_i: v
	// enters the fringe, or moves if already present.
	push(v graph.V, d float64)
	// settle removes v from the fringe if present: a substep improved v
	// to δ(v) <= d_i, so it joins the active set instead.
	settle(v graph.V)
	// commit flushes buffered fringe updates at the end of a substep
	// (bulk-update structures batch their push/settle work).
	commit()
	// fringe reports the fringe population for the step trace. May
	// overcount structures that keep stale entries (the lazy heaps and
	// the flat array); exactness is not required — the value only
	// annotates trace records.
	fringe() int
}

// timedStepper is implemented by steppers whose fringe structure can
// stamp phase timings (the frontier-backed ones); the driver switches
// timing on exactly when a trace recorder is attached.
type timedStepper interface {
	setTiming(on bool)
}

// stepperFor returns the workspace's cached stepper for kind, creating
// and configuring it as needed.
func (ws *Workspace) stepperFor(kind EngineKind, p Params) stepper {
	switch kind {
	case KindSequential:
		if ws.hp == nil {
			ws.hp = &heapStepper{ws: ws}
		}
		return ws.hp
	case KindParallel:
		if ws.fs == nil {
			ws.fs = &frontierStepper{ws: ws}
		}
		return ws.fs
	case KindRho:
		if ws.rh == nil {
			ws.rh = &rhoStepper{ws: ws}
		}
		r := ws.rh
		r.quota0 = p.Rho
		if r.quota0 <= 0 {
			r.quota0 = defaultRhoQuota
		}
		r.fixed = p.RhoFixed
		return r
	default: // the flat-fringe family: flat, delta
		if ws.fl == nil {
			ws.fl = &flatStepper{ws: ws}
		}
		f := ws.fl
		f.kind = kind
		f.delta = p.Delta
		if kind == KindDelta && !(f.delta > 0) {
			f.delta = DefaultDelta(ws.g)
		}
		return f
	}
}

// usesRadii reports whether kind consults the per-vertex radii. The
// radius-free strategies accept nil radii.
func (k EngineKind) usesRadii() bool {
	return k == KindSequential || k == KindParallel || k == KindFlat
}

// SolveKind computes shortest-path distances from src with the given
// engine kind, reusing ws when non-nil (pass nil for a one-shot solve).
// For the radius-free kinds (KindDelta, KindRho) radii may be nil.
func SolveKind(g *graph.CSR, radii []float64, src graph.V, kind EngineKind, p Params, ws *Workspace) ([]float64, Stats, error) {
	return solve(g, radii, src, kind, p, ws, nil, -1)
}

// SolveKindTarget is SolveKind with early termination: the solve stops
// as soon as target is settled (its distance is then exact — the settled
// set is always correct, Theorem 3.1, and the same invariant holds for
// every stepping strategy). Remaining distances are tentative upper
// bounds or +Inf.
func SolveKindTarget(g *graph.CSR, radii []float64, src, target graph.V, kind EngineKind, p Params, ws *Workspace) (float64, []float64, Stats, error) {
	if target < 0 || int(target) >= g.NumVertices() {
		return 0, nil, Stats{}, fmt.Errorf("core: target %d out of range [0,%d)", target, g.NumVertices())
	}
	dist, st, err := solve(g, radii, src, kind, p, ws, nil, target)
	if err != nil {
		return 0, nil, Stats{}, err
	}
	return dist[target], dist, st, nil
}

// solve is the unified driver behind every engine. One outer loop asks
// the stepper for the step target d_i, extracts the active set A =
// {v : δ(v) <= d_i}, and runs synchronous Bellman–Ford substeps over A
// until no relaxation lands at or below d_i; improvements beyond d_i go
// back to the stepper's fringe. When stopAt >= 0 the solve ends as soon
// as that vertex is settled.
func solve(g *graph.CSR, radii []float64, src graph.V, kind EngineKind, p Params, ws *Workspace, observe func(StepTrace), stopAt graph.V) ([]float64, Stats, error) {
	if kind < KindSequential || kind > KindRho {
		return nil, Stats{}, fmt.Errorf("core: unknown engine kind %d", int(kind))
	}
	if p.Relax < RelaxAdaptive || p.Relax > RelaxPull {
		return nil, Stats{}, fmt.Errorf("core: unknown relax mode %d", int(p.Relax))
	}
	if radii == nil && !kind.usesRadii() {
		if err := validateSrc(g, src); err != nil {
			return nil, Stats{}, err
		}
	} else if err := validate(g, radii, src); err != nil {
		return nil, Stats{}, err
	}
	if ws == nil {
		ws = NewWorkspace()
	}
	ws.prepare(g, radii)
	sp := ws.stepperFor(kind, p)
	sp.reset()

	// Cooperative cancellation: the probe is (re)set on every solve so a
	// pooled workspace never inherits a fired probe from an earlier
	// canceled solve. A probe that fired before the solve even started
	// aborts here, before the seed relaxation touches anything.
	probe := p.Probe
	ws.probe = probe
	if err := probe.Err(); err != nil {
		return nil, Stats{Engine: kind.String()}, err
	}

	// Goal-directed pruning: the Bound hook is honored only when the
	// solve has a target to prune toward. The hook and its upper bound
	// are (re)set on every solve so a pooled workspace never inherits a
	// stale bound from an earlier target solve.
	ws.bound = nil
	if stopAt >= 0 && p.Bound != nil {
		ws.bound = p.Bound
		ws.boundTarget = stopAt
		ws.ubPrior = math.Inf(1)
		if p.UpperBound > 0 {
			ws.ubPrior = p.UpperBound
		}
		ws.resetBound(g.NumVertices())
	}

	// Solve tracing: rec == nil (the hot path) keeps every site below a
	// pointer comparison. Fringe timing is (re)set on every solve so a
	// pooled workspace that served a traced solve does not keep paying
	// for clock reads afterwards.
	rec := p.Recorder
	if ts, ok := sp.(timedStepper); ok {
		ts.setTiming(rec != nil)
	}
	if rec != nil {
		rec.Begin(kind.String(), int64(src))
	}

	var st Stats
	st.Engine = kind.String()
	seq := kind == KindSequential
	ws.bits[src] = parallel.ToBits(0)
	ws.done[src] = true
	ws.settled(src)

	// Relax the source's neighbors (Algorithm 1, line 2) and seed the
	// fringe with the unique improved vertices at their final distances.
	{
		adj, wts := g.Neighbors(src)
		st.EdgesScanned += int64(len(adj))
		for i, v := range adj {
			if parallel.WriteMin(&ws.bits[v], parallel.ToBits(wts[i])) {
				st.Relaxations++
			}
		}
		// Dedup multi-edges with a fresh substep stamp (the act array
		// cannot serve here: its seed marks would survive into the next
		// solve's seed under the monotonic-stamp scheme).
		seedMark := ws.nextSubID()
		seedList := ws.active[:0]
		for _, v := range adj {
			if v != src && ws.sub[v] != seedMark {
				ws.sub[v] = seedMark
				seedList = append(seedList, v)
			}
		}
		sp.seed(seedList)
		ws.active = seedList
	}

	active := ws.active[:0]
	frontier := ws.frontier[:0]
	next := ws.next[:0]
	stepNo := 0

	// Traced solves stamp phase boundaries with the wall clock; the
	// zero-value times are never read when rec is nil.
	var stepStart, phaseStart time.Time
	var srec trace.StepRecord
	var solveErr error
steps:
	for {
		// Per-step probe poll: between steps every structure is at a
		// clean boundary, so this is the cheapest abort point.
		if solveErr = probe.Err(); solveErr != nil {
			break
		}
		if rec != nil {
			stepStart = rec.Now()
			phaseStart = stepStart
			srec = trace.StepRecord{FringeLen: sp.fringe()}
		}
		di, lead, ok := sp.target()
		if !ok {
			break
		}
		step := ws.nextStep()
		stepNo++
		st.Steps++
		if rec != nil {
			srec.TargetNanos = time.Since(phaseStart).Nanoseconds()
			phaseStart = rec.Now()
		}

		// Extract A = {v : δ(v) <= d_i} from the fringe.
		active = sp.collect(di, active[:0])
		for _, v := range active {
			ws.act[v] = step
		}
		if rec != nil {
			srec.CollectNanos = time.Since(phaseStart).Nanoseconds()
		}

		// Bellman–Ford substeps: relax from changed vertices only; a
		// round producing no δ(v) <= d_i update is the last. Improved
		// vertices at or below d_i join A (leaving the fringe); the rest
		// enter or move within the fringe.
		frontier = append(frontier[:0], active...)
		substeps := 0
		for len(frontier) > 0 {
			// Per-substep probe poll; the relax kernels additionally poll
			// mid-substep (every ~probeArcInterval arcs / one claim
			// chunk), so a fired probe is noticed promptly even inside
			// one huge substep — the kernel bails early and this check
			// unwinds the solve.
			if solveErr = probe.Err(); solveErr != nil {
				break steps
			}
			substeps++
			ws.nextSubID()
			var scanned0, relaxed0 int64
			var push0 int
			if rec != nil {
				scanned0, relaxed0, push0 = st.EdgesScanned, st.Relaxations, st.PushSubsteps
				phaseStart = rec.Now()
			}
			updated := ws.relax(frontier, &st, seq, p.Relax)
			if rec != nil {
				dur := time.Since(phaseStart).Nanoseconds()
				mode := "pull"
				if st.PushSubsteps > push0 {
					mode = "push"
				}
				srec.RelaxNanos += dur
				rec.Substep(trace.SubstepRecord{
					Step:        stepNo,
					Substep:     substeps,
					Mode:        mode,
					FrontierLen: len(frontier),
					ArcsScanned: st.EdgesScanned - scanned0,
					Relaxed:     st.Relaxations - relaxed0,
					Nanos:       dur,
				})
			}
			next = next[:0]
			for _, v := range updated {
				nd := parallel.FromBits(ws.bits[v])
				if nd <= di {
					if ws.act[v] != step {
						ws.act[v] = step
						active = append(active, v)
						sp.settle(v)
					}
					next = append(next, v)
				} else {
					sp.push(v, nd)
				}
			}
			sp.commit()
			frontier, next = next, frontier
		}

		st.Substeps += substeps
		if substeps > st.MaxSubsteps {
			st.MaxSubsteps = substeps
		}
		if len(active) > st.MaxStep {
			st.MaxStep = len(active)
		}
		for _, v := range active {
			ws.done[v] = true
			ws.settled(v)
		}
		if rec != nil {
			srec.Step = stepNo
			srec.Di = di
			srec.Lead = int64(lead)
			srec.Settled = len(active)
			srec.Substeps = substeps
			srec.Nanos = time.Since(stepStart).Nanoseconds()
			rec.Step(srec)
		}
		if observe != nil {
			observe(StepTrace{Step: stepNo, Di: di, Lead: lead, Settled: len(active), Substeps: substeps})
		}
		if stopAt >= 0 && ws.done[stopAt] {
			break
		}
	}
	ws.active, ws.frontier, ws.next = active[:0], frontier[:0], next[:0]
	if fb, ok := sp.(frontierBacked); ok {
		st.Frontier = fb.frontierOps()
	}
	if r, ok := sp.(*rhoStepper); ok {
		st.QuotaAdjustments = r.adjusts
	}
	if rec != nil {
		rec.End(st.Steps, st.Substeps, st.Relaxations, trace.FrontierPhases{
			FilterNanos: st.Frontier.FilterNanos,
			SortNanos:   st.Frontier.SortNanos,
			MergeNanos:  st.Frontier.MergeNanos,
		})
	}
	if solveErr != nil {
		// Aborted solves return the typed cancellation error and no
		// distances. The workspace needs no special cleanup: every
		// buffer the partial solve dirtied is re-prepared (distances,
		// settled marks) or stamp-invalidated (act/sub/seen/infr) by the
		// next solve, and each stepper's reset() rebuilds its fringe.
		return nil, st, solveErr
	}
	return parallel.BitsToFloats(ws.bits), st, nil
}
