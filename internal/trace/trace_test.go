package trace

import (
	"encoding/json"
	"testing"
	"time"
)

func TestRecorderLifecycle(t *testing.T) {
	calls := 0
	read := func() PoolDelta {
		calls++
		// First sample (Begin) returns the low counters, second (End)
		// the high ones, so the timeline must hold the difference.
		if calls == 1 {
			return PoolDelta{Forks: 10, Dispatched: 100, WakeNanos: 1000, Claims: 5}
		}
		return PoolDelta{Forks: 13, Dispatched: 140, WakeNanos: 9000, Claims: 25}
	}
	r := NewRecorder(read)
	r.Begin("parallel", 7)
	r.Step(StepRecord{Step: 1, Di: 3.5, Settled: 42, Substeps: 2, Nanos: 111})
	r.Substep(SubstepRecord{Step: 1, Substep: 1, Mode: "push", FrontierLen: 9, Nanos: 50})
	r.Substep(SubstepRecord{Step: 1, Substep: 2, Mode: "pull", FrontierLen: 4, Nanos: 61})
	tl := r.End(1, 2, 57, FrontierPhases{SortNanos: 17})

	if tl.Engine != "parallel" || tl.Source != 7 {
		t.Fatalf("identity: engine=%q source=%d", tl.Engine, tl.Source)
	}
	if tl.Steps != 1 || tl.Substeps != 2 || tl.Relaxations != 57 {
		t.Fatalf("summary: %+v", tl)
	}
	if len(tl.StepList) != tl.Steps || len(tl.SubstepList) != tl.Substeps {
		t.Fatalf("list lengths disagree with summary: %d/%d vs %d/%d",
			len(tl.StepList), len(tl.SubstepList), tl.Steps, tl.Substeps)
	}
	if tl.SolveNanos <= 0 {
		t.Fatalf("SolveNanos = %d, want > 0", tl.SolveNanos)
	}
	if tl.Frontier.SortNanos != 17 {
		t.Fatalf("frontier phases not carried: %+v", tl.Frontier)
	}
	want := PoolDelta{Forks: 3, Dispatched: 40, WakeNanos: 8000, Claims: 20}
	if tl.Pool != want {
		t.Fatalf("pool delta = %+v, want %+v", tl.Pool, want)
	}
	if calls != 2 {
		t.Fatalf("poolRead called %d times, want 2 (Begin + End)", calls)
	}
}

func TestRecorderNilPoolRead(t *testing.T) {
	r := NewRecorder(nil)
	r.Begin("sequential", 0)
	tl := r.End(0, 0, 0, FrontierPhases{})
	if tl.Pool != (PoolDelta{}) {
		t.Fatalf("pool delta without poolRead = %+v, want zero", tl.Pool)
	}
}

func TestRecorderBeginResets(t *testing.T) {
	r := NewRecorder(nil)
	r.Begin("sequential", 1)
	r.Step(StepRecord{Step: 1})
	r.End(1, 0, 0, FrontierPhases{})
	// Recorders are documented single-use, but Begin must still leave no
	// residue from a prior solve if one is reused.
	r.Begin("flat", 2)
	tl := r.End(0, 0, 0, FrontierPhases{})
	if tl.Engine != "flat" || tl.Source != 2 || len(tl.StepList) != 0 {
		t.Fatalf("Begin did not reset: %+v", tl)
	}
}

func TestTimelineJSONRoundTrip(t *testing.T) {
	r := NewRecorder(nil)
	r.Begin("rho", 3)
	r.Step(StepRecord{Step: 1, Di: 2.25, Lead: 9, FringeLen: 3, Settled: 3, Substeps: 1,
		TargetNanos: 1, CollectNanos: 2, RelaxNanos: 3, Nanos: 6})
	r.Substep(SubstepRecord{Step: 1, Substep: 1, Mode: "push", FrontierLen: 3,
		ArcsScanned: 12, Relaxed: 4, Nanos: 3})
	tl := r.End(1, 1, 4, FrontierPhases{FilterNanos: 1, SortNanos: 2, MergeNanos: 3})

	data, err := json.Marshal(tl)
	if err != nil {
		t.Fatal(err)
	}
	var back Timeline
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	back.SolveNanos = tl.SolveNanos // wall time is the only nondeterministic field
	if back.Engine != tl.Engine || back.Steps != tl.Steps ||
		len(back.StepList) != 1 || len(back.SubstepList) != 1 ||
		back.StepList[0] != tl.StepList[0] || back.SubstepList[0] != tl.SubstepList[0] ||
		back.Frontier != tl.Frontier {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back, *tl)
	}
}

func TestRecorderNow(t *testing.T) {
	r := NewRecorder(nil)
	if d := time.Since(r.Now()); d < 0 || d > time.Minute {
		t.Fatalf("Now() implausible: %v ago", d)
	}
}

func BenchmarkRecorderSubstep(b *testing.B) {
	r := NewRecorder(nil)
	r.Begin("parallel", 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Substep(SubstepRecord{Step: 1, Substep: i, Mode: "push", FrontierLen: 100})
	}
}
