// Package trace implements the solve-trace recorder behind the
// observability layer: a per-step/per-substep timeline of one SSSP
// solve, plus deltas of the worker-pool and frontier-substrate
// instrumentation sampled around it.
//
// The recorder is designed around one invariant: tracing that is NOT
// requested must cost nothing. The stepping driver carries a *Recorder
// in its parameters; when it is nil every instrumentation site is a
// single pointer comparison and no clock is read, so the steady-state
// allocation and latency budgets of untraced solves are unchanged (the
// CI alloc gates enforce this). When a recorder IS attached, the driver
// stamps wall-clock boundaries around each phase of the step loop —
// target selection, frontier extraction, Bellman–Ford substeps — and
// the recorder appends fixed-size records to grow-only slices.
//
// A Recorder is single-solve, single-goroutine state: make one per
// traced solve (the traced paths are diagnostic, not hot). The
// resulting Timeline is the JSON body returned by the daemon's
// ?trace=1 query parameter, written by cmd/sssp -trace, and emitted per
// engine by radius-bench -trace.
//
// The package sits below every other internal package (it imports only
// the standard library), so core, frontier, parallel and server are all
// free to reference its types.
package trace

import "time"

// SubstepRecord times one Bellman–Ford substep (one synchronous
// relaxation round) inside a step.
type SubstepRecord struct {
	// Step is the 1-based index of the enclosing step.
	Step int `json:"step"`
	// Substep is the 1-based index within the step.
	Substep int `json:"substep"`
	// Mode is the relaxation direction the substep ran: "push"
	// (scatter from the frontier with priority-writes) or "pull"
	// (vertex-owned gather over the unsettled remainder).
	Mode string `json:"mode"`
	// FrontierLen is the number of changed vertices relaxed from.
	FrontierLen int `json:"frontierLen"`
	// ArcsScanned counts arcs examined by this substep.
	ArcsScanned int64 `json:"arcsScanned"`
	// Relaxed counts successful distance improvements.
	Relaxed int64 `json:"relaxed"`
	// Nanos is the substep's wall time.
	Nanos int64 `json:"nanos"`
}

// StepRecord times one outer step (one round of the stepping
// algorithm).
type StepRecord struct {
	// Step is the 1-based step index.
	Step int `json:"step"`
	// Di is the step's settling threshold d_i.
	Di float64 `json:"di"`
	// Lead is the vertex attaining d_i (-1 if the engine reports
	// none).
	Lead int64 `json:"lead"`
	// FringeLen is the fringe population when the step began (before
	// extraction). Engines that do not track a materialized fringe
	// report 0.
	FringeLen int `json:"fringeLen"`
	// Settled is the number of vertices settled by the step.
	Settled int `json:"settled"`
	// Substeps is the number of Bellman–Ford substeps the step took.
	Substeps int `json:"substeps"`
	// TargetNanos is the time spent choosing d_i — for the
	// frontier-backed engines this includes the deferred Commit (batch
	// sort + run merges), which is why the frontier phase totals below
	// largely live inside it.
	TargetNanos int64 `json:"targetNanos"`
	// CollectNanos is the time spent extracting the active set
	// A = {v : δ(v) <= d_i}.
	CollectNanos int64 `json:"collectNanos"`
	// RelaxNanos is the summed wall time of the step's substeps.
	RelaxNanos int64 `json:"relaxNanos"`
	// Nanos is the step's total wall time (target + collect + substeps
	// + settling bookkeeping).
	Nanos int64 `json:"nanos"`
}

// PoolDelta is the change in the worker-pool counters
// (internal/parallel) across the traced solve: how many fork-joins ran,
// how many tasks woke parked workers and how long wake-up took, how
// long fork callers waited at join barriers, and how many batched work
// ranges workers claimed. The pool is process-global, so on a daemon
// with concurrent solves the delta attributes every pool event in the
// window to this solve — exact for single-solve tools (cmd/sssp,
// radius-bench), approximate under concurrency.
type PoolDelta struct {
	// Forks counts fork-join regions entered (parallel.For / Blocks /
	// Workers / Do).
	Forks int64 `json:"forks"`
	// Dispatched counts tasks handed to pool workers (the unpark
	// events); participants the pool could not serve ran inline on the
	// caller and are counted by Inline.
	Dispatched int64 `json:"dispatched"`
	// Inline counts participants the caller ran itself because the
	// pool was exhausted.
	Inline int64 `json:"inline"`
	// WorkersCreated counts new pool workers spawned in the window.
	WorkersCreated int64 `json:"workersCreated"`
	// Parks counts workers re-parking after finishing a task.
	Parks int64 `json:"parks"`
	// WakeNanos sums the send-to-execution latency over Dispatched
	// tasks: how long a woken worker took to actually start.
	WakeNanos int64 `json:"wakeNanos"`
	// BarrierNanos sums the time fork callers spent waiting at the
	// join barrier after finishing their own share.
	BarrierNanos int64 `json:"barrierNanos"`
	// Claims counts batched work ranges claimed by workers inside
	// fork-join regions (one claim per ~grain items).
	Claims int64 `json:"claims"`
}

// FrontierPhases is the ordered-frontier substrate's phase timing for
// the traced solve (zero for engines not built on internal/frontier):
// where Commit time went, split into the stale-entry filter pass, the
// batch sort sealing a run, and the size-tier run merges.
type FrontierPhases struct {
	FilterNanos int64 `json:"filterNanos"`
	SortNanos   int64 `json:"sortNanos"`
	MergeNanos  int64 `json:"mergeNanos"`
}

// Timeline is the complete trace of one solve — the JSON body behind
// ?trace=1, cmd/sssp -trace and radius-bench -trace.
type Timeline struct {
	Engine string `json:"engine"`
	Source int64  `json:"source"`
	// Steps / Substeps mirror the solve's Stats so a timeline is
	// self-describing (and so consistency is checkable: len(StepList)
	// == Steps, len(SubstepList) == Substeps).
	Steps       int             `json:"steps"`
	Substeps    int             `json:"substeps"`
	Relaxations int64           `json:"relaxations"`
	SolveNanos  int64           `json:"solveNanos"`
	StepList    []StepRecord    `json:"stepList"`
	SubstepList []SubstepRecord `json:"substepList"`
	Pool        PoolDelta       `json:"pool"`
	Frontier    FrontierPhases  `json:"frontier"`
}

// Recorder accumulates one solve's timeline. The zero value is ready to
// use; the driver calls the Begin/End and record methods. Not safe for
// concurrent use — one recorder per solve.
type Recorder struct {
	tl       Timeline
	start    time.Time
	poolPre  PoolDelta
	poolRead func() PoolDelta // sampled at Begin and End; nil skips pool deltas
}

// NewRecorder returns a recorder whose pool section is computed from
// poolRead deltas (pass nil to skip pool sampling).
func NewRecorder(poolRead func() PoolDelta) *Recorder {
	return &Recorder{poolRead: poolRead}
}

// Begin marks the solve start: engine, source, clock zero, and the
// pre-solve pool counter sample.
func (r *Recorder) Begin(engine string, source int64) {
	r.tl = Timeline{Engine: engine, Source: source}
	r.start = time.Now()
	if r.poolRead != nil {
		r.poolPre = r.poolRead()
	}
}

// Now returns the current time; the driver uses it so untraced solves
// never read the clock (the call sits behind the nil-recorder check).
func (r *Recorder) Now() time.Time { return time.Now() }

// Step appends one completed step record.
func (r *Recorder) Step(rec StepRecord) {
	r.tl.StepList = append(r.tl.StepList, rec)
}

// Substep appends one completed substep record.
func (r *Recorder) Substep(rec SubstepRecord) {
	r.tl.SubstepList = append(r.tl.SubstepList, rec)
}

// End finalizes the timeline with the solve's summary statistics and
// the frontier phase totals, samples the pool counters again, and
// returns the completed timeline. The returned pointer aliases the
// recorder's state; recorders are single-use.
func (r *Recorder) End(steps, substeps int, relaxations int64, fr FrontierPhases) *Timeline {
	r.tl.SolveNanos = time.Since(r.start).Nanoseconds()
	r.tl.Steps = steps
	r.tl.Substeps = substeps
	r.tl.Relaxations = relaxations
	r.tl.Frontier = fr
	if r.poolRead != nil {
		post := r.poolRead()
		r.tl.Pool = PoolDelta{
			Forks:          post.Forks - r.poolPre.Forks,
			Dispatched:     post.Dispatched - r.poolPre.Dispatched,
			Inline:         post.Inline - r.poolPre.Inline,
			WorkersCreated: post.WorkersCreated - r.poolPre.WorkersCreated,
			Parks:          post.Parks - r.poolPre.Parks,
			WakeNanos:      post.WakeNanos - r.poolPre.WakeNanos,
			BarrierNanos:   post.BarrierNanos - r.poolPre.BarrierNanos,
			Claims:         post.Claims - r.poolPre.Claims,
		}
	}
	return &r.tl
}

// Timeline returns the recorder's (possibly still accumulating)
// timeline.
func (r *Recorder) Timeline() *Timeline { return &r.tl }
