// Package fault is the serving stack's fault-injection seam: named
// sites in production code call Check, which is a no-op (one atomic
// load and a nil comparison) until a test installs a plan. Plans can
// delay, fail, or panic a site a bounded number of times, letting the
// chaos suite drive the HTTP server through slow solves, failing cache
// fills, and panicking engines without any test hooks leaking into the
// production types.
//
// The seam is process-global and guarded by an atomic pointer so
// concurrent Check calls never lock; Inject/Clear swap the whole table
// copy-on-write and are meant for test setup, not hot paths.
package fault

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Site names used by the serving stack. Exported as constants so tests
// and production code cannot drift apart on spelling.
const (
	// SiteSolve fires inside the flight leader's solve function, after
	// pool admission and before the backend solve, under the same panic
	// guard as the engine itself.
	SiteSolve = "solve"
	// SiteCacheFill fires after a successful solve, before the result is
	// written to the distance cache (and adopted as a landmark). An
	// injected error or panic skips the fill; the response is still
	// correct.
	SiteCacheFill = "cache-fill"
	// SiteSnapshotLoad fires at the top of registry entry construction
	// (BuildEntry), before any file is opened or graph generated.
	SiteSnapshotLoad = "snapshot-load"
	// SiteReload fires at the top of a registry hot reload (admin
	// endpoint, watcher, or cold-state reload), before the rebuild
	// starts — the seam the chaos suite uses to fail a reload while the
	// old epoch must keep serving.
	SiteReload = "reload"
)

// ErrInjected is the sentinel wrapped by every injected error, so
// callers can tell a synthetic fault from a real one with errors.Is.
var ErrInjected = errors.New("fault: injected error")

// Plan describes what a site does when checked. Zero-value fields are
// inert; a plan combining Delay with Err or Panic delays first. Exactly
// one of Err and Panic should be set.
type Plan struct {
	// Delay stalls the site before anything else.
	Delay time.Duration
	// Err makes Check return an error wrapping ErrInjected (and err).
	Err error
	// Panic makes Check panic with this message.
	Panic string
	// Limit bounds how many times the plan fires; after Limit firings
	// the site reverts to a no-op. <= 0 means unlimited.
	Limit int64
}

// armed is one installed plan plus its firing counter.
type armed struct {
	plan  Plan
	fired atomic.Int64
}

// table maps site names to armed plans. Immutable once published; the
// per-plan counters are the only mutable state.
type table struct {
	sites map[string]*armed
}

var (
	active atomic.Pointer[table]
	mu     sync.Mutex // serializes Inject/Remove/Clear (copy-on-write writers)
)

// Inject installs (or replaces) the plan for site. The plan's firing
// counter starts at zero.
func Inject(site string, p Plan) {
	mu.Lock()
	defer mu.Unlock()
	next := &table{sites: make(map[string]*armed)}
	if cur := active.Load(); cur != nil {
		for k, v := range cur.sites {
			next.sites[k] = v
		}
	}
	next.sites[site] = &armed{plan: p}
	active.Store(next)
}

// Remove uninstalls site's plan, if any.
func Remove(site string) {
	mu.Lock()
	defer mu.Unlock()
	cur := active.Load()
	if cur == nil {
		return
	}
	if _, ok := cur.sites[site]; !ok {
		return
	}
	if len(cur.sites) == 1 {
		active.Store(nil)
		return
	}
	next := &table{sites: make(map[string]*armed)}
	for k, v := range cur.sites {
		if k != site {
			next.sites[k] = v
		}
	}
	active.Store(next)
}

// Clear uninstalls every plan, restoring the production no-op state.
func Clear() {
	mu.Lock()
	defer mu.Unlock()
	active.Store(nil)
}

// Fired reports how many times site's current plan has fired (0 when no
// plan is installed).
func Fired(site string) int64 {
	cur := active.Load()
	if cur == nil {
		return 0
	}
	a, ok := cur.sites[site]
	if !ok {
		return 0
	}
	return a.fired.Load()
}

// Check runs site's installed plan, if any: it sleeps the plan's delay,
// then returns the plan's error or panics, counting the firing against
// the plan's limit. With no table installed — the production state —
// it is a single atomic load and nil comparison.
func Check(site string) error {
	cur := active.Load()
	if cur == nil {
		return nil
	}
	a, ok := cur.sites[site]
	if !ok {
		return nil
	}
	if a.plan.Limit > 0 {
		if a.fired.Add(1) > a.plan.Limit {
			// Past the limit: undo the claim so Fired reports actual
			// firings, and revert to the no-op path.
			a.fired.Add(-1)
			return nil
		}
	} else {
		a.fired.Add(1)
	}
	if a.plan.Delay > 0 {
		time.Sleep(a.plan.Delay)
	}
	if a.plan.Panic != "" {
		panic(fmt.Sprintf("fault: injected panic at %s: %s", site, a.plan.Panic))
	}
	if a.plan.Err != nil {
		return fmt.Errorf("%w at %s: %w", ErrInjected, site, a.plan.Err)
	}
	return nil
}
