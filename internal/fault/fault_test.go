package fault

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCheckNoPlanIsNoop(t *testing.T) {
	Clear()
	if err := Check(SiteSolve); err != nil {
		t.Fatalf("Check with no table: %v", err)
	}
	if got := Fired(SiteSolve); got != 0 {
		t.Fatalf("Fired with no table: %d", got)
	}
}

func TestInjectError(t *testing.T) {
	t.Cleanup(Clear)
	boom := errors.New("boom")
	Inject(SiteSolve, Plan{Err: boom})

	err := Check(SiteSolve)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("Check: %v, want ErrInjected", err)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("Check: %v does not wrap the plan's error", err)
	}
	if !strings.Contains(err.Error(), SiteSolve) {
		t.Fatalf("Check error does not name the site: %v", err)
	}
	// Other sites stay clean.
	if err := Check(SiteCacheFill); err != nil {
		t.Fatalf("uninjected site fired: %v", err)
	}
	if got := Fired(SiteSolve); got != 1 {
		t.Fatalf("Fired: %d, want 1", got)
	}
}

func TestLimitBoundsFirings(t *testing.T) {
	t.Cleanup(Clear)
	Inject(SiteCacheFill, Plan{Err: errors.New("x"), Limit: 2})
	for i := 0; i < 2; i++ {
		if err := Check(SiteCacheFill); err == nil {
			t.Fatalf("firing %d: nil, want error", i)
		}
	}
	for i := 0; i < 3; i++ {
		if err := Check(SiteCacheFill); err != nil {
			t.Fatalf("past the limit: %v", err)
		}
	}
	if got := Fired(SiteCacheFill); got != 2 {
		t.Fatalf("Fired: %d, want 2 (checks past the limit don't count)", got)
	}
}

func TestInjectPanic(t *testing.T) {
	t.Cleanup(Clear)
	Inject(SiteSolve, Plan{Panic: "chaos"})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Check did not panic")
		}
		msg, _ := r.(string)
		if !strings.Contains(msg, "chaos") || !strings.Contains(msg, SiteSolve) {
			t.Fatalf("panic message %q missing plan text or site", msg)
		}
	}()
	Check(SiteSolve)
}

func TestInjectDelay(t *testing.T) {
	t.Cleanup(Clear)
	Inject(SiteSnapshotLoad, Plan{Delay: 20 * time.Millisecond})
	start := time.Now()
	if err := Check(SiteSnapshotLoad); err != nil {
		t.Fatalf("delay-only plan returned error: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("Check returned after %v, want >= 20ms", elapsed)
	}
}

func TestRemoveAndClear(t *testing.T) {
	t.Cleanup(Clear)
	Inject(SiteSolve, Plan{Err: errors.New("a")})
	Inject(SiteCacheFill, Plan{Err: errors.New("b")})

	Remove(SiteSolve)
	if err := Check(SiteSolve); err != nil {
		t.Fatalf("removed site still fires: %v", err)
	}
	if err := Check(SiteCacheFill); err == nil {
		t.Fatal("Remove disturbed an unrelated site")
	}
	// Removing the last plan and removing a missing site are both fine.
	Remove(SiteCacheFill)
	Remove("never-installed")
	if err := Check(SiteCacheFill); err != nil {
		t.Fatalf("after removing everything: %v", err)
	}

	Inject(SiteSolve, Plan{Err: errors.New("c")})
	Clear()
	if err := Check(SiteSolve); err != nil {
		t.Fatalf("after Clear: %v", err)
	}
}

// TestConcurrentCheckDuringInject races hot-path Checks against
// copy-on-write writers; the -race build is the assertion.
func TestConcurrentCheckDuringInject(t *testing.T) {
	t.Cleanup(Clear)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					Check(SiteSolve)
					Check(SiteCacheFill)
					Fired(SiteSolve)
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		Inject(SiteSolve, Plan{Err: ErrInjected, Limit: 1})
		Inject(SiteCacheFill, Plan{})
		Remove(SiteCacheFill)
		Clear()
	}
	close(stop)
	wg.Wait()
}
