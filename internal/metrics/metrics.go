// Package metrics is a dependency-free metrics registry that exposes
// counters, gauges and histograms in the Prometheus text exposition
// format (version 0.0.4). It implements exactly the subset the daemon
// needs — counter/gauge/histogram families with a fixed label set,
// callback gauges for sampled runtime values, and a deterministic
// text writer — so the serving layer gets a scrape endpoint without
// pulling in a client library.
//
// All mutation paths (Counter.Add, Gauge.Set, Histogram.Observe) are
// lock-free atomics; With() on a labeled family takes a mutex only on
// the first observation of a label combination, so hot paths should
// capture the child once and reuse it.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// atomicFloat is a float64 updated with CAS on its bit pattern.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas are ignored (counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value reports the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an integer metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add shifts the gauge by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value reports the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates observations into cumulative buckets plus a
// running sum and count, matching the Prometheus histogram contract
// (_bucket{le=...} counts are cumulative; le="+Inf" equals _count).
type Histogram struct {
	bounds []float64      // strictly increasing upper bounds, +Inf excluded
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf overflow
	sum    atomicFloat
	total  atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	// Drop duplicates and any explicit +Inf (the overflow bucket is
	// always materialized).
	out := bs[:0]
	for _, b := range bs {
		if math.IsInf(b, 1) || math.IsNaN(b) {
			continue
		}
		if len(out) > 0 && out[len(out)-1] == b {
			continue
		}
		out = append(out, b)
	}
	return &Histogram{bounds: out, counts: make([]atomic.Int64, len(out)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.total.Add(1)
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Sum reports the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// ExpBuckets returns n log-spaced bucket bounds starting at start and
// growing by factor: start, start*factor, ... — the standard shape for
// latency histograms where interesting values span orders of magnitude.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("metrics: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	bs := make([]float64, n)
	v := start
	for i := range bs {
		bs[i] = v
		v *= factor
	}
	return bs
}

// kind is the advertised metric type of a family.
type kind string

const (
	kindCounter   kind = "counter"
	kindGauge     kind = "gauge"
	kindHistogram kind = "histogram"
)

// family is one named metric family: fixed label names, any number of
// label-value children, written as one HELP/TYPE block.
type family struct {
	name   string
	help   string
	typ    kind
	labels []string

	mu       sync.Mutex
	children map[string]any // label-values key -> *Counter | *Gauge | *Histogram
	order    []string       // insertion order of keys, for stable output

	gaugeFn func() float64 // callback gauge (children empty)
	bounds  []float64      // histogram bucket bounds for new children
}

// labelKey serializes label values into the map key AND the exposition
// label block (so writing needs no re-escaping).
func (f *family) labelKey(values []string) string {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	if len(values) == 0 {
		return ""
	}
	var b strings.Builder
	for i, v := range values {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(f.labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(v))
		b.WriteByte('"')
	}
	return b.String()
}

func (f *family) child(values []string) any {
	key := f.labelKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	var c any
	switch f.typ {
	case kindCounter:
		c = &Counter{}
	case kindGauge:
		c = &Gauge{}
	case kindHistogram:
		c = newHistogram(f.bounds)
	}
	if f.children == nil {
		f.children = make(map[string]any)
	}
	f.children[key] = c
	f.order = append(f.order, key)
	return c
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// With returns the counter for one label-value combination, creating it
// on first use. Hot paths should cache the result.
func (v *CounterVec) With(values ...string) *Counter { return v.f.child(values).(*Counter) }

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// With returns the gauge for one label-value combination.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.child(values).(*Gauge) }

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// With returns the histogram for one label-value combination.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.child(values).(*Histogram) }

// Registry holds metric families and writes them in registration order.
type Registry struct {
	mu   sync.Mutex
	fams []*family
	seen map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{seen: make(map[string]bool)} }

func (r *Registry) add(f *family) {
	if !validName(f.name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", f.name))
	}
	for _, l := range f.labels {
		if !validName(l) || strings.HasPrefix(l, "__") {
			panic(fmt.Sprintf("metrics: invalid label name %q on %s", l, f.name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seen[f.name] {
		panic(fmt.Sprintf("metrics: duplicate metric name %q", f.name))
	}
	r.seen[f.name] = true
	r.fams = append(r.fams, f)
}

// NewCounter registers an unlabeled counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	f := &family{name: name, help: help, typ: kindCounter}
	r.add(f)
	return f.child(nil).(*Counter)
}

// NewCounterVec registers a counter family with the given label names.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	f := &family{name: name, help: help, typ: kindCounter, labels: labels}
	r.add(f)
	return &CounterVec{f}
}

// NewGauge registers an unlabeled gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	f := &family{name: name, help: help, typ: kindGauge}
	r.add(f)
	return f.child(nil).(*Gauge)
}

// NewGaugeVec registers a gauge family with the given label names.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	f := &family{name: name, help: help, typ: kindGauge, labels: labels}
	r.add(f)
	return &GaugeVec{f}
}

// NewGaugeFunc registers a gauge whose value is computed by fn at each
// scrape — the hook for sampled runtime values (goroutine counts, GC
// pauses) that would be wasteful to track continuously.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	r.add(&family{name: name, help: help, typ: kindGauge, gaugeFn: fn})
}

// NewCounterFunc registers a counter whose value is computed by fn at
// each scrape — for monotone counts already maintained elsewhere (a
// cache's hit total) that would be wasteful to mirror on the hot path.
// fn must be non-decreasing; the registry does not enforce it.
func (r *Registry) NewCounterFunc(name, help string, fn func() float64) {
	r.add(&family{name: name, help: help, typ: kindCounter, gaugeFn: fn})
}

// NewHistogram registers an unlabeled histogram with the given bucket
// upper bounds (the +Inf bucket is implicit).
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	f := &family{name: name, help: help, typ: kindHistogram, bounds: bounds}
	r.add(f)
	return f.child(nil).(*Histogram)
}

// NewHistogramVec registers a histogram family with the given label
// names and bucket upper bounds.
func (r *Registry) NewHistogramVec(name, help string, labels []string, bounds []float64) *HistogramVec {
	f := &family{name: name, help: help, typ: kindHistogram, labels: labels, bounds: bounds}
	r.add(f)
	return &HistogramVec{f}
}

// WritePrometheus writes every family in the text exposition format.
// Families appear in registration order; children in first-use order —
// both deterministic, so scrapes diff cleanly.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		f.write(&b)
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) write(b *strings.Builder) {
	if f.help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)
	if f.gaugeFn != nil {
		fmt.Fprintf(b, "%s %s\n", f.name, formatValue(f.gaugeFn()))
		return
	}
	f.mu.Lock()
	order := append([]string(nil), f.order...)
	children := make([]any, len(order))
	for i, k := range order {
		children[i] = f.children[k]
	}
	f.mu.Unlock()
	for i, key := range order {
		switch c := children[i].(type) {
		case *Counter:
			writeSample(b, f.name, "", key, "", float64(c.Value()))
		case *Gauge:
			writeSample(b, f.name, "", key, "", float64(c.Value()))
		case *Histogram:
			// Snapshot counts first so the cumulative sums cannot go
			// backwards within one exposition (observations racing the
			// scrape may still land in sum/count; that skew is allowed).
			counts := make([]int64, len(c.counts))
			var cum int64
			for j := range c.counts {
				counts[j] = c.counts[j].Load()
			}
			for j, bound := range c.bounds {
				cum += counts[j]
				writeSample(b, f.name, "_bucket", key, formatLe(bound), float64(cum))
			}
			cum += counts[len(counts)-1]
			writeSample(b, f.name, "_bucket", key, "+Inf", float64(cum))
			writeSample(b, f.name, "_sum", key, "", c.Sum())
			writeSample(b, f.name, "_count", key, "", float64(c.Count()))
		}
	}
}

// writeSample emits one line: name[suffix]{labels[,le="..."]} value.
func writeSample(b *strings.Builder, name, suffix, labels, le string, v float64) {
	b.WriteString(name)
	b.WriteString(suffix)
	if labels != "" || le != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		if le != "" {
			if labels != "" {
				b.WriteByte(',')
			}
			b.WriteString(`le="`)
			b.WriteString(le)
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatValue(v))
	b.WriteByte('\n')
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func formatLe(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}
