package metrics

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line: a metric name, its label set,
// and the value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Parse reads the Prometheus text exposition format (the subset this
// package writes: HELP/TYPE comments and simple samples, no timestamps)
// and returns the samples in order. It is the validation half of the
// package — CI smoke tests pipe /metrics output through it — so it
// checks structure strictly: names must be valid, TYPE lines must
// precede their samples, values must parse.
func Parse(data []byte) ([]Sample, error) {
	var samples []Sample
	typed := make(map[string]string) // family name -> TYPE
	for ln, line := range strings.Split(string(data), "\n") {
		lineNo := ln + 1
		line = strings.TrimRight(line, "\r")
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			rest := strings.TrimPrefix(line, "#")
			fields := strings.Fields(rest)
			if len(fields) >= 2 && (fields[0] == "HELP" || fields[0] == "TYPE") {
				name := fields[1]
				if !validName(name) {
					return nil, fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
				}
				if fields[0] == "TYPE" {
					if len(fields) != 3 {
						return nil, fmt.Errorf("line %d: TYPE wants one type token", lineNo)
					}
					switch fields[2] {
					case "counter", "gauge", "histogram", "summary", "untyped":
					default:
						return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, fields[2])
					}
					if _, dup := typed[name]; dup {
						return nil, fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
					}
					typed[name] = fields[2]
				}
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		if _, ok := typed[familyOf(s.Name, typed)]; !ok {
			return nil, fmt.Errorf("line %d: sample %q has no preceding TYPE", lineNo, s.Name)
		}
		samples = append(samples, s)
	}
	return samples, nil
}

// familyOf maps a sample name back to its family: histogram samples use
// the _bucket/_sum/_count suffixes of the declared family name.
func familyOf(name string, typed map[string]string) string {
	if _, ok := typed[name]; ok {
		return name
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suffix); ok {
			if typed[base] == "histogram" || typed[base] == "summary" {
				return base
			}
		}
	}
	return name
}

func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	// Name runs to '{' or whitespace.
	end := strings.IndexAny(rest, "{ \t")
	if end < 0 {
		return s, fmt.Errorf("no value in %q", line)
	}
	s.Name = rest[:end]
	if !validName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest = rest[end:]
	if strings.HasPrefix(rest, "{") {
		end := strings.LastIndex(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated label block in %q", line)
		}
		if err := parseLabels(rest[1:end], s.Labels); err != nil {
			return s, err
		}
		rest = rest[end+1:]
	}
	valStr := strings.TrimSpace(rest)
	if valStr == "" {
		return s, fmt.Errorf("no value in %q", line)
	}
	// Timestamps (a second field) are not produced by this package.
	if strings.ContainsAny(valStr, " \t") {
		return s, fmt.Errorf("unexpected extra fields in %q", line)
	}
	v, err := parseValue(valStr)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", valStr, err)
	}
	s.Value = v
	return s, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func parseLabels(block string, out map[string]string) error {
	i := 0
	for i < len(block) {
		// name="value" — value may contain escaped quotes.
		eq := strings.Index(block[i:], "=")
		if eq < 0 {
			return fmt.Errorf("malformed label block %q", block)
		}
		name := strings.TrimSpace(block[i : i+eq])
		if !validName(name) {
			return fmt.Errorf("invalid label name %q", name)
		}
		i += eq + 1
		if i >= len(block) || block[i] != '"' {
			return fmt.Errorf("label %s: value not quoted", name)
		}
		i++
		var b strings.Builder
		for {
			if i >= len(block) {
				return fmt.Errorf("label %s: unterminated value", name)
			}
			c := block[i]
			if c == '\\' {
				if i+1 >= len(block) {
					return fmt.Errorf("label %s: dangling escape", name)
				}
				switch block[i+1] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					return fmt.Errorf("label %s: bad escape \\%c", name, block[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			b.WriteByte(c)
			i++
		}
		if _, dup := out[name]; dup {
			return fmt.Errorf("duplicate label %q", name)
		}
		out[name] = b.String()
		if i < len(block) {
			if block[i] != ',' {
				return fmt.Errorf("expected ',' after label %s", name)
			}
			i++
		}
	}
	return nil
}

// Lint parses the exposition and additionally checks the histogram
// contract on every histogram family: cumulative buckets must be
// non-decreasing in le, the +Inf bucket must be present, and its count
// must equal the family's _count sample for the same label set.
func Lint(data []byte) error {
	samples, err := Parse(data)
	if err != nil {
		return err
	}
	type key struct{ family, labels string }
	buckets := make(map[key][]Sample) // histogram buckets per label set
	counts := make(map[key]float64)
	for _, s := range samples {
		if base, ok := strings.CutSuffix(s.Name, "_bucket"); ok {
			k := key{base, labelsKeySansLe(s.Labels)}
			buckets[k] = append(buckets[k], s)
		}
		if base, ok := strings.CutSuffix(s.Name, "_count"); ok {
			counts[key{base, labelsKeySansLe(s.Labels)}] = s.Value
		}
	}
	for k, bs := range buckets {
		sort.SliceStable(bs, func(i, j int) bool {
			return leOf(bs[i]) < leOf(bs[j])
		})
		prev := math.Inf(-1)
		prevCount := -1.0
		sawInf := false
		for _, b := range bs {
			le := leOf(b)
			if math.IsNaN(le) {
				return fmt.Errorf("histogram %s{%s}: bucket without le label", k.family, k.labels)
			}
			if le == prev {
				return fmt.Errorf("histogram %s{%s}: duplicate le=%v", k.family, k.labels, le)
			}
			if b.Value < prevCount {
				return fmt.Errorf("histogram %s{%s}: bucket counts not monotone at le=%v (%v < %v)",
					k.family, k.labels, le, b.Value, prevCount)
			}
			prev, prevCount = le, b.Value
			if math.IsInf(le, 1) {
				sawInf = true
				if c, ok := counts[k]; ok && c != b.Value {
					return fmt.Errorf("histogram %s{%s}: le=+Inf bucket %v != _count %v",
						k.family, k.labels, b.Value, c)
				}
			}
		}
		if !sawInf {
			return fmt.Errorf("histogram %s{%s}: missing le=+Inf bucket", k.family, k.labels)
		}
	}
	return nil
}

func leOf(s Sample) float64 {
	le, ok := s.Labels["le"]
	if !ok {
		return math.NaN()
	}
	v, err := parseValue(le)
	if err != nil {
		return math.NaN()
	}
	return v
}

// labelsKeySansLe serializes a label set minus le, so a histogram's
// buckets group with its _sum/_count.
func labelsKeySansLe(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
	}
	return b.String()
}
