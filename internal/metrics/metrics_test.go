package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("jobs_total", "Jobs processed.")
	c.Add(3)
	c.Inc()
	c.Add(-5) // ignored: counters only go up
	g := r.NewGauge("queue_depth", "Current queue depth.")
	g.Set(7)
	g.Add(-2)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP jobs_total Jobs processed.\n",
		"# TYPE jobs_total counter\n",
		"jobs_total 4\n",
		"# TYPE queue_depth gauge\n",
		"queue_depth 5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if err := Lint([]byte(out)); err != nil {
		t.Errorf("Lint: %v", err)
	}
}

func TestLabeledFamilies(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("requests_total", "Requests by endpoint.", "endpoint", "class")
	v.With("/v1/distances", "2xx").Add(10)
	v.With("/v1/route", "5xx").Inc()
	v.With("/v1/distances", "2xx").Inc() // same child
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `requests_total{endpoint="/v1/distances",class="2xx"} 11`) {
		t.Errorf("labeled sample missing:\n%s", out)
	}
	samples, err := Parse([]byte(out))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range samples {
		if s.Name == "requests_total" && s.Labels["endpoint"] == "/v1/route" {
			found = true
			if s.Labels["class"] != "5xx" || s.Value != 1 {
				t.Errorf("bad sample %+v", s)
			}
		}
	}
	if !found {
		t.Errorf("route sample not parsed:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.NewGaugeVec("weird", "", "path")
	v.With(`a"b\c` + "\n" + "d").Set(1)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	samples, err := Parse([]byte(b.String()))
	if err != nil {
		t.Fatalf("Parse round-trip: %v\n%s", err, b.String())
	}
	if got := samples[0].Labels["path"]; got != "a\"b\\c\nd" {
		t.Errorf("escaping round-trip: got %q", got)
	}
}

func TestHistogramContract(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogramVec("solve_seconds", "Solve latency.", []string{"engine"}, ExpBuckets(1e-4, 4, 6))
	for _, v := range []float64{0.00005, 0.0002, 0.0002, 0.01, 3, 1000} {
		h.With("parallel").Observe(v)
	}
	h.With("rho").Observe(0.5)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if err := Lint([]byte(out)); err != nil {
		t.Fatalf("Lint: %v\n%s", err, out)
	}
	samples, err := Parse([]byte(out))
	if err != nil {
		t.Fatal(err)
	}
	// Cumulative counts must be non-decreasing and end at the total.
	var last, inf float64
	last = -1
	for _, s := range samples {
		if s.Name != "solve_seconds_bucket" || s.Labels["engine"] != "parallel" {
			continue
		}
		if s.Value < last {
			t.Errorf("bucket le=%s decreased: %v < %v", s.Labels["le"], s.Value, last)
		}
		last = s.Value
		if s.Labels["le"] == "+Inf" {
			inf = s.Value
		}
	}
	if inf != 6 {
		t.Errorf("+Inf bucket = %v, want 6", inf)
	}
	if got := h.With("parallel").Count(); got != 6 {
		t.Errorf("Count = %d, want 6", got)
	}
	if s := h.With("parallel").Sum(); math.Abs(s-1003.0104501) > 1e-6 {
		t.Errorf("Sum = %v", s)
	}
}

func TestExpBuckets(t *testing.T) {
	bs := ExpBuckets(1e-3, 10, 4)
	want := []float64{1e-3, 1e-2, 1e-1, 1}
	for i := range want {
		if math.Abs(bs[i]-want[i]) > 1e-12 {
			t.Fatalf("bucket %d = %v, want %v", i, bs[i], want[i])
		}
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	r.NewGaugeFunc("sampled", "Sampled at scrape.", func() float64 { return 42.5 })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "sampled 42.5\n") {
		t.Errorf("gauge func missing:\n%s", b.String())
	}
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("h", "", ExpBuckets(1, 2, 8))
	c := r.NewCounter("c", "")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(i % 300))
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 || c.Value() != 8000 {
		t.Fatalf("count=%d counter=%d, want 8000", h.Count(), c.Value())
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if err := Lint([]byte(b.String())); err != nil {
		t.Fatal(err)
	}
}

func TestLintRejectsBrokenHistogram(t *testing.T) {
	bad := `# TYPE h histogram
h_bucket{le="1"} 5
h_bucket{le="2"} 3
h_bucket{le="+Inf"} 5
h_sum 1
h_count 5
`
	if err := Lint([]byte(bad)); err == nil {
		t.Error("Lint accepted non-monotone buckets")
	}
	noInf := `# TYPE h histogram
h_bucket{le="1"} 5
h_sum 1
h_count 5
`
	if err := Lint([]byte(noInf)); err == nil {
		t.Error("Lint accepted histogram without +Inf bucket")
	}
	mismatch := `# TYPE h histogram
h_bucket{le="+Inf"} 4
h_count 5
`
	if err := Lint([]byte(mismatch)); err == nil {
		t.Error("Lint accepted +Inf != _count")
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"no_type_declared 1\n",
		"# TYPE x counter\nx{unterminated=\"v 1\n",
		"# TYPE x counter\nx notanumber\n",
		"# TYPE x wat\nx 1\n",
	} {
		if _, err := Parse([]byte(bad)); err == nil {
			t.Errorf("Parse accepted %q", bad)
		}
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.NewHistogramVec("solve_seconds", "", []string{"engine"}, ExpBuckets(1e-5, 4, 12)).With("parallel")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := 1e-4
		for pb.Next() {
			h.Observe(v)
			v *= 1.01
			if v > 1 {
				v = 1e-4
			}
		}
	})
}

func BenchmarkWritePrometheus(b *testing.B) {
	r := NewRegistry()
	engines := []string{"sequential", "parallel", "flat", "delta", "rho"}
	hv := r.NewHistogramVec("solve_seconds", "Solve latency.", []string{"engine"}, ExpBuckets(1e-5, 4, 12))
	cv := r.NewCounterVec("requests_total", "Requests.", "endpoint")
	for i, e := range engines {
		hv.With(e).Observe(float64(i) / 100)
		cv.With("/v1/" + e).Add(int64(i))
	}
	var sb strings.Builder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sb.Reset()
		if err := r.WritePrometheus(&sb); err != nil {
			b.Fatal(err)
		}
	}
}
