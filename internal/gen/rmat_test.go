package gen

import (
	"testing"

	"radiusstep/internal/graph"
)

func TestRMATProperties(t *testing.T) {
	g := RMATDefault(12, 20000, 7)
	if g.NumVertices() != 1<<12 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	if err := graph.Validate(g); err != nil {
		t.Fatal(err)
	}
	// Duplicates get merged: edge count is at most requested.
	if g.NumEdges() > 20000 {
		t.Fatalf("m = %d > requested", g.NumEdges())
	}
	if g.NumEdges() < 10000 {
		t.Fatalf("m = %d implausibly low", g.NumEdges())
	}
	// Skew: max degree far above average.
	avg := float64(g.NumArcs()) / float64(g.NumVertices())
	if float64(g.MaxDegree()) < 8*avg {
		t.Fatalf("no skew: max %d vs avg %.1f", g.MaxDegree(), avg)
	}
}

func TestRMATDeterminism(t *testing.T) {
	a := RMATDefault(10, 5000, 3)
	b := RMATDefault(10, 5000, 3)
	if a.NumEdges() != b.NumEdges() || !equalAdj(a, b) {
		t.Fatal("same seed produced different RMAT graphs")
	}
}

func TestRMATPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"scale":    func() { RMAT(0, 10, 0.5, 0.2, 0.2, 1) },
		"big":      func() { RMAT(31, 10, 0.5, 0.2, 0.2, 1) },
		"probs":    func() { RMAT(5, 10, 0.8, 0.2, 0.2, 1) },
		"negative": func() { RMAT(5, 10, -0.1, 0.5, 0.5, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSmallWorldLattice(t *testing.T) {
	// beta=0 is the pure ring lattice: every vertex has degree k.
	g := SmallWorld(100, 4, 0, 1)
	if g.NumEdges() != 200 {
		t.Fatalf("m = %d, want 200", g.NumEdges())
	}
	for v := 0; v < 100; v++ {
		if g.Degree(graph.V(v)) != 4 {
			t.Fatalf("degree(%d) = %d", v, g.Degree(graph.V(v)))
		}
	}
	if !graph.IsConnected(g) {
		t.Fatal("lattice must be connected")
	}
}

func TestSmallWorldRewiringShrinksDiameter(t *testing.T) {
	// Rewiring must shrink the hop diameter dramatically — the
	// small-world effect itself.
	lattice := SmallWorld(2000, 4, 0, 2)
	rewired := SmallWorld(2000, 4, 0.1, 2)
	eccL := eccFrom(lattice, 0)
	eccR := eccFrom(rewired, 0)
	if eccR*3 > eccL {
		t.Fatalf("no small-world effect: lattice ecc %d, rewired %d", eccL, eccR)
	}
}

func eccFrom(g *graph.CSR, src graph.V) int {
	// Simple BFS eccentricity (duplicated from baseline to avoid an
	// import cycle in tests).
	n := g.NumVertices()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	frontier := []graph.V{src}
	ecc := 0
	for len(frontier) > 0 {
		var next []graph.V
		for _, u := range frontier {
			adj, _ := g.Neighbors(u)
			for _, v := range adj {
				if dist[v] == -1 {
					dist[v] = dist[u] + 1
					if dist[v] > ecc {
						ecc = dist[v]
					}
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return ecc
}

func TestSmallWorldValidation(t *testing.T) {
	g := SmallWorld(500, 6, 0.2, 3)
	if err := graph.Validate(g); err != nil {
		t.Fatal(err)
	}
	a := SmallWorld(500, 6, 0.2, 3)
	if !equalAdj(g, a) {
		t.Fatal("not deterministic")
	}
}

func TestSmallWorldPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"small": func() { SmallWorld(3, 2, 0, 1) },
		"odd":   func() { SmallWorld(10, 3, 0, 1) },
		"beta":  func() { SmallWorld(10, 2, 1.5, 1) },
		"kbig":  func() { SmallWorld(10, 10, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
