package gen

import "radiusstep/internal/graph"

// ScaleFree generates a Barabási–Albert preferential-attachment graph with
// n vertices where each new vertex attaches to attach distinct existing
// vertices chosen with probability proportional to degree. Unit weights.
//
// This stands in for the paper's SNAP web graphs (Notre Dame, Stanford):
// the paper itself attributes their behavior to scale-free hubs, citing
// Barabási–Albert, so the generator reproduces exactly the degree
// skew/hub structure its analysis leans on. attach ≈ 7 matches the
// Stanford graph's edge density (m/n ≈ 14 arcs).
func ScaleFree(n, attach int, seed uint64) *graph.CSR {
	if n < 2 {
		panic("gen: ScaleFree needs at least 2 vertices")
	}
	if attach < 1 {
		panic("gen: attach must be at least 1")
	}
	if attach >= n {
		attach = n - 1
	}
	rnd := rng(seed)
	// endpoints holds every arc endpoint seen so far; sampling uniformly
	// from it is sampling vertices proportional to degree.
	endpoints := make([]graph.V, 0, 2*n*attach)
	b := graph.NewBuilder(n)
	// Seed clique over the first attach+1 vertices so early picks have
	// well-defined degrees.
	for i := 0; i <= attach; i++ {
		for j := i + 1; j <= attach; j++ {
			b.Add(graph.V(i), graph.V(j), 1)
			endpoints = append(endpoints, graph.V(i), graph.V(j))
		}
	}
	chosen := make(map[graph.V]bool, attach)
	order := make([]graph.V, 0, attach)
	for v := attach + 1; v < n; v++ {
		clear(chosen)
		order = order[:0]
		for len(order) < attach {
			t := endpoints[rnd.IntN(len(endpoints))]
			if t == graph.V(v) || chosen[t] {
				continue
			}
			chosen[t] = true
			order = append(order, t) // keep draw order: determinism
		}
		for _, t := range order {
			b.Add(graph.V(v), t, 1)
			endpoints = append(endpoints, graph.V(v), t)
		}
	}
	return b.Build()
}
