// Package gen provides deterministic graph generators: the synthetic grids
// the paper uses directly, offline substitutes for its SNAP datasets
// (random-geometric "road networks" and Barabási–Albert "web graphs"),
// classic random graphs, and the pathological construction of Figure 2.
//
// Every generator takes an explicit seed and is fully deterministic, so
// experiments are reproducible bit-for-bit.
package gen

import (
	"math/rand/v2"

	"radiusstep/internal/graph"
)

// rng returns a deterministic PCG generator for the given seed.
func rng(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// WithUniformIntWeights returns a copy of g whose edge weights are drawn
// independently and uniformly from {lo, ..., hi}. This matches the paper's
// experimental setup, which assigns every edge "a random integer between 1
// and 10,000" when a graph has no weights of its own.
func WithUniformIntWeights(g *graph.CSR, lo, hi int, seed uint64) *graph.CSR {
	if lo < 0 || hi < lo {
		panic("gen: invalid weight range")
	}
	r := rng(seed)
	span := uint64(hi - lo + 1)
	return graph.Reweight(g, func(_, _ graph.V, _ float64) float64 {
		return float64(lo) + float64(r.Uint64N(span))
	})
}

// Chain returns a path graph on n vertices with unit weights.
func Chain(n int) *graph.CSR {
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.Add(graph.V(i), graph.V(i+1), 1)
	}
	return b.Build()
}

// Cycle returns a cycle on n vertices with unit weights.
func Cycle(n int) *graph.CSR {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.Add(graph.V(i), graph.V((i+1)%n), 1)
	}
	return b.Build()
}

// Star returns a star with center 0 and n-1 leaves, unit weights.
func Star(n int) *graph.CSR {
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.Add(0, graph.V(i), 1)
	}
	return b.Build()
}

// Complete returns the complete graph K_n with unit weights.
func Complete(n int) *graph.CSR {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.Add(graph.V(i), graph.V(j), 1)
		}
	}
	return b.Build()
}
