package gen

import "radiusstep/internal/graph"

// RMAT generates a recursive-matrix (R-MAT) graph, the other standard
// synthetic model for skewed real-world graphs (Chakrabarti et al.):
// each of m edges is placed by recursively descending into one of the
// four quadrants of the adjacency matrix with probabilities a, b, c, d.
// scale is log2 of the vertex count. Self-loops and duplicates are
// dropped by the builder, so the result has at most m edges. The classic
// parameters a=0.57, b=0.19, c=0.19, d=0.05 give web-like skew.
func RMAT(scale, m int, a, b, c float64, seed uint64) *graph.CSR {
	if scale < 1 || scale > 30 {
		panic("gen: RMAT scale out of range [1,30]")
	}
	d := 1 - a - b - c
	if a < 0 || b < 0 || c < 0 || d < 0 {
		panic("gen: RMAT probabilities must be nonnegative and sum to <= 1")
	}
	n := 1 << scale
	rnd := rng(seed)
	edges := make([]graph.Edge, 0, m)
	for len(edges) < m {
		u, v := 0, 0
		for bit := 0; bit < scale; bit++ {
			r := rnd.Float64()
			switch {
			case r < a:
				// top-left: no bits set
			case r < a+b:
				v |= 1 << bit
			case r < a+b+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		if u == v {
			continue
		}
		edges = append(edges, graph.Edge{U: graph.V(u), V: graph.V(v), W: 1})
	}
	_ = n
	return graph.FromEdges(1<<scale, edges)
}

// RMATDefault is RMAT with the canonical (0.57, 0.19, 0.19) parameters.
func RMATDefault(scale, m int, seed uint64) *graph.CSR {
	return RMAT(scale, m, 0.57, 0.19, 0.19, seed)
}

// SmallWorld generates a Watts–Strogatz small-world graph: a ring where
// each vertex connects to its k nearest ring neighbors (k even), with
// each edge rewired to a uniform random endpoint with probability beta.
// It interpolates between a high-diameter lattice (beta=0) and a random
// graph (beta=1), exercising the regime between the paper's grids and
// web graphs.
func SmallWorld(n, k int, beta float64, seed uint64) *graph.CSR {
	if n < 4 || k < 2 || k%2 != 0 || k >= n {
		panic("gen: SmallWorld needs n >= 4 and even k in [2, n)")
	}
	if beta < 0 || beta > 1 {
		panic("gen: SmallWorld beta must be in [0,1]")
	}
	rnd := rng(seed)
	seen := make(map[uint64]bool, n*k/2)
	key := func(u, v graph.V) uint64 {
		if u > v {
			u, v = v, u
		}
		return uint64(u)<<32 | uint64(uint32(v))
	}
	edges := make([]graph.Edge, 0, n*k/2)
	add := func(u, v graph.V) bool {
		if u == v || seen[key(u, v)] {
			return false
		}
		seen[key(u, v)] = true
		edges = append(edges, graph.Edge{U: u, V: v, W: 1})
		return true
	}
	for i := 0; i < n; i++ {
		for j := 1; j <= k/2; j++ {
			u := graph.V(i)
			v := graph.V((i + j) % n)
			if rnd.Float64() < beta {
				// Rewire: pick a random endpoint, retrying collisions a
				// bounded number of times before keeping the lattice edge.
				rewired := false
				for try := 0; try < 8; try++ {
					w := graph.V(rnd.IntN(n))
					if add(u, w) {
						rewired = true
						break
					}
				}
				if rewired {
					continue
				}
			}
			add(u, v)
		}
	}
	return graph.FromEdges(n, edges)
}
