package gen

import (
	"testing"

	"radiusstep/internal/graph"
)

func TestGrid2DStructure(t *testing.T) {
	g := Grid2D(4, 3)
	if g.NumVertices() != 12 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	// 2D grid edges: ny*(nx-1) + nx*(ny-1) = 3*3 + 4*2 = 17.
	if g.NumEdges() != 17 {
		t.Fatalf("m = %d, want 17", g.NumEdges())
	}
	if err := graph.Validate(g); err != nil {
		t.Fatal(err)
	}
	if !graph.IsConnected(g) {
		t.Fatal("grid must be connected")
	}
	if !g.IsUnit() {
		t.Fatal("grid must be unit-weighted")
	}
	// Corner degree 2, interior degree 4.
	if g.Degree(0) != 2 {
		t.Fatalf("corner degree = %d", g.Degree(0))
	}
	if g.Degree(5) != 4 { // (1,1)
		t.Fatalf("interior degree = %d", g.Degree(5))
	}
}

func TestGrid3DStructure(t *testing.T) {
	g := Grid3D(3, 3, 3)
	if g.NumVertices() != 27 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	// 3*(3*3*2) = 54 edges for a 3x3x3 grid: 2 per axis slice.
	if g.NumEdges() != 54 {
		t.Fatalf("m = %d, want 54", g.NumEdges())
	}
	if !graph.IsConnected(g) {
		t.Fatal("3D grid must be connected")
	}
	// Center vertex has degree 6.
	if g.Degree(13) != 6 {
		t.Fatalf("center degree = %d", g.Degree(13))
	}
}

func TestTorus2D(t *testing.T) {
	g := Torus2D(4, 4)
	if g.NumEdges() != 32 {
		t.Fatalf("m = %d, want 32", g.NumEdges())
	}
	for u := 0; u < 16; u++ {
		if g.Degree(graph.V(u)) != 4 {
			t.Fatalf("degree(%d) = %d", u, g.Degree(graph.V(u)))
		}
	}
}

func TestRoadNetProperties(t *testing.T) {
	g := RoadNet(4000, 6, 1)
	if err := graph.Validate(g); err != nil {
		t.Fatal(err)
	}
	avg := float64(g.NumArcs()) / float64(g.NumVertices())
	if avg < 3 || avg > 9 {
		t.Fatalf("average degree %.2f far from target 6", avg)
	}
	lc, _ := graph.LargestComponent(g)
	if lc.NumVertices() < 3200 {
		t.Fatalf("largest component only %d of 4000", lc.NumVertices())
	}
	if g.MinWeight() < 1 {
		t.Fatalf("min weight %v < 1 after normalization", g.MinWeight())
	}
}

func TestRoadNetDeterminism(t *testing.T) {
	a := RoadNet(1000, 6, 7)
	b := RoadNet(1000, 6, 7)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different graphs")
	}
	c := RoadNet(1000, 6, 8)
	if a.NumEdges() == c.NumEdges() && a.NumArcs() == c.NumArcs() && equalAdj(a, c) {
		t.Fatal("different seeds produced identical graphs")
	}
}

func equalAdj(a, b *graph.CSR) bool {
	if len(a.Adj) != len(b.Adj) {
		return false
	}
	for i := range a.Adj {
		if a.Adj[i] != b.Adj[i] {
			return false
		}
	}
	return true
}

func TestScaleFreeProperties(t *testing.T) {
	g := ScaleFree(5000, 7, 3)
	if err := graph.Validate(g); err != nil {
		t.Fatal(err)
	}
	if !graph.IsConnected(g) {
		t.Fatal("BA graph must be connected")
	}
	// Average degree about 2*attach.
	avg := float64(g.NumArcs()) / float64(g.NumVertices())
	if avg < 10 || avg > 18 {
		t.Fatalf("average degree %.2f, want ~14", avg)
	}
	// Scale-free graphs must have hubs: max degree far above average.
	if g.MaxDegree() < 5*int(avg) {
		t.Fatalf("max degree %d shows no hub structure (avg %.1f)", g.MaxDegree(), avg)
	}
}

func TestScaleFreeDeterminism(t *testing.T) {
	a := ScaleFree(2000, 5, 11)
	b := ScaleFree(2000, 5, 11)
	if !equalAdj(a, b) {
		t.Fatal("same seed produced different BA graphs")
	}
}

func TestScaleFreeSmallN(t *testing.T) {
	g := ScaleFree(3, 5, 1) // attach clamped to n-1
	if g.NumVertices() != 3 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	if !graph.IsConnected(g) {
		t.Fatal("tiny BA graph must be connected")
	}
}

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(100, 300, 5)
	if g.NumEdges() != 300 {
		t.Fatalf("m = %d, want 300", g.NumEdges())
	}
	if err := graph.Validate(g); err != nil {
		t.Fatal(err)
	}
	// Requesting more edges than possible clamps.
	g2 := ErdosRenyi(5, 100, 5)
	if g2.NumEdges() != 10 {
		t.Fatalf("clamped m = %d, want 10", g2.NumEdges())
	}
}

func TestRandomConnected(t *testing.T) {
	g := RandomConnected(500, 1200, 9)
	if !graph.IsConnected(g) {
		t.Fatal("RandomConnected produced a disconnected graph")
	}
	if g.NumEdges() < 499 {
		t.Fatalf("m = %d below spanning tree size", g.NumEdges())
	}
}

func TestCombStructure(t *testing.T) {
	d := 8
	g := Comb(d)
	if g.NumVertices() != d+2*d*d {
		t.Fatalf("n = %d, want %d", g.NumVertices(), d+2*d*d)
	}
	wantM := d*(d-1)/2 + 2*d*d
	if g.NumEdges() != wantM {
		t.Fatalf("m = %d, want %d", g.NumEdges(), wantM)
	}
	if !graph.IsConnected(g) {
		t.Fatal("comb must be connected")
	}
	// Sparse: m/n bounded.
	ratio := float64(g.NumEdges()) / float64(g.NumVertices())
	if ratio > 1.3 {
		t.Fatalf("comb not sparse: m/n = %.2f", ratio)
	}
	// Clique vertices have degree d-1 (clique) + 1 (path).
	if g.Degree(0) != d {
		t.Fatalf("clique degree = %d, want %d", g.Degree(0), d)
	}
}

func TestWithUniformIntWeights(t *testing.T) {
	g := Grid2D(20, 20)
	w := WithUniformIntWeights(g, 1, 10000, 17)
	if w.NumEdges() != g.NumEdges() {
		t.Fatal("reweighting changed topology")
	}
	if w.MinWeight() < 1 || w.MaxWeight() > 10000 {
		t.Fatalf("weights out of range: [%v,%v]", w.MinWeight(), w.MaxWeight())
	}
	// Integer-valued.
	for _, wt := range w.W {
		if wt != float64(int64(wt)) {
			t.Fatalf("non-integer weight %v", wt)
		}
	}
	// Deterministic.
	w2 := WithUniformIntWeights(g, 1, 10000, 17)
	for i := range w.W {
		if w.W[i] != w2.W[i] {
			t.Fatal("same seed produced different weights")
		}
	}
}

func TestSimpleShapes(t *testing.T) {
	if g := Chain(10); g.NumEdges() != 9 || !graph.IsConnected(g) {
		t.Fatal("chain wrong")
	}
	if g := Cycle(10); g.NumEdges() != 10 {
		t.Fatal("cycle wrong")
	}
	if g := Star(10); g.NumEdges() != 9 || g.Degree(0) != 9 {
		t.Fatal("star wrong")
	}
	if g := Complete(6); g.NumEdges() != 15 {
		t.Fatal("complete wrong")
	}
}

func TestGeneratorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"grid0":     func() { Grid2D(0, 5) },
		"grid3d":    func() { Grid3D(1, 0, 1) },
		"roadnet":   func() { RoadNet(1, 6, 1) },
		"roaddeg":   func() { RoadNet(100, 0, 1) },
		"scalefree": func() { ScaleFree(1, 2, 1) },
		"attach":    func() { ScaleFree(10, 0, 1) },
		"comb":      func() { Comb(1) },
		"weights":   func() { WithUniformIntWeights(Chain(3), 5, 2, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
