package gen

import "radiusstep/internal/graph"

// ErdosRenyi returns a G(n, m)-style random graph: m distinct uniformly
// random non-loop edges with unit weights. Used mainly by tests and
// property checks, where unstructured graphs exercise corner cases the
// structured generators do not.
func ErdosRenyi(n, m int, seed uint64) *graph.CSR {
	if n < 2 {
		panic("gen: ErdosRenyi needs at least 2 vertices")
	}
	maxM := n * (n - 1) / 2
	if m > maxM {
		m = maxM
	}
	rnd := rng(seed)
	seen := make(map[uint64]bool, m)
	edges := make([]graph.Edge, 0, m)
	for len(edges) < m {
		u := graph.V(rnd.IntN(n))
		v := graph.V(rnd.IntN(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		k := uint64(u)<<32 | uint64(uint32(v))
		if seen[k] {
			continue
		}
		seen[k] = true
		edges = append(edges, graph.Edge{U: u, V: v, W: 1})
	}
	return graph.FromEdges(n, edges)
}

// RandomConnected returns a connected random graph: a random spanning
// tree (random attachment) plus extra random edges up to m total.
func RandomConnected(n, m int, seed uint64) *graph.CSR {
	if n < 1 {
		panic("gen: RandomConnected needs at least 1 vertex")
	}
	rnd := rng(seed)
	edges := make([]graph.Edge, 0, m)
	seen := make(map[uint64]bool, m)
	addKey := func(u, v graph.V) bool {
		if u > v {
			u, v = v, u
		}
		k := uint64(u)<<32 | uint64(uint32(v))
		if seen[k] {
			return false
		}
		seen[k] = true
		return true
	}
	for v := 1; v < n; v++ {
		u := graph.V(rnd.IntN(v))
		addKey(u, graph.V(v))
		edges = append(edges, graph.Edge{U: u, V: graph.V(v), W: 1})
	}
	for len(edges) < m {
		u := graph.V(rnd.IntN(n))
		v := graph.V(rnd.IntN(n))
		if u == v || !addKey(u, v) {
			continue
		}
		edges = append(edges, graph.Edge{U: u, V: v, W: 1})
	}
	return graph.FromEdges(n, edges)
}
