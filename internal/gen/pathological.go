package gen

import "radiusstep/internal/graph"

// Comb builds a sparse unweighted graph with the property of the paper's
// Figure 2: breadth-first search from any vertex must look at Θ(d²) edges
// before it has reached 3d vertices, even though the graph has constant
// average degree.
//
// Construction: a clique K_d whose every vertex carries a pendant path of
// 2d fresh vertices. A path vertex can reach at most 2d+1 vertices without
// crossing the clique, and crossing the clique costs Θ(d²) edge looks; a
// clique vertex spends Θ(d²) looks scanning its d-1 neighbors' cliques
// before the pendant paths deliver vertices one edge per vertex. Total:
// n = d(2d+1) vertices, m = d(d-1)/2 + 2d² edges, so m/n < 1.25.
func Comb(d int) *graph.CSR {
	if d < 2 {
		panic("gen: Comb needs d >= 2")
	}
	n := d + 2*d*d
	b := graph.NewBuilder(n)
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			b.Add(graph.V(i), graph.V(j), 1)
		}
	}
	next := d
	for i := 0; i < d; i++ {
		prev := graph.V(i)
		for step := 0; step < 2*d; step++ {
			b.Add(prev, graph.V(next), 1)
			prev = graph.V(next)
			next++
		}
	}
	return b.Build()
}
