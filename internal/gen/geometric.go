package gen

import (
	"math"

	"radiusstep/internal/graph"
)

// RoadNet generates a random geometric graph that stands in for the
// paper's SNAP road networks (which cannot be fetched offline): n points
// uniform on the unit square, an edge between every pair within Euclidean
// distance r, where r is set so the expected average degree is avgDeg.
// Edge weights are the Euclidean distances scaled so the smallest edge is
// about 1.
//
// Like real road networks the result is near-planar with small constant
// degree and Θ(√n) hop diameter, which are the properties the paper's
// road-map observations rely on. The graph may have more than one
// component; callers wanting a connected instance should take
// graph.LargestComponent (at avgDeg ≥ 6 the largest component contains
// almost all vertices).
func RoadNet(n int, avgDeg float64, seed uint64) *graph.CSR {
	if n < 2 {
		panic("gen: RoadNet needs at least 2 vertices")
	}
	if avgDeg <= 0 {
		panic("gen: average degree must be positive")
	}
	r := math.Sqrt(avgDeg / (math.Pi * float64(n)))
	rnd := rng(seed)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = rnd.Float64()
		ys[i] = rnd.Float64()
	}
	// Cell-bucketed neighbor search: cells of side r, check 3×3 blocks.
	cells := int(math.Ceil(1 / r))
	if cells < 1 {
		cells = 1
	}
	bucket := make(map[int64][]graph.V, n)
	cellOf := func(i int) (int, int) {
		cx := int(xs[i] / r)
		cy := int(ys[i] / r)
		if cx >= cells {
			cx = cells - 1
		}
		if cy >= cells {
			cy = cells - 1
		}
		return cx, cy
	}
	key := func(cx, cy int) int64 { return int64(cx)*int64(cells) + int64(cy) }
	for i := 0; i < n; i++ {
		cx, cy := cellOf(i)
		k := key(cx, cy)
		bucket[k] = append(bucket[k], graph.V(i))
	}
	var edges []graph.Edge
	minD := math.Inf(1)
	for i := 0; i < n; i++ {
		cx, cy := cellOf(i)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				nx, ny := cx+dx, cy+dy
				if nx < 0 || ny < 0 || nx >= cells || ny >= cells {
					continue
				}
				for _, j := range bucket[key(nx, ny)] {
					if int(j) <= i {
						continue // each pair once
					}
					ddx := xs[i] - xs[j]
					ddy := ys[i] - ys[j]
					d := math.Sqrt(ddx*ddx + ddy*ddy)
					if d <= r {
						if d < minD && d > 0 {
							minD = d
						}
						edges = append(edges, graph.Edge{U: graph.V(i), V: j, W: d})
					}
				}
			}
		}
	}
	// Normalize so the lightest edge is ~1 (the paper's convention).
	scale := 1.0
	if !math.IsInf(minD, 1) && minD > 0 {
		scale = 1 / minD
	}
	for i := range edges {
		w := edges[i].W * scale
		if w < 1 {
			w = 1
		}
		edges[i].W = w
	}
	return graph.FromEdges(n, edges)
}
