package gen

import "radiusstep/internal/graph"

// Grid2D returns the nx × ny grid graph with unit weights: vertex (x, y)
// is id y*nx + x, connected to its 4-neighborhood. This reproduces the
// paper's synthetic "2D-grid" workload (they use 1000 × 1000).
func Grid2D(nx, ny int) *graph.CSR {
	if nx < 1 || ny < 1 {
		panic("gen: grid dimensions must be positive")
	}
	b := graph.NewBuilder(nx * ny)
	id := func(x, y int) graph.V { return graph.V(y*nx + x) }
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			if x+1 < nx {
				b.Add(id(x, y), id(x+1, y), 1)
			}
			if y+1 < ny {
				b.Add(id(x, y), id(x, y+1), 1)
			}
		}
	}
	return b.Build()
}

// Grid3D returns the nx × ny × nz grid graph with unit weights and
// 6-neighborhood connectivity, the paper's "3D-grid" workload.
func Grid3D(nx, ny, nz int) *graph.CSR {
	if nx < 1 || ny < 1 || nz < 1 {
		panic("gen: grid dimensions must be positive")
	}
	b := graph.NewBuilder(nx * ny * nz)
	id := func(x, y, z int) graph.V { return graph.V((z*ny+y)*nx + x) }
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				if x+1 < nx {
					b.Add(id(x, y, z), id(x+1, y, z), 1)
				}
				if y+1 < ny {
					b.Add(id(x, y, z), id(x, y+1, z), 1)
				}
				if z+1 < nz {
					b.Add(id(x, y, z), id(x, y, z+1), 1)
				}
			}
		}
	}
	return b.Build()
}

// Torus2D is Grid2D with wraparound edges, eliminating boundary effects.
func Torus2D(nx, ny int) *graph.CSR {
	if nx < 3 || ny < 3 {
		panic("gen: torus dimensions must be at least 3")
	}
	b := graph.NewBuilder(nx * ny)
	id := func(x, y int) graph.V { return graph.V(y*nx + x) }
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			b.Add(id(x, y), id((x+1)%nx, y), 1)
			b.Add(id(x, y), id(x, (y+1)%ny), 1)
		}
	}
	return b.Build()
}
