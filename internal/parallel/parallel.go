// Package parallel provides the PRAM-style fork-join primitives that the
// rest of the library is built on: dynamically scheduled parallel loops,
// reductions, prefix sums, packing, parallel sorting, and the atomic
// priority-write (WriteMin) used to relax edges concurrently.
//
// All primitives degrade gracefully to sequential execution for small
// inputs or when GOMAXPROCS is 1, so callers never need a separate
// sequential code path. Parallel execution is served by a persistent
// pool of parked workers (see pool.go) rather than per-call goroutines,
// so a solve's hundreds of fork-joins pay a channel wake-up instead of
// goroutine-spawn and scheduler churn.
package parallel

import (
	"runtime"
	"sync/atomic"
)

// DefaultGrain is the default number of loop iterations a worker claims at
// a time. It is chosen so that per-chunk scheduling overhead (one atomic
// add) is negligible next to useful work for typical graph kernels.
const DefaultGrain = 1024

// Procs reports the degree of parallelism primitives will use.
func Procs() int { return runtime.GOMAXPROCS(0) }

// For runs fn(i) for every i in [0, n), in parallel when profitable.
// Iterations must be independent; fn must not assume any ordering.
func For(n int, fn func(i int)) {
	ForGrain(n, DefaultGrain, fn)
}

// ForGrain is For with an explicit scheduling grain. Use a small grain for
// expensive, irregular iterations and a large one for cheap uniform loops.
func ForGrain(n, grain int, fn func(i int)) {
	Blocks(n, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// Blocks splits [0, n) into contiguous blocks of about grain iterations and
// calls fn(lo, hi) on each, in parallel. Blocks are handed to workers
// dynamically (an atomic counter), which load-balances irregular work such
// as per-vertex loops over skewed degree distributions.
func Blocks(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	p := Procs()
	if p == 1 || n <= grain {
		fn(0, n)
		return
	}
	numBlocks := (n + grain - 1) / grain
	workers := p
	if workers > numBlocks {
		workers = numBlocks
	}
	var next atomic.Int64
	claim := rangeClaimer(n, grain, &next)
	fork(workers, func(int) {
		for {
			lo, hi, ok := claim()
			if !ok {
				return
			}
			fn(lo, hi)
		}
	})
}

// Workers runs fn once per worker with a distinct worker id in [0, count).
// Workers claim work themselves via the returned claim function, which
// hands out indices in [0, n) and reports false when the range is
// exhausted. This primitive exists for kernels that need worker-local
// scratch state (for example the per-source restricted Dijkstra in
// preprocessing), which plain For cannot express. Every worker id is
// guaranteed to run exactly once, even when the pool serves other forks.
//
// The claim function costs one atomic per index; for cheap per-item work
// (per-vertex frontier loops) use WorkersGrain, whose batched claim
// amortizes the atomic over a range of indices.
func Workers(n int, fn func(worker int, claim func() (int, bool))) {
	if n <= 0 {
		return
	}
	workers := Procs()
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	claim := func() (int, bool) {
		i := int(next.Add(1)) - 1
		return i, i < n
	}
	if workers == 1 {
		fn(0, claim)
		return
	}
	fork(workers, func(id int) { fn(id, claim) })
}

// WorkersGrain is Workers with a batched claim: claim hands out
// half-open index ranges [lo, hi) of about grain indices, so the
// scheduling cost is one atomic add per grain items instead of one per
// item. Use it for loops whose per-item work is comparable to an atomic
// operation (relaxing one vertex's edges, scanning one frontier entry).
func WorkersGrain(n, grain int, fn func(worker int, claim func() (lo, hi int, ok bool))) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	numChunks := blocksOf(n, grain)
	workers := Procs()
	if workers > numChunks {
		workers = numChunks
	}
	var next atomic.Int64
	claim := rangeClaimer(n, grain, &next)
	if workers == 1 {
		fn(0, claim)
		return
	}
	fork(workers, func(id int) { fn(id, claim) })
}

// Do runs the given functions concurrently (pool workers plus the
// caller) and waits for all of them. It is the fork-join "parallel
// composition" primitive. The functions must be independent: when the
// pool is saturated or GOMAXPROCS is 1, some or all of them run
// sequentially on the caller.
func Do(fns ...func()) {
	switch len(fns) {
	case 0:
		return
	case 1:
		fns[0]()
		return
	}
	fork(len(fns), func(id int) { fns[id]() })
}
