// Package parallel provides the PRAM-style fork-join primitives that the
// rest of the library is built on: dynamically scheduled parallel loops,
// reductions, prefix sums, packing, parallel sorting, and the atomic
// priority-write (WriteMin) used to relax edges concurrently.
//
// All primitives degrade gracefully to sequential execution for small
// inputs or when GOMAXPROCS is 1, so callers never need a separate
// sequential code path.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultGrain is the default number of loop iterations a worker claims at
// a time. It is chosen so that per-chunk scheduling overhead (one atomic
// add) is negligible next to useful work for typical graph kernels.
const DefaultGrain = 1024

// Procs reports the degree of parallelism primitives will use.
func Procs() int { return runtime.GOMAXPROCS(0) }

// For runs fn(i) for every i in [0, n), in parallel when profitable.
// Iterations must be independent; fn must not assume any ordering.
func For(n int, fn func(i int)) {
	ForGrain(n, DefaultGrain, fn)
}

// ForGrain is For with an explicit scheduling grain. Use a small grain for
// expensive, irregular iterations and a large one for cheap uniform loops.
func ForGrain(n, grain int, fn func(i int)) {
	Blocks(n, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// Blocks splits [0, n) into contiguous blocks of about grain iterations and
// calls fn(lo, hi) on each, in parallel. Blocks are handed to workers
// dynamically (an atomic counter), which load-balances irregular work such
// as per-vertex loops over skewed degree distributions.
func Blocks(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	p := Procs()
	if p == 1 || n <= grain {
		fn(0, n)
		return
	}
	numBlocks := (n + grain - 1) / grain
	workers := p
	if workers > numBlocks {
		workers = numBlocks
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				b := int(next.Add(1)) - 1
				if b >= numBlocks {
					return
				}
				lo := b * grain
				hi := lo + grain
				if hi > n {
					hi = n
				}
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// Workers runs fn once per worker with a distinct worker id in [0, count).
// Workers claim work themselves via the returned claim function, which
// hands out indices in [0, n) and reports false when the range is
// exhausted. This primitive exists for kernels that need worker-local
// scratch state (for example the per-source restricted Dijkstra in
// preprocessing), which plain For cannot express.
func Workers(n int, fn func(worker int, claim func() (int, bool))) {
	if n <= 0 {
		return
	}
	workers := Procs()
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	claim := func() (int, bool) {
		i := int(next.Add(1)) - 1
		return i, i < n
	}
	if workers == 1 {
		fn(0, claim)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(id int) {
			defer wg.Done()
			fn(id, claim)
		}(w)
	}
	wg.Wait()
}

// Do runs the given functions concurrently and waits for all of them.
// It is the fork-join "parallel composition" primitive.
func Do(fns ...func()) {
	switch len(fns) {
	case 0:
		return
	case 1:
		fns[0]()
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(fns) - 1)
	for _, fn := range fns[1:] {
		go func(f func()) {
			defer wg.Done()
			f()
		}(fn)
	}
	fns[0]()
	wg.Wait()
}
