package parallel

import (
	"math/rand/v2"
	"testing"
)

func BenchmarkForSum1M(b *testing.B) {
	n := 1 << 20
	data := make([]int64, n)
	for i := range data {
		data[i] = int64(i)
	}
	b.SetBytes(int64(n * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Sum(n, func(i int) int64 { return data[i] })
	}
}

func BenchmarkExclusiveScan1M(b *testing.B) {
	n := 1 << 20
	src := make([]int64, n)
	dst := make([]int64, n)
	for i := range src {
		src[i] = int64(i % 7)
	}
	b.SetBytes(int64(n * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExclusiveScan(src, dst)
	}
}

func BenchmarkPackIndex1M(b *testing.B) {
	n := 1 << 20
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PackIndex(n, func(i int) bool { return i%3 == 0 })
	}
}

func BenchmarkSort1M(b *testing.B) {
	n := 1 << 20
	r := rand.New(rand.NewPCG(1, 2))
	orig := make([]int64, n)
	for i := range orig {
		orig[i] = int64(r.Uint64())
	}
	data := make([]int64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		copy(data, orig)
		b.StartTimer()
		Sort(data, func(a, b int64) bool { return a < b })
	}
}

func BenchmarkWriteMinContended(b *testing.B) {
	// All writers target one cell: the worst case for the CAS loop.
	var cell uint64 = InfBits
	vals := make([]uint64, 1024)
	for i := range vals {
		vals[i] = ToBits(float64(1024 - i))
	}
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			WriteMin(&cell, vals[i&1023])
			i++
		}
	})
}

func BenchmarkWriteMinSpread(b *testing.B) {
	// Writers spread over many cells: the common relaxation pattern.
	cells := make([]uint64, 1<<16)
	Fill(cells, InfBits)
	b.RunParallel(func(pb *testing.PB) {
		r := rand.New(rand.NewPCG(7, 8))
		for pb.Next() {
			i := r.IntN(len(cells))
			WriteMin(&cells[i], ToBits(r.Float64()*100))
		}
	})
}

func BenchmarkMinIndex1M(b *testing.B) {
	n := 1 << 20
	keys := make([]float64, n)
	r := rand.New(rand.NewPCG(5, 6))
	for i := range keys {
		keys[i] = r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MinIndex(n, 2, func(i int) float64 { return keys[i] })
	}
}

// BenchmarkForkJoinSubstep measures bare fork-join overhead at
// Bellman–Ford-substep scale: many small parallel regions back to back,
// the pattern a solve's inner loop produces. With the persistent pool
// this is a channel wake-up per worker instead of a goroutine spawn.
func BenchmarkForkJoinSubstep(b *testing.B) {
	work := make([]int64, 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Blocks(len(work), 256, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				work[j]++
			}
		})
	}
}

// BenchmarkWorkersGrainClaim measures the batched claim against the
// per-index claim on a cheap per-item loop.
func BenchmarkWorkersGrainClaim(b *testing.B) {
	n := 1 << 16
	sink := make([]int64, n)
	b.Run("grain=1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Workers(n, func(_ int, claim func() (int, bool)) {
				for {
					j, ok := claim()
					if !ok {
						return
					}
					sink[j]++
				}
			})
		}
	})
	b.Run("grain=64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			WorkersGrain(n, 64, func(_ int, claim func() (int, int, bool)) {
				for {
					lo, hi, ok := claim()
					if !ok {
						return
					}
					for j := lo; j < hi; j++ {
						sink[j]++
					}
				}
			})
		}
	})
}
