package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"unsafe"
)

// TestForkRunsEveryParticipantOnce: every id in [0, n) must run exactly
// once, whatever the pool's state — the contract callers that index
// per-worker scratch by id rely on.
func TestForkRunsEveryParticipantOnce(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 33} {
		hits := make([]int32, n)
		fork(n, func(id int) {
			if id < 0 || id >= n {
				t.Errorf("fork(%d): id %d out of range", n, id)
				return
			}
			atomic.AddInt32(&hits[id], 1)
		})
		for id, h := range hits {
			if h != 1 {
				t.Fatalf("fork(%d): id %d ran %d times", n, id, h)
			}
		}
	}
}

// TestForkNested: forks from inside pool workers (nested parallelism, as
// in parallel sort and the pset bulk operations) must complete without
// deadlock even when they saturate the pool.
func TestForkNested(t *testing.T) {
	var total atomic.Int64
	fork(4, func(outer int) {
		fork(4, func(inner int) {
			total.Add(1)
		})
	})
	if got := total.Load(); got != 16 {
		t.Fatalf("nested fork ran %d bodies, want 16", got)
	}
}

// TestForkConcurrent: many goroutines forking at once (the serving
// daemon's concurrent solves) all complete and the pool never exceeds
// its size bound.
func TestForkConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	var total atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				fork(4, func(int) { total.Add(1) })
			}
		}()
	}
	wg.Wait()
	if got := total.Load(); got != 8*50*4 {
		t.Fatalf("concurrent forks ran %d bodies, want %d", got, 8*50*4)
	}
	if limit := runtime.GOMAXPROCS(0) - 1; PoolSize() > limit && limit > 0 {
		t.Fatalf("pool grew to %d workers, limit %d", PoolSize(), limit)
	}
}

// TestWorkersGrainCoversAllIndices: the batched claim hands out every
// index exactly once across workers, for grains around the boundaries.
func TestWorkersGrainCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 1000, 4099} {
		for _, grain := range []int{0, 1, 64, 4096} {
			hits := make([]int32, n)
			WorkersGrain(n, grain, func(w int, claim func() (int, int, bool)) {
				for {
					lo, hi, ok := claim()
					if !ok {
						return
					}
					if lo < 0 || hi > n || lo >= hi {
						t.Errorf("n=%d grain=%d: bad range [%d,%d)", n, grain, lo, hi)
						return
					}
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&hits[i], 1)
					}
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d grain=%d: index %d claimed %d times", n, grain, i, h)
				}
			}
		}
	}
}

// TestWorkersGrainWorkerIDsDistinct: worker ids are distinct and dense,
// so per-worker scratch arrays never alias.
func TestWorkersGrainWorkerIDsDistinct(t *testing.T) {
	seen := make([]int32, Procs()+1)
	WorkersGrain(10_000, 16, func(w int, claim func() (int, int, bool)) {
		if w < 0 || w >= len(seen) {
			t.Errorf("worker id %d out of range", w)
			return
		}
		if atomic.AddInt32(&seen[w], 1) != 1 {
			t.Errorf("worker id %d reused", w)
		}
		for {
			if _, _, ok := claim(); !ok {
				return
			}
		}
	})
}

// setProcs pins GOMAXPROCS for a subtest and restores it on cleanup, so
// the multi-proc pool tests below exercise real dispatch limits instead
// of whatever the runner happens to have.
func setProcs(t *testing.T, p int) {
	t.Helper()
	prev := runtime.GOMAXPROCS(p)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

// TestForkNestedAtProcs drives the nested-fork path (a fork issued from
// inside a pool worker, as the parallel sort and the frontier commit
// do) at several GOMAXPROCS settings. Every participant of every level
// must run exactly once, and the fork must never deadlock even when the
// inner forks saturate the pool. CI runs this under -race.
func TestForkNestedAtProcs(t *testing.T) {
	for _, p := range []int{2, 4, 8} {
		t.Run(procsName(p), func(t *testing.T) {
			setProcs(t, p)
			const outer, inner = 6, 6
			var hits [outer][inner]int32
			fork(outer, func(o int) {
				fork(inner, func(i int) {
					atomic.AddInt32(&hits[o][i], 1)
				})
			})
			for o := range hits {
				for i := range hits[o] {
					if hits[o][i] != 1 {
						t.Fatalf("procs=%d: body (%d,%d) ran %d times", p, o, i, hits[o][i])
					}
				}
			}
			// Three levels deep: sort-inside-commit-inside-substep shape.
			var total atomic.Int64
			fork(3, func(int) {
				fork(3, func(int) {
					fork(3, func(int) { total.Add(1) })
				})
			})
			if got := total.Load(); got != 27 {
				t.Fatalf("procs=%d: depth-3 nest ran %d bodies, want 27", p, got)
			}
		})
	}
}

// TestConcurrentSolvesAtProcs models the serving daemon: several
// goroutines each running fork-join loops (with nesting) concurrently.
// All bodies must run exactly once per fork and the pool must respect
// its size bound. CI runs this under -race at GOMAXPROCS=4.
func TestConcurrentSolvesAtProcs(t *testing.T) {
	for _, p := range []int{2, 4, 8} {
		t.Run(procsName(p), func(t *testing.T) {
			setProcs(t, p)
			var wg sync.WaitGroup
			var total atomic.Int64
			const solvers, reps = 6, 40
			for g := 0; g < solvers; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for rep := 0; rep < reps; rep++ {
						// A mock substep: a grained claim loop plus a
						// nested fork, like relax + frontier commit.
						WorkersGrain(96, 16, func(_ int, claim func() (int, int, bool)) {
							for {
								lo, hi, ok := claim()
								if !ok {
									return
								}
								total.Add(int64(hi - lo))
							}
						})
						fork(2, func(int) {
							fork(2, func(int) { total.Add(1) })
						})
					}
				}()
			}
			wg.Wait()
			want := int64(solvers * reps * (96 + 4))
			if got := total.Load(); got != want {
				t.Fatalf("procs=%d: concurrent solves ran %d units, want %d", p, got, want)
			}
		})
	}
}

func procsName(p int) string { return "gomaxprocs-" + string(rune('0'+p)) }

// TestPoolCountersPadded asserts the false-sharing defense: every pool
// counter must sit alone on a 64-byte cache line, so one worker's claim
// traffic cannot invalidate the line under another's wake/park counters.
func TestPoolCountersPadded(t *testing.T) {
	if s := unsafe.Sizeof(paddedInt64{}); s%64 != 0 {
		t.Fatalf("paddedInt64 is %d bytes, want a multiple of 64", s)
	}
	if o := unsafe.Offsetof(poolStats.dispatched) - unsafe.Offsetof(poolStats.forks); o < 64 {
		t.Fatalf("adjacent pool counters %d bytes apart, want >= 64", o)
	}
}
