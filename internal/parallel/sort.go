package parallel

import "slices"

// sortSeqThreshold is the size below which sorting falls back to the
// sequential standard-library sort.
const sortSeqThreshold = 1 << 13

// mergeSeqThreshold is the size below which merging is sequential.
const mergeSeqThreshold = 1 << 14

// sortSeq is the sequential fallback: slices.SortFunc (generic pdqsort,
// comparator inlined at instantiation) rather than sort.Slice, whose
// reflect-based swapper dominated profiles of the ordered-set engine —
// the ordered-set engine once sorted a small batch every substep, so the
// constant factor here is hot-path cost.
func sortSeq[T any](data []T, less func(a, b T) bool) {
	slices.SortFunc(data, func(a, b T) int {
		switch {
		case less(a, b):
			return -1
		case less(b, a):
			return 1
		default:
			return 0
		}
	})
}

// Sort sorts data in place by less, using a parallel merge sort for large
// inputs. The sort is not stable.
func Sort[T any](data []T, less func(a, b T) bool) {
	n := len(data)
	if n <= sortSeqThreshold || Procs() == 1 {
		sortSeq(data, less)
		return
	}
	buf := make([]T, n)
	mergeSortInto(data, buf, less, true)
}

// SortScratch is Sort with caller-provided scratch storage
// (cap(scratch) >= len(data)), so repeat callers on a hot path — the
// frontier substrate sealing sorted runs every step — avoid Sort's
// internal buffer allocation entirely.
func SortScratch[T any](data, scratch []T, less func(a, b T) bool) {
	n := len(data)
	if n <= sortSeqThreshold || Procs() == 1 {
		sortSeq(data, less)
		return
	}
	mergeSortInto(data, scratch[:n], less, true)
}

// Merge merges the sorted slices a and b into out by less;
// len(out) must equal len(a)+len(b) and out must not overlap the
// inputs. Large merges split recursively (midpoint of the larger run,
// binary search in the smaller), giving logarithmic span — the ordered-
// set union of the paper's substrate expressed on flat runs.
func Merge[T any](a, b, out []T, less func(x, y T) bool) {
	if len(out) != len(a)+len(b) {
		panic("parallel: Merge output length != len(a)+len(b)")
	}
	mergeInto(a, b, out, less)
}

// mergeSortInto sorts src; when inPlace is true the result ends up in src
// (buf is scratch), otherwise in buf.
func mergeSortInto[T any](src, buf []T, less func(a, b T) bool, inPlace bool) {
	n := len(src)
	if n <= sortSeqThreshold {
		sortSeq(src, less)
		if !inPlace {
			copy(buf, src)
		}
		return
	}
	mid := n / 2
	Do(
		func() { mergeSortInto(src[:mid], buf[:mid], less, !inPlace) },
		func() { mergeSortInto(src[mid:], buf[mid:], less, !inPlace) },
	)
	if inPlace {
		mergeInto(buf[:mid], buf[mid:], src, less)
	} else {
		mergeInto(src[:mid], src[mid:], buf, less)
	}
}

// mergeInto merges sorted a and b into out (len(out) == len(a)+len(b)),
// splitting recursively for parallelism on large merges.
func mergeInto[T any](a, b, out []T, less func(x, y T) bool) {
	if len(a)+len(b) <= mergeSeqThreshold {
		mergeSeq(a, b, out, less)
		return
	}
	if len(a) < len(b) {
		a, b = b, a
	}
	// Split the larger run at its midpoint and binary-search the split
	// point in the smaller run.
	am := len(a) / 2
	bm := lowerBound(b, a[am], less)
	Do(
		func() { mergeInto(a[:am], b[:bm], out[:am+bm], less) },
		func() { mergeInto(a[am:], b[bm:], out[am+bm:], less) },
	)
}

func mergeSeq[T any](a, b, out []T, less func(x, y T) bool) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if less(b[j], a[i]) {
			out[k] = b[j]
			j++
		} else {
			out[k] = a[i]
			i++
		}
		k++
	}
	copy(out[k:], a[i:])
	copy(out[k+len(a)-i:], b[j:])
}

// lowerBound returns the first index i in sorted s with !less(s[i], v),
// i.e. the insertion point of v keeping s sorted with v placed before
// equal elements.
func lowerBound[T any](s []T, v T, less func(x, y T) bool) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if less(s[mid], v) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// IsSorted reports whether data is nondecreasing under less.
func IsSorted[T any](data []T, less func(a, b T) bool) bool {
	for i := 1; i < len(data); i++ {
		if less(data[i], data[i-1]) {
			return false
		}
	}
	return true
}
