package parallel

import (
	"math"
	"math/rand/v2"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 7, DefaultGrain - 1, DefaultGrain, DefaultGrain + 1, 10 * DefaultGrain} {
		hits := make([]int32, n)
		For(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d hit %d times", n, i, h)
			}
		}
	}
}

func TestForGrainSmallGrain(t *testing.T) {
	n := 1000
	var sum atomic.Int64
	ForGrain(n, 1, func(i int) { sum.Add(int64(i)) })
	want := int64(n*(n-1)) / 2
	if got := sum.Load(); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
}

func TestBlocksPartition(t *testing.T) {
	for _, n := range []int{0, 1, 5, 4096, 4097, 100000} {
		for _, grain := range []int{1, 7, 1024, 1 << 20} {
			covered := make([]int32, n)
			Blocks(n, grain, func(lo, hi int) {
				if lo < 0 || hi > n || lo > hi {
					t.Errorf("bad block [%d,%d) for n=%d", lo, hi, n)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&covered[i], 1)
				}
			})
			for i, c := range covered {
				if c != 1 {
					t.Fatalf("n=%d grain=%d: index %d covered %d times", n, grain, i, c)
				}
			}
		}
	}
}

func TestBlocksZeroAndNegativeGrain(t *testing.T) {
	var count atomic.Int64
	Blocks(100, 0, func(lo, hi int) { count.Add(int64(hi - lo)) })
	if count.Load() != 100 {
		t.Fatalf("covered %d of 100", count.Load())
	}
}

func TestWorkersClaimsEachIndexOnce(t *testing.T) {
	n := 5000
	hits := make([]int32, n)
	Workers(n, func(_ int, claim func() (int, bool)) {
		for {
			i, ok := claim()
			if !ok {
				return
			}
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d claimed %d times", i, h)
		}
	}
}

func TestWorkersDistinctIDs(t *testing.T) {
	seen := make([]atomic.Int32, Procs())
	Workers(Procs()*4, func(w int, claim func() (int, bool)) {
		seen[w].Add(1)
		for {
			if _, ok := claim(); !ok {
				return
			}
		}
	})
	for w := range seen {
		if seen[w].Load() > 1 {
			t.Fatalf("worker id %d reused", w)
		}
	}
}

func TestDo(t *testing.T) {
	var a, b, c atomic.Bool
	Do(
		func() { a.Store(true) },
		func() { b.Store(true) },
		func() { c.Store(true) },
	)
	if !a.Load() || !b.Load() || !c.Load() {
		t.Fatal("not all funcs ran")
	}
	Do() // no-op
	ran := false
	Do(func() { ran = true })
	if !ran {
		t.Fatal("single func not run")
	}
}

func TestReduceSum(t *testing.T) {
	for _, n := range []int{0, 1, 100, DefaultGrain * 7} {
		got := Reduce(n, 0, func(i int) int { return i }, func(a, b int) int { return a + b })
		want := n * (n - 1) / 2
		if got != want {
			t.Fatalf("n=%d: Reduce = %d, want %d", n, got, want)
		}
	}
}

func TestSumMatchesReduce(t *testing.T) {
	n := 100000
	if got, want := Sum(n, func(i int) int64 { return int64(i) * 3 }), int64(n)*int64(n-1)/2*3; got != want {
		t.Fatalf("Sum = %d, want %d", got, want)
	}
}

func TestCount(t *testing.T) {
	if got := Count(100000, func(i int) bool { return i%7 == 0 }); got != 14286 {
		t.Fatalf("Count = %d, want 14286", got)
	}
}

func TestMinIndex(t *testing.T) {
	keys := []float64{5, 3, 9, 3, 7}
	i, k := MinIndex(len(keys), math.Inf(1), func(i int) float64 { return keys[i] })
	if i != 1 || k != 3 {
		t.Fatalf("MinIndex = (%d,%v), want (1,3)", i, k)
	}
	i, k = MinIndex(0, math.Inf(1), func(int) float64 { return 0 })
	if i != -1 || !math.IsInf(k, 1) {
		t.Fatalf("empty MinIndex = (%d,%v)", i, k)
	}
}

func TestMinIndexLarge(t *testing.T) {
	n := 300000
	keys := make([]float64, n)
	r := rand.New(rand.NewPCG(1, 2))
	for i := range keys {
		keys[i] = r.Float64()
	}
	target := n/2 + 13
	keys[target] = -1
	i, k := MinIndex(n, math.Inf(1), func(i int) float64 { return keys[i] })
	if i != target || k != -1 {
		t.Fatalf("MinIndex = (%d,%v), want (%d,-1)", i, k, target)
	}
}

func TestExclusiveScanMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 9))
	for _, n := range []int{0, 1, 2, scanGrain - 1, scanGrain, scanGrain + 1, scanGrain*5 + 17} {
		src := make([]int64, n)
		for i := range src {
			src[i] = int64(r.IntN(1000)) - 500
		}
		want := make([]int64, n)
		var acc int64
		for i := 0; i < n; i++ {
			want[i] = acc
			acc += src[i]
		}
		dst := make([]int64, n)
		total := ExclusiveScan(src, dst)
		if total != acc {
			t.Fatalf("n=%d: total = %d, want %d", n, total, acc)
		}
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("n=%d: dst[%d] = %d, want %d", n, i, dst[i], want[i])
			}
		}
	}
}

func TestExclusiveScanInPlace(t *testing.T) {
	n := scanGrain*3 + 5
	src := make([]int64, n)
	for i := range src {
		src[i] = int64(i % 13)
	}
	want := make([]int64, n)
	ExclusiveScan(src, want)
	total := ExclusiveScan(src, src)
	for i := range want {
		if src[i] != want[i] {
			t.Fatalf("in-place scan diverges at %d", i)
		}
	}
	if total != want[n-1]+int64((n-1)%13) {
		t.Fatalf("in-place total wrong: %d", total)
	}
}

func TestInclusiveScan(t *testing.T) {
	for _, n := range []int{1, 5, scanGrain * 2} {
		src := make([]int, n)
		for i := range src {
			src[i] = i + 1
		}
		dst := make([]int, n)
		total := InclusiveScan(src, dst)
		acc := 0
		for i := 0; i < n; i++ {
			acc += i + 1
			if dst[i] != acc {
				t.Fatalf("n=%d: dst[%d] = %d, want %d", n, i, dst[i], acc)
			}
		}
		if total != acc {
			t.Fatalf("total = %d, want %d", total, acc)
		}
	}
}

func TestPackIndex(t *testing.T) {
	for _, n := range []int{0, 1, 10, scanGrain * 3} {
		got := PackIndex(n, func(i int) bool { return i%3 == 0 })
		var want []int32
		for i := 0; i < n; i++ {
			if i%3 == 0 {
				want = append(want, int32(i))
			}
		}
		if len(got) != len(want) {
			t.Fatalf("n=%d: len = %d, want %d", n, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: got[%d] = %d, want %d", n, i, got[i], want[i])
			}
		}
	}
}

func TestPackIndexNoneAll(t *testing.T) {
	if got := PackIndex(1000, func(int) bool { return false }); len(got) != 0 {
		t.Fatalf("none: got %d", len(got))
	}
	if got := PackIndex(scanGrain*2, func(int) bool { return true }); len(got) != scanGrain*2 {
		t.Fatalf("all: got %d", len(got))
	}
}

func TestFilterAndMap(t *testing.T) {
	src := make([]int, 1000)
	for i := range src {
		src[i] = i
	}
	evens := Filter(src, func(v int) bool { return v%2 == 0 })
	if len(evens) != 500 || evens[10] != 20 {
		t.Fatalf("Filter wrong: len=%d", len(evens))
	}
	doubled := Map(evens, func(v int) int { return v * 2 })
	if doubled[10] != 40 {
		t.Fatalf("Map wrong: %d", doubled[10])
	}
}

func TestFill(t *testing.T) {
	s := make([]float64, scanGrain*2+3)
	Fill(s, 42)
	for i, v := range s {
		if v != 42 {
			t.Fatalf("s[%d] = %v", i, v)
		}
	}
}

func TestSortRandom(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 4))
	for _, n := range []int{0, 1, 2, 100, sortSeqThreshold + 1, sortSeqThreshold*4 + 9} {
		data := make([]int, n)
		for i := range data {
			data[i] = r.IntN(1000)
		}
		Sort(data, func(a, b int) bool { return a < b })
		if !IsSorted(data, func(a, b int) bool { return a < b }) {
			t.Fatalf("n=%d not sorted", n)
		}
	}
}

func TestSortPreservesMultiset(t *testing.T) {
	n := sortSeqThreshold * 3
	r := rand.New(rand.NewPCG(5, 6))
	data := make([]int, n)
	counts := map[int]int{}
	for i := range data {
		data[i] = r.IntN(50)
		counts[data[i]]++
	}
	Sort(data, func(a, b int) bool { return a < b })
	for _, v := range data {
		counts[v]--
	}
	for k, c := range counts {
		if c != 0 {
			t.Fatalf("element %d count off by %d", k, c)
		}
	}
}

func TestSortQuickProperty(t *testing.T) {
	f := func(data []uint16) bool {
		s := make([]int, len(data))
		for i, v := range data {
			s[i] = int(v)
		}
		Sort(s, func(a, b int) bool { return a < b })
		return IsSorted(s, func(a, b int) bool { return a < b })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSortScratch: the allocation-conscious variant must sort exactly
// like Sort across the sequential/parallel size boundary, reusing the
// caller's scratch.
func TestSortScratch(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 8))
	scratch := make([]int, sortSeqThreshold*4+9)
	for _, n := range []int{0, 1, 2, 100, sortSeqThreshold + 1, sortSeqThreshold*4 + 9} {
		data := make([]int, n)
		for i := range data {
			data[i] = r.IntN(1000)
		}
		counts := map[int]int{}
		for _, v := range data {
			counts[v]++
		}
		SortScratch(data, scratch, func(a, b int) bool { return a < b })
		if !IsSorted(data, func(a, b int) bool { return a < b }) {
			t.Fatalf("n=%d not sorted", n)
		}
		for _, v := range data {
			counts[v]--
		}
		for k, c := range counts {
			if c != 0 {
				t.Fatalf("n=%d: element %d count off by %d", n, k, c)
			}
		}
	}
}

// TestMerge: sorted inputs of every size mix (empty sides, ties,
// parallel-threshold crossers) merge into one sorted multiset.
func TestMerge(t *testing.T) {
	less := func(a, b int) bool { return a < b }
	r := rand.New(rand.NewPCG(9, 10))
	for _, sz := range [][2]int{{0, 0}, {0, 5}, {5, 0}, {7, 9}, {1000, 3}, {mergeSeqThreshold, mergeSeqThreshold + 17}} {
		a := make([]int, sz[0])
		b := make([]int, sz[1])
		for i := range a {
			a[i] = r.IntN(200)
		}
		for i := range b {
			b[i] = r.IntN(200)
		}
		Sort(a, less)
		Sort(b, less)
		out := make([]int, len(a)+len(b))
		Merge(a, b, out, less)
		if !IsSorted(out, less) {
			t.Fatalf("merge %v: output not sorted", sz)
		}
		counts := map[int]int{}
		for _, v := range a {
			counts[v]++
		}
		for _, v := range b {
			counts[v]++
		}
		for _, v := range out {
			counts[v]--
		}
		for k, c := range counts {
			if c != 0 {
				t.Fatalf("merge %v: element %d count off by %d", sz, k, c)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length-mismatched Merge did not panic")
		}
	}()
	Merge([]int{1}, []int{2}, make([]int, 3), less)
}

func TestLowerBound(t *testing.T) {
	s := []int{1, 3, 3, 5, 9}
	less := func(a, b int) bool { return a < b }
	cases := []struct{ v, want int }{{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 3}, {9, 4}, {10, 5}}
	for _, c := range cases {
		if got := lowerBound(s, c.v, less); got != c.want {
			t.Fatalf("lowerBound(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestWriteMinSequential(t *testing.T) {
	x := InfBits
	if !WriteMin(&x, ToBits(5)) {
		t.Fatal("WriteMin from Inf should succeed")
	}
	if WriteMin(&x, ToBits(7)) {
		t.Fatal("WriteMin larger should fail")
	}
	if !WriteMin(&x, ToBits(3)) {
		t.Fatal("WriteMin smaller should succeed")
	}
	if FromBits(x) != 3 {
		t.Fatalf("final = %v", FromBits(x))
	}
}

func TestWriteMinOrderPreserving(t *testing.T) {
	// Bit-pattern order must match numeric order for non-negative floats.
	vals := []float64{0, 1e-300, 0.5, 1, 1.5, 1e10, math.Inf(1)}
	for i := 1; i < len(vals); i++ {
		if !(ToBits(vals[i-1]) < ToBits(vals[i])) {
			t.Fatalf("bits not monotone between %v and %v", vals[i-1], vals[i])
		}
	}
}

func TestWriteMinConcurrent(t *testing.T) {
	// Hammer one cell from many goroutines; final value must be the min.
	x := InfBits
	n := 100000
	vals := make([]float64, n)
	r := rand.New(rand.NewPCG(11, 13))
	minV := math.Inf(1)
	for i := range vals {
		vals[i] = r.Float64() * 1000
		if vals[i] < minV {
			minV = vals[i]
		}
	}
	For(n, func(i int) { WriteMin(&x, ToBits(vals[i])) })
	if FromBits(x) != minV {
		t.Fatalf("final = %v, want %v", FromBits(x), minV)
	}
}

func TestWriteMinInt64(t *testing.T) {
	var x int64 = math.MaxInt64
	For(10000, func(i int) { WriteMinInt64(&x, int64(i)+5) })
	if x != 5 {
		t.Fatalf("final = %d, want 5", x)
	}
}

func TestClaimExactlyOnePerStamp(t *testing.T) {
	var cell uint32
	for stamp := uint32(1); stamp <= 50; stamp++ {
		var wins atomic.Int32
		For(64, func(int) {
			if Claim(&cell, stamp) {
				wins.Add(1)
			}
		})
		if wins.Load() != 1 {
			t.Fatalf("stamp %d: %d winners", stamp, wins.Load())
		}
	}
}

func TestBitsToFloats(t *testing.T) {
	bits := []uint64{ToBits(0), ToBits(2.5), InfBits}
	f := BitsToFloats(bits)
	if f[0] != 0 || f[1] != 2.5 || !math.IsInf(f[2], 1) {
		t.Fatalf("BitsToFloats = %v", f)
	}
}
