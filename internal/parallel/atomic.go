package parallel

import (
	"math"
	"sync/atomic"
)

// Distances are stored as uint64 bit patterns during parallel phases.
// For non-negative, non-NaN float64 values the IEEE-754 bit pattern is
// monotone in the value, so an atomic unsigned compare-and-swap implements
// the priority-write (WriteMin) of the paper directly.

// InfBits is the bit pattern of +Inf, the "unreached" distance.
var InfBits = math.Float64bits(math.Inf(1))

// ToBits converts a non-negative distance to its order-preserving bits.
func ToBits(v float64) uint64 { return math.Float64bits(v) }

// FromBits converts order-preserving bits back to a float64 distance.
func FromBits(b uint64) float64 { return math.Float64frombits(b) }

// WriteMin atomically updates *addr to min(*addr, bits) and reports
// whether it stored a new (strictly smaller) value. Concurrent callers may
// all observe true transiently, but the final value is the minimum of all
// written values — the linearizable priority-write.
func WriteMin(addr *uint64, bits uint64) bool {
	for {
		cur := atomic.LoadUint64(addr)
		if bits >= cur {
			return false
		}
		if atomic.CompareAndSwapUint64(addr, cur, bits) {
			return true
		}
	}
}

// WriteMinInt64 is WriteMin for signed integer keys (used by the
// unweighted solvers where distances are hop counts).
func WriteMinInt64(addr *int64, v int64) bool {
	for {
		cur := atomic.LoadInt64(addr)
		if v >= cur {
			return false
		}
		if atomic.CompareAndSwapInt64(addr, cur, v) {
			return true
		}
	}
}

// Claim atomically sets *addr to stamp and reports whether this caller
// performed the transition from a different value. It is the "mark once
// per round" primitive used to deduplicate frontier insertions: exactly
// one of the concurrent claimants for a given (addr, stamp) wins.
func Claim(addr *uint32, stamp uint32) bool {
	for {
		cur := atomic.LoadUint32(addr)
		if cur == stamp {
			return false
		}
		if atomic.CompareAndSwapUint32(addr, cur, stamp) {
			return true
		}
	}
}

// BitsToFloats converts a bit-pattern distance array into float64 values
// in parallel (used once at the end of a solve). Small arrays convert in
// a plain loop so the only allocation is the returned vector.
func BitsToFloats(bits []uint64) []float64 {
	out := make([]float64, len(bits))
	if len(bits) <= scanGrain || Procs() == 1 {
		for i, b := range bits {
			out[i] = math.Float64frombits(b)
		}
		return out
	}
	Blocks(len(bits), scanGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = math.Float64frombits(bits[i])
		}
	})
	return out
}
