package parallel

// Number is the constraint for scan and sum primitives.
type Number interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 |
		~float32 | ~float64
}

// scanGrain is the block size for the two-pass parallel scan.
const scanGrain = 4096

// ExclusiveScan writes into dst the exclusive prefix sums of src
// (dst[i] = src[0]+...+src[i-1], dst[0] = 0) and returns the total.
// dst and src may be the same slice. len(dst) must be >= len(src).
//
// The implementation is the classic two-pass blocked scan: pass one
// computes per-block sums in parallel, a short sequential scan combines
// block sums, and pass two fills each block in parallel.
func ExclusiveScan[T Number](src []T, dst []T) T {
	n := len(src)
	if n == 0 {
		return 0
	}
	if n <= scanGrain || Procs() == 1 {
		var acc T
		for i := 0; i < n; i++ {
			v := src[i]
			dst[i] = acc
			acc += v
		}
		return acc
	}
	nb := blocksOf(n, scanGrain)
	sums := make([]T, nb)
	Blocks(nb, 1, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo, hi := blockBounds(b, n, scanGrain)
			var acc T
			for i := lo; i < hi; i++ {
				acc += src[i]
			}
			sums[b] = acc
		}
	})
	var total T
	for b := 0; b < nb; b++ {
		s := sums[b]
		sums[b] = total
		total += s
	}
	Blocks(nb, 1, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo, hi := blockBounds(b, n, scanGrain)
			acc := sums[b]
			for i := lo; i < hi; i++ {
				v := src[i]
				dst[i] = acc
				acc += v
			}
		}
	})
	return total
}

// InclusiveScan writes dst[i] = src[0]+...+src[i] and returns the total.
// dst and src may alias. The structure mirrors ExclusiveScan — per-block
// sums, a short sequential scan over them, then a per-block fill seeded
// with the block's prefix — rather than shifting an exclusive scan into
// place: a parallel overlapped shift reads its right neighbour's first
// element while the adjacent block overwrites it (a data race on block
// boundaries). Each phase here touches disjoint ranges per worker, and
// aliasing is safe because src[i] is always read before dst[i] is
// written at the same index by the same worker.
func InclusiveScan[T Number](src []T, dst []T) T {
	n := len(src)
	if n == 0 {
		return 0
	}
	if n <= scanGrain || Procs() == 1 {
		var acc T
		for i := 0; i < n; i++ {
			acc += src[i]
			dst[i] = acc
		}
		return acc
	}
	nb := blocksOf(n, scanGrain)
	sums := make([]T, nb)
	Blocks(nb, 1, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo, hi := blockBounds(b, n, scanGrain)
			var acc T
			for i := lo; i < hi; i++ {
				acc += src[i]
			}
			sums[b] = acc
		}
	})
	var total T
	for b := 0; b < nb; b++ {
		s := sums[b]
		sums[b] = total
		total += s
	}
	Blocks(nb, 1, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo, hi := blockBounds(b, n, scanGrain)
			acc := sums[b]
			for i := lo; i < hi; i++ {
				acc += src[i]
				dst[i] = acc
			}
		}
	})
	return total
}
