package parallel

// Number is the constraint for scan and sum primitives.
type Number interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 |
		~float32 | ~float64
}

// scanGrain is the block size for the two-pass parallel scan.
const scanGrain = 4096

// ExclusiveScan writes into dst the exclusive prefix sums of src
// (dst[i] = src[0]+...+src[i-1], dst[0] = 0) and returns the total.
// dst and src may be the same slice. len(dst) must be >= len(src).
//
// The implementation is the classic two-pass blocked scan: pass one
// computes per-block sums in parallel, a short sequential scan combines
// block sums, and pass two fills each block in parallel.
func ExclusiveScan[T Number](src []T, dst []T) T {
	n := len(src)
	if n == 0 {
		return 0
	}
	if n <= scanGrain || Procs() == 1 {
		var acc T
		for i := 0; i < n; i++ {
			v := src[i]
			dst[i] = acc
			acc += v
		}
		return acc
	}
	nb := blocksOf(n, scanGrain)
	sums := make([]T, nb)
	Blocks(nb, 1, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo, hi := blockBounds(b, n, scanGrain)
			var acc T
			for i := lo; i < hi; i++ {
				acc += src[i]
			}
			sums[b] = acc
		}
	})
	var total T
	for b := 0; b < nb; b++ {
		s := sums[b]
		sums[b] = total
		total += s
	}
	Blocks(nb, 1, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo, hi := blockBounds(b, n, scanGrain)
			acc := sums[b]
			for i := lo; i < hi; i++ {
				v := src[i]
				dst[i] = acc
				acc += v
			}
		}
	})
	return total
}

// InclusiveScan writes dst[i] = src[0]+...+src[i] and returns the total.
// dst and src may alias.
func InclusiveScan[T Number](src []T, dst []T) T {
	n := len(src)
	if n == 0 {
		return 0
	}
	total := ExclusiveScan(src, dst)
	// Convert exclusive to inclusive in parallel: every position needs
	// its own element added back. Recompute from the right neighbour's
	// exclusive value is not possible in place, so add src before it is
	// overwritten — ExclusiveScan already consumed src, and when
	// aliasing, dst[i] currently holds the exclusive sum while src[i] is
	// gone. To support aliasing we instead shift: inclusive[i] =
	// exclusive[i+1] for i < n-1 and total for the last element.
	Blocks(n-1, scanGrain, func(lo, hi int) {
		copy(dst[lo:hi], dst[lo+1:hi+1])
	})
	dst[n-1] = total
	return total
}
