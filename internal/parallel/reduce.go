package parallel

// Reduce computes combine over mapf(0..n-1) in parallel.
// identity must satisfy combine(identity, x) == x; combine must be
// associative (commutativity is not required: partials are combined in
// worker order, but callers should not rely on a particular grouping).
func Reduce[T any](n int, identity T, mapf func(i int) T, combine func(a, b T) T) T {
	if n <= 0 {
		return identity
	}
	p := Procs()
	if p == 1 || n < DefaultGrain {
		acc := identity
		for i := 0; i < n; i++ {
			acc = combine(acc, mapf(i))
		}
		return acc
	}
	partials := make([]T, p)
	used := make([]bool, p)
	// Workers accumulate locally over dynamically claimed chunks; each
	// worker owns exactly one partial slot, so no locking is needed.
	Workers(blocksOf(n, DefaultGrain), func(w int, claim func() (int, bool)) {
		acc := identity
		any := false
		for {
			b, ok := claim()
			if !ok {
				break
			}
			lo, hi := blockBounds(b, n, DefaultGrain)
			for i := lo; i < hi; i++ {
				acc = combine(acc, mapf(i))
			}
			any = true
		}
		if any {
			partials[w] = acc
			used[w] = true
		}
	})
	acc := identity
	for w := 0; w < p; w++ {
		if used[w] {
			acc = combine(acc, partials[w])
		}
	}
	return acc
}

// MinIndex returns the index i in [0, n) minimizing key(i), breaking ties
// toward the smallest index, and the minimizing key. It returns (-1,
// identity) when n == 0. identity must compare greater-or-equal to every
// key (for example +Inf).
func MinIndex(n int, identity float64, key func(i int) float64) (int, float64) {
	type pair struct {
		k float64
		i int
	}
	best := Reduce(n, pair{identity, -1},
		func(i int) pair { return pair{key(i), i} },
		func(a, b pair) pair {
			if b.i == -1 {
				return a
			}
			if a.i == -1 || b.k < a.k || (b.k == a.k && b.i < a.i) {
				return b
			}
			return a
		})
	return best.i, best.k
}

// Sum adds mapf(i) over [0, n) in parallel.
func Sum[T Number](n int, mapf func(i int) T) T {
	return Reduce(n, T(0), mapf, func(a, b T) T { return a + b })
}

// Count reports how many i in [0, n) satisfy pred.
func Count(n int, pred func(i int) bool) int {
	return Reduce(n, 0, func(i int) int {
		if pred(i) {
			return 1
		}
		return 0
	}, func(a, b int) int { return a + b })
}

func blocksOf(n, grain int) int { return (n + grain - 1) / grain }

func blockBounds(b, n, grain int) (lo, hi int) {
	lo = b * grain
	hi = lo + grain
	if hi > n {
		hi = n
	}
	return lo, hi
}
