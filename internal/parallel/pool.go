package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The persistent worker pool behind the fork-join primitives.
//
// A solve makes hundreds of Blocks/Workers calls (one or more per
// Bellman–Ford substep), and spawning fresh goroutines for each one
// costs a stack allocation, scheduler churn, and WaitGroup traffic that
// can rival the useful work on small frontiers. Instead, the package
// keeps a small set of long-lived workers, each parked on a channel
// receive (the runtime parks the goroutine — the Go analogue of a futex
// wait) until a fork hands it a task. Waking a parked worker is a single
// channel send to an already-waiting receiver, an order of magnitude
// cheaper than goroutine creation, and steady-state fork-joins stop
// producing dead goroutines for the scheduler and GC to digest.
//
// Invariants:
//
//   - The pool never exceeds GOMAXPROCS-1 workers (the caller of a fork
//     is always the +1th participant), so concurrent fork-joins share
//     the machine instead of oversubscribing it.
//   - A fork NEVER blocks waiting for a worker. If the pool is empty —
//     all workers busy serving other forks, possibly nested ones — the
//     caller runs the remaining participants itself, sequentially. Every
//     participant id in [0, n) runs exactly once either way, which is
//     what callers that index per-worker state by id rely on.
//   - Workers are created lazily and live for the life of the process;
//     an idle pool costs len(idle) parked goroutines and nothing else.
type task struct {
	body func(id int)
	wg   *sync.WaitGroup
	id   int
}

var pool struct {
	mu   sync.Mutex
	idle []chan task // parked workers' inboxes, LIFO for cache warmth
	size int         // workers ever created (they never exit)
}

// workerLoop is the body of one pool worker: run a task, rejoin the idle
// stack, park again. The inbox has capacity 1 so re-parking (appending
// to idle before the next receive) never makes a sender block.
func workerLoop(ch chan task) {
	for t := range ch {
		t.body(t.id)
		t.wg.Done()
		// Drop the closure reference before parking: fork bodies capture
		// solve state (workspaces, graph arrays), and an idle worker must
		// not pin its last fork's captures until the next task arrives.
		t = task{}
		_ = t
		pool.mu.Lock()
		pool.idle = append(pool.idle, ch)
		pool.mu.Unlock()
	}
}

// fork runs body(id) for every id in [0, n), body(0) on the caller and
// the rest on parked pool workers, creating workers up to GOMAXPROCS-1
// as needed. Participants the pool cannot serve run inline on the
// caller after body(0); fork returns when all n invocations completed.
func fork(n int, body func(id int)) {
	if n <= 1 {
		if n == 1 {
			body(0)
		}
		return
	}
	limit := runtime.GOMAXPROCS(0) - 1
	var wg sync.WaitGroup
	dispatched := 1
	pool.mu.Lock()
	for dispatched < n {
		var ch chan task
		if k := len(pool.idle); k > 0 {
			ch = pool.idle[k-1]
			pool.idle = pool.idle[:k-1]
		} else if pool.size < limit {
			ch = make(chan task, 1)
			pool.size++
			go workerLoop(ch)
		} else {
			break
		}
		wg.Add(1)
		ch <- task{body: body, wg: &wg, id: dispatched}
		dispatched++
	}
	pool.mu.Unlock()
	body(0)
	for id := dispatched; id < n; id++ {
		body(id) // pool exhausted: the caller covers the rest
	}
	wg.Wait()
}

// PoolSize reports how many persistent workers currently exist. Exposed
// for tests and diagnostics.
func PoolSize() int {
	pool.mu.Lock()
	defer pool.mu.Unlock()
	return pool.size
}

// rangeClaimer returns a batched claim function handing out consecutive
// index ranges of about grain elements from [0, n): one atomic add per
// grain indices instead of one per index.
func rangeClaimer(n, grain int, next *atomic.Int64) func() (int, int, bool) {
	numChunks := blocksOf(n, grain)
	return func() (int, int, bool) {
		c := int(next.Add(1)) - 1
		if c >= numChunks {
			return 0, 0, false
		}
		lo, hi := blockBounds(c, n, grain)
		return lo, hi, true
	}
}
