package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// The persistent worker pool behind the fork-join primitives.
//
// A solve makes hundreds of Blocks/Workers calls (one or more per
// Bellman–Ford substep), and spawning fresh goroutines for each one
// costs a stack allocation, scheduler churn, and WaitGroup traffic that
// can rival the useful work on small frontiers. Instead, the package
// keeps a small set of long-lived workers, each parked on a channel
// receive (the runtime parks the goroutine — the Go analogue of a futex
// wait) until a fork hands it a task. Waking a parked worker is a single
// channel send to an already-waiting receiver, an order of magnitude
// cheaper than goroutine creation, and steady-state fork-joins stop
// producing dead goroutines for the scheduler and GC to digest.
//
// Invariants:
//
//   - A fork never runs more than GOMAXPROCS participants concurrently
//     (the caller is always the +1th), so concurrent fork-joins share
//     the machine instead of oversubscribing it. The limit is read per
//     fork, so lowering GOMAXPROCS mid-process (radius-bench -procs)
//     immediately shrinks dispatch even though existing workers never
//     exit.
//   - A fork NEVER blocks waiting for a worker. If the pool is empty —
//     all workers busy serving other forks, possibly nested ones — the
//     caller runs the remaining participants itself, sequentially. Every
//     participant id in [0, n) runs exactly once either way, which is
//     what callers that index per-worker state by id rely on.
//   - Workers are created lazily and live for the life of the process;
//     an idle pool costs len(idle) parked goroutines and nothing else.
//
// The pool also feeds the observability layer: every fork/dispatch/park
// event and the wake and join-barrier latencies are counted into
// process-global atomics, sampled as deltas by the solve-trace recorder
// (internal/trace) and exported by the daemon's /metrics endpoint. The
// counter costs are a handful of atomic adds and two clock reads per
// DISPATCHED task — noise next to the channel send and scheduler handoff
// they annotate, and zero on the undispatched (GOMAXPROCS=1) path.
type task struct {
	body func(id int)
	wg   *sync.WaitGroup
	id   int
	sent time.Time // dispatch timestamp; wake latency = start - sent
}

var pool struct {
	mu   sync.Mutex
	idle []chan task // parked workers' inboxes, LIFO for cache warmth
	size int         // workers ever created (they never exit)
}

// paddedInt64 is an atomic counter alone on its cache line. The pool
// counters are written from different goroutines at different rates —
// claims by every worker inside a fork, wakeNanos/parks by workers,
// forks/joinNanos by fork callers — and as plain adjacent fields they
// all shared one or two cache lines, so every claim bounced the line
// under the hot counters written by other workers (false sharing). One
// line per counter keeps each writer's RFO traffic to the counters it
// actually touches. 64 bytes covers the destructive-interference range
// of current amd64/arm64 parts.
type paddedInt64 struct {
	atomic.Int64
	_ [56]byte
}

// poolStats are the process-global pool event counters. Monotonic;
// consumers read deltas. Each counter is cache-line padded; see
// paddedInt64.
var poolStats struct {
	_          [64]byte // keep the first counter off the preceding var's line
	forks      paddedInt64
	dispatched paddedInt64
	inline     paddedInt64
	created    paddedInt64
	parks      paddedInt64
	wakeNanos  paddedInt64
	joinNanos  paddedInt64
	claims     paddedInt64
}

// PoolCounters is a snapshot of the pool's cumulative event counters.
type PoolCounters struct {
	// Forks counts fork-join regions that dispatched at least one
	// participant decision (n > 1).
	Forks int64
	// Dispatched counts tasks handed to pool workers (unpark events).
	Dispatched int64
	// Inline counts participants run sequentially on the caller
	// because the pool was exhausted or the dispatch limit was reached.
	Inline int64
	// Created counts pool workers ever created.
	Created int64
	// Parks counts workers returning to the idle stack after a task.
	Parks int64
	// WakeNanos sums dispatch-to-execution latency over Dispatched.
	WakeNanos int64
	// BarrierNanos sums the callers' join-barrier wait time (after
	// finishing their own participant shares).
	BarrierNanos int64
	// Claims counts batched work-range claims handed out inside
	// fork-join regions (one per ~grain items).
	Claims int64
}

// ReadPoolCounters snapshots the cumulative pool counters. The
// counters are process-global: trace recorders read before/after deltas
// around a solve, and /metrics exports them directly.
func ReadPoolCounters() PoolCounters {
	return PoolCounters{
		Forks:        poolStats.forks.Load(),
		Dispatched:   poolStats.dispatched.Load(),
		Inline:       poolStats.inline.Load(),
		Created:      poolStats.created.Load(),
		Parks:        poolStats.parks.Load(),
		WakeNanos:    poolStats.wakeNanos.Load(),
		BarrierNanos: poolStats.joinNanos.Load(),
		Claims:       poolStats.claims.Load(),
	}
}

// workerLoop is the body of one pool worker: run a task, rejoin the idle
// stack, park again. The inbox has capacity 1 so re-parking (appending
// to idle before the next receive) never makes a sender block.
func workerLoop(ch chan task) {
	for t := range ch {
		poolStats.wakeNanos.Add(time.Since(t.sent).Nanoseconds())
		t.body(t.id)
		t.wg.Done()
		// Drop the closure reference before parking: fork bodies capture
		// solve state (workspaces, graph arrays), and an idle worker must
		// not pin its last fork's captures until the next task arrives.
		t = task{}
		_ = t
		pool.mu.Lock()
		pool.idle = append(pool.idle, ch)
		pool.mu.Unlock()
		poolStats.parks.Add(1)
	}
}

// fork runs body(id) for every id in [0, n), body(0) on the caller and
// the rest on parked pool workers, creating workers up to GOMAXPROCS-1
// as needed. At most GOMAXPROCS-1 participants are dispatched even when
// more idle workers exist (they may have been created under a higher
// GOMAXPROCS). Participants the pool cannot serve run inline on the
// caller after body(0); fork returns when all n invocations completed.
func fork(n int, body func(id int)) {
	if n <= 1 {
		if n == 1 {
			body(0)
		}
		return
	}
	poolStats.forks.Add(1)
	limit := runtime.GOMAXPROCS(0) - 1
	var wg sync.WaitGroup
	dispatched := 1
	pool.mu.Lock()
	for dispatched < n && dispatched-1 < limit {
		var ch chan task
		if k := len(pool.idle); k > 0 {
			ch = pool.idle[k-1]
			pool.idle = pool.idle[:k-1]
		} else if pool.size < limit {
			ch = make(chan task, 1)
			pool.size++
			poolStats.created.Add(1)
			go workerLoop(ch)
		} else {
			break
		}
		wg.Add(1)
		ch <- task{body: body, wg: &wg, id: dispatched, sent: time.Now()}
		dispatched++
	}
	pool.mu.Unlock()
	poolStats.dispatched.Add(int64(dispatched - 1))
	body(0)
	if dispatched < n {
		poolStats.inline.Add(int64(n - dispatched))
		for id := dispatched; id < n; id++ {
			body(id) // pool exhausted: the caller covers the rest
		}
	}
	if dispatched > 1 {
		t0 := time.Now()
		wg.Wait()
		poolStats.joinNanos.Add(time.Since(t0).Nanoseconds())
	}
}

// PoolSize reports how many persistent workers currently exist. Exposed
// for tests and diagnostics.
func PoolSize() int {
	pool.mu.Lock()
	defer pool.mu.Unlock()
	return pool.size
}

// rangeClaimer returns a batched claim function handing out consecutive
// index ranges of about grain elements from [0, n): one atomic add per
// grain indices instead of one per index. Successful claims are counted
// into the pool's observability counters (one more atomic add per
// ~grain items).
func rangeClaimer(n, grain int, next *atomic.Int64) func() (int, int, bool) {
	numChunks := blocksOf(n, grain)
	return func() (int, int, bool) {
		c := int(next.Add(1)) - 1
		if c >= numChunks {
			return 0, 0, false
		}
		poolStats.claims.Add(1)
		lo, hi := blockBounds(c, n, grain)
		return lo, hi, true
	}
}
