package parallel

// PackIndex returns, in ascending order, every index i in [0, n) for which
// keep(i) is true. It is the parallel "pack" (stream compaction) primitive:
// a count pass, an exclusive scan over block counts, then a scatter pass.
func PackIndex(n int, keep func(i int) bool) []int32 {
	if n <= 0 {
		return nil
	}
	if n <= scanGrain || Procs() == 1 {
		out := make([]int32, 0, 16)
		for i := 0; i < n; i++ {
			if keep(i) {
				out = append(out, int32(i))
			}
		}
		return out
	}
	nb := blocksOf(n, scanGrain)
	counts := make([]int64, nb)
	Blocks(nb, 1, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo, hi := blockBounds(b, n, scanGrain)
			var c int64
			for i := lo; i < hi; i++ {
				if keep(i) {
					c++
				}
			}
			counts[b] = c
		}
	})
	total := ExclusiveScan(counts, counts)
	out := make([]int32, total)
	Blocks(nb, 1, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo, hi := blockBounds(b, n, scanGrain)
			pos := counts[b]
			for i := lo; i < hi; i++ {
				if keep(i) {
					out[pos] = int32(i)
					pos++
				}
			}
		}
	})
	return out
}

// Filter returns the elements of src satisfying keep, preserving order.
func Filter[T any](src []T, keep func(T) bool) []T {
	idx := PackIndex(len(src), func(i int) bool { return keep(src[i]) })
	out := make([]T, len(idx))
	For(len(idx), func(i int) { out[i] = src[idx[i]] })
	return out
}

// Map applies fn to every element of src in parallel, into a new slice.
func Map[S, T any](src []S, fn func(S) T) []T {
	out := make([]T, len(src))
	For(len(src), func(i int) { out[i] = fn(src[i]) })
	return out
}

// Fill sets every element of dst to v in parallel. Useful for resetting
// large distance arrays between queries. Small arrays take a plain loop
// before any closure is formed, keeping per-query resets allocation-free
// (the steady-state contract of the solver workspace).
func Fill[T any](dst []T, v T) {
	if len(dst) <= scanGrain || Procs() == 1 {
		for i := range dst {
			dst[i] = v
		}
		return
	}
	Blocks(len(dst), scanGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = v
		}
	})
}
