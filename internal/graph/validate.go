package graph

import (
	"errors"
	"fmt"
)

// ErrInvalid is wrapped by all validation failures.
var ErrInvalid = errors.New("graph: invalid")

// Validate checks the structural invariants of a CSR: monotone offsets,
// in-range targets, non-negative weights, no self-loops, sorted adjacency
// without duplicate neighbors, and full symmetry (every arc has a reverse
// arc of equal weight). It returns nil when the graph is well-formed.
func Validate(g *CSR) error {
	n := g.NumVertices()
	if n < 0 {
		return fmt.Errorf("%w: negative vertex count", ErrInvalid)
	}
	if len(g.Off) != n+1 || g.Off[0] != 0 || int(g.Off[n]) != len(g.Adj) || len(g.Adj) != len(g.W) {
		return fmt.Errorf("%w: inconsistent array lengths", ErrInvalid)
	}
	for u := 0; u < n; u++ {
		if g.Off[u] > g.Off[u+1] {
			return fmt.Errorf("%w: offsets not monotone at %d", ErrInvalid, u)
		}
		adj, ws := g.Neighbors(V(u))
		for i, v := range adj {
			if v < 0 || int(v) >= n {
				return fmt.Errorf("%w: arc (%d,%d) out of range", ErrInvalid, u, v)
			}
			if v == V(u) {
				return fmt.Errorf("%w: self-loop at %d", ErrInvalid, u)
			}
			if ws[i] < 0 {
				return fmt.Errorf("%w: negative weight on (%d,%d)", ErrInvalid, u, v)
			}
			if i > 0 && adj[i-1] >= v {
				return fmt.Errorf("%w: adjacency of %d not strictly sorted", ErrInvalid, u)
			}
		}
	}
	// Symmetry: for every arc (u, v, w) the reverse must exist with the
	// same weight. Adjacency lists are sorted, so binary search suffices.
	for u := 0; u < n; u++ {
		adj, ws := g.Neighbors(V(u))
		for i, v := range adj {
			w, ok := findArc(g, v, V(u))
			if !ok {
				return fmt.Errorf("%w: missing reverse arc for (%d,%d)", ErrInvalid, u, v)
			}
			if w != ws[i] {
				return fmt.Errorf("%w: asymmetric weight on (%d,%d): %v vs %v", ErrInvalid, u, v, ws[i], w)
			}
		}
	}
	return nil
}

// findArc locates the arc (u, v) by binary search over u's sorted
// adjacency, returning its weight.
func findArc(g *CSR, u, v V) (float64, bool) {
	adj, ws := g.Neighbors(u)
	lo, hi := 0, len(adj)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if adj[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(adj) && adj[lo] == v {
		return ws[lo], true
	}
	return 0, false
}

// HasEdge reports whether the undirected edge {u, v} exists.
func HasEdge(g *CSR, u, v V) bool {
	_, ok := findArc(g, u, v)
	return ok
}

// EdgeWeight returns the weight of edge {u, v}, or +ok=false.
func EdgeWeight(g *CSR, u, v V) (float64, bool) {
	return findArc(g, u, v)
}
