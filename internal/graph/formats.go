package graph

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Format identifies one of the graph interchange formats this package
// reads and writes.
type Format int

const (
	FormatUnknown Format = iota
	// FormatText is the repo's native text format: "p sssp n m" header
	// followed by 0-indexed "u v w" edge lines.
	FormatText
	// FormatDIMACS is the 9th DIMACS Implementation Challenge shortest-
	// path format: "p sp n m" header and 1-indexed "a u v w" arc lines.
	FormatDIMACS
	// FormatEdgeList is a headerless whitespace/TSV list of "u v [w]"
	// lines with 0-indexed endpoints (the SNAP/web-graph convention);
	// a missing weight defaults to 1.
	FormatEdgeList
	// FormatBinary is the compact binary CSR format (WriteBinary).
	FormatBinary
	// FormatSnapshot is the versioned snapshot format (WriteSnapshot),
	// which may also carry radii and the pre-shortcut original graph.
	FormatSnapshot
)

// String names the format as used in CLI flags and serving metadata.
func (f Format) String() string {
	switch f {
	case FormatText:
		return "text"
	case FormatDIMACS:
		return "dimacs"
	case FormatEdgeList:
		return "edgelist"
	case FormatBinary:
		return "binary"
	case FormatSnapshot:
		return "snapshot"
	default:
		return "unknown"
	}
}

// Detect sniffs the format from the first bytes of a file. A few KiB is
// plenty: binary formats are identified by magic, text formats by the
// first non-comment line.
func Detect(prefix []byte) Format {
	if len(prefix) >= 8 {
		switch binary.LittleEndian.Uint64(prefix[:8]) {
		case snapMagic:
			return FormatSnapshot
		case uint64(binaryMagic):
			return FormatBinary
		}
	}
	for _, line := range bytes.Split(prefix, []byte("\n")) {
		text := strings.TrimSpace(string(line))
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		if text == "c" || strings.HasPrefix(text, "c ") {
			continue // DIMACS/text comment
		}
		switch {
		case strings.HasPrefix(text, "p sssp"):
			return FormatText
		case strings.HasPrefix(text, "p sp"):
			return FormatDIMACS
		case strings.HasPrefix(text, "a "):
			return FormatDIMACS // arc line before the header: still DIMACS-shaped
		}
		fields := strings.Fields(text)
		if len(fields) == 2 || len(fields) == 3 {
			numeric := true
			for _, f := range fields {
				if _, err := strconv.ParseFloat(f, 64); err != nil {
					numeric = false
					break
				}
			}
			if numeric {
				return FormatEdgeList
			}
		}
		return FormatUnknown
	}
	return FormatUnknown
}

// ReadAuto detects the format of r from its leading bytes and parses it.
// For a snapshot it returns the real input graph — the preserved
// original when the snapshot was packed with shortcuts, else the
// embedded graph — so consumers never mistake synthetic shortcut edges
// for real ones (use ReadSnapshot directly to recover the radii and the
// augmented graph).
func ReadAuto(r io.Reader) (*CSR, Format, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	prefix, err := br.Peek(64 << 10)
	if err != nil && err != io.EOF && err != bufio.ErrBufferFull {
		return nil, FormatUnknown, err
	}
	f := Detect(prefix)
	var g *CSR
	switch f {
	case FormatText:
		g, err = ReadText(br)
	case FormatDIMACS:
		g, err = ReadDIMACS(br)
	case FormatEdgeList:
		g, err = ReadEdgeList(br)
	case FormatBinary:
		g, err = ReadBinary(br)
	case FormatSnapshot:
		var s *Snapshot
		if s, err = ReadSnapshot(br); err == nil {
			g = s.InputGraph()
		}
	default:
		return nil, FormatUnknown, fmt.Errorf("graph: unrecognized graph format")
	}
	if err != nil {
		return nil, f, err
	}
	return g, f, nil
}

// checkWeight rejects weights no shortest-path solve can handle — NaN,
// ±Inf, negative — at parse time, citing the offending line.
func checkWeight(w float64, line int) error {
	switch {
	case math.IsNaN(w):
		return fmt.Errorf("graph: NaN weight at line %d", line)
	case math.IsInf(w, 0):
		return fmt.Errorf("graph: infinite weight at line %d", line)
	case w < 0:
		return fmt.Errorf("graph: negative weight %v at line %d", w, line)
	}
	return nil
}

// ReadDIMACS parses the DIMACS shortest-path format: "c" comment lines,
// one "p sp <n> <m>" problem line, and m arc lines "a <u> <v> <w>" with
// 1-indexed endpoints. DIMACS arcs are directed; this package's graphs
// are undirected, so each arc contributes an undirected edge and the
// usual mutual-arc pairs collapse (keeping the lightest weight when a
// pair disagrees). Self-loops are dropped.
func ReadDIMACS(r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var n, m int
	var edges []Edge
	seenHeader := false
	arcs := 0
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == 'c' {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "p":
			if seenHeader {
				return nil, fmt.Errorf("graph: duplicate problem line at line %d", line)
			}
			if len(fields) != 4 || fields[1] != "sp" {
				return nil, fmt.Errorf("graph: bad problem line at line %d: %q (want \"p sp n m\")", line, text)
			}
			var err error
			if n, err = strconv.Atoi(fields[2]); err != nil {
				return nil, fmt.Errorf("graph: bad vertex count at line %d: %v", line, err)
			}
			if m, err = strconv.Atoi(fields[3]); err != nil {
				return nil, fmt.Errorf("graph: bad arc count at line %d: %v", line, err)
			}
			if n < 0 || m < 0 {
				return nil, fmt.Errorf("graph: negative sizes at line %d: %q", line, text)
			}
			seenHeader = true
			edges = make([]Edge, 0, m)
		case "a":
			if !seenHeader {
				return nil, fmt.Errorf("graph: arc before problem line at line %d", line)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("graph: bad arc at line %d: %q", line, text)
			}
			u, err := strconv.ParseInt(fields[1], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("graph: bad endpoint at line %d: %v", line, err)
			}
			v, err := strconv.ParseInt(fields[2], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("graph: bad endpoint at line %d: %v", line, err)
			}
			w, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: bad weight at line %d: %v", line, err)
			}
			if u < 1 || v < 1 || u > int64(n) || v > int64(n) {
				return nil, fmt.Errorf("graph: arc (%d,%d) out of 1-indexed range [1, %d] at line %d", u, v, n, line)
			}
			if err := checkWeight(w, line); err != nil {
				return nil, err
			}
			edges = append(edges, Edge{V(u - 1), V(v - 1), w})
			arcs++
		default:
			return nil, fmt.Errorf("graph: unknown line type %q at line %d", fields[0], line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !seenHeader {
		return nil, fmt.Errorf("graph: missing DIMACS problem line")
	}
	if arcs != m {
		return nil, fmt.Errorf("graph: problem line declares %d arcs, found %d (last line %d)", m, arcs, line)
	}
	return FromEdges(n, edges), nil
}

// WriteDIMACS serializes g in the DIMACS shortest-path format, emitting
// each undirected edge as the two directed arcs DIMACS expects.
func WriteDIMACS(w io.Writer, g *CSR) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "c radiusstep export\np sp %d %d\n", g.NumVertices(), g.NumArcs()); err != nil {
		return err
	}
	for _, e := range Edges(g) {
		ws := strconv.FormatFloat(e.W, 'g', -1, 64)
		if _, err := fmt.Fprintf(bw, "a %d %d %s\na %d %d %s\n", e.U+1, e.V+1, ws, e.V+1, e.U+1, ws); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses a headerless whitespace- or tab-separated edge
// list: one "u v" or "u v w" line per edge, 0-indexed endpoints, weight
// defaulting to 1. Lines starting with '#' or '%' are comments. The
// vertex count is the largest id seen plus one.
func ReadEdgeList(r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []Edge
	maxID := int64(-1)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 && len(fields) != 3 {
			return nil, fmt.Errorf("graph: bad edge at line %d: %q (want \"u v [w]\")", line, text)
		}
		u, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: bad endpoint at line %d: %v", line, err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: bad endpoint at line %d: %v", line, err)
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graph: negative vertex id at line %d: %q", line, text)
		}
		w := 1.0
		if len(fields) == 3 {
			if w, err = strconv.ParseFloat(fields[2], 64); err != nil {
				return nil, fmt.Errorf("graph: bad weight at line %d: %v", line, err)
			}
			if err := checkWeight(w, line); err != nil {
				return nil, err
			}
		}
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
		edges = append(edges, Edge{V(u), V(v), w})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(edges) == 0 {
		return nil, fmt.Errorf("graph: empty edge list")
	}
	return FromEdges(int(maxID)+1, edges), nil
}

// WriteEdgeList serializes g as tab-separated "u\tv\tw" lines.
func WriteEdgeList(w io.Writer, g *CSR) error {
	bw := bufio.NewWriter(w)
	for _, e := range Edges(g) {
		if _, err := fmt.Fprintf(bw, "%d\t%d\t%s\n", e.U, e.V, strconv.FormatFloat(e.W, 'g', -1, 64)); err != nil {
			return err
		}
	}
	return bw.Flush()
}
