// Package graph provides the weighted undirected graph substrate used by
// every algorithm in this repository: a compressed-sparse-row (CSR)
// representation, an edge-list builder, transforms, validation, and
// serialization.
//
// Conventions: vertices are dense int32 ids in [0, n). Each undirected
// edge {u, v, w} is stored as two directed arcs. Edge weights are
// non-negative float64 values; following the paper, graphs are normalized
// so the lightest non-zero weight is 1, and L denotes the heaviest weight.
//
// # Interchange formats
//
// The package reads and writes five formats, auto-detected by ReadAuto:
//
//   - text (ReadText/WriteText): "p sssp n m" header, 0-indexed
//     "u v w" edge lines — the repo's native interchange format.
//   - dimacs (ReadDIMACS/WriteDIMACS): the DIMACS shortest-path format
//     used by the road-network challenge instances ("p sp n m" header,
//     1-indexed "a u v w" arc lines).
//   - edgelist (ReadEdgeList/WriteEdgeList): headerless whitespace/TSV
//     "u v [w]" lines, the SNAP/web-graph convention; weight defaults
//     to 1.
//   - binary (ReadBinary/WriteBinary): compact binary CSR.
//   - snapshot (ReadSnapshot/WriteSnapshot): the versioned, checksummed
//     persistence format. A snapshot carries the CSR arrays and, when
//     produced by preprocessing, the per-vertex radii, the pre-shortcut
//     original graph, and the (ρ, k, heuristic) parameters — everything
//     a serving process needs to answer queries without re-running the
//     O(m log n + nρ²) preprocessing phase. See Snapshot for the exact
//     byte layout.
//
// All parsers reject NaN, infinite, and negative weights at parse time
// with the offending line number; the binary readers validate magic,
// sizes, and structural invariants, and the snapshot reader additionally
// verifies a CRC-32C checksum so corruption fails loudly at load time.
package graph

import "math"

// V is a vertex identifier.
type V = int32

// CSR is an immutable undirected weighted graph in compressed-sparse-row
// form. Off has length n+1; Adj and W have length 2m and hold, for each
// vertex u, its incident arcs in Adj[Off[u]:Off[u+1]].
type CSR struct {
	Off []int64
	Adj []V
	W   []float64

	// Whole-graph statistics, computed once at construction (finalize).
	// Hot paths consult them per solve — DefaultDelta reads MaxWeight on
	// the daemon's query path — so they must not cost an O(m) scan each
	// time. hasStats guards hand-built literals (tests, external
	// construction), which fall back to scanning.
	hasStats   bool
	maxW, minW float64
	maxDeg     int
}

// finalize memoizes the whole-graph statistics. Every constructor in
// this package calls it; the immutability convention (nobody mutates a
// built CSR's arrays) keeps the cache coherent for the graph's lifetime.
func (g *CSR) finalize() *CSR {
	g.maxW, g.minW = 0, math.Inf(1)
	for _, w := range g.W {
		if w > g.maxW {
			g.maxW = w
		}
		if w < g.minW {
			g.minW = w
		}
	}
	g.maxDeg = 0
	for u := 0; u < g.NumVertices(); u++ {
		if d := g.Degree(V(u)); d > g.maxDeg {
			g.maxDeg = d
		}
	}
	g.hasStats = true
	return g
}

// NumVertices returns n.
func (g *CSR) NumVertices() int { return len(g.Off) - 1 }

// NumArcs returns the number of directed arcs (2m for an undirected graph).
func (g *CSR) NumArcs() int { return len(g.Adj) }

// NumEdges returns the number of undirected edges m.
func (g *CSR) NumEdges() int { return len(g.Adj) / 2 }

// Degree returns the number of arcs out of u.
func (g *CSR) Degree(u V) int { return int(g.Off[u+1] - g.Off[u]) }

// Neighbors returns the adjacency and weight slices of u. The returned
// slices alias the graph and must not be modified.
func (g *CSR) Neighbors(u V) ([]V, []float64) {
	lo, hi := g.Off[u], g.Off[u+1]
	return g.Adj[lo:hi], g.W[lo:hi]
}

// MaxWeight returns L, the largest edge weight (0 for an edgeless graph).
// O(1) on constructor-built graphs (memoized at construction).
func (g *CSR) MaxWeight() float64 {
	if g.hasStats {
		return g.maxW
	}
	maxW := 0.0
	for _, w := range g.W {
		if w > maxW {
			maxW = w
		}
	}
	return maxW
}

// MinWeight returns the smallest edge weight (+Inf for an edgeless graph).
// O(1) on constructor-built graphs.
func (g *CSR) MinWeight() float64 {
	if g.hasStats {
		return g.minW
	}
	minW := math.Inf(1)
	for _, w := range g.W {
		if w < minW {
			minW = w
		}
	}
	return minW
}

// IsUnit reports whether every edge weight equals 1 (vacuously true for
// an edgeless graph). O(1) on constructor-built graphs.
func (g *CSR) IsUnit() bool {
	if g.hasStats {
		return len(g.W) == 0 || (g.minW == 1 && g.maxW == 1)
	}
	for _, w := range g.W {
		if w != 1 {
			return false
		}
	}
	return true
}

// MaxDegree returns the largest vertex degree. O(1) on constructor-built
// graphs.
func (g *CSR) MaxDegree() int {
	if g.hasStats {
		return g.maxDeg
	}
	best := 0
	for u := 0; u < g.NumVertices(); u++ {
		if d := g.Degree(V(u)); d > best {
			best = d
		}
	}
	return best
}

// Clone returns a deep copy of g.
func (g *CSR) Clone() *CSR {
	c := &CSR{
		Off: make([]int64, len(g.Off)),
		Adj: make([]V, len(g.Adj)),
		W:   make([]float64, len(g.W)),
		// The copy has identical arrays, so the memoized statistics carry
		// over instead of being rescanned.
		hasStats: g.hasStats,
		maxW:     g.maxW,
		minW:     g.minW,
		maxDeg:   g.maxDeg,
	}
	copy(c.Off, g.Off)
	copy(c.Adj, g.Adj)
	copy(c.W, g.W)
	if !c.hasStats {
		c.finalize()
	}
	return c
}
