package graph

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// fullSnapshot builds a snapshot carrying every optional section —
// radii, original graph, permutation, landmarks — so truncation can be
// exercised at every section boundary of the format.
func fullSnapshot(t *testing.T) *Snapshot {
	t.Helper()
	g := randomCSR(24, 48, 7)
	n := g.NumVertices()
	radii := make([]float64, n)
	for i := range radii {
		radii[i] = float64(i % 5)
	}
	perm := make([]V, n)
	for i := range perm {
		perm[i] = V((i + 3) % n)
	}
	lms := []V{1, 5, 9}
	lmDist := make([]float64, len(lms)*n)
	for i, lm := range lms {
		for v := 0; v < n; v++ {
			lmDist[i*n+v] = float64((v + int(lm)) % 11)
		}
		lmDist[i*n+int(lm)] = 0
	}
	return &Snapshot{
		G:            g,
		Original:     randomCSR(n, 30, 8),
		Radii:        radii,
		Rho:          16,
		K:            2,
		Heuristic:    "direct",
		Perm:         perm,
		Landmarks:    lms,
		LandmarkDist: lmDist,
	}
}

// TestSnapshotTruncationBoundaries cuts a full-featured snapshot at
// every section boundary (and one word into each section) and asserts
// the loader classifies each cut as ErrSnapshotTruncated on the stream
// path — never a panic, a silent short read, or an unclassified error —
// and that the sized file path also returns a typed, quarantinable
// error (truncated, or corrupt when only the byte count betrays the
// cut, e.g. a partial landmark vector).
func TestSnapshotTruncationBoundaries(t *testing.T) {
	s := fullSnapshot(t)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, s); err != nil {
		t.Fatalf("write: %v", err)
	}
	raw := buf.Bytes()

	n := s.G.NumVertices()
	arcs := s.G.NumArcs()
	origArcs := s.Original.NumArcs()
	lmK := len(s.Landmarks)

	// Cumulative section offsets, mirroring the layout comment on
	// Snapshot. A mismatch with the real writer shows up as the final
	// "checksum" boundary landing off the end of raw.
	header := 52 + len(s.Heuristic)
	csrOff := header + (n+1)*8
	csrAdj := csrOff + arcs*4
	csrW := csrAdj + arcs*8
	radii := csrW + n*8
	origOff := radii + (n+1)*8
	origAdj := origOff + origArcs*4
	origW := origAdj + origArcs*8
	perm := origW + n*4
	lmCount := perm + 4
	lmVerts := lmCount + lmK*4
	lmDist := lmVerts + lmK*n*8
	checksum := lmDist + 4
	if checksum != len(raw) {
		t.Fatalf("layout drift: computed total %d, snapshot is %d bytes", checksum, len(raw))
	}

	cases := []struct {
		name string
		cut  int
	}{
		{"empty", 0},
		{"mid-header", 20},
		{"end-of-header", header},
		{"mid-CSR-offsets", header + 8},
		{"end-of-CSR-offsets", csrOff},
		{"mid-CSR-adjacency", csrOff + 4},
		{"end-of-CSR-adjacency", csrAdj},
		{"mid-CSR-weights", csrAdj + 8},
		{"end-of-CSR", csrW},
		{"mid-radii", csrW + 8},
		{"end-of-radii", radii},
		{"mid-original-CSR", radii + 8},
		{"end-of-original", origW},
		{"mid-permutation", origW + 4},
		{"end-of-permutation", perm},
		{"mid-landmark-count", perm + 2},
		{"end-of-landmark-count", lmCount},
		{"mid-landmark-vertices", lmCount + 4},
		{"end-of-landmark-vertices", lmVerts},
		{"mid-landmark-vectors", lmVerts + 8},
		{"end-of-payload", lmDist},
		{"mid-checksum", lmDist + 2},
	}
	dir := t.TempDir()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cut := raw[:tc.cut]
			// Stream path: no size hint, so every cut surfaces as a
			// short read inside some section.
			if _, err := ReadSnapshot(bytes.NewReader(cut)); !errors.Is(err, ErrSnapshotTruncated) {
				t.Fatalf("ReadSnapshot(cut at %d): err = %v, want ErrSnapshotTruncated", tc.cut, err)
			}
			// Sized path: the declared sizes are checked against the
			// file length before allocation, so truncation is caught up
			// front. Cuts inside the landmark section can only be told
			// apart from a wrong-sized section by the byte count, so
			// corrupt is an acceptable class there — but the error must
			// always be one of the two quarantinable classes.
			path := filepath.Join(dir, "cut.snap")
			if err := os.WriteFile(path, cut, 0o644); err != nil {
				t.Fatal(err)
			}
			_, _, err := ReadSnapshotFile(path)
			if !errors.Is(err, ErrSnapshotTruncated) && !errors.Is(err, ErrSnapshotCorrupt) {
				t.Fatalf("ReadSnapshotFile(cut at %d): err = %v, want truncated or corrupt", tc.cut, err)
			}
		})
	}
}

// TestSnapshotErrorClassification pins the two error classes apart: a
// short file is truncated (re-fetch fixes it), a bit flip in a complete
// file is corrupt (rebuild needed). Registry quarantine reporting
// depends on this distinction.
func TestSnapshotErrorClassification(t *testing.T) {
	s := fullSnapshot(t)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, s); err != nil {
		t.Fatalf("write: %v", err)
	}
	raw := buf.Bytes()

	if _, err := ReadSnapshot(bytes.NewReader(raw[:len(raw)/2])); !errors.Is(err, ErrSnapshotTruncated) {
		t.Fatalf("half file: err = %v, want ErrSnapshotTruncated", err)
	}
	if _, err := ReadSnapshot(bytes.NewReader(raw[:len(raw)/2])); errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatal("half file classified corrupt: the classes must be disjoint")
	}

	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)-10] ^= 1 // inside the landmark matrix: checksum catches it
	if _, err := ReadSnapshot(bytes.NewReader(flipped)); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("bit flip: err = %v, want ErrSnapshotCorrupt", err)
	}
	if _, err := ReadSnapshot(bytes.NewReader(flipped)); errors.Is(err, ErrSnapshotTruncated) {
		t.Fatal("bit flip classified truncated: the classes must be disjoint")
	}

	// The sized file path keeps the classification.
	dir := t.TempDir()
	torn := filepath.Join(dir, "torn.snap")
	if err := os.WriteFile(torn, raw[:len(raw)-8], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadSnapshotFile(torn); !errors.Is(err, ErrSnapshotTruncated) && !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("torn file: err = %v, want a typed class", err)
	}
	bad := filepath.Join(dir, "bad.snap")
	if err := os.WriteFile(bad, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadSnapshotFile(bad); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("flipped file: err = %v, want ErrSnapshotCorrupt", err)
	}
}

// TestAtomicWriteFileCleanup asserts the failure contract: an aborted
// write leaves no temp litter and never touches an existing destination.
func TestAtomicWriteFileCleanup(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.snap")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	wantErr := errors.New("payload failed")
	err := AtomicWriteFile(path, func(w io.Writer) error {
		w.Write([]byte("partial"))
		return wantErr
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "old" {
		t.Fatalf("destination disturbed: %q, %v", got, err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("temp litter left behind: %v", ents)
	}
}
