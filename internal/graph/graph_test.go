package graph

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func triangle() *CSR {
	b := NewBuilder(3)
	b.Add(0, 1, 1)
	b.Add(1, 2, 2)
	b.Add(0, 2, 4)
	return b.Build()
}

func TestBuilderBasics(t *testing.T) {
	g := triangle()
	if g.NumVertices() != 3 || g.NumEdges() != 3 || g.NumArcs() != 6 {
		t.Fatalf("sizes: n=%d m=%d arcs=%d", g.NumVertices(), g.NumEdges(), g.NumArcs())
	}
	if g.Degree(0) != 2 || g.Degree(1) != 2 || g.Degree(2) != 2 {
		t.Fatal("degrees wrong")
	}
	if err := Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderDropsSelfLoops(t *testing.T) {
	b := NewBuilder(2)
	b.Add(0, 0, 1)
	b.Add(0, 1, 1)
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("m = %d, want 1", g.NumEdges())
	}
}

func TestBuilderMergesParallelEdgesKeepingMin(t *testing.T) {
	b := NewBuilder(2)
	b.Add(0, 1, 5)
	b.Add(1, 0, 2)
	b.Add(0, 1, 9)
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("m = %d, want 1", g.NumEdges())
	}
	if w, ok := EdgeWeight(g, 0, 1); !ok || w != 2 {
		t.Fatalf("weight = %v,%v, want 2", w, ok)
	}
	if err := Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderPanicsOnBadInput(t *testing.T) {
	for name, fn := range map[string]func(){
		"range":    func() { b := NewBuilder(2); b.Add(0, 2, 1) },
		"negative": func() { b := NewBuilder(2); b.Add(0, 1, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestWeightQueries(t *testing.T) {
	g := triangle()
	if g.MaxWeight() != 4 || g.MinWeight() != 1 {
		t.Fatalf("max=%v min=%v", g.MaxWeight(), g.MinWeight())
	}
	if g.IsUnit() {
		t.Fatal("triangle is not unit")
	}
	if g.MaxDegree() != 2 {
		t.Fatalf("maxdeg = %d", g.MaxDegree())
	}
	if !HasEdge(g, 1, 2) || HasEdge(g, 1, 1) {
		t.Fatal("HasEdge wrong")
	}
}

func TestEmptyAndEdgelessGraphs(t *testing.T) {
	g := FromEdges(5, nil)
	if g.NumVertices() != 5 || g.NumEdges() != 0 {
		t.Fatal("edgeless graph wrong")
	}
	if err := Validate(g); err != nil {
		t.Fatal(err)
	}
	if g.MaxWeight() != 0 || !math.IsInf(g.MinWeight(), 1) {
		t.Fatal("edgeless weight queries wrong")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := triangle()
	c := g.Clone()
	c.W[0] = 99
	if g.W[0] == 99 {
		t.Fatal("Clone shares storage")
	}
}

func TestAddShortcuts(t *testing.T) {
	g := triangle()
	g2 := AddShortcuts(g, []Edge{{0, 2, 3}, {1, 2, 7}})
	// (0,2) lowered from 4 to 3; (1,2) stays 2 (min rule).
	if w, _ := EdgeWeight(g2, 0, 2); w != 3 {
		t.Fatalf("(0,2) = %v, want 3", w)
	}
	if w, _ := EdgeWeight(g2, 1, 2); w != 2 {
		t.Fatalf("(1,2) = %v, want 2", w)
	}
	if g2.NumEdges() != 3 {
		t.Fatalf("m = %d, want 3", g2.NumEdges())
	}
	if err := Validate(g2); err != nil {
		t.Fatal(err)
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	g := triangle()
	es := Edges(g)
	if len(es) != 3 {
		t.Fatalf("edges = %d", len(es))
	}
	g2 := FromEdges(3, es)
	if SameGraph(g, g2) != true {
		t.Fatal("edge-list round trip changed the graph")
	}
}

// SameGraph compares two CSRs structurally (test helper).
func SameGraph(a, b *CSR) bool {
	if a.NumVertices() != b.NumVertices() || len(a.Adj) != len(b.Adj) {
		return false
	}
	for i := range a.Off {
		if a.Off[i] != b.Off[i] {
			return false
		}
	}
	for i := range a.Adj {
		if a.Adj[i] != b.Adj[i] || a.W[i] != b.W[i] {
			return false
		}
	}
	return true
}

func TestComponents(t *testing.T) {
	b := NewBuilder(6)
	b.Add(0, 1, 1)
	b.Add(1, 2, 1)
	b.Add(3, 4, 1)
	g := b.Build() // components {0,1,2}, {3,4}, {5}
	_, count := Components(g)
	if count != 3 {
		t.Fatalf("components = %d, want 3", count)
	}
	if IsConnected(g) {
		t.Fatal("disconnected graph reported connected")
	}
	lc, ids := LargestComponent(g)
	if lc.NumVertices() != 3 || lc.NumEdges() != 2 {
		t.Fatalf("largest component n=%d m=%d", lc.NumVertices(), lc.NumEdges())
	}
	if len(ids) != 3 || ids[0] != 0 {
		t.Fatalf("ids = %v", ids)
	}
	if !IsConnected(lc) {
		t.Fatal("largest component should be connected")
	}
}

func TestLargestComponentConnectedInput(t *testing.T) {
	g := triangle()
	lc, ids := LargestComponent(g)
	if !SameGraph(g, lc) {
		t.Fatal("connected input should round-trip")
	}
	if len(ids) != 3 {
		t.Fatalf("ids = %v", ids)
	}
}

func TestReweightAndUnitWeights(t *testing.T) {
	g := triangle()
	u := UnitWeights(g)
	if !u.IsUnit() {
		t.Fatal("UnitWeights not unit")
	}
	if u.NumEdges() != g.NumEdges() {
		t.Fatal("UnitWeights changed topology")
	}
	dbl := Reweight(g, func(_, _ V, w float64) float64 { return 2 * w })
	if w, _ := EdgeWeight(dbl, 0, 2); w != 8 {
		t.Fatalf("reweight = %v", w)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := triangle()
	bad := g.Clone()
	bad.W[0] = -1
	if err := Validate(bad); err == nil {
		t.Fatal("negative weight not caught")
	}
	bad2 := g.Clone()
	bad2.Adj[0] = 77
	if err := Validate(bad2); err == nil {
		t.Fatal("out-of-range target not caught")
	}
	// Asymmetric weight.
	bad3 := g.Clone()
	for i := bad3.Off[0]; i < bad3.Off[1]; i++ {
		if bad3.Adj[i] == 1 {
			bad3.W[i] = 100
		}
	}
	if err := Validate(bad3); err == nil {
		t.Fatal("asymmetric weight not caught")
	}
}

func TestTextRoundTrip(t *testing.T) {
	g := triangle()
	var buf bytes.Buffer
	if err := WriteText(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !SameGraph(g, g2) {
		t.Fatal("text round trip changed the graph")
	}
}

func TestTextComments(t *testing.T) {
	in := "# comment\nc another\np sssp 2 1\n0 1 2.5\n"
	g, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if w, _ := EdgeWeight(g, 0, 1); w != 2.5 {
		t.Fatalf("weight = %v", w)
	}
}

func TestTextErrors(t *testing.T) {
	cases := []string{
		"",                         // no header
		"p wrong 2 1\n0 1 1\n",     // bad kind
		"p sssp 2 1\n0 5 1\n",      // endpoint out of range
		"p sssp 2 1\n0 1 -3\n",     // negative weight
		"p sssp 2 2\n0 1 1\n",      // count mismatch
		"p sssp 2 1\n0 1\n",        // missing field
		"p sssp 2 1\nnope nah 1\n", // garbage
	}
	for _, c := range cases {
		if _, err := ReadText(strings.NewReader(c)); err == nil {
			t.Errorf("input %q: expected error", c)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	g := triangle()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !SameGraph(g, g2) {
		t.Fatal("binary round trip changed the graph")
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("not a graph at all........"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

// TestQuickFromEdges: arbitrary edge lists produce valid graphs whose
// metric keeps the minimum parallel-edge weight.
func TestQuickFromEdges(t *testing.T) {
	f := func(raw []struct {
		U, V uint8
		W    uint16
	}) bool {
		n := 40
		var edges []Edge
		for _, r := range raw {
			edges = append(edges, Edge{V(r.U % 40), V(r.V % 40), float64(r.W)})
		}
		g := FromEdges(n, edges)
		if err := Validate(g); err != nil {
			return false
		}
		// Every non-loop input edge must be present with weight <= input.
		for _, e := range edges {
			if e.U == e.V {
				continue
			}
			w, ok := EdgeWeight(g, e.U, e.V)
			if !ok || w > e.W {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestStatsMemoization: the memoized whole-graph statistics agree with
// a hand-built (unfinalized) literal's scanning fallback.
func TestStatsMemoization(t *testing.T) {
	built := FromEdges(4, []Edge{{U: 0, V: 1, W: 2}, {U: 1, V: 2, W: 5}, {U: 1, V: 3, W: 0.5}})
	literal := &CSR{Off: built.Off, Adj: built.Adj, W: built.W} // no finalize: fallback path
	if built.MaxWeight() != literal.MaxWeight() || built.MaxWeight() != 5 {
		t.Fatalf("MaxWeight memo %v, scan %v", built.MaxWeight(), literal.MaxWeight())
	}
	if built.MinWeight() != literal.MinWeight() || built.MinWeight() != 0.5 {
		t.Fatalf("MinWeight memo %v, scan %v", built.MinWeight(), literal.MinWeight())
	}
	if built.MaxDegree() != literal.MaxDegree() || built.MaxDegree() != 3 {
		t.Fatalf("MaxDegree memo %v, scan %v", built.MaxDegree(), literal.MaxDegree())
	}
	if built.IsUnit() || literal.IsUnit() {
		t.Fatal("IsUnit true on non-unit graph")
	}
	unit := FromEdges(3, []Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}})
	if !unit.IsUnit() {
		t.Fatal("IsUnit false on unit graph")
	}
	empty := FromEdges(2, nil)
	if !empty.IsUnit() || empty.MaxWeight() != 0 || !math.IsInf(empty.MinWeight(), 1) {
		t.Fatal("edgeless-graph stats wrong")
	}
}
