package graph

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestDIMACSRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := randomCSR(40+int(seed)*7, 90, seed)
		var buf bytes.Buffer
		if err := WriteDIMACS(&buf, g); err != nil {
			t.Fatalf("seed %d: write: %v", seed, err)
		}
		got, err := ReadDIMACS(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: read: %v", seed, err)
		}
		if !reflect.DeepEqual(got, g) {
			t.Fatalf("seed %d: round trip mismatch", seed)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := randomCSR(40+int(seed)*7, 90, seed)
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("seed %d: write: %v", seed, err)
		}
		got, err := ReadEdgeList(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: read: %v", seed, err)
		}
		// randomCSR's spanning-tree edges guarantee vertex n-1 appears,
		// so the headerless format recovers the exact vertex count.
		if !reflect.DeepEqual(got, g) {
			t.Fatalf("seed %d: round trip mismatch", seed)
		}
	}
}

func TestTextRoundTripRandom(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := randomCSR(40+int(seed)*7, 90, seed)
		var buf bytes.Buffer
		if err := WriteText(&buf, g); err != nil {
			t.Fatalf("seed %d: write: %v", seed, err)
		}
		got, err := ReadText(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: read: %v", seed, err)
		}
		if !reflect.DeepEqual(got, g) {
			t.Fatalf("seed %d: round trip mismatch", seed)
		}
	}
}

func TestReadDIMACSFixture(t *testing.T) {
	// 1-indexed arcs, comments, a mutual arc pair, and a weight conflict
	// (the lighter direction wins, keeping the graph undirected-simple).
	in := `c tiny road fragment
p sp 4 5
a 1 2 3
a 2 1 3
c interleaved comment
a 2 3 5
a 3 2 4
a 1 4 2.5
`
	g, err := ReadDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadDIMACS: %v", err)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 3 {
		t.Fatalf("got n=%d m=%d, want n=4 m=3", g.NumVertices(), g.NumEdges())
	}
	if w, ok := EdgeWeight(g, 1, 2); !ok || w != 4 {
		t.Fatalf("edge {1,2}: w=%v ok=%v, want min-merged 4", w, ok)
	}
	if w, ok := EdgeWeight(g, 0, 3); !ok || w != 2.5 {
		t.Fatalf("edge {0,3}: w=%v ok=%v, want 2.5", w, ok)
	}
}

func TestReadDIMACSErrors(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"no header", "a 1 2 3\n", "line 1"},
		{"zero index", "p sp 3 1\na 0 2 1\n", "line 2"},
		{"over range", "p sp 3 1\na 1 4 1\n", "line 2"},
		{"nan weight", "p sp 3 1\na 1 2 NaN\n", "NaN weight at line 2"},
		{"inf weight", "p sp 3 1\na 1 2 +Inf\n", "infinite weight at line 2"},
		{"neg weight", "p sp 3 1\na 1 2 -4\n", "negative weight"},
		{"arc count", "p sp 3 2\na 1 2 1\n", "declares 2 arcs, found 1"},
		{"bad kind", "p max 3 1\na 1 2 1\n", "problem line"},
		{"junk line", "p sp 3 1\nz 1 2\n", "unknown line type"},
	}
	for _, tc := range cases {
		_, err := ReadDIMACS(strings.NewReader(tc.in))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestReadEdgeListFixture(t *testing.T) {
	in := "# comment\n% another\n0\t3\t2.5\n1 2\n3 1 4\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadEdgeList: %v", err)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 3 {
		t.Fatalf("got n=%d m=%d, want n=4 m=3", g.NumVertices(), g.NumEdges())
	}
	if w, ok := EdgeWeight(g, 1, 2); !ok || w != 1 {
		t.Fatalf("weightless edge {1,2}: w=%v ok=%v, want default 1", w, ok)
	}
}

// ReadText must reject unusable weights at parse time with the line
// number, rather than letting NaN poison a solve later.
func TestReadTextRejectsBadWeights(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"nan", "p sssp 3 1\n0 1 NaN\n", "NaN weight at line 2"},
		{"inf", "p sssp 3 1\n0 1 Inf\n", "infinite weight at line 2"},
		{"neg", "p sssp 3 1\n0 1 -2\n", "negative weight -2 at line 2"},
		{"range", "p sssp 3 1\n0 7 1\n", "out of range [0, 3) at line 2"},
		{"fields", "p sssp 3 1\n0 1\n", "bad edge at line 2"},
		{"count", "p sssp 3 2\n0 1 1\n", "declares 2 edges, found 1"},
	}
	for _, tc := range cases {
		_, err := ReadText(strings.NewReader(tc.in))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestDetect(t *testing.T) {
	g := randomCSR(20, 40, 9)
	var snap, bin bytes.Buffer
	if err := WriteSnapshot(&snap, &Snapshot{G: g}); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&bin, g); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		prefix []byte
		want   Format
	}{
		{snap.Bytes()[:16], FormatSnapshot},
		{bin.Bytes()[:16], FormatBinary},
		{[]byte("c comment\np sssp 10 2\n0 1 5\n"), FormatText},
		{[]byte("c road net\np sp 10 4\na 1 2 5\n"), FormatDIMACS},
		{[]byte("a 1 2 5\na 2 1 5\n"), FormatDIMACS},
		{[]byte("# snap export\n0\t1\t2.5\n"), FormatEdgeList},
		{[]byte("17 42\n"), FormatEdgeList},
		{[]byte("hello world graph\n"), FormatUnknown},
		{[]byte(""), FormatUnknown},
	}
	for i, tc := range cases {
		if got := Detect(tc.prefix); got != tc.want {
			t.Fatalf("case %d: Detect = %v, want %v", i, got, tc.want)
		}
	}
}

func TestReadAuto(t *testing.T) {
	g := randomCSR(30, 60, 11)
	radii := make([]float64, g.NumVertices())
	writers := []struct {
		format Format
		write  func(*bytes.Buffer) error
	}{
		{FormatText, func(b *bytes.Buffer) error { return WriteText(b, g) }},
		{FormatDIMACS, func(b *bytes.Buffer) error { return WriteDIMACS(b, g) }},
		{FormatEdgeList, func(b *bytes.Buffer) error { return WriteEdgeList(b, g) }},
		{FormatBinary, func(b *bytes.Buffer) error { return WriteBinary(b, g) }},
		{FormatSnapshot, func(b *bytes.Buffer) error {
			return WriteSnapshot(b, &Snapshot{G: g, Radii: radii, Rho: 8, K: 1, Heuristic: "direct"})
		}},
	}
	for _, tc := range writers {
		var buf bytes.Buffer
		if err := tc.write(&buf); err != nil {
			t.Fatalf("%v: write: %v", tc.format, err)
		}
		got, f, err := ReadAuto(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%v: ReadAuto: %v", tc.format, err)
		}
		if f != tc.format {
			t.Fatalf("detected %v, want %v", f, tc.format)
		}
		if !reflect.DeepEqual(got, g) {
			t.Fatalf("%v: graph mismatch after ReadAuto", tc.format)
		}
	}
	if _, _, err := ReadAuto(strings.NewReader("what even is this\n")); err == nil {
		t.Fatal("garbage input accepted")
	}
}

// A packed snapshot read as "a graph" must yield the preserved original,
// never the shortcut-augmented graph.
func TestReadAutoSnapshotReturnsOriginal(t *testing.T) {
	aug := randomCSR(20, 60, 12)
	orig := randomCSR(20, 15, 13)
	var buf bytes.Buffer
	s := &Snapshot{G: aug, Original: orig, Radii: make([]float64, 20), Rho: 4, K: 1, Heuristic: "direct"}
	if err := WriteSnapshot(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, f, err := ReadAuto(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadAuto: %v", err)
	}
	if f != FormatSnapshot || !reflect.DeepEqual(got, orig) {
		t.Fatalf("ReadAuto returned the augmented graph (format %v)", f)
	}
}
