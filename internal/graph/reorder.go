package graph

import (
	"fmt"
	"sort"
)

// Relabeling utilities. Vertex order strongly affects cache locality of
// CSR traversals: BFS order places topological neighborhoods together
// (good for road networks and grids), degree order places hubs first
// (good for scale-free graphs). Both transforms preserve the graph up to
// isomorphism; distances permute accordingly.

// ApplyOrder relabels g by the permutation perm, where perm[old] = new.
// It panics if perm is not a permutation of [0, n).
func ApplyOrder(g *CSR, perm []V) *CSR {
	n := g.NumVertices()
	if len(perm) != n {
		panic("graph: permutation length mismatch")
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || int(p) >= n || seen[p] {
			panic("graph: not a permutation")
		}
		seen[p] = true
	}
	edges := make([]Edge, 0, g.NumEdges())
	for u := 0; u < n; u++ {
		adj, ws := g.Neighbors(V(u))
		for i, v := range adj {
			if V(u) < v {
				edges = append(edges, Edge{perm[u], perm[v], ws[i]})
			}
		}
	}
	return FromEdges(n, edges)
}

// BFSOrder returns a permutation relabeling vertices in breadth-first
// discovery order from root, with unreached vertices appended in id
// order. perm[old] = new.
func BFSOrder(g *CSR, root V) []V {
	n := g.NumVertices()
	perm := make([]V, n)
	for i := range perm {
		perm[i] = -1
	}
	next := V(0)
	assign := func(v V) {
		perm[v] = next
		next++
	}
	frontier := []V{root}
	assign(root)
	for len(frontier) > 0 {
		var nf []V
		for _, u := range frontier {
			adj, _ := g.Neighbors(u)
			for _, v := range adj {
				if perm[v] == -1 {
					assign(v)
					nf = append(nf, v)
				}
			}
		}
		frontier = nf
	}
	for v := 0; v < n; v++ {
		if perm[v] == -1 {
			assign(V(v))
		}
	}
	return perm
}

// DegreeOrder returns a permutation placing vertices in descending
// degree order (ties by original id), so hubs get small ids and cluster
// at the front of the arrays.
func DegreeOrder(g *CSR) []V {
	n := g.NumVertices()
	byDeg := make([]V, n)
	for i := range byDeg {
		byDeg[i] = V(i)
	}
	sort.Slice(byDeg, func(i, j int) bool {
		di, dj := g.Degree(byDeg[i]), g.Degree(byDeg[j])
		if di != dj {
			return di > dj
		}
		return byDeg[i] < byDeg[j]
	})
	perm := make([]V, n)
	for newID, old := range byDeg {
		perm[old] = V(newID)
	}
	return perm
}

// ReorderBFS relabels g in BFS order from root and returns the new graph
// with the permutation used (perm[old] = new).
func ReorderBFS(g *CSR, root V) (*CSR, []V) {
	perm := BFSOrder(g, root)
	return ApplyOrder(g, perm), perm
}

// ReorderByDegree relabels g in descending-degree order.
func ReorderByDegree(g *CSR) (*CSR, []V) {
	perm := DegreeOrder(g)
	return ApplyOrder(g, perm), perm
}

// PermuteFloats rearranges values so out[perm[i]] = in[i]; the inverse
// mapping for distance vectors across a relabeling.
func PermuteFloats(in []float64, perm []V) []float64 {
	out := make([]float64, len(in))
	for i, p := range perm {
		out[p] = in[i]
	}
	return out
}

// UnpermuteFloats maps a relabeled-id value vector back to original
// ids: out[old] = in[perm[old]]. It is the inverse of PermuteFloats and
// the operation a server answering queries over a reordered graph
// applies to every distance vector before returning it.
func UnpermuteFloats(in []float64, perm []V) []float64 {
	out := make([]float64, len(in))
	for i, p := range perm {
		out[i] = in[p]
	}
	return out
}

// InvertPerm returns the inverse permutation: inv[perm[old]] = old, so
// inv maps relabeled ids back to original ids.
func InvertPerm(perm []V) []V {
	inv := make([]V, len(perm))
	for old, p := range perm {
		inv[p] = V(old)
	}
	return inv
}

// OrderByName computes the relabeling permutation for a named order:
// "bfs" (breadth-first from vertex 0 — topological locality, best for
// road networks and grids), "degree" (hubs first — best for scale-free
// graphs), or "none"/"" (nil permutation, keep ids). The name set is
// what cmd/graphpack's -order flag accepts.
func OrderByName(g *CSR, name string) ([]V, error) {
	switch name {
	case "", "none":
		return nil, nil
	case "bfs":
		if g.NumVertices() == 0 {
			return nil, nil
		}
		return BFSOrder(g, 0), nil
	case "degree":
		return DegreeOrder(g), nil
	default:
		return nil, fmt.Errorf("graph: unknown vertex order %q (want bfs|degree|none)", name)
	}
}
