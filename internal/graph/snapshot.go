package graph

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
)

// Snapshot load failures come in two distinct shapes and callers treat
// them differently, so the loader classifies every error it returns:
//
//   - ErrSnapshotTruncated: the file ends before its declared payload —
//     a crash mid-write by a writer that bypassed AtomicWriteFile, a
//     partial copy, a torn download. The original file may still exist
//     elsewhere; re-fetching is the likely fix.
//   - ErrSnapshotCorrupt: the bytes are all there but wrong — a failed
//     checksum, a bit flip, an invariant violation. Re-reading will not
//     help; the artifact must be rebuilt.
//
// A serving registry quarantines both (the graph keeps its old epoch),
// but the operator-facing health report names the class so the fix is
// obvious from /v1/graphs alone.
var (
	ErrSnapshotTruncated = errors.New("snapshot truncated")
	ErrSnapshotCorrupt   = errors.New("snapshot corrupt")
)

// snapReadErr classifies a section-read failure: a short read means the
// file ends inside the section (truncation); any other IO error passes
// through unclassified.
func snapReadErr(section string, err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("graph: %w in %s", ErrSnapshotTruncated, section)
	}
	return fmt.Errorf("graph: snapshot %s: %w", section, err)
}

// snapCorruptf builds a corruption error: the bytes were readable but
// violate a structural invariant of the format.
func snapCorruptf(format string, args ...any) error {
	return fmt.Errorf("graph: %w: %s", ErrSnapshotCorrupt, fmt.Sprintf(format, args...))
}

// Snapshot is the on-disk unit of graph persistence: a CSR graph plus,
// optionally, the artifacts of (k, ρ)-preprocessing — the per-vertex
// radii and the pre-shortcut original graph — and the parameters they
// were produced with. A snapshot whose Radii are present lets a serving
// process skip preprocessing entirely on startup: Step 1 of the paper is
// paid once by the packer and amortized across every process that loads
// the file.
//
// Layout (all integers little-endian; see WriteSnapshot):
//
//	magic    uint64  "RSSNAP01"
//	version  uint32  currently 1
//	flags    uint32  bit 0: radii present; bit 1: original graph present;
//	                 bit 2: relabeling permutation present;
//	                 bit 3: ALT landmark vectors present
//	n        uint64  vertex count
//	arcs     uint64  arc count of G (2m)
//	origArcs uint64  arc count of Original (0 when absent)
//	rho      uint32  ρ used to derive the radii (0 = not preprocessed)
//	k        uint32  hop budget k (0 = not preprocessed)
//	hlen     uint32  length of the heuristic name
//	heuristic [hlen]byte
//	Off      [n+1]int64
//	Adj      [arcs]int32
//	W        [arcs]float64
//	Radii    [n]float64         (iff flag bit 0)
//	origOff  [n+1]int64         (iff flag bit 1)
//	origAdj  [origArcs]int32    (iff flag bit 1)
//	origW    [origArcs]float64  (iff flag bit 1)
//	Perm     [n]int32           (iff flag bit 2)
//	lmK      uint32             (iff flag bit 3)
//	LmVerts  [lmK]int32         (iff flag bit 3)
//	LmDist   [lmK*n]float64     (iff flag bit 3, landmark-major rows)
//	checksum uint32  CRC-32C (Castagnoli) of everything above
//
// Readers that predate a flag bit reject files carrying it (unknown
// flags fail loudly), so adding the optional permutation section did not
// need a version bump: old files remain readable, new files cannot be
// silently misread.
//
// Arrays are written and read as whole slices with encoding/binary, so a
// multi-million-edge graph loads in milliseconds rather than the seconds
// a line-by-line text parse takes.
type Snapshot struct {
	// G is the query graph. When Original is present, G is the augmented
	// (k, ρ)-graph (input plus shortcut edges).
	G *CSR
	// Original is the pre-shortcut input graph, kept so path
	// reconstruction can return routes over real edges only. Optional.
	Original *CSR
	// Radii holds r_ρ(v) for every vertex of G. Optional: a snapshot
	// written by a pure format conversion has none, and the loader must
	// preprocess. When present, len(Radii) == G.NumVertices().
	Radii []float64
	// Rho and K record the preprocessing parameters the radii were
	// derived with (zero when Radii is nil).
	Rho, K int
	// Heuristic names the shortcut heuristic ("direct", "greedy", "dp";
	// empty when Radii is nil).
	Heuristic string
	// Perm records the cache-locality relabeling applied at pack time
	// (perm[original] = stored id), when the packer reordered the graph.
	// G, Original, and Radii are all in stored-id space; a server must
	// map query sources through Perm and returned distances back through
	// its inverse so clients keep using original ids. Nil when the graph
	// was packed in its input order.
	Perm []V
	// Landmarks lists the ALT landmark vertices whose full distance
	// vectors ride in LandmarkDist, so a loaded solver can serve
	// goal-directed route queries without re-solving them. Ids are in
	// the snapshot's id space (stored ids when Perm is present).
	// Optional; nil when the packer built no landmarks.
	Landmarks []V
	// LandmarkDist is the flat landmark-major distance matrix:
	// LandmarkDist[i*n+v] = d(Landmarks[i], v), with +Inf for vertices
	// a landmark cannot reach. len == len(Landmarks)*n.
	LandmarkDist []float64
}

const (
	snapMagic   = uint64(0x313050414E535352) // "RSSNAP01", little-endian
	snapVersion = uint32(1)

	snapFlagRadii     = uint32(1 << 0)
	snapFlagOriginal  = uint32(1 << 1)
	snapFlagPerm      = uint32(1 << 2)
	snapFlagLandmarks = uint32(1 << 3)
	snapKnownFlags    = snapFlagRadii | snapFlagOriginal | snapFlagPerm | snapFlagLandmarks

	maxHeuristicLen = 64
	// maxSnapshotLandmarks bounds the landmark count a reader will
	// allocate for. Deliberately far above internal/landmark's
	// MaxLandmarks (64) so the format outlives that policy cap, but low
	// enough that a bit-flipped count can never demand a huge matrix.
	maxSnapshotLandmarks = 4096
)

var snapCRC = crc32.MakeTable(crc32.Castagnoli)

// InputGraph returns the snapshot's real input graph in original vertex
// ids: the pre-shortcut Original when present (else G), with any
// pack-time relabeling undone. It is the single implementation of the
// "original graph, original ids" contract behind ReadAuto and the root
// LoadGraphFile, so the two ingest paths can never diverge.
func (s *Snapshot) InputGraph() *CSR {
	g := s.G
	if s.Original != nil {
		g = s.Original
	}
	if s.Perm != nil {
		g = ApplyOrder(g, InvertPerm(s.Perm))
	}
	return g
}

// WriteSnapshot serializes s in the versioned binary snapshot format,
// including a trailing CRC-32C checksum over the full header and payload.
func WriteSnapshot(w io.Writer, s *Snapshot) error {
	if s == nil || s.G == nil {
		return fmt.Errorf("graph: nil snapshot")
	}
	n := s.G.NumVertices()
	if s.Radii != nil && len(s.Radii) != n {
		return fmt.Errorf("graph: snapshot radii length %d != n %d", len(s.Radii), n)
	}
	if s.Original != nil && s.Original.NumVertices() != n {
		return fmt.Errorf("graph: snapshot original has %d vertices, graph has %d", s.Original.NumVertices(), n)
	}
	if s.Perm != nil && len(s.Perm) != n {
		return fmt.Errorf("graph: snapshot permutation length %d != n %d", len(s.Perm), n)
	}
	if len(s.Heuristic) > maxHeuristicLen {
		return fmt.Errorf("graph: snapshot heuristic name too long (%d bytes)", len(s.Heuristic))
	}
	if len(s.Landmarks) > maxSnapshotLandmarks {
		return fmt.Errorf("graph: snapshot has %d landmarks (max %d)", len(s.Landmarks), maxSnapshotLandmarks)
	}
	if len(s.LandmarkDist) != len(s.Landmarks)*n {
		return fmt.Errorf("graph: snapshot landmark matrix has %d entries for %d landmarks over %d vertices",
			len(s.LandmarkDist), len(s.Landmarks), n)
	}
	for _, v := range s.Landmarks {
		if v < 0 || int(v) >= n {
			return fmt.Errorf("graph: snapshot landmark %d out of range [0,%d)", v, n)
		}
	}

	bw := bufio.NewWriterSize(w, 1<<20)
	crc := crc32.New(snapCRC)
	out := io.MultiWriter(bw, crc) // checksum everything except the trailer

	flags := uint32(0)
	if s.Radii != nil {
		flags |= snapFlagRadii
	}
	origArcs := 0
	if s.Original != nil {
		flags |= snapFlagOriginal
		origArcs = s.Original.NumArcs()
	}
	if s.Perm != nil {
		flags |= snapFlagPerm
	}
	if len(s.Landmarks) > 0 {
		flags |= snapFlagLandmarks
	}
	head := []any{
		snapMagic, snapVersion, flags,
		uint64(n), uint64(s.G.NumArcs()), uint64(origArcs),
		uint32(s.Rho), uint32(s.K), uint32(len(s.Heuristic)),
	}
	for _, h := range head {
		if err := binary.Write(out, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	if _, err := out.Write([]byte(s.Heuristic)); err != nil {
		return err
	}
	sections := []any{s.G.Off, s.G.Adj, s.G.W}
	if s.Radii != nil {
		sections = append(sections, s.Radii)
	}
	if s.Original != nil {
		sections = append(sections, s.Original.Off, s.Original.Adj, s.Original.W)
	}
	if s.Perm != nil {
		sections = append(sections, s.Perm)
	}
	if len(s.Landmarks) > 0 {
		sections = append(sections, uint32(len(s.Landmarks)), s.Landmarks, s.LandmarkDist)
	}
	for _, sec := range sections {
		if err := binary.Write(out, binary.LittleEndian, sec); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, crc.Sum32()); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadSnapshot parses a snapshot, verifying the magic, version, checksum,
// and every structural invariant of the embedded arrays. Corruption —
// truncation, bit flips, implausible sizes — fails loudly rather than
// producing a graph that misbehaves later.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	return readSnapshotSized(r, 0)
}

// readSnapshotSized is ReadSnapshot with an optional total-size bound:
// when maxBytes > 0 the header-declared array sizes are checked against
// it BEFORE any allocation, so a bit-flipped size field in a file of
// known length is rejected immediately instead of attempting a
// many-GiB allocation the checksum pass would never reach.
func readSnapshotSized(r io.Reader, maxBytes int64) (*Snapshot, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	crc := crc32.New(snapCRC)
	in := io.TeeReader(br, crc) // mirror checksummed bytes into the CRC

	var magic uint64
	if err := binary.Read(in, binary.LittleEndian, &magic); err != nil {
		return nil, snapReadErr("header", err)
	}
	if magic != snapMagic {
		return nil, snapCorruptf("bad snapshot magic %#x", magic)
	}
	var version, flags uint32
	var n, arcs, origArcs uint64
	var rho, k, hlen uint32
	for _, p := range []any{&version, &flags, &n, &arcs, &origArcs, &rho, &k, &hlen} {
		if err := binary.Read(in, binary.LittleEndian, p); err != nil {
			return nil, snapReadErr("header", err)
		}
	}
	if version != snapVersion {
		return nil, fmt.Errorf("graph: unsupported snapshot version %d (want %d)", version, snapVersion)
	}
	if flags&^snapKnownFlags != 0 {
		return nil, fmt.Errorf("graph: unknown snapshot flags %#x", flags)
	}
	const maxReasonable = 1 << 34
	if n > maxReasonable || arcs > maxReasonable || origArcs > maxReasonable {
		return nil, snapCorruptf("implausible snapshot sizes n=%d arcs=%d origArcs=%d", n, arcs, origArcs)
	}
	if flags&snapFlagOriginal == 0 && origArcs != 0 {
		return nil, snapCorruptf("snapshot declares %d original arcs without the original-graph flag", origArcs)
	}
	if hlen > maxHeuristicLen {
		return nil, snapCorruptf("implausible heuristic name length %d", hlen)
	}
	// lmKSized is the landmark count implied by the file size (-1 when
	// the size is unknown); the payload's count field must agree.
	lmKSized := int64(-1)
	if maxBytes > 0 {
		need := int64(52) + int64(hlen) + int64(n+1)*8 + int64(arcs)*12 + 4
		if flags&snapFlagRadii != 0 {
			need += int64(n) * 8
		}
		if flags&snapFlagOriginal != 0 {
			need += int64(n+1)*8 + int64(origArcs)*12
		}
		if flags&snapFlagPerm != 0 {
			need += int64(n) * 4
		}
		if flags&snapFlagLandmarks != 0 {
			// The landmark count lives in the payload, not the fixed
			// header: derive it from the remaining bytes (a 4-byte
			// count, then 4+8n bytes per landmark), insisting the
			// remainder divides exactly; the count field read later
			// must match it.
			rem := maxBytes - need - 4
			per := int64(4) + int64(n)*8
			if rem < 0 {
				return nil, fmt.Errorf("graph: %w: landmark section missing %d bytes", ErrSnapshotTruncated, -rem)
			}
			if per <= 0 || rem%per != 0 {
				return nil, snapCorruptf("snapshot landmark section size %d does not fit %d-vertex vectors", maxBytes-need, n)
			}
			lmKSized = rem / per
		} else if maxBytes < need {
			// The file ends before its own declared payload: the signature
			// of a torn write (a crash between write and rename on a
			// writer without AtomicWriteFile) or a partial copy.
			return nil, fmt.Errorf("graph: %w: header declares %d bytes but file has only %d",
				ErrSnapshotTruncated, need, maxBytes)
		} else if maxBytes > need {
			return nil, snapCorruptf("snapshot carries %d trailing bytes past its declared %d", maxBytes-need, need)
		}
	}
	hbuf := make([]byte, hlen)
	if _, err := io.ReadFull(in, hbuf); err != nil {
		return nil, snapReadErr("heuristic name", err)
	}

	s := &Snapshot{
		Rho:       int(rho),
		K:         int(k),
		Heuristic: string(hbuf),
	}
	var err error
	if s.G, err = readSnapshotCSR(in, int(n), int(arcs)); err != nil {
		return nil, err
	}
	if flags&snapFlagRadii != 0 {
		s.Radii = make([]float64, n)
		if err := binary.Read(in, binary.LittleEndian, s.Radii); err != nil {
			return nil, snapReadErr("radii", err)
		}
		for _, rad := range s.Radii {
			// The radii-persistence contract: non-negative finite values
			// only (see internal/preprocess).
			if math.IsNaN(rad) || math.IsInf(rad, 0) || rad < 0 {
				return nil, snapCorruptf("snapshot has invalid radius %v", rad)
			}
		}
	}
	if flags&snapFlagOriginal != 0 {
		if s.Original, err = readSnapshotCSR(in, int(n), int(origArcs)); err != nil {
			return nil, err
		}
	}
	if flags&snapFlagPerm != 0 {
		s.Perm = make([]V, n)
		if err := binary.Read(in, binary.LittleEndian, s.Perm); err != nil {
			return nil, snapReadErr("permutation", err)
		}
		// A corrupt permutation would silently swap identities on every
		// query answer; validate bijectivity at load time like every
		// other structural invariant.
		seen := make([]bool, n)
		for i, p := range s.Perm {
			if p < 0 || uint64(p) >= n || seen[p] {
				return nil, snapCorruptf("snapshot permutation corrupt at index %d (maps to %d)", i, p)
			}
			seen[p] = true
		}
	}
	if flags&snapFlagLandmarks != 0 {
		var lmK uint32
		if err := binary.Read(in, binary.LittleEndian, &lmK); err != nil {
			return nil, snapReadErr("landmark count", err)
		}
		if lmK == 0 || lmK > maxSnapshotLandmarks || uint64(lmK) > n {
			return nil, snapCorruptf("implausible snapshot landmark count %d (n=%d)", lmK, n)
		}
		if lmKSized >= 0 && int64(lmK) != lmKSized {
			return nil, snapCorruptf("snapshot declares %d landmarks but file size fits %d", lmK, lmKSized)
		}
		s.Landmarks = make([]V, lmK)
		if err := binary.Read(in, binary.LittleEndian, s.Landmarks); err != nil {
			return nil, snapReadErr("landmark vertices", err)
		}
		lmSeen := make(map[V]bool, lmK)
		for i, v := range s.Landmarks {
			if v < 0 || uint64(v) >= n || lmSeen[v] {
				return nil, snapCorruptf("snapshot landmark %d corrupt at index %d", v, i)
			}
			lmSeen[v] = true
		}
		s.LandmarkDist = make([]float64, uint64(lmK)*n)
		if err := binary.Read(in, binary.LittleEndian, s.LandmarkDist); err != nil {
			return nil, snapReadErr("landmark vectors", err)
		}
		for i, d := range s.LandmarkDist {
			// +Inf is meaningful (vertex outside the landmark's
			// component); NaN and negatives are corruption.
			if math.IsNaN(d) || d < 0 {
				return nil, snapCorruptf("snapshot landmark distance %v at entry %d", d, i)
			}
		}
		for i, v := range s.Landmarks {
			if s.LandmarkDist[uint64(i)*n+uint64(v)] != 0 {
				return nil, snapCorruptf("snapshot landmark %d has nonzero self-distance", v)
			}
		}
	}

	sum := crc.Sum32() // everything checksummed so far; trailer comes off br directly
	var want uint32
	if err := binary.Read(br, binary.LittleEndian, &want); err != nil {
		return nil, snapReadErr("checksum trailer", err)
	}
	if sum != want {
		return nil, snapCorruptf("snapshot checksum mismatch: computed %#x, stored %#x", sum, want)
	}
	return s, nil
}

// readSnapshotCSR reads one CSR section and validates its invariants.
func readSnapshotCSR(r io.Reader, n, arcs int) (*CSR, error) {
	g := &CSR{
		Off: make([]int64, n+1),
		Adj: make([]V, arcs),
		W:   make([]float64, arcs),
	}
	for _, sec := range []any{g.Off, g.Adj, g.W} {
		if err := binary.Read(r, binary.LittleEndian, sec); err != nil {
			return nil, snapReadErr("CSR arrays", err)
		}
	}
	if g.Off[0] != 0 || g.Off[n] != int64(arcs) {
		return nil, snapCorruptf("snapshot offsets corrupt: Off[0]=%d Off[n]=%d arcs=%d", g.Off[0], g.Off[n], arcs)
	}
	for u := 0; u < n; u++ {
		if g.Off[u] > g.Off[u+1] {
			return nil, snapCorruptf("snapshot offsets not monotone at vertex %d", u)
		}
	}
	for i, v := range g.Adj {
		if v < 0 || int(v) >= n {
			return nil, snapCorruptf("snapshot arc target %d out of range [0, %d)", v, n)
		}
		if w := g.W[i]; math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			return nil, snapCorruptf("snapshot has invalid weight %v", g.W[i])
		}
	}
	return g.finalize(), nil
}

// WriteSnapshotFile writes s to path crash-safely: temp file, fsync,
// rename, directory fsync (AtomicWriteFile). A crash at any point
// leaves either the old complete snapshot or the new one — the load
// side's ErrSnapshotTruncated detection covers writers that bypassed
// this path.
func WriteSnapshotFile(path string, s *Snapshot) error {
	return AtomicWriteFile(path, func(w io.Writer) error {
		return WriteSnapshot(w, s)
	})
}

// ReadSnapshotFile loads the snapshot at path and reports its file size.
func ReadSnapshotFile(path string) (*Snapshot, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, 0, err
	}
	s, err := readSnapshotSized(f, st.Size())
	if err != nil {
		return nil, 0, fmt.Errorf("graph: snapshot %s: %w", path, err)
	}
	return s, st.Size(), nil
}
