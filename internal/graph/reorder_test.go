package graph

import (
	"testing"
	"testing/quick"
)

func ladder() *CSR {
	b := NewBuilder(6)
	b.Add(0, 1, 1)
	b.Add(1, 2, 2)
	b.Add(2, 3, 3)
	b.Add(3, 4, 4)
	b.Add(4, 5, 5)
	b.Add(0, 5, 10)
	return b.Build()
}

func TestApplyOrderIdentity(t *testing.T) {
	g := ladder()
	perm := make([]V, 6)
	for i := range perm {
		perm[i] = V(i)
	}
	g2 := ApplyOrder(g, perm)
	if !SameGraph(g, g2) {
		t.Fatal("identity permutation changed the graph")
	}
}

func TestApplyOrderPreservesStructure(t *testing.T) {
	g := ladder()
	perm := []V{5, 4, 3, 2, 1, 0} // reverse
	g2 := ApplyOrder(g, perm)
	if err := Validate(g2); err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatal("edge count changed")
	}
	// Edge (0,1,w=1) becomes (5,4,w=1).
	if w, ok := EdgeWeight(g2, 4, 5); !ok || w != 1 {
		t.Fatalf("relabeled edge weight = %v, %v", w, ok)
	}
}

func TestApplyOrderPanicsOnBadPerm(t *testing.T) {
	g := ladder()
	for name, perm := range map[string][]V{
		"short": {0, 1, 2},
		"dup":   {0, 1, 2, 3, 4, 4},
		"range": {0, 1, 2, 3, 4, 9},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			ApplyOrder(g, perm)
		}()
	}
}

func TestBFSOrderProperties(t *testing.T) {
	g := ladder()
	perm := BFSOrder(g, 2)
	if perm[2] != 0 {
		t.Fatalf("root should map to 0, got %d", perm[2])
	}
	// Neighbors of the root get the next labels (1 and 3 in some order).
	if perm[1] > 2 || perm[3] > 2 {
		t.Fatalf("root neighbors not early: %v", perm)
	}
	// Disconnected vertices are appended.
	b := NewBuilder(4)
	b.Add(0, 1, 1)
	g2 := b.Build()
	p2 := BFSOrder(g2, 0)
	if p2[2] != 2 || p2[3] != 3 {
		t.Fatalf("unreached vertices misplaced: %v", p2)
	}
}

func TestDegreeOrderPutsHubsFirst(t *testing.T) {
	b := NewBuilder(5)
	b.Add(0, 1, 1)
	b.Add(2, 0, 1)
	b.Add(2, 1, 1)
	b.Add(2, 3, 1)
	b.Add(2, 4, 1) // vertex 2 has degree 4
	g := b.Build()
	perm := DegreeOrder(g)
	if perm[2] != 0 {
		t.Fatalf("hub should map to 0, got %d", perm[2])
	}
}

func TestReorderRoundTripMetric(t *testing.T) {
	g := ladder()
	g2, perm := ReorderBFS(g, 3)
	if err := Validate(g2); err != nil {
		t.Fatal(err)
	}
	// Weight multiset preserved.
	sumW := func(g *CSR) float64 {
		var s float64
		for _, w := range g.W {
			s += w
		}
		return s
	}
	if sumW(g) != sumW(g2) {
		t.Fatal("weights changed")
	}
	// Adjacency preserved under relabeling.
	for u := 0; u < 6; u++ {
		adj, ws := g.Neighbors(V(u))
		for i, v := range adj {
			w, ok := EdgeWeight(g2, perm[u], perm[v])
			if !ok || w != ws[i] {
				t.Fatalf("edge (%d,%d) lost or reweighted", u, v)
			}
		}
	}
}

func TestPermuteFloats(t *testing.T) {
	in := []float64{10, 20, 30}
	perm := []V{2, 0, 1}
	out := PermuteFloats(in, perm)
	if out[2] != 10 || out[0] != 20 || out[1] != 30 {
		t.Fatalf("PermuteFloats = %v", out)
	}
}

// TestQuickReorderPreservesDegreesAndWeights: any random permutation
// keeps the degree multiset and total weight.
func TestQuickReorderPreservesDegreesAndWeights(t *testing.T) {
	f := func(swaps []uint8) bool {
		g := ladder()
		perm := []V{0, 1, 2, 3, 4, 5}
		for _, s := range swaps {
			i, j := int(s%6), int((s/6)%6)
			perm[i], perm[j] = perm[j], perm[i]
		}
		g2 := ApplyOrder(g, perm)
		if Validate(g2) != nil || g2.NumEdges() != g.NumEdges() {
			return false
		}
		degs := map[int]int{}
		for v := 0; v < 6; v++ {
			degs[g.Degree(V(v))]++
			degs[g2.Degree(V(v))]--
		}
		for _, c := range degs {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
