package graph

import (
	"fmt"
	"sort"

	"radiusstep/internal/parallel"
)

// Edge is one undirected weighted edge.
type Edge struct {
	U, V V
	W    float64
}

// Builder accumulates undirected edges and produces a CSR. Self-loops are
// dropped and parallel edges are merged keeping the lightest weight, so
// the result is always a simple graph (as the paper assumes).
type Builder struct {
	n     int
	edges []Edge
}

// NewBuilder creates a builder for a graph with n vertices.
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// Grow raises the vertex count to at least n.
func (b *Builder) Grow(n int) {
	if n > b.n {
		b.n = n
	}
}

// NumVertices returns the current vertex count.
func (b *Builder) NumVertices() int { return b.n }

// NumEdges returns the number of accumulated (pre-dedup) edges.
func (b *Builder) NumEdges() int { return len(b.edges) }

// Add records the undirected edge {u, v} with weight w.
// It panics on out-of-range endpoints or negative weights, which are
// programming errors rather than runtime conditions.
func (b *Builder) Add(u, v V, w float64) {
	if u < 0 || v < 0 || int(u) >= b.n || int(v) >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	if w < 0 {
		panic(fmt.Sprintf("graph: negative weight %v on edge (%d,%d)", w, u, v))
	}
	b.edges = append(b.edges, Edge{u, v, w})
}

// AddEdges records a batch of edges.
func (b *Builder) AddEdges(edges []Edge) {
	for _, e := range edges {
		b.Add(e.U, e.V, e.W)
	}
}

// Build produces the CSR. The accumulated edge list is consumed.
func (b *Builder) Build() *CSR {
	return FromEdges(b.n, b.edges)
}

// FromEdges builds a simple undirected CSR from an edge list: self-loops
// removed, parallel edges merged to the minimum weight, adjacency lists
// sorted by (neighbor, weight). The build is parallel: arcs are expanded,
// sorted by source with a parallel sort, deduplicated, and offsets are
// derived with a scan.
func FromEdges(n int, edges []Edge) *CSR {
	type arc struct {
		src, dst V
		w        float64
	}
	arcs := make([]arc, 0, 2*len(edges))
	for _, e := range edges {
		if e.U == e.V {
			continue // drop self-loops
		}
		arcs = append(arcs, arc{e.U, e.V, e.W}, arc{e.V, e.U, e.W})
	}
	parallel.Sort(arcs, func(a, b arc) bool {
		if a.src != b.src {
			return a.src < b.src
		}
		if a.dst != b.dst {
			return a.dst < b.dst
		}
		return a.w < b.w
	})
	// Dedup parallel arcs keeping the first (lightest) of each (src, dst).
	// kept aliases arcs' backing array, so comparisons use kept's tail.
	kept := arcs[:0]
	for _, a := range arcs {
		if last := len(kept) - 1; last >= 0 && a.src == kept[last].src && a.dst == kept[last].dst {
			continue
		}
		kept = append(kept, a)
	}
	g := &CSR{
		Off: make([]int64, n+1),
		Adj: make([]V, len(kept)),
		W:   make([]float64, len(kept)),
	}
	deg := make([]int64, n)
	for _, a := range kept {
		deg[a.src]++
	}
	// Off[u] = number of arcs with source < u; arcs are already sorted by
	// source, so the i-th kept arc lands at position i.
	total := parallel.ExclusiveScan(deg, g.Off[:n])
	g.Off[n] = total
	parallel.For(len(kept), func(i int) {
		g.Adj[i] = kept[i].dst
		g.W[i] = kept[i].w
	})
	return g.finalize()
}

// AddShortcuts returns a new graph equal to g plus the given extra edges
// (deduplicated against g and each other, keeping minimum weights). The
// original graph is unchanged. This is the operation the preprocessing
// phase uses to materialize (k, ρ)-graphs.
func AddShortcuts(g *CSR, extra []Edge) *CSR {
	edges := make([]Edge, 0, g.NumEdges()+len(extra))
	for u := 0; u < g.NumVertices(); u++ {
		adj, ws := g.Neighbors(V(u))
		for i, v := range adj {
			if V(u) < v { // each undirected edge once
				edges = append(edges, Edge{V(u), v, ws[i]})
			}
		}
	}
	edges = append(edges, extra...)
	return FromEdges(g.NumVertices(), edges)
}

// Edges returns the undirected edge list of g (each edge once, U < V),
// sorted by (U, V).
func Edges(g *CSR) []Edge {
	out := make([]Edge, 0, g.NumEdges())
	for u := 0; u < g.NumVertices(); u++ {
		adj, ws := g.Neighbors(V(u))
		for i, v := range adj {
			if V(u) < v {
				out = append(out, Edge{V(u), v, ws[i]})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}
