package graph

// Components labels the connected components of g. It returns one label
// per vertex (labels are component-minimum vertex ids) and the number of
// components, using an iterative BFS over unlabeled vertices.
func Components(g *CSR) (label []V, count int) {
	n := g.NumVertices()
	label = make([]V, n)
	for i := range label {
		label[i] = -1
	}
	queue := make([]V, 0, 1024)
	for s := 0; s < n; s++ {
		if label[s] != -1 {
			continue
		}
		count++
		root := V(s)
		label[s] = root
		queue = append(queue[:0], root)
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			adj, _ := g.Neighbors(u)
			for _, v := range adj {
				if label[v] == -1 {
					label[v] = root
					queue = append(queue, v)
				}
			}
		}
	}
	return label, count
}

// IsConnected reports whether g has exactly one connected component
// (the empty graph is considered connected).
func IsConnected(g *CSR) bool {
	if g.NumVertices() == 0 {
		return true
	}
	_, c := Components(g)
	return c == 1
}

// LargestComponent returns the subgraph induced by the largest connected
// component of g, with vertices relabeled densely, plus the mapping from
// new ids to original ids. Workload preparation uses this because the
// paper's graphs are connected.
func LargestComponent(g *CSR) (*CSR, []V) {
	n := g.NumVertices()
	label, count := Components(g)
	if count <= 1 {
		ids := make([]V, n)
		for i := range ids {
			ids[i] = V(i)
		}
		return g.Clone(), ids
	}
	sizes := make(map[V]int, count)
	for _, l := range label {
		sizes[l]++
	}
	best, bestSize := V(-1), -1
	for l, s := range sizes {
		if s > bestSize || (s == bestSize && l < best) {
			best, bestSize = l, s
		}
	}
	newID := make([]V, n)
	oldID := make([]V, 0, bestSize)
	for u := 0; u < n; u++ {
		if label[u] == best {
			newID[u] = V(len(oldID))
			oldID = append(oldID, V(u))
		} else {
			newID[u] = -1
		}
	}
	b := NewBuilder(bestSize)
	for _, u := range oldID {
		adj, ws := g.Neighbors(u)
		for i, v := range adj {
			if u < v && label[v] == best {
				b.Add(newID[u], newID[v], ws[i])
			}
		}
	}
	return b.Build(), oldID
}

// Reweight returns a copy of g with weights produced by fn(u, v, old).
// fn is called once per undirected edge (u < v).
func Reweight(g *CSR, fn func(u, v V, w float64) float64) *CSR {
	edges := Edges(g)
	for i := range edges {
		edges[i].W = fn(edges[i].U, edges[i].V, edges[i].W)
	}
	return FromEdges(g.NumVertices(), edges)
}

// UnitWeights returns a copy of g with every weight set to 1.
func UnitWeights(g *CSR) *CSR {
	return Reweight(g, func(_, _ V, _ float64) float64 { return 1 })
}
