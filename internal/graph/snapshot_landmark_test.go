package graph

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
)

// landmarkRows builds a synthetic landmark-major matrix for verts over
// n vertices: row i is |v − L| with a sprinkling of +Inf entries away
// from the landmark (other-component markers the format must preserve).
func landmarkRows(n int, verts []V) []float64 {
	rows := make([]float64, len(verts)*n)
	for i, l := range verts {
		for v := 0; v < n; v++ {
			d := math.Abs(float64(v) - float64(l))
			if v%7 == 3 && V(v) != l {
				d = math.Inf(1)
			}
			rows[i*n+v] = d
		}
	}
	return rows
}

// TestSnapshotLandmarkRoundTrip: landmark vectors survive the write/read
// cycle bit-for-bit in every flag combination they can ride with —
// graph-only, with radii, and with a reorder permutation (the graphpack
// -order -landmarks shape).
func TestSnapshotLandmarkRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := randomCSR(35+int(seed)*11, 90, seed+50)
		n := g.NumVertices()
		radii := make([]float64, n)
		for i := range radii {
			radii[i] = float64(i%13) / 2
		}
		perm := make([]V, n)
		for i := range perm {
			perm[i] = V(n - 1 - i)
		}
		verts := []V{V(3), V(n - 1), V(n / 2)}
		rows := landmarkRows(n, verts)

		cases := []struct {
			name string
			s    *Snapshot
		}{
			{"graph+landmarks", &Snapshot{G: g, Landmarks: verts, LandmarkDist: rows}},
			{"radii+landmarks", &Snapshot{G: g, Radii: radii, Rho: 32, K: 1, Heuristic: "direct", Landmarks: verts, LandmarkDist: rows}},
			{"perm+landmarks", &Snapshot{G: g, Radii: radii, Rho: 8, K: 1, Heuristic: "direct", Perm: perm, Landmarks: verts, LandmarkDist: rows}},
		}
		for _, tc := range cases {
			var buf bytes.Buffer
			if err := WriteSnapshot(&buf, tc.s); err != nil {
				t.Fatalf("seed %d %s: write: %v", seed, tc.name, err)
			}
			got, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("seed %d %s: read: %v", seed, tc.name, err)
			}
			if !reflect.DeepEqual(got, tc.s) {
				t.Fatalf("seed %d %s: round trip mismatch", seed, tc.name)
			}
		}
	}
}

func TestSnapshotLandmarkWriteRejects(t *testing.T) {
	g := randomCSR(12, 24, 60)
	n := g.NumVertices()
	cases := []struct {
		name string
		s    *Snapshot
	}{
		{"too-many", &Snapshot{G: g, Landmarks: make([]V, maxSnapshotLandmarks+1)}},
		{"dist-length", &Snapshot{G: g, Landmarks: []V{1}, LandmarkDist: make([]float64, n-1)}},
		{"vertex-range", &Snapshot{G: g, Landmarks: []V{V(n)}, LandmarkDist: make([]float64, n)}},
		{"orphan-dist", &Snapshot{G: g, LandmarkDist: make([]float64, n)}},
	}
	for _, tc := range cases {
		if err := WriteSnapshot(&bytes.Buffer{}, tc.s); err == nil {
			t.Fatalf("%s: invalid landmark snapshot accepted", tc.name)
		}
	}
}

// TestSnapshotLandmarkReadRejects: value corruption WriteSnapshot does
// not inspect (it validates shape, not semantics) must be caught by the
// reader before the snapshot reaches a solver.
func TestSnapshotLandmarkReadRejects(t *testing.T) {
	g := randomCSR(15, 30, 61)
	n := g.NumVertices()
	write := func(mutate func(rows []float64)) []byte {
		verts := []V{2, 9}
		rows := landmarkRows(n, verts)
		mutate(rows)
		var buf bytes.Buffer
		if err := WriteSnapshot(&buf, &Snapshot{G: g, Landmarks: verts, LandmarkDist: rows}); err != nil {
			t.Fatalf("write: %v", err)
		}
		return buf.Bytes()
	}

	if _, err := ReadSnapshot(bytes.NewReader(write(func(rows []float64) {
		rows[0*n+2] = 1 // nonzero self-distance
	}))); err == nil || !strings.Contains(err.Error(), "self-distance") {
		t.Fatalf("nonzero self-distance: err = %v", err)
	}
	if _, err := ReadSnapshot(bytes.NewReader(write(func(rows []float64) {
		rows[n+5] = -0.5
	}))); err == nil || !strings.Contains(err.Error(), "landmark distance") {
		t.Fatalf("negative distance: err = %v", err)
	}
	if _, err := ReadSnapshot(bytes.NewReader(write(func(rows []float64) {
		rows[n+5] = math.NaN()
	}))); err == nil || !strings.Contains(err.Error(), "landmark distance") {
		t.Fatalf("NaN distance: err = %v", err)
	}

	// Truncation anywhere in a landmark-carrying snapshot fails loudly.
	raw := write(func([]float64) {})
	for cut := 0; cut < len(raw); cut += 1 + cut/3 {
		if _, err := ReadSnapshot(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(raw))
		}
	}
	// A bit flip in the landmark payload is the checksum's problem.
	bad := append([]byte(nil), raw...)
	bad[len(bad)-12] ^= 1
	if _, err := ReadSnapshot(bytes.NewReader(bad)); err == nil {
		t.Fatal("flipped landmark payload accepted")
	}
}
