package graph

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// randomCSR builds a connected-ish random graph with float weights drawn
// from a small integer grid (so text formats round-trip exactly even
// under 'g' formatting — they do for any float64, but integers keep the
// fixtures readable).
func randomCSR(n, m int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, 0, m+n-1)
	for v := 1; v < n; v++ {
		u := rng.Intn(v)
		edges = append(edges, Edge{V(u), V(v), float64(1 + rng.Intn(1000))})
	}
	for i := 0; i < m; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		edges = append(edges, Edge{V(u), V(v), float64(1+rng.Intn(1000)) / 4})
	}
	return FromEdges(n, edges)
}

func TestSnapshotRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := randomCSR(50+int(seed)*13, 120, seed)
		n := g.NumVertices()
		radii := make([]float64, n)
		for i := range radii {
			radii[i] = float64(i%17) / 3
		}
		orig := randomCSR(n, 60, seed+100)

		cases := []struct {
			name string
			s    *Snapshot
		}{
			{"graph-only", &Snapshot{G: g}},
			{"with-radii", &Snapshot{G: g, Radii: radii, Rho: 64, K: 3, Heuristic: "dp"}},
			{"with-original", &Snapshot{G: g, Original: orig, Radii: radii, Rho: 32, K: 1, Heuristic: "direct"}},
		}
		for _, tc := range cases {
			var buf bytes.Buffer
			if err := WriteSnapshot(&buf, tc.s); err != nil {
				t.Fatalf("seed %d %s: write: %v", seed, tc.name, err)
			}
			got, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("seed %d %s: read: %v", seed, tc.name, err)
			}
			if !reflect.DeepEqual(got, tc.s) {
				t.Fatalf("seed %d %s: round trip mismatch", seed, tc.name)
			}
		}
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	g := randomCSR(40, 80, 1)
	radii := make([]float64, g.NumVertices())
	for i := range radii {
		radii[i] = float64(i)
	}
	s := &Snapshot{G: g, Radii: radii, Rho: 16, K: 2, Heuristic: "greedy"}
	path := filepath.Join(t.TempDir(), "g.snap")
	if err := WriteSnapshotFile(path, s); err != nil {
		t.Fatalf("WriteSnapshotFile: %v", err)
	}
	got, size, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatalf("ReadSnapshotFile: %v", err)
	}
	if size <= 0 {
		t.Fatalf("size = %d, want > 0", size)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatal("file round trip mismatch")
	}
	// Snapshots are data files other users (daemon service accounts)
	// must be able to read; CreateTemp's 0600 must not leak through.
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if perm := st.Mode().Perm(); perm != 0o644 {
		t.Fatalf("snapshot file mode = %o, want 644", perm)
	}
}

func TestSnapshotCorruption(t *testing.T) {
	g := randomCSR(30, 60, 2)
	radii := make([]float64, g.NumVertices())
	for i := range radii {
		radii[i] = 1.5
	}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, &Snapshot{G: g, Radii: radii, Rho: 8, K: 1, Heuristic: "direct"}); err != nil {
		t.Fatalf("write: %v", err)
	}
	raw := buf.Bytes()

	// Truncation anywhere must fail loudly, never yield a partial graph.
	for cut := 0; cut < len(raw); cut += 1 + cut/3 {
		if _, err := ReadSnapshot(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(raw))
		}
	}

	flip := func(pos int) []byte {
		bad := append([]byte(nil), raw...)
		bad[pos] ^= 1
		return bad
	}
	if _, err := ReadSnapshot(bytes.NewReader(flip(0))); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic: err = %v", err)
	}
	if _, err := ReadSnapshot(bytes.NewReader(flip(8))); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("bad version: err = %v", err)
	}
	// A low-order mantissa flip inside the W section keeps the weight
	// finite and positive, so only the checksum can catch it.
	headerLen := 8 + 4 + 4 + 8 + 8 + 8 + 4 + 4 + 4 + len("direct")
	wOff := headerLen + (g.NumVertices()+1)*8 + g.NumArcs()*4
	if _, err := ReadSnapshot(bytes.NewReader(flip(wOff))); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("flipped payload: err = %v", err)
	}
	// Flipping the stored checksum itself must also fail.
	if _, err := ReadSnapshot(bytes.NewReader(flip(len(raw) - 1))); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("flipped trailer: err = %v", err)
	}
}

func TestWriteSnapshotRejectsInvalid(t *testing.T) {
	g := randomCSR(10, 20, 3)
	cases := []*Snapshot{
		nil,
		{},
		{G: g, Radii: make([]float64, 3)},      // radii length mismatch
		{G: g, Original: randomCSR(11, 20, 4)}, // vertex count mismatch
		{G: g, Heuristic: strings.Repeat("x", 100)}, // oversized heuristic name
	}
	for i, s := range cases {
		if err := WriteSnapshot(&bytes.Buffer{}, s); err == nil {
			t.Fatalf("case %d: invalid snapshot accepted", i)
		}
	}
}

func TestReadSnapshotRejectsBadValues(t *testing.T) {
	// Invalid at read time, but WriteSnapshot does not inspect values.
	for _, bad := range []float64{-1, math.Inf(1)} {
		g := randomCSR(10, 20, 5)
		radii := make([]float64, g.NumVertices())
		radii[3] = bad
		var buf bytes.Buffer
		if err := WriteSnapshot(&buf, &Snapshot{G: g, Radii: radii}); err != nil {
			t.Fatalf("write: %v", err)
		}
		if _, err := ReadSnapshot(bytes.NewReader(buf.Bytes())); err == nil || !strings.Contains(err.Error(), "radius") {
			t.Fatalf("radius %v accepted: err = %v", bad, err)
		}
	}
}

// A bit flip in a header size field must be rejected by the size check
// before any array allocation — a corrupted n in the hundreds of
// millions would otherwise attempt a many-GiB make() the checksum pass
// never gets to veto.
func TestReadSnapshotFileRejectsSizeLies(t *testing.T) {
	g := randomCSR(20, 40, 6)
	path := filepath.Join(t.TempDir(), "g.snap")
	if err := WriteSnapshotFile(path, &Snapshot{G: g}); err != nil {
		t.Fatalf("write: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// n occupies bytes 16..23; flip a high bit so it stays under the
	// generic plausibility cap but wildly exceeds the file size.
	raw[20] ^= 1 // n += 1<<32
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadSnapshotFile(path); err == nil || !strings.Contains(err.Error(), "bytes") {
		t.Fatalf("lying size field accepted: err = %v", err)
	}
}
