package graph

import (
	"io"
	"os"
	"path/filepath"
)

// AtomicWriteFile writes a file crash-safely: the payload goes to a
// temporary file in the destination directory, is fsynced to disk,
// renamed over path, and the directory entry is fsynced too. A crash at
// any point leaves either the complete old file or the complete new
// file — never a torn one — which is the invariant the snapshot loader's
// truncation detection exists to back up, not to replace: torn files
// still happen on foreign filesystems, partial copies, and writers that
// bypass this helper.
//
// write receives the temporary file as an io.Writer and must produce
// the full payload; any error it returns aborts the write and removes
// the temporary file.
func AtomicWriteFile(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	// The temp file is removed on every failure path; once the rename
	// succeeds the name no longer exists and the remove is a no-op.
	defer os.Remove(tmpName)
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	// fsync the payload BEFORE the rename: a rename can be durable while
	// the data it points at is not, which is exactly the torn-file crash
	// the tmp+rename dance is supposed to prevent.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	// CreateTemp's restrictive 0600 would survive the rename; snapshots
	// are data files read by other users (e.g. a daemon service account).
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-completed rename is durable.
// Filesystems that cannot fsync a directory (some network mounts) make
// the open or sync fail; that is reported, not swallowed, because a
// caller relying on crash-safety needs to know it did not get it.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
