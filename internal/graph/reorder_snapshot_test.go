package graph

import (
	"bytes"
	"hash/crc32"
	"testing"
)

func permTestGraph() *CSR {
	return FromEdges(6, []Edge{
		{U: 0, V: 1, W: 2}, {U: 1, V: 2, W: 3}, {U: 2, V: 3, W: 1},
		{U: 3, V: 4, W: 5}, {U: 0, V: 5, W: 4}, {U: 5, V: 3, W: 2},
	})
}

// TestSnapshotPermRoundTrip: a permutation written into a snapshot comes
// back bit-identical, and absent permutations stay absent.
func TestSnapshotPermRoundTrip(t *testing.T) {
	g := permTestGraph()
	perm := DegreeOrder(g)
	rg := ApplyOrder(g, perm)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, &Snapshot{G: rg, Perm: perm}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Perm) != len(perm) {
		t.Fatalf("perm length %d, want %d", len(got.Perm), len(perm))
	}
	for i := range perm {
		if got.Perm[i] != perm[i] {
			t.Fatalf("perm[%d] = %d, want %d", i, got.Perm[i], perm[i])
		}
	}

	buf.Reset()
	if err := WriteSnapshot(&buf, &Snapshot{G: g}); err != nil {
		t.Fatal(err)
	}
	if got, err = ReadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if got.Perm != nil {
		t.Fatalf("snapshot without perm read back %v", got.Perm)
	}
}

// TestSnapshotPermValidation: a wrong-length permutation is rejected at
// write time; a non-bijective one is rejected at read time (it would
// silently swap vertex identities on every query).
func TestSnapshotPermValidation(t *testing.T) {
	g := permTestGraph()
	if err := WriteSnapshot(&bytes.Buffer{}, &Snapshot{G: g, Perm: []V{0, 1}}); err == nil {
		t.Fatal("wrong-length perm accepted at write time")
	}

	perm := DegreeOrder(g)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, &Snapshot{G: ApplyOrder(g, perm), Perm: perm}); err != nil {
		t.Fatal(err)
	}
	// Corrupt the perm section in place: make two entries collide. The
	// perm is the last section before the 4-byte checksum trailer, so
	// entry i sits at len-4-(n-i)*4. Recompute the checksum so only the
	// bijectivity check can catch it.
	data := buf.Bytes()
	n := g.NumVertices()
	p0 := len(data) - 4 - n*4
	copy(data[p0:p0+4], data[p0+4:p0+8])
	fixSnapshotChecksum(data)
	if _, err := ReadSnapshot(bytes.NewReader(data)); err == nil {
		t.Fatal("non-bijective perm accepted")
	}
}

// fixSnapshotChecksum rewrites the CRC-32C trailer to match the (edited)
// payload, so tests can corrupt specific sections without tripping the
// checksum first.
func fixSnapshotChecksum(data []byte) {
	sum := crc32.Checksum(data[:len(data)-4], snapCRC)
	data[len(data)-4] = byte(sum)
	data[len(data)-3] = byte(sum >> 8)
	data[len(data)-2] = byte(sum >> 16)
	data[len(data)-1] = byte(sum >> 24)
}

// TestUnpermuteInvertsPermute: PermuteFloats carries values old->new;
// UnpermuteFloats carries them back; InvertPerm composes to identity.
func TestUnpermuteInvertsPermute(t *testing.T) {
	perm := []V{2, 0, 3, 1}
	in := []float64{10, 11, 12, 13}
	back := UnpermuteFloats(PermuteFloats(in, perm), perm)
	for i := range in {
		if back[i] != in[i] {
			t.Fatalf("round trip broke at %d: %v", i, back)
		}
	}
	inv := InvertPerm(perm)
	for old, p := range perm {
		if inv[p] != V(old) {
			t.Fatalf("InvertPerm wrong at %d", old)
		}
	}
}

// TestOrderByName: the graphpack order names resolve, "none" is nil,
// unknown names fail loudly.
func TestOrderByName(t *testing.T) {
	g := permTestGraph()
	for _, name := range []string{"bfs", "degree"} {
		perm, err := OrderByName(g, name)
		if err != nil || len(perm) != g.NumVertices() {
			t.Fatalf("%s: perm len %d err %v", name, len(perm), err)
		}
		// Relabeling preserves the metric up to renaming.
		rg := ApplyOrder(g, perm)
		if rg.NumEdges() != g.NumEdges() {
			t.Fatalf("%s: edge count changed", name)
		}
	}
	for _, name := range []string{"", "none"} {
		if perm, err := OrderByName(g, name); err != nil || perm != nil {
			t.Fatalf("%q: perm %v err %v", name, perm, err)
		}
	}
	if _, err := OrderByName(g, "hilbert"); err == nil {
		t.Fatal("unknown order accepted")
	}
}
