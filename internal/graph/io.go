package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Text format: a header line "p sssp <n> <m>" followed by m lines
// "<u> <v> <w>". Lines starting with '#' or 'c' are comments. This is a
// small DIMACS-like interchange format for the cmd tools and tests.

// WriteText serializes g in the text edge-list format.
func WriteText(w io.Writer, g *CSR) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "p sssp %d %d\n", g.NumVertices(), g.NumEdges()); err != nil {
		return err
	}
	for _, e := range Edges(g) {
		if _, err := fmt.Fprintf(bw, "%d %d %s\n", e.U, e.V, strconv.FormatFloat(e.W, 'g', -1, 64)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses the text edge-list format.
func ReadText(r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var n, m int
	var edges []Edge
	seenHeader := false
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == 'c' {
			continue
		}
		if !seenHeader {
			var kind string
			if _, err := fmt.Sscanf(text, "p %s %d %d", &kind, &n, &m); err != nil {
				return nil, fmt.Errorf("graph: bad header at line %d: %q", line, text)
			}
			if kind != "sssp" {
				return nil, fmt.Errorf("graph: unsupported problem kind %q", kind)
			}
			seenHeader = true
			edges = make([]Edge, 0, m)
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 3 {
			return nil, fmt.Errorf("graph: bad edge at line %d: %q", line, text)
		}
		u, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: bad endpoint at line %d: %v", line, err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: bad endpoint at line %d: %v", line, err)
		}
		w, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("graph: bad weight at line %d: %v", line, err)
		}
		if u < 0 || v < 0 || u >= int64(n) || v >= int64(n) {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0, %d) at line %d", u, v, n, line)
		}
		if err := checkWeight(w, line); err != nil {
			return nil, err
		}
		edges = append(edges, Edge{V(u), V(v), w})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !seenHeader {
		return nil, fmt.Errorf("graph: missing header")
	}
	if len(edges) != m {
		return nil, fmt.Errorf("graph: header declares %d edges, found %d (last line %d)", m, len(edges), line)
	}
	return FromEdges(n, edges), nil
}

// binaryMagic identifies the binary CSR format.
const binaryMagic = uint32(0x52535447) // "GTSR"

// WriteBinary serializes g in a compact little-endian binary format:
// magic, n, arcs, Off, Adj, W.
func WriteBinary(w io.Writer, g *CSR) error {
	bw := bufio.NewWriter(w)
	hdr := []uint64{uint64(binaryMagic), uint64(g.NumVertices()), uint64(g.NumArcs())}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Off); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Adj); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.W); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary parses the binary CSR format and validates array sizes.
func ReadBinary(r io.Reader) (*CSR, error) {
	br := bufio.NewReader(r)
	var magic, n, arcs uint64
	for _, p := range []*uint64{&magic, &n, &arcs} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, err
		}
	}
	if uint32(magic) != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %#x", magic)
	}
	const maxReasonable = 1 << 34
	if n > maxReasonable || arcs > maxReasonable {
		return nil, fmt.Errorf("graph: implausible sizes n=%d arcs=%d", n, arcs)
	}
	g := &CSR{
		Off: make([]int64, n+1),
		Adj: make([]V, arcs),
		W:   make([]float64, arcs),
	}
	if err := binary.Read(br, binary.LittleEndian, g.Off); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, g.Adj); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, g.W); err != nil {
		return nil, err
	}
	if g.Off[0] != 0 || uint64(g.Off[n]) != arcs {
		return nil, fmt.Errorf("graph: corrupt offsets")
	}
	return g.finalize(), nil
}
