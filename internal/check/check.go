// Package check provides verifiable certificates for shortest-path
// results. Rather than comparing two implementations (which could share a
// bug), VerifyDistances checks the mathematical optimality conditions of
// SSSP directly, so tests can use it as an independent oracle.
package check

import (
	"fmt"
	"math"

	"radiusstep/internal/graph"
)

// VerifyDistances checks that dist is exactly the shortest-path distance
// vector from src in g. For non-negative weights, dist is correct iff:
//
//  1. dist[src] == 0;
//  2. feasibility: dist[v] <= dist[u] + w for every arc (u, v, w);
//  3. tightness: every reached v != src has an arc (u, v, w) with
//     dist[v] == dist[u] + w;
//  4. unreached vertices (+Inf) have no reached neighbor.
//
// Together these force dist to be the unique fixed point of Bellman–Ford.
func VerifyDistances(g *graph.CSR, src graph.V, dist []float64) error {
	n := g.NumVertices()
	if len(dist) != n {
		return fmt.Errorf("check: dist has %d entries for %d vertices", len(dist), n)
	}
	if dist[src] != 0 {
		return fmt.Errorf("check: dist[src=%d] = %v, want 0", src, dist[src])
	}
	for u := 0; u < n; u++ {
		du := dist[u]
		adj, ws := g.Neighbors(graph.V(u))
		if math.IsInf(du, 1) {
			for _, v := range adj {
				if !math.IsInf(dist[v], 1) {
					return fmt.Errorf("check: unreachable %d adjacent to reached %d", u, v)
				}
			}
			continue
		}
		if du < 0 || math.IsNaN(du) {
			return fmt.Errorf("check: dist[%d] = %v out of range", u, du)
		}
		for i, v := range adj {
			if dist[v] > du+ws[i] {
				return fmt.Errorf("check: edge (%d,%d,w=%v) violated: dist[%d]=%v > %v",
					u, v, ws[i], v, dist[v], du+ws[i])
			}
		}
	}
	for v := 0; v < n; v++ {
		dv := dist[v]
		if graph.V(v) == src || math.IsInf(dv, 1) {
			continue
		}
		adj, ws := g.Neighbors(graph.V(v))
		tight := false
		for i, u := range adj {
			if dist[u]+ws[i] == dv {
				tight = true
				break
			}
		}
		if !tight {
			return fmt.Errorf("check: dist[%d]=%v has no tight incoming edge", v, dv)
		}
	}
	return nil
}

// SameDistances reports the first index where a and b differ by more than
// tol, or -1 when they match everywhere (treating +Inf as equal).
func SameDistances(a, b []float64, tol float64) int {
	if len(a) != len(b) {
		return 0
	}
	for i := range a {
		ai, bi := a[i], b[i]
		if math.IsInf(ai, 1) && math.IsInf(bi, 1) {
			continue
		}
		if math.Abs(ai-bi) > tol {
			return i
		}
	}
	return -1
}

// HopsToFloats widens an int32 hop-distance vector (-1 = unreachable)
// into float64 distances (+Inf = unreachable) for comparisons.
func HopsToFloats(h []int32) []float64 {
	out := make([]float64, len(h))
	for i, v := range h {
		if v < 0 {
			out[i] = math.Inf(1)
		} else {
			out[i] = float64(v)
		}
	}
	return out
}
