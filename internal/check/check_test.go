package check

import (
	"math"
	"testing"

	"radiusstep/internal/baseline"
	"radiusstep/internal/gen"
	"radiusstep/internal/graph"
)

func TestVerifyAcceptsTruth(t *testing.T) {
	g := gen.WithUniformIntWeights(gen.RandomConnected(120, 300, 1), 1, 40, 2)
	dist := baseline.Dijkstra(g, 3)
	if err := VerifyDistances(g, 3, dist); err != nil {
		t.Fatal(err)
	}
}

// TestVerifyRejectsCorruption is the failure-injection test: every way of
// perturbing a correct distance vector must be caught.
func TestVerifyRejectsCorruption(t *testing.T) {
	g := gen.WithUniformIntWeights(gen.RandomConnected(60, 150, 3), 1, 20, 4)
	truth := baseline.Dijkstra(g, 0)

	perturb := map[string]func([]float64){
		"raise-one":    func(d []float64) { d[10] += 1 },
		"lower-one":    func(d []float64) { d[10] -= 1 },
		"zero-one":     func(d []float64) { d[20] = 0 },
		"inf-one":      func(d []float64) { d[30] = math.Inf(1) },
		"negative":     func(d []float64) { d[5] = -3 },
		"nan":          func(d []float64) { d[5] = math.NaN() },
		"source-shift": func(d []float64) { d[0] = 1 },
		"all-zero": func(d []float64) {
			for i := range d {
				d[i] = 0
			}
		},
	}
	for name, fn := range perturb {
		d := append([]float64(nil), truth...)
		fn(d)
		if err := VerifyDistances(g, 0, d); err == nil {
			t.Errorf("%s: corruption not caught", name)
		}
	}
}

func TestVerifyRejectsWrongLength(t *testing.T) {
	g := gen.Chain(5)
	if err := VerifyDistances(g, 0, make([]float64, 3)); err == nil {
		t.Fatal("short vector accepted")
	}
}

func TestVerifyUnreachableNeighborRule(t *testing.T) {
	b := graph.NewBuilder(3)
	b.Add(0, 1, 1)
	b.Add(1, 2, 1)
	g := b.Build()
	bad := []float64{0, 1, math.Inf(1)} // 2 is reachable but claimed not
	if err := VerifyDistances(g, 0, bad); err == nil {
		t.Fatal("false unreachability not caught")
	}
}

func TestSameDistances(t *testing.T) {
	a := []float64{0, 1, math.Inf(1)}
	b := []float64{0, 1, math.Inf(1)}
	if i := SameDistances(a, b, 0); i != -1 {
		t.Fatalf("equal vectors differ at %d", i)
	}
	b[1] = 1.5
	if i := SameDistances(a, b, 0); i != 1 {
		t.Fatalf("difference index = %d, want 1", i)
	}
	if i := SameDistances(a, b, 1); i != -1 {
		t.Fatal("tolerance ignored")
	}
	if i := SameDistances(a, a[:2], 0); i != 0 {
		t.Fatal("length mismatch not flagged")
	}
}

func TestHopsToFloats(t *testing.T) {
	f := HopsToFloats([]int32{0, 3, -1})
	if f[0] != 0 || f[1] != 3 || !math.IsInf(f[2], 1) {
		t.Fatalf("HopsToFloats = %v", f)
	}
}
