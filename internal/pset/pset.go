// Package pset implements the ordered-set substrate of the paper (§2,
// §3.3): a join-based balanced search tree supporting split, union and
// difference, used by the radius-stepping engine to maintain the priority
// sets Q (tentative distances) and R (distance-plus-radius keys).
//
// The tree is a treap whose priorities are a deterministic hash of the
// key, so set shapes are reproducible. All operations are ephemeral
// (they consume their inputs). Bulk operations (Union, Difference,
// BuildSorted) fork goroutines on large subproblems, giving the
// O(p·log q) work and polylog-depth behavior the paper assumes for its
// ordered-set substrate.
package pset

// node is a treap node. size is maintained for O(log n) rank queries.
type node[K any] struct {
	key         K
	prio        uint64
	size        int32
	left, right *node[K]
}

func size[K any](t *node[K]) int32 {
	if t == nil {
		return 0
	}
	return t.size
}

func update[K any](t *node[K]) {
	t.size = 1 + size(t.left) + size(t.right)
}

func prioOf[K any](t *node[K]) uint64 {
	if t == nil {
		return 0
	}
	return t.prio
}

// Set is an ordered set of unique keys.
type Set[K any] struct {
	root *node[K]
	less func(a, b K) bool
	hash func(K) uint64
}

// New creates an empty set ordered by less. hash supplies deterministic
// treap priorities; it should distribute keys uniformly (use Splitmix64
// over a key fingerprint).
func New[K any](less func(a, b K) bool, hash func(K) uint64) *Set[K] {
	return &Set[K]{less: less, hash: hash}
}

// Splitmix64 is a strong 64-bit mixing function suitable for hash inputs.
func Splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Len returns the number of keys.
func (s *Set[K]) Len() int { return int(size(s.root)) }

// Empty reports whether the set has no keys.
func (s *Set[K]) Empty() bool { return s.root == nil }

func (s *Set[K]) newNode(k K) *node[K] {
	return &node[K]{key: k, prio: s.hash(k), size: 1}
}

// join combines l, a single middle node m, and r, where all keys in l are
// less than m.key and all keys in r are greater. It works for arbitrary
// priorities, repairing the heap order as it descends.
func join[K any](l, m, r *node[K]) *node[K] {
	if prioOf(l) <= m.prio && prioOf(r) <= m.prio {
		m.left, m.right = l, r
		update(m)
		return m
	}
	if prioOf(l) > prioOf(r) {
		l.right = join(l.right, m, r)
		update(l)
		return l
	}
	r.left = join(l, m, r.left)
	update(r)
	return r
}

// join2 combines l and r where every key of l is less than every key of r.
func join2[K any](l, r *node[K]) *node[K] {
	if l == nil {
		return r
	}
	if r == nil {
		return l
	}
	m, rest := popMax(l)
	return join(rest, m, r)
}

// popMax removes and returns the maximum node of t.
func popMax[K any](t *node[K]) (m, rest *node[K]) {
	if t.right == nil {
		rest = t.left
		t.left = nil
		t.size = 1
		return t, rest
	}
	m, r := popMax(t.right)
	t.right = r
	update(t)
	return m, t
}

// popMin removes and returns the minimum node of t.
func popMin[K any](t *node[K]) (m, rest *node[K]) {
	if t.left == nil {
		rest = t.right
		t.right = nil
		t.size = 1
		return t, rest
	}
	m, l := popMin(t.left)
	t.left = l
	update(t)
	return m, t
}

// split divides t by key k into (keys < k, node with key == k or nil,
// keys > k).
func (s *Set[K]) split(t *node[K], k K) (l, m, r *node[K]) {
	if t == nil {
		return nil, nil, nil
	}
	switch {
	case s.less(t.key, k):
		var ll *node[K]
		ll, m, r = s.split(t.right, k)
		t.right = ll
		update(t)
		return t, m, r
	case s.less(k, t.key):
		var rr *node[K]
		l, m, rr = s.split(t.left, k)
		t.left = rr
		update(t)
		return l, m, t
	default:
		l, r = t.left, t.right
		t.left, t.right = nil, nil
		t.size = 1
		return l, t, r
	}
}

// splitLE divides t into (keys <= k, keys > k).
func (s *Set[K]) splitLE(t *node[K], k K) (le, gt *node[K]) {
	if t == nil {
		return nil, nil
	}
	if s.less(k, t.key) { // t.key > k
		le, l := s.splitLE(t.left, k)
		t.left = l
		update(t)
		return le, t
	}
	r, gt := s.splitLE(t.right, k)
	t.right = r
	update(t)
	return t, gt
}

// Insert adds k, replacing an equal existing key. Reports whether the key
// was new.
func (s *Set[K]) Insert(k K) bool {
	l, m, r := s.split(s.root, k)
	fresh := m == nil
	s.root = join(l, s.newNode(k), r)
	return fresh
}

// Delete removes k if present and reports whether it was found.
func (s *Set[K]) Delete(k K) bool {
	l, m, r := s.split(s.root, k)
	s.root = join2(l, r)
	return m != nil
}

// Has reports whether k is in the set.
func (s *Set[K]) Has(k K) bool {
	t := s.root
	for t != nil {
		switch {
		case s.less(k, t.key):
			t = t.left
		case s.less(t.key, k):
			t = t.right
		default:
			return true
		}
	}
	return false
}

// Min returns the smallest key; ok is false for an empty set.
func (s *Set[K]) Min() (k K, ok bool) {
	t := s.root
	if t == nil {
		return k, false
	}
	for t.left != nil {
		t = t.left
	}
	return t.key, true
}

// Max returns the largest key; ok is false for an empty set.
func (s *Set[K]) Max() (k K, ok bool) {
	t := s.root
	if t == nil {
		return k, false
	}
	for t.right != nil {
		t = t.right
	}
	return t.key, true
}

// PopMin removes and returns the smallest key.
func (s *Set[K]) PopMin() (k K, ok bool) {
	if s.root == nil {
		return k, false
	}
	m, rest := popMin(s.root)
	s.root = rest
	return m.key, true
}

// SplitLE removes every key <= k from s and returns them as a new set.
// This is the frontier-extraction operation of Algorithm 2 (Line 7).
func (s *Set[K]) SplitLE(k K) *Set[K] {
	le, gt := s.splitLE(s.root, k)
	s.root = gt
	return &Set[K]{root: le, less: s.less, hash: s.hash}
}

// At returns the key of rank i (0-based, in sorted order).
func (s *Set[K]) At(i int) (k K, ok bool) {
	if i < 0 || i >= s.Len() {
		return k, false
	}
	t := s.root
	for {
		ls := int(size(t.left))
		switch {
		case i < ls:
			t = t.left
		case i == ls:
			return t.key, true
		default:
			i -= ls + 1
			t = t.right
		}
	}
}

// Ascend calls fn on every key in ascending order until fn returns false.
func (s *Set[K]) Ascend(fn func(K) bool) {
	ascend(s.root, fn)
}

func ascend[K any](t *node[K], fn func(K) bool) bool {
	if t == nil {
		return true
	}
	return ascend(t.left, fn) && fn(t.key) && ascend(t.right, fn)
}

// Slice returns the keys in ascending order.
func (s *Set[K]) Slice() []K {
	out := make([]K, 0, s.Len())
	s.Ascend(func(k K) bool {
		out = append(out, k)
		return true
	})
	return out
}
