package pset

import "radiusstep/internal/parallel"

// bulkParallelThreshold is the subproblem size above which bulk
// operations fork goroutines.
const bulkParallelThreshold = 1 << 12

// UnionWith merges other into s (other is consumed and must not be used
// afterwards). Duplicate keys keep s's copy. Large unions recurse in
// parallel, matching the paper's O(p log q) set-union substrate.
func (s *Set[K]) UnionWith(other *Set[K]) {
	s.root = s.union(s.root, other.root)
	other.root = nil
}

func (s *Set[K]) union(a, b *node[K]) *node[K] {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if a.prio < b.prio {
		a, b = b, a
	}
	l, _, r := s.split(b, a.key) // drop b's duplicate of a.key, if any
	if size(a) > bulkParallelThreshold && size(l)+size(r) > bulkParallelThreshold {
		var nl, nr *node[K]
		parallel.Do(
			func() { nl = s.union(a.left, l) },
			func() { nr = s.union(a.right, r) },
		)
		a.left, a.right = nl, nr
	} else {
		a.left = s.union(a.left, l)
		a.right = s.union(a.right, r)
	}
	update(a)
	return a
}

// DiffWith removes every key of other from s (other is consumed).
func (s *Set[K]) DiffWith(other *Set[K]) {
	s.root = s.diff(s.root, other.root)
	other.root = nil
}

func (s *Set[K]) diff(a, b *node[K]) *node[K] {
	if a == nil || b == nil {
		return a
	}
	l, _, r := s.split(a, b.key)
	var dl, dr *node[K]
	if size(l)+size(r) > bulkParallelThreshold && size(b) > 64 {
		parallel.Do(
			func() { dl = s.diff(l, b.left) },
			func() { dr = s.diff(r, b.right) },
		)
	} else {
		dl = s.diff(l, b.left)
		dr = s.diff(r, b.right)
	}
	return join2(dl, dr)
}

// IntersectWith keeps only keys present in both s and other
// (other is consumed).
func (s *Set[K]) IntersectWith(other *Set[K]) {
	s.root = s.intersect(s.root, other.root)
	other.root = nil
}

func (s *Set[K]) intersect(a, b *node[K]) *node[K] {
	if a == nil || b == nil {
		return nil
	}
	l, m, r := s.split(a, b.key)
	il := s.intersect(l, b.left)
	ir := s.intersect(r, b.right)
	if m != nil {
		return join(il, m, ir)
	}
	return join2(il, ir)
}

// BuildSorted replaces s's contents with the given strictly-increasing
// keys. It divides at the midpoint and repairs priorities with join, so
// construction is O(n log n) work with logarithmic span on large inputs.
func (s *Set[K]) BuildSorted(keys []K) {
	s.root = s.buildSorted(keys)
}

// NewSorted builds a set directly from strictly-increasing keys.
func NewSorted[K any](keys []K, less func(a, b K) bool, hash func(K) uint64) *Set[K] {
	out := New(less, hash)
	out.BuildSorted(keys)
	return out
}

func (s *Set[K]) buildSorted(keys []K) *node[K] {
	switch len(keys) {
	case 0:
		return nil
	case 1:
		return s.newNode(keys[0])
	}
	mid := len(keys) / 2
	var l, r *node[K]
	if len(keys) > bulkParallelThreshold {
		parallel.Do(
			func() { l = s.buildSorted(keys[:mid]) },
			func() { r = s.buildSorted(keys[mid+1:]) },
		)
	} else {
		l = s.buildSorted(keys[:mid])
		r = s.buildSorted(keys[mid+1:])
	}
	return join(l, s.newNode(keys[mid]), r)
}

// Check verifies the treap invariants (order by less, heap order by
// priority, size bookkeeping); it is exported for tests and returns false
// on the first violation.
func (s *Set[K]) Check() bool {
	ok := true
	var walk func(t *node[K]) (minK, maxK K, has bool)
	walk = func(t *node[K]) (K, K, bool) {
		var zero K
		if t == nil {
			return zero, zero, false
		}
		if t.size != 1+size(t.left)+size(t.right) {
			ok = false
		}
		if prioOf(t.left) > t.prio || prioOf(t.right) > t.prio {
			ok = false
		}
		lmin, lmax, lhas := walk(t.left)
		rmin, rmax, rhas := walk(t.right)
		if lhas && !s.less(lmax, t.key) {
			ok = false
		}
		if rhas && !s.less(t.key, rmin) {
			ok = false
		}
		minK, maxK := t.key, t.key
		if lhas {
			minK = lmin
		}
		if rhas {
			maxK = rmax
		}
		return minK, maxK, true
	}
	walk(s.root)
	return ok
}
