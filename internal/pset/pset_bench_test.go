package pset

import (
	"math/rand/v2"
	"testing"
)

func benchSet(n int) *Set[int] {
	keys := make([]int, n)
	for i := range keys {
		keys[i] = i * 2
	}
	return NewSorted(keys,
		func(a, b int) bool { return a < b },
		func(k int) uint64 { return Splitmix64(uint64(k)) })
}

func BenchmarkInsert(b *testing.B) {
	s := benchSet(1 << 16)
	r := rand.New(rand.NewPCG(1, 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Insert(r.IntN(1 << 18))
	}
}

func BenchmarkHas(b *testing.B) {
	s := benchSet(1 << 16)
	r := rand.New(rand.NewPCG(3, 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Has(r.IntN(1 << 18))
	}
}

func BenchmarkBuildSorted64k(b *testing.B) {
	keys := make([]int, 1<<16)
	for i := range keys {
		keys[i] = i
	}
	less := func(a, b int) bool { return a < b }
	hash := func(k int) uint64 { return Splitmix64(uint64(k)) }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewSorted(keys, less, hash)
	}
}

func BenchmarkUnionInterleaved64k(b *testing.B) {
	n := 1 << 16
	less := func(a, b int) bool { return a < b }
	hash := func(k int) uint64 { return Splitmix64(uint64(k)) }
	evens := make([]int, n)
	odds := make([]int, n)
	for i := 0; i < n; i++ {
		evens[i] = 2 * i
		odds[i] = 2*i + 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		x := NewSorted(evens, less, hash)
		y := NewSorted(odds, less, hash)
		b.StartTimer()
		x.UnionWith(y)
	}
}

func BenchmarkDiffSmallFromLarge(b *testing.B) {
	n := 1 << 16
	less := func(a, b int) bool { return a < b }
	hash := func(k int) uint64 { return Splitmix64(uint64(k)) }
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	small := make([]int, 512)
	for i := range small {
		small[i] = i * 128
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		x := NewSorted(all, less, hash)
		y := NewSorted(small, less, hash)
		b.StartTimer()
		x.DiffWith(y)
	}
}

func BenchmarkSplitLE(b *testing.B) {
	s := benchSet(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		le := s.SplitLE(1 << 15)
		s.UnionWith(le) // put it back for the next iteration
	}
}

func BenchmarkPopMinPushCycle(b *testing.B) {
	s := benchSet(1 << 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k, _ := s.PopMin()
		s.Insert(k + 1<<13)
	}
}
