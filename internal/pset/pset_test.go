package pset

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func intSet() *Set[int] {
	return New(
		func(a, b int) bool { return a < b },
		func(k int) uint64 { return Splitmix64(uint64(k)) },
	)
}

func fromInts(vals ...int) *Set[int] {
	s := intSet()
	for _, v := range vals {
		s.Insert(v)
	}
	return s
}

func sortedUnique(vals []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, v := range vals {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}

func assertEqualsModel(t *testing.T, s *Set[int], model []int) {
	t.Helper()
	if !s.Check() {
		t.Fatal("treap invariants violated")
	}
	got := s.Slice()
	if len(got) != len(model) {
		t.Fatalf("len = %d, want %d (got %v want %v)", len(got), len(model), got, model)
	}
	for i := range model {
		if got[i] != model[i] {
			t.Fatalf("slice[%d] = %d, want %d", i, got[i], model[i])
		}
	}
	if s.Len() != len(model) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(model))
	}
}

func TestInsertDeleteBasic(t *testing.T) {
	s := intSet()
	if !s.Empty() {
		t.Fatal("new set not empty")
	}
	if !s.Insert(5) || !s.Insert(3) || !s.Insert(8) {
		t.Fatal("fresh inserts returned false")
	}
	if s.Insert(5) {
		t.Fatal("duplicate insert returned true")
	}
	assertEqualsModel(t, s, []int{3, 5, 8})
	if !s.Delete(5) {
		t.Fatal("delete of present key returned false")
	}
	if s.Delete(5) {
		t.Fatal("delete of absent key returned true")
	}
	assertEqualsModel(t, s, []int{3, 8})
}

func TestHasMinMax(t *testing.T) {
	s := fromInts(4, 1, 9, 7)
	if !s.Has(7) || s.Has(2) {
		t.Fatal("Has wrong")
	}
	if k, ok := s.Min(); !ok || k != 1 {
		t.Fatalf("Min = %d,%v", k, ok)
	}
	if k, ok := s.Max(); !ok || k != 9 {
		t.Fatalf("Max = %d,%v", k, ok)
	}
	empty := intSet()
	if _, ok := empty.Min(); ok {
		t.Fatal("Min on empty set")
	}
	if _, ok := empty.Max(); ok {
		t.Fatal("Max on empty set")
	}
}

func TestPopMinDrains(t *testing.T) {
	vals := []int{9, 2, 7, 4, 0, 11}
	s := fromInts(vals...)
	want := sortedUnique(vals)
	for _, w := range want {
		k, ok := s.PopMin()
		if !ok || k != w {
			t.Fatalf("PopMin = %d,%v, want %d", k, ok, w)
		}
	}
	if _, ok := s.PopMin(); ok {
		t.Fatal("PopMin on drained set")
	}
}

func TestAt(t *testing.T) {
	s := fromInts(10, 20, 30, 40)
	for i, want := range []int{10, 20, 30, 40} {
		if k, ok := s.At(i); !ok || k != want {
			t.Fatalf("At(%d) = %d,%v", i, k, ok)
		}
	}
	if _, ok := s.At(-1); ok {
		t.Fatal("At(-1) ok")
	}
	if _, ok := s.At(4); ok {
		t.Fatal("At(len) ok")
	}
}

func TestSplitLE(t *testing.T) {
	s := fromInts(1, 3, 5, 7, 9)
	le := s.SplitLE(5)
	assertEqualsModel(t, le, []int{1, 3, 5})
	assertEqualsModel(t, s, []int{7, 9})
	// Split below everything.
	le2 := s.SplitLE(0)
	assertEqualsModel(t, le2, nil)
	assertEqualsModel(t, s, []int{7, 9})
	// Split above everything.
	le3 := s.SplitLE(100)
	assertEqualsModel(t, le3, []int{7, 9})
	assertEqualsModel(t, s, nil)
}

func TestUnionDisjointAndOverlap(t *testing.T) {
	a := fromInts(1, 3, 5)
	b := fromInts(2, 4, 6)
	a.UnionWith(b)
	assertEqualsModel(t, a, []int{1, 2, 3, 4, 5, 6})

	c := fromInts(1, 2, 3)
	d := fromInts(2, 3, 4)
	c.UnionWith(d)
	assertEqualsModel(t, c, []int{1, 2, 3, 4})
}

func TestDiff(t *testing.T) {
	a := fromInts(1, 2, 3, 4, 5)
	b := fromInts(2, 4, 9)
	a.DiffWith(b)
	assertEqualsModel(t, a, []int{1, 3, 5})
	a.DiffWith(fromInts(1, 3, 5))
	assertEqualsModel(t, a, nil)
}

func TestIntersect(t *testing.T) {
	a := fromInts(1, 2, 3, 4, 5, 6)
	b := fromInts(2, 4, 6, 8)
	a.IntersectWith(b)
	assertEqualsModel(t, a, []int{2, 4, 6})
}

func TestBuildSorted(t *testing.T) {
	for _, n := range []int{0, 1, 2, 100, 5000} {
		keys := make([]int, n)
		for i := range keys {
			keys[i] = i * 2
		}
		s := NewSorted(keys,
			func(a, b int) bool { return a < b },
			func(k int) uint64 { return Splitmix64(uint64(k)) })
		assertEqualsModel(t, s, keys)
	}
}

func TestBuildSortedLargeParallel(t *testing.T) {
	n := bulkParallelThreshold*4 + 37
	keys := make([]int, n)
	for i := range keys {
		keys[i] = i
	}
	s := NewSorted(keys,
		func(a, b int) bool { return a < b },
		func(k int) uint64 { return Splitmix64(uint64(k)) })
	if s.Len() != n || !s.Check() {
		t.Fatalf("large build: len=%d check=%v", s.Len(), s.Check())
	}
	if k, _ := s.Min(); k != 0 {
		t.Fatalf("min = %d", k)
	}
	if k, _ := s.Max(); k != n-1 {
		t.Fatalf("max = %d", k)
	}
}

func TestLargeUnionDiffParallel(t *testing.T) {
	n := bulkParallelThreshold * 3
	evens := make([]int, 0, n)
	odds := make([]int, 0, n)
	for i := 0; i < n; i++ {
		evens = append(evens, 2*i)
		odds = append(odds, 2*i+1)
	}
	less := func(a, b int) bool { return a < b }
	hash := func(k int) uint64 { return Splitmix64(uint64(k)) }
	a := NewSorted(evens, less, hash)
	b := NewSorted(odds, less, hash)
	a.UnionWith(b)
	if a.Len() != 2*n || !a.Check() {
		t.Fatalf("union len=%d", a.Len())
	}
	a.DiffWith(NewSorted(odds, less, hash))
	if a.Len() != n || !a.Check() {
		t.Fatalf("diff len=%d", a.Len())
	}
	if a.Has(1) || !a.Has(2) {
		t.Fatal("diff contents wrong")
	}
}

func TestAscendEarlyStop(t *testing.T) {
	s := fromInts(1, 2, 3, 4, 5)
	var got []int
	s.Ascend(func(k int) bool {
		got = append(got, k)
		return k < 3
	})
	if len(got) != 3 || got[2] != 3 {
		t.Fatalf("early stop got %v", got)
	}
}

// TestRandomOpsAgainstModel drives a set with random operations and
// compares against a sorted-slice model after every operation batch.
func TestRandomOpsAgainstModel(t *testing.T) {
	r := rand.New(rand.NewPCG(42, 43))
	s := intSet()
	model := map[int]bool{}
	for iter := 0; iter < 3000; iter++ {
		v := r.IntN(200)
		switch r.IntN(4) {
		case 0, 1:
			fresh := s.Insert(v)
			if fresh == model[v] {
				t.Fatalf("iter %d: Insert(%d) fresh=%v but model has=%v", iter, v, fresh, model[v])
			}
			model[v] = true
		case 2:
			found := s.Delete(v)
			if found != model[v] {
				t.Fatalf("iter %d: Delete(%d) found=%v model=%v", iter, v, found, model[v])
			}
			delete(model, v)
		case 3:
			if s.Has(v) != model[v] {
				t.Fatalf("iter %d: Has(%d) mismatch", iter, v)
			}
		}
	}
	var keys []int
	for k := range model {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	assertEqualsModel(t, s, keys)
}

// TestQuickUnion checks the set-union algebra against maps under
// testing/quick-generated inputs.
func TestQuickUnion(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a := intSet()
		b := intSet()
		model := map[int]bool{}
		for _, x := range xs {
			a.Insert(int(x))
			model[int(x)] = true
		}
		for _, y := range ys {
			b.Insert(int(y))
			model[int(y)] = true
		}
		a.UnionWith(b)
		if a.Len() != len(model) || !a.Check() {
			return false
		}
		for k := range model {
			if !a.Has(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDiff checks difference against the map model.
func TestQuickDiff(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a := intSet()
		b := intSet()
		model := map[int]bool{}
		for _, x := range xs {
			a.Insert(int(x))
			model[int(x)] = true
		}
		for _, y := range ys {
			b.Insert(int(y))
			delete(model, int(y))
		}
		a.DiffWith(b)
		if a.Len() != len(model) || !a.Check() {
			return false
		}
		for k := range model {
			if !a.Has(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSplitLE checks that SplitLE partitions exactly at the pivot.
func TestQuickSplitLE(t *testing.T) {
	f := func(xs []uint8, pivot uint8) bool {
		s := intSet()
		for _, x := range xs {
			s.Insert(int(x))
		}
		total := s.Len()
		le := s.SplitLE(int(pivot))
		if le.Len()+s.Len() != total || !le.Check() || !s.Check() {
			return false
		}
		okLE := true
		le.Ascend(func(k int) bool {
			if k > int(pivot) {
				okLE = false
			}
			return true
		})
		okGT := true
		s.Ascend(func(k int) bool {
			if k <= int(pivot) {
				okGT = false
			}
			return true
		})
		return okLE && okGT
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicShape(t *testing.T) {
	// Same keys in different insertion orders must produce identical
	// shapes (priorities are hashed from keys).
	a := fromInts(1, 2, 3, 4, 5, 6, 7)
	b := fromInts(7, 3, 5, 1, 6, 2, 4)
	if !sameShape(a.root, b.root) {
		t.Fatal("shapes differ across insertion orders")
	}
}

func sameShape[K comparable](a, b *node[K]) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.key == b.key && sameShape(a.left, b.left) && sameShape(a.right, b.right)
}
