package preprocess

// This file implements the shortcut heuristics of §4: given a ball's
// shortest-path tree, decide which tree vertices receive a direct
// shortcut edge from the source so that every ball vertex is reachable
// within k hops along shortest paths.

// heuristicTargets returns the local ball indices that opt's heuristic
// shortcuts. The returned slice is scratch-owned and valid until the next
// call on the same scratch.
func heuristicTargets(ws *ballScratch, b *ball, opt Options) []int32 {
	switch {
	case opt.K == 1 || opt.Heuristic == Direct:
		return directTargets(ws, b)
	case opt.Heuristic == Greedy:
		return greedyTargets(ws, b, opt.K)
	default:
		return dpTargets(ws, b, opt.K)
	}
}

// directTargets implements the (1, ρ) construction (§4.1): a shortcut to
// every ball vertex except the source.
func directTargets(ws *ballScratch, b *ball) []int32 {
	ws.targets = ws.targets[:0]
	for i := 1; i < b.Len(); i++ {
		ws.targets = append(ws.targets, int32(i))
	}
	return ws.targets
}

// greedyTargets implements §4.2.1: shortcut every tree vertex whose depth
// is k+1, 2k+1, 3k+1, … — i.e. depth ≡ 1 (mod k) and depth > k. Every
// deeper vertex is then within k hops of its nearest shortcut ancestor.
func greedyTargets(ws *ballScratch, b *ball, k int) []int32 {
	ws.targets = ws.targets[:0]
	for i := 1; i < b.Len(); i++ {
		h := int(b.hop[i])
		if h > k && (h-1)%k == 0 {
			ws.targets = append(ws.targets, int32(i))
		}
	}
	return ws.targets
}

// dpTargets implements §4.2.2: the F(u, t) dynamic program, where F(u, t)
// is the minimum number of shortcut edges into the subtree rooted at u so
// that every subtree vertex ends at most k new-hops from the source,
// given that u's parent sits at t new-hops:
//
//	F(u, k) = 1 + Σ_w F(w, 1)                      (must shortcut u)
//	F(u, t) = min(1 + Σ_w F(w, 1), Σ_w F(w, t+1))  for t < k
//
// with w ranging over u's tree children. The answer is Σ F(u, 0) over the
// source's children. A second top-down pass traces which vertices the
// optimum shortcuts. Both passes are O(k·|ball|).
func dpTargets(ws *ballScratch, b *ball, k int) []int32 {
	n := b.Len()
	ws.targets = ws.targets[:0]
	if n <= 1 {
		return ws.targets
	}
	stride := k + 1
	ws.childHead = resize(ws.childHead, n)
	ws.childNext = resize(ws.childNext, n)
	ws.sumF1 = resize(ws.sumF1, n)
	ws.ftab = resize(ws.ftab, n*stride)
	for i := 0; i < n; i++ {
		ws.childHead[i] = -1
	}
	// Children lists; parents settle before children, so local indices
	// increase down the tree.
	for i := 1; i < n; i++ {
		p := b.parent[i]
		ws.childNext[i] = ws.childHead[p]
		ws.childHead[p] = int32(i)
	}
	// Bottom-up pass in reverse settle order (a valid post-order).
	for i := n - 1; i >= 1; i-- {
		var sumF1 int32
		for c := ws.childHead[i]; c != -1; c = ws.childNext[c] {
			sumF1 += ws.ftab[int(c)*stride+1]
		}
		ws.sumF1[i] = sumF1
		ws.ftab[i*stride+k] = 1 + sumF1
		for t := 0; t < k; t++ {
			var sumT int32
			for c := ws.childHead[i]; c != -1; c = ws.childNext[c] {
				sumT += ws.ftab[int(c)*stride+t+1]
			}
			best := 1 + sumF1
			if sumT < best {
				best = sumT
			}
			ws.ftab[i*stride+t] = best
		}
	}
	// Top-down trace: at (u, t), shortcut iff forced (t == k) or the
	// shortcut branch attains the minimum.
	ws.stack = ws.stack[:0]
	for c := ws.childHead[0]; c != -1; c = ws.childNext[c] {
		ws.stack = append(ws.stack, dpFrame{c, 0})
	}
	for len(ws.stack) > 0 {
		f := ws.stack[len(ws.stack)-1]
		ws.stack = ws.stack[:len(ws.stack)-1]
		u, t := int(f.node), int(f.t)
		shortcut := t == k || ws.ftab[u*stride+t] == 1+ws.sumF1[u]
		childT := int32(t + 1)
		if shortcut {
			ws.targets = append(ws.targets, f.node)
			childT = 1
		}
		for c := ws.childHead[u]; c != -1; c = ws.childNext[c] {
			ws.stack = append(ws.stack, dpFrame{c, childT})
		}
	}
	return ws.targets
}

func resize(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}
