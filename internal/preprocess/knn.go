package preprocess

import (
	"math"
	"sort"
	"sync/atomic"

	"radiusstep/internal/graph"
	"radiusstep/internal/parallel"
)

// sortedAdj holds, for every vertex, its adjacency sorted by ascending
// weight (ties by neighbor id). The restricted search (Lemma 4.2) only
// relaxes the first ρ arcs of each vertex, which requires this order; the
// sort also enables pruning arcs once the tentative distance would exceed
// the current ball limit.
type sortedAdj struct {
	off []int64
	adj []graph.V
	w   []float64
}

func buildSortedAdj(g *graph.CSR) *sortedAdj {
	sa := &sortedAdj{
		off: g.Off,
		adj: make([]graph.V, len(g.Adj)),
		w:   make([]float64, len(g.W)),
	}
	copy(sa.adj, g.Adj)
	copy(sa.w, g.W)
	parallel.ForGrain(g.NumVertices(), 256, func(u int) {
		lo, hi := sa.off[u], sa.off[u+1]
		sort.Sort(pairSlice{sa.adj[lo:hi], sa.w[lo:hi]})
	})
	return sa
}

// pairSlice sorts an adjacency slice jointly with its weights.
type pairSlice struct {
	adj []graph.V
	w   []float64
}

func (p pairSlice) Len() int { return len(p.adj) }
func (p pairSlice) Less(i, j int) bool {
	return p.w[i] < p.w[j] || (p.w[i] == p.w[j] && p.adj[i] < p.adj[j])
}
func (p pairSlice) Swap(i, j int) {
	p.adj[i], p.adj[j] = p.adj[j], p.adj[i]
	p.w[i], p.w[j] = p.w[j], p.w[i]
}

// ball is one source's restricted shortest-path tree, in settle (pop)
// order; verts[0] is the source itself. parent holds local indices into
// verts (-1 for the source) and is hop-minimal among shortest paths,
// the tie-break §4.2.2 requires.
type ball struct {
	src    graph.V
	verts  []graph.V
	dist   []float64
	hop    []int32
	parent []int32
	rRho   float64
}

// Len returns the number of ball vertices including the source.
func (b *ball) Len() int { return len(b.verts) }

// heapEnt is a lazy-deletion binary-heap entry.
type heapEnt struct {
	d float64
	v graph.V
}

// ballScratch is per-worker state sized once per graph so the per-source
// searches allocate nothing. Generation stamps make resets O(ball) rather
// than O(n).
type ballScratch struct {
	g         *graph.CSR
	gen       uint32
	visGen    []uint32
	setGen    []uint32
	dist      []float64
	hop       []int32
	parentLoc []int32
	local     []int32
	heap      []heapEnt
	b         ball
	scanned   int64 // arcs relaxed for the most recent source

	// frontier buffers for the unit-weight BFS fast path
	fr, nx []graph.V

	// heuristic scratch, sized to the current ball
	childHead []int32
	childNext []int32
	sumF1     []int32
	ftab      []int32 // (k+1)-strided DP table
	targets   []int32
	stack     []dpFrame
}

type dpFrame struct {
	node int32
	t    int32
}

func newBallScratch(g *graph.CSR) *ballScratch {
	n := g.NumVertices()
	return &ballScratch{
		g:         g,
		visGen:    make([]uint32, n),
		setGen:    make([]uint32, n),
		dist:      make([]float64, n),
		hop:       make([]int32, n),
		parentLoc: make([]int32, n),
		local:     make([]int32, n),
	}
}

func (ws *ballScratch) heapPush(e heapEnt) {
	ws.heap = append(ws.heap, e)
	i := len(ws.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if ws.heap[p].d <= e.d {
			break
		}
		ws.heap[i] = ws.heap[p]
		i = p
	}
	ws.heap[i] = e
}

func (ws *ballScratch) heapPop() heapEnt {
	top := ws.heap[0]
	last := len(ws.heap) - 1
	e := ws.heap[last]
	ws.heap = ws.heap[:last]
	if last > 0 {
		i := 0
		for {
			c := 2*i + 1
			if c >= last {
				break
			}
			if c+1 < last && ws.heap[c+1].d < ws.heap[c].d {
				c++
			}
			if ws.heap[c].d >= e.d {
				break
			}
			ws.heap[i] = ws.heap[c]
			i = c
		}
		ws.heap[i] = e
	}
	return top
}

// explore runs the restricted Dijkstra from src: it relaxes only the ρ
// lightest arcs of each settled vertex, settles vertices in distance
// order, records r_ρ(src) as the distance of the ρ-th settled vertex
// (counting src itself), and continues through distance ties so that
// every vertex at distance exactly r_ρ is included (the paper's §5.1
// determinism modification).
func (ws *ballScratch) explore(sa *sortedAdj, rho int, src graph.V) *ball {
	ws.gen++
	gen := ws.gen
	b := &ws.b
	b.src = src
	b.verts = b.verts[:0]
	b.dist = b.dist[:0]
	b.hop = b.hop[:0]
	b.parent = b.parent[:0]
	ws.heap = ws.heap[:0]
	ws.scanned = 0

	ws.visGen[src] = gen
	ws.dist[src] = 0
	ws.hop[src] = 0
	ws.parentLoc[src] = -1
	ws.heapPush(heapEnt{0, src})

	rLimit := math.Inf(1)
	for len(ws.heap) > 0 {
		e := ws.heapPop()
		if ws.setGen[e.v] == gen || e.d != ws.dist[e.v] {
			continue // stale entry
		}
		if len(b.verts) >= rho && e.d > rLimit {
			break
		}
		ws.setGen[e.v] = gen
		ws.local[e.v] = int32(len(b.verts))
		b.verts = append(b.verts, e.v)
		b.dist = append(b.dist, e.d)
		b.hop = append(b.hop, ws.hop[e.v])
		b.parent = append(b.parent, ws.parentLoc[e.v])
		if len(b.verts) == rho {
			rLimit = e.d
		}
		lo, hi := sa.off[e.v], sa.off[e.v+1]
		if hi-lo > int64(rho) {
			hi = lo + int64(rho) // the ρ lightest arcs suffice (Lemma 4.2)
		}
		for i := lo; i < hi; i++ {
			nd := e.d + sa.w[i]
			if nd > rLimit {
				break // arcs are weight-sorted: the rest only get heavier
			}
			ws.scanned++
			v := sa.adj[i]
			switch {
			case ws.visGen[v] != gen || nd < ws.dist[v]:
				ws.visGen[v] = gen
				ws.dist[v] = nd
				ws.hop[v] = ws.hop[e.v] + 1
				ws.parentLoc[v] = ws.local[e.v]
				ws.heapPush(heapEnt{nd, v})
			case nd == ws.dist[v] && ws.setGen[v] != gen && ws.hop[e.v]+1 < ws.hop[v]:
				// Equal distance, fewer hops: keep the hop-minimal
				// shortest-path tree the DP heuristic requires.
				ws.hop[v] = ws.hop[e.v] + 1
				ws.parentLoc[v] = ws.local[e.v]
			}
		}
	}
	switch {
	case len(b.verts) >= rho:
		b.rRho = b.dist[rho-1]
	case len(b.verts) > 0:
		b.rRho = b.dist[len(b.verts)-1]
	default:
		b.rRho = 0
	}
	return b
}

// exploreUnit is explore specialized to unit-weight graphs (§4.1's BFS
// variant): a level-synchronous bounded BFS replaces the heap, visiting
// whole levels until at least ρ vertices are settled — which implements
// the tie-continuation rule exactly, since every vertex at distance
// r_ρ is in the final level. It produces the same radii and ball sizes
// as explore (the shortest-path tree may differ among equally hop-
// minimal choices). Each vertex still relaxes only its ρ lexically
// first arcs, mirroring the weighted restriction.
func (ws *ballScratch) exploreUnit(sa *sortedAdj, rho int, src graph.V) *ball {
	ws.gen++
	gen := ws.gen
	b := &ws.b
	b.src = src
	b.verts = b.verts[:0]
	b.dist = b.dist[:0]
	b.hop = b.hop[:0]
	b.parent = b.parent[:0]
	ws.scanned = 0

	settle := func(v graph.V, level int32, parentLoc int32) {
		ws.setGen[v] = gen
		ws.local[v] = int32(len(b.verts))
		b.verts = append(b.verts, v)
		b.dist = append(b.dist, float64(level))
		b.hop = append(b.hop, level)
		b.parent = append(b.parent, parentLoc)
	}
	ws.visGen[src] = gen
	settle(src, 0, -1)
	ws.fr = append(ws.fr[:0], src)
	level := int32(0)
	for len(ws.fr) > 0 && b.Len() < rho {
		level++
		ws.nx = ws.nx[:0]
		for _, u := range ws.fr {
			lo, hi := sa.off[u], sa.off[u+1]
			if hi-lo > int64(rho) {
				hi = lo + int64(rho)
			}
			parentLoc := ws.local[u]
			for i := lo; i < hi; i++ {
				ws.scanned++
				v := sa.adj[i]
				if ws.visGen[v] == gen {
					continue
				}
				ws.visGen[v] = gen
				settle(v, level, parentLoc)
				ws.nx = append(ws.nx, v)
			}
		}
		ws.fr, ws.nx = ws.nx, ws.fr
	}
	switch {
	case b.Len() >= rho:
		b.rRho = b.dist[rho-1]
	case b.Len() > 0:
		b.rRho = b.dist[b.Len()-1]
	default:
		b.rRho = 0
	}
	return b
}

// ballStats aggregates work counters over a full pass.
type ballStats struct {
	visited int64
	scanned int64
}

// forEachBall computes the ρ-ball of every vertex in parallel and calls
// process(worker, scratch, ball) for each. process runs concurrently
// across workers but each worker is sequential; the scratch and ball are
// reused and only valid during the call.
func forEachBall(g *graph.CSR, rho int, process func(worker int, ws *ballScratch, b *ball)) ballStats {
	sa := buildSortedAdj(g)
	n := g.NumVertices()
	unit := g.IsUnit()
	var visited, scanned atomic.Int64
	parallel.Workers(n, func(worker int, claim func() (int, bool)) {
		ws := newBallScratch(g)
		var vis, sc int64
		for {
			s, ok := claim()
			if !ok {
				break
			}
			var b *ball
			if unit {
				b = ws.exploreUnit(sa, rho, graph.V(s))
			} else {
				b = ws.explore(sa, rho, graph.V(s))
			}
			vis += int64(b.Len())
			sc += ws.scanned
			process(worker, ws, b)
		}
		visited.Add(vis)
		scanned.Add(sc)
	})
	return ballStats{visited: visited.Load(), scanned: scanned.Load()}
}
