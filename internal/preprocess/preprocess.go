// Package preprocess implements the paper's §4: converting an arbitrary
// undirected graph into a (k, ρ)-graph by adding shortcut edges, and
// producing the per-vertex radii r(v) = r_ρ(v) that Radius-Stepping
// consumes.
//
// The engine is a parallel "restricted Dijkstra": from every vertex, a
// bounded search over only the ρ lightest edges per vertex discovers the
// ρ-nearest ball (Lemma 4.2), continuing through distance ties as in the
// paper's experimental setup (§5.1). On each ball's shortest-path tree the
// package can apply direct (1, ρ) shortcutting, the greedy level heuristic
// (§4.2.1), or the dynamic-programming heuristic (§4.2.2).
//
// # Radii persistence contract
//
// Run's outputs — the augmented graph and the radii vector — are pure
// functions of (input graph, Rho, K, Heuristic) and contain everything a
// query engine needs; no preprocessing state survives outside them. They
// are therefore safe to persist (internal/graph's snapshot format stores
// both, plus the parameters, under a checksum) and reload in another
// process without re-running this package. Correctness of a reloaded
// radii vector only requires non-negative finite entries — the engines
// accept any such radii; the (k, ρ) property merely bounds the number of
// substeps per step — so loaders validate values, not provenance.
package preprocess

import (
	"fmt"

	"radiusstep/internal/graph"
	"radiusstep/internal/parallel"
)

// Heuristic selects the shortcut construction for k > 1.
type Heuristic int

const (
	// Direct adds an edge from the source to every ball vertex: the
	// (1, ρ) construction. It ignores k.
	Direct Heuristic = iota
	// Greedy shortcuts every tree vertex at depth k+1, 2k+1, … (§4.2.1).
	Greedy
	// DP solves the F(u, t) recurrence for the per-tree optimal shortcut
	// set (§4.2.2).
	DP
)

// String returns the heuristic name.
func (h Heuristic) String() string {
	switch h {
	case Direct:
		return "direct"
	case Greedy:
		return "greedy"
	case DP:
		return "dp"
	default:
		return fmt.Sprintf("Heuristic(%d)", int(h))
	}
}

// Options configures preprocessing.
type Options struct {
	// Rho is the ball size ρ (must be >= 1). r_ρ(v) is the distance to
	// the ρ-th closest vertex, counting v itself.
	Rho int
	// K is the hop budget k (>= 1). With K == 1 the heuristic is forced
	// to Direct.
	K int
	// Heuristic picks the shortcut scheme for K > 1.
	Heuristic Heuristic
}

func (o Options) validate(n int) error {
	if o.Rho < 1 {
		return fmt.Errorf("preprocess: Rho must be >= 1, got %d", o.Rho)
	}
	if o.K < 1 {
		return fmt.Errorf("preprocess: K must be >= 1, got %d", o.K)
	}
	if n == 0 {
		return fmt.Errorf("preprocess: empty graph")
	}
	return nil
}

// Result is the output of Run.
type Result struct {
	// G is the augmented (k, ρ)-graph: the input plus shortcut edges,
	// deduplicated keeping minimum weights. Shortcut weights equal exact
	// shortest-path distances, so the metric of G equals the input's.
	G *graph.CSR
	// Radii holds r_ρ(v) for every vertex (on the original metric,
	// which the augmentation preserves).
	Radii []float64
	// Added counts shortcut edges emitted by the heuristic, summed per
	// source before symmetric deduplication — the paper's "number of
	// added edges" accounting (a source-to-target shortcut is counted
	// once; shortcuts to existing direct neighbors are not counted).
	Added int64
	// Visited is the total number of ball vertices visited across all
	// sources, a proxy for preprocessing work (Θ(nρ) to Θ(nρ²)).
	Visited int64
	// EdgesScanned counts arcs relaxed during the restricted searches.
	EdgesScanned int64
}

// Run preprocesses g per opt: it computes every vertex's ρ-ball, derives
// radii, applies the shortcut heuristic, and materializes the augmented
// graph.
func Run(g *graph.CSR, opt Options) (*Result, error) {
	if err := opt.validate(g.NumVertices()); err != nil {
		return nil, err
	}
	if opt.K == 1 {
		opt.Heuristic = Direct
	}
	res := &Result{Radii: make([]float64, g.NumVertices())}
	p := parallel.Procs()
	parts := make([][]graph.Edge, p)
	added := make([]int64, p)
	stats := forEachBall(g, opt.Rho, func(worker int, ws *ballScratch, b *ball) {
		res.Radii[b.src] = b.rRho
		for _, li := range heuristicTargets(ws, b, opt) {
			target := b.verts[li]
			e := graph.Edge{U: b.src, V: target, W: b.dist[li]}
			// Always materialize (the builder keeps minimum weights, so
			// an existing heavier direct edge is lowered to the true
			// distance), but count as "added" only genuinely new edges,
			// matching the paper's accounting.
			parts[worker] = append(parts[worker], e)
			if !graph.HasEdge(ws.g, b.src, target) {
				added[worker]++
			}
		}
	})
	res.Visited = stats.visited
	res.EdgesScanned = stats.scanned
	var extra []graph.Edge
	for w, part := range parts {
		res.Added += added[w]
		extra = append(extra, part...)
	}
	res.G = graph.AddShortcuts(g, extra)
	return res, nil
}

// RadiiOnly computes r_ρ(v) for every vertex without materializing any
// shortcut edges. Used by experiments that only need radii (for example
// step counting at large ρ where the (1, ρ) graph would be dense).
func RadiiOnly(g *graph.CSR, rho int) ([]float64, error) {
	if rho < 1 {
		return nil, fmt.Errorf("preprocess: Rho must be >= 1, got %d", rho)
	}
	radii := make([]float64, g.NumVertices())
	_ = forEachBall(g, rho, func(_ int, _ *ballScratch, b *ball) {
		radii[b.src] = b.rRho
	})
	return radii, nil
}

// CountSweep evaluates, in a single ρ-ball pass, how many shortcut edges
// the greedy and DP heuristics would emit for each k in ks (raw heuristic
// decisions, before deduplication against existing edges — the accounting
// under which DP is per-tree optimal and hence never exceeds greedy, as
// in the paper's Tables 2–3). It returns two parallel slices indexed like
// ks. The ball computation dominates and is shared across all k values.
func CountSweep(g *graph.CSR, rho int, ks []int) (greedy, dp []int64, err error) {
	if rho < 1 {
		return nil, nil, fmt.Errorf("preprocess: Rho must be >= 1, got %d", rho)
	}
	for _, k := range ks {
		if k < 1 {
			return nil, nil, fmt.Errorf("preprocess: k must be >= 1, got %d", k)
		}
	}
	p := parallel.Procs()
	gParts := make([][]int64, p)
	dParts := make([][]int64, p)
	_ = forEachBall(g, rho, func(worker int, ws *ballScratch, b *ball) {
		if gParts[worker] == nil {
			gParts[worker] = make([]int64, len(ks))
			dParts[worker] = make([]int64, len(ks))
		}
		for i, k := range ks {
			opt := Options{Rho: rho, K: k, Heuristic: Greedy}
			if k == 1 {
				opt.Heuristic = Direct
			}
			gParts[worker][i] += int64(len(heuristicTargets(ws, b, opt)))
			opt.Heuristic = DP
			if k == 1 {
				opt.Heuristic = Direct
			}
			dParts[worker][i] += int64(len(heuristicTargets(ws, b, opt)))
		}
	})
	greedy = make([]int64, len(ks))
	dp = make([]int64, len(ks))
	for w := 0; w < p; w++ {
		if gParts[w] == nil {
			continue
		}
		for i := range ks {
			greedy[i] += gParts[w][i]
			dp[i] += dParts[w][i]
		}
	}
	return greedy, dp, nil
}
