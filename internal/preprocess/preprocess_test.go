package preprocess

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"radiusstep/internal/baseline"
	"radiusstep/internal/check"
	"radiusstep/internal/gen"
	"radiusstep/internal/graph"
)

// bruteRadius computes r_ρ(v) from full Dijkstra distances: the ρ-th
// smallest distance from v (counting v itself).
func bruteRadius(g *graph.CSR, v graph.V, rho int) float64 {
	dist := baseline.Dijkstra(g, v)
	ds := append([]float64(nil), dist...)
	sort.Float64s(ds)
	// Unreachable vertices sort to the end as +Inf.
	i := rho - 1
	if i >= len(ds) {
		i = len(ds) - 1
	}
	for i >= 0 && math.IsInf(ds[i], 1) {
		i--
	}
	if i < 0 {
		return 0
	}
	return ds[i]
}

func TestRadiiMatchBruteForce(t *testing.T) {
	graphs := map[string]*graph.CSR{
		"grid":      gen.WithUniformIntWeights(gen.Grid2D(12, 12), 1, 20, 1),
		"unitGrid":  gen.Grid2D(12, 12),
		"scalefree": gen.ScaleFree(150, 4, 2),
		"random":    gen.WithUniformIntWeights(gen.RandomConnected(120, 300, 3), 1, 9, 4),
	}
	for name, g := range graphs {
		for _, rho := range []int{1, 2, 5, 17} {
			radii, err := RadiiOnly(g, rho)
			if err != nil {
				t.Fatal(err)
			}
			for v := 0; v < g.NumVertices(); v += 13 {
				want := bruteRadius(g, graph.V(v), rho)
				if radii[v] != want {
					t.Fatalf("%s rho=%d: r(%d) = %v, want %v", name, rho, v, radii[v], want)
				}
			}
		}
	}
}

func TestRadiiRhoOneIsZero(t *testing.T) {
	g := gen.Grid2D(10, 10)
	radii, err := RadiiOnly(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	for v, r := range radii {
		if r != 0 {
			t.Fatalf("r_1(%d) = %v, want 0 (the vertex itself)", v, r)
		}
	}
}

func TestRunPreservesMetric(t *testing.T) {
	// Shortcut edges carry exact distances, so shortest paths must not
	// change — on any graph, any heuristic, any (k, ρ).
	g := gen.WithUniformIntWeights(gen.RandomConnected(200, 500, 5), 1, 40, 6)
	want := baseline.Dijkstra(g, 3)
	for _, opt := range []Options{
		{Rho: 8, K: 1},
		{Rho: 8, K: 3, Heuristic: Greedy},
		{Rho: 8, K: 3, Heuristic: DP},
		{Rho: 20, K: 2, Heuristic: DP},
	} {
		res, err := Run(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		got := baseline.Dijkstra(res.G, 3)
		if i := check.SameDistances(want, got, 1e-9); i >= 0 {
			t.Fatalf("%+v: metric changed at %d: %v vs %v", opt, i, want[i], got[i])
		}
		if err := graph.Validate(res.G); err != nil {
			t.Fatalf("%+v: augmented graph invalid: %v", opt, err)
		}
	}
}

// hopWithin checks every ball vertex of src is within k hops of src in
// aug along *shortest* weighted paths: BFS over the tight-edge DAG.
func hopWithin(aug *graph.CSR, src graph.V, ballDist map[graph.V]float64, k int) bool {
	dist := baseline.Dijkstra(aug, src)
	// hops[v]: fewest edges over shortest paths from src.
	n := aug.NumVertices()
	const inf = int32(1 << 30)
	hops := make([]int32, n)
	for i := range hops {
		hops[i] = inf
	}
	hops[src] = 0
	// Relax in distance order (sort vertices by dist).
	order := make([]graph.V, 0, n)
	for v := 0; v < n; v++ {
		if !math.IsInf(dist[v], 1) {
			order = append(order, graph.V(v))
		}
	}
	sort.Slice(order, func(i, j int) bool { return dist[order[i]] < dist[order[j]] })
	for _, u := range order {
		adj, ws := aug.Neighbors(u)
		for i, v := range adj {
			if dist[u]+ws[i] == dist[v] && hops[u]+1 < hops[v] {
				hops[v] = hops[u] + 1
			}
		}
	}
	for v := range ballDist {
		if hops[v] > int32(k) {
			return false
		}
	}
	return true
}

func TestKRhoPropertyAfterPreprocessing(t *testing.T) {
	// After Run, every vertex's *strict* ρ-ball (d < r(v)) must be
	// reachable within k hops along shortest paths. This is the
	// property Lemma 3.4 actually consumes: vertices at distance
	// exactly r(v) may legitimately sit beyond k hops (the restricted
	// search can only miss boundary ties, never interior vertices).
	graphs := map[string]*graph.CSR{
		"grid":      gen.WithUniformIntWeights(gen.Grid2D(10, 10), 1, 30, 7),
		"scalefree": gen.ScaleFree(120, 3, 8),
	}
	for name, g := range graphs {
		for _, opt := range []Options{
			{Rho: 6, K: 1},
			{Rho: 6, K: 2, Heuristic: Greedy},
			{Rho: 6, K: 2, Heuristic: DP},
			{Rho: 10, K: 3, Heuristic: Greedy},
			{Rho: 10, K: 3, Heuristic: DP},
		} {
			res, err := Run(g, opt)
			if err != nil {
				t.Fatal(err)
			}
			for v := 0; v < g.NumVertices(); v += 7 {
				src := graph.V(v)
				full := baseline.Dijkstra(g, src)
				ball := map[graph.V]float64{}
				for u, d := range full {
					if d < res.Radii[src] {
						ball[graph.V(u)] = d
					}
				}
				if !hopWithin(res.G, src, ball, opt.K) {
					t.Fatalf("%s %+v: strict ball of %d not within %d hops", name, opt, v, opt.K)
				}
			}
		}
	}
}

func TestDPNeverWorseThanGreedy(t *testing.T) {
	// DP is optimal per tree, so its total count can never exceed
	// greedy's on the same trees.
	graphs := []*graph.CSR{
		gen.WithUniformIntWeights(gen.Grid2D(20, 20), 1, 50, 9),
		gen.ScaleFree(400, 4, 10),
		gen.WithUniformIntWeights(gen.RandomConnected(300, 700, 11), 1, 25, 12),
	}
	for gi, g := range graphs {
		for _, rho := range []int{5, 12, 30} {
			greedy, dp, err := CountSweep(g, rho, []int{2, 3, 4})
			if err != nil {
				t.Fatal(err)
			}
			for i := range greedy {
				if dp[i] > greedy[i] {
					t.Fatalf("graph %d rho=%d k-idx %d: dp=%d > greedy=%d", gi, rho, i, dp[i], greedy[i])
				}
			}
		}
	}
}

func TestCountSweepMonotoneInK(t *testing.T) {
	// Larger k can only reduce the number of needed shortcuts (both
	// heuristics shortcut strictly less when allowed more hops).
	g := gen.WithUniformIntWeights(gen.Grid2D(25, 25), 1, 60, 13)
	greedy, dp, err := CountSweep(g, 20, []int{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(dp); i++ {
		if dp[i] > dp[i-1] {
			t.Fatalf("dp not monotone in k: %v", dp)
		}
	}
	// k=1 column equals the Direct count for both.
	if greedy[0] != dp[0] {
		t.Fatalf("k=1 columns differ: greedy=%d dp=%d", greedy[0], dp[0])
	}
}

func TestDirectCountsOnStar(t *testing.T) {
	// On a star with ρ=n every leaf's ball is the whole graph. Leaves
	// are adjacent only to the center, so direct shortcutting adds
	// (n-2) edges per leaf and 0 for the center.
	n := 12
	g := gen.Star(n)
	res, err := Run(g, Options{Rho: n, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := int64((n - 1) * (n - 2))
	if res.Added != want {
		t.Fatalf("Added = %d, want %d", res.Added, want)
	}
	// The result must be the complete graph.
	if res.G.NumEdges() != n*(n-1)/2 {
		t.Fatalf("augmented edges = %d, want %d", res.G.NumEdges(), n*(n-1)/2)
	}
}

func TestGreedyTargetsDepthRule(t *testing.T) {
	// On a chain from vertex 0, hop depth == index; greedy with k must
	// pick depths k+1, 2k+1, ... among the ball.
	g := gen.Chain(30)
	res, err := Run(g, Options{Rho: 12, K: 3, Heuristic: Greedy})
	if err != nil {
		t.Fatal(err)
	}
	// Vertex 0's ball is vertices 0..11 (r_12 = 11); greedy shortcuts
	// depths 4, 7, 10.
	for _, want := range []graph.V{4, 7, 10} {
		if !graph.HasEdge(res.G, 0, want) {
			t.Fatalf("missing greedy shortcut 0->%d", want)
		}
	}
	if graph.HasEdge(res.G, 0, 2) || graph.HasEdge(res.G, 0, 3) {
		t.Fatal("greedy shortcut at wrong depth")
	}
}

func TestDPOnChainIsSparse(t *testing.T) {
	// On a chain ball of depth d with hop budget k, DP needs exactly
	// ceil((d-k)/k) shortcuts... at most greedy's count, and for a chain
	// they coincide; sanity-check the exact count for one case.
	g := gen.Chain(40)
	greedy, dp, err := CountSweep(g, 9, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if dp[0] > greedy[0] {
		t.Fatalf("dp=%d > greedy=%d on chain", dp[0], greedy[0])
	}
	if dp[0] == 0 {
		t.Fatal("dp found no shortcuts on a deep chain")
	}
}

func TestDPBeatsGreedyOnHubGraph(t *testing.T) {
	// The paper's motivating case (§4.2.1): a chain of length k from the
	// source, then a broom of leaves at level k+1. Greedy shortcuts every
	// leaf; DP adds one edge to the broom handle.
	k := 3
	leaves := 20
	b := graph.NewBuilder(k + 1 + leaves)
	for i := 0; i < k; i++ {
		b.Add(graph.V(i), graph.V(i+1), 1)
	}
	for l := 0; l < leaves; l++ {
		b.Add(graph.V(k), graph.V(k+1+l), 1)
	}
	g := b.Build()
	rho := k + 1 + leaves
	greedy, dp, err := CountSweep(g, rho, []int{k})
	if err != nil {
		t.Fatal(err)
	}
	if dp[0] >= greedy[0] {
		t.Fatalf("expected dp < greedy on broom: dp=%d greedy=%d", dp[0], greedy[0])
	}
}

func TestOptionsValidation(t *testing.T) {
	g := gen.Chain(5)
	if _, err := Run(g, Options{Rho: 0, K: 1}); err == nil {
		t.Fatal("Rho=0 accepted")
	}
	if _, err := Run(g, Options{Rho: 2, K: 0}); err == nil {
		t.Fatal("K=0 accepted")
	}
	if _, err := RadiiOnly(g, 0); err == nil {
		t.Fatal("RadiiOnly rho=0 accepted")
	}
	if _, _, err := CountSweep(g, 0, []int{2}); err == nil {
		t.Fatal("CountSweep rho=0 accepted")
	}
	if _, _, err := CountSweep(g, 2, []int{0}); err == nil {
		t.Fatal("CountSweep k=0 accepted")
	}
}

func TestTieContinuationIncludesAllAtRadius(t *testing.T) {
	// Star graph, ρ=2: r_2 = 1 and *all* leaves sit at distance 1, so
	// the ball must include every leaf (§5.1 modification).
	g := gen.Star(8)
	res, err := Run(g, Options{Rho: 2, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Center's ball covers all leaves; leaf balls include the center at
	// distance 1 plus all sibling leaves at distance 2? No: r_2(leaf)=1,
	// ball = {leaf, center} only. Center: r_2 = 1, ball = all.
	if res.G.NumEdges() != g.NumEdges() {
		t.Fatalf("star (1,2)-shortcutting should add nothing new, got %d edges", res.G.NumEdges())
	}
	if res.Radii[0] != 1 {
		t.Fatalf("center radius = %v", res.Radii[0])
	}
}

func TestRunOnDisconnectedGraph(t *testing.T) {
	b := graph.NewBuilder(6)
	b.Add(0, 1, 1)
	b.Add(1, 2, 1)
	b.Add(3, 4, 1)
	g := b.Build()
	res, err := Run(g, Options{Rho: 4, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Vertex 5 is isolated: radius 0, no shortcuts.
	if res.Radii[5] != 0 {
		t.Fatalf("isolated radius = %v", res.Radii[5])
	}
	// Component {3,4} has only 2 vertices; radius is the last reachable.
	if res.Radii[3] != 1 {
		t.Fatalf("small component radius = %v", res.Radii[3])
	}
}

// TestQuickMetricPreservation is the property-test version of
// TestRunPreservesMetric over random graphs and options.
func TestQuickMetricPreservation(t *testing.T) {
	f := func(seed uint64, rhoRaw, kRaw, hRaw uint8) bool {
		rho := 1 + int(rhoRaw%20)
		k := 1 + int(kRaw%4)
		h := Heuristic(int(hRaw) % 3)
		g := gen.WithUniformIntWeights(gen.RandomConnected(50, 120, seed), 1, 30, seed^7)
		res, err := Run(g, Options{Rho: rho, K: k, Heuristic: h})
		if err != nil {
			return false
		}
		want := baseline.Dijkstra(g, 0)
		got := baseline.Dijkstra(res.G, 0)
		return check.SameDistances(want, got, 1e-9) < 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRadiiMonotoneInRho: r_ρ(v) is nondecreasing in ρ by
// definition (distance to an ever-farther neighbor).
func TestQuickRadiiMonotoneInRho(t *testing.T) {
	f := func(seed uint64) bool {
		g := gen.WithUniformIntWeights(gen.RandomConnected(80, 200, seed), 1, 30, seed^11)
		var prev []float64
		for _, rho := range []int{1, 2, 4, 8, 16, 80} {
			radii, err := RadiiOnly(g, rho)
			if err != nil {
				return false
			}
			if prev != nil {
				for v := range radii {
					if radii[v] < prev[v] {
						return false
					}
				}
			}
			prev = radii
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestHeuristicString(t *testing.T) {
	if Direct.String() != "direct" || Greedy.String() != "greedy" || DP.String() != "dp" {
		t.Fatal("heuristic names wrong")
	}
	if Heuristic(9).String() == "" {
		t.Fatal("unknown heuristic should still print")
	}
}
