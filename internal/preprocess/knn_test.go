package preprocess

import (
	"testing"

	"radiusstep/internal/gen"
	"radiusstep/internal/graph"
)

// TestUnitFastPathMatchesHeapPath compares the BFS fast path against the
// general heap search on unit graphs: radii and ball sizes must match
// exactly for every source and ρ (trees may differ among equally valid
// hop-minimal choices).
func TestUnitFastPathMatchesHeapPath(t *testing.T) {
	graphs := map[string]*graph.CSR{
		"grid":      gen.Grid2D(15, 15),
		"scalefree": gen.ScaleFree(300, 4, 1),
		"chain":     gen.Chain(60),
		"star":      gen.Star(25),
		"comb":      gen.Comb(5),
	}
	for name, g := range graphs {
		sa := buildSortedAdj(g)
		heapWS := newBallScratch(g)
		bfsWS := newBallScratch(g)
		for _, rho := range []int{1, 2, 7, 25} {
			for v := 0; v < g.NumVertices(); v += 3 {
				hb := heapWS.explore(sa, rho, graph.V(v))
				hLen, hR := hb.Len(), hb.rRho
				bb := bfsWS.exploreUnit(sa, rho, graph.V(v))
				if bb.Len() != hLen {
					t.Fatalf("%s rho=%d src=%d: ball size %d (bfs) vs %d (heap)",
						name, rho, v, bb.Len(), hLen)
				}
				if bb.rRho != hR {
					t.Fatalf("%s rho=%d src=%d: rRho %v (bfs) vs %v (heap)",
						name, rho, v, bb.rRho, hR)
				}
			}
		}
	}
}

// TestUnitFastPathTreeIsValid checks the BFS ball's tree invariants:
// parents settle before children, hops increase by one along edges,
// and distances equal hops.
func TestUnitFastPathTreeIsValid(t *testing.T) {
	g := gen.ScaleFree(500, 3, 2)
	sa := buildSortedAdj(g)
	ws := newBallScratch(g)
	for _, src := range []graph.V{0, 17, 255} {
		b := ws.exploreUnit(sa, 40, src)
		if b.verts[0] != src || b.hop[0] != 0 || b.parent[0] != -1 {
			t.Fatalf("src=%d: root record wrong", src)
		}
		for i := 1; i < b.Len(); i++ {
			p := b.parent[i]
			if p < 0 || p >= int32(i) {
				t.Fatalf("src=%d: parent[%d] = %d out of order", src, i, p)
			}
			if b.hop[i] != b.hop[p]+1 {
				t.Fatalf("src=%d: hop[%d] = %d, parent hop %d", src, i, b.hop[i], b.hop[p])
			}
			if b.dist[i] != float64(b.hop[i]) {
				t.Fatalf("src=%d: dist != hop at %d", src, i)
			}
			if !graph.HasEdge(g, b.verts[p], b.verts[i]) {
				t.Fatalf("src=%d: tree edge %d-%d not in graph", src, b.verts[p], b.verts[i])
			}
		}
	}
}

// TestUnitFastPathTieContinuation: the ball continues past exactly ρ
// vertices through distance ties — every *discovered* vertex at distance
// r_ρ is settled. (Discovery itself is capped at the ρ lightest arcs per
// vertex, Lemma 4.2, so undiscoverable boundary ties are excluded; the
// strict-ball property tests cover why that is sound.)
func TestUnitFastPathTieContinuation(t *testing.T) {
	g := gen.Star(20) // center 0, 19 leaves at distance 1
	sa := buildSortedAdj(g)
	ws := newBallScratch(g)
	// rho=5: the center relaxes its 5 lightest arcs; the 5-ball needs
	// only 4 leaves but the discovered 5th leaf ties at distance 1 and
	// must be settled too.
	b := ws.exploreUnit(sa, 5, 0)
	if b.Len() != 6 {
		t.Fatalf("star center ball = %d, want 6 (5 discovered leaves + center)", b.Len())
	}
	if b.rRho != 1 {
		t.Fatalf("rRho = %v, want 1", b.rRho)
	}
	// The heap path agrees.
	hb := newBallScratch(g).explore(sa, 5, 0)
	if hb.Len() != 6 || hb.rRho != 1 {
		t.Fatalf("heap path: len=%d rRho=%v", hb.Len(), hb.rRho)
	}
	// The restriction itself: at rho=3 only 3 arcs are relaxed, so the
	// ball is center + 3 leaves even though 19 tie at distance 1.
	b3 := ws.exploreUnit(sa, 3, 0)
	if b3.Len() != 4 {
		t.Fatalf("restricted ball = %d, want 4", b3.Len())
	}
}

// TestScannedCountsBounded: the restriction to ρ lightest arcs caps the
// per-source scan at ρ·|ball|.
func TestScannedCountsBounded(t *testing.T) {
	g := gen.ScaleFree(400, 6, 3)
	sa := buildSortedAdj(g)
	ws := newBallScratch(g)
	rho := 10
	for v := 0; v < 50; v++ {
		b := ws.exploreUnit(sa, rho, graph.V(v))
		if ws.scanned > int64(rho*b.Len()) {
			t.Fatalf("src=%d scanned %d > rho*|ball| = %d", v, ws.scanned, rho*b.Len())
		}
	}
}

func TestSortedAdjOrder(t *testing.T) {
	b := graph.NewBuilder(4)
	b.Add(0, 1, 5)
	b.Add(0, 2, 1)
	b.Add(0, 3, 5)
	g := b.Build()
	sa := buildSortedAdj(g)
	lo := sa.off[0]
	if sa.adj[lo] != 2 { // lightest first
		t.Fatalf("first sorted arc = %d, want 2", sa.adj[lo])
	}
	if sa.adj[lo+1] != 1 || sa.adj[lo+2] != 3 { // weight ties by id
		t.Fatalf("tie order wrong: %v", sa.adj[lo:lo+3])
	}
}
