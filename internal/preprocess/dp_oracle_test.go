package preprocess

import (
	"math/bits"
	"math/rand/v2"
	"testing"

	"radiusstep/internal/graph"
)

// This file validates the DP heuristic against a brute-force oracle: on
// random shortest-path trees, the F(u, t) dynamic program must produce a
// *valid* shortcut set (every tree vertex within k new-hops of the root)
// of *minimum size* (§4.2.2 claims per-tree optimality).

// randomTreeBall fabricates a ball whose parent structure is a random
// tree: parent[i] < i, hop derived. Distances are the hop counts.
func randomTreeBall(n int, r *rand.Rand) *ball {
	b := &ball{src: 0}
	b.verts = make([]graph.V, n)
	b.dist = make([]float64, n)
	b.hop = make([]int32, n)
	b.parent = make([]int32, n)
	b.parent[0] = -1
	for i := 1; i < n; i++ {
		b.verts[i] = graph.V(i)
		p := int32(r.IntN(i))
		b.parent[i] = p
		b.hop[i] = b.hop[p] + 1
		b.dist[i] = float64(b.hop[i])
	}
	return b
}

// chainBall is the worst case for shortcut count: a path of n vertices.
func chainBall(n int) *ball {
	b := &ball{src: 0}
	b.verts = make([]graph.V, n)
	b.dist = make([]float64, n)
	b.hop = make([]int32, n)
	b.parent = make([]int32, n)
	b.parent[0] = -1
	for i := 1; i < n; i++ {
		b.verts[i] = graph.V(i)
		b.parent[i] = int32(i - 1)
		b.hop[i] = int32(i)
		b.dist[i] = float64(i)
	}
	return b
}

// newDepths computes each vertex's hop count from the root when the
// vertices in targets get a direct shortcut from the root.
func newDepths(b *ball, targets map[int32]bool) []int32 {
	n := b.Len()
	depth := make([]int32, n)
	for i := 1; i < n; i++ { // parents precede children in index order
		if targets[int32(i)] {
			depth[i] = 1
		} else {
			depth[i] = depth[b.parent[i]] + 1
		}
	}
	return depth
}

// validCover reports whether every vertex ends within k hops.
func validCover(b *ball, targets map[int32]bool, k int) bool {
	for _, d := range newDepths(b, targets) {
		if d > int32(k) {
			return false
		}
	}
	return true
}

// bruteOptimal finds the minimum number of shortcuts by exhaustive
// subset enumeration (ball size <= ~16).
func bruteOptimal(b *ball, k int) int {
	n := b.Len()
	best := n
	for mask := 0; mask < 1<<(n-1); mask++ {
		sz := bits.OnesCount(uint(mask))
		if sz >= best {
			continue
		}
		targets := map[int32]bool{}
		for i := 1; i < n; i++ {
			if mask&(1<<(i-1)) != 0 {
				targets[int32(i)] = true
			}
		}
		if validCover(b, targets, k) {
			best = sz
		}
	}
	return best
}

func toSet(targets []int32) map[int32]bool {
	m := make(map[int32]bool, len(targets))
	for _, t := range targets {
		m[t] = true
	}
	return m
}

func oracleScratch() *ballScratch {
	return newBallScratch(graph.FromEdges(1, nil))
}

func TestDPMatchesBruteForceOnRandomTrees(t *testing.T) {
	r := rand.New(rand.NewPCG(9, 10))
	ws := oracleScratch()
	for trial := 0; trial < 200; trial++ {
		n := 2 + r.IntN(12) // up to 13 vertices -> 4096 subsets
		b := randomTreeBall(n, r)
		for _, k := range []int{1, 2, 3, 4} {
			targets := toSet(dpTargets(ws, b, k))
			if !validCover(b, targets, k) {
				t.Fatalf("trial %d n=%d k=%d: DP cover invalid", trial, n, k)
			}
			want := bruteOptimal(b, k)
			if len(targets) != want {
				t.Fatalf("trial %d n=%d k=%d: DP uses %d shortcuts, optimum %d",
					trial, n, k, len(targets), want)
			}
		}
	}
}

func TestGreedyIsValidOnRandomTrees(t *testing.T) {
	r := rand.New(rand.NewPCG(11, 12))
	ws := oracleScratch()
	for trial := 0; trial < 200; trial++ {
		n := 2 + r.IntN(14)
		b := randomTreeBall(n, r)
		for _, k := range []int{2, 3, 4} {
			targets := toSet(greedyTargets(ws, b, k))
			if !validCover(b, targets, k) {
				t.Fatalf("trial %d n=%d k=%d: greedy cover invalid", trial, n, k)
			}
		}
	}
}

func TestDPOnChainExactCount(t *testing.T) {
	// On a chain of depth d with budget k, the optimum shortcuts every
	// k-th vertex beyond depth k: ceil((d-k)/k) edges, targeting depths
	// chosen so each covers k following vertices.
	ws := oracleScratch()
	for _, tc := range []struct{ n, k, want int }{
		{10, 2, 4}, // depths 1..9: optimum covers with shortcuts at 3,5,7,9
		{10, 3, 2},
		{10, 9, 0},
		{10, 8, 1},
		{4, 1, 2}, // depths 1..3: shortcut 2 and 3
	} {
		b := chainBall(tc.n)
		got := len(dpTargets(ws, b, tc.k))
		if got != tc.want {
			t.Fatalf("chain n=%d k=%d: dp=%d, want %d", tc.n, tc.k, got, tc.want)
		}
		if brute := bruteOptimal(b, tc.k); brute != tc.want {
			t.Fatalf("chain n=%d k=%d: oracle=%d, want %d (test self-check)", tc.n, tc.k, brute, tc.want)
		}
	}
}

func TestDPOnBroomOptimal(t *testing.T) {
	// The paper's §4.2.1 motivating example: a handle of length k then
	// f leaves. Greedy shortcuts all f leaves; optimal is one shortcut
	// to the handle's last vertex.
	k, f := 3, 8
	n := k + 1 + f
	b := &ball{src: 0}
	b.verts = make([]graph.V, n)
	b.dist = make([]float64, n)
	b.hop = make([]int32, n)
	b.parent = make([]int32, n)
	b.parent[0] = -1
	for i := 1; i <= k; i++ {
		b.parent[i] = int32(i - 1)
		b.hop[i] = int32(i)
	}
	for l := 0; l < f; l++ {
		i := k + 1 + l
		b.parent[i] = int32(k)
		b.hop[i] = int32(k + 1)
	}
	ws := oracleScratch()
	dp := dpTargets(ws, b, k)
	if len(dp) != 1 {
		t.Fatalf("dp on broom used %d shortcuts, want 1", len(dp))
	}
	greedy := greedyTargets(ws, b, k)
	if len(greedy) != f {
		t.Fatalf("greedy on broom used %d shortcuts, want %d (all leaves)", len(greedy), f)
	}
}
