package baseline

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"

	"radiusstep/internal/check"
	"radiusstep/internal/gen"
	"radiusstep/internal/graph"
)

func TestPairingHeapSortsRandomKeys(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 2))
	n := 2000
	h := newPairingHeap(n)
	keys := make([]float64, n)
	for i := range keys {
		keys[i] = r.Float64() * 1000
		h.DecreaseKey(graph.V(i), keys[i])
	}
	sort.Float64s(keys)
	for i := 0; i < n; i++ {
		_, k := h.PopMin()
		if k != keys[i] {
			t.Fatalf("pop %d: key %v, want %v", i, k, keys[i])
		}
	}
	if h.Len() != 0 {
		t.Fatal("heap not drained")
	}
}

func TestPairingHeapDecreaseKey(t *testing.T) {
	h := newPairingHeap(10)
	h.DecreaseKey(0, 50)
	h.DecreaseKey(1, 40)
	h.DecreaseKey(2, 30)
	h.DecreaseKey(0, 10) // 0 jumps to the front
	if v, k := h.PopMin(); v != 0 || k != 10 {
		t.Fatalf("pop = %d,%v", v, k)
	}
	h.DecreaseKey(1, 5) // decrease after pops
	if v, k := h.PopMin(); v != 1 || k != 5 {
		t.Fatalf("pop = %d,%v", v, k)
	}
	// Reinsertion after removal.
	h.DecreaseKey(0, 1)
	if v, _ := h.PopMin(); v != 0 {
		t.Fatalf("reinserted vertex not first: %d", v)
	}
}

func TestPairingHeapPanicsOnRaise(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h := newPairingHeap(4)
	h.DecreaseKey(0, 1)
	h.DecreaseKey(0, 2)
}

// TestQuickPairingMatchesBinary: both heaps drive Dijkstra to the same
// answer on random graphs.
func TestQuickPairingMatchesBinary(t *testing.T) {
	f := func(seed uint64, srcRaw uint8) bool {
		g := gen.WithUniformIntWeights(gen.RandomConnected(80, 200, seed), 1, 60, seed^9)
		src := graph.V(int(srcRaw) % 80)
		a := Dijkstra(g, src)
		b := DijkstraPairing(g, src)
		return check.SameDistances(a, b, 0) < 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPairingHeapVsModel drives the heap with random operation
// sequences against a sorted-slice model.
func TestQuickPairingHeapVsModel(t *testing.T) {
	f := func(ops []uint16) bool {
		n := 64
		h := newPairingHeap(n)
		model := map[graph.V]float64{}
		for _, op := range ops {
			v := graph.V(op % uint16(n))
			k := float64(op / uint16(n))
			if cur, ok := model[v]; !ok || k < cur {
				model[v] = k
				h.DecreaseKey(v, k)
			}
			if len(model) > 0 && op%7 == 0 {
				pv, pk := h.PopMin()
				if mk, ok := model[pv]; !ok || mk != pk {
					return false // popped key must match its model key
				}
				for _, mk := range model {
					if mk < pk {
						return false // something smaller was left behind
					}
				}
				delete(model, pv)
			}
		}
		return h.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDijkstraBinaryHeap(b *testing.B) {
	g := gen.WithUniformIntWeights(gen.Grid2D(150, 150), 1, 10000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Dijkstra(g, 0)
	}
}

func BenchmarkDijkstraPairingHeap(b *testing.B) {
	g := gen.WithUniformIntWeights(gen.Grid2D(150, 150), 1, 10000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DijkstraPairing(g, 0)
	}
}
