// Package baseline implements the comparison algorithms the paper
// measures Radius-Stepping against: sequential Dijkstra (the work
// baseline), Bellman–Ford (the r(v)=∞ degenerate case), Meyer–Sanders
// ∆-stepping, and level-synchronous parallel BFS (the unweighted, ρ=1
// baseline).
package baseline

import (
	"math"

	"radiusstep/internal/graph"
)

// vertexHeap is an indexed binary min-heap over vertices keyed by
// float64, supporting decrease-key in O(log n); the standard Dijkstra
// priority queue.
type vertexHeap struct {
	key  []float64
	pos  []int32 // position of vertex in heap, -1 if absent
	heap []graph.V
}

func newVertexHeap(n int) *vertexHeap {
	h := &vertexHeap{
		key:  make([]float64, n),
		pos:  make([]int32, n),
		heap: make([]graph.V, 0, 64),
	}
	for i := range h.pos {
		h.pos[i] = -1
		h.key[i] = math.Inf(1)
	}
	return h
}

func (h *vertexHeap) Len() int { return len(h.heap) }

// DecreaseKey inserts v with key k, or lowers v's key to k. Raising a key
// is a programming error and panics.
func (h *vertexHeap) DecreaseKey(v graph.V, k float64) {
	if h.pos[v] == -1 {
		h.key[v] = k
		h.pos[v] = int32(len(h.heap))
		h.heap = append(h.heap, v)
		h.up(len(h.heap) - 1)
		return
	}
	if k > h.key[v] {
		panic("baseline: DecreaseKey would raise a key")
	}
	h.key[v] = k
	h.up(int(h.pos[v]))
}

// PopMin removes and returns the vertex with the smallest key.
func (h *vertexHeap) PopMin() (graph.V, float64) {
	v := h.heap[0]
	k := h.key[v]
	last := len(h.heap) - 1
	h.heap[0] = h.heap[last]
	h.pos[h.heap[0]] = 0
	h.heap = h.heap[:last]
	h.pos[v] = -1
	if last > 0 {
		h.down(0)
	}
	return v, k
}

func (h *vertexHeap) up(i int) {
	v := h.heap[i]
	k := h.key[v]
	for i > 0 {
		p := (i - 1) / 2
		pv := h.heap[p]
		if h.key[pv] <= k {
			break
		}
		h.heap[i] = pv
		h.pos[pv] = int32(i)
		i = p
	}
	h.heap[i] = v
	h.pos[v] = int32(i)
}

func (h *vertexHeap) down(i int) {
	n := len(h.heap)
	v := h.heap[i]
	k := h.key[v]
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && h.key[h.heap[c+1]] < h.key[h.heap[c]] {
			c++
		}
		cv := h.heap[c]
		if h.key[cv] >= k {
			break
		}
		h.heap[i] = cv
		h.pos[cv] = int32(i)
		i = c
	}
	h.heap[i] = v
	h.pos[v] = int32(i)
}
