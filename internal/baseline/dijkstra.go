package baseline

import (
	"math"

	"radiusstep/internal/graph"
)

// Dijkstra computes single-source shortest-path distances from src with
// the classic heap-based algorithm. Unreachable vertices get +Inf. This is
// the sequential work baseline and the ground truth for all tests.
func Dijkstra(g *graph.CSR, src graph.V) []float64 {
	dist, _ := DijkstraTree(g, src)
	return dist
}

// DijkstraTree additionally returns a shortest-path tree as a parent
// array (parent[src] == src; -1 for unreachable vertices). Among equal
// distance paths it prefers the one with fewer hops, the tie-break the
// preprocessing heuristics need (§4.2.2).
func DijkstraTree(g *graph.CSR, src graph.V) ([]float64, []graph.V) {
	n := g.NumVertices()
	dist := make([]float64, n)
	hops := make([]int32, n)
	parent := make([]graph.V, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		parent[i] = -1
	}
	dist[src] = 0
	parent[src] = src
	h := newVertexHeap(n)
	h.DecreaseKey(src, 0)
	done := make([]bool, n)
	for h.Len() > 0 {
		u, du := h.PopMin()
		done[u] = true
		adj, ws := g.Neighbors(u)
		for i, v := range adj {
			if done[v] {
				continue
			}
			nd := du + ws[i]
			switch {
			case nd < dist[v]:
				dist[v] = nd
				hops[v] = hops[u] + 1
				parent[v] = u
				h.DecreaseKey(v, nd)
			case nd == dist[v] && hops[u]+1 < hops[v]:
				hops[v] = hops[u] + 1
				parent[v] = u
			}
		}
	}
	return dist, parent
}

// DijkstraSteps runs Dijkstra counting extraction "steps" where vertices
// with equal distance are extracted together; the source's own d=0
// extraction is not counted (radius-stepping pre-settles the source).
// This equals Radius-Stepping with r(v) = 0 and is what Table 6's ρ=1
// row measures.
func DijkstraSteps(g *graph.CSR, src graph.V) (dist []float64, steps int) {
	n := g.NumVertices()
	dist = make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	h := newVertexHeap(n)
	h.DecreaseKey(src, 0)
	done := make([]bool, n)
	for h.Len() > 0 {
		if h.key[h.heap[0]] > 0 {
			steps++
		}
		// Extract the whole equal-distance class.
		_, d := h.heap[0], h.key[h.heap[0]]
		var batch []graph.V
		for h.Len() > 0 {
			if h.key[h.heap[0]] != d {
				break
			}
			u, _ := h.PopMin()
			done[u] = true
			batch = append(batch, u)
		}
		for _, u := range batch {
			adj, ws := g.Neighbors(u)
			for i, v := range adj {
				if done[v] {
					continue
				}
				if nd := dist[u] + ws[i]; nd < dist[v] {
					dist[v] = nd
					h.DecreaseKey(v, nd)
				}
			}
		}
	}
	return dist, steps
}
