package baseline

import (
	"math"
	"sync/atomic"

	"radiusstep/internal/graph"
	"radiusstep/internal/parallel"
)

// DeltaStats reports the phase structure of a ∆-stepping run: Steps is the
// number of buckets processed, Substeps the total inner (light-edge)
// iterations, Relaxations the number of successful distance improvements.
type DeltaStats struct {
	Steps       int
	Substeps    int
	Relaxations int64
}

// DeltaStepping runs the Meyer–Sanders ∆-stepping algorithm from src with
// bucket width delta, relaxing light edges (w ≤ ∆) iteratively inside each
// bucket and heavy edges once per settled vertex. Relaxations inside a
// phase run in parallel with priority-writes.
//
// ∆-stepping is the algorithm Radius-Stepping refines: its fixed step
// width is what the per-vertex radii replace.
func DeltaStepping(g *graph.CSR, src graph.V, delta float64) ([]float64, DeltaStats) {
	if delta <= 0 {
		panic("baseline: delta must be positive")
	}
	n := g.NumVertices()
	var st DeltaStats
	bits := make([]uint64, n)
	parallel.Fill(bits, parallel.InfBits)
	bits[src] = parallel.ToBits(0)

	bucketOf := func(d float64) int { return int(d / delta) }
	var buckets [][]graph.V
	push := func(v graph.V, b int) {
		for b >= len(buckets) {
			buckets = append(buckets, nil)
		}
		buckets[b] = append(buckets[b], v)
	}
	push(src, 0)

	// settledGen marks vertices already settled in the current bucket;
	// iterGen dedupes the per-iteration frontier (a settled vertex whose
	// distance improves within its own bucket re-enters the frontier and
	// must relax its light edges again — the Meyer–Sanders reinsertion).
	settledGen := make([]uint32, n)
	iterGen := make([]uint32, n)
	gen := uint32(0)
	iter := uint32(0)
	stamp := make([]uint32, n) // per-substep claim marks
	round := uint32(0)

	relax := func(frontier []graph.V, light bool) []graph.V {
		round++
		p := parallel.Procs()
		parts := make([][]graph.V, p)
		snap := make([]float64, len(frontier))
		parallel.For(len(frontier), func(i int) {
			snap[i] = parallel.FromBits(atomic.LoadUint64(&bits[frontier[i]]))
		})
		var relaxed atomic.Int64
		parallel.WorkersGrain(len(frontier), frontierGrain, func(w int, claim func() (int, int, bool)) {
			var local []graph.V
			for {
				lo, hi, ok := claim()
				if !ok {
					break
				}
				for i := lo; i < hi; i++ {
					u := frontier[i]
					du := snap[i]
					adj, ws := g.Neighbors(u)
					for j, v := range adj {
						isLight := ws[j] <= delta
						if isLight != light {
							continue
						}
						nb := parallel.ToBits(du + ws[j])
						if parallel.WriteMin(&bits[v], nb) {
							relaxed.Add(1)
							if parallel.Claim(&stamp[v], round) {
								local = append(local, v)
							}
						}
					}
				}
			}
			parts[w] = local
		})
		st.Relaxations += relaxed.Load()
		var next []graph.V
		for _, part := range parts {
			next = append(next, part...)
		}
		return next
	}

	for b := 0; b < len(buckets); b++ {
		if len(buckets[b]) == 0 {
			continue
		}
		gen++
		var settled []graph.V
		substeps := 0
		// Light-edge phase: iterate until the bucket stops refilling.
		for len(buckets[b]) > 0 {
			cur := buckets[b]
			buckets[b] = nil
			iter++
			var frontier []graph.V
			for _, v := range cur {
				d := parallel.FromBits(bits[v])
				if math.IsInf(d, 1) || bucketOf(d) != b || iterGen[v] == iter {
					continue // stale or duplicate entry
				}
				iterGen[v] = iter
				if settledGen[v] != gen {
					settledGen[v] = gen
					settled = append(settled, v)
				}
				frontier = append(frontier, v)
			}
			if len(frontier) == 0 {
				break // nothing but stale entries: not a real substep
			}
			substeps++
			for _, v := range relax(frontier, true) {
				nb := bucketOf(parallel.FromBits(bits[v]))
				push(v, nb)
			}
		}
		// Heavy-edge phase: one shot from everything settled in bucket b,
		// using their final (converged) bucket-b distances.
		if len(settled) > 0 {
			st.Steps++
			st.Substeps += substeps
			for _, v := range relax(settled, false) {
				nb := bucketOf(parallel.FromBits(bits[v]))
				push(v, nb)
			}
		}
	}
	return parallel.BitsToFloats(bits), st
}
