package baseline

import (
	"radiusstep/internal/graph"
	"radiusstep/internal/parallel"
)

// BFS runs a sequential breadth-first search from src, returning hop
// distances (-1 for unreachable) and the number of rounds that discovered
// at least one vertex — the eccentricity of src, which is the quantity
// the paper's Table 4 ρ=1 rows report (radius-stepping with r=0 settles
// one BFS level per step, with the source pre-settled).
func BFS(g *graph.CSR, src graph.V) (dist []int32, levels int) {
	n := g.NumVertices()
	dist = make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	frontier := []graph.V{src}
	for len(frontier) > 0 {
		var next []graph.V
		for _, u := range frontier {
			adj, _ := g.Neighbors(u)
			for _, v := range adj {
				if dist[v] == -1 {
					dist[v] = dist[u] + 1
					next = append(next, v)
				}
			}
		}
		if len(next) > 0 {
			levels++
		}
		frontier = next
	}
	return dist, levels
}

// BFSParallel is the level-synchronous parallel BFS: each level expands
// the frontier concurrently, claiming each discovered vertex exactly once.
func BFSParallel(g *graph.CSR, src graph.V) (dist []int32, levels int) {
	n := g.NumVertices()
	dist = make([]int32, n)
	parallel.Fill(dist, -1)
	dist[src] = 0
	visited := make([]uint32, n)
	visited[src] = 1
	frontier := []graph.V{src}
	p := parallel.Procs()
	depth := int32(0)
	for len(frontier) > 0 {
		depth++
		level := depth // level index being discovered this round
		parts := make([][]graph.V, p)
		parallel.WorkersGrain(len(frontier), frontierGrain, func(w int, claim func() (int, int, bool)) {
			var local []graph.V
			for {
				lo, hi, ok := claim()
				if !ok {
					break
				}
				for i := lo; i < hi; i++ {
					adj, _ := g.Neighbors(frontier[i])
					for _, v := range adj {
						if parallel.Claim(&visited[v], 1) {
							dist[v] = level
							local = append(local, v)
						}
					}
				}
			}
			parts[w] = local
		})
		var next []graph.V
		for _, part := range parts {
			next = append(next, part...)
		}
		if len(next) > 0 {
			levels++
		}
		frontier = next
	}
	return dist, levels
}

// Eccentricity returns the largest finite hop distance from src.
func Eccentricity(g *graph.CSR, src graph.V) int32 {
	dist, _ := BFS(g, src)
	var ecc int32
	for _, d := range dist {
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}
