package baseline

import (
	"math"
	"sync/atomic"

	"radiusstep/internal/graph"
	"radiusstep/internal/parallel"
)

// BellmanFord computes SSSP distances with round-synchronous relaxation
// from the changed frontier, returning the distances and the number of
// rounds until fixpoint (including the final no-change round). It is the
// r(v) = ∞ degenerate case of radius-stepping: a single step of many
// substeps.
func BellmanFord(g *graph.CSR, src graph.V) ([]float64, int) {
	n := g.NumVertices()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	frontier := []graph.V{src}
	inNext := make([]bool, n)
	rounds := 0
	var snap []float64
	for len(frontier) > 0 {
		rounds++
		// Synchronous (Jacobi) rounds: sources relax with their
		// distance as of the round start, so round counts match the
		// parallel variant exactly.
		snap = snap[:0]
		for _, u := range frontier {
			snap = append(snap, dist[u])
		}
		var next []graph.V
		for fi, u := range frontier {
			adj, ws := g.Neighbors(u)
			du := snap[fi]
			for i, v := range adj {
				if nd := du + ws[i]; nd < dist[v] {
					dist[v] = nd
					if !inNext[v] {
						inNext[v] = true
						next = append(next, v)
					}
				}
			}
		}
		for _, v := range next {
			inNext[v] = false
		}
		frontier = next
	}
	// The last executed round produced no updates: it is the natural
	// "until no δ(v) was updated" check, already counted.
	return dist, rounds
}

// BellmanFordParallel is the parallel variant: each round relaxes all
// frontier edges concurrently with priority-writes and claims each newly
// updated vertex exactly once for the next frontier.
func BellmanFordParallel(g *graph.CSR, src graph.V) ([]float64, int) {
	n := g.NumVertices()
	bits := make([]uint64, n)
	parallel.Fill(bits, parallel.InfBits)
	bits[src] = parallel.ToBits(0)
	stamp := make([]uint32, n)
	frontier := []graph.V{src}
	round := uint32(0)
	rounds := 0
	for len(frontier) > 0 {
		rounds++
		round++
		next := relaxFrontier(g, bits, stamp, round, frontier)
		frontier = next
	}
	return parallel.BitsToFloats(bits), rounds
}

// frontierGrain is the batched-claim size for per-vertex frontier loops
// in the parallel baselines: enough vertices per atomic claim that
// scheduling vanishes next to the relaxation work, small enough that
// skewed degree distributions still load-balance.
const frontierGrain = 64

// relaxFrontier relaxes every arc out of frontier with WriteMin and
// returns the deduplicated set of vertices whose distance improved.
// Rounds are synchronous (sources snapshotted first), so round counts
// are deterministic. Shared by the parallel baselines.
func relaxFrontier(g *graph.CSR, bits []uint64, stamp []uint32, round uint32, frontier []graph.V) []graph.V {
	p := parallel.Procs()
	parts := make([][]graph.V, p)
	snap := make([]float64, len(frontier))
	parallel.For(len(frontier), func(i int) {
		snap[i] = parallel.FromBits(atomic.LoadUint64(&bits[frontier[i]]))
	})
	parallel.WorkersGrain(len(frontier), frontierGrain, func(w int, claim func() (int, int, bool)) {
		var local []graph.V
		for {
			lo, hi, ok := claim()
			if !ok {
				break
			}
			for i := lo; i < hi; i++ {
				u := frontier[i]
				du := snap[i]
				adj, ws := g.Neighbors(u)
				for j, v := range adj {
					nb := parallel.ToBits(du + ws[j])
					if parallel.WriteMin(&bits[v], nb) {
						if parallel.Claim(&stamp[v], round) {
							local = append(local, v)
						}
					}
				}
			}
		}
		parts[w] = local
	})
	var next []graph.V
	for _, part := range parts {
		next = append(next, part...)
	}
	return next
}
