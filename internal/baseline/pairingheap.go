package baseline

import (
	"math"

	"radiusstep/internal/graph"
)

// pairingHeap is an indexed pairing heap over vertices keyed by float64 —
// the practical counterpart of the Fibonacci heap the paper cites for
// Dijkstra (amortized O(1) decrease-key, O(log n) delete-min). It exists
// to ablate the priority-queue choice against the binary heap.
type pairingHeap struct {
	key    []float64
	root   graph.V
	child  []graph.V // first child
	sib    []graph.V // next sibling
	prev   []graph.V // previous sibling or parent
	inHeap []bool
	size   int
}

func newPairingHeap(n int) *pairingHeap {
	h := &pairingHeap{
		key:    make([]float64, n),
		root:   -1,
		child:  make([]graph.V, n),
		sib:    make([]graph.V, n),
		prev:   make([]graph.V, n),
		inHeap: make([]bool, n),
	}
	for i := range h.key {
		h.key[i] = math.Inf(1)
		h.child[i] = -1
		h.sib[i] = -1
		h.prev[i] = -1
	}
	return h
}

func (h *pairingHeap) Len() int { return h.size }

// meld links two heap roots, returning the smaller-keyed one.
func (h *pairingHeap) meld(a, b graph.V) graph.V {
	if a == -1 {
		return b
	}
	if b == -1 {
		return a
	}
	if h.key[b] < h.key[a] {
		a, b = b, a
	}
	// b becomes a's first child.
	h.sib[b] = h.child[a]
	if h.child[a] != -1 {
		h.prev[h.child[a]] = b
	}
	h.prev[b] = a
	h.child[a] = b
	return a
}

// DecreaseKey inserts v with key k or lowers its key to k.
func (h *pairingHeap) DecreaseKey(v graph.V, k float64) {
	if !h.inHeap[v] {
		h.key[v] = k
		h.inHeap[v] = true
		h.child[v] = -1
		h.sib[v] = -1
		h.prev[v] = -1
		h.size++
		h.root = h.meld(h.root, v)
		return
	}
	if k > h.key[v] {
		panic("baseline: pairing DecreaseKey would raise a key")
	}
	h.key[v] = k
	if v == h.root {
		return
	}
	// Detach v from its sibling list and meld with the root.
	p := h.prev[v]
	if h.child[p] == v {
		h.child[p] = h.sib[v]
	} else {
		h.sib[p] = h.sib[v]
	}
	if h.sib[v] != -1 {
		h.prev[h.sib[v]] = p
	}
	h.sib[v] = -1
	h.prev[v] = -1
	h.root = h.meld(h.root, v)
}

// PopMin removes and returns the minimum-keyed vertex using the standard
// two-pass pairing of the root's children.
func (h *pairingHeap) PopMin() (graph.V, float64) {
	v := h.root
	k := h.key[v]
	h.inHeap[v] = false
	h.size--
	// First pass: meld children pairwise left to right.
	var pairs []graph.V
	c := h.child[v]
	for c != -1 {
		next := h.sib[c]
		h.sib[c] = -1
		h.prev[c] = -1
		var next2 graph.V = -1
		if next != -1 {
			next2 = h.sib[next]
			h.sib[next] = -1
			h.prev[next] = -1
		}
		pairs = append(pairs, h.meld(c, next))
		c = next2
	}
	// Second pass: meld right to left.
	var root graph.V = -1
	for i := len(pairs) - 1; i >= 0; i-- {
		root = h.meld(root, pairs[i])
	}
	h.child[v] = -1
	h.root = root
	return v, k
}

// DijkstraPairing is Dijkstra with the pairing heap; distances are
// identical to Dijkstra, only the priority-queue behavior differs.
func DijkstraPairing(g *graph.CSR, src graph.V) []float64 {
	n := g.NumVertices()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	h := newPairingHeap(n)
	h.DecreaseKey(src, 0)
	done := make([]bool, n)
	for h.Len() > 0 {
		u, du := h.PopMin()
		done[u] = true
		adj, ws := g.Neighbors(u)
		for i, v := range adj {
			if done[v] {
				continue
			}
			if nd := du + ws[i]; nd < dist[v] {
				dist[v] = nd
				h.DecreaseKey(v, nd)
			}
		}
	}
	return dist
}
