package baseline

import (
	"math"
	"testing"
	"testing/quick"

	"radiusstep/internal/check"
	"radiusstep/internal/gen"
	"radiusstep/internal/graph"
)

func weightedGrid(t *testing.T) *graph.CSR {
	t.Helper()
	return gen.WithUniformIntWeights(gen.Grid2D(25, 25), 1, 100, 3)
}

func TestDijkstraCertificate(t *testing.T) {
	g := weightedGrid(t)
	dist := Dijkstra(g, 0)
	if err := check.VerifyDistances(g, 0, dist); err != nil {
		t.Fatal(err)
	}
}

func TestDijkstraSmallByHand(t *testing.T) {
	// 0 --1-- 1 --2-- 2, plus 0 --4-- 2: shortest to 2 is 3 via 1.
	b := graph.NewBuilder(3)
	b.Add(0, 1, 1)
	b.Add(1, 2, 2)
	b.Add(0, 2, 4)
	g := b.Build()
	dist := Dijkstra(g, 0)
	want := []float64{0, 1, 3}
	for i := range want {
		if dist[i] != want[i] {
			t.Fatalf("dist[%d] = %v, want %v", i, dist[i], want[i])
		}
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	b := graph.NewBuilder(4)
	b.Add(0, 1, 1)
	b.Add(2, 3, 1)
	g := b.Build()
	dist := Dijkstra(g, 0)
	if !math.IsInf(dist[2], 1) || !math.IsInf(dist[3], 1) {
		t.Fatal("unreachable vertices should be +Inf")
	}
	if err := check.VerifyDistances(g, 0, dist); err != nil {
		t.Fatal(err)
	}
}

func TestDijkstraTreeParentsAreTight(t *testing.T) {
	g := weightedGrid(t)
	dist, parent := DijkstraTree(g, 7)
	for v := 0; v < g.NumVertices(); v++ {
		if graph.V(v) == 7 {
			if parent[v] != 7 {
				t.Fatal("source parent must be itself")
			}
			continue
		}
		if math.IsInf(dist[v], 1) {
			if parent[v] != -1 {
				t.Fatal("unreachable vertex with parent")
			}
			continue
		}
		p := parent[v]
		w, ok := graph.EdgeWeight(g, p, graph.V(v))
		if !ok {
			t.Fatalf("parent edge (%d,%d) missing", p, v)
		}
		if dist[p]+w != dist[v] {
			t.Fatalf("parent edge not tight at %d", v)
		}
	}
}

func TestDijkstraTreeHopMinimal(t *testing.T) {
	// Diamond with equal-length paths: 0-1-3 (1+1) and 0-3 (2).
	// The direct edge has fewer hops and must be chosen.
	b := graph.NewBuilder(4)
	b.Add(0, 1, 1)
	b.Add(1, 3, 1)
	b.Add(0, 3, 2)
	b.Add(0, 2, 5)
	g := b.Build()
	_, parent := DijkstraTree(g, 0)
	if parent[3] != 0 {
		t.Fatalf("parent[3] = %d, want 0 (hop-minimal)", parent[3])
	}
}

func TestDijkstraStepsEqualsDistinctDistances(t *testing.T) {
	g := weightedGrid(t)
	dist, steps := DijkstraSteps(g, 0)
	if err := check.VerifyDistances(g, 0, dist); err != nil {
		t.Fatal(err)
	}
	distinct := map[float64]bool{}
	for v, d := range dist {
		if graph.V(v) != 0 && !math.IsInf(d, 1) && d > 0 {
			distinct[d] = true
		}
	}
	if steps != len(distinct) {
		t.Fatalf("steps = %d, distinct nonzero distances = %d", steps, len(distinct))
	}
}

func TestBellmanFordMatchesDijkstra(t *testing.T) {
	g := weightedGrid(t)
	want := Dijkstra(g, 5)
	got, rounds := BellmanFord(g, 5)
	if i := check.SameDistances(want, got, 0); i >= 0 {
		t.Fatalf("mismatch at %d: %v vs %v", i, want[i], got[i])
	}
	if rounds < 2 {
		t.Fatalf("rounds = %d implausible", rounds)
	}
}

func TestBellmanFordParallelMatches(t *testing.T) {
	g := weightedGrid(t)
	want := Dijkstra(g, 5)
	got, _ := BellmanFordParallel(g, 5)
	if i := check.SameDistances(want, got, 0); i >= 0 {
		t.Fatalf("mismatch at %d: %v vs %v", i, want[i], got[i])
	}
}

func TestBellmanFordRoundsOnChain(t *testing.T) {
	// A chain relaxes one vertex per round from the end: n-1 productive
	// rounds plus the final check.
	g := gen.Chain(10)
	_, rounds := BellmanFord(g, 0)
	if rounds != 10 {
		t.Fatalf("rounds = %d, want 10", rounds)
	}
}

func TestDeltaSteppingMatchesDijkstraAcrossDeltas(t *testing.T) {
	g := weightedGrid(t)
	want := Dijkstra(g, 11)
	for _, delta := range []float64{1, 5, 50, 1000, 1e9} {
		got, st := DeltaStepping(g, 11, delta)
		if i := check.SameDistances(want, got, 0); i >= 0 {
			t.Fatalf("delta=%v: mismatch at %d: %v vs %v", delta, i, want[i], got[i])
		}
		if st.Steps < 1 || st.Substeps < st.Steps {
			t.Fatalf("delta=%v: implausible stats %+v", delta, st)
		}
	}
}

func TestDeltaSteppingDegenerateCases(t *testing.T) {
	g := weightedGrid(t)
	// Huge delta => everything lands in one bucket (Bellman-Ford-ish).
	_, st := DeltaStepping(g, 0, 1e18)
	if st.Steps != 1 {
		t.Fatalf("huge delta: steps = %d, want 1", st.Steps)
	}
	// Delta below min weight => every edge is heavy; steps is the number
	// of distinct distance classes (Dijkstra-like).
	_, st2 := DeltaStepping(g, 0, 0.5)
	if st2.Steps <= st.Steps {
		t.Fatalf("tiny delta should take many steps, got %d", st2.Steps)
	}
}

func TestDeltaSteppingPanicsOnBadDelta(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DeltaStepping(gen.Chain(3), 0, 0)
}

func TestBFSLevels(t *testing.T) {
	g := gen.Chain(10)
	dist, levels := BFS(g, 0)
	if levels != 9 { // eccentricity: the source level is not counted
		t.Fatalf("levels = %d, want 9", levels)
	}
	for i := 0; i < 10; i++ {
		if dist[i] != int32(i) {
			t.Fatalf("dist[%d] = %d", i, dist[i])
		}
	}
}

func TestBFSParallelMatchesSequential(t *testing.T) {
	g := gen.ScaleFree(3000, 5, 2)
	want, wl := BFS(g, 17)
	got, gl := BFSParallel(g, 17)
	if wl != gl {
		t.Fatalf("levels: %d vs %d", wl, gl)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("dist[%d]: %d vs %d", i, want[i], got[i])
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	b := graph.NewBuilder(3)
	b.Add(0, 1, 1)
	g := b.Build()
	dist, _ := BFS(g, 0)
	if dist[2] != -1 {
		t.Fatal("unreachable must stay -1")
	}
	pd, _ := BFSParallel(g, 0)
	if pd[2] != -1 {
		t.Fatal("parallel unreachable must stay -1")
	}
}

func TestEccentricity(t *testing.T) {
	if e := Eccentricity(gen.Chain(10), 0); e != 9 {
		t.Fatalf("chain ecc = %d, want 9", e)
	}
	if e := Eccentricity(gen.Star(10), 0); e != 1 {
		t.Fatalf("star ecc = %d, want 1", e)
	}
}

// TestQuickAllAgreeOnRandomGraphs cross-checks every SSSP implementation
// on random connected weighted graphs.
func TestQuickAllAgreeOnRandomGraphs(t *testing.T) {
	f := func(seed uint64, srcRaw uint8) bool {
		g := gen.WithUniformIntWeights(gen.RandomConnected(60, 150, seed), 1, 50, seed+1)
		src := graph.V(int(srcRaw) % 60)
		want := Dijkstra(g, src)
		if err := check.VerifyDistances(g, src, want); err != nil {
			return false
		}
		bf, _ := BellmanFord(g, src)
		if check.SameDistances(want, bf, 0) >= 0 {
			return false
		}
		bfp, _ := BellmanFordParallel(g, src)
		if check.SameDistances(want, bfp, 0) >= 0 {
			return false
		}
		ds, _ := DeltaStepping(g, src, 10)
		return check.SameDistances(want, ds, 0) < 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestVertexHeapBasics(t *testing.T) {
	h := newVertexHeap(10)
	h.DecreaseKey(3, 5)
	h.DecreaseKey(7, 2)
	h.DecreaseKey(1, 8)
	h.DecreaseKey(1, 1) // decrease
	if v, k := h.PopMin(); v != 1 || k != 1 {
		t.Fatalf("pop = %d,%v", v, k)
	}
	if v, k := h.PopMin(); v != 7 || k != 2 {
		t.Fatalf("pop = %d,%v", v, k)
	}
	if v, k := h.PopMin(); v != 3 || k != 5 {
		t.Fatalf("pop = %d,%v", v, k)
	}
	if h.Len() != 0 {
		t.Fatal("heap should be empty")
	}
}

func TestVertexHeapPanicsOnRaise(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h := newVertexHeap(4)
	h.DecreaseKey(0, 1)
	h.DecreaseKey(0, 2)
}
