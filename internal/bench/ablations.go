package bench

import (
	"fmt"
	"io"

	"radiusstep/internal/baseline"
	"radiusstep/internal/check"
	"radiusstep/internal/core"
	"radiusstep/internal/gen"
	"radiusstep/internal/graph"
	"radiusstep/internal/parallel"
	"radiusstep/internal/preprocess"
)

// AblationK studies the substep structure as k varies (the design choice
// §5.4 discusses): larger k means fewer shortcut edges but more substeps
// per step, bounded by k+2 (Theorem 3.2). One table per heuristic on the
// road workload.
func AblationK(w io.Writer, sc Scale) error {
	wl := ShortcutWorkloads(sc)[0]
	g := wl.Weighted
	rho := sc.RhosCut[0]
	for _, h := range []preprocess.Heuristic{preprocess.Greedy, preprocess.DP} {
		t := &Table{
			Caption: fmt.Sprintf("Ablation — substeps vs k on %s weighted (rho=%d, heuristic=%s)", wl.Name, rho, h),
			Header:  []string{"k", "added", "mean substeps/step", "max substeps", "k+2 bound"},
		}
		for _, k := range sc.Ks {
			pre, err := preprocess.Run(g, preprocess.Options{Rho: rho, K: k, Heuristic: h})
			if err != nil {
				return err
			}
			var meanSub float64
			maxSub := 0
			for _, src := range wl.Sources {
				_, st, err := core.SolveRef(pre.G, pre.Radii, src)
				if err != nil {
					return err
				}
				meanSub += float64(st.Substeps) / float64(st.Steps)
				if st.MaxSubsteps > maxSub {
					maxSub = st.MaxSubsteps
				}
			}
			meanSub /= float64(len(wl.Sources))
			t.Add(fi(int64(k)), fi(pre.Added), f2(meanSub), fi(int64(maxSub)), fi(int64(k+2)))
		}
		t.Render(w)
	}
	return nil
}

// AblationDelta compares radius-stepping against ∆-stepping across a ∆
// sweep on one weighted workload: rounds (steps), total inner iterations
// (substeps), and relaxations. Radius-stepping's per-vertex radii replace
// the global ∆ the baseline must tune.
func AblationDelta(w io.Writer, sc Scale) error {
	wl := Workloads(sc)[0]
	g := wl.Weighted
	src := wl.Sources[0]
	L := g.MaxWeight()
	t := &Table{
		Caption: fmt.Sprintf("Ablation — delta-stepping vs radius-stepping on %s weighted (n=%d, L=%g)",
			wl.Name, g.NumVertices(), L),
		Header: []string{"algorithm", "param", "steps", "substeps", "relaxations"},
	}
	want := baseline.Dijkstra(g, src)
	for _, delta := range []float64{L / 100, L / 10, L, 10 * L} {
		dist, st := baseline.DeltaStepping(g, src, delta)
		if i := check.SameDistances(want, dist, 0); i >= 0 {
			return fmt.Errorf("delta-stepping wrong at %d", i)
		}
		t.Add("delta-stepping", fmt.Sprintf("d=%.0f", delta),
			fi(int64(st.Steps)), fi(int64(st.Substeps)), fi(st.Relaxations))
	}
	for _, rho := range sc.RhosCut {
		pre, err := preprocess.Run(g, preprocess.Options{Rho: rho, K: 1})
		if err != nil {
			return err
		}
		dist, st, err := core.SolveRef(pre.G, pre.Radii, src)
		if err != nil {
			return err
		}
		if i := check.SameDistances(want, dist, 0); i >= 0 {
			return fmt.Errorf("radius-stepping wrong at %d", i)
		}
		t.Add("radius-stepping", fmt.Sprintf("rho=%d", rho),
			fi(int64(st.Steps)), fi(int64(st.Substeps)), fi(st.Relaxations))
	}
	t.Render(w)
	return nil
}

// AblationEngines cross-checks the three radius-stepping engines on one
// workload: identical distances and identical step/substep counts, with
// their work counters side by side. This is the design-validation run for
// the engine equivalence the tests assert.
func AblationEngines(w io.Writer, sc Scale) error {
	wl := Workloads(sc)[2] // a web graph: skewed degrees stress the engines
	g := wl.Weighted
	src := wl.Sources[0]
	rho := sc.RhosCut[len(sc.RhosCut)-1]
	pre, err := preprocess.Run(g, preprocess.Options{Rho: rho, K: 1})
	if err != nil {
		return err
	}
	t := &Table{
		Caption: fmt.Sprintf("Ablation — engine cross-check on %s weighted (rho=%d)", wl.Name, rho),
		Header:  []string{"engine", "steps", "substeps", "edges scanned", "relaxations", "frontier p/b/m/x/st/sel"},
	}
	type eng struct {
		name string
		fn   func() ([]float64, core.Stats, error)
	}
	engines := []eng{
		{"ref (sequential)", func() ([]float64, core.Stats, error) { return core.SolveRef(pre.G, pre.Radii, src) }},
		{"frontier (Algorithm 2)", func() ([]float64, core.Stats, error) { return core.Solve(pre.G, pre.Radii, src) }},
		{"flat (sec. 3.4)", func() ([]float64, core.Stats, error) { return core.SolveFlat(pre.G, pre.Radii, src) }},
		// The radius-free strategies match on distances only: their
		// step rules are different algorithms, so step counts differ.
		{"delta-stepping", func() ([]float64, core.Stats, error) { return core.SolveDelta(pre.G, src, 0, nil) }},
		{"rho-stepping", func() ([]float64, core.Stats, error) { return core.SolveRho(pre.G, src, rho, nil) }},
	}
	var ref []float64
	var refSteps int
	for i, e := range engines {
		dist, st, err := e.fn()
		if err != nil {
			return err
		}
		if i == 0 {
			ref = dist
			refSteps = st.Steps
		} else {
			if idx := check.SameDistances(ref, dist, 0); idx >= 0 {
				return fmt.Errorf("engine %s distance mismatch at %d", e.name, idx)
			}
			if i < 3 && st.Steps != refSteps {
				return fmt.Errorf("engine %s step mismatch: %d vs %d", e.name, st.Steps, refSteps)
			}
		}
		// Frontier-substrate ops (pushes/batches/merges/extracted/stale/
		// selects) are nonzero only for the engines built on
		// internal/frontier.
		frOps := "-"
		if st.Frontier.Pushes > 0 {
			frOps = fmt.Sprintf("%d/%d/%d/%d/%d/%d",
				st.Frontier.Pushes, st.Frontier.Batches, st.Frontier.Merges,
				st.Frontier.Extracted, st.Frontier.Stale, st.Frontier.Selects)
		}
		t.Add(e.name, fi(int64(st.Steps)), fi(int64(st.Substeps)), fi(st.EdgesScanned), fi(st.Relaxations), frOps)
	}
	t.Render(w)
	return nil
}

// AblationModels extends the step-vs-ρ experiment to graph families the
// paper does not test — R-MAT (skewed, web-like) and Watts–Strogatz
// small-world (lattice with long-range links) — checking that the
// inverse-ρ round reduction generalizes beyond the six paper workloads.
func AblationModels(w io.Writer, sc Scale) error {
	type model struct {
		name string
		g    *graph.CSR
	}
	scaleDown := sc.Name == "tiny"
	rmatScale, rmatM, swN := 14, 120000, 20000
	if scaleDown {
		rmatScale, rmatM, swN = 10, 8000, 2000
	}
	models := []model{
		{"rmat", largest(gen.RMATDefault(rmatScale, rmatM, 51))},
		{"smallworld", gen.SmallWorld(swN, 6, 0.05, 52)},
	}
	for _, m := range models {
		g := gen.WithUniformIntWeights(m.g, 1, 10000, 53)
		sources := SampleSources(g.NumVertices(), sc.Sources, 54)
		t := &Table{
			Caption: fmt.Sprintf("Ablation — rounds vs rho on %s weighted (n=%d, m=%d)",
				m.name, g.NumVertices(), g.NumEdges()),
			Header: []string{"rho", "mean rounds", "reduction"},
		}
		var base float64
		for _, rho := range sc.Rhos {
			pre, err := preprocess.Run(g, preprocess.Options{Rho: rho, K: 1})
			if err != nil {
				return err
			}
			stats := make([]core.Stats, len(sources))
			errs := make([]error, len(sources))
			parallel.Workers(len(sources), func(_ int, claim func() (int, bool)) {
				for {
					i, ok := claim()
					if !ok {
						return
					}
					_, st, err := core.SolveRef(pre.G, pre.Radii, sources[i])
					stats[i], errs[i] = st, err
				}
			})
			for _, err := range errs {
				if err != nil {
					return err
				}
			}
			var mean float64
			for _, st := range stats {
				mean += float64(st.Steps)
			}
			mean /= float64(len(stats))
			if rho == 1 {
				base = mean
			}
			red := "1.00"
			if base > 0 && mean > 0 {
				red = f2(base / mean)
			}
			t.Add(fi(int64(rho)), f1(mean), red)
		}
		t.Render(w)
	}
	return nil
}

func largest(g *graph.CSR) *graph.CSR {
	lc, _ := graph.LargestComponent(g)
	return lc
}

// AblationParallelism profiles the work each step exposes: with P
// processors a step settling s vertices gives roughly min(s, P)-way
// speedup, so the distribution of per-step settled counts (not just the
// mean n/steps) determines the practical parallelism P = W/D. The table
// shows how ρ moves that distribution upward on one road and one web
// workload.
func AblationParallelism(w io.Writer, sc Scale) error {
	for _, wi := range []int{0, 3} { // road-a, web-b
		wl := Workloads(sc)[wi]
		g := wl.Weighted
		src := wl.Sources[0]
		t := &Table{
			Caption: fmt.Sprintf("Ablation — per-step parallelism on %s weighted (n=%d)",
				wl.Name, g.NumVertices()),
			Header: []string{"rho", "steps", "settled/step mean", "median", "p90", "max", "substeps/step"},
		}
		for _, rho := range sc.Rhos {
			if rho == 1 {
				continue
			}
			pre, err := preprocess.Run(g, preprocess.Options{Rho: rho, K: 1})
			if err != nil {
				return err
			}
			prof, _, err := core.Profile(pre.G, pre.Radii, src)
			if err != nil {
				return err
			}
			s := prof.Summarize()
			t.Add(fi(int64(rho)), fi(int64(s.Steps)), f1(s.MeanSettled),
				fi(int64(s.MedianSettled)), fi(int64(s.P90)), fi(int64(s.MaxSettled)), f2(s.MeanSubsteps))
		}
		t.Render(w)
	}
	return nil
}
