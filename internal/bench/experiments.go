package bench

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"radiusstep/internal/baseline"
	"radiusstep/internal/core"
	"radiusstep/internal/gen"
	"radiusstep/internal/parallel"
	"radiusstep/internal/preprocess"
)

// stepResult is the cached outcome of running radius-stepping from every
// sampled source of one workload at one ρ.
type stepResult struct {
	MeanSteps    float64
	MeanSubsteps float64
	MaxSubsteps  int
	AddedEdges   int64
}

var (
	cacheMu   sync.Mutex
	stepCache = map[string]stepResult{}
	cutCache  = map[string]cutResult{}
)

type cutResult struct {
	Greedy []int64
	DP     []int64
}

// StepsFor preprocesses wl's graph at ρ with (1, ρ) shortcuts and runs
// radius-stepping from every sampled source, returning mean step counts.
// Results are memoized per process so tables and figures sharing a cell
// compute it once.
func StepsFor(sc Scale, wl *Workload, weighted bool, rho int) (stepResult, error) {
	key := fmt.Sprintf("%s/%s/%v/%d", sc.Name, wl.Name, weighted, rho)
	cacheMu.Lock()
	if r, ok := stepCache[key]; ok {
		cacheMu.Unlock()
		return r, nil
	}
	cacheMu.Unlock()

	g := wl.Unweighted
	if weighted {
		g = wl.Weighted
	}
	pre, err := preprocess.Run(g, preprocess.Options{Rho: rho, K: 1})
	if err != nil {
		return stepResult{}, err
	}
	stats := make([]core.Stats, len(wl.Sources))
	errs := make([]error, len(wl.Sources))
	parallel.Workers(len(wl.Sources), func(_ int, claim func() (int, bool)) {
		for {
			i, ok := claim()
			if !ok {
				return
			}
			_, st, err := core.SolveRef(pre.G, pre.Radii, wl.Sources[i])
			stats[i], errs[i] = st, err
		}
	})
	for _, err := range errs {
		if err != nil {
			return stepResult{}, err
		}
	}
	var res stepResult
	for _, st := range stats {
		res.MeanSteps += float64(st.Steps)
		res.MeanSubsteps += float64(st.Substeps)
		if st.MaxSubsteps > res.MaxSubsteps {
			res.MaxSubsteps = st.MaxSubsteps
		}
	}
	res.MeanSteps /= float64(len(stats))
	res.MeanSubsteps /= float64(len(stats))
	res.AddedEdges = pre.Added
	cacheMu.Lock()
	stepCache[key] = res
	cacheMu.Unlock()
	return res, nil
}

// CutsFor memoizes CountSweep (greedy and DP shortcut counts for every k
// in sc.Ks) on wl's weighted graph at ρ.
//
// The paper runs its shortcut experiments unweighted, noting heuristic
// performance is weight-independent on its datasets. On the synthetic
// Barabási–Albert web substitute the unweighted balls are degenerate
// (diameter ≈ 4, so k ≥ 3 needs no shortcuts at all); the weighted
// variant restores the deep, irregular shortest-path trees the paper's
// heuristic comparison is actually about, so we measure there. See
// EXPERIMENTS.md for the deviation note.
func CutsFor(sc Scale, wl *Workload, rho int) (cutResult, error) {
	key := fmt.Sprintf("%s/%s/%d", sc.Name, wl.Name, rho)
	cacheMu.Lock()
	if r, ok := cutCache[key]; ok {
		cacheMu.Unlock()
		return r, nil
	}
	cacheMu.Unlock()
	greedy, dp, err := preprocess.CountSweep(wl.Weighted, rho, sc.Ks)
	if err != nil {
		return cutResult{}, err
	}
	r := cutResult{Greedy: greedy, DP: dp}
	cacheMu.Lock()
	cutCache[key] = r
	cacheMu.Unlock()
	return r, nil
}

// --- Figure 1 ----------------------------------------------------------

// Fig1 demonstrates the anatomy of radius-stepping steps (the paper's
// Figure 1): one small weighted graph, one row per step showing the round
// distance d_i, the lead vertex, and how many vertices settle.
func Fig1(w io.Writer, _ Scale) error {
	g := gen.WithUniformIntWeights(gen.Grid2D(12, 12), 1, 100, 5)
	radii, err := preprocess.RadiiOnly(g, 8)
	if err != nil {
		return err
	}
	t := &Table{
		Caption: "Figure 1 — step anatomy of Radius-Stepping (12x12 weighted grid, rho=8, source 0)",
		Header:  []string{"step", "d_i", "lead", "settled", "substeps"},
	}
	_, st, err := core.SolveRefTrace(g, radii, 0, func(tr core.StepTrace) {
		t.Add(fmt.Sprintf("%d", tr.Step), f1(tr.Di), fmt.Sprintf("%d", tr.Lead),
			fmt.Sprintf("%d", tr.Settled), fmt.Sprintf("%d", tr.Substeps))
	})
	if err != nil {
		return err
	}
	t.Caption += fmt.Sprintf("  [total: %s]", st)
	t.Render(w)
	return nil
}

// --- Figure 2 ----------------------------------------------------------

// Fig2 reproduces the paper's Figure-2 claim: on a sparse pathological
// graph, reaching ρ = 3d vertices from a vertex forces Θ(d²) edge looks.
// We report mean edges scanned per source against ρ² — the ratio must
// stay roughly constant while ρ² grows by orders of magnitude.
func Fig2(w io.Writer, sc Scale) error {
	t := &Table{
		Caption: "Figure 2 — edges scanned by the restricted search to reach rho=3d vertices on the comb graph",
		Header:  []string{"d", "n", "m", "rho", "scan/src", "rho^2", "scan/rho^2"},
	}
	for _, d := range sc.CombDs {
		g := gen.Comb(d)
		rho := 3 * d
		res, err := preprocess.Run(g, preprocess.Options{Rho: rho, K: 1})
		if err != nil {
			return err
		}
		n := g.NumVertices()
		perSrc := float64(res.EdgesScanned) / float64(n)
		t.Add(fi(int64(d)), fi(int64(n)), fi(int64(g.NumEdges())), fi(int64(rho)),
			f1(perSrc), fi(int64(rho*rho)), f2(perSrc/float64(rho*rho)))
	}
	t.Render(w)
	return nil
}

// --- Figure 3 / Tables 2 and 3 -----------------------------------------

// Fig3 renders the added-edge factor (added shortcuts over original m) of
// greedy vs DP at k=3 as ρ varies, for a road map, a web graph and a 2D
// grid — the paper's Figure 3(a–c).
func Fig3(w io.Writer, sc Scale) error {
	kIdx := indexOf(sc.Ks, 3)
	if kIdx < 0 {
		kIdx = 0
	}
	for _, wl := range ShortcutWorkloads(sc) {
		m := float64(wl.Weighted.NumEdges())
		var series [2]Series
		series[0].Name = "greedy"
		series[1].Name = "dp"
		t := &Table{
			Caption: fmt.Sprintf("Figure 3 (%s, weighted) — factors of additional edges, k=%d", wl.Name, sc.Ks[kIdx]),
			Header:  []string{"rho", "greedy", "dp"},
		}
		for _, rho := range sc.RhosCut {
			c, err := CutsFor(sc, wl, rho)
			if err != nil {
				return err
			}
			gf := float64(c.Greedy[kIdx]) / m
			df := float64(c.DP[kIdx]) / m
			series[0].X = append(series[0].X, float64(rho))
			series[0].Y = append(series[0].Y, gf)
			series[1].X = append(series[1].X, float64(rho))
			series[1].Y = append(series[1].Y, df)
			t.Add(fi(int64(rho)), f2(gf), f2(df))
		}
		t.Render(w)
		RenderSeries(w, fmt.Sprintf("# fig3-%s data", wl.Name), "rho", "factor", series[:])
	}
	return nil
}

// shortcutTable renders Table 2 (greedy) or Table 3 (DP): added-edge
// factors for every (k, ρ) plus the paper's "red. rounds" column (the
// unweighted round-reduction factor versus ρ=1, which is independent of
// k and of the heuristic).
func shortcutTable(w io.Writer, sc Scale, useDP bool) error {
	name, which := "Table 2 — greedy heuristic", "greedy"
	if useDP {
		name, which = "Table 3 — DP heuristic", "dp"
	}
	for _, wl := range ShortcutWorkloads(sc) {
		header := []string{"rho"}
		for _, k := range sc.Ks {
			header = append(header, fmt.Sprintf("k=%d", k))
		}
		header = append(header, "red.rounds")
		t := &Table{
			Caption: fmt.Sprintf("%s (%s, weighted): factors of additional edges (|V|=%d, |E|=%d)",
				name, wl.Name, wl.Weighted.NumVertices(), wl.Weighted.NumEdges()),
			Header: header,
		}
		m := float64(wl.Weighted.NumEdges())
		base, err := StepsFor(sc, wl, true, 1)
		if err != nil {
			return err
		}
		for _, rho := range sc.RhosCut {
			c, err := CutsFor(sc, wl, rho)
			if err != nil {
				return err
			}
			cur, err := StepsFor(sc, wl, true, rho)
			if err != nil {
				return err
			}
			cells := []string{fi(int64(rho))}
			counts := c.Greedy
			if which == "dp" {
				counts = c.DP
			}
			for i := range sc.Ks {
				cells = append(cells, f2(float64(counts[i])/m))
			}
			cells = append(cells, f2(base.MeanSteps/cur.MeanSteps))
			t.Add(cells...)
		}
		t.Render(w)
	}
	return nil
}

// Table2 renders the greedy added-edge factor matrix.
func Table2(w io.Writer, sc Scale) error { return shortcutTable(w, sc, false) }

// Table3 renders the DP added-edge factor matrix.
func Table3(w io.Writer, sc Scale) error { return shortcutTable(w, sc, true) }

// --- Figures 4 and 5 / Tables 4, 5, 6, 7 --------------------------------

// stepsTable renders Table 4 (unweighted) or Table 6 (weighted): average
// radius-stepping rounds per graph as ρ varies.
func stepsTable(w io.Writer, sc Scale, weighted bool) error {
	name := "Table 4 — average rounds, unweighted (BFS at rho=1)"
	if weighted {
		name = "Table 6 — average rounds, weighted (Dijkstra-with-ties at rho=1)"
	}
	wls := Workloads(sc)
	header := []string{"rho"}
	for _, wl := range wls {
		header = append(header, wl.Name)
	}
	t := &Table{Caption: name, Header: header}
	for _, rho := range sc.Rhos {
		cells := []string{fi(int64(rho))}
		for _, wl := range wls {
			r, err := StepsFor(sc, wl, weighted, rho)
			if err != nil {
				return err
			}
			cells = append(cells, f1(r.MeanSteps))
		}
		t.Add(cells...)
	}
	t.Render(w)
	return nil
}

// reductionTable renders Table 5 (unweighted) or Table 7 (weighted):
// round-count reduction factors versus the ρ=1 baseline.
func reductionTable(w io.Writer, sc Scale, weighted bool) error {
	name := "Table 5 — reduction factor of rounds vs BFS (unweighted)"
	if weighted {
		name = "Table 7 — reduction factor of rounds vs rho=1 (weighted)"
	}
	wls := Workloads(sc)
	header := []string{"rho"}
	for _, wl := range wls {
		header = append(header, wl.Name)
	}
	t := &Table{Caption: name, Header: header}
	for _, rho := range sc.Rhos {
		if rho == 1 {
			continue
		}
		cells := []string{fi(int64(rho))}
		for _, wl := range wls {
			base, err := StepsFor(sc, wl, weighted, 1)
			if err != nil {
				return err
			}
			cur, err := StepsFor(sc, wl, weighted, rho)
			if err != nil {
				return err
			}
			cells = append(cells, f2(base.MeanSteps/cur.MeanSteps))
		}
		t.Add(cells...)
	}
	t.Render(w)
	return nil
}

// figSteps renders Figure 4 (unweighted) or Figure 5 (weighted): the
// steps-vs-ρ series per graph group.
func figSteps(w io.Writer, sc Scale, weighted bool) error {
	name := "Figure 4 — unweighted steps vs rho"
	if weighted {
		name = "Figure 5 — weighted steps vs rho"
	}
	groups := map[string][]*Workload{}
	var order []string
	for _, wl := range Workloads(sc) {
		if _, ok := groups[wl.Kind]; !ok {
			order = append(order, wl.Kind)
		}
		groups[wl.Kind] = append(groups[wl.Kind], wl)
	}
	sort.Strings(order)
	for _, kind := range order {
		var series []Series
		for _, wl := range groups[kind] {
			s := Series{Name: wl.Name}
			for _, rho := range sc.Rhos {
				r, err := StepsFor(sc, wl, weighted, rho)
				if err != nil {
					return err
				}
				s.X = append(s.X, float64(rho))
				s.Y = append(s.Y, r.MeanSteps)
			}
			series = append(series, s)
		}
		RenderSeries(w, fmt.Sprintf("%s (%s)", name, kind), "rho", "avg steps", series)
	}
	return nil
}

// Table4 renders unweighted average rounds.
func Table4(w io.Writer, sc Scale) error { return stepsTable(w, sc, false) }

// Table5 renders unweighted reduction factors.
func Table5(w io.Writer, sc Scale) error { return reductionTable(w, sc, false) }

// Table6 renders weighted average rounds.
func Table6(w io.Writer, sc Scale) error { return stepsTable(w, sc, true) }

// Table7 renders weighted reduction factors.
func Table7(w io.Writer, sc Scale) error { return reductionTable(w, sc, true) }

// Fig4 renders unweighted steps-vs-ρ series.
func Fig4(w io.Writer, sc Scale) error { return figSteps(w, sc, false) }

// Fig5 renders weighted steps-vs-ρ series.
func Fig5(w io.Writer, sc Scale) error { return figSteps(w, sc, true) }

// --- Table 1 ------------------------------------------------------------

// Table1 reprints the paper's summary of work/depth bounds (an analytic
// table) and appends measured proxies from this implementation: total
// edges scanned (work) and rounds (depth) per algorithm on one weighted
// workload, so the asymptotic claims can be sanity-checked empirically.
func Table1(w io.Writer, sc Scale) error {
	bounds := &Table{
		Caption: "Table 1 — work/depth bounds for exact SSSP (paper, analytic)",
		Header:  []string{"setting", "algorithm", "work", "depth"},
	}
	for _, r := range [][4]string{
		{"unweighted", "standard BFS", "O(m+n)", "O(n)"},
		{"unweighted", "Ullman-Yannakakis", "~O(m sqrt(n)+nm/t+n^3/t^4)", "~O(t)"},
		{"unweighted", "Spencer", "O(m log p + n p^2 log^2 p)", "O((n/p) log^2 p)"},
		{"unweighted", "this work", "O(m + n p)", "O((n/p) log p log* p)"},
		{"weighted", "parallel Dijkstra (PK85)", "O(m + n log n)", "O(n log n)"},
		{"weighted", "parallel Dijkstra (BTZ98)", "O(m log n + n)", "O(n)"},
		{"weighted", "Klein-Subramanian", "O(m sqrt(n) log K log n)", "O(sqrt(n) log K log n)"},
		{"weighted", "Spencer", "O((n p^2 log p + m) log(npL))", "O((n/p) log n log(pL))"},
		{"weighted", "Shi-Spencer", "O((n^3/p^2) log n log(n/p) + m log n)", "O(p log n)"},
		{"weighted", "Cohen", "O(n^2 + n^3/p^2)", "O(p polylog n)"},
		{"weighted", "this work", "O((m + n p) log n)", "O((n/p) log n log(pL))"},
	} {
		bounds.Add(r[0], r[1], r[2], r[3])
	}
	bounds.Render(w)

	// Measured proxies on one weighted road workload.
	wl := Workloads(sc)[0]
	g := wl.Weighted
	src := wl.Sources[0]
	t := &Table{
		Caption: fmt.Sprintf("Table 1 (measured) — work/depth proxies on %s weighted (n=%d, m=%d)",
			wl.Name, g.NumVertices(), g.NumEdges()),
		Header: []string{"algorithm", "edges scanned (work)", "rounds (depth)"},
	}
	{
		_, steps := baseline.DijkstraSteps(g, src)
		t.Add("Dijkstra (rho=1)", fi(int64(g.NumArcs())), fi(int64(steps)))
	}
	{
		_, rounds := baseline.BellmanFordParallel(g, src)
		t.Add("Bellman-Ford", "O(m x rounds)", fi(int64(rounds)))
	}
	{
		_, st := baseline.DeltaStepping(g, src, 2000)
		t.Add("Delta-stepping (d=2000)", fi(st.Relaxations), fi(int64(st.Substeps)))
	}
	for _, rho := range []int{16, 64} {
		pre, err := preprocess.Run(g, preprocess.Options{Rho: rho, K: 1})
		if err != nil {
			return err
		}
		_, st, err := core.SolveRef(pre.G, pre.Radii, src)
		if err != nil {
			return err
		}
		t.Add(fmt.Sprintf("Radius-stepping rho=%d", rho), fi(st.EdgesScanned), fi(int64(st.Substeps)))
	}
	t.Render(w)
	return nil
}

// --- registry -----------------------------------------------------------

// Experiment is a runnable named experiment.
type Experiment struct {
	ID   string
	Desc string
	Run  func(io.Writer, Scale) error
}

// Experiments lists every table and figure reproduction plus ablations,
// in the order they appear in the paper.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "work/depth bounds (analytic + measured proxies)", Table1},
		{"fig1", "step anatomy illustration", Fig1},
		{"fig2", "O(rho^2) comb-graph preprocessing cost", Fig2},
		{"fig3", "added-edge factor, greedy vs DP, k=3", Fig3},
		{"table2", "greedy added-edge factors, k x rho", Table2},
		{"table3", "DP added-edge factors, k x rho", Table3},
		{"fig4", "unweighted steps vs rho (series)", Fig4},
		{"table4", "unweighted average rounds", Table4},
		{"table5", "unweighted round-reduction factors", Table5},
		{"fig5", "weighted steps vs rho (series)", Fig5},
		{"table6", "weighted average rounds", Table6},
		{"table7", "weighted round-reduction factors", Table7},
		{"ablation-k", "substeps vs k (Theorem 3.2 in practice)", AblationK},
		{"ablation-delta", "radius-stepping vs delta-stepping rounds", AblationDelta},
		{"ablation-engines", "engine cross-check (ref vs frontier vs flat)", AblationEngines},
		{"ablation-models", "rounds vs rho on RMAT and small-world graphs", AblationModels},
		{"ablation-parallelism", "per-step settled-count distribution vs rho", AblationParallelism},
	}
}

// RunExperiment dispatches by id ("all" runs everything).
func RunExperiment(w io.Writer, id string, sc Scale) error {
	if id == "all" {
		for _, e := range Experiments() {
			fmt.Fprintf(w, "== %s: %s ==\n", e.ID, e.Desc)
			if err := e.Run(w, sc); err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
		}
		return nil
	}
	for _, e := range Experiments() {
		if e.ID == id {
			return e.Run(w, sc)
		}
	}
	return fmt.Errorf("bench: unknown experiment %q", id)
}

func indexOf(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}
