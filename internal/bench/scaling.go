package bench

// This file implements the -procs scaling mode: the engine matrix
// re-run at several GOMAXPROCS settings over one preprocessed graph,
// reporting per-engine speedup columns. It exists to answer the
// roadmap's standing question — does the parallel machinery actually
// win as cores are added, and where does it stop winning — with one
// command instead of N manually-varied runs.

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	rs "radiusstep"
)

// ScalingConfig describes one scaling run: the engine-matrix workload
// plus the GOMAXPROCS values to sweep.
type ScalingConfig struct {
	Gen     string
	N       int
	Weights int
	Rho     int
	Seed    uint64
	Trials  int
	Engines []string // empty means all five
	Procs   []int    // GOMAXPROCS values, e.g. 1,2,4,8
}

// ScalingCell is one (engine, procs) measurement. Speedup is relative
// to the same engine at the sweep's first procs value, so with the
// conventional 1,2,4,... sweep it reads directly as parallel speedup.
type ScalingCell struct {
	Procs     int     `json:"procs"`
	P50Micros float64 `json:"p50Micros"`
	Speedup   float64 `json:"speedup"`
}

// ScalingRow is one engine's sweep across the procs values.
type ScalingRow struct {
	Engine string        `json:"engine"`
	Cells  []ScalingCell `json:"cells"`
}

// ScalingReport is the JSON envelope emitted by RunScaling.
type ScalingReport struct {
	Graph    string       `json:"graph"`
	N        int          `json:"n"`
	Seed     uint64       `json:"seed"`
	Weights  int          `json:"weights"`
	Vertices int          `json:"vertices"`
	Edges    int          `json:"edges"`
	Rho      int          `json:"rho"`
	Trials   int          `json:"trials"`
	Procs    []int        `json:"procs"`
	Rows     []ScalingRow `json:"rows"`
}

// MeasureScaling builds one preprocessed solver and times every
// requested engine at every requested GOMAXPROCS value. The solver (and
// its warmed workspace pool) is shared across the sweep so the cells
// differ only in available parallelism, not in cache state. GOMAXPROCS
// is restored before returning.
func MeasureScaling(cfg ScalingConfig) (*ScalingReport, error) {
	if cfg.Trials <= 0 {
		cfg.Trials = 9
	}
	if cfg.Rho == 0 {
		cfg.Rho = 32
	}
	if len(cfg.Procs) == 0 {
		return nil, fmt.Errorf("bench: scaling mode needs at least one procs value")
	}
	for _, p := range cfg.Procs {
		if p < 1 {
			return nil, fmt.Errorf("bench: procs value %d < 1", p)
		}
	}
	engines := cfg.Engines
	if len(engines) == 0 {
		engines = AllEngineNames()
	}
	g, err := rs.GenerateByName(cfg.Gen, cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if cfg.Weights > 0 {
		g = rs.WithUniformIntWeights(g, 1, cfg.Weights, cfg.Seed+1)
	}
	solver, err := rs.NewSolver(g, rs.Options{Rho: cfg.Rho})
	if err != nil {
		return nil, err
	}
	n := g.NumVertices()

	report := &ScalingReport{
		Graph:    cfg.Gen,
		N:        cfg.N,
		Seed:     cfg.Seed,
		Weights:  cfg.Weights,
		Vertices: n,
		Edges:    g.NumEdges(),
		Rho:      cfg.Rho,
		Trials:   cfg.Trials,
		Procs:    cfg.Procs,
	}
	for _, name := range engines {
		report.Rows = append(report.Rows, ScalingRow{Engine: name})
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range cfg.Procs {
		runtime.GOMAXPROCS(procs)
		for ri, name := range engines {
			eng, err := rs.ParseEngine(name)
			if err != nil {
				return nil, err
			}
			// Warm the workspace pool (and, at higher procs, the worker
			// pool) outside the timed loop.
			if _, _, err = solver.DistancesWith(0, eng); err != nil {
				return nil, fmt.Errorf("engine %s at procs=%d: %v", name, procs, err)
			}
			durs := make([]float64, cfg.Trials)
			for i := 0; i < cfg.Trials; i++ {
				src := rs.Vertex((i * 7919) % n)
				t0 := time.Now()
				if _, _, err := solver.DistancesWith(src, eng); err != nil {
					return nil, fmt.Errorf("engine %s at procs=%d: %v", name, procs, err)
				}
				durs[i] = float64(time.Since(t0).Microseconds())
			}
			sort.Float64s(durs)
			p50 := durs[len(durs)/2]
			cell := ScalingCell{Procs: procs, P50Micros: p50}
			row := &report.Rows[ri]
			if len(row.Cells) > 0 && p50 > 0 {
				cell.Speedup = row.Cells[0].P50Micros / p50
			} else if p50 > 0 {
				cell.Speedup = 1
			}
			row.Cells = append(row.Cells, cell)
		}
	}
	return report, nil
}

// RunScaling measures and writes the report as JSON.
func RunScaling(w io.Writer, cfg ScalingConfig) (*ScalingReport, error) {
	report, err := MeasureScaling(cfg)
	if err != nil {
		return nil, err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return nil, err
	}
	return report, nil
}

// FormatScalingTable renders the report as an aligned text table: one
// row per engine, a p50 and speedup column per procs value.
func FormatScalingTable(r *ScalingReport) string {
	out := fmt.Sprintf("scaling %s (n=%d, m=%d, rho=%d, trials=%d)\n",
		r.Graph, r.Vertices, r.Edges, r.Rho, r.Trials)
	out += fmt.Sprintf("%-12s", "engine")
	for _, p := range r.Procs {
		out += fmt.Sprintf(" %9s %8s", fmt.Sprintf("p%d (µs)", p), "speedup")
	}
	out += "\n"
	for _, row := range r.Rows {
		out += fmt.Sprintf("%-12s", row.Engine)
		for _, c := range row.Cells {
			out += fmt.Sprintf(" %9.0f %7.2fx", c.P50Micros, c.Speedup)
		}
		out += "\n"
	}
	return out
}

// MeasureEngineTimelines runs one traced solve per engine on the
// workload and returns the timelines, keyed in engine order — the
// radius-bench -trace mode. Timelines go to their own file, never into
// the BENCH_* baselines: traced solves pay clock-read overhead and
// would skew latency trajectories.
func MeasureEngineTimelines(cfg EngineMatrixConfig) ([]rs.Timeline, error) {
	if cfg.Rho == 0 {
		cfg.Rho = 32
	}
	engines := cfg.Engines
	if len(engines) == 0 {
		engines = AllEngineNames()
	}
	g, err := rs.GenerateByName(cfg.Gen, cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if cfg.Weights > 0 {
		g = rs.WithUniformIntWeights(g, 1, cfg.Weights, cfg.Seed+1)
	}
	solver, err := rs.NewSolver(g, rs.Options{Rho: cfg.Rho})
	if err != nil {
		return nil, err
	}
	timelines := make([]rs.Timeline, 0, len(engines))
	for _, name := range engines {
		eng, err := rs.ParseEngine(name)
		if err != nil {
			return nil, err
		}
		_, _, tl, err := solver.DistancesTraced(0, eng)
		if err != nil {
			return nil, fmt.Errorf("engine %s: %v", name, err)
		}
		timelines = append(timelines, *tl)
	}
	return timelines, nil
}
